# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_mem[1]_include.cmake")
include("/root/repo/build/tests/test_hw[1]_include.cmake")
include("/root/repo/build/tests/test_engine[1]_include.cmake")
include("/root/repo/build/tests/test_kernel[1]_include.cmake")
include("/root/repo/build/tests/test_transport[1]_include.cmake")
include("/root/repo/build/tests/test_services[1]_include.cmake")
include("/root/repo/build/tests/test_binder[1]_include.cmake")
include("/root/repo/build/tests/test_apps[1]_include.cmake")
include("/root/repo/build/tests/test_security[1]_include.cmake")
include("/root/repo/build/tests/test_props[1]_include.cmake")
include("/root/repo/build/tests/test_hwcost[1]_include.cmake")
include("/root/repo/build/tests/test_relay_pt[1]_include.cmake")
include("/root/repo/build/tests/test_edge[1]_include.cmake")
include("/root/repo/build/tests/test_netns[1]_include.cmake")
include("/root/repo/build/tests/test_misc[1]_include.cmake")
include("/root/repo/build/tests/test_pager[1]_include.cmake")
include("/root/repo/build/tests/test_chaos[1]_include.cmake")
