file(REMOVE_RECURSE
  "CMakeFiles/test_relay_pt.dir/test_relay_pt.cc.o"
  "CMakeFiles/test_relay_pt.dir/test_relay_pt.cc.o.d"
  "test_relay_pt"
  "test_relay_pt.pdb"
  "test_relay_pt[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_relay_pt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
