# Empty compiler generated dependencies file for test_relay_pt.
# This may be replaced when dependencies are built.
