file(REMOVE_RECURSE
  "CMakeFiles/test_netns.dir/test_netns.cc.o"
  "CMakeFiles/test_netns.dir/test_netns.cc.o.d"
  "test_netns"
  "test_netns.pdb"
  "test_netns[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_netns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
