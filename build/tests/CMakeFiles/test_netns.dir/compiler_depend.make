# Empty compiler generated dependencies file for test_netns.
# This may be replaced when dependencies are built.
