
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_chaos.cc" "tests/CMakeFiles/test_chaos.dir/test_chaos.cc.o" "gcc" "tests/CMakeFiles/test_chaos.dir/test_chaos.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/services/CMakeFiles/xpc_services.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/xpc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/kernel/CMakeFiles/xpc_kernel.dir/DependInfo.cmake"
  "/root/repo/build/src/xpc/CMakeFiles/xpc_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/xpc_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/xpc_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/xpc_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
