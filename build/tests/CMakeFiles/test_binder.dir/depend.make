# Empty dependencies file for test_binder.
# This may be replaced when dependencies are built.
