file(REMOVE_RECURSE
  "CMakeFiles/bench_fig09_binder.dir/bench_fig09_binder.cc.o"
  "CMakeFiles/bench_fig09_binder.dir/bench_fig09_binder.cc.o.d"
  "bench_fig09_binder"
  "bench_fig09_binder.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig09_binder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
