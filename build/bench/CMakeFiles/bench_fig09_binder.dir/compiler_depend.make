# Empty compiler generated dependencies file for bench_fig09_binder.
# This may be replaced when dependencies are built.
