file(REMOVE_RECURSE
  "CMakeFiles/bench_fig08_sqlite.dir/bench_fig08_sqlite.cc.o"
  "CMakeFiles/bench_fig08_sqlite.dir/bench_fig08_sqlite.cc.o.d"
  "bench_fig08_sqlite"
  "bench_fig08_sqlite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig08_sqlite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
