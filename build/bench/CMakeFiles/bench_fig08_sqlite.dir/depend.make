# Empty dependencies file for bench_fig08_sqlite.
# This may be replaced when dependencies are built.
