# Empty compiler generated dependencies file for bench_fig07_tcp.
# This may be replaced when dependencies are built.
