file(REMOVE_RECURSE
  "CMakeFiles/bench_fig07_tcp.dir/bench_fig07_tcp.cc.o"
  "CMakeFiles/bench_fig07_tcp.dir/bench_fig07_tcp.cc.o.d"
  "bench_fig07_tcp"
  "bench_fig07_tcp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig07_tcp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
