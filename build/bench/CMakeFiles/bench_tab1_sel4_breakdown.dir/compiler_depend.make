# Empty compiler generated dependencies file for bench_tab1_sel4_breakdown.
# This may be replaced when dependencies are built.
