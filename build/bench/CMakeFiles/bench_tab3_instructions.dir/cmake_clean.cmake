file(REMOVE_RECURSE
  "CMakeFiles/bench_tab3_instructions.dir/bench_tab3_instructions.cc.o"
  "CMakeFiles/bench_tab3_instructions.dir/bench_tab3_instructions.cc.o.d"
  "bench_tab3_instructions"
  "bench_tab3_instructions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab3_instructions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
