# Empty dependencies file for bench_tab6_hwcost.
# This may be replaced when dependencies are built.
