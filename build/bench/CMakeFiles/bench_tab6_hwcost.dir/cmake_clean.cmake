file(REMOVE_RECURSE
  "CMakeFiles/bench_tab6_hwcost.dir/bench_tab6_hwcost.cc.o"
  "CMakeFiles/bench_tab6_hwcost.dir/bench_tab6_hwcost.cc.o.d"
  "bench_tab6_hwcost"
  "bench_tab6_hwcost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab6_hwcost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
