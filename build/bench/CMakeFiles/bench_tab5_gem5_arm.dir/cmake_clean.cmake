file(REMOVE_RECURSE
  "CMakeFiles/bench_tab5_gem5_arm.dir/bench_tab5_gem5_arm.cc.o"
  "CMakeFiles/bench_tab5_gem5_arm.dir/bench_tab5_gem5_arm.cc.o.d"
  "bench_tab5_gem5_arm"
  "bench_tab5_gem5_arm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab5_gem5_arm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
