# Empty compiler generated dependencies file for bench_tab5_gem5_arm.
# This may be replaced when dependencies are built.
