file(REMOVE_RECURSE
  "CMakeFiles/bench_tab7_comparison.dir/bench_tab7_comparison.cc.o"
  "CMakeFiles/bench_tab7_comparison.dir/bench_tab7_comparison.cc.o.d"
  "bench_tab7_comparison"
  "bench_tab7_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab7_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
