file(REMOVE_RECURSE
  "CMakeFiles/bench_fig07_fs.dir/bench_fig07_fs.cc.o"
  "CMakeFiles/bench_fig07_fs.dir/bench_fig07_fs.cc.o.d"
  "bench_fig07_fs"
  "bench_fig07_fs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig07_fs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
