file(REMOVE_RECURSE
  "CMakeFiles/bench_fig08_http.dir/bench_fig08_http.cc.o"
  "CMakeFiles/bench_fig08_http.dir/bench_fig08_http.cc.o.d"
  "bench_fig08_http"
  "bench_fig08_http.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig08_http.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
