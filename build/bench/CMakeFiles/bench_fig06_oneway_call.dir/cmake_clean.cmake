file(REMOVE_RECURSE
  "CMakeFiles/bench_fig06_oneway_call.dir/bench_fig06_oneway_call.cc.o"
  "CMakeFiles/bench_fig06_oneway_call.dir/bench_fig06_oneway_call.cc.o.d"
  "bench_fig06_oneway_call"
  "bench_fig06_oneway_call.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig06_oneway_call.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
