# Empty dependencies file for bench_fig06_oneway_call.
# This may be replaced when dependencies are built.
