file(REMOVE_RECURSE
  "libxpc_sim.a"
)
