file(REMOVE_RECURSE
  "CMakeFiles/xpc_sim.dir/fault_injector.cc.o"
  "CMakeFiles/xpc_sim.dir/fault_injector.cc.o.d"
  "CMakeFiles/xpc_sim.dir/logging.cc.o"
  "CMakeFiles/xpc_sim.dir/logging.cc.o.d"
  "CMakeFiles/xpc_sim.dir/random.cc.o"
  "CMakeFiles/xpc_sim.dir/random.cc.o.d"
  "CMakeFiles/xpc_sim.dir/stats.cc.o"
  "CMakeFiles/xpc_sim.dir/stats.cc.o.d"
  "libxpc_sim.a"
  "libxpc_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xpc_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
