# Empty dependencies file for xpc_sim.
# This may be replaced when dependencies are built.
