
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/services/block_device.cc" "src/services/CMakeFiles/xpc_services.dir/block_device.cc.o" "gcc" "src/services/CMakeFiles/xpc_services.dir/block_device.cc.o.d"
  "/root/repo/src/services/crypto/aes.cc" "src/services/CMakeFiles/xpc_services.dir/crypto/aes.cc.o" "gcc" "src/services/CMakeFiles/xpc_services.dir/crypto/aes.cc.o.d"
  "/root/repo/src/services/fs/xv6fs.cc" "src/services/CMakeFiles/xpc_services.dir/fs/xv6fs.cc.o" "gcc" "src/services/CMakeFiles/xpc_services.dir/fs/xv6fs.cc.o.d"
  "/root/repo/src/services/fs_server.cc" "src/services/CMakeFiles/xpc_services.dir/fs_server.cc.o" "gcc" "src/services/CMakeFiles/xpc_services.dir/fs_server.cc.o.d"
  "/root/repo/src/services/name_server.cc" "src/services/CMakeFiles/xpc_services.dir/name_server.cc.o" "gcc" "src/services/CMakeFiles/xpc_services.dir/name_server.cc.o.d"
  "/root/repo/src/services/net/tcp.cc" "src/services/CMakeFiles/xpc_services.dir/net/tcp.cc.o" "gcc" "src/services/CMakeFiles/xpc_services.dir/net/tcp.cc.o.d"
  "/root/repo/src/services/net_server.cc" "src/services/CMakeFiles/xpc_services.dir/net_server.cc.o" "gcc" "src/services/CMakeFiles/xpc_services.dir/net_server.cc.o.d"
  "/root/repo/src/services/supervisor.cc" "src/services/CMakeFiles/xpc_services.dir/supervisor.cc.o" "gcc" "src/services/CMakeFiles/xpc_services.dir/supervisor.cc.o.d"
  "/root/repo/src/services/web.cc" "src/services/CMakeFiles/xpc_services.dir/web.cc.o" "gcc" "src/services/CMakeFiles/xpc_services.dir/web.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/xpc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/kernel/CMakeFiles/xpc_kernel.dir/DependInfo.cmake"
  "/root/repo/build/src/xpc/CMakeFiles/xpc_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/xpc_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/xpc_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/xpc_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
