file(REMOVE_RECURSE
  "CMakeFiles/xpc_services.dir/block_device.cc.o"
  "CMakeFiles/xpc_services.dir/block_device.cc.o.d"
  "CMakeFiles/xpc_services.dir/crypto/aes.cc.o"
  "CMakeFiles/xpc_services.dir/crypto/aes.cc.o.d"
  "CMakeFiles/xpc_services.dir/fs/xv6fs.cc.o"
  "CMakeFiles/xpc_services.dir/fs/xv6fs.cc.o.d"
  "CMakeFiles/xpc_services.dir/fs_server.cc.o"
  "CMakeFiles/xpc_services.dir/fs_server.cc.o.d"
  "CMakeFiles/xpc_services.dir/name_server.cc.o"
  "CMakeFiles/xpc_services.dir/name_server.cc.o.d"
  "CMakeFiles/xpc_services.dir/net/tcp.cc.o"
  "CMakeFiles/xpc_services.dir/net/tcp.cc.o.d"
  "CMakeFiles/xpc_services.dir/net_server.cc.o"
  "CMakeFiles/xpc_services.dir/net_server.cc.o.d"
  "CMakeFiles/xpc_services.dir/supervisor.cc.o"
  "CMakeFiles/xpc_services.dir/supervisor.cc.o.d"
  "CMakeFiles/xpc_services.dir/web.cc.o"
  "CMakeFiles/xpc_services.dir/web.cc.o.d"
  "libxpc_services.a"
  "libxpc_services.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xpc_services.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
