# Empty dependencies file for xpc_services.
# This may be replaced when dependencies are built.
