file(REMOVE_RECURSE
  "libxpc_services.a"
)
