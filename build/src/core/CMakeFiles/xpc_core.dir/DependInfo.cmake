
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/system.cc" "src/core/CMakeFiles/xpc_core.dir/system.cc.o" "gcc" "src/core/CMakeFiles/xpc_core.dir/system.cc.o.d"
  "/root/repo/src/core/transport.cc" "src/core/CMakeFiles/xpc_core.dir/transport.cc.o" "gcc" "src/core/CMakeFiles/xpc_core.dir/transport.cc.o.d"
  "/root/repo/src/core/transport_sel4.cc" "src/core/CMakeFiles/xpc_core.dir/transport_sel4.cc.o" "gcc" "src/core/CMakeFiles/xpc_core.dir/transport_sel4.cc.o.d"
  "/root/repo/src/core/transport_xpc.cc" "src/core/CMakeFiles/xpc_core.dir/transport_xpc.cc.o" "gcc" "src/core/CMakeFiles/xpc_core.dir/transport_xpc.cc.o.d"
  "/root/repo/src/core/transport_zircon.cc" "src/core/CMakeFiles/xpc_core.dir/transport_zircon.cc.o" "gcc" "src/core/CMakeFiles/xpc_core.dir/transport_zircon.cc.o.d"
  "/root/repo/src/core/xpc_runtime.cc" "src/core/CMakeFiles/xpc_core.dir/xpc_runtime.cc.o" "gcc" "src/core/CMakeFiles/xpc_core.dir/xpc_runtime.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/kernel/CMakeFiles/xpc_kernel.dir/DependInfo.cmake"
  "/root/repo/build/src/xpc/CMakeFiles/xpc_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/xpc_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/xpc_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/xpc_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
