file(REMOVE_RECURSE
  "libxpc_core.a"
)
