# Empty dependencies file for xpc_core.
# This may be replaced when dependencies are built.
