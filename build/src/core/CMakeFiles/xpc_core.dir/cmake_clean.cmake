file(REMOVE_RECURSE
  "CMakeFiles/xpc_core.dir/system.cc.o"
  "CMakeFiles/xpc_core.dir/system.cc.o.d"
  "CMakeFiles/xpc_core.dir/transport.cc.o"
  "CMakeFiles/xpc_core.dir/transport.cc.o.d"
  "CMakeFiles/xpc_core.dir/transport_sel4.cc.o"
  "CMakeFiles/xpc_core.dir/transport_sel4.cc.o.d"
  "CMakeFiles/xpc_core.dir/transport_xpc.cc.o"
  "CMakeFiles/xpc_core.dir/transport_xpc.cc.o.d"
  "CMakeFiles/xpc_core.dir/transport_zircon.cc.o"
  "CMakeFiles/xpc_core.dir/transport_zircon.cc.o.d"
  "CMakeFiles/xpc_core.dir/xpc_runtime.cc.o"
  "CMakeFiles/xpc_core.dir/xpc_runtime.cc.o.d"
  "libxpc_core.a"
  "libxpc_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xpc_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
