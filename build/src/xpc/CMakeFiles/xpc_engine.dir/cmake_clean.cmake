file(REMOVE_RECURSE
  "CMakeFiles/xpc_engine.dir/engine.cc.o"
  "CMakeFiles/xpc_engine.dir/engine.cc.o.d"
  "libxpc_engine.a"
  "libxpc_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xpc_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
