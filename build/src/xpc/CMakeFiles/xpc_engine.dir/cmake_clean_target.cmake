file(REMOVE_RECURSE
  "libxpc_engine.a"
)
