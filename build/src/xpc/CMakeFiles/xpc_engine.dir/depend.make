# Empty dependencies file for xpc_engine.
# This may be replaced when dependencies are built.
