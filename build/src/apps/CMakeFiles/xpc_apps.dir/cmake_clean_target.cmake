file(REMOVE_RECURSE
  "libxpc_apps.a"
)
