file(REMOVE_RECURSE
  "CMakeFiles/xpc_apps.dir/minidb/btree.cc.o"
  "CMakeFiles/xpc_apps.dir/minidb/btree.cc.o.d"
  "CMakeFiles/xpc_apps.dir/minidb/minidb.cc.o"
  "CMakeFiles/xpc_apps.dir/minidb/minidb.cc.o.d"
  "CMakeFiles/xpc_apps.dir/minidb/paged_file.cc.o"
  "CMakeFiles/xpc_apps.dir/minidb/paged_file.cc.o.d"
  "CMakeFiles/xpc_apps.dir/ycsb.cc.o"
  "CMakeFiles/xpc_apps.dir/ycsb.cc.o.d"
  "libxpc_apps.a"
  "libxpc_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xpc_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
