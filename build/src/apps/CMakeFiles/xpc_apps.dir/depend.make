# Empty dependencies file for xpc_apps.
# This may be replaced when dependencies are built.
