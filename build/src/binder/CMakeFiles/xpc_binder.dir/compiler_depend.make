# Empty compiler generated dependencies file for xpc_binder.
# This may be replaced when dependencies are built.
