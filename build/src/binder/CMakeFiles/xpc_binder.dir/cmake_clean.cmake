file(REMOVE_RECURSE
  "CMakeFiles/xpc_binder.dir/binder.cc.o"
  "CMakeFiles/xpc_binder.dir/binder.cc.o.d"
  "CMakeFiles/xpc_binder.dir/parcel.cc.o"
  "CMakeFiles/xpc_binder.dir/parcel.cc.o.d"
  "libxpc_binder.a"
  "libxpc_binder.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xpc_binder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
