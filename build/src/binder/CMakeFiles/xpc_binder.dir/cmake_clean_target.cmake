file(REMOVE_RECURSE
  "libxpc_binder.a"
)
