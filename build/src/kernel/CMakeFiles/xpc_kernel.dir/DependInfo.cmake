
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kernel/address_space.cc" "src/kernel/CMakeFiles/xpc_kernel.dir/address_space.cc.o" "gcc" "src/kernel/CMakeFiles/xpc_kernel.dir/address_space.cc.o.d"
  "/root/repo/src/kernel/kernel.cc" "src/kernel/CMakeFiles/xpc_kernel.dir/kernel.cc.o" "gcc" "src/kernel/CMakeFiles/xpc_kernel.dir/kernel.cc.o.d"
  "/root/repo/src/kernel/sel4.cc" "src/kernel/CMakeFiles/xpc_kernel.dir/sel4.cc.o" "gcc" "src/kernel/CMakeFiles/xpc_kernel.dir/sel4.cc.o.d"
  "/root/repo/src/kernel/thread.cc" "src/kernel/CMakeFiles/xpc_kernel.dir/thread.cc.o" "gcc" "src/kernel/CMakeFiles/xpc_kernel.dir/thread.cc.o.d"
  "/root/repo/src/kernel/xpc_manager.cc" "src/kernel/CMakeFiles/xpc_kernel.dir/xpc_manager.cc.o" "gcc" "src/kernel/CMakeFiles/xpc_kernel.dir/xpc_manager.cc.o.d"
  "/root/repo/src/kernel/zircon.cc" "src/kernel/CMakeFiles/xpc_kernel.dir/zircon.cc.o" "gcc" "src/kernel/CMakeFiles/xpc_kernel.dir/zircon.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/xpc/CMakeFiles/xpc_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/xpc_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/xpc_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/xpc_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
