# Empty dependencies file for xpc_kernel.
# This may be replaced when dependencies are built.
