file(REMOVE_RECURSE
  "CMakeFiles/xpc_kernel.dir/address_space.cc.o"
  "CMakeFiles/xpc_kernel.dir/address_space.cc.o.d"
  "CMakeFiles/xpc_kernel.dir/kernel.cc.o"
  "CMakeFiles/xpc_kernel.dir/kernel.cc.o.d"
  "CMakeFiles/xpc_kernel.dir/sel4.cc.o"
  "CMakeFiles/xpc_kernel.dir/sel4.cc.o.d"
  "CMakeFiles/xpc_kernel.dir/thread.cc.o"
  "CMakeFiles/xpc_kernel.dir/thread.cc.o.d"
  "CMakeFiles/xpc_kernel.dir/xpc_manager.cc.o"
  "CMakeFiles/xpc_kernel.dir/xpc_manager.cc.o.d"
  "CMakeFiles/xpc_kernel.dir/zircon.cc.o"
  "CMakeFiles/xpc_kernel.dir/zircon.cc.o.d"
  "libxpc_kernel.a"
  "libxpc_kernel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xpc_kernel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
