file(REMOVE_RECURSE
  "libxpc_kernel.a"
)
