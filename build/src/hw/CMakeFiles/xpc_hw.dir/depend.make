# Empty dependencies file for xpc_hw.
# This may be replaced when dependencies are built.
