file(REMOVE_RECURSE
  "libxpc_hw.a"
)
