file(REMOVE_RECURSE
  "CMakeFiles/xpc_hw.dir/machine.cc.o"
  "CMakeFiles/xpc_hw.dir/machine.cc.o.d"
  "CMakeFiles/xpc_hw.dir/machine_config.cc.o"
  "CMakeFiles/xpc_hw.dir/machine_config.cc.o.d"
  "libxpc_hw.a"
  "libxpc_hw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xpc_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
