file(REMOVE_RECURSE
  "CMakeFiles/xpc_mem.dir/cache.cc.o"
  "CMakeFiles/xpc_mem.dir/cache.cc.o.d"
  "CMakeFiles/xpc_mem.dir/mem_system.cc.o"
  "CMakeFiles/xpc_mem.dir/mem_system.cc.o.d"
  "CMakeFiles/xpc_mem.dir/page_table.cc.o"
  "CMakeFiles/xpc_mem.dir/page_table.cc.o.d"
  "CMakeFiles/xpc_mem.dir/phys_mem.cc.o"
  "CMakeFiles/xpc_mem.dir/phys_mem.cc.o.d"
  "CMakeFiles/xpc_mem.dir/tlb.cc.o"
  "CMakeFiles/xpc_mem.dir/tlb.cc.o.d"
  "libxpc_mem.a"
  "libxpc_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xpc_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
