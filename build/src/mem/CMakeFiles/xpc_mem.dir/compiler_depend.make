# Empty compiler generated dependencies file for xpc_mem.
# This may be replaced when dependencies are built.
