file(REMOVE_RECURSE
  "libxpc_mem.a"
)
