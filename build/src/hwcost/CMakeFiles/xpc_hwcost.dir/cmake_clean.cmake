file(REMOVE_RECURSE
  "CMakeFiles/xpc_hwcost.dir/resource_model.cc.o"
  "CMakeFiles/xpc_hwcost.dir/resource_model.cc.o.d"
  "libxpc_hwcost.a"
  "libxpc_hwcost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xpc_hwcost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
