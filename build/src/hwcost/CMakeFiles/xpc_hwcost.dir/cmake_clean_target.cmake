file(REMOVE_RECURSE
  "libxpc_hwcost.a"
)
