# Empty compiler generated dependencies file for xpc_hwcost.
# This may be replaced when dependencies are built.
