file(REMOVE_RECURSE
  "CMakeFiles/web_chain.dir/web_chain.cpp.o"
  "CMakeFiles/web_chain.dir/web_chain.cpp.o.d"
  "web_chain"
  "web_chain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/web_chain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
