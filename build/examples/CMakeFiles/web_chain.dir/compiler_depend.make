# Empty compiler generated dependencies file for web_chain.
# This may be replaced when dependencies are built.
