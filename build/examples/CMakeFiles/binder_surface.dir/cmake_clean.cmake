file(REMOVE_RECURSE
  "CMakeFiles/binder_surface.dir/binder_surface.cpp.o"
  "CMakeFiles/binder_surface.dir/binder_surface.cpp.o.d"
  "binder_surface"
  "binder_surface.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/binder_surface.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
