# Empty dependencies file for binder_surface.
# This may be replaced when dependencies are built.
