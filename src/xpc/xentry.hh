/**
 * @file
 * In-memory layout of x-entries, linkage records and seg-list slots.
 *
 * These live in simulated DRAM and are read/written by the engine
 * through the cache hierarchy, so their sizes directly determine
 * instruction latency (Figure 5's breakdown).
 */

#ifndef XPC_XPC_XENTRY_HH
#define XPC_XPC_XENTRY_HH

#include <cstdint>

#include "mem/mem_system.hh"
#include "sim/types.hh"

namespace xpc::engine {

/** Decoded x-entry (paper Figure 2: one row of the x-entry table). */
struct XEntry
{
    bool valid = false;
    /** Page table pointer of the server's address space. */
    PAddr pageTableRoot = 0;
    /** Procedure entrance address (we treat it as an opaque token the
     *  runtime maps to a handler). */
    VAddr entryAddr = 0;
    /** xcall-cap-reg value installed for the handler (also selects
     *  the server's runtime state, paper 4.2). */
    PAddr capPtr = 0;
    /** seg-list of the server's address space, installed on entry so
     *  the callee's swapseg works. The paper's Figure 2 leaves this
     *  implicit; we model it as a fifth x-entry field. */
    PAddr segList = 0;
};

/** Byte size of one packed x-entry. */
constexpr uint64_t xEntryBytes = 40;

/** Decoded linkage record (one row of the per-thread link stack). */
struct LinkageRecord
{
    bool valid = false;
    PAddr callerPageTable = 0;
    PAddr callerCapPtr = 0;
    PAddr callerSegList = 0;
    mem::SegWindow callerSeg;
    uint64_t callerSegId = 0;
    uint64_t callerMaskOffset = 0;
    uint64_t callerMaskLen = 0;
    /** Opaque token the runtime uses to find the caller context
     *  (stands in for the hardware return address). */
    uint64_t returnToken = 0;
};

/** Byte size of one packed linkage record. */
constexpr uint64_t linkageRecordBytes = 96;

/** Default link stack allocation (paper 4.1: 8 KiB per thread). */
constexpr uint64_t linkStackBytes = 8192;

/** Records that fit in one link stack. */
constexpr uint64_t linkStackCapacity = linkStackBytes / linkageRecordBytes;

/** One relay segment as stored in a seg-list slot. */
struct RelaySegEntry
{
    bool valid = false;
    mem::SegWindow window;
    /** Kernel-assigned identity used for ownership tracking. */
    uint64_t segId = 0;
};

/** Byte size of one packed seg-list slot. */
constexpr uint64_t segListEntryBytes = 32;

/** Seg-list slots per process (one 4 KiB page, paper 4.1). */
constexpr uint64_t segListCapacity = pageSize / segListEntryBytes;

/** Default x-entry table size (paper 4.1: 1024 entries). */
constexpr uint64_t defaultXEntryCount = 1024;

/** Bytes of the per-thread xcall capability bitmap (paper 4.1). */
constexpr uint64_t xcallCapBitmapBytes = 128;

} // namespace xpc::engine

#endif // XPC_XPC_XENTRY_HH
