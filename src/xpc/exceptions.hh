/**
 * @file
 * The five exceptions the XPC engine can raise (paper Table 2).
 */

#ifndef XPC_XPC_EXCEPTIONS_HH
#define XPC_XPC_EXCEPTIONS_HH

namespace xpc::engine {

/** Exception causes reported to the kernel by the XPC engine. */
enum class XpcException
{
    None,
    /** xcall to an out-of-range or invalid x-entry. */
    InvalidXEntry,
    /** xcall without the corresponding capability bit. */
    InvalidXcallCap,
    /** xret onto an empty stack or an invalidated linkage record. */
    InvalidLinkage,
    /** swapseg with an out-of-range seg-list index. */
    SwapsegError,
    /** seg-mask outside the active relay segment, or a callee that
     *  tries to xret with a tampered seg-reg. */
    InvalidSegMask,
};

/** @return a printable name for @p exc. */
constexpr const char *
xpcExceptionName(XpcException exc)
{
    switch (exc) {
      case XpcException::None:
        return "none";
      case XpcException::InvalidXEntry:
        return "invalid-x-entry";
      case XpcException::InvalidXcallCap:
        return "invalid-xcall-cap";
      case XpcException::InvalidLinkage:
        return "invalid-linkage";
      case XpcException::SwapsegError:
        return "swapseg-error";
      case XpcException::InvalidSegMask:
        return "invalid-seg-mask";
    }
    return "unknown";
}

} // namespace xpc::engine

#endif // XPC_XPC_EXCEPTIONS_HH
