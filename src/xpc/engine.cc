#include "engine.hh"

#include <cstring>

#include "sim/fault_injector.hh"
#include "sim/logging.hh"
#include "sim/trace.hh"

namespace xpc::engine {

namespace {

/** Flag bits packed into word 0 of the serialized structures. */
constexpr uint64_t flagValid = 1;
constexpr uint64_t flagSegValid = 1 << 1;
constexpr uint64_t flagSegRead = 1 << 2;
constexpr uint64_t flagSegWrite = 1 << 3;

uint64_t
packSegFlags(const mem::SegWindow &w)
{
    uint64_t f = 0;
    if (w.valid)
        f |= flagSegValid;
    if (w.read)
        f |= flagSegRead;
    if (w.write)
        f |= flagSegWrite;
    return f;
}

void
unpackSegFlags(uint64_t f, mem::SegWindow &w)
{
    w.valid = (f & flagSegValid) != 0;
    w.read = (f & flagSegRead) != 0;
    w.write = (f & flagSegWrite) != 0;
}

} // namespace

XpcEngine::XpcEngine(hw::Machine &m, const XpcEngineOptions &options)
    : machine(m), opts(options), cache(m.coreCount())
{
    stats.addCounter("xcalls", &xcalls);
    stats.addCounter("xrets", &xrets);
    stats.addCounter("swapsegs", &swapsegs);
    stats.addCounter("engine_cache_hits", &engineCacheHits);
    stats.addCounter("exceptions", &exceptions);
}

mem::SegWindow
XpcEngine::effectiveSeg(const hw::XpcCsrs &csrs)
{
    const mem::SegWindow &seg = csrs.segReg;
    if (!seg.valid)
        return {};
    if (csrs.segMaskLen == 0)
        return seg; // unmasked
    mem::SegWindow out = seg;
    out.vaBase = seg.vaBase + csrs.segMaskOffset;
    out.paBase = seg.paBase + csrs.segMaskOffset;
    out.len = csrs.segMaskLen;
    return out;
}

void
XpcEngine::writeXEntry(mem::PhysMem &phys, PAddr table_base, uint64_t id,
                       const XEntry &entry)
{
    PAddr base = table_base + id * xEntryBytes;
    phys.write64(base + 0, entry.valid ? flagValid : 0);
    phys.write64(base + 8, entry.pageTableRoot);
    phys.write64(base + 16, entry.entryAddr);
    phys.write64(base + 24, entry.capPtr);
    phys.write64(base + 32, entry.segList);
}

XEntry
XpcEngine::readXEntry(mem::PhysMem &phys, PAddr table_base, uint64_t id)
{
    PAddr base = table_base + id * xEntryBytes;
    XEntry e;
    e.valid = (phys.read64(base + 0) & flagValid) != 0;
    e.pageTableRoot = phys.read64(base + 8);
    e.entryAddr = phys.read64(base + 16);
    e.capPtr = phys.read64(base + 24);
    e.segList = phys.read64(base + 32);
    return e;
}

void
XpcEngine::writeSegListEntry(mem::PhysMem &phys, PAddr list_base,
                             uint64_t index, const RelaySegEntry &entry)
{
    panic_if(index >= segListCapacity, "seg-list index %lu out of range",
             (unsigned long)index);
    PAddr base = list_base + index * segListEntryBytes;
    phys.write64(base + 0, (entry.valid ? flagValid : 0) |
                               packSegFlags(entry.window));
    phys.write64(base + 8, entry.window.vaBase);
    phys.write64(base + 16,
                 entry.window.paBase | (entry.segId << 40));
    phys.write64(base + 24, entry.window.len);
}

RelaySegEntry
XpcEngine::readSegListEntry(mem::PhysMem &phys, PAddr list_base,
                            uint64_t index)
{
    panic_if(index >= segListCapacity, "seg-list index %lu out of range",
             (unsigned long)index);
    PAddr base = list_base + index * segListEntryBytes;
    RelaySegEntry e;
    uint64_t flags = phys.read64(base + 0);
    e.valid = (flags & flagValid) != 0;
    unpackSegFlags(flags, e.window);
    e.window.vaBase = phys.read64(base + 8);
    uint64_t word2 = phys.read64(base + 16);
    e.window.paBase = word2 & ((uint64_t(1) << 40) - 1);
    e.segId = word2 >> 40;
    e.window.len = phys.read64(base + 24);
    return e;
}

void
XpcEngine::writeLinkageRecord(mem::PhysMem &phys, PAddr stack_base,
                              uint64_t index, const LinkageRecord &r)
{
    panic_if(index >= linkStackCapacity,
             "link stack index %lu out of range", (unsigned long)index);
    PAddr base = stack_base + index * linkageRecordBytes;
    phys.write64(base + 0, (r.valid ? flagValid : 0) |
                               packSegFlags(r.callerSeg));
    phys.write64(base + 8, r.callerPageTable);
    phys.write64(base + 16, r.callerCapPtr);
    phys.write64(base + 24, r.callerSegList);
    phys.write64(base + 32, r.callerSeg.vaBase);
    phys.write64(base + 40, r.callerSeg.paBase);
    phys.write64(base + 48, r.callerSeg.len);
    phys.write64(base + 56, r.callerSegId);
    phys.write64(base + 64, r.callerMaskOffset);
    phys.write64(base + 72, r.callerMaskLen);
    phys.write64(base + 80, r.returnToken);
}

LinkageRecord
XpcEngine::readLinkageRecord(mem::PhysMem &phys, PAddr stack_base,
                             uint64_t index)
{
    panic_if(index >= linkStackCapacity,
             "link stack index %lu out of range", (unsigned long)index);
    PAddr base = stack_base + index * linkageRecordBytes;
    LinkageRecord r;
    uint64_t flags = phys.read64(base + 0);
    r.valid = (flags & flagValid) != 0;
    unpackSegFlags(flags, r.callerSeg);
    r.callerPageTable = phys.read64(base + 8);
    r.callerCapPtr = phys.read64(base + 16);
    r.callerSegList = phys.read64(base + 24);
    r.callerSeg.vaBase = phys.read64(base + 32);
    r.callerSeg.paBase = phys.read64(base + 40);
    r.callerSeg.len = phys.read64(base + 48);
    r.callerSegId = phys.read64(base + 56);
    r.callerMaskOffset = phys.read64(base + 64);
    r.callerMaskLen = phys.read64(base + 72);
    r.returnToken = phys.read64(base + 80);
    return r;
}

bool
XpcEngine::readCapBit(hw::Core &core, uint64_t entry_id)
{
    if (opts.radixCaps) {
        // Radix-tree lookup (paper 6.2): two dependent interior-node
        // fetches before the leaf word. Same functional result, read
        // from the same bitmap; the extra traffic models the chase.
        uint64_t scratch;
        core.spend(core.mem().readPhys(
            core.id(), core.csrs.xcallCap + pageSize - 64, &scratch,
            8));
        core.spend(core.mem().readPhys(
            core.id(),
            core.csrs.xcallCap + pageSize - 128 - (entry_id / 512) * 8,
            &scratch, 8));
    }
    PAddr word_addr = core.csrs.xcallCap + (entry_id / 64) * 8;
    uint64_t word = 0;
    core.spend(core.mem().readPhys(core.id(), word_addr, &word, 8));
    return (word >> (entry_id % 64)) & 1;
}

XEntry
XpcEngine::loadXEntry(hw::Core &core, uint64_t entry_id)
{
    PAddr base = core.csrs.xEntryTable + entry_id * xEntryBytes;
    uint8_t raw[xEntryBytes];
    core.spend(core.mem().readPhys(core.id(), base, raw, xEntryBytes));
    return readXEntry(core.mem().phys(), core.csrs.xEntryTable,
                      entry_id);
}

void
XpcEngine::switchPageTable(hw::Core &core, PAddr new_root)
{
    if (core.csrs.pageTableRoot == new_root)
        return;
    core.csrs.pageTableRoot = new_root;
    if (!core.mem().params().taggedTlb) {
        core.spend(machine.config().core.tlbFlush);
        core.spend(machine.config().core.tlbRefillOnSwitch);
        core.mem().flushTlb(core.id());
    }
}

XcallResult
XpcEngine::xcall(hw::Core &core, uint64_t entry_id,
                 uint64_t return_token)
{
    XcallResult res;
    xcalls.inc();
    trace::Span span(core, "engine", "xcall");
    hw::XpcCsrs &csrs = core.csrs;
    core.spend(machine.config().xpc.xcallLogic);

    // Chaos hook: a forced exception models the engine tripping on
    // corrupted state (bad cap word, clobbered table entry) that the
    // functional model cannot otherwise reach.
    if (FaultInjector *inj = machine.faultInjector()) {
        uint32_t forced;
        if (inj->consumeEngineException(&forced)) {
            exceptions.inc();
            res.exc = XpcException(forced);
            return res;
        }
    }

    // 1-2: capability check and x-entry load, possibly short-circuited
    // by the engine cache.
    bool cap_ok;
    XEntry entry;
    {
        trace::Span s(core, "engine", "cap_check");
        EngineCacheEntry &cached = cache[core.id()];
        bool cache_hit = opts.engineCache && cached.valid &&
                         cached.capPtr == csrs.xcallCap &&
                         cached.entryId == entry_id;
        if (cache_hit) {
            engineCacheHits.inc();
            core.spend(Cycles(1));
            cap_ok = cached.capBit;
            entry = cached.entry;
        } else {
            if (entry_id >= csrs.xEntryTableSize) {
                exceptions.inc();
                res.exc = XpcException::InvalidXEntry;
                return res;
            }
            cap_ok = readCapBit(core, entry_id);
            entry = loadXEntry(core, entry_id);
        }
    }

    if (!cap_ok) {
        exceptions.inc();
        res.exc = XpcException::InvalidXcallCap;
        return res;
    }
    if (!entry.valid || entry_id >= csrs.xEntryTableSize) {
        exceptions.inc();
        res.exc = XpcException::InvalidXEntry;
        return res;
    }

    // 3: push the linkage record.
    if (csrs.linkTop >= linkStackCapacity) {
        exceptions.inc();
        res.exc = XpcException::InvalidLinkage;
        return res;
    }
    {
        trace::Span s(core, "engine", "link_push");
        LinkageRecord rec;
        rec.valid = true;
        rec.callerPageTable = csrs.pageTableRoot;
        rec.callerCapPtr = csrs.xcallCap;
        rec.callerSegList = csrs.segList;
        rec.callerSeg = csrs.segReg;
        rec.callerSegId = csrs.segId;
        rec.callerMaskOffset = csrs.segMaskOffset;
        rec.callerMaskLen = csrs.segMaskLen;
        rec.returnToken = return_token;
        writeLinkageRecord(core.mem().phys(), csrs.linkReg,
                           csrs.linkTop, rec);
        if (!opts.nonblockingLinkStack) {
            // A blocking push stalls on the store traffic; the
            // non-blocking stack hides it behind the switch (3.2).
            core.spend(machine.config().xpc.linkPushBlocking);
            core.spend(core.mem().l1(core.id())
                           .access(csrs.linkReg +
                                       csrs.linkTop *
                                           linkageRecordBytes,
                                   linkageRecordBytes, true));
        }
        csrs.linkTop++;
    }

    // 4: switch to the callee: page table, capability register,
    // seg-list, and hand over the (masked) relay segment.
    {
        trace::Span s(core, "engine", "pt_switch");
        res.callerCapPtr = csrs.xcallCap;
        mem::SegWindow handover = effectiveSeg(csrs);
        csrs.segReg = handover;
        csrs.segMaskOffset = 0;
        csrs.segMaskLen = 0;
        csrs.xcallCap = entry.capPtr;
        csrs.segList = entry.segList;
        switchPageTable(core, entry.pageTableRoot);
    }

    res.entry = entry;
    return res;
}

XretResult
XpcEngine::xret(hw::Core &core)
{
    XretResult res;
    xrets.inc();
    trace::Span span(core, "engine", "xret");
    hw::XpcCsrs &csrs = core.csrs;
    core.spend(machine.config().xpc.xretLogic);

    if (csrs.linkTop == 0) {
        exceptions.inc();
        res.exc = XpcException::InvalidLinkage;
        return res;
    }

    uint64_t index = csrs.linkTop - 1;
    PAddr rec_addr = csrs.linkReg + index * linkageRecordBytes;
    core.spend(core.mem().l1(core.id())
                   .access(rec_addr, linkageRecordBytes, false));
    core.spend(Cycles((linkageRecordBytes /
                       core.mem().params().wordBytes) *
                      core.mem().params().perWordIssue.value()));
    LinkageRecord rec =
        readLinkageRecord(core.mem().phys(), csrs.linkReg, index);

    if (!rec.valid) {
        exceptions.inc();
        res.exc = XpcException::InvalidLinkage;
        return res;
    }

    // The callee must return exactly the segment it was handed: the
    // current seg-reg has to match caller-seg narrowed by caller-mask
    // (paper 3.3, "Return a relay-seg").
    hw::XpcCsrs expect;
    expect.segReg = rec.callerSeg;
    expect.segMaskOffset = rec.callerMaskOffset;
    expect.segMaskLen = rec.callerMaskLen;
    mem::SegWindow expected = effectiveSeg(expect);
    const mem::SegWindow &cur = csrs.segReg;
    bool seg_ok = cur.valid == expected.valid &&
                  (!cur.valid ||
                   (cur.vaBase == expected.vaBase &&
                    cur.paBase == expected.paBase &&
                    cur.len == expected.len));
    if (!seg_ok) {
        exceptions.inc();
        res.exc = XpcException::InvalidSegMask;
        return res;
    }

    // Consume the record and restore the caller's state.
    LinkageRecord dead = rec;
    dead.valid = false;
    writeLinkageRecord(core.mem().phys(), csrs.linkReg, index, dead);
    csrs.linkTop = index;

    csrs.xcallCap = rec.callerCapPtr;
    csrs.segList = rec.callerSegList;
    csrs.segReg = rec.callerSeg;
    csrs.segId = rec.callerSegId;
    csrs.segMaskOffset = rec.callerMaskOffset;
    csrs.segMaskLen = rec.callerMaskLen;
    switchPageTable(core, rec.callerPageTable);

    res.record = rec;
    return res;
}

XpcException
XpcEngine::swapseg(hw::Core &core, uint64_t index)
{
    swapsegs.inc();
    trace::Span span(core, "engine", "swapseg");
    hw::XpcCsrs &csrs = core.csrs;
    core.spend(machine.config().xpc.swapsegLogic);

    if (csrs.segList == 0 || index >= segListCapacity) {
        exceptions.inc();
        return XpcException::SwapsegError;
    }

    PAddr slot = csrs.segList + index * segListEntryBytes;
    core.spend(core.mem().l1(core.id())
                   .access(slot, segListEntryBytes, true));

    RelaySegEntry from_list =
        readSegListEntry(core.mem().phys(), csrs.segList, index);

    RelaySegEntry to_list;
    to_list.valid = csrs.segReg.valid;
    to_list.window = csrs.segReg;
    to_list.segId = csrs.segId;
    writeSegListEntry(core.mem().phys(), csrs.segList, index, to_list);

    csrs.segReg = from_list.valid ? from_list.window : mem::SegWindow{};
    csrs.segId = from_list.valid ? from_list.segId : 0;
    csrs.segMaskOffset = 0;
    csrs.segMaskLen = 0;
    return XpcException::None;
}

XpcException
XpcEngine::setSegMask(hw::Core &core, uint64_t offset, uint64_t len)
{
    hw::XpcCsrs &csrs = core.csrs;
    core.spend(Cycles(1));

    if (len == 0) {
        // Clearing the mask restores the full segment view.
        csrs.segMaskOffset = 0;
        csrs.segMaskLen = 0;
        return XpcException::None;
    }
    if (!csrs.segReg.valid || offset + len > csrs.segReg.len ||
        offset + len < offset) {
        exceptions.inc();
        return XpcException::InvalidSegMask;
    }
    csrs.segMaskOffset = offset;
    csrs.segMaskLen = len;
    return XpcException::None;
}

void
XpcEngine::prefetch(hw::Core &core, uint64_t entry_id)
{
    if (!opts.engineCache)
        return;
    hw::XpcCsrs &csrs = core.csrs;
    EngineCacheEntry &slot = cache[core.id()];
    slot.valid = false;
    if (entry_id >= csrs.xEntryTableSize)
        return;
    slot.capBit = readCapBit(core, entry_id);
    slot.entry = loadXEntry(core, entry_id);
    slot.capPtr = csrs.xcallCap;
    slot.entryId = entry_id;
    slot.valid = true;
}

} // namespace xpc::engine
