/**
 * @file
 * The XPC engine: the hardware unit the paper adds to each core.
 *
 * It implements the three instructions (xcall, xret, swapseg), the
 * seg-mask CSR write, the optional one-entry software-managed engine
 * cache with prefetch, and the optional non-blocking link stack. All
 * of its table walks are real memory accesses against simulated DRAM
 * charged through the core's cache hierarchy, so the latencies the
 * benches measure respond to locality exactly as the paper describes
 * (warm xcall ~18 cycles, cached ~6, blocking push +16).
 */

#ifndef XPC_XPC_ENGINE_HH
#define XPC_XPC_ENGINE_HH

#include <cstdint>

#include "hw/machine.hh"
#include "xpc/exceptions.hh"
#include "xpc/xentry.hh"

namespace xpc::engine {

/** Engine build-time options (the Figure 5 optimization rungs). */
struct XpcEngineOptions
{
    /** Hide the linkage-record push latency (paper 3.2). */
    bool nonblockingLinkStack = true;
    /** One-entry x-entry/capability cache with prefetch (paper 3.2). */
    bool engineCache = false;
    /** Model the radix-tree xcall-cap alternative of paper 6.2:
     *  scalable, but the lookup is pointer chasing instead of one
     *  bitmap word. */
    bool radixCaps = false;
};

/** Outcome of an xcall instruction. */
struct XcallResult
{
    XpcException exc = XpcException::None;
    /** The decoded target (valid iff exc == None). */
    XEntry entry;
    /** Caller's xcall-cap-reg, exposed to the callee in t0 so it can
     *  identify its caller (paper 3.2). */
    PAddr callerCapPtr = 0;
};

/** Outcome of an xret instruction. */
struct XretResult
{
    XpcException exc = XpcException::None;
    /** The restored caller state (valid iff exc == None). */
    LinkageRecord record;
};

/** The per-machine XPC engine model (stateless across cores except
 *  for the per-core engine cache). */
class XpcEngine
{
  public:
    XpcEngine(hw::Machine &machine, const XpcEngineOptions &options);

    const XpcEngineOptions &options() const { return opts; }

    /**
     * Execute xcall on @p core targeting x-entry @p entry_id.
     *
     * @param return_token opaque value the runtime later uses to find
     *        the caller context again; stands in for the return PC.
     */
    XcallResult xcall(hw::Core &core, uint64_t entry_id,
                      uint64_t return_token);

    /** Execute xret on @p core. */
    XretResult xret(hw::Core &core);

    /** Atomically exchange seg-reg with seg-list slot @p index. */
    XpcException swapseg(hw::Core &core, uint64_t index);

    /**
     * csrw seg-mask: narrow the visible relay segment to
     * [@p offset, @p offset + @p len) relative to seg-reg.
     */
    XpcException setSegMask(hw::Core &core, uint64_t offset,
                            uint64_t len);

    /** Prefetch @p entry_id into the engine cache (xcall with a
     *  negative id in the RTL; explicit here). */
    void prefetch(hw::Core &core, uint64_t entry_id);

    /**
     * The relay window the translation path should use right now:
     * seg-reg narrowed by seg-mask.
     */
    static mem::SegWindow effectiveSeg(const hw::XpcCsrs &csrs);

    /// @name Packed-structure accessors (used by the kernel, too).
    /// @{
    /** Functionally store @p entry at slot @p id of the table at
     *  @p table_base (no timing: kernel-side management). */
    static void writeXEntry(mem::PhysMem &phys, PAddr table_base,
                            uint64_t id, const XEntry &entry);
    static XEntry readXEntry(mem::PhysMem &phys, PAddr table_base,
                             uint64_t id);

    static void writeSegListEntry(mem::PhysMem &phys, PAddr list_base,
                                  uint64_t index,
                                  const RelaySegEntry &entry);
    static RelaySegEntry readSegListEntry(mem::PhysMem &phys,
                                          PAddr list_base,
                                          uint64_t index);

    static void writeLinkageRecord(mem::PhysMem &phys, PAddr stack_base,
                                   uint64_t index,
                                   const LinkageRecord &record);
    static LinkageRecord readLinkageRecord(mem::PhysMem &phys,
                                           PAddr stack_base,
                                           uint64_t index);
    /// @}

    Counter xcalls;
    Counter xrets;
    Counter swapsegs;
    Counter engineCacheHits;
    Counter exceptions;

    /** Registry node; attached to the system's group. */
    StatGroup stats{"engine"};

  private:
    hw::Machine &machine;
    XpcEngineOptions opts;

    /** One-entry per-core engine cache. */
    struct EngineCacheEntry
    {
        bool valid = false;
        PAddr capPtr = 0; ///< thread tag: whose prefetch filled it
        uint64_t entryId = 0;
        bool capBit = false;
        XEntry entry;
    };
    std::vector<EngineCacheEntry> cache;

    /** Charged read of the caller's capability bit. */
    bool readCapBit(hw::Core &core, uint64_t entry_id);
    /** Charged read of an x-entry through the cache hierarchy. */
    XEntry loadXEntry(hw::Core &core, uint64_t entry_id);
    /** Switch translation state to @p new_root, flushing an untagged
     *  TLB when the root actually changes. */
    void switchPageTable(hw::Core &core, PAddr new_root);
};

} // namespace xpc::engine

#endif // XPC_XPC_ENGINE_HH
