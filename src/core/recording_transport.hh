/**
 * @file
 * A decorator that forwards to an underlying transport while
 * recording every call's latency, handler time and message size -
 * the instrumentation behind the paper's Figure 1 (share of CPU time
 * spent in IPC, and the CDF of IPC time by message length).
 */

#ifndef XPC_CORE_RECORDING_TRANSPORT_HH
#define XPC_CORE_RECORDING_TRANSPORT_HH

#include "core/transport.hh"

namespace xpc::core {

/** Per-call record. */
struct CallRecord
{
    uint64_t bytes = 0;        ///< request + reply payload
    uint64_t roundTrip = 0;    ///< total cycles
    uint64_t handlerCycles = 0;///< server compute inside the call
};

/** Recording pass-through transport. */
class RecordingTransport : public Transport
{
  public:
    explicit RecordingTransport(Transport &inner) : inner(inner) {}

    const char *name() const override { return inner.name(); }
    kernel::Kernel &kernelRef() override { return inner.kernelRef(); }

    ServiceId
    registerService(const ServiceDesc &desc,
                    ServiceHandler handler) override
    {
        ServiceId id = inner.registerService(desc, std::move(handler));
        // Keep our descriptor table in step for negotiation/lookup.
        ServiceId mine = recordDesc(desc);
        (void)mine;
        return id;
    }

    void
    connect(kernel::Thread &client, ServiceId svc) override
    {
        inner.connect(client, svc);
    }

    VAddr
    requestArea(hw::Core &core, kernel::Thread &client,
                uint64_t len) override
    {
        return inner.requestArea(core, client, len);
    }

    bool
    clientWrite(hw::Core &core, kernel::Thread &client, uint64_t off,
                const void *src, uint64_t len) override
    {
        return inner.clientWrite(core, client, off, src, len);
    }

    bool
    clientRead(hw::Core &core, kernel::Thread &client, uint64_t off,
               void *dst, uint64_t len) override
    {
        return inner.clientRead(core, client, off, dst, len);
    }

    CallResult
    call(hw::Core &core, kernel::Thread &client, ServiceId svc,
         uint64_t opcode, uint64_t req_len, uint64_t reply_cap) override
    {
        CallResult r = inner.call(core, client, svc, opcode, req_len,
                                  reply_cap);
        note(req_len + r.replyLen, r);
        return r;
    }

    uint64_t
    scratchCall(hw::Core &core, kernel::Thread &caller, bool in_handler,
                ServiceId svc, uint64_t opcode, const void *req,
                uint64_t req_len, void *reply,
                uint64_t reply_cap) override
    {
        Cycles t0 = core.now();
        uint64_t rlen = inner.scratchCall(core, caller, in_handler,
                                          svc, opcode, req, req_len,
                                          reply, reply_cap);
        if (rlen == scratchFailed)
            return rlen;
        CallResult synth;
        synth.roundTrip = core.now() - t0;
        synth.replyLen = rlen;
        // Handler time is not plumbed through scratchCall; treat the
        // whole thing as IPC (slightly conservative).
        note(req_len + rlen, synth);
        return rlen;
    }

    void
    prepareScratch(hw::Core &core, kernel::Thread &server,
                   uint64_t len) override
    {
        inner.prepareScratch(core, server, len);
    }

    /// @name Accumulated statistics.
    /// @{
    uint64_t calls = 0;
    uint64_t totalBytes = 0;
    uint64_t totalRoundTrip = 0;
    uint64_t totalHandler = 0;
    std::vector<CallRecord> records;

    /** Cycles of pure IPC overhead (round trips minus handlers). */
    uint64_t
    ipcOverheadCycles() const
    {
        return totalRoundTrip - totalHandler;
    }

    void
    reset()
    {
        calls = 0;
        totalBytes = 0;
        totalRoundTrip = 0;
        totalHandler = 0;
        records.clear();
    }
    /// @}

  private:
    Transport &inner;

    void
    note(uint64_t bytes, const CallResult &r)
    {
        calls++;
        totalBytes += bytes;
        totalRoundTrip += r.roundTrip.value();
        totalHandler += r.handlerCycles.value();
        records.push_back(CallRecord{bytes, r.roundTrip.value(),
                                     r.handlerCycles.value()});
    }
};

} // namespace xpc::core

#endif // XPC_CORE_RECORDING_TRANSPORT_HH
