#include "system.hh"

#include "sim/logging.hh"
#include "sim/request.hh"
#include "sim/trace.hh"

namespace xpc::core {

const char *
systemFlavorName(SystemFlavor flavor)
{
    switch (flavor) {
      case SystemFlavor::Sel4TwoCopy:
        return "seL4-twocopy";
      case SystemFlavor::Sel4OneCopy:
        return "seL4-onecopy";
      case SystemFlavor::Sel4Xpc:
        return "seL4-XPC";
      case SystemFlavor::Zircon:
        return "Zircon";
      case SystemFlavor::ZirconXpc:
        return "Zircon-XPC";
    }
    return "unknown";
}

bool
System::usesXpc() const
{
    return opts.flavor == SystemFlavor::Sel4Xpc ||
           opts.flavor == SystemFlavor::ZirconXpc;
}

System::System(const SystemOptions &options) : opts(options)
{
    mach = std::make_unique<hw::Machine>(opts.machine);

    switch (opts.flavor) {
      case SystemFlavor::Sel4TwoCopy:
      case SystemFlavor::Sel4OneCopy:
      case SystemFlavor::Sel4Xpc: {
        auto k = std::make_unique<kernel::Sel4Kernel>(*mach);
        sel4Ptr = k.get();
        kernelPtr = std::move(k);
        break;
      }
      case SystemFlavor::Zircon:
      case SystemFlavor::ZirconXpc: {
        auto k = std::make_unique<kernel::ZirconKernel>(*mach);
        zirconPtr = k.get();
        kernelPtr = std::move(k);
        break;
      }
    }

    XpcRuntimeOptions runtime_opts = opts.runtimeOpts;
    if (opts.deadlineCycles.value() != 0) {
        kernelPtr->callDeadline = opts.deadlineCycles;
        if (runtime_opts.deadlineCycles.value() == 0)
            runtime_opts.deadlineCycles = opts.deadlineCycles;
    }

    enginePtr =
        std::make_unique<engine::XpcEngine>(*mach, opts.engineOpts);
    managerPtr =
        std::make_unique<kernel::XpcManager>(*kernelPtr, *enginePtr);
    runtimePtr = std::make_unique<XpcRuntime>(*kernelPtr, *managerPtr,
                                              runtime_opts);

    switch (opts.flavor) {
      case SystemFlavor::Sel4TwoCopy:
        transportPtr = std::make_unique<Sel4Transport>(
            *sel4Ptr, kernel::LongMsgMode::TwoCopy);
        break;
      case SystemFlavor::Sel4OneCopy:
        transportPtr = std::make_unique<Sel4Transport>(
            *sel4Ptr, kernel::LongMsgMode::OneCopy);
        break;
      case SystemFlavor::Zircon:
        transportPtr = std::make_unique<ZirconTransport>(*zirconPtr);
        break;
      case SystemFlavor::Sel4Xpc:
      case SystemFlavor::ZirconXpc:
        transportPtr = std::make_unique<XpcTransport>(*runtimePtr);
        break;
    }

    mach->stats.setParent(&statsRoot);
    kernelPtr->stats.setParent(&statsRoot);
    enginePtr->stats.setParent(&statsRoot);
    runtimePtr->stats.setParent(&statsRoot);
    transportPtr->stats.setParent(&statsRoot);

    // Name the core lanes for trace exports; thread lanes get their
    // process names as they spawn.
    auto &tracer = trace::Tracer::global();
    for (CoreId c = 0; c < mach->coreCount(); c++)
        tracer.setTrackName(c, "core" + std::to_string(c));
}

kernel::Thread &
System::spawn(const std::string &name, CoreId core_id,
              kernel::TenantId tenant)
{
    kernel::Process &p = kernelPtr->createProcess(name);
    kernel::Thread &t = kernelPtr->createThread(p, core_id);
    t.tenant = tenant;
    trace::Tracer::global().setTrackName(
        req::threadLane(uint32_t(t.id())), name);
    managerPtr->initThread(t);
    if (!kernelPtr->current(core_id))
        managerPtr->installThread(mach->core(core_id), t);
    return t;
}

} // namespace xpc::core
