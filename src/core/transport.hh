/**
 * @file
 * Transport abstraction: one service implementation, five systems.
 *
 * Services (file system, network stack, crypto, ...) are written
 * against ServerApi/Transport and run unmodified over seL4 endpoint
 * IPC (one-copy or two-copy shared memory), Zircon channels, or XPC
 * relay segments. The transport defines where message bytes live and
 * what moving them costs, which is precisely the variable the paper's
 * evaluation isolates.
 *
 * Client-side protocol:
 *   1. requestArea(core, client, len) - make room for a message;
 *   2. clientWrite(...)               - produce the request bytes;
 *   3. call(...)                      - synchronous invocation;
 *   4. clientRead(...)                - consume the reply bytes
 *      (offsets are message-area-absolute: a reply may legitimately
 *      sit at a protocol-defined offset, which is how XPC's in-place
 *      zero-copy replies stay zero-copy).
 *
 * Server-side handover: callService() forwards a sub-range of the
 * current request to another service. On XPC this is seg-mask plus
 * xcall (no copies, paper 4.4); on the baselines it is real copying
 * between per-hop buffers.
 */

#ifndef XPC_CORE_TRANSPORT_HH
#define XPC_CORE_TRANSPORT_HH

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "kernel/kernel.hh"

namespace xpc::core {

using ServiceId = uint64_t;

/**
 * Why a call failed, forwarded from the kernel / XPC runtime so that
 * clients and supervisors can react (retry, restart, give up) instead
 * of the simulator aborting.
 */
using TransportStatus = kernel::CallStatus;

/** The server's transport-independent view of one invocation. */
class ServerApi
{
  public:
    virtual ~ServerApi() = default;

    /**
     * Mark the whole invocation failed (a message access faulted, a
     * nested call this handler depended on went wrong, ...). The
     * transport aborts the reply and surfaces @p status to the caller.
     */
    void fail(TransportStatus status) { failStatus = status; }
    TransportStatus failStatus = TransportStatus::Ok;

    virtual uint64_t opcode() const = 0;
    virtual uint64_t requestLen() const = 0;

    /** Charged read of request bytes. */
    virtual void readRequest(uint64_t off, void *dst, uint64_t len) = 0;
    /** Charged in-place update of the request message (used to stage
     *  data a later callService will forward). */
    virtual void writeRequest(uint64_t off, const void *src,
                              uint64_t len) = 0;
    /** Charged write of reply bytes (message-area-absolute offset). */
    virtual void writeReply(uint64_t off, const void *src,
                            uint64_t len) = 0;
    virtual void setReplyLen(uint64_t len) = 0;

    /**
     * Forward [@p off, @p off + @p len) of this request to @p svc.
     * On return the same range holds the nested reply.
     * @param req_len meaningful request bytes within the window (the
     *        rest is reply headroom); baselines copy only these
     *        forward. 0 means the whole window.
     * @return the nested reply length.
     */
    virtual uint64_t callService(ServiceId svc, uint64_t opcode,
                                 uint64_t off, uint64_t len,
                                 uint64_t req_len = 0) = 0;

    /**
     * Declare the reply to be the request sub-range
     * [@p off, @p off + @p len) - free on XPC, a copy elsewhere.
     */
    virtual void replyFromRequest(uint64_t off, uint64_t len) = 0;

    /**
     * Call @p svc with a request unrelated to the current message
     * (e.g. the file system flushing a cache block to the disk
     * server). The request bytes come from host-visible state that
     * was already charged when produced; the transport charges the
     * produce into its own scratch message area (a swapseg'd relay
     * segment on XPC, a private buffer elsewhere - prepare it at
     * wiring time with Transport::prepareScratch).
     * @return the nested reply length; reply bytes land in @p reply.
     */
    virtual uint64_t callServiceScratch(ServiceId svc, uint64_t opcode,
                                        const void *req,
                                        uint64_t req_len, void *reply,
                                        uint64_t reply_cap) = 0;

    virtual hw::Core &core() = 0;

    /**
     * The calling thread, when the substrate can identify it (the
     * kernel's IPC partner on seL4/Zircon; the xcall-cap-reg mapped
     * back through the kernel's thread table on XPC). May be null
     * for anonymous callers.
     */
    virtual kernel::Thread *callerThread() = 0;
};

/** Handler signature shared by all services. */
using ServiceHandler = std::function<void(ServerApi &)>;

/** Static description of a service at registration time. */
struct ServiceDesc
{
    std::string name;
    kernel::Thread *handlerThread = nullptr;
    uint32_t maxContexts = 4;
    uint64_t maxMsgBytes = 256 * 1024;
    /** Bytes this service may append to a forwarded message
     *  (S_self of the paper's size negotiation, 4.4). */
    uint64_t selfAppendBytes = 0;
    /** Services this one forwards to (for size negotiation). */
    std::vector<ServiceId> callees;
    /**
     * Reachable from every tenant even under tenancy enforcement
     * (the name server is the canonical example: it IS the tenant
     * boundary, so each tenant must be able to call it).
     */
    bool sharedAcrossTenants = false;
};

/** Outcome of a client call. */
struct CallResult
{
    bool ok = false;
    TransportStatus status = TransportStatus::Ok;
    uint64_t replyLen = 0;
    Cycles oneWay;
    Cycles roundTrip;
    /** Cycles inside the server handler (roundTrip minus these is
     *  the pure IPC overhead the paper's Figure 1 isolates). */
    Cycles handlerCycles;
};

/** One IPC substrate (seL4 / Zircon / XPC). */
class Transport
{
  public:
    Transport()
    {
        stats.addCounter("calls", &callsIssued);
        stats.addCounter("failed_calls", &callsFailed);
        stats.addCounter("cross_tenant_denied", &crossTenantDenied);
        stats.addCounter("cross_tenant_grants", &crossTenantGrants);
        stats.addCounter("cross_tenant_calls", &crossTenantCalls);
    }

    virtual ~Transport() = default;

    virtual const char *name() const = 0;

    /** The kernel this transport's processes live in. */
    virtual kernel::Kernel &kernelRef() = 0;

    /** Register a service; the handler runs per invocation. */
    virtual ServiceId registerService(const ServiceDesc &desc,
                                      ServiceHandler handler) = 0;

    /** Authorize @p client (possibly a server thread) to call @p svc. */
    virtual void connect(kernel::Thread &client, ServiceId svc) = 0;

    /**
     * Ensure the client has a message area of at least @p len bytes
     * and return its VA (diagnostic; access goes via clientWrite /
     * clientRead so it is charged and mode-correct).
     */
    virtual VAddr requestArea(hw::Core &core, kernel::Thread &client,
                              uint64_t len) = 0;

    /**
     * Charged produce into the message area.
     * @return false when the copy faulted (fault injection): the
     *         message bytes are NOT staged and the caller must not
     *         issue the call on top of stale contents.
     */
    virtual bool clientWrite(hw::Core &core, kernel::Thread &client,
                             uint64_t off, const void *src,
                             uint64_t len) = 0;

    /**
     * Charged consume of the reply.
     * @return false when the copy faulted (fault injection); @p dst
     *         is zero-filled in that case.
     */
    virtual bool clientRead(hw::Core &core, kernel::Thread &client,
                            uint64_t off, void *dst, uint64_t len) = 0;

    /** Synchronous call; the request is the first @p req_len bytes of
     *  the message area. */
    virtual CallResult call(hw::Core &core, kernel::Thread &client,
                            ServiceId svc, uint64_t opcode,
                            uint64_t req_len, uint64_t reply_cap) = 0;

    /**
     * Give a *server* thread the scratch message area it needs to
     * issue callServiceScratch from inside its handlers. Call once at
     * wiring time, before any client traffic.
     */
    virtual void
    prepareScratch(hw::Core &core, kernel::Thread &server, uint64_t len)
    {
        requestArea(core, server, len);
    }

    /** scratchCall's failure sentinel (never a valid reply length). */
    static constexpr uint64_t scratchFailed = ~uint64_t(0);

    /**
     * Transport-level scratch call (the engine behind
     * ServerApi::callServiceScratch, also usable at wiring time with
     * @p in_handler false). The default implementation produces into
     * the caller's private message area and calls; XPC overrides it
     * with a swapseg'd relay segment. Returns scratchFailed when the
     * nested call did not complete.
     */
    virtual uint64_t scratchCall(hw::Core &core, kernel::Thread &caller,
                                 bool in_handler, ServiceId svc,
                                 uint64_t opcode, const void *req,
                                 uint64_t req_len, void *reply,
                                 uint64_t reply_cap);

    /**
     * Message size negotiation (paper 4.4): total append headroom a
     * client should reserve when calling @p svc, i.e. S_all(svc).
     */
    uint64_t negotiatedAppend(ServiceId svc) const;

    /** Look up a registered service by name (simple name server). */
    ServiceId lookup(const std::string &name) const;

    /** Like lookup(), but only matches services owned by @p tenant. */
    ServiceId lookup(const std::string &name,
                     kernel::TenantId tenant) const;

    const ServiceDesc &describe(ServiceId svc) const;

    /**
     * Tenant isolation (ROADMAP item 4, container-style namespaces).
     * Off by default: tenant 0 everywhere, zero behavioral change on
     * the paper-reproduction path. When on, connect() refuses to
     * grant - and call() refuses to invoke - a service owned by a
     * different tenant (unless it is sharedAcrossTenants). The call
     * side matters on Zircon, where connect() is a no-op because
     * possession of the channel id is the capability.
     */
    bool enforceTenancy = false;

    /** The tenant that owns @p svc (its handler thread's tenant at
     *  registration time). */
    kernel::TenantId tenantOf(ServiceId svc) const;

    /** Cross-tenant connects/calls refused by enforcement. */
    Counter crossTenantDenied;
    /**
     * Capability grants that actually crossed a tenant boundary
     * (enforcement off or a hole in it). The containment suite
     * asserts this stays zero under enforcement.
     */
    Counter crossTenantGrants;
    /** Calls that crossed a tenant boundary (same contract). */
    Counter crossTenantCalls;

    Counter callsIssued;
    Counter callsFailed;

    /** Registry node; attached to the system's group. */
    StatGroup stats{"transport"};

  protected:
    /** Count @p res into the transport stats and pass it through;
     *  concrete call() implementations return through this. */
    CallResult
    countCall(CallResult res)
    {
        callsIssued.inc();
        if (!res.ok)
            callsFailed.inc();
        return res;
    }

    ServiceId
    recordDesc(const ServiceDesc &desc)
    {
        descs.push_back(desc);
        svcTenants.push_back(desc.handlerThread
                                 ? desc.handlerThread->tenant
                                 : kernel::defaultTenant);
        return descs.size() - 1;
    }

    /**
     * Gate a capability grant: true when connect() may proceed.
     * Counts refusals and (with enforcement off) grants that crossed
     * a tenant boundary anyway. Concrete connect() implementations
     * return early on false.
     */
    bool gateGrant(const kernel::Thread &client, ServiceId svc);

    /** Same gate for the invocation path; used by concrete call(). */
    bool gateCall(const kernel::Thread &client, ServiceId svc);

    /** A gateCall refusal as a CallResult (through countCall). */
    CallResult deniedCall();

    std::vector<ServiceDesc> descs;
    /** Owner tenant per ServiceId (parallel to descs). */
    std::vector<kernel::TenantId> svcTenants;
};

} // namespace xpc::core

#endif // XPC_CORE_TRANSPORT_HH
