#include "breaker.hh"

namespace xpc::core {

const char *
breakerStateName(CircuitBreaker::State state)
{
    switch (state) {
      case CircuitBreaker::State::Closed:
        return "closed";
      case CircuitBreaker::State::Open:
        return "open";
      case CircuitBreaker::State::HalfOpen:
        return "half-open";
    }
    return "unknown";
}

} // namespace xpc::core
