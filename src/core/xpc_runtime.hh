/**
 * @file
 * The user-level XPC library: the paper's Listing 1 programming model.
 *
 * Servers register x-entries with a handler thread and a maximum
 * number of simultaneous invocation contexts; the library provides
 * the per-invocation C-stack trampoline, caller identification,
 * relay-segment allocation, nested (handover) calls with seg-mask,
 * and the xcall/xret execution flow under the migrating-thread model:
 * the handler runs on the *caller's* core, in the server's address
 * space, exactly as on the paper's hardware.
 */

#ifndef XPC_CORE_XPC_RUNTIME_HH
#define XPC_CORE_XPC_RUNTIME_HH

#include <functional>
#include <map>

#include "kernel/xpc_manager.hh"
#include "sim/phase.hh"

namespace xpc::core {

class XpcServerCall;
class XpcRuntime;

/** How much register state the user-level trampoline saves. */
enum class TrampolineMode
{
    /** Save/restore all callee-visible registers (mutually
     *  distrusting caller and callee). */
    FullContext,
    /** Caller and callee share a calling convention and save only
     *  the live registers (paper 5.2 "Partial-Cxt"). */
    PartialContext,
};

/** Library-level tunables (costs calibrated to paper Figure 5). */
struct XpcRuntimeOptions
{
    TrampolineMode trampoline = TrampolineMode::FullContext;
    /** Trampoline save+restore cost, full-context mode. */
    Cycles fullCtxCost{76};
    /** Trampoline save+restore cost, partial-context mode. */
    Cycles partialCtxCost{15};
    /** Issue an engine-cache prefetch before each xcall. */
    bool prefetchEntries = false;
    /** Callee budget before the kernel's timeout unwinds the call;
     *  0 = infinite (the common real-world setting, paper 6.1). */
    Cycles timeoutCycles{0};
    /**
     * Per-request deadline budget; 0 = off (the default - cycle
     * output is then byte-identical to a build without deadlines).
     * Each top-level call mints an absolute deadline of now +
     * deadlineCycles; nested handover calls inherit it (they can
     * only tighten it, see req::DeadlineScope). On expiry the
     * runtime performs the paper's timeout cleanup - link-stack
     * unwind (4.2/6.1) plus relay-seg revocation (4.4) - so a
     * stalled server can never write the reclaimed segment.
     */
    Cycles deadlineCycles{0};
};

/** Outcome of one xpcCall. */
struct XpcCallOutcome
{
    bool ok = false;
    /** Why the call failed (Ok when it did not). */
    kernel::CallStatus status = kernel::CallStatus::Ok;
    /** The kernel's timeout fired and forced the unwind (6.1). */
    bool timedOut = false;
    engine::XpcException exc = engine::XpcException::None;
    uint64_t replyLen = 0;
    /** Cycles until the handler saw the request. */
    Cycles oneWay;
    Cycles roundTrip;
    /** Cycles spent inside the handler (not IPC overhead). */
    Cycles handlerCycles;
};

/** Handler signature: runs under the migrating-thread model. */
using XpcHandler = std::function<void(XpcServerCall &)>;

/**
 * The server's view of one XPC invocation. Message bytes live in the
 * relay segment mapped by the core's seg-reg; all access is charged.
 */
class XpcServerCall
{
  public:
    uint64_t opcode() const { return op; }
    uint64_t requestLen() const { return reqLen; }
    /** Caller's xcall-cap-reg (t0): identifies the caller. */
    PAddr callerCap() const { return caller; }

    /** Charged read from the relay segment. */
    void readMsg(uint64_t off, void *dst, uint64_t len);
    /** Charged write into the relay segment (in-place reply). */
    void writeMsg(uint64_t off, const void *src, uint64_t len);
    void setReplyLen(uint64_t len);
    uint64_t replyLen() const { return repLen; }

    /**
     * Simulate a hung callee: spin for @p cycles and never reach
     * xret. The runtime's watchdog (timeoutCycles) then forces the
     * unwind back to the caller.
     */
    void hang(Cycles cycles);

    /**
     * Handover: pass the sub-range [@p off, @p off + @p len) of this
     * message to another x-entry without copying, via seg-mask
     * (paper 4.4 "Message Shrink"). The nested reply lands in place.
     */
    XpcCallOutcome callNested(uint64_t entry_id, uint64_t opcode,
                              uint64_t off, uint64_t len,
                              uint64_t req_len = 0);

    hw::Core &core() { return coreRef; }
    kernel::Thread &handlerThread() { return handler; }

    /**
     * Mark the whole invocation failed: a message access faulted or
     * a nested call this handler depended on went wrong. The runtime
     * still xrets cleanly but surfaces @p status to the caller.
     */
    void fail(kernel::CallStatus status) { failStatus = status; }
    kernel::CallStatus failStatus = kernel::CallStatus::Ok;

  private:
    friend class XpcRuntime;

    XpcServerCall(XpcRuntime &rt, hw::Core &c, kernel::Thread &h)
        : runtime(rt), coreRef(c), handler(h)
    {}

    XpcRuntime &runtime;
    hw::Core &coreRef;
    kernel::Thread &handler;
    uint64_t op = 0;
    uint64_t reqLen = 0;
    uint64_t repLen = 0;
    PAddr caller = 0;
    bool hung = false;
};

/** A relay segment as seen by the owning user thread. */
struct RelaySegHandle
{
    uint64_t segId = 0;
    VAddr va = 0;
    uint64_t len = 0;
    uint64_t slot = 0; ///< seg-list slot it was installed in
};

/** The user-level XPC runtime, one per simulated system. */
class XpcRuntime
{
  public:
    XpcRuntime(kernel::Kernel &kernel, kernel::XpcManager &manager,
               const XpcRuntimeOptions &options = {});

    kernel::XpcManager &manager() { return xpcManager; }
    engine::XpcEngine &engine() { return xpcManager.engine(); }
    kernel::Kernel &kernel() { return kern; }
    const XpcRuntimeOptions &options() const { return opts; }
    void setTrampoline(TrampolineMode mode) { opts.trampoline = mode; }

    /**
     * Register an x-entry (paper Listing 1: xpc_register_entry).
     * Allocates @p max_contexts C-stacks in the server process.
     * @return the x-entry ID to hand to clients.
     */
    uint64_t registerEntry(kernel::Thread &creator,
                           kernel::Thread &handler_thread,
                           XpcHandler handler, uint32_t max_contexts);

    /**
     * Allocate a relay segment for @p thread and make it the active
     * seg-reg (paper Listing 1: alloc_relay_mem).
     */
    RelaySegHandle allocRelayMem(hw::Core &core, kernel::Thread &thread,
                                 uint64_t len);

    /**
     * Perform an XPC (paper Listing 1: xpc_call). The request is the
     * first @p req_len bytes of the caller's active relay segment;
     * the reply comes back in place.
     */
    XpcCallOutcome call(hw::Core &core, kernel::Thread &client,
                        uint64_t entry_id, uint64_t opcode,
                        uint64_t req_len);

    /**
     * Call an x-entry using whatever relay segment is currently
     * active on @p core. Handlers use this after swapping their own
     * scratch segment in; no thread bookkeeping is touched. Passing
     * the calling thread in @p caller puts the call's trace spans on
     * that thread's lane (otherwise the installed thread's, falling
     * back to the core lane).
     */
    XpcCallOutcome callCurrent(hw::Core &core, uint64_t entry_id,
                               uint64_t opcode, uint64_t req_len,
                               kernel::Thread *caller = nullptr);

    /// @name Charged relay-segment access for the owning client.
    /// Returns false when an injected fault corrupted the transfer
    /// (reads then see zeros); real translation faults still panic.
    /// @{
    bool segWrite(hw::Core &core, uint64_t off, const void *src,
                  uint64_t len);
    bool segRead(hw::Core &core, uint64_t off, void *dst, uint64_t len);
    /// @}

    /** Busy invocation contexts of entry @p id (for tests). */
    uint32_t busyContexts(uint64_t id) const;

    /** Make @p thread the one whose XPC CSRs live on @p core. */
    void ensureInstalled(hw::Core &core, kernel::Thread &thread);

    Counter calls;
    Counter contextExhausted;
    /** Calls cut short because their deadline expired. */
    Counter deadlineExpired;
    /** Relay segments revoked by deadline-expiry cleanup. */
    Counter deadlineRevocations;
    /** Late server writes that faulted on a revoked segment. */
    Counter lateWritesBlocked;

    /** Registry node; attached to the system's group. */
    StatGroup stats{"runtime"};
    /** Fig. 5 taxonomy: xcall/trampoline/handler/xret plus the
     *  one-way and round-trip aggregates, per successful call. */
    PhaseStats phaseStats{"phases", &stats};

  private:
    struct EntryState
    {
        XpcHandler handler;
        kernel::Thread *handlerThread = nullptr;
        uint32_t maxContexts = 1;
        uint32_t busy = 0;
        VAddr cstacks = 0; ///< base of the context stacks
    };

    kernel::Kernel &kern;
    kernel::XpcManager &xpcManager;
    XpcRuntimeOptions opts;
    std::map<uint64_t, EntryState> entryStates;

    XpcCallOutcome doCall(hw::Core &core, uint64_t entry_id,
                          uint64_t opcode, uint64_t req_len,
                          uint32_t caller_lane,
                          kernel::TenantId caller_tenant =
                              kernel::defaultTenant);

    friend class XpcServerCall;
};

} // namespace xpc::core

#endif // XPC_CORE_XPC_RUNTIME_HH
