#include "transport_xpc.hh"

#include "sim/logging.hh"

namespace xpc::core {

namespace {

/** ServerApi adapter over an XpcServerCall. */
class XpcServerApi : public ServerApi
{
  public:
    XpcServerApi(XpcTransport &tr, XpcServerCall &call)
        : transport(tr), call(call)
    {}

    uint64_t opcode() const override { return call.opcode(); }
    uint64_t requestLen() const override { return call.requestLen(); }

    void
    readRequest(uint64_t off, void *dst, uint64_t len) override
    {
        call.readMsg(off, dst, len);
    }

    void
    writeRequest(uint64_t off, const void *src, uint64_t len) override
    {
        // Request and reply share the relay segment.
        call.writeMsg(off, src, len);
    }

    void
    writeReply(uint64_t off, const void *src, uint64_t len) override
    {
        call.writeMsg(off, src, len);
    }

    void
    setReplyLen(uint64_t len) override
    {
        call.setReplyLen(len);
    }

    uint64_t
    callService(ServiceId svc, uint64_t op, uint64_t off,
                uint64_t len, uint64_t req_len) override
    {
        // Handover: seg-mask narrows the window; no bytes move.
        auto out = call.callNested(transport.entryOf(svc), op, off,
                                   len,
                                   req_len == 0 ? len : req_len);
        if (!out.ok) {
            fail(out.status == TransportStatus::Ok
                     ? TransportStatus::NestedFailure
                     : out.status);
            return 0;
        }
        return out.replyLen;
    }

    void
    replyFromRequest(uint64_t off, uint64_t len) override
    {
        // The data is already in the relay segment: free.
        call.setReplyLen(off + len);
    }

    uint64_t
    callServiceScratch(ServiceId svc, uint64_t op, const void *req,
                       uint64_t req_len, void *reply,
                       uint64_t reply_cap) override
    {
        return transport.scratchCall(call.core(),
                                     call.handlerThread(), true, svc,
                                     op, req, req_len, reply,
                                     reply_cap);
    }

    hw::Core &core() override { return call.core(); }

    kernel::Thread *
    callerThread() override
    {
        return transport.runtime().manager().threadByCapBitmap(
            call.callerCap());
    }

  private:
    XpcTransport &transport;
    XpcServerCall &call;
};

} // namespace

XpcTransport::XpcTransport(XpcRuntime &runtime) : rt(runtime) {}

ServiceId
XpcTransport::registerService(const ServiceDesc &desc,
                              ServiceHandler handler)
{
    panic_if(!desc.handlerThread, "service needs a handler thread");
    ServiceId id = recordDesc(desc);
    uint64_t entry = rt.registerEntry(
        *desc.handlerThread, *desc.handlerThread,
        [this, handler = std::move(handler)](XpcServerCall &call) {
            XpcServerApi api(*this, call);
            handler(api);
            if (api.failStatus != TransportStatus::Ok)
                call.fail(api.failStatus);
        },
        desc.maxContexts);
    entryIds.push_back(entry);
    creators.push_back(desc.handlerThread);
    return id;
}

void
XpcTransport::connect(kernel::Thread &client, ServiceId svc)
{
    if (!gateGrant(client, svc))
        return;
    if (client.linkStack == 0)
        rt.manager().initThread(client);
    rt.manager().grantXcallCap(*creators.at(svc), client,
                               entryIds.at(svc));
}

VAddr
XpcTransport::requestArea(hw::Core &core, kernel::Thread &client,
                          uint64_t len)
{
    auto it = activeSeg.find(client.id());
    if (it != activeSeg.end() &&
        !rt.manager().segById(it->second.segId)) {
        // The cached segment was revoked out from under the client;
        // forget it and allocate a replacement.
        activeSeg.erase(it);
        it = activeSeg.end();
    }
    if (it != activeSeg.end() && it->second.len >= len) {
        // Cache hit - but another thread (a restarted server doing
        // its wiring, say) may have run on this core since the last
        // call, so the client's context and segment may not be the
        // active ones. Reinstall before handing the window out.
        rt.ensureInstalled(core, client);
        if (core.csrs.segId != it->second.segId) {
            auto exc = rt.engine().swapseg(core, it->second.slot);
            panic_if(exc != engine::XpcException::None ||
                         core.csrs.segId != it->second.segId,
                     "failed to reactivate a cached relay segment");
        }
        return it->second.va;
    }

    if (it != activeSeg.end()) {
        // Grow by replacing: allocate a bigger segment (allocRelayMem
        // swaps it in, parking the old one in the new slot), then
        // retire the old segment. Its contents are not preserved.
        RelaySegHandle old = it->second;
        RelaySegHandle fresh = rt.allocRelayMem(core, client, len);
        engine::RelaySegEntry empty;
        engine::XpcEngine::writeSegListEntry(
            rt.kernel().machine().phys(),
            client.process()->space().segList(), fresh.slot, empty);
        rt.manager().freeRelaySeg(*client.process(), old.segId);
        activeSeg[client.id()] = fresh;
        return fresh.va;
    }
    RelaySegHandle handle = rt.allocRelayMem(core, client, len);
    activeSeg[client.id()] = handle;
    return handle.va;
}

bool
XpcTransport::clientWrite(hw::Core &core, kernel::Thread &client,
                          uint64_t off, const void *src, uint64_t len)
{
    (void)client;
    return rt.segWrite(core, off, src, len);
}

bool
XpcTransport::clientRead(hw::Core &core, kernel::Thread &client,
                         uint64_t off, void *dst, uint64_t len)
{
    (void)client;
    return rt.segRead(core, off, dst, len);
}

void
XpcTransport::prepareScratch(hw::Core &core, kernel::Thread &server,
                             uint64_t len)
{
    if (scratchSegs.count(server.id()))
        return;
    RelaySegHandle handle = rt.allocRelayMem(core, server, len);
    // Park it back into its seg-list slot; handlers swap it in.
    auto exc = rt.engine().swapseg(core, handle.slot);
    panic_if(exc != engine::XpcException::None,
             "failed to park a scratch segment");
    scratchSegs[server.id()] = handle;
}

uint64_t
XpcTransport::scratchCall(hw::Core &core, kernel::Thread &caller,
                          bool in_handler, ServiceId svc, uint64_t op,
                          const void *req, uint64_t req_len,
                          void *reply, uint64_t reply_cap)
{
    // Swap the currently active window out (inside a handler that is
    // the caller's handed-over segment) and this thread's scratch
    // segment in; restore before returning so the xret seg-reg check
    // passes (paper 3.3).
    const RelaySegHandle *segp = scratchFor(caller.id());
    panic_if(!segp, "scratchCall without prepareScratch");
    if (!rt.manager().segById(segp->segId)) {
        // The scratch segment was revoked while a nested call held
        // it. Re-provision the same slot with a fresh segment so the
        // thread keeps its ability to make nested calls.
        RelaySegHandle stale = *segp;
        kernel::RelaySeg fresh = rt.manager().allocRelaySeg(
            &core, *caller.process(), stale.len, stale.slot);
        scratchSegs[caller.id()] =
            RelaySegHandle{fresh.segId, fresh.va, fresh.len,
                           stale.slot};
        segp = scratchFor(caller.id());
    }
    const RelaySegHandle &seg = *segp;
    if (!in_handler)
        rt.ensureInstalled(core, caller);

    auto exc = rt.engine().swapseg(core, seg.slot);
    panic_if(exc != engine::XpcException::None, "swapseg failed");
    panic_if(core.csrs.segId != seg.segId,
             "scratch slot held a different segment");
    panic_if(req_len > seg.len, "scratch request too large");

    rt.segWrite(core, 0, req, req_len);
    auto out = rt.callCurrent(core, entryOf(svc), op, req_len);
    if (!out.ok) {
        // Restore the previous window before reporting, so an outer
        // xret's seg-reg check still passes.
        rt.engine().swapseg(core, seg.slot);
        return scratchFailed;
    }
    uint64_t rlen = std::min<uint64_t>(out.replyLen, reply_cap);
    if (rlen > 0)
        rt.segRead(core, 0, reply, rlen);

    exc = rt.engine().swapseg(core, seg.slot);
    panic_if(exc != engine::XpcException::None,
             "swapseg restore failed");
    return rlen;
}

CallResult
XpcTransport::call(hw::Core &core, kernel::Thread &client,
                   ServiceId svc, uint64_t opcode, uint64_t req_len,
                   uint64_t reply_cap)
{
    (void)reply_cap; // replies are in-place; capacity is the segment
    if (!gateCall(client, svc))
        return deniedCall();
    XpcCallOutcome out =
        rt.call(core, client, entryIds.at(svc), opcode, req_len);
    CallResult res;
    res.ok = out.ok;
    res.status = out.status;
    res.replyLen = out.replyLen;
    res.oneWay = out.oneWay;
    res.roundTrip = out.roundTrip;
    res.handlerCycles = out.handlerCycles;
    return countCall(res);
}

} // namespace xpc::core
