#include "transport.hh"

#include "sim/logging.hh"

namespace xpc::core {

uint64_t
Transport::scratchCall(hw::Core &core, kernel::Thread &caller,
                       bool in_handler, ServiceId svc, uint64_t opcode,
                       const void *req, uint64_t req_len, void *reply,
                       uint64_t reply_cap)
{
    (void)in_handler;
    clientWrite(core, caller, 0, req, req_len);
    CallResult r = call(core, caller, svc, opcode, req_len,
                        std::max(req_len, reply_cap));
    if (!r.ok)
        return scratchFailed;
    uint64_t rlen = std::min<uint64_t>(r.replyLen, reply_cap);
    if (rlen > 0)
        clientRead(core, caller, 0, reply, rlen);
    return rlen;
}

uint64_t
Transport::negotiatedAppend(ServiceId svc) const
{
    const ServiceDesc &d = describe(svc);
    uint64_t deepest = 0;
    for (ServiceId callee : d.callees)
        deepest = std::max(deepest, negotiatedAppend(callee));
    return d.selfAppendBytes + deepest;
}

ServiceId
Transport::lookup(const std::string &name) const
{
    for (ServiceId id = 0; id < descs.size(); id++) {
        if (descs[id].name == name)
            return id;
    }
    fatal("no service named '%s'", name.c_str());
}

ServiceId
Transport::lookup(const std::string &name,
                  kernel::TenantId tenant) const
{
    for (ServiceId id = 0; id < descs.size(); id++) {
        if (descs[id].name == name && svcTenants[id] == tenant)
            return id;
    }
    fatal("no service named '%s' in tenant %u", name.c_str(),
          unsigned(tenant));
}

kernel::TenantId
Transport::tenantOf(ServiceId svc) const
{
    panic_if(svc >= svcTenants.size(), "no such service %lu",
             (unsigned long)svc);
    return svcTenants[svc];
}

bool
Transport::gateGrant(const kernel::Thread &client, ServiceId svc)
{
    if (client.tenant == tenantOf(svc) ||
        describe(svc).sharedAcrossTenants)
        return true;
    if (enforceTenancy) {
        crossTenantDenied.inc();
        return false;
    }
    // Enforcement off: the grant proceeds, but leave the audit trail
    // the containment suite checks against.
    crossTenantGrants.inc();
    return true;
}

bool
Transport::gateCall(const kernel::Thread &client, ServiceId svc)
{
    if (client.tenant == tenantOf(svc) ||
        describe(svc).sharedAcrossTenants)
        return true;
    if (enforceTenancy) {
        crossTenantDenied.inc();
        return false;
    }
    crossTenantCalls.inc();
    return true;
}

CallResult
Transport::deniedCall()
{
    CallResult res;
    res.ok = false;
    res.status = TransportStatus::NoCapability;
    return countCall(res);
}

const ServiceDesc &
Transport::describe(ServiceId svc) const
{
    panic_if(svc >= descs.size(), "no such service %lu",
             (unsigned long)svc);
    return descs[svc];
}

} // namespace xpc::core
