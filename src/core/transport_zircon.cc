#include "transport_zircon.hh"

#include <cstring>
#include <vector>

#include "sim/logging.hh"

namespace xpc::core {

namespace {

/** ServerApi adapter over a ZirconServerCall. */
class ZirconServerApi : public ServerApi
{
  public:
    ZirconServerApi(ZirconTransport &tr, kernel::ZirconServerCall &call)
        : transport(tr), call(call)
    {}

    uint64_t opcode() const override { return call.opcode(); }
    uint64_t requestLen() const override { return call.requestLen(); }

    void
    readRequest(uint64_t off, void *dst, uint64_t len) override
    {
        call.readRequest(off, dst, len);
    }

    void
    writeRequest(uint64_t off, const void *src, uint64_t len) override
    {
        call.writeRequest(off, src, len);
    }

    void
    writeReply(uint64_t off, const void *src, uint64_t len) override
    {
        call.writeReply(off, src, len);
    }

    void
    setReplyLen(uint64_t len) override
    {
        call.setReplyLen(len);
    }

    uint64_t
    callService(ServiceId svc, uint64_t op, uint64_t off,
                uint64_t len, uint64_t req_len) override
    {
        if (req_len == 0)
            req_len = len;
        kernel::Thread &me = call.serverThread();
        hw::Core &c = call.core();
        std::vector<uint8_t> stage(len);
        call.readRequest(off, stage.data(), req_len);
        transport.requestArea(c, me, len);
        transport.clientWrite(c, me, 0, stage.data(), req_len);
        CallResult r =
            transport.call(c, me, svc, op, req_len, len);
        if (!r.ok) {
            fail(r.status == TransportStatus::Ok
                     ? TransportStatus::NestedFailure
                     : r.status);
            return 0;
        }
        uint64_t rlen = std::min<uint64_t>(r.replyLen, len);
        if (rlen > 0) {
            transport.clientRead(c, me, 0, stage.data(), rlen);
            call.writeRequest(off, stage.data(), rlen);
        }
        return rlen;
    }

    void
    replyFromRequest(uint64_t off, uint64_t len) override
    {
        std::vector<uint8_t> stage(len);
        call.readRequest(off, stage.data(), len);
        call.writeReply(off, stage.data(), len);
    }

    uint64_t
    callServiceScratch(ServiceId svc, uint64_t op, const void *req,
                       uint64_t req_len, void *reply,
                       uint64_t reply_cap) override
    {
        return transport.scratchCall(call.core(), call.serverThread(),
                                     true, svc, op, req, req_len,
                                     reply, reply_cap);
    }

    hw::Core &core() override { return call.core(); }

    kernel::Thread *
    callerThread() override
    {
        return call.callerThread();
    }

  private:
    ZirconTransport &transport;
    kernel::ZirconServerCall &call;
};

} // namespace

ZirconTransport::ZirconTransport(kernel::ZirconKernel &kernel)
    : kern(kernel)
{
}

ServiceId
ZirconTransport::registerService(const ServiceDesc &desc,
                                 ServiceHandler handler)
{
    panic_if(!desc.handlerThread, "service needs a handler thread");
    ServiceId id = recordDesc(desc);
    uint64_t ch = kern.createChannel(
        *desc.handlerThread,
        [this, handler = std::move(handler)](
            kernel::ZirconServerCall &call) {
            ZirconServerApi api(*this, call);
            handler(api);
            if (api.failStatus != TransportStatus::Ok)
                call.fail(api.failStatus);
        });
    channelIds.push_back(ch);
    return id;
}

void
ZirconTransport::connect(kernel::Thread &client, ServiceId svc)
{
    // Zircon capabilities are handles; possession of the channel id
    // is the capability in this model. Tenancy still runs the grant
    // gate so cross-tenant handouts are counted (and refused under
    // enforcement) - but the real barrier is the call-side gate,
    // since a channel id can be guessed.
    (void)gateGrant(client, svc);
}

ZirconTransport::Conn &
ZirconTransport::connFor(kernel::Thread &client, uint64_t min_len)
{
    Conn &conn = conns[client.id()];
    if (conn.len >= min_len && conn.reqVa != 0)
        return conn;
    if (conn.reqVa != 0) {
        // Grow by replacing the buffers (contents not preserved).
        client.process()->space().freeMap(conn.reqVa);
        client.process()->space().freeMap(conn.replyVa);
    }
    uint64_t len = std::max<uint64_t>(min_len, 4096);
    conn.reqVa = client.process()->alloc(len);
    conn.replyVa = client.process()->alloc(len);
    conn.len = len;
    return conn;
}

VAddr
ZirconTransport::requestArea(hw::Core &core, kernel::Thread &client,
                             uint64_t len)
{
    (void)core;
    return connFor(client, len).reqVa;
}

bool
ZirconTransport::clientWrite(hw::Core &core, kernel::Thread &client,
                             uint64_t off, const void *src,
                             uint64_t len)
{
    Conn &conn = connFor(client, off + len);
    auto res = kern.userWrite(core, *client.process(),
                              conn.reqVa + off, src, len);
    panic_if(!res.ok && res.fault != mem::FaultKind::Injected,
             "client produce faulted");
    return res.ok;
}

bool
ZirconTransport::clientRead(hw::Core &core, kernel::Thread &client,
                            uint64_t off, void *dst, uint64_t len)
{
    Conn &conn = connFor(client, off + len);
    auto res = kern.userRead(core, *client.process(),
                             conn.replyVa + off, dst, len);
    if (!res.ok) {
        panic_if(res.fault != mem::FaultKind::Injected,
                 "client consume faulted");
        std::memset(dst, 0, len);
    }
    return res.ok;
}

CallResult
ZirconTransport::call(hw::Core &core, kernel::Thread &client,
                      ServiceId svc, uint64_t opcode, uint64_t req_len,
                      uint64_t reply_cap)
{
    if (!gateCall(client, svc))
        return deniedCall();
    Conn &conn = connFor(client, std::max(req_len, reply_cap));
    auto out = kern.call(core, client, channelIds.at(svc), opcode,
                         conn.reqVa, req_len, conn.replyVa,
                         std::min(reply_cap, conn.len));
    CallResult res;
    res.ok = out.ok;
    res.status = out.status;
    res.replyLen = out.replyLen;
    res.oneWay = out.oneWay;
    res.roundTrip = out.roundTrip;
    res.handlerCycles = out.handlerCycles;
    return countCall(res);
}

} // namespace xpc::core
