/**
 * @file
 * Zircon transport: channel write / wait / read with kernel twofold
 * copy on every hop, as in the paper's Zircon baseline.
 */

#ifndef XPC_CORE_TRANSPORT_ZIRCON_HH
#define XPC_CORE_TRANSPORT_ZIRCON_HH

#include "core/transport.hh"
#include "kernel/zircon.hh"

namespace xpc::core {

/** Transport over ZirconKernel channels. */
class ZirconTransport : public Transport
{
  public:
    explicit ZirconTransport(kernel::ZirconKernel &kernel);

    const char *name() const override { return "zircon"; }
    kernel::Kernel &kernelRef() override { return kern; }

    ServiceId registerService(const ServiceDesc &desc,
                              ServiceHandler handler) override;
    void connect(kernel::Thread &client, ServiceId svc) override;
    VAddr requestArea(hw::Core &core, kernel::Thread &client,
                      uint64_t len) override;
    bool clientWrite(hw::Core &core, kernel::Thread &client,
                     uint64_t off, const void *src,
                     uint64_t len) override;
    bool clientRead(hw::Core &core, kernel::Thread &client,
                    uint64_t off, void *dst, uint64_t len) override;
    CallResult call(hw::Core &core, kernel::Thread &client,
                    ServiceId svc, uint64_t opcode, uint64_t req_len,
                    uint64_t reply_cap) override;

    kernel::ZirconKernel &zircon() { return kern; }

  private:
    struct Conn
    {
        VAddr reqVa = 0;
        VAddr replyVa = 0;
        uint64_t len = 0;
    };

    kernel::ZirconKernel &kern;
    std::vector<uint64_t> channelIds;
    std::map<kernel::ThreadId, Conn> conns;

    Conn &connFor(kernel::Thread &client, uint64_t min_len);

    friend class ZirconServerApi;
};

} // namespace xpc::core

#endif // XPC_CORE_TRANSPORT_ZIRCON_HH
