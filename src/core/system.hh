/**
 * @file
 * One-stop assembly of a simulated system under test: machine,
 * kernel personality, XPC engine + manager + runtime, and the
 * transport that services should run on. Benches, tests and examples
 * build a System and wire services to its transport.
 */

#ifndef XPC_CORE_SYSTEM_HH
#define XPC_CORE_SYSTEM_HH

#include <memory>

#include "core/transport_sel4.hh"
#include "core/transport_xpc.hh"
#include "core/transport_zircon.hh"
#include "core/xpc_runtime.hh"
#include "hw/machine.hh"

namespace xpc::core {

/** The five system configurations of the paper's evaluation. */
enum class SystemFlavor
{
    Sel4TwoCopy, ///< seL4, shared memory with safe two-copy discipline
    Sel4OneCopy, ///< seL4, shared memory, one copy (TOCTTOU-prone)
    Sel4Xpc,     ///< seL4 ported to XPC
    Zircon,      ///< Zircon channels, kernel twofold copy
    ZirconXpc,   ///< Zircon ported to XPC
};

/** @return a printable name for @p flavor. */
const char *systemFlavorName(SystemFlavor flavor);

/** Construction options for a System. */
struct SystemOptions
{
    hw::MachineConfig machine;
    SystemFlavor flavor = SystemFlavor::Sel4Xpc;
    engine::XpcEngineOptions engineOpts{};
    XpcRuntimeOptions runtimeOpts{};
    /**
     * Per-request deadline budget applied to every transport in the
     * system (kernel IPC and the XPC runtime alike); 0 = off. A
     * non-zero runtimeOpts.deadlineCycles takes precedence on the
     * XPC path.
     */
    Cycles deadlineCycles{0};

    SystemOptions() : machine(hw::rocketU500()) {}
};

/** A fully wired simulated system. */
class System
{
  public:
    explicit System(const SystemOptions &options = SystemOptions());

    SystemFlavor flavor() const { return opts.flavor; }
    bool usesXpc() const;

    hw::Machine &machine() { return *mach; }
    hw::Core &core(CoreId id = 0) { return mach->core(id); }
    kernel::Kernel &kern() { return *kernelPtr; }
    kernel::Sel4Kernel *sel4() { return sel4Ptr; }
    kernel::ZirconKernel *zircon() { return zirconPtr; }
    engine::XpcEngine &engine() { return *enginePtr; }
    kernel::XpcManager &manager() { return *managerPtr; }
    XpcRuntime &runtime() { return *runtimePtr; }
    Transport &transport() { return *transportPtr; }

    /** Create a process plus one thread homed on @p core_id, owned
     *  by @p tenant (0 = the default single-tenant world). */
    kernel::Thread &spawn(const std::string &name, CoreId core_id = 0,
                          kernel::TenantId tenant = kernel::defaultTenant);

    /**
     * Root of this system's stat registry: machine (cores, caches,
     * TLBs), kernel (incl. phase attribution), engine and runtime
     * all hang off it. Dump with stats().dumpJson()/dumpCsv(); reset
     * between measurement phases with stats().resetAll().
     */
    StatGroup &stats() { return statsRoot; }

  private:
    StatGroup statsRoot{"system"};
    SystemOptions opts;
    std::unique_ptr<hw::Machine> mach;
    std::unique_ptr<kernel::Kernel> kernelPtr;
    kernel::Sel4Kernel *sel4Ptr = nullptr;
    kernel::ZirconKernel *zirconPtr = nullptr;
    std::unique_ptr<engine::XpcEngine> enginePtr;
    std::unique_ptr<kernel::XpcManager> managerPtr;
    std::unique_ptr<XpcRuntime> runtimePtr;
    std::unique_ptr<Transport> transportPtr;
};

} // namespace xpc::core

#endif // XPC_CORE_SYSTEM_HH
