#include "xpc_runtime.hh"

#include <cstring>

#include "sim/fault_injector.hh"
#include "sim/logging.hh"
#include "sim/trace.hh"

namespace xpc::core {

XpcRuntime::XpcRuntime(kernel::Kernel &kernel,
                       kernel::XpcManager &manager,
                       const XpcRuntimeOptions &options)
    : kern(kernel), xpcManager(manager), opts(options)
{
    stats.addCounter("calls", &calls);
    stats.addCounter("context_exhausted", &contextExhausted);
    stats.addCounter("deadline_expired", &deadlineExpired);
    stats.addCounter("deadline_revocations", &deadlineRevocations);
    stats.addCounter("late_writes_blocked", &lateWritesBlocked);
}

uint64_t
XpcRuntime::registerEntry(kernel::Thread &creator,
                          kernel::Thread &handler_thread,
                          XpcHandler handler, uint32_t max_contexts)
{
    panic_if(max_contexts == 0, "an x-entry needs at least one context");
    if (handler_thread.linkStack == 0)
        xpcManager.initThread(handler_thread);
    if (creator.linkStack == 0)
        xpcManager.initThread(creator);

    uint64_t id = xpcManager.registerEntry(creator, handler_thread,
                                           /*entry_addr=*/0x1000,
                                           max_contexts);
    EntryState state;
    state.handler = std::move(handler);
    state.handlerThread = &handler_thread;
    state.maxContexts = max_contexts;
    // Per-invocation C-stacks, allocated up front (paper 4.2).
    state.cstacks =
        handler_thread.process()->alloc(uint64_t(max_contexts) * 8192);
    entryStates[id] = std::move(state);
    return id;
}

void
XpcRuntime::ensureInstalled(hw::Core &core, kernel::Thread &thread)
{
    kernel::Thread *cur = kern.current(core.id());
    if (cur == &thread)
        return;
    if (cur)
        xpcManager.saveThread(core, *cur);
    xpcManager.installThread(core, thread);
}

RelaySegHandle
XpcRuntime::allocRelayMem(hw::Core &core, kernel::Thread &thread,
                          uint64_t len)
{
    if (thread.linkStack == 0)
        xpcManager.initThread(thread);
    ensureInstalled(core, thread);

    // Find a free seg-list slot for this process.
    static constexpr uint64_t scan_limit = engine::segListCapacity;
    PAddr list = thread.process()->space().segList();
    uint64_t slot = scan_limit;
    for (uint64_t i = 0; i < scan_limit; i++) {
        auto e = engine::XpcEngine::readSegListEntry(
            kern.machine().phys(), list, i);
        if (!e.valid) {
            slot = i;
            break;
        }
    }
    fatal_if(slot == scan_limit, "seg-list full");

    kernel::RelaySeg seg = xpcManager.allocRelaySeg(
        &core, *thread.process(), len, slot);

    // Make it the active segment.
    auto exc = engine().swapseg(core, slot);
    panic_if(exc != engine::XpcException::None,
             "swapseg failed installing a fresh relay segment");
    trace::Tracer::global().instantNow("runtime", "alloc_relay_mem",
                                       core.id());
    return RelaySegHandle{seg.segId, seg.va, seg.len, slot};
}

bool
XpcRuntime::segWrite(hw::Core &core, uint64_t off, const void *src,
                     uint64_t len)
{
    mem::SegWindow window = engine::XpcEngine::effectiveSeg(core.csrs);
    if (!window.valid) {
        // The segment under this thread was revoked (deadline-expiry
        // cleanup, injected revocation): the store faults on the
        // scrubbed seg-reg instead of landing in reclaimed frames.
        lateWritesBlocked.inc();
        return false;
    }
    panic_if(!window.covers(window.vaBase + off, len),
             "segWrite outside the active relay segment");
    mem::TransContext ctx;
    ctx.seg = &window;
    kernel::Thread *cur = kern.current(core.id());
    if (cur) {
        ctx.pt = &cur->process()->space().pageTable();
        ctx.asid = cur->process()->space().asid();
    }
    auto res = kern.machine().mem().write(core.id(), ctx,
                                          window.vaBase + off, src, len);
    core.spend(res.cycles);
    if (!res.ok) {
        panic_if(res.fault != mem::FaultKind::Injected,
                 "segWrite faulted");
        return false;
    }
    return true;
}

bool
XpcRuntime::segRead(hw::Core &core, uint64_t off, void *dst,
                    uint64_t len)
{
    mem::SegWindow window = engine::XpcEngine::effectiveSeg(core.csrs);
    if (!window.valid) {
        // Revoked segment: loads fault; the caller sees zeros.
        std::memset(dst, 0, len);
        return false;
    }
    panic_if(!window.covers(window.vaBase + off, len),
             "segRead outside the active relay segment");
    mem::TransContext ctx;
    ctx.seg = &window;
    kernel::Thread *cur = kern.current(core.id());
    if (cur) {
        ctx.pt = &cur->process()->space().pageTable();
        ctx.asid = cur->process()->space().asid();
    }
    auto res = kern.machine().mem().read(core.id(), ctx,
                                         window.vaBase + off, dst, len);
    core.spend(res.cycles);
    if (!res.ok) {
        panic_if(res.fault != mem::FaultKind::Injected,
                 "segRead faulted");
        std::memset(dst, 0, len);
        return false;
    }
    return true;
}

void
XpcServerCall::readMsg(uint64_t off, void *dst, uint64_t len)
{
    mem::SegWindow window =
        engine::XpcEngine::effectiveSeg(coreRef.csrs);
    if (!window.valid) {
        // The segment was revoked out from under this invocation:
        // the access faults (paper 4.4) and the call is poisoned.
        std::memset(dst, 0, len);
        fail(kernel::CallStatus::SegRevoked);
        return;
    }
    panic_if(!window.covers(window.vaBase + off, len),
             "readMsg outside the relay segment");
    mem::TransContext ctx;
    ctx.seg = &window;
    ctx.pt = &handler.process()->space().pageTable();
    ctx.asid = handler.process()->space().asid();
    auto res = runtime.kern.machine().mem().read(
        coreRef.id(), ctx, window.vaBase + off, dst, len);
    coreRef.spend(res.cycles);
    if (!res.ok) {
        panic_if(res.fault != mem::FaultKind::Injected,
                 "readMsg faulted");
        std::memset(dst, 0, len);
        fail(kernel::CallStatus::CopyFault);
    }
}

void
XpcServerCall::writeMsg(uint64_t off, const void *src, uint64_t len)
{
    mem::SegWindow window =
        engine::XpcEngine::effectiveSeg(coreRef.csrs);
    if (!window.valid) {
        // Late write through a revoked mapping: faults, never lands.
        runtime.lateWritesBlocked.inc();
        fail(kernel::CallStatus::SegRevoked);
        return;
    }
    panic_if(!window.covers(window.vaBase + off, len),
             "writeMsg outside the relay segment");
    mem::TransContext ctx;
    ctx.seg = &window;
    ctx.pt = &handler.process()->space().pageTable();
    ctx.asid = handler.process()->space().asid();
    auto res = runtime.kern.machine().mem().write(
        coreRef.id(), ctx, window.vaBase + off, src, len);
    coreRef.spend(res.cycles);
    if (!res.ok) {
        panic_if(res.fault != mem::FaultKind::Injected,
                 "writeMsg faulted");
        fail(kernel::CallStatus::CopyFault);
        return;
    }
    if (repLen < off + len)
        repLen = off + len;
}

void
XpcServerCall::setReplyLen(uint64_t len)
{
    repLen = len;
}

void
XpcServerCall::hang(Cycles cycles)
{
    coreRef.spend(cycles);
    hung = true;
}

XpcCallOutcome
XpcServerCall::callNested(uint64_t entry_id, uint64_t opcode,
                          uint64_t off, uint64_t len,
                          uint64_t req_len)
{
    // Shrink the visible window to the sub-message and hand it over.
    auto exc = runtime.engine().setSegMask(coreRef, off, len);
    if (exc != engine::XpcException::None) {
        XpcCallOutcome out;
        out.exc = exc;
        return out;
    }
    XpcCallOutcome out = runtime.doCall(
        coreRef, entry_id, opcode, req_len == 0 ? len : req_len,
        req::threadLane(uint32_t(handler.id())));
    // xret restored our seg-reg and our mask; drop the mask again.
    runtime.engine().setSegMask(coreRef, 0, 0);
    return out;
}

XpcCallOutcome
XpcRuntime::call(hw::Core &core, kernel::Thread &client,
                 uint64_t entry_id, uint64_t opcode, uint64_t req_len)
{
    panic_if(client.linkStack == 0,
             "client thread has no XPC plumbing (initThread first)");
    ensureInstalled(core, client);
    return doCall(core, entry_id, opcode, req_len,
                  req::threadLane(uint32_t(client.id())),
                  client.tenant);
}

XpcCallOutcome
XpcRuntime::callCurrent(hw::Core &core, uint64_t entry_id,
                        uint64_t opcode, uint64_t req_len,
                        kernel::Thread *caller)
{
    if (!caller)
        caller = kern.current(core.id());
    uint32_t lane = caller ? req::threadLane(uint32_t(caller->id()))
                           : core.id();
    return doCall(core, entry_id, opcode, req_len, lane,
                  caller ? caller->tenant : kernel::defaultTenant);
}

namespace {

/**
 * Closes the outer "xpc.call" span (and the causal flow arc, for the
 * top-level call of a chain) on *every* exit path of doCall - error
 * unwinds, timeouts and crashed servers included - so the profiler
 * always sees a well-bracketed request.
 */
struct CallSpanCloser
{
    trace::Tracer &tr;
    hw::Core &core;
    uint32_t lane;
    uint64_t flowId;
    bool top;
    bool active;
    /** Filled by the time doCall returns; stamped as the request's
     *  terminal outcome (critpath.py --top groups requests by it). */
    const XpcCallOutcome *out = nullptr;
    /** Caller's tenant; stamped (non-default only, so single-tenant
     *  traces are unchanged) for critpath.py's per-tenant column. */
    kernel::TenantId tenant = kernel::defaultTenant;

    ~CallSpanCloser()
    {
        if (top && out) {
            tr.instantNow("xpc", "outcome", lane,
                          kernel::callStatusName(out->status));
            if (tenant != kernel::defaultTenant)
                tr.instantNow("xpc", "tenant", lane,
                              std::to_string(tenant));
        }
        if (!active)
            return;
        uint64_t now = core.now().value();
        if (top)
            tr.flow(trace::EventKind::FlowEnd, "xpc", "req", flowId,
                    now, lane);
        tr.end("xpc", "call", now, lane);
    }
};

} // namespace

XpcCallOutcome
XpcRuntime::doCall(hw::Core &core, uint64_t entry_id, uint64_t opcode,
                   uint64_t req_len, uint32_t caller_lane,
                   kernel::TenantId caller_tenant)
{
    using kernel::CallStatus;

    XpcCallOutcome out;
    calls.inc();

    // Bind the call to its request chain: the outermost call mints a
    // fresh id, nested handover calls inherit the active one. Every
    // trace event and memory access below is stamped with it.
    req::RequestScope rscope;

    // Deadline: the top-level call mints an absolute one from the
    // configured budget; nested hops inherit the enclosing deadline
    // (the scope can only tighten, never extend it). 0 = none.
    req::DeadlineScope dscope(
        rscope.topLevel() && opts.deadlineCycles.value() != 0
            ? (core.now() + opts.deadlineCycles).value()
            : 0);
    const uint64_t deadline =
        req::RequestContext::global().currentDeadline();

    // Fault injection: one lookup per call decides what (if anything)
    // goes wrong, and at which Table-1 phase it strikes.
    FaultInjector *inj = kern.machine().faultInjector();
    const FaultEvent *fault = nullptr;
    if (inj && inj->enabled)
        fault = inj->eventAt(inj->beginCall());

    // Kill the process serving this entry, as a crash would.
    auto kill_server = [&]() -> bool {
        auto its = entryStates.find(entry_id);
        if (its == entryStates.end())
            return false;
        kernel::Process *p = its->second.handlerThread->process();
        if (!p || p->dead)
            return false;
        xpcManager.onProcessExit(*p);
        return true;
    };

    bool killed_pre_xcall = false;
    if (fault) {
        switch (fault->op) {
          case FaultOp::EngineException:
            inj->armEngineException(fault->arg);
            inj->recordFired(*fault);
            break;
          case FaultOp::CopyFault:
            // The next message-byte access faults (reads see zeros).
            inj->armMemFault();
            inj->recordFired(*fault);
            break;
          case FaultOp::KillServer:
            if (fault->phase == FaultPhase::PreXcall &&
                kill_server()) {
                killed_pre_xcall = true;
                inj->recordFired(*fault);
            }
            break;
          default:
            break; // strikes later, at its phase
        }
    }

    if (opts.prefetchEntries) {
        // Issued in advance by the application; its latency overlaps
        // preceding work, so it runs before we start counting.
        engine().prefetch(core, entry_id);
    }

    auto &tr = trace::Tracer::global();
    Cycles start = core.now();
    if (tr.enabled()) {
        tr.begin("xpc", "call", start.value(), caller_lane);
        // The flow arc: starts at the chain's first call, steps
        // through each nested hop, closes where the chain returns.
        tr.flow(rscope.topLevel() ? trace::EventKind::FlowStart
                                  : trace::EventKind::FlowStep,
                "xpc", "req", rscope.id(), start.value(), caller_lane);
    }
    CallSpanCloser closer{tr,          core,
                          caller_lane, rscope.id(),
                          rscope.topLevel(), tr.enabled(),
                          &out,        caller_tenant};

    if (deadline != 0 && core.now().value() >= deadline) {
        // Already out of budget (an upstream hop burned it all):
        // reject before issuing the xcall at all.
        deadlineExpired.inc();
        out.status = CallStatus::DeadlineExpired;
        return out;
    }

    // Crash-point enumeration: every XPC phase boundary is a
    // numbered kill-site for the systematic explorer, alongside
    // every durable write in the block device (sim/explorer).
    if (inj && inj->enabled)
        inj->atCrashSite("phase-xcall");

    engine::XcallResult xc;
    {
        req::PhaseScope phase(uint32_t(Phase::Xcall));
        xc = engine().xcall(core, entry_id, entry_id);
    }
    Cycles xcall_done = core.now();
    if (tr.enabled()) {
        tr.begin("xpc", "xcall", start.value(), caller_lane);
        tr.end("xpc", "xcall", xcall_done.value(), caller_lane);
    }
    if (xc.exc != engine::XpcException::None) {
        out.exc = xc.exc;
        if (killed_pre_xcall)
            out.status = CallStatus::ServiceDead;
        else if (xc.exc == engine::XpcException::InvalidXEntry)
            out.status = CallStatus::ServiceDead;
        else if (xc.exc == engine::XpcException::InvalidXcallCap)
            out.status = CallStatus::NoCapability;
        else
            out.status = CallStatus::EngineFault;
        return out;
    }

    // Trampoline: pick an idle XPC context, switch to its C-stack,
    // save registers per the trampoline mode (paper 4.2).
    auto it = entryStates.find(entry_id);
    panic_if(it == entryStates.end(),
             "x-entry %lu has no registered handler",
             (unsigned long)entry_id);
    EntryState &state = it->second;
    Cycles tramp0 = core.now();
    {
        req::PhaseScope phase(uint32_t(Phase::Trampoline));
        core.spend(opts.trampoline == TrampolineMode::FullContext
                       ? opts.fullCtxCost
                       : opts.partialCtxCost);
    }
    if (tr.enabled()) {
        tr.begin("runtime", "trampoline", tramp0.value(), core.id());
        tr.end("runtime", "trampoline", core.now().value(), core.id());
    }

    if (state.busy >= state.maxContexts) {
        // No idle context: return an error to the caller (the
        // alternative policy, waiting, is the application's choice).
        contextExhausted.inc();
        auto ret = engine().xret(core);
        panic_if(ret.exc != engine::XpcException::None,
                 "xret failed unwinding a context-exhausted call");
        out.exc = engine::XpcException::None;
        out.ok = false;
        out.status = CallStatus::Exhausted;
        return out;
    }
    state.busy++;

    out.oneWay = core.now() - start;

    XpcServerCall call_ctx(*this, core, *state.handlerThread);
    call_ctx.op = opcode;
    call_ctx.reqLen = req_len;
    call_ctx.caller = xc.callerCapPtr;

    // In-handler faults strike while the callee owns the core.
    bool skip_handler = false;
    bool hang_injected = false;
    bool stall_injected = false;
    uint32_t slow_factor = 1;
    bool server_died = false;
    if (fault && fault->phase == FaultPhase::InHandler) {
        switch (fault->op) {
          case FaultOp::KillServer:
            if (kill_server()) {
                skip_handler = true;
                server_died = true;
                inj->recordFired(*fault);
            }
            break;
          case FaultOp::HangServer:
            // Only meaningful under a watchdog; without one the hang
            // would (correctly) be unrecoverable.
            if (opts.timeoutCycles.value() != 0) {
                hang_injected = true;
                inj->recordFired(*fault);
            }
            break;
          case FaultOp::RevokeSeg:
            if (core.csrs.segId != 0 &&
                xpcManager.segById(core.csrs.segId)) {
                xpcManager.revokeRelaySeg(core.csrs.segId);
                skip_handler = true;
                inj->recordFired(*fault);
            }
            break;
          case FaultOp::CorruptLinkage:
            if (xpcManager.corruptTopLinkage(core))
                inj->recordFired(*fault);
            break;
          case FaultOp::StallServer:
            // A stalled server busy-loops and never replies. With a
            // deadline armed it burns the whole budget; with only a
            // watchdog it degrades to a hang. With neither, firing
            // it would wedge the caller forever - skip.
            if (deadline != 0) {
                stall_injected = true;
                inj->recordFired(*fault);
            } else if (opts.timeoutCycles.value() != 0) {
                hang_injected = true;
                inj->recordFired(*fault);
            }
            break;
          case FaultOp::SlowServer:
            slow_factor = fault->arg > 1 ? fault->arg : 2;
            inj->recordFired(*fault);
            break;
          default:
            break;
        }
    }

    if (inj && inj->enabled)
        inj->atCrashSite("phase-handler");

    Cycles h0 = core.now();
    {
        req::PhaseScope phase(uint32_t(Phase::Handler));
        if (hang_injected) {
            call_ctx.hang(opts.timeoutCycles + Cycles(1000));
        } else if (stall_injected) {
            // Busy-loop well past the deadline; no reply is written.
            uint64_t now = core.now().value();
            call_ctx.hang(Cycles(
                (deadline > now ? deadline - now : 0) + 1000));
        } else if (!skip_handler) {
            state.handler(call_ctx);
            if (slow_factor > 1) {
                // Slow server: the handler ran at slow_factor x its
                // normal cost; charge the extra shares here so the
                // overrun is attributed to the handler phase.
                core.spend((core.now() - h0) * (slow_factor - 1));
            }
        }
    }
    out.handlerCycles = core.now() - h0;
    if (tr.enabled()) {
        // The migrating-thread model: the handler ran on the caller's
        // core, but it is *server* work - put the span on the server
        // thread's lane and step the flow arc through it, so Perfetto
        // renders the hop from client to server.
        uint32_t hlane = req::threadLane(
            uint32_t(state.handlerThread->id()));
        tr.begin("xpc", "handler", h0.value(), hlane);
        tr.flow(trace::EventKind::FlowStep, "xpc", "req", rscope.id(),
                h0.value(), hlane);
        tr.end("xpc", "handler", core.now().value(), hlane);
    }

    if (!server_died && deadline != 0 &&
        core.now().value() >= deadline) {
        // The deadline expired while the callee owned the core. The
        // caller gives up *now*: paper-faithful cleanup is the 6.1
        // timeout unwind plus 4.4 segment revocation, so a server
        // that is still chewing on the request can never write the
        // reclaimed segment behind the caller's back.
        state.busy--;
        uint64_t held_seg = core.csrs.segId;
        if (held_seg != 0 && xpcManager.segById(held_seg)) {
            // Revoke while the server's seg-reg still names the
            // segment: this scrubs the seg-reg of every core holding
            // it and invalidates the seg-list slots.
            xpcManager.revokeRelaySeg(held_seg);
            deadlineRevocations.inc();
            if (stall_injected || call_ctx.hung) {
                // The stalled server eventually resumes and issues
                // its reply store through the mapping it held. The
                // revocation scrubbed that seg-reg, so the store
                // faults instead of landing in reclaimed frames.
                mem::SegWindow late =
                    engine::XpcEngine::effectiveSeg(core.csrs);
                if (!late.valid)
                    lateWritesBlocked.inc();
            }
        }
        xpcManager.forceUnwind(core, /*even_if_invalid=*/true);
        deadlineExpired.inc();
        tr.instantNow("runtime", "deadline_expired", caller_lane);
        out.ok = false;
        out.status = CallStatus::DeadlineExpired;
        out.roundTrip = core.now() - start;
        return out;
    }

    if (call_ctx.hung && opts.timeoutCycles.value() != 0 &&
        out.handlerCycles >= opts.timeoutCycles) {
        // The watchdog fires: the kernel unwinds the call and the
        // caller resumes with a timeout error (paper 6.1).
        state.busy--;
        bool unwound = xpcManager.forceUnwind(core);
        panic_if(!unwound, "timeout with no linkage record");
        out.ok = false;
        out.timedOut = true;
        out.status = CallStatus::Timeout;
        out.roundTrip = core.now() - start;
        return out;
    }
    panic_if(call_ctx.hung,
             "handler hung but no timeout is configured");

    if (fault && fault->phase == FaultPhase::PreXret) {
        if (fault->op == FaultOp::KillServer && kill_server()) {
            server_died = true;
            inj->recordFired(*fault);
        } else if (fault->op == FaultOp::CorruptLinkage &&
                   xpcManager.corruptTopLinkage(core)) {
            inj->recordFired(*fault);
        }
    }

    if (server_died) {
        // The callee crashed mid-call; it will never xret, so the
        // kernel unwinds the client (paper 4.2 termination).
        state.busy--;
        xpcManager.forceUnwind(core, /*even_if_invalid=*/true);
        out.ok = false;
        out.status = CallStatus::ServiceDead;
        out.roundTrip = core.now() - start;
        return out;
    }

    // Return trampoline (restore registers) and xret.
    Cycles rtramp0 = core.now();
    {
        req::PhaseScope phase(uint32_t(Phase::Trampoline));
        core.spend(opts.trampoline == TrampolineMode::FullContext
                       ? opts.fullCtxCost
                       : opts.partialCtxCost);
    }
    if (tr.enabled()) {
        tr.begin("runtime", "trampoline", rtramp0.value(), core.id());
        tr.end("runtime", "trampoline", core.now().value(), core.id());
    }
    state.busy--;

    if (inj && inj->enabled)
        inj->atCrashSite("phase-xret");

    Cycles xret0 = core.now();
    engine::XretResult ret;
    {
        req::PhaseScope phase(uint32_t(Phase::Xret));
        ret = engine().xret(core);
    }
    if (tr.enabled()) {
        tr.begin("xpc", "xret", xret0.value(), caller_lane);
        tr.end("xpc", "xret", core.now().value(), caller_lane);
    }
    if (ret.exc != engine::XpcException::None) {
        // The hardware refused the return: the record under us is
        // corrupt or the seg-reg no longer matches it. The kernel
        // consumes the record, restores what can be trusted, and the
        // caller sees an error instead of a wedged core.
        xpcManager.forceUnwind(core, /*even_if_invalid=*/true);
        out.exc = ret.exc;
        out.ok = false;
        if (ret.exc == engine::XpcException::InvalidLinkage)
            out.status = CallStatus::LinkageCorrupt;
        else if (ret.exc == engine::XpcException::InvalidSegMask)
            out.status = CallStatus::SegRevoked;
        else
            out.status = CallStatus::EngineFault;
        out.roundTrip = core.now() - start;
        return out;
    }

    if (call_ctx.failStatus != CallStatus::Ok) {
        // The handler ran but its work is invalid (message copy
        // faulted, or a nested call it depended on failed).
        out.ok = false;
        out.status = call_ctx.failStatus;
        out.roundTrip = core.now() - start;
        return out;
    }

    out.ok = true;
    out.replyLen = call_ctx.repLen;
    out.roundTrip = core.now() - start;

    // Fig. 5 attribution: the entry trampoline is everything between
    // the xcall retiring and the handler getting control.
    phaseStats.record(Phase::Xcall, xcall_done - start);
    phaseStats.record(Phase::Trampoline, out.oneWay - (xcall_done - start));
    phaseStats.record(Phase::Handler, out.handlerCycles);
    phaseStats.record(Phase::Xret, core.now() - xret0);
    phaseStats.record(Phase::OneWay, out.oneWay);
    phaseStats.record(Phase::RoundTrip, out.roundTrip);
    return out;
}

uint32_t
XpcRuntime::busyContexts(uint64_t id) const
{
    auto it = entryStates.find(id);
    return it == entryStates.end() ? 0 : it->second.busy;
}

} // namespace xpc::core
