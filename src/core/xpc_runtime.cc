#include "xpc_runtime.hh"

#include "sim/logging.hh"

namespace xpc::core {

XpcRuntime::XpcRuntime(kernel::Kernel &kernel,
                       kernel::XpcManager &manager,
                       const XpcRuntimeOptions &options)
    : kern(kernel), xpcManager(manager), opts(options)
{
}

uint64_t
XpcRuntime::registerEntry(kernel::Thread &creator,
                          kernel::Thread &handler_thread,
                          XpcHandler handler, uint32_t max_contexts)
{
    panic_if(max_contexts == 0, "an x-entry needs at least one context");
    if (handler_thread.linkStack == 0)
        xpcManager.initThread(handler_thread);
    if (creator.linkStack == 0)
        xpcManager.initThread(creator);

    uint64_t id = xpcManager.registerEntry(creator, handler_thread,
                                           /*entry_addr=*/0x1000,
                                           max_contexts);
    EntryState state;
    state.handler = std::move(handler);
    state.handlerThread = &handler_thread;
    state.maxContexts = max_contexts;
    // Per-invocation C-stacks, allocated up front (paper 4.2).
    state.cstacks =
        handler_thread.process()->alloc(uint64_t(max_contexts) * 8192);
    entryStates[id] = std::move(state);
    return id;
}

void
XpcRuntime::ensureInstalled(hw::Core &core, kernel::Thread &thread)
{
    kernel::Thread *cur = kern.current(core.id());
    if (cur == &thread)
        return;
    if (cur)
        xpcManager.saveThread(core, *cur);
    xpcManager.installThread(core, thread);
}

RelaySegHandle
XpcRuntime::allocRelayMem(hw::Core &core, kernel::Thread &thread,
                          uint64_t len)
{
    if (thread.linkStack == 0)
        xpcManager.initThread(thread);
    ensureInstalled(core, thread);

    // Find a free seg-list slot for this process.
    static constexpr uint64_t scan_limit = engine::segListCapacity;
    PAddr list = thread.process()->space().segList();
    uint64_t slot = scan_limit;
    for (uint64_t i = 0; i < scan_limit; i++) {
        auto e = engine::XpcEngine::readSegListEntry(
            kern.machine().phys(), list, i);
        if (!e.valid) {
            slot = i;
            break;
        }
    }
    fatal_if(slot == scan_limit, "seg-list full");

    kernel::RelaySeg seg = xpcManager.allocRelaySeg(
        &core, *thread.process(), len, slot);

    // Make it the active segment.
    auto exc = engine().swapseg(core, slot);
    panic_if(exc != engine::XpcException::None,
             "swapseg failed installing a fresh relay segment");
    return RelaySegHandle{seg.segId, seg.va, seg.len, slot};
}

void
XpcRuntime::segWrite(hw::Core &core, uint64_t off, const void *src,
                     uint64_t len)
{
    mem::SegWindow window = engine::XpcEngine::effectiveSeg(core.csrs);
    panic_if(!window.covers(window.vaBase + off, len),
             "segWrite outside the active relay segment");
    mem::TransContext ctx;
    ctx.seg = &window;
    kernel::Thread *cur = kern.current(core.id());
    if (cur) {
        ctx.pt = &cur->process()->space().pageTable();
        ctx.asid = cur->process()->space().asid();
    }
    auto res = kern.machine().mem().write(core.id(), ctx,
                                          window.vaBase + off, src, len);
    panic_if(!res.ok, "segWrite faulted");
    core.spend(res.cycles);
}

void
XpcRuntime::segRead(hw::Core &core, uint64_t off, void *dst,
                    uint64_t len)
{
    mem::SegWindow window = engine::XpcEngine::effectiveSeg(core.csrs);
    panic_if(!window.covers(window.vaBase + off, len),
             "segRead outside the active relay segment");
    mem::TransContext ctx;
    ctx.seg = &window;
    kernel::Thread *cur = kern.current(core.id());
    if (cur) {
        ctx.pt = &cur->process()->space().pageTable();
        ctx.asid = cur->process()->space().asid();
    }
    auto res = kern.machine().mem().read(core.id(), ctx,
                                         window.vaBase + off, dst, len);
    panic_if(!res.ok, "segRead faulted");
    core.spend(res.cycles);
}

void
XpcServerCall::readMsg(uint64_t off, void *dst, uint64_t len)
{
    mem::SegWindow window =
        engine::XpcEngine::effectiveSeg(coreRef.csrs);
    panic_if(!window.covers(window.vaBase + off, len),
             "readMsg outside the relay segment");
    mem::TransContext ctx;
    ctx.seg = &window;
    ctx.pt = &handler.process()->space().pageTable();
    ctx.asid = handler.process()->space().asid();
    auto res = runtime.kern.machine().mem().read(
        coreRef.id(), ctx, window.vaBase + off, dst, len);
    panic_if(!res.ok, "readMsg faulted");
    coreRef.spend(res.cycles);
}

void
XpcServerCall::writeMsg(uint64_t off, const void *src, uint64_t len)
{
    mem::SegWindow window =
        engine::XpcEngine::effectiveSeg(coreRef.csrs);
    panic_if(!window.covers(window.vaBase + off, len),
             "writeMsg outside the relay segment");
    mem::TransContext ctx;
    ctx.seg = &window;
    ctx.pt = &handler.process()->space().pageTable();
    ctx.asid = handler.process()->space().asid();
    auto res = runtime.kern.machine().mem().write(
        coreRef.id(), ctx, window.vaBase + off, src, len);
    panic_if(!res.ok, "writeMsg faulted");
    coreRef.spend(res.cycles);
    if (repLen < off + len)
        repLen = off + len;
}

void
XpcServerCall::setReplyLen(uint64_t len)
{
    repLen = len;
}

void
XpcServerCall::hang(Cycles cycles)
{
    coreRef.spend(cycles);
    hung = true;
}

XpcCallOutcome
XpcServerCall::callNested(uint64_t entry_id, uint64_t opcode,
                          uint64_t off, uint64_t len,
                          uint64_t req_len)
{
    // Shrink the visible window to the sub-message and hand it over.
    auto exc = runtime.engine().setSegMask(coreRef, off, len);
    if (exc != engine::XpcException::None) {
        XpcCallOutcome out;
        out.exc = exc;
        return out;
    }
    XpcCallOutcome out = runtime.doCall(
        coreRef, entry_id, opcode, req_len == 0 ? len : req_len);
    // xret restored our seg-reg and our mask; drop the mask again.
    runtime.engine().setSegMask(coreRef, 0, 0);
    return out;
}

XpcCallOutcome
XpcRuntime::call(hw::Core &core, kernel::Thread &client,
                 uint64_t entry_id, uint64_t opcode, uint64_t req_len)
{
    panic_if(client.linkStack == 0,
             "client thread has no XPC plumbing (initThread first)");
    ensureInstalled(core, client);
    return doCall(core, entry_id, opcode, req_len);
}

XpcCallOutcome
XpcRuntime::callCurrent(hw::Core &core, uint64_t entry_id,
                        uint64_t opcode, uint64_t req_len)
{
    return doCall(core, entry_id, opcode, req_len);
}

XpcCallOutcome
XpcRuntime::doCall(hw::Core &core, uint64_t entry_id, uint64_t opcode,
                   uint64_t req_len)
{
    XpcCallOutcome out;
    calls.inc();

    if (opts.prefetchEntries) {
        // Issued in advance by the application; its latency overlaps
        // preceding work, so it runs before we start counting.
        engine().prefetch(core, entry_id);
    }

    Cycles start = core.now();
    engine::XcallResult xc = engine().xcall(core, entry_id, entry_id);
    if (xc.exc != engine::XpcException::None) {
        out.exc = xc.exc;
        return out;
    }

    // Trampoline: pick an idle XPC context, switch to its C-stack,
    // save registers per the trampoline mode (paper 4.2).
    auto it = entryStates.find(entry_id);
    panic_if(it == entryStates.end(),
             "x-entry %lu has no registered handler",
             (unsigned long)entry_id);
    EntryState &state = it->second;
    core.spend(opts.trampoline == TrampolineMode::FullContext
                   ? opts.fullCtxCost
                   : opts.partialCtxCost);

    if (state.busy >= state.maxContexts) {
        // No idle context: return an error to the caller (the
        // alternative policy, waiting, is the application's choice).
        contextExhausted.inc();
        auto ret = engine().xret(core);
        panic_if(ret.exc != engine::XpcException::None,
                 "xret failed unwinding a context-exhausted call");
        out.exc = engine::XpcException::None;
        out.ok = false;
        return out;
    }
    state.busy++;

    out.oneWay = core.now() - start;

    XpcServerCall call_ctx(*this, core, *state.handlerThread);
    call_ctx.op = opcode;
    call_ctx.reqLen = req_len;
    call_ctx.caller = xc.callerCapPtr;
    Cycles h0 = core.now();
    state.handler(call_ctx);
    out.handlerCycles = core.now() - h0;

    if (call_ctx.hung && opts.timeoutCycles.value() != 0 &&
        out.handlerCycles >= opts.timeoutCycles) {
        // The watchdog fires: the kernel unwinds the call and the
        // caller resumes with a timeout error (paper 6.1).
        state.busy--;
        bool unwound = xpcManager.forceUnwind(core);
        panic_if(!unwound, "timeout with no linkage record");
        out.ok = false;
        out.timedOut = true;
        out.roundTrip = core.now() - start;
        return out;
    }
    panic_if(call_ctx.hung,
             "handler hung but no timeout is configured");

    // Return trampoline (restore registers) and xret.
    core.spend(opts.trampoline == TrampolineMode::FullContext
                   ? opts.fullCtxCost
                   : opts.partialCtxCost);
    state.busy--;

    engine::XretResult ret = engine().xret(core);
    if (ret.exc != engine::XpcException::None) {
        out.exc = ret.exc;
        return out;
    }

    out.ok = true;
    out.replyLen = call_ctx.repLen;
    out.roundTrip = core.now() - start;
    return out;
}

uint32_t
XpcRuntime::busyContexts(uint64_t id) const
{
    auto it = entryStates.find(id);
    return it == entryStates.end() ? 0 : it->second.busy;
}

} // namespace xpc::core
