/**
 * @file
 * seL4 transport in one-copy and two-copy shared-memory disciplines.
 *
 * Clients produce into a private request buffer; the kernel/userspace
 * machinery of Sel4Kernel moves the bytes (registers, IPC buffer or
 * shared memory depending on size); nested calls copy hop by hop.
 */

#ifndef XPC_CORE_TRANSPORT_SEL4_HH
#define XPC_CORE_TRANSPORT_SEL4_HH

#include "core/transport.hh"
#include "kernel/sel4.hh"

namespace xpc::core {

/** Transport over Sel4Kernel endpoints. */
class Sel4Transport : public Transport
{
  public:
    Sel4Transport(kernel::Sel4Kernel &kernel, kernel::LongMsgMode mode);

    kernel::Kernel &kernelRef() override { return kern; }

    const char *
    name() const override
    {
        return longMode == kernel::LongMsgMode::OneCopy ? "sel4-1copy"
                                                        : "sel4-2copy";
    }

    ServiceId registerService(const ServiceDesc &desc,
                              ServiceHandler handler) override;
    void connect(kernel::Thread &client, ServiceId svc) override;
    VAddr requestArea(hw::Core &core, kernel::Thread &client,
                      uint64_t len) override;
    bool clientWrite(hw::Core &core, kernel::Thread &client,
                     uint64_t off, const void *src,
                     uint64_t len) override;
    bool clientRead(hw::Core &core, kernel::Thread &client,
                    uint64_t off, void *dst, uint64_t len) override;
    CallResult call(hw::Core &core, kernel::Thread &client,
                    ServiceId svc, uint64_t opcode, uint64_t req_len,
                    uint64_t reply_cap) override;

    kernel::Sel4Kernel &sel4() { return kern; }
    kernel::LongMsgMode mode() const { return longMode; }

  private:
    struct Conn
    {
        VAddr reqVa = 0;
        VAddr replyVa = 0;
        uint64_t len = 0;
    };

    kernel::Sel4Kernel &kern;
    kernel::LongMsgMode longMode;
    std::vector<uint64_t> endpointIds;
    /** Per-client message buffers (shared across services: one
     *  produce area per thread, like a libc staging buffer). */
    std::map<kernel::ThreadId, Conn> conns;

    Conn &connFor(kernel::Thread &client, uint64_t min_len);

    friend class Sel4ServerApi;
};

} // namespace xpc::core

#endif // XPC_CORE_TRANSPORT_SEL4_HH
