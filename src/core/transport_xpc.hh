/**
 * @file
 * The XPC transport: clients produce straight into a relay segment,
 * xcall hands it over, servers reply in place, nested calls shrink
 * the window with seg-mask. Zero copies end to end.
 */

#ifndef XPC_CORE_TRANSPORT_XPC_HH
#define XPC_CORE_TRANSPORT_XPC_HH

#include "core/transport.hh"
#include "core/xpc_runtime.hh"

namespace xpc::core {

/** Transport running over the XPC engine (any kernel personality). */
class XpcTransport : public Transport
{
  public:
    explicit XpcTransport(XpcRuntime &runtime);

    const char *name() const override { return "xpc"; }
    kernel::Kernel &kernelRef() override { return rt.kernel(); }

    ServiceId registerService(const ServiceDesc &desc,
                              ServiceHandler handler) override;
    void connect(kernel::Thread &client, ServiceId svc) override;
    VAddr requestArea(hw::Core &core, kernel::Thread &client,
                      uint64_t len) override;
    bool clientWrite(hw::Core &core, kernel::Thread &client,
                     uint64_t off, const void *src,
                     uint64_t len) override;
    bool clientRead(hw::Core &core, kernel::Thread &client,
                    uint64_t off, void *dst, uint64_t len) override;
    CallResult call(hw::Core &core, kernel::Thread &client,
                    ServiceId svc, uint64_t opcode, uint64_t req_len,
                    uint64_t reply_cap) override;

    /**
     * Allocate a scratch relay segment for @p server and park it in
     * its seg-list slot so handlers can swapseg it in for
     * callServiceScratch.
     */
    void prepareScratch(hw::Core &core, kernel::Thread &server,
                        uint64_t len) override;

    uint64_t scratchCall(hw::Core &core, kernel::Thread &caller,
                         bool in_handler, ServiceId svc,
                         uint64_t opcode, const void *req,
                         uint64_t req_len, void *reply,
                         uint64_t reply_cap) override;

    XpcRuntime &runtime() { return rt; }

    /** x-entry ID backing @p svc (for engine-level benches). */
    uint64_t entryOf(ServiceId svc) const { return entryIds.at(svc); }

    /** Parked scratch segment of @p thread, or nullptr. */
    const RelaySegHandle *
    scratchFor(kernel::ThreadId thread) const
    {
        auto it = scratchSegs.find(thread);
        return it == scratchSegs.end() ? nullptr : &it->second;
    }

  private:
    XpcRuntime &rt;
    std::vector<uint64_t> entryIds;
    std::vector<kernel::Thread *> creators;
    std::map<kernel::ThreadId, RelaySegHandle> activeSeg;
    /** Parked scratch segments of server threads, keyed by thread. */
    std::map<kernel::ThreadId, RelaySegHandle> scratchSegs;

    friend class XpcServerApi;
};

} // namespace xpc::core

#endif // XPC_CORE_TRANSPORT_XPC_HH
