/**
 * @file
 * Client-side circuit breaker: the quarantine state machine that
 * stops a client from hammering a stalled or overloaded service.
 *
 * Closed -> (N consecutive failures) -> Open -> (cycle-based
 * cooldown) -> HalfOpen -> one probe call decides: success closes
 * the breaker, failure re-opens it and restarts the cooldown.
 *
 * Everything is driven by the simulated cycle clock, so trip and
 * probe points are an exact function of the call/failure sequence -
 * no wall-clock, no hidden state. services::Supervisor keeps one
 * breaker per supervised service and consults it in callWithRetry;
 * a short-circuited call surfaces as CallStatus::BreakerOpen without
 * touching the transport at all.
 */

#ifndef XPC_CORE_BREAKER_HH
#define XPC_CORE_BREAKER_HH

#include <cstdint>

#include "sim/stats.hh"
#include "sim/types.hh"

namespace xpc::core {

/** Tunables; `enabled` gates the whole machine (default off). */
struct BreakerOptions
{
    bool enabled = false;
    /** Consecutive failures that trip Closed -> Open. */
    uint32_t failureThreshold = 3;
    /** Cycles an Open breaker waits before allowing a probe. */
    Cycles cooldownCycles{50000};
    /** Consecutive successes that close a HalfOpen breaker. */
    uint32_t halfOpenSuccesses = 1;
};

class CircuitBreaker
{
  public:
    enum class State : uint8_t { Closed, Open, HalfOpen };

    explicit CircuitBreaker(const BreakerOptions &options = {})
        : opts(options)
    {}

    /** Resolve the state at @p now (Open lapses into HalfOpen once
     *  the cooldown has elapsed). */
    State
    state(Cycles now) const
    {
        if (st == State::Open &&
            now.value() >= openedAt + opts.cooldownCycles.value())
            return State::HalfOpen;
        return st;
    }

    /**
     * Gate one call attempt. Open => false (quarantined: don't even
     * try). HalfOpen => true exactly once per cooldown window - the
     * probe; further attempts stay short-circuited until the probe
     * reports back via onSuccess/onFailure.
     */
    bool
    allow(Cycles now)
    {
        switch (state(now)) {
          case State::Closed:
            return true;
          case State::Open:
            shortCircuits_++;
            return false;
          case State::HalfOpen:
            if (st == State::Open) {
                // Cooldown elapsed: become half-open for real and
                // let this one probe through.
                st = State::HalfOpen;
                probeInFlight = true;
                probes_++;
                return true;
            }
            if (probeInFlight) {
                shortCircuits_++;
                return false;
            }
            probeInFlight = true;
            probes_++;
            return true;
        }
        return true;
    }

    void
    onSuccess(Cycles now)
    {
        (void)now;
        consecutiveFailures = 0;
        if (st == State::HalfOpen) {
            probeInFlight = false;
            if (++halfOpenStreak >= opts.halfOpenSuccesses) {
                st = State::Closed;
                halfOpenStreak = 0;
            }
        }
    }

    void
    onFailure(Cycles now)
    {
        if (st == State::HalfOpen) {
            // The probe failed: back to quarantine, fresh cooldown.
            probeInFlight = false;
            halfOpenStreak = 0;
            trip(now);
            return;
        }
        if (st == State::Closed &&
            ++consecutiveFailures >= opts.failureThreshold)
            trip(now);
    }

    /**
     * Restart-time reset: back to Closed with no failure memory. A
     * freshly restarted service must not inherit its predecessor's
     * quarantine - the failures that tripped the breaker died with
     * the old instance. The counters survive; they record history,
     * not state.
     */
    void
    reset()
    {
        st = State::Closed;
        openedAt = 0;
        consecutiveFailures = 0;
        halfOpenStreak = 0;
        probeInFlight = false;
    }

    uint64_t trips() const { return trips_; }
    uint64_t probes() const { return probes_; }
    uint64_t shortCircuits() const { return shortCircuits_; }

    const BreakerOptions &options() const { return opts; }

  private:
    void
    trip(Cycles now)
    {
        st = State::Open;
        openedAt = now.value();
        consecutiveFailures = 0;
        trips_++;
    }

    BreakerOptions opts;
    State st = State::Closed;
    uint64_t openedAt = 0;
    uint32_t consecutiveFailures = 0;
    uint32_t halfOpenStreak = 0;
    bool probeInFlight = false;
    uint64_t trips_ = 0;
    uint64_t probes_ = 0;
    uint64_t shortCircuits_ = 0;
};

const char *breakerStateName(CircuitBreaker::State state);

} // namespace xpc::core

#endif // XPC_CORE_BREAKER_HH
