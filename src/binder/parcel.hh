/**
 * @file
 * Android Binder's Parcel: the typed marshaling container that
 * transact() ships between processes. Data is packed with 4-byte
 * alignment like libbinder's; strings use the length-prefixed UTF-16
 * convention (stored as UTF-8 here, same framing).
 */

#ifndef XPC_BINDER_PARCEL_HH
#define XPC_BINDER_PARCEL_HH

#include <cstdint>
#include <string>
#include <vector>

namespace xpc::binder {

/** A marshaled message under construction or being read. */
class Parcel
{
  public:
    Parcel() = default;

    /** Wrap received bytes for reading. */
    explicit Parcel(std::vector<uint8_t> bytes)
        : buffer(std::move(bytes))
    {}

    /// @name Writers (append, 4-byte aligned).
    /// @{
    void writeInt32(int32_t value);
    void writeInt64(int64_t value);
    void writeString(const std::string &value);
    void writeBlob(const void *data, uint64_t len);
    /** Marshal an ashmem file descriptor (a kernel object id). */
    void writeFileDescriptor(uint64_t fd);
    /// @}

    /// @name Readers (sequential, matching the writers).
    /// @{
    int32_t readInt32();
    int64_t readInt64();
    std::string readString();
    std::vector<uint8_t> readBlob();
    uint64_t readFileDescriptor();
    /// @}

    const std::vector<uint8_t> &data() const { return buffer; }
    uint64_t size() const { return buffer.size(); }
    void rewind() { readPos = 0; }
    bool exhausted() const { return readPos >= buffer.size(); }

    /** Offsets of marshaled file descriptors (the driver translates
     *  these between processes, as Android's binder does). */
    const std::vector<uint64_t> &fdOffsets() const { return fdOffs; }

  private:
    std::vector<uint8_t> buffer;
    std::vector<uint64_t> fdOffs;
    uint64_t readPos = 0;

    void append(const void *data, uint64_t len);
    void pad4();
    void take(void *dst, uint64_t len);
};

} // namespace xpc::binder

#endif // XPC_BINDER_PARCEL_HH
