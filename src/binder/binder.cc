#include "binder.hh"

#include <cstring>

#include "sim/logging.hh"

namespace xpc::binder {

const char *
binderModeName(BinderMode mode)
{
    switch (mode) {
      case BinderMode::Baseline:
        return "Binder";
      case BinderMode::XpcCall:
        return "Binder-XPC";
      case BinderMode::XpcAshmem:
        return "Ashmem-XPC";
    }
    return "unknown";
}

BinderSystem::BinderSystem(kernel::Kernel &kernel,
                           core::XpcRuntime *runtime, BinderMode mode)
    : kern(kernel), rt(runtime), binderMode(mode)
{
    panic_if(mode != BinderMode::Baseline && !runtime,
             "XPC Binder modes need an XpcRuntime");
    kernelBuf = kern.machine().allocator().allocFrames(
        params.maxTransaction / pageSize);
    panic_if(kernelBuf == 0, "out of memory for the binder buffer");
}

uint64_t
BinderSystem::addService(const std::string &name,
                         kernel::Thread &server_thread,
                         TransactHandler handler)
{
    Service svc;
    svc.name = name;
    svc.server = &server_thread;
    svc.handler = std::move(handler);
    // The driver mmaps a per-process buffer area into the target.
    svc.txnBufVa = server_thread.process()->alloc(params.maxTransaction);

    if (binderMode == BinderMode::XpcCall) {
        // The modified framework adds an x-entry for the service
        // (add_x-entry ioctl, paper Figure 4).
        uint64_t id = services.size();
        svc.xEntryId = rt->registerEntry(
            server_thread, server_thread,
            [this, id](core::XpcServerCall &call) {
                Service &s = services.at(id);
                // Unmarshal the parcel out of the relay segment.
                std::vector<uint8_t> raw(call.requestLen());
                call.readMsg(0, raw.data(), raw.size());
                BinderTxn txn(*this, call.core(),
                              uint32_t(call.opcode()),
                              Parcel(std::move(raw)));
                s.handler(txn);
                // Marshal the reply back into the segment, in place.
                const auto &reply = txn.replyParcel.data();
                if (!reply.empty())
                    call.writeMsg(0, reply.data(), reply.size());
                call.setReplyLen(reply.size());
            },
            4);
    }

    services.push_back(std::move(svc));
    return services.size() - 1;
}

uint64_t
BinderSystem::getService(kernel::Thread &client,
                         const std::string &name)
{
    for (uint64_t handle = 0; handle < services.size(); handle++) {
        if (services[handle].name != name)
            continue;
        if (binderMode == BinderMode::XpcCall) {
            // The framework issues set_xcap for this client.
            Service &svc = services[handle];
            if (client.linkStack == 0)
                rt->manager().initThread(client);
            rt->manager().grantXcallCap(*svc.server, client,
                                        svc.xEntryId);
        }
        return handle;
    }
    fatal("no binder service named '%s'", name.c_str());
}

TxnOutcome
BinderSystem::transact(hw::Core &core, kernel::Thread &client,
                       uint64_t handle, uint32_t code,
                       const Parcel &data)
{
    panic_if(handle >= services.size(), "bad binder handle %lu",
             (unsigned long)handle);
    panic_if(data.size() > params.maxTransaction,
             "transaction exceeds the binder buffer limit");
    transactions.inc();
    Service &svc = services[handle];
    if (binderMode == BinderMode::XpcCall)
        return transactXpc(core, client, svc, code, data);
    return transactBaseline(core, client, svc, code, data);
}

TxnOutcome
BinderSystem::transactBaseline(hw::Core &core, kernel::Thread &client,
                               Service &svc, uint32_t code,
                               const Parcel &data)
{
    TxnOutcome out;
    Cycles start = core.now();

    // Client framework: marshal the parcel into the user-space
    // transaction buffer.
    core.spend(params.framework);
    VAddr &client_buf = stagingBufs[client.id()];
    if (client_buf == 0)
        client_buf = client.process()->alloc(params.maxTransaction);
    auto w = kern.userWrite(core, *client.process(), client_buf,
                            data.data().data(), data.size());
    panic_if(!w.ok, "client parcel staging faulted");

    // ioctl(BINDER_WRITE_READ): copy_from_user into the kernel.
    kern.trapEnter(core);
    core.spend(params.ioctlConst);
    {
        std::vector<uint8_t> stage(data.size());
        auto r = kern.userRead(core, *client.process(), client_buf,
                               stage.data(), stage.size());
        panic_if(!r.ok, "copy_from_user faulted");
        core.spend(kern.machine().mem().writePhys(
            core.id(), kernelBuf, stage.data(), stage.size()));
        bytesCopied.inc(stage.size());
    }
    core.spend(params.driverLogic);

    // Wake the target's binder thread and copy_to_user there.
    core.spend(params.wakeup);
    kern.setCurrent(core.id(), svc.server);
    {
        std::vector<uint8_t> stage(data.size());
        core.spend(kern.machine().mem().readPhys(
            core.id(), kernelBuf, stage.data(), stage.size()));
        auto w2 = kern.userWrite(core, *svc.server->process(),
                                 svc.txnBufVa, stage.data(),
                                 stage.size());
        panic_if(!w2.ok, "copy_to_user faulted");
        bytesCopied.inc(stage.size());
    }
    kern.trapExit(core);

    // Server framework: unmarshal and dispatch onTransact.
    core.spend(params.framework);
    std::vector<uint8_t> raw(data.size());
    auto r2 = kern.userRead(core, *svc.server->process(), svc.txnBufVa,
                            raw.data(), raw.size());
    panic_if(!r2.ok, "server parcel read faulted");

    Parcel received(std::move(raw));
    BinderTxn txn(*this, core, code, std::move(received));
    receiveAshmem(core, txn, *svc.server, data);
    svc.handler(txn);

    // Reply direction: mirror image through the driver.
    const auto &reply = txn.replyParcel.data();
    kern.trapEnter(core);
    core.spend(params.ioctlConst);
    if (!reply.empty()) {
        core.spend(kern.machine().mem().writePhys(
            core.id(), kernelBuf, reply.data(), reply.size()));
        bytesCopied.inc(reply.size());
    }
    core.spend(params.driverLogic);
    core.spend(params.wakeup);
    kern.setCurrent(core.id(), &client);
    if (!reply.empty()) {
        std::vector<uint8_t> stage(reply.size());
        core.spend(kern.machine().mem().readPhys(
            core.id(), kernelBuf, stage.data(), stage.size()));
        auto w3 = kern.userWrite(core, *client.process(), client_buf,
                                 stage.data(), stage.size());
        panic_if(!w3.ok, "reply copy_to_user faulted");
        bytesCopied.inc(reply.size());
    }
    kern.trapExit(core);
    core.spend(params.framework);

    out.ok = true;
    out.reply = txn.replyParcel;
    out.latency = core.now() - start;
    return out;
}

TxnOutcome
BinderSystem::transactXpc(hw::Core &core, kernel::Thread &client,
                          Service &svc, uint32_t code,
                          const Parcel &data)
{
    TxnOutcome out;
    if (client.linkStack == 0)
        rt->manager().initThread(client);

    // Ensure the client's relay segment fits the parcel.
    auto it = clientSegs.find(client.id());
    if (it == clientSegs.end() || it->second.len < data.size()) {
        uint64_t len = std::max<uint64_t>(data.size(), 64 * 1024);
        core::RelaySegHandle seg =
            rt->allocRelayMem(core, client, len);
        clientSegs[client.id()] = seg;
    } else {
        rt->ensureInstalled(core, client);
    }

    Cycles start = core.now();
    // The modified framework marshals straight into the segment:
    // only a thin dispatch layer remains.
    core.spend(Cycles(120));
    rt->segWrite(core, 0, data.data().data(), data.size());

    auto call = rt->call(core, client, svc.xEntryId, code,
                         data.size());
    panic_if(!call.ok, "binder xcall failed (%s)",
             engine::xpcExceptionName(call.exc));

    std::vector<uint8_t> reply_raw(call.replyLen);
    if (call.replyLen > 0)
        rt->segRead(core, 0, reply_raw.data(), reply_raw.size());
    core.spend(Cycles(120));

    out.ok = true;
    out.reply = Parcel(std::move(reply_raw));
    out.latency = core.now() - start;
    return out;
}

AshmemRegion
BinderSystem::ashmemCreate(hw::Core &core, kernel::Thread &owner,
                           uint64_t size)
{
    AshmemBacking backing;
    backing.size = pageAlignUp(size);

    if (binderMode == BinderMode::Baseline) {
        backing.phys = kern.machine().allocator().allocFrames(
            backing.size / pageSize);
        fatal_if(backing.phys == 0, "out of memory for ashmem");
        backing.window = mem::SegWindow{
            true, uint64_t(0x40) << 32, backing.phys, backing.size,
            true, true};
    } else {
        // ashmem allocation = relay segment (paper 4.3).
        if (owner.linkStack == 0)
            rt->manager().initThread(owner);
        kernel::RelaySeg seg = rt->manager().allocRelaySeg(
            &core, *owner.process(), backing.size,
            engine::segListCapacity - 1 - (nextFd % 32));
        backing.segId = seg.segId;
        backing.window = mem::SegWindow{true, seg.va, seg.pa,
                                        seg.len, true, true};
    }

    AshmemRegion region{nextFd++, backing.size};
    ashmems[region.fd] = backing;
    return region;
}

void
BinderSystem::ashmemWrite(hw::Core &core, const AshmemRegion &region,
                          uint64_t off, const void *src, uint64_t len)
{
    auto it = ashmems.find(region.fd);
    panic_if(it == ashmems.end(), "bad ashmem fd %lu",
             (unsigned long)region.fd);
    panic_if(off + len > it->second.size, "ashmem write out of range");
    mem::TransContext ctx;
    ctx.seg = &it->second.window;
    auto res = kern.machine().mem().write(
        core.id(), ctx, it->second.window.vaBase + off, src, len);
    panic_if(!res.ok, "ashmem write faulted");
    core.spend(res.cycles);
}

void
BinderSystem::ashmemRead(hw::Core &core, const AshmemRegion &region,
                         uint64_t off, void *dst, uint64_t len)
{
    auto it = ashmems.find(region.fd);
    panic_if(it == ashmems.end(), "bad ashmem fd %lu",
             (unsigned long)region.fd);
    panic_if(off + len > it->second.size, "ashmem read out of range");
    mem::TransContext ctx;
    ctx.seg = &it->second.window;
    auto res = kern.machine().mem().read(
        core.id(), ctx, it->second.window.vaBase + off, dst, len);
    panic_if(!res.ok, "ashmem read faulted");
    core.spend(res.cycles);
}

void
BinderSystem::receiveAshmem(hw::Core &core, BinderTxn &txn,
                            kernel::Thread &server, const Parcel &data)
{
    for (uint64_t off : data.fdOffsets()) {
        uint64_t fd;
        std::memcpy(&fd, data.data().data() + off, sizeof(fd));
        auto it = ashmems.find(fd);
        panic_if(it == ashmems.end(),
                 "transaction carries an unknown ashmem fd");
        AshmemBacking &backing = it->second;

        if (binderMode == BinderMode::Baseline) {
            // Conventional shared memory still needs a defensive
            // copy to dodge TOCTTOU (paper 4.3).
            VAddr &priv = defensiveCopies[{server.id(), fd}];
            if (priv == 0)
                priv = server.process()->alloc(backing.size);

            std::vector<uint8_t> stage(backing.size);
            mem::TransContext src_ctx;
            src_ctx.seg = &backing.window;
            auto r = kern.machine().mem().read(
                core.id(), src_ctx, backing.window.vaBase,
                stage.data(), stage.size());
            panic_if(!r.ok, "ashmem defensive read faulted");
            core.spend(r.cycles);
            auto w = kern.userWrite(core, *server.process(), priv,
                                    stage.data(), stage.size());
            panic_if(!w.ok, "ashmem defensive write faulted");
            bytesCopied.inc(stage.size());
            txn.privateCopies[fd] = priv;
        } else {
            // Relay-segment ashmem: ownership moves with the
            // transaction; the driver only updates seg bookkeeping.
            core.spend(Cycles(40));
        }
    }
}

void
BinderTxn::readAshmem(const AshmemRegion &region, uint64_t off,
                      void *dst, uint64_t len)
{
    auto priv = privateCopies.find(region.fd);
    if (priv != privateCopies.end()) {
        // Baseline: read the defensive private copy.
        kernel::Thread *server = owner.kern.current(coreRef.id());
        panic_if(!server, "no current thread for ashmem read");
        auto r = owner.kern.userRead(coreRef, *server->process(),
                                     priv->second + off, dst, len);
        panic_if(!r.ok, "private ashmem read faulted");
        return;
    }
    owner.ashmemRead(coreRef, region, off, dst, len);
}

} // namespace xpc::binder
