/**
 * @file
 * Android Binder on the simulator: the /dev/binder driver model
 * (transaction buffers, twofold copy, wakeups), the libbinder-style
 * framework (transact/onTransact, service manager), and the ashmem
 * subsystem - plus the XPC-optimized variants of paper section 4.3:
 *
 *  - Baseline: ioctl into the driver, copy_from_user + copy_to_user
 *    per direction, a scheduler wakeup per hop; ashmem transfers the
 *    fd but the receiver makes a defensive copy (TOCTTOU).
 *  - Binder-XPC: transact() rides xcall with the parcel in a relay
 *    segment; zero copies, no kernel.
 *  - Ashmem-XPC: the control transaction stays on the Binder driver
 *    path but the bulk payload lives in a relay segment whose
 *    ownership transfers, removing the defensive copy.
 */

#ifndef XPC_BINDER_BINDER_HH
#define XPC_BINDER_BINDER_HH

#include <functional>
#include <map>
#include <optional>
#include <string>

#include "binder/parcel.hh"
#include "core/xpc_runtime.hh"

namespace xpc::binder {

/** Which IPC mechanism backs the Binder framework. */
enum class BinderMode
{
    Baseline,  ///< stock driver: twofold copy + wakeups
    XpcCall,   ///< Binder-XPC: xcall + relay segments throughout
    XpcAshmem, ///< Ashmem-XPC: stock control path, relay-seg payload
};

const char *binderModeName(BinderMode mode);

/** Calibrated driver/framework cost constants. */
struct BinderParams
{
    /** binder_ioctl entry/exit (on top of the trap costs). */
    Cycles ioctlConst{800};
    /** Driver transaction bookkeeping: node and ref lookups, buffer
     *  allocation in the target's mmap area. */
    Cycles driverLogic{1600};
    /** Waking the target proc's binder thread (schedule + switch). */
    Cycles wakeup{5200};
    /** libbinder marshal/dispatch overhead per transact(). */
    Cycles framework{2800};
    /** Binder's per-process transaction buffer limit (1 MiB-ish). */
    uint64_t maxTransaction = 1 << 20;
};

/** An ashmem region handle (the "fd"). */
struct AshmemRegion
{
    uint64_t fd = 0;
    uint64_t size = 0;
};

class BinderSystem;

/** The server's view of one incoming transaction. */
class BinderTxn
{
  public:
    uint32_t code() const { return txnCode; }
    /** The unmarshaled request parcel (bytes already charged). */
    Parcel &data() { return request; }
    /** The reply parcel to fill in. */
    Parcel &reply() { return replyParcel; }

    /** Charged read from a received ashmem region. On the baseline
     *  this reads the defensive private copy. */
    void readAshmem(const AshmemRegion &region, uint64_t off,
                    void *dst, uint64_t len);

    hw::Core &core() { return coreRef; }

  private:
    friend class BinderSystem;

    BinderTxn(BinderSystem &sys, hw::Core &core, uint32_t code,
              Parcel request)
        : owner(sys), coreRef(core), txnCode(code),
          request(std::move(request))
    {}

    BinderSystem &owner;
    hw::Core &coreRef;
    uint32_t txnCode;
    Parcel request;
    Parcel replyParcel;
    /** Baseline: fd -> private defensive copy the receiver made. */
    std::map<uint64_t, VAddr> privateCopies;
};

/** Handler a service installs (its onTransact). */
using TransactHandler = std::function<void(BinderTxn &)>;

/** Outcome of a transaction, with the measured latency. */
struct TxnOutcome
{
    bool ok = false;
    Parcel reply;
    Cycles latency;
};

/**
 * The whole Binder stack for one simulated system. Combines the
 * driver, framework and service-manager roles (they are distinct
 * layers on Android but share one lock-step model here).
 */
class BinderSystem
{
  public:
    /**
     * @param runtime XPC runtime; required for the XPC modes, may be
     *        null for Baseline.
     */
    BinderSystem(kernel::Kernel &kernel, core::XpcRuntime *runtime,
                 BinderMode mode);

    BinderMode mode() const { return binderMode; }
    BinderParams params;

    /** Register a named service (servicemanager::addService). */
    uint64_t addService(const std::string &name,
                        kernel::Thread &server_thread,
                        TransactHandler handler);

    /** Resolve a name to a handle (servicemanager::getService). */
    uint64_t getService(kernel::Thread &client,
                        const std::string &name);

    /** The client-side transact() of BpBinder. */
    TxnOutcome transact(hw::Core &core, kernel::Thread &client,
                        uint64_t handle, uint32_t code,
                        const Parcel &data);

    /// @name Ashmem.
    /// @{
    AshmemRegion ashmemCreate(hw::Core &core, kernel::Thread &owner,
                              uint64_t size);
    /** Charged write into an owned region (producer side). */
    void ashmemWrite(hw::Core &core, const AshmemRegion &region,
                     uint64_t off, const void *src, uint64_t len);
    /** Charged read from an owned region. */
    void ashmemRead(hw::Core &core, const AshmemRegion &region,
                    uint64_t off, void *dst, uint64_t len);
    /// @}

    Counter transactions;
    Counter bytesCopied;

  private:
    struct Service
    {
        std::string name;
        kernel::Thread *server = nullptr;
        TransactHandler handler;
        /** Target-side transaction buffer (driver mmap area). */
        VAddr txnBufVa = 0;
        /** XpcCall mode: backing x-entry. */
        uint64_t xEntryId = 0;
    };

    struct AshmemBacking
    {
        uint64_t size = 0;
        /** Baseline: kernel pages backing the shared mapping. */
        PAddr phys = 0;
        /** XPC modes: the relay segment. */
        uint64_t segId = 0;
        mem::SegWindow window;
    };

    kernel::Kernel &kern;
    core::XpcRuntime *rt;
    BinderMode binderMode;
    std::vector<Service> services;
    std::map<uint64_t, AshmemBacking> ashmems;
    uint64_t nextFd = 3;
    /** Kernel staging buffer for the twofold copy. */
    PAddr kernelBuf = 0;
    /** Per-client relay segments in XpcCall mode. */
    std::map<kernel::ThreadId, core::RelaySegHandle> clientSegs;
    /** Per-client user-space staging buffers (baseline mode). */
    std::map<kernel::ThreadId, VAddr> stagingBufs;
    /** Baseline defensive ashmem copies: (server, fd) -> private. */
    std::map<std::pair<kernel::ThreadId, uint64_t>, VAddr>
        defensiveCopies;

    TxnOutcome transactBaseline(hw::Core &core, kernel::Thread &client,
                                Service &svc, uint32_t code,
                                const Parcel &data);
    TxnOutcome transactXpc(hw::Core &core, kernel::Thread &client,
                           Service &svc, uint32_t code,
                           const Parcel &data);
    void receiveAshmem(hw::Core &core, BinderTxn &txn,
                       kernel::Thread &server, const Parcel &data);

    friend class BinderTxn;
};

} // namespace xpc::binder

#endif // XPC_BINDER_BINDER_HH
