#include "parcel.hh"

#include <cstring>

#include "sim/logging.hh"

namespace xpc::binder {

void
Parcel::append(const void *data, uint64_t len)
{
    const auto *bytes = static_cast<const uint8_t *>(data);
    buffer.insert(buffer.end(), bytes, bytes + len);
}

void
Parcel::pad4()
{
    while (buffer.size() % 4 != 0)
        buffer.push_back(0);
}

void
Parcel::take(void *dst, uint64_t len)
{
    panic_if(readPos + len > buffer.size(), "parcel underflow");
    std::memcpy(dst, buffer.data() + readPos, len);
    readPos += len;
}

void
Parcel::writeInt32(int32_t value)
{
    append(&value, sizeof(value));
}

void
Parcel::writeInt64(int64_t value)
{
    append(&value, sizeof(value));
}

void
Parcel::writeString(const std::string &value)
{
    writeInt32(int32_t(value.size()));
    append(value.data(), value.size());
    pad4();
}

void
Parcel::writeBlob(const void *data, uint64_t len)
{
    writeInt64(int64_t(len));
    append(data, len);
    pad4();
}

void
Parcel::writeFileDescriptor(uint64_t fd)
{
    fdOffs.push_back(buffer.size());
    writeInt64(int64_t(fd));
}

int32_t
Parcel::readInt32()
{
    int32_t value;
    take(&value, sizeof(value));
    return value;
}

int64_t
Parcel::readInt64()
{
    int64_t value;
    take(&value, sizeof(value));
    return value;
}

std::string
Parcel::readString()
{
    int32_t len = readInt32();
    panic_if(len < 0, "negative string length in parcel");
    std::string out(size_t(len), 0);
    take(out.data(), uint64_t(len));
    readPos = (readPos + 3) & ~uint64_t(3);
    return out;
}

std::vector<uint8_t>
Parcel::readBlob()
{
    int64_t len = readInt64();
    panic_if(len < 0, "negative blob length in parcel");
    std::vector<uint8_t> out(static_cast<size_t>(len), uint8_t(0));
    take(out.data(), uint64_t(len));
    readPos = (readPos + 3) & ~uint64_t(3);
    return out;
}

uint64_t
Parcel::readFileDescriptor()
{
    return uint64_t(readInt64());
}

} // namespace xpc::binder
