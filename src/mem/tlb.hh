/**
 * @file
 * Set-associative TLB with optional ASID tagging.
 *
 * The tagged/untagged distinction matters to the paper twice: Rocket
 * has no tagged TLB, so an xcall pays roughly 40 cycles of flush and
 * refill penalty (Figure 5), and the ARM port pays 58 cycles for the
 * TTBR0 update barriers (Table 5). Untagged mode flushes everything on
 * address-space switch; tagged mode keeps entries alive across
 * switches and matches on ASID.
 */

#ifndef XPC_MEM_TLB_HH
#define XPC_MEM_TLB_HH

#include <cstdint>
#include <vector>

#include "mem/page_table.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace xpc::mem {

/** One cached translation. */
struct TlbEntry
{
    bool valid = false;
    Asid asid = 0;
    uint64_t vpn = 0;
    uint64_t ppn = 0;
    Perms perms;
    uint64_t lruStamp = 0;
};

/** Set-associative translation lookaside buffer. */
class Tlb
{
  public:
    /**
     * @param entries total entry count (power of two)
     * @param assoc   ways per set
     * @param tagged  when false, switching ASIDs requires flushAll()
     */
    Tlb(uint32_t entries, uint32_t assoc, bool tagged);

    bool tagged() const { return isTagged; }

    /**
     * Look up @p vaddr for @p asid.
     * @return pointer to the hit entry, or nullptr on miss.
     */
    const TlbEntry *lookup(Asid asid, VAddr vaddr);

    /** Install a translation after a successful page walk. */
    void insert(Asid asid, VAddr vaddr, PAddr paddr, Perms perms);

    /** Drop every entry (untagged address-space switch). */
    void flushAll();

    /** Drop entries belonging to @p asid (unmap/shootdown). */
    void flushAsid(Asid asid);

    /** Drop the single translation for (asid, vaddr) if present. */
    void flushPage(Asid asid, VAddr vaddr);

    Counter hits;
    Counter misses;
    Counter flushes;

    /** Registry node; the owner names it and attaches it to a parent. */
    StatGroup stats{"tlb"};

  private:
    uint32_t numSets;
    uint32_t assoc;
    bool isTagged;
    uint64_t clock = 0;
    std::vector<TlbEntry> entriesVec;

    TlbEntry *set(uint64_t vpn);
};

} // namespace xpc::mem

#endif // XPC_MEM_TLB_HH
