#include "phys_mem.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace xpc::mem {

PhysMem::PhysMem(uint64_t size_bytes) : memSize(size_bytes)
{
    panic_if(!pageAligned(size_bytes), "PhysMem size must be page aligned");
}

void
PhysMem::checkRange(PAddr addr, uint64_t len) const
{
    panic_if(addr + len > memSize || addr + len < addr,
             "physical access [%#lx, %#lx) outside DRAM of %#lx bytes",
             (unsigned long)addr, (unsigned long)(addr + len),
             (unsigned long)memSize);
}

uint8_t *
PhysMem::framePtr(PAddr addr) const
{
    uint64_t frame = addr >> pageShift;
    auto it = frames.find(frame);
    if (it == frames.end()) {
        auto mem = std::make_unique<uint8_t[]>(pageSize);
        std::memset(mem.get(), 0, pageSize);
        it = frames.emplace(frame, std::move(mem)).first;
    }
    return it->second.get();
}

void
PhysMem::read(PAddr addr, void *dst, uint64_t len) const
{
    checkRange(addr, len);
    auto *out = static_cast<uint8_t *>(dst);
    while (len > 0) {
        uint64_t off = addr & pageMask;
        uint64_t chunk = std::min(len, pageSize - off);
        std::memcpy(out, framePtr(addr) + off, chunk);
        addr += chunk;
        out += chunk;
        len -= chunk;
    }
}

void
PhysMem::write(PAddr addr, const void *src, uint64_t len)
{
    checkRange(addr, len);
    auto *in = static_cast<const uint8_t *>(src);
    while (len > 0) {
        uint64_t off = addr & pageMask;
        uint64_t chunk = std::min(len, pageSize - off);
        std::memcpy(framePtr(addr) + off, in, chunk);
        addr += chunk;
        in += chunk;
        len -= chunk;
    }
}

uint64_t
PhysMem::read64(PAddr addr) const
{
    panic_if(addr % 8 != 0, "unaligned read64 at %#lx",
             (unsigned long)addr);
    uint64_t value;
    read(addr, &value, sizeof(value));
    return value;
}

void
PhysMem::write64(PAddr addr, uint64_t value)
{
    panic_if(addr % 8 != 0, "unaligned write64 at %#lx",
             (unsigned long)addr);
    write(addr, &value, sizeof(value));
}

void
PhysMem::clear(PAddr addr, uint64_t len)
{
    checkRange(addr, len);
    while (len > 0) {
        uint64_t off = addr & pageMask;
        uint64_t chunk = std::min(len, pageSize - off);
        std::memset(framePtr(addr) + off, 0, chunk);
        addr += chunk;
        len -= chunk;
    }
}

PhysAllocator::PhysAllocator(PAddr base, uint64_t size)
{
    panic_if(!pageAligned(base) || !pageAligned(size),
             "allocator range must be page aligned");
    if (size > 0)
        freeList[base] = size;
}

PAddr
PhysAllocator::allocFrames(uint64_t npages)
{
    panic_if(npages == 0, "allocFrames(0)");
    uint64_t want = npages * pageSize;
    for (auto it = freeList.begin(); it != freeList.end(); ++it) {
        if (it->second >= want) {
            PAddr base = it->first;
            uint64_t remain = it->second - want;
            freeList.erase(it);
            if (remain > 0)
                freeList[base + want] = remain;
            return base;
        }
    }
    return 0;
}

void
PhysAllocator::freeFrames(PAddr base, uint64_t npages)
{
    panic_if(!pageAligned(base), "freeFrames of unaligned base");
    uint64_t len = npages * pageSize;
    auto [it, fresh] = freeList.emplace(base, len);
    panic_if(!fresh, "double free of frame %#lx", (unsigned long)base);

    // Coalesce with successor, then predecessor.
    auto next = std::next(it);
    if (next != freeList.end() && it->first + it->second == next->first) {
        it->second += next->second;
        freeList.erase(next);
    }
    if (it != freeList.begin()) {
        auto prev = std::prev(it);
        panic_if(prev->first + prev->second > it->first,
                 "freeFrames overlaps live allocation at %#lx",
                 (unsigned long)base);
        if (prev->first + prev->second == it->first) {
            prev->second += it->second;
            freeList.erase(it);
        }
    }
}

uint64_t
PhysAllocator::freeBytes() const
{
    uint64_t total = 0;
    for (const auto &[base, len] : freeList)
        total += len;
    return total;
}

uint64_t
PhysAllocator::largestExtent() const
{
    uint64_t best = 0;
    for (const auto &[base, len] : freeList)
        best = std::max(best, len);
    return best;
}

} // namespace xpc::mem
