/**
 * @file
 * Sparse simulated physical memory and a physical frame allocator.
 *
 * PhysMem holds the functional state of DRAM: every byte a simulated
 * program reads or writes lives here. Timing is charged elsewhere (by
 * the cache hierarchy in MemSystem); PhysMem itself is purely
 * functional so that timing bugs can never corrupt data.
 */

#ifndef XPC_MEM_PHYS_MEM_HH
#define XPC_MEM_PHYS_MEM_HH

#include <cstdint>
#include <cstring>
#include <map>
#include <memory>
#include <vector>

#include "sim/types.hh"

namespace xpc::mem {

/** Functional backing store for simulated DRAM. */
class PhysMem
{
  public:
    /** @param size_bytes total DRAM capacity (default 1 GiB). */
    explicit PhysMem(uint64_t size_bytes = uint64_t(1) << 30);

    uint64_t size() const { return memSize; }

    /** Copy @p len bytes at physical @p addr into @p dst. */
    void read(PAddr addr, void *dst, uint64_t len) const;

    /** Copy @p len bytes from @p src into physical @p addr. */
    void write(PAddr addr, const void *src, uint64_t len);

    /** Read a naturally aligned 64-bit word. */
    uint64_t read64(PAddr addr) const;

    /** Write a naturally aligned 64-bit word. */
    void write64(PAddr addr, uint64_t value);

    /** Zero-fill @p len bytes starting at @p addr. */
    void clear(PAddr addr, uint64_t len);

  private:
    uint64_t memSize;
    /** Lazily allocated 4 KiB frames keyed by frame number. */
    mutable std::map<uint64_t, std::unique_ptr<uint8_t[]>> frames;

    uint8_t *framePtr(PAddr addr) const;
    void checkRange(PAddr addr, uint64_t len) const;
};

/**
 * First-fit physical frame allocator.
 *
 * Supports multi-frame contiguous allocations, which relay segments
 * require (a relay-seg must be physically contiguous, paper section 3.3),
 * and coalescing free so terminated processes return their segments.
 */
class PhysAllocator
{
  public:
    /**
     * @param base first allocatable physical address (page aligned)
     * @param size bytes under management
     */
    PhysAllocator(PAddr base, uint64_t size);

    /**
     * Allocate @p npages contiguous frames.
     * @return base physical address, or 0 on exhaustion/fragmentation.
     */
    PAddr allocFrames(uint64_t npages);

    /** Return a previously allocated range. */
    void freeFrames(PAddr base, uint64_t npages);

    /** @return total free bytes (may be fragmented). */
    uint64_t freeBytes() const;

    /** @return size of the largest single free extent in bytes. */
    uint64_t largestExtent() const;

  private:
    /** Free extents as [base -> length), sorted and coalesced. */
    std::map<PAddr, uint64_t> freeList;
};

} // namespace xpc::mem

#endif // XPC_MEM_PHYS_MEM_HH
