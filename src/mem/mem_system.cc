#include "mem_system.hh"

#include <algorithm>
#include <cstring>

#include "sim/fault_injector.hh"
#include "sim/logging.hh"
#include "sim/trace.hh"

namespace xpc::mem {

namespace {

/** An injected fault costs what detecting a real one does: the
 *  translation attempt plus the faulting access reaching memory. */
AccessResult
injectedFault(VAddr vaddr, Cycles latency)
{
    AccessResult res;
    res.ok = false;
    res.cycles = latency;
    res.fault = FaultKind::Injected;
    res.faultAddr = vaddr;
    return res;
}

} // namespace

MemAttribution::MemAttribution(StatGroup *parent)
{
    group.setParent(parent);
    auto reg = [&](const std::string &prefix, Row &r) {
        group.addCounter(prefix + ".accesses", &r.accesses);
        group.addCounter(prefix + ".cycles", &r.cycles);
        group.addCounter(prefix + ".l1_misses", &r.l1Misses);
        group.addCounter(prefix + ".tlb_walks", &r.tlbWalks);
        group.addCounter(prefix + ".walk_cycles", &r.walkCycles);
    };
    for (uint32_t i = 0; i < phaseCount; i++)
        reg(phaseName(Phase(i)), rows[i]);
    reg("unattributed", rows[phaseCount]);
}

MemSystem::MemSystem(PhysMem &phys, const MemParams &params,
                     uint32_t ncores)
    : physMem(phys), memParams(params)
{
    panic_if(ncores == 0, "MemSystem needs at least one core");
    l2 = std::make_unique<Cache>(params.l2, nullptr, params.dramLatency);
    l2->stats.setName("l2");
    l2->stats.setParent(&stats);
    for (uint32_t i = 0; i < ncores; i++) {
        l1ds.push_back(
            std::make_unique<Cache>(params.l1d, l2.get(),
                                    params.dramLatency));
        l1ds.back()->stats.setName("l1d" + std::to_string(i));
        l1ds.back()->stats.setParent(&stats);
        tlbs.push_back(std::make_unique<Tlb>(
            params.tlbEntries, params.tlbAssoc, params.taggedTlb));
        tlbs.back()->stats.setName("tlb" + std::to_string(i));
        tlbs.back()->stats.setParent(&stats);
    }
}

Cycles
MemSystem::issueCost(uint64_t len) const
{
    uint64_t wb = memParams.wordBytes;
    uint64_t words = (len + wb - 1) / wb;
    return Cycles(memParams.perWordIssue.value() * words);
}

AccessResult
MemSystem::translate(CoreId core, const TransContext &ctx, VAddr vaddr,
                     bool is_write, PAddr *out)
{
    AccessResult res;

    // Relay-seg window has priority over the page table (paper 3.3).
    if (ctx.seg) {
        if (auto paddr = ctx.seg->translate(vaddr)) {
            bool allowed = is_write ? ctx.seg->write : ctx.seg->read;
            if (!allowed) {
                res.fault = FaultKind::SegPermissionFault;
                res.faultAddr = vaddr;
                return res;
            }
            res.ok = true;
            *out = *paddr;
            return res;
        }
    }

    // Relay page table (paper 6.2): selected by VA range, walked and
    // TLB-cached like a normal table but under its own ASID.
    if (ctx.relayPt && ctx.relayPt->covers(vaddr)) {
        if (const TlbEntry *e =
                tlb(core).lookup(ctx.relayPt->asid, vaddr)) {
            Perms req;
            req.read = !is_write;
            req.write = is_write;
            req.user = ctx.user;
            if (!e->perms.allows(req)) {
                res.fault = FaultKind::ProtectionFault;
                res.faultAddr = vaddr;
                return res;
            }
            res.ok = true;
            *out = (e->ppn << pageShift) | (vaddr & pageMask);
            return res;
        }
        WalkResult walk = ctx.relayPt->pt->walk(vaddr);
        res.cycles += memParams.walkOverhead;
        for (int i = 0; i < walk.levels; i++)
            res.cycles += l1(core).access(walk.pteAddrs[i], 8, false);
        attr.walk(res.cycles.value());
        if (trace::Tracer::global().enabled())
            trace::Tracer::global().instantNow("mem", "tlb_miss_fill",
                                               core, {},
                                               res.cycles.value());
        if (!walk.valid) {
            res.fault = FaultKind::PageFault;
            res.faultAddr = vaddr;
            return res;
        }
        tlb(core).insert(ctx.relayPt->asid, vaddr, walk.paddr,
                         walk.perms);
        res.ok = true;
        *out = walk.paddr;
        return res;
    }

    panic_if(!ctx.pt, "translate with neither seg window nor page table");

    if (const TlbEntry *e = tlb(core).lookup(ctx.asid, vaddr)) {
        Perms req;
        req.read = !is_write;
        req.write = is_write;
        req.user = ctx.user;
        if (!e->perms.allows(req)) {
            res.fault = FaultKind::ProtectionFault;
            res.faultAddr = vaddr;
            return res;
        }
        res.ok = true;
        *out = (e->ppn << pageShift) | (vaddr & pageMask);
        return res;
    }

    // TLB miss: hardware page walk, PTE fetches go through the caches.
    WalkResult walk = ctx.pt->walk(vaddr);
    res.cycles += memParams.walkOverhead;
    for (int i = 0; i < walk.levels; i++)
        res.cycles += l1(core).access(walk.pteAddrs[i], 8, false);
    attr.walk(res.cycles.value());
    if (trace::Tracer::global().enabled())
        trace::Tracer::global().instantNow("mem", "tlb_miss_fill",
                                           core, {},
                                           res.cycles.value());

    if (!walk.valid) {
        res.fault = FaultKind::PageFault;
        res.faultAddr = vaddr;
        return res;
    }

    Perms req;
    req.read = !is_write;
    req.write = is_write;
    req.user = ctx.user;
    if (!walk.perms.allows(req)) {
        res.fault = FaultKind::ProtectionFault;
        res.faultAddr = vaddr;
        return res;
    }

    tlb(core).insert(ctx.asid, vaddr, walk.paddr, walk.perms);
    res.ok = true;
    *out = walk.paddr;
    return res;
}

AccessResult
MemSystem::read(CoreId core, const TransContext &ctx, VAddr vaddr,
                void *dst, uint64_t len)
{
    if (injector && injector->consumeMemFault())
        return injectedFault(vaddr, memParams.dramLatency);
    AccessResult total;
    total.ok = true;
    auto *out = static_cast<uint8_t *>(dst);
    while (len > 0) {
        uint64_t chunk = std::min(len, pageSize - (vaddr & pageMask));
        PAddr paddr = 0;
        AccessResult tr = translate(core, ctx, vaddr, false, &paddr);
        total.cycles += tr.cycles;
        if (!tr.ok) {
            total.ok = false;
            total.fault = tr.fault;
            total.faultAddr = tr.faultAddr;
            return total;
        }
        uint64_t miss0 = l1(core).misses.value();
        Cycles data = l1(core).access(paddr, chunk, false);
        data += issueCost(chunk);
        total.cycles += data;
        bool missed = l1(core).misses.value() != miss0;
        attr.access(data.value(), missed);
        if (missed && trace::Tracer::global().enabled())
            trace::Tracer::global().instantNow("mem", "l1_miss_fill",
                                               core, {}, data.value());
        physMem.read(paddr, out, chunk);
        vaddr += chunk;
        out += chunk;
        len -= chunk;
    }
    return total;
}

AccessResult
MemSystem::write(CoreId core, const TransContext &ctx, VAddr vaddr,
                 const void *src, uint64_t len)
{
    if (injector && injector->consumeMemFault())
        return injectedFault(vaddr, memParams.dramLatency);
    AccessResult total;
    total.ok = true;
    auto *in = static_cast<const uint8_t *>(src);
    while (len > 0) {
        uint64_t chunk = std::min(len, pageSize - (vaddr & pageMask));
        PAddr paddr = 0;
        AccessResult tr = translate(core, ctx, vaddr, true, &paddr);
        total.cycles += tr.cycles;
        if (!tr.ok) {
            total.ok = false;
            total.fault = tr.fault;
            total.faultAddr = tr.faultAddr;
            return total;
        }
        uint64_t miss0 = l1(core).misses.value();
        Cycles data = l1(core).access(paddr, chunk, true);
        data += issueCost(chunk);
        total.cycles += data;
        bool missed = l1(core).misses.value() != miss0;
        attr.access(data.value(), missed);
        if (missed && trace::Tracer::global().enabled())
            trace::Tracer::global().instantNow("mem", "l1_miss_fill",
                                               core, {}, data.value());
        physMem.write(paddr, in, chunk);
        vaddr += chunk;
        in += chunk;
        len -= chunk;
    }
    return total;
}

AccessResult
MemSystem::copy(CoreId core, const TransContext &src_ctx, VAddr src,
                const TransContext &dst_ctx, VAddr dst, uint64_t len)
{
    AccessResult total;
    total.ok = true;
    std::vector<uint8_t> buf(std::min<uint64_t>(len, pageSize));
    while (len > 0) {
        uint64_t chunk = std::min<uint64_t>(len, buf.size());
        AccessResult r = read(core, src_ctx, src, buf.data(), chunk);
        total.cycles += r.cycles;
        if (!r.ok) {
            total.ok = false;
            total.fault = r.fault;
            total.faultAddr = r.faultAddr;
            return total;
        }
        AccessResult w = write(core, dst_ctx, dst, buf.data(), chunk);
        total.cycles += w.cycles;
        if (!w.ok) {
            total.ok = false;
            total.fault = w.fault;
            total.faultAddr = w.faultAddr;
            return total;
        }
        src += chunk;
        dst += chunk;
        len -= chunk;
    }
    return total;
}

Cycles
MemSystem::readPhys(CoreId core, PAddr paddr, void *dst, uint64_t len)
{
    uint64_t miss0 = l1(core).misses.value();
    Cycles c = l1(core).access(paddr, len, false);
    c += issueCost(len);
    attr.access(c.value(), l1(core).misses.value() != miss0);
    physMem.read(paddr, dst, len);
    return c;
}

Cycles
MemSystem::writePhys(CoreId core, PAddr paddr, const void *src,
                     uint64_t len)
{
    uint64_t miss0 = l1(core).misses.value();
    Cycles c = l1(core).access(paddr, len, true);
    c += issueCost(len);
    attr.access(c.value(), l1(core).misses.value() != miss0);
    physMem.write(paddr, src, len);
    return c;
}

} // namespace xpc::mem
