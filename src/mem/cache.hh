/**
 * @file
 * Timing-only write-back cache hierarchy.
 *
 * Functional data lives exclusively in PhysMem; caches track tags,
 * dirtiness and LRU order so the latency of a physical access depends
 * on real reuse in the workload. Each core owns a private L1D; all
 * cores share an L2 that misses to a flat-latency DRAM model. The
 * hierarchy is built by MemSystem from a MachineConfig.
 */

#ifndef XPC_MEM_CACHE_HH
#define XPC_MEM_CACHE_HH

#include <cstdint>
#include <vector>

#include "sim/stats.hh"
#include "sim/types.hh"

namespace xpc::mem {

/** Geometry and latency of one cache level. */
struct CacheParams
{
    uint64_t sizeBytes;
    uint32_t lineBytes;
    uint32_t assoc;
    Cycles hitLatency;
};

/**
 * One level of a timing cache. When @c next is null, a miss is
 * serviced by DRAM at @c memLatency.
 */
class Cache
{
  public:
    /**
     * @param params     geometry and hit latency
     * @param next       next cache level, or nullptr for DRAM-backed
     * @param mem_latency DRAM access latency used when next is null
     */
    Cache(const CacheParams &params, Cache *next, Cycles mem_latency);

    /**
     * Access [@p paddr, @p paddr + @p len). Touches every line in the
     * range; each line hit charges the hit latency, each miss
     * additionally charges the fill from below plus any dirty
     * writeback.
     * @return total cycles for the access.
     */
    Cycles access(PAddr paddr, uint64_t len, bool is_write);

    /** Invalidate everything without writeback (timing state only). */
    void invalidateAll();

    uint32_t lineSize() const { return params.lineBytes; }

    Counter hits;
    Counter misses;
    Counter writebacks;

    /** Registry node; the owner names it and attaches it to a parent. */
    StatGroup stats{"cache"};

  private:
    struct Line
    {
        bool valid = false;
        bool dirty = false;
        uint64_t tag = 0;
        uint64_t lruStamp = 0;
    };

    CacheParams params;
    Cache *next;
    Cycles memLatency;
    uint32_t numSets;
    uint64_t clock = 0;
    std::vector<Line> lines;

    Cycles accessLine(uint64_t line_addr, bool is_write);
};

} // namespace xpc::mem

#endif // XPC_MEM_CACHE_HH
