#include "page_table.hh"

#include "sim/logging.hh"

namespace xpc::mem {

PageTable::PageTable(PhysMem &p, PhysAllocator &a) : phys(p), alloc(a)
{
    rootFrame = newNode();
}

PageTable::~PageTable()
{
    for (PAddr frame : ownedFrames)
        alloc.freeFrames(frame, 1);
}

PAddr
PageTable::newNode()
{
    PAddr frame = alloc.allocFrames(1);
    panic_if(frame == 0, "out of physical memory for page-table nodes");
    phys.clear(frame, pageSize);
    ownedFrames.push_back(frame);
    return frame;
}

int
PageTable::vpn(VAddr vaddr, int level)
{
    // level 2 is the root: bits [38:30]; level 0 is the leaf: [20:12].
    return int((vaddr >> (pageShift + levelBits * level)) &
               (levelEntries - 1));
}

uint64_t
PageTable::makePte(PAddr paddr, Perms perms)
{
    uint64_t pte = pteValid | ((paddr >> pageShift) << ptePpnShift);
    if (perms.read)
        pte |= pteRead;
    if (perms.write)
        pte |= pteWrite;
    if (perms.exec)
        pte |= pteExec;
    if (perms.user)
        pte |= pteUser;
    return pte;
}

Perms
PageTable::ptePerms(uint64_t pte)
{
    return Perms{(pte & pteRead) != 0, (pte & pteWrite) != 0,
                 (pte & pteExec) != 0, (pte & pteUser) != 0};
}

void
PageTable::map(VAddr vaddr, PAddr paddr, Perms perms)
{
    panic_if(!pageAligned(vaddr) || !pageAligned(paddr),
             "map requires page-aligned addresses (%#lx -> %#lx)",
             (unsigned long)vaddr, (unsigned long)paddr);
    panic_if(vaddr >= (uint64_t(1) << 39),
             "virtual address %#lx beyond Sv39", (unsigned long)vaddr);

    PAddr node = rootFrame;
    for (int level = 2; level > 0; level--) {
        PAddr slot = node + uint64_t(vpn(vaddr, level)) * 8;
        uint64_t pte = phys.read64(slot);
        if (!(pte & pteValid)) {
            PAddr child = newNode();
            pte = pteValid | ((child >> pageShift) << ptePpnShift);
            phys.write64(slot, pte);
        }
        node = (pte >> ptePpnShift) << pageShift;
    }
    PAddr leaf_slot = node + uint64_t(vpn(vaddr, 0)) * 8;
    if (!(phys.read64(leaf_slot) & pteValid))
        mappedCount++;
    phys.write64(leaf_slot, makePte(paddr, perms));
}

bool
PageTable::unmap(VAddr vaddr)
{
    PAddr node = rootFrame;
    for (int level = 2; level > 0; level--) {
        uint64_t pte = phys.read64(node + uint64_t(vpn(vaddr, level)) * 8);
        if (!(pte & pteValid))
            return false;
        node = (pte >> ptePpnShift) << pageShift;
    }
    PAddr leaf_slot = node + uint64_t(vpn(vaddr, 0)) * 8;
    uint64_t pte = phys.read64(leaf_slot);
    if (!(pte & pteValid))
        return false;
    phys.write64(leaf_slot, 0);
    mappedCount--;
    return true;
}

WalkResult
PageTable::walk(VAddr vaddr) const
{
    WalkResult res;
    if (vaddr >= (uint64_t(1) << 39))
        return res;

    PAddr node = rootFrame;
    for (int level = 2; level >= 0; level--) {
        PAddr slot = node + uint64_t(vpn(vaddr, level)) * 8;
        res.pteAddrs[res.levels++] = slot;
        uint64_t pte = phys.read64(slot);
        if (!(pte & pteValid))
            return res;
        if (level == 0) {
            res.valid = true;
            res.perms = ptePerms(pte);
            res.paddr = ((pte >> ptePpnShift) << pageShift) |
                        (vaddr & pageMask);
            return res;
        }
        node = (pte >> ptePpnShift) << pageShift;
    }
    return res;
}

bool
PageTable::anyMappingIn(VAddr vaddr, uint64_t len) const
{
    for (VAddr va = pageAlignDown(vaddr); va < vaddr + len;
         va += pageSize) {
        if (walk(va).valid)
            return true;
    }
    return false;
}

void
PageTable::zapRoot()
{
    phys.clear(rootFrame, pageSize);
    // Leaf counts refer to reachable mappings; nothing is reachable now.
    mappedCount = 0;
}

} // namespace xpc::mem
