#include "tlb.hh"

#include "sim/logging.hh"

namespace xpc::mem {

Tlb::Tlb(uint32_t entries, uint32_t a, bool t)
    : numSets(entries / a), assoc(a), isTagged(t),
      entriesVec(entries)
{
    panic_if(entries == 0 || a == 0 || entries % a != 0,
             "bad TLB geometry: %u entries, %u ways", entries, a);
    panic_if((numSets & (numSets - 1)) != 0,
             "TLB set count must be a power of two, got %u", numSets);
    stats.addCounter("hits", &hits);
    stats.addCounter("misses", &misses);
    stats.addCounter("flushes", &flushes);
}

TlbEntry *
Tlb::set(uint64_t vpn)
{
    return &entriesVec[(vpn & (numSets - 1)) * assoc];
}

const TlbEntry *
Tlb::lookup(Asid asid, VAddr vaddr)
{
    uint64_t vpn = vaddr >> pageShift;
    TlbEntry *ways = set(vpn);
    for (uint32_t i = 0; i < assoc; i++) {
        TlbEntry &e = ways[i];
        // The ASID is always compared: on untagged hardware the
        // kernel flushes on every space switch, so a mismatched entry
        // could never be observed; comparing here keeps the
        // functional model correct even mid-copy between spaces.
        if (e.valid && e.vpn == vpn && e.asid == asid) {
            e.lruStamp = ++clock;
            hits.inc();
            return &e;
        }
    }
    misses.inc();
    return nullptr;
}

void
Tlb::insert(Asid asid, VAddr vaddr, PAddr paddr, Perms perms)
{
    uint64_t vpn = vaddr >> pageShift;
    TlbEntry *ways = set(vpn);
    // Refill of an already-present translation updates in place so a
    // set never holds two entries for one (asid, vpn).
    for (uint32_t i = 0; i < assoc; i++) {
        TlbEntry &e = ways[i];
        if (e.valid && e.vpn == vpn && e.asid == asid) {
            e.ppn = paddr >> pageShift;
            e.perms = perms;
            e.lruStamp = ++clock;
            return;
        }
    }
    TlbEntry *victim = &ways[0];
    for (uint32_t i = 0; i < assoc; i++) {
        TlbEntry &e = ways[i];
        if (!e.valid) {
            victim = &e;
            break;
        }
        if (e.lruStamp < victim->lruStamp)
            victim = &e;
    }
    *victim = TlbEntry{true, asid, vpn, paddr >> pageShift, perms,
                       ++clock};
}

void
Tlb::flushAll()
{
    for (auto &e : entriesVec)
        e.valid = false;
    flushes.inc();
}

void
Tlb::flushAsid(Asid asid)
{
    for (auto &e : entriesVec) {
        if (e.valid && e.asid == asid)
            e.valid = false;
    }
    flushes.inc();
}

void
Tlb::flushPage(Asid asid, VAddr vaddr)
{
    uint64_t vpn = vaddr >> pageShift;
    TlbEntry *ways = set(vpn);
    for (uint32_t i = 0; i < assoc; i++) {
        TlbEntry &e = ways[i];
        if (e.valid && e.vpn == vpn && e.asid == asid)
            e.valid = false;
    }
}

} // namespace xpc::mem
