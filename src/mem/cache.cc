#include "cache.hh"

#include "sim/logging.hh"

namespace xpc::mem {

Cache::Cache(const CacheParams &p, Cache *n, Cycles mem_latency)
    : params(p), next(n), memLatency(mem_latency)
{
    panic_if(p.lineBytes == 0 || (p.lineBytes & (p.lineBytes - 1)) != 0,
             "cache line size must be a power of two");
    uint64_t total_lines = p.sizeBytes / p.lineBytes;
    panic_if(p.assoc == 0 || total_lines % p.assoc != 0,
             "bad cache geometry");
    numSets = uint32_t(total_lines / p.assoc);
    panic_if((numSets & (numSets - 1)) != 0,
             "cache set count must be a power of two, got %u", numSets);
    lines.resize(total_lines);
    stats.addCounter("hits", &hits);
    stats.addCounter("misses", &misses);
    stats.addCounter("writebacks", &writebacks);
}

Cycles
Cache::accessLine(uint64_t line_addr, bool is_write)
{
    uint64_t line_num = line_addr / params.lineBytes;
    uint64_t set_idx = line_num & (numSets - 1);
    uint64_t tag = line_num / numSets;
    Line *ways = &lines[set_idx * params.assoc];

    for (uint32_t i = 0; i < params.assoc; i++) {
        Line &l = ways[i];
        if (l.valid && l.tag == tag) {
            hits.inc();
            l.lruStamp = ++clock;
            l.dirty |= is_write;
            return params.hitLatency;
        }
    }

    // Miss: pick an LRU victim, write it back if dirty, fill.
    misses.inc();
    Line *victim = &ways[0];
    for (uint32_t i = 0; i < params.assoc; i++) {
        Line &l = ways[i];
        if (!l.valid) {
            victim = &l;
            break;
        }
        if (l.lruStamp < victim->lruStamp)
            victim = &l;
    }

    Cycles cost = params.hitLatency;
    if (victim->valid && victim->dirty) {
        writebacks.inc();
        uint64_t victim_addr =
            (victim->tag * numSets + set_idx) * params.lineBytes;
        cost += next ? next->access(victim_addr, params.lineBytes, true)
                     : memLatency;
    }
    cost += next ? next->access(line_addr, params.lineBytes, false)
                 : memLatency;

    *victim = Line{true, is_write, tag, ++clock};
    return cost;
}

Cycles
Cache::access(PAddr paddr, uint64_t len, bool is_write)
{
    if (len == 0)
        return Cycles(0);
    uint64_t first = paddr / params.lineBytes;
    uint64_t last = (paddr + len - 1) / params.lineBytes;
    Cycles total(0);
    for (uint64_t line = first; line <= last; line++)
        total += accessLine(line * params.lineBytes, is_write);
    return total;
}

void
Cache::invalidateAll()
{
    for (auto &l : lines)
        l = Line{};
}

} // namespace xpc::mem
