/**
 * @file
 * Sv39-style three-level radix page table stored in simulated memory.
 *
 * The table's nodes live in simulated physical frames, so a page walk
 * is genuine pointer chasing through PhysMem; MemSystem charges the
 * walk's PTE fetches through the cache hierarchy using the addresses
 * reported in WalkResult.
 */

#ifndef XPC_MEM_PAGE_TABLE_HH
#define XPC_MEM_PAGE_TABLE_HH

#include <array>
#include <cstdint>

#include "mem/phys_mem.hh"
#include "sim/types.hh"

namespace xpc::mem {

/** Page permission bits, stored in PTE bits [1..4]. */
struct Perms
{
    bool read = false;
    bool write = false;
    bool exec = false;
    bool user = false;

    bool
    allows(const Perms &req) const
    {
        return (!req.read || read) && (!req.write || write) &&
               (!req.exec || exec) && (!req.user || user);
    }

    bool operator==(const Perms &) const = default;
};

/** Canonical permission shorthands. */
constexpr Perms permsRW{true, true, false, true};
constexpr Perms permsRO{true, false, false, true};
constexpr Perms permsRX{true, false, true, true};
constexpr Perms permsKernelRW{true, true, false, false};

/** Outcome of a page walk, including the PTE fetches it performed. */
struct WalkResult
{
    bool valid = false;
    PAddr paddr = 0;
    Perms perms;
    /** Physical addresses of the PTEs read, for timing charges. */
    std::array<PAddr, 3> pteAddrs{};
    int levels = 0;
};

/**
 * A three-level radix tree translating 39-bit virtual addresses.
 *
 * Each address space owns one PageTable. Node frames come from the
 * machine's PhysAllocator, so table memory is visible in DRAM usage
 * like on real hardware.
 */
class PageTable
{
  public:
    PageTable(PhysMem &phys, PhysAllocator &alloc);
    ~PageTable();

    PageTable(const PageTable &) = delete;
    PageTable &operator=(const PageTable &) = delete;

    /** Physical address of the root node (the "page table pointer"). */
    PAddr root() const { return rootFrame; }

    /**
     * Establish the translation @p vaddr -> @p paddr for one page.
     * Both addresses must be page aligned. Remapping an existing page
     * updates it in place.
     */
    void map(VAddr vaddr, PAddr paddr, Perms perms);

    /** Remove the translation for @p vaddr. @return true if present. */
    bool unmap(VAddr vaddr);

    /** Walk the tree for @p vaddr, reading PTEs from simulated DRAM. */
    WalkResult walk(VAddr vaddr) const;

    /** True when some page is mapped in [vaddr, vaddr+len). */
    bool anyMappingIn(VAddr vaddr, uint64_t len) const;

    /**
     * Invalidate the root node, as the kernel does to a dying process
     * so stale xret targets fault (paper section 4.2). All subsequent
     * walks fail until the table is rebuilt.
     */
    void zapRoot();

    /** Number of mapped pages (bookkeeping, not simulated state). */
    uint64_t mappedPages() const { return mappedCount; }

  private:
    static constexpr int levelBits = 9;
    static constexpr int levelEntries = 1 << levelBits;

    static constexpr uint64_t pteValid = 1;
    static constexpr uint64_t pteRead = 1 << 1;
    static constexpr uint64_t pteWrite = 1 << 2;
    static constexpr uint64_t pteExec = 1 << 3;
    static constexpr uint64_t pteUser = 1 << 4;
    static constexpr int ptePpnShift = 10;

    PhysMem &phys;
    PhysAllocator &alloc;
    PAddr rootFrame;
    uint64_t mappedCount = 0;
    std::vector<PAddr> ownedFrames;

    static int vpn(VAddr vaddr, int level);
    PAddr newNode();
    static uint64_t makePte(PAddr paddr, Perms perms);
    static Perms ptePerms(uint64_t pte);
};

} // namespace xpc::mem

#endif // XPC_MEM_PAGE_TABLE_HH
