/**
 * @file
 * The memory-system front end: translation plus timing plus data.
 *
 * Every simulated byte moved by kernels, the XPC engine, services and
 * applications flows through MemSystem, which
 *   1. translates virtual addresses via the relay-seg window (if one
 *      is active - it has priority over the page table, paper 3.3),
 *      the TLB, and the page walker;
 *   2. charges cycles through the per-core L1 / shared L2 / DRAM
 *      hierarchy plus an in-order issue cost per word; and
 *   3. performs the functional copy against PhysMem.
 */

#ifndef XPC_MEM_MEM_SYSTEM_HH
#define XPC_MEM_MEM_SYSTEM_HH

#include <memory>
#include <optional>
#include <vector>

#include "mem/cache.hh"
#include "mem/page_table.hh"
#include "mem/phys_mem.hh"
#include "mem/tlb.hh"
#include "sim/phase.hh"
#include "sim/types.hh"

namespace xpc {
class FaultInjector;
}

namespace xpc::mem {

/** Memory-hierarchy parameters (one half of a MachineConfig). */
struct MemParams
{
    CacheParams l1d;
    CacheParams l2;
    Cycles dramLatency;
    uint32_t tlbEntries;
    uint32_t tlbAssoc;
    bool taggedTlb;
    /** Page-walk fixed overhead on top of the PTE fetches. */
    Cycles walkOverhead;
    /** In-order issue cost charged per machine word moved. */
    Cycles perWordIssue;
    /** Bytes moved per issued word (8 on Rocket; 16 on the ARM HPI
     *  model, whose copies use 128-bit NEON accesses). */
    uint32_t wordBytes = 8;
};

/**
 * The active relay-seg mapping, as seen by the address-translation
 * path. Owned and updated by the XPC engine; consulted before the
 * page table on every user access.
 */
struct SegWindow
{
    bool valid = false;
    VAddr vaBase = 0;
    PAddr paBase = 0;
    uint64_t len = 0;
    bool read = false;
    bool write = false;

    /** @return physical address if @p vaddr falls inside the window. */
    std::optional<PAddr>
    translate(VAddr vaddr) const
    {
        if (!valid || vaddr < vaBase || vaddr >= vaBase + len)
            return std::nullopt;
        return paBase + (vaddr - vaBase);
    }

    bool
    covers(VAddr vaddr, uint64_t n) const
    {
        return valid && vaddr >= vaBase && n <= len &&
               vaddr + n <= vaBase + len;
    }
};

/** Why a virtual access failed. */
enum class FaultKind
{
    None,
    PageFault,
    ProtectionFault,
    SegPermissionFault,
    /** Fault injected by a chaos plan (sim/fault_injector.hh). */
    Injected,
};

/** Result of a timed virtual access. */
struct AccessResult
{
    bool ok = false;
    Cycles cycles;
    FaultKind fault = FaultKind::None;
    VAddr faultAddr = 0;
};

/**
 * The relay page table of paper section 6.2: a dual page table the
 * walker selects by VA range, lifting relay-seg's contiguity
 * restriction at the cost of page-granularity ownership and a
 * per-page walk. Entries are TLB-cached under their own ASID.
 */
struct RelayPtWindow
{
    bool valid = false;
    VAddr vaBase = 0;
    uint64_t len = 0;
    const PageTable *pt = nullptr;
    /** Dedicated ASID so tagged TLBs cache relay translations
     *  separately from the process's own. */
    Asid asid = 0;

    bool
    covers(VAddr vaddr) const
    {
        return valid && vaddr >= vaBase && vaddr < vaBase + len;
    }
};

/** Translation context: which address space, which relay window. */
struct TransContext
{
    const PageTable *pt = nullptr;
    Asid asid = 0;
    const SegWindow *seg = nullptr;
    /** Optional dual page table (experimental relay-pt mode). */
    const RelayPtWindow *relayPt = nullptr;
    bool user = true;
};

/**
 * Memory-hierarchy attribution by call phase: every charged access is
 * also credited to whatever Phase was active when it happened (via
 * req::RequestContext), so benches and the critical-path profiler can
 * answer "how many of this phase's cycles were TLB walks?". Accesses
 * outside any phase land in the trailing "unattributed" row. Purely
 * observational - it never adds cycles.
 */
class MemAttribution
{
  public:
    /** One phase's share of the memory traffic. */
    struct Row
    {
        Counter accesses;      ///< charged data accesses
        Counter cycles;        ///< data-movement cycles (incl. issue)
        Counter l1Misses;      ///< accesses that missed L1
        Counter tlbWalks;      ///< page walks triggered
        Counter walkCycles;    ///< cycles spent inside those walks
    };

    explicit MemAttribution(StatGroup *parent);

    /** Credit a charged data access to the active phase. */
    void
    access(uint64_t cycles, bool l1_missed)
    {
        Row &r = active();
        r.accesses.inc();
        r.cycles.inc(cycles);
        if (l1_missed)
            r.l1Misses.inc();
    }

    /** Credit a TLB-miss page walk to the active phase. */
    void
    walk(uint64_t cycles)
    {
        Row &r = active();
        r.tlbWalks.inc();
        r.walkCycles.inc(cycles);
    }

    /** The row for phase @p i (0..phaseCount-1). */
    const Row &row(uint32_t i) const { return rows[i]; }
    /** Traffic that happened outside any phase scope. */
    const Row &unattributed() const { return rows[phaseCount]; }

    StatGroup &statGroup() { return group; }

  private:
    Row &
    active()
    {
        uint32_t p = req::RequestContext::global().currentPhase();
        return rows[p < phaseCount ? p : phaseCount];
    }

    StatGroup group{"attr"};
    Row rows[phaseCount + 1];
};

/** Per-machine memory system: per-core L1D + TLB, shared L2, DRAM. */
class MemSystem
{
  public:
    MemSystem(PhysMem &phys, const MemParams &params, uint32_t ncores);

    /** Timed virtual read of @p len bytes into @p dst. */
    AccessResult read(CoreId core, const TransContext &ctx, VAddr vaddr,
                      void *dst, uint64_t len);

    /** Timed virtual write of @p len bytes from @p src. */
    AccessResult write(CoreId core, const TransContext &ctx, VAddr vaddr,
                       const void *src, uint64_t len);

    /**
     * Timed virtual-to-virtual copy (the cost of a kernel or user
     * memcpy between two address spaces).
     */
    AccessResult copy(CoreId core, const TransContext &src_ctx,
                      VAddr src, const TransContext &dst_ctx, VAddr dst,
                      uint64_t len);

    /** Timed physical read (kernel and XPC-engine structures). */
    Cycles readPhys(CoreId core, PAddr paddr, void *dst, uint64_t len);

    /** Timed physical write. */
    Cycles writePhys(CoreId core, PAddr paddr, const void *src,
                     uint64_t len);

    /**
     * Translate only (no data movement): used for permission probes.
     * Charges TLB-miss walk cycles if a walk happens.
     */
    AccessResult translate(CoreId core, const TransContext &ctx,
                           VAddr vaddr, bool is_write, PAddr *out);

    Tlb &tlb(CoreId core) { return *tlbs[core]; }
    Cache &l1(CoreId core) { return *l1ds[core]; }
    Cache &l2Cache() { return *l2; }
    PhysMem &phys() { return physMem; }
    const MemParams &params() const { return memParams; }

    /** Flush one core's TLB (untagged address-space switch). */
    void flushTlb(CoreId core) { tlbs[core]->flushAll(); }

    /**
     * Attach a fault injector: while one is set and has an armed
     * memory fault, the next virtual access consumes it and fails
     * with FaultKind::Injected instead of moving data.
     */
    void setFaultInjector(FaultInjector *inj) { injector = inj; }
    FaultInjector *faultInjector() const { return injector; }

    /** Registry node covering the TLBs and the cache hierarchy. */
    StatGroup stats{"mem"};
    /** Per-phase attribution of the traffic above ("mem.attr"). */
    MemAttribution attr{&stats};

  private:
    PhysMem &physMem;
    MemParams memParams;
    FaultInjector *injector = nullptr;
    std::unique_ptr<Cache> l2;
    std::vector<std::unique_ptr<Cache>> l1ds;
    std::vector<std::unique_ptr<Tlb>> tlbs;

    Cycles issueCost(uint64_t len) const;
};

} // namespace xpc::mem

#endif // XPC_MEM_MEM_SYSTEM_HH
