/**
 * @file
 * Low-overhead event tracing keyed by simulated cycles.
 *
 * The Tracer records begin/end spans, instants, counter samples and
 * causal flow events into a fixed-capacity ring buffer (oldest events
 * are overwritten) and exports them as Chrome/Perfetto `trace_event`
 * JSON, with one simulated cycle mapped to one microsecond of trace
 * time. Every record call is guarded by a single inline enabled()
 * check, so the tracer costs one predictable branch when off; it is
 * off by default and turned on either programmatically or by setting
 * XPC_TRACE=1 in the environment. Building with -DXPC_TRACING_DISABLED
 * compiles the guard to a constant false and dead-codes every probe.
 *
 * Timestamps are *simulated* cycles supplied by the caller (usually
 * hw::Core::now()), so tracing never perturbs measured latencies:
 * recording an event does not spend core cycles.
 *
 * Ring slots are trivially copyable: dynamic payloads (log record
 * text) live in a small side ring of strings referenced by index, so
 * the span/instant fast path never allocates. Every event is stamped
 * with the active request id and phase (sim/request.hh), which is
 * what ties a span on the file server's lane to the client request
 * that caused it.
 */

#ifndef XPC_SIM_TRACE_HH
#define XPC_SIM_TRACE_HH

#include <array>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <type_traits>
#include <vector>

#include "sim/request.hh"
#include "sim/types.hh"

namespace xpc::trace {

/** Chrome trace_event phase of one record. */
enum class EventKind : uint8_t
{
    Begin,     ///< "B": span opens
    End,       ///< "E": span closes
    Instant,   ///< "i": point event
    Counter,   ///< "C": sampled counter value
    FlowStart, ///< "s": a causal flow arc begins here
    FlowStep,  ///< "t": the flow passes through this slice
    FlowEnd,   ///< "f": the flow terminates here
};

/** One recorded event. cat/name must be string literals (or other
 *  static-lifetime strings): the tracer stores the pointers only. */
struct TraceEvent
{
    uint64_t ts = 0;  ///< simulated cycles
    uint64_t arg = 0; ///< counter value / flow id / payload cycles
    const char *cat = "";
    const char *name = "";
    /** Request bound when the event was recorded (0 = none). */
    uint64_t req = 0;
    uint32_t tid = 0; ///< lane: core id, or req::threadLane(thread)
    /** Phase bound when recorded (req::phaseNone = none). */
    uint32_t phase = req::phaseNone;
    /** 1-based sequence into the text side ring (0 = no text). */
    uint32_t textRef = 0;
    EventKind kind = EventKind::Instant;
};

// The ring assignment must never allocate (satellite: no std::string
// in the hot slot; log text goes through the side ring instead).
static_assert(std::is_trivially_copyable_v<TraceEvent>,
              "TraceEvent must stay trivially copyable: the span fast "
              "path may not allocate");

/** Ring-buffer tracer; one global instance per process. */
class Tracer
{
  public:
#ifdef XPC_TRACING_DISABLED
    static constexpr bool compiledIn = false;
#else
    static constexpr bool compiledIn = true;
#endif

    /** Capacity of the text side ring (log payloads retained). */
    static constexpr size_t textCapacity = 1024;

    /** The process-wide tracer. First use reads XPC_TRACE ("0" or
     *  unset = disabled) and XPC_TRACE_BUF (capacity in events). */
    static Tracer &global();

    bool enabled() const { return compiledIn && on; }
    void setEnabled(bool e) { on = e; }

    /** Resize the ring buffer; drops everything recorded so far. */
    void setCapacity(size_t events);
    size_t capacity() const { return cap; }

    /** Drop all recorded events (capacity and track names kept). */
    void clear();

    void begin(const char *cat, const char *name, uint64_t ts,
               uint32_t tid);
    void end(const char *cat, const char *name, uint64_t ts,
             uint32_t tid);
    void instant(const char *cat, const char *name, uint64_t ts,
                 uint32_t tid, std::string text = {});
    void counter(const char *cat, const char *name, uint64_t value,
                 uint64_t ts, uint32_t tid);

    /**
     * Causal flow event: the "s"/"t"/"f" arc that Perfetto draws
     * across lanes. Events with the same (cat, name, flow_id) chain
     * into one arc, each binding to the slice enclosing @p ts on its
     * lane. @p kind must be FlowStart, FlowStep or FlowEnd.
     */
    void flow(EventKind kind, const char *cat, const char *name,
              uint64_t flow_id, uint64_t ts, uint32_t tid);

    /**
     * Instant stamped with the last timestamp seen on @p tid: used by
     * layers that observe an event but do not own a cycle clock (the
     * memory system, the log sinks, the fault injector). @p arg
     * carries an optional payload (e.g. miss-fill cycles), exported
     * as args.v.
     */
    void instantNow(const char *cat, const char *name, uint32_t tid,
                    std::string text = {}, uint64_t arg = 0);

    /** Most recent timestamp recorded for @p tid (0 if none). */
    uint64_t lastTime(uint32_t tid) const;

    /** Total events ever recorded (including overwritten ones). */
    uint64_t recordedCount() const { return nrec; }
    /** Events lost to ring-buffer wraparound. */
    uint64_t droppedCount() const;
    /** Events currently held. */
    size_t size() const;

    /** Snapshot of the retained events, oldest first. */
    std::vector<TraceEvent> events() const;

    /**
     * Resolve an event's dynamic text from the side ring. Returns ""
     * when the event carries none or the slot has since been
     * overwritten (the side ring wraps independently).
     */
    const std::string &textOf(const TraceEvent &ev) const;

    /**
     * Name a lane for the export (Perfetto thread_name metadata).
     * Wiring-time registration; survives clear() and works while
     * tracing is disabled so lanes named during setup still label a
     * later trace.
     */
    void setTrackName(uint32_t tid, std::string name);
    const std::map<uint32_t, std::string> &trackNames() const
    {
        return laneNames;
    }

    /** Write Chrome trace_event JSON ({"traceEvents": [...]}). */
    void exportChromeJson(std::ostream &os) const;
    /** Same, to a file. @return false if the file could not open. */
    bool exportChromeJson(const std::string &path) const;

  private:
    Tracer();

    void push(TraceEvent &ev);

    bool on = false;
    size_t cap = 1 << 16;
    std::vector<TraceEvent> ring;
    uint64_t nrec = 0;
    std::array<uint64_t, 256> lastTs{};
    /** Side ring for dynamic payloads; texts[i % textCapacity]. */
    std::vector<std::string> texts;
    uint64_t ntext = 0;
    std::map<uint32_t, std::string> laneNames;
};

/**
 * RAII begin/end span charged to a core's simulated clock. CoreT only
 * needs now().value() and id(), so tests can use a stub clock.
 */
template <typename CoreT>
class Span
{
  public:
    Span(CoreT &core, const char *cat, const char *name)
        : coreRef(core), category(cat), label(name)
    {
        Tracer &t = Tracer::global();
        if (t.enabled()) {
            active = true;
            t.begin(category, label, coreRef.now().value(),
                    coreRef.id());
        }
    }

    ~Span()
    {
        if (active)
            Tracer::global().end(category, label,
                                 coreRef.now().value(), coreRef.id());
    }

    Span(const Span &) = delete;
    Span &operator=(const Span &) = delete;

  private:
    CoreT &coreRef;
    const char *category;
    const char *label;
    bool active = false;
};

} // namespace xpc::trace

#endif // XPC_SIM_TRACE_HH
