/**
 * @file
 * Error and status reporting in the gem5 idiom.
 *
 * panic()  - a simulator invariant is broken (our bug); aborts.
 * fatal()  - the user asked for something impossible; exits cleanly.
 * warn()   - something is approximated but probably fine.
 * inform() - plain status output.
 */

#ifndef XPC_SIM_LOGGING_HH
#define XPC_SIM_LOGGING_HH

#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>

namespace xpc {

/** Severity attached to each log record. */
enum class LogLevel { Panic, Fatal, Warn, Inform };

/** @return a printable name for @p level. */
const char *logLevelName(LogLevel level);

/**
 * Pluggable destination for log records. Every record flows through
 * the installed sink: the default writes to stdio exactly as before,
 * tests install a capturing sink, and the tracer (when enabled)
 * additionally interleaves each record into the event stream as a
 * trace instant. panic/fatal still terminate after the sink runs.
 */
using LogSink = std::function<void(LogLevel, const std::string &)>;

/** Install @p sink as the log destination; empty restores stdio. */
void setLogSink(LogSink sink);

namespace detail {

[[noreturn]] void logPanic(const char *file, int line, std::string msg);
[[noreturn]] void logFatal(const char *file, int line, std::string msg);
void logWarn(std::string msg);
void logInform(std::string msg);

std::string logFormat(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

} // namespace detail

/** Suppress warn()/inform() output (used by tests and benches). */
void setLogQuiet(bool quiet);

/** @return true when warn()/inform() output is suppressed. */
bool logQuiet();

#define panic(...)                                                          \
    ::xpc::detail::logPanic(__FILE__, __LINE__,                             \
                            ::xpc::detail::logFormat(__VA_ARGS__))

#define fatal(...)                                                          \
    ::xpc::detail::logFatal(__FILE__, __LINE__,                             \
                            ::xpc::detail::logFormat(__VA_ARGS__))

#define warn(...)                                                           \
    ::xpc::detail::logWarn(::xpc::detail::logFormat(__VA_ARGS__))

#define inform(...)                                                         \
    ::xpc::detail::logInform(::xpc::detail::logFormat(__VA_ARGS__))

/** panic() unless @p cond holds. */
#define panic_if(cond, ...)                                                 \
    do {                                                                    \
        if (cond) {                                                         \
            panic(__VA_ARGS__);                                             \
        }                                                                   \
    } while (0)

#define fatal_if(cond, ...)                                                 \
    do {                                                                    \
        if (cond) {                                                         \
            fatal(__VA_ARGS__);                                             \
        }                                                                   \
    } while (0)

} // namespace xpc

#endif // XPC_SIM_LOGGING_HH
