/**
 * @file
 * Deterministic pseudo-random sources for workload generation.
 *
 * Simulation results must be reproducible run-to-run, so all randomness
 * flows through an explicitly seeded xoshiro256** generator; nothing in
 * the tree touches std::random_device or global state.
 */

#ifndef XPC_SIM_RANDOM_HH
#define XPC_SIM_RANDOM_HH

#include <cstdint>

namespace xpc {

/** xoshiro256** PRNG: fast, high quality, fully deterministic. */
class Rng
{
  public:
    /** Seed via splitmix64 expansion of @p seed. */
    explicit Rng(uint64_t seed = 0x5eed5eed5eedULL);

    /** @return the next raw 64-bit value. */
    uint64_t next();

    /** @return a uniform value in [0, bound). @p bound must be > 0. */
    uint64_t nextBounded(uint64_t bound);

    /** @return a uniform double in [0, 1). */
    double nextDouble();

  private:
    uint64_t state[4];
};

/**
 * Zipfian key-popularity generator as used by YCSB.
 *
 * Produces values in [0, items) where rank-0 items are requested far
 * more often than the tail, with the standard YCSB skew of 0.99.
 */
class Zipfian
{
  public:
    Zipfian(uint64_t items, double theta = 0.99, uint64_t seed = 42);

    /** @return the next Zipf-distributed item index. */
    uint64_t next();

    uint64_t itemCount() const { return items; }

  private:
    uint64_t items;
    double theta;
    double zetan;
    double alpha;
    double eta;
    Rng rng;

    static double zeta(uint64_t n, double theta);
};

} // namespace xpc

#endif // XPC_SIM_RANDOM_HH
