/**
 * @file
 * The paper's phase taxonomy and the RAII probes that attribute
 * simulated cycles to it.
 *
 * Table 1 decomposes a seL4 one-way IPC into trap / IPC logic /
 * process switch / restore (+ message transfer); Figure 5 decomposes
 * an xcall into trampoline / xcall / TLB-and-other. PhaseStats holds
 * one Distribution per phase inside a StatGroup, so benches read the
 * breakdown from the registry instead of private accounting, and
 * PhaseTimer is the scoped probe that records a phase's cycles and
 * (when tracing is on) emits the matching begin/end span.
 */

#ifndef XPC_SIM_PHASE_HH
#define XPC_SIM_PHASE_HH

#include "sim/request.hh"
#include "sim/stats.hh"
#include "sim/trace.hh"
#include "sim/types.hh"

namespace xpc {

/** Where cycles of a cross-process call can go. */
enum class Phase : uint32_t
{
    // Table 1: the seL4 fast-path phases.
    Trap,
    IpcLogic,
    ProcessSwitch,
    Restore,
    Transfer,
    // Figure 5: the XPC call phases.
    Trampoline,
    Xcall,
    Handler,
    Xret,
    // End-to-end attributions.
    OneWay,
    RoundTrip,
};

constexpr uint32_t phaseCount = 11;

const char *phaseName(Phase phase);

/** Per-phase cycle distributions, registered as one StatGroup. */
class PhaseStats
{
  public:
    /** Build a group named @p name and attach it to @p parent. */
    explicit PhaseStats(const char *name = "phases",
                        StatGroup *parent = nullptr);

    StatGroup &statGroup() { return group; }

    void
    record(Phase phase, Cycles cycles)
    {
        uint32_t i = uint32_t(phase);
        perPhase[i].add(double(cycles.value()));
        lastVal[i] = cycles.value();
    }

    /** Cycles the most recent sample attributed to @p phase. */
    uint64_t last(Phase phase) const
    {
        return lastVal[uint32_t(phase)];
    }

    const Distribution &dist(Phase phase) const
    {
        return perPhase[uint32_t(phase)];
    }

    void reset();

  private:
    StatGroup group;
    Distribution perPhase[phaseCount];
    uint64_t lastVal[phaseCount] = {};
};

/**
 * Scoped phase probe: samples the core clock at construction, and at
 * stop() (or destruction) attributes the elapsed cycles to a phase
 * and closes the trace span it opened. Purely observational - it
 * never spends cycles itself.
 */
template <typename CoreT>
class PhaseTimer
{
  public:
    PhaseTimer(CoreT &core, PhaseStats &stats, Phase phase,
               const char *cat = "phase")
        : coreRef(core), phaseStats(stats), phase_(phase),
          category(cat), startTs(core.now())
    {
        // Bind the phase so memory traffic inside the probe is
        // attributed to it (sim/request.hh).
        req::RequestContext::global().pushPhase(uint32_t(phase_));
        trace::Tracer &t = trace::Tracer::global();
        if (t.enabled()) {
            traced = true;
            t.begin(category, phaseName(phase_), startTs.value(),
                    coreRef.id());
        }
    }

    ~PhaseTimer() { stop(); }

    PhaseTimer(const PhaseTimer &) = delete;
    PhaseTimer &operator=(const PhaseTimer &) = delete;

    /** Close the probe early. @return the attributed cycles. */
    Cycles
    stop()
    {
        if (!stopped) {
            stopped = true;
            req::RequestContext::global().popPhase();
            elapsed = coreRef.now() - startTs;
            phaseStats.record(phase_, elapsed);
            if (traced)
                trace::Tracer::global().end(category,
                                            phaseName(phase_),
                                            coreRef.now().value(),
                                            coreRef.id());
        }
        return elapsed;
    }

  private:
    CoreT &coreRef;
    PhaseStats &phaseStats;
    Phase phase_;
    const char *category;
    Cycles startTs;
    Cycles elapsed;
    bool traced = false;
    bool stopped = false;
};

} // namespace xpc

#endif // XPC_SIM_PHASE_HH
