/**
 * @file
 * Lightweight statistics: scalar counters, distributions and CDFs.
 *
 * Every architectural component owns its stats; benches read them to
 * regenerate the paper's tables and figures. The design mirrors gem5's
 * Stats package at a much smaller scale: stats are named, registerable
 * into a StatGroup, and resettable between experiment phases.
 *
 * StatGroups form a tree (system -> machine -> mem -> l1d0, ...);
 * each component owns its group and registers its counters and
 * distributions by name in its constructor. The root dumps the whole
 * hierarchy as one JSON or CSV document, and resetAll() clears every
 * stat below a node so experiments can measure phases independently.
 */

#ifndef XPC_SIM_STATS_HH
#define XPC_SIM_STATS_HH

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "sim/histogram.hh"

namespace xpc {

/** Monotonic scalar event counter. */
class Counter
{
  public:
    Counter() = default;

    void inc(uint64_t n = 1) { total += n; }
    void reset() { total = 0; }
    uint64_t value() const { return total; }

  private:
    uint64_t total = 0;
};

/**
 * Sample distribution with mean/min/max and quantile queries.
 *
 * Keeps all samples; experiments are short enough that exactness is
 * cheaper than bucketing bugs.
 *
 * Empty-distribution queries are defined: min/max/mean/quantile all
 * return NaN (never panic), so registry dumps and dashboards can
 * probe stats that happened not to fire. quantile(0) is the minimum
 * and quantile(1) the maximum; q outside [0, 1] is a caller bug and
 * panics.
 */
class Distribution
{
  public:
    void add(double sample);
    void reset();

    size_t count() const { return samples.size(); }
    double min() const;
    double max() const;
    double mean() const;
    double sum() const { return runningSum; }

    /**
     * @return the (linearly interpolated) q-quantile for q in [0, 1]:
     *         quantile(0) == min(), quantile(1) == max(), NaN when
     *         the distribution is empty.
     */
    double quantile(double q) const;

  private:
    mutable std::vector<double> samples;
    mutable bool sorted = false;
    double runningSum = 0;

    void ensureSorted() const;
};

/**
 * Weighted CDF over a small set of discrete categories, e.g. "IPC time
 * by message length" in the paper's Figure 1(b).
 */
class WeightedCdf
{
  public:
    /** Accumulate @p weight into the bucket keyed by @p key. */
    void add(uint64_t key, double weight);

    /** @return cumulative weight fraction at or below @p key. */
    double cumulativeAt(uint64_t key) const;

    /** @return total accumulated weight. */
    double totalWeight() const;

    /** @return the sorted (key, weight) pairs. */
    std::vector<std::pair<uint64_t, double>> points() const;

    void reset() { buckets.clear(); }

  private:
    std::map<uint64_t, double> buckets;
};

/**
 * One node of the hierarchical stat registry.
 *
 * A StatGroup does not own the stats it names: components keep their
 * Counter/Distribution members (the hot-path increment stays a bare
 * add) and register pointers here. Groups attach to a parent to form
 * the dump tree; a group detaches itself on destruction, and a dying
 * parent orphans its children, so component destruction order never
 * leaves dangling edges.
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string name, StatGroup *parent = nullptr);
    ~StatGroup();

    StatGroup(const StatGroup &) = delete;
    StatGroup &operator=(const StatGroup &) = delete;

    const std::string &name() const { return groupName; }
    void setName(std::string name) { groupName = std::move(name); }

    /** Re-parent this group (nullptr detaches). */
    void setParent(StatGroup *parent);
    StatGroup *parent() const { return parentGroup; }
    const std::vector<StatGroup *> &children() const { return kids; }

    /** Register @p c under @p name (pointer must outlive the group). */
    void addCounter(const std::string &name, Counter *c);
    void addDistribution(const std::string &name, Distribution *d);
    void addHistogram(const std::string &name, Histogram *h);

    /** Reset every registered stat in this subtree. */
    void resetAll();

    /** Find a registered counter by name (this group only). */
    const Counter *counter(const std::string &name) const;
    const Distribution *distribution(const std::string &name) const;
    const Histogram *histogram(const std::string &name) const;
    /** Find a direct child group by name. */
    const StatGroup *child(const std::string &name) const;

    /** Registered stats in registration order (exporters walk these). */
    const std::vector<std::pair<std::string, Counter *>> &
    counterEntries() const
    {
        return counters;
    }
    const std::vector<std::pair<std::string, Distribution *>> &
    distributionEntries() const
    {
        return dists;
    }
    const std::vector<std::pair<std::string, Histogram *>> &
    histogramEntries() const
    {
        return hists;
    }

    /**
     * Dump this subtree as one JSON object:
     * {"name": ..., "counters": {...}, "distributions": {...},
     *  "histograms": {...}, "children": [...]}. Distributions emit
     *  count, sum, mean, min/max and p50/p95/p99 (moments omitted
     *  when empty); histograms emit their one-line summary. The
     *  histograms section appears only when at least one histogram
     *  is registered, so groups that never use them dump exactly as
     *  before.
     */
    void dumpJson(std::ostream &os, int indent = 0) const;

    /** Dump as CSV rows "path,kind,stat,value" (one line per value). */
    void dumpCsv(std::ostream &os,
                 const std::string &prefix = "") const;

  private:
    std::string groupName;
    StatGroup *parentGroup = nullptr;
    std::vector<StatGroup *> kids;
    std::vector<std::pair<std::string, Counter *>> counters;
    std::vector<std::pair<std::string, Distribution *>> dists;
    std::vector<std::pair<std::string, Histogram *>> hists;
};

} // namespace xpc

#endif // XPC_SIM_STATS_HH
