/**
 * @file
 * Lightweight statistics: scalar counters, distributions and CDFs.
 *
 * Every architectural component owns its stats; benches read them to
 * regenerate the paper's tables and figures. The design mirrors gem5's
 * Stats package at a much smaller scale: stats are named, registerable
 * into a StatGroup, and resettable between experiment phases.
 */

#ifndef XPC_SIM_STATS_HH
#define XPC_SIM_STATS_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace xpc {

/** Monotonic scalar event counter. */
class Counter
{
  public:
    Counter() = default;

    void inc(uint64_t n = 1) { total += n; }
    void reset() { total = 0; }
    uint64_t value() const { return total; }

  private:
    uint64_t total = 0;
};

/**
 * Sample distribution with mean/min/max and quantile queries.
 *
 * Keeps all samples; experiments are short enough that exactness is
 * cheaper than bucketing bugs.
 */
class Distribution
{
  public:
    void add(double sample);
    void reset();

    size_t count() const { return samples.size(); }
    double min() const;
    double max() const;
    double mean() const;
    double sum() const { return runningSum; }

    /** @return the q-quantile for q in [0, 1]. */
    double quantile(double q) const;

  private:
    mutable std::vector<double> samples;
    mutable bool sorted = false;
    double runningSum = 0;

    void ensureSorted() const;
};

/**
 * Weighted CDF over a small set of discrete categories, e.g. "IPC time
 * by message length" in the paper's Figure 1(b).
 */
class WeightedCdf
{
  public:
    /** Accumulate @p weight into the bucket keyed by @p key. */
    void add(uint64_t key, double weight);

    /** @return cumulative weight fraction at or below @p key. */
    double cumulativeAt(uint64_t key) const;

    /** @return total accumulated weight. */
    double totalWeight() const;

    /** @return the sorted (key, weight) pairs. */
    std::vector<std::pair<uint64_t, double>> points() const;

    void reset() { buckets.clear(); }

  private:
    std::map<uint64_t, double> buckets;
};

} // namespace xpc

#endif // XPC_SIM_STATS_HH
