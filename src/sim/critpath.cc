#include "critpath.hh"

#include <algorithm>
#include <cstdio>
#include <set>
#include <sstream>

namespace xpc::critpath {

namespace {

/** A span rebuilt from a Begin/End pair (possibly clamped). */
struct Interval
{
    const char *cat = "";
    const char *name = "";
    uint32_t tid = 0;
    uint64_t begin = 0;
    uint64_t end = 0;
    uint64_t seq = 0; ///< record order of the Begin (nesting tie-break)
    bool clamped = false;
};

struct Builder
{
    std::vector<Interval> intervals;
    std::vector<Interval> open; ///< Begins awaiting their End
    std::set<uint32_t> lanes;
    bool clamped = false;
    bool flowStart = false;
    bool flowEnd = false;
    uint64_t lastTs = 0; ///< latest timestamp seen for the request
    MemRollup mem;
};

bool
sameSpan(const Interval &iv, const trace::TraceEvent &ev)
{
    // cat/name are static strings but not always the same pointer
    // across translation units; compare by content.
    return iv.tid == ev.tid &&
           std::string_view(iv.cat) == ev.cat &&
           std::string_view(iv.name) == ev.name;
}

/** True when @p a is nested inside (or equal to) @p b's extent and
 *  should win the "innermost" contest. */
bool
inner(const Interval &a, const Interval &b)
{
    if (a.begin != b.begin)
        return a.begin > b.begin; // later begin = deeper
    if (a.end != b.end)
        return a.end < b.end; // earlier end = narrower = deeper
    return a.seq > b.seq;
}

} // namespace

uint64_t
RequestReport::attributed() const
{
    uint64_t sum = 0;
    for (const auto &[name, cycles] : spanCycles)
        sum += cycles;
    return sum;
}

std::vector<RequestReport>
analyze(const std::vector<trace::TraceEvent> &events)
{
    using trace::EventKind;

    // The earliest timestamp retained: the clamp point for spans
    // whose Begin fell off the ring.
    uint64_t window_start = 0;
    if (!events.empty()) {
        window_start = events.front().ts;
        for (const trace::TraceEvent &ev : events)
            window_start = std::min(window_start, ev.ts);
    }

    // Pass 1 - pair spans in record order (emission order is always
    // Begin-before-End for one span, even when timestamps tie or
    // post-hoc spans interleave with real-time children).
    std::map<req::RequestId, Builder> builders;
    uint64_t seq = 0;
    for (const trace::TraceEvent &ev : events) {
        seq++;
        if (ev.req == 0)
            continue;
        Builder &b = builders[ev.req];
        b.lastTs = std::max(b.lastTs, ev.ts);
        switch (ev.kind) {
          case EventKind::Begin: {
            Interval iv;
            iv.cat = ev.cat;
            iv.name = ev.name;
            iv.tid = ev.tid;
            iv.begin = ev.ts;
            iv.seq = seq;
            b.open.push_back(iv);
            b.lanes.insert(ev.tid);
            break;
          }
          case EventKind::End: {
            auto it = std::find_if(
                b.open.rbegin(), b.open.rend(),
                [&](const Interval &iv) { return sameSpan(iv, ev); });
            if (it == b.open.rend()) {
                // Begin lost to wraparound: clamp to the window.
                Interval iv;
                iv.cat = ev.cat;
                iv.name = ev.name;
                iv.tid = ev.tid;
                iv.begin = window_start;
                iv.end = ev.ts;
                iv.seq = 0;
                iv.clamped = true;
                b.intervals.push_back(iv);
                b.clamped = true;
            } else {
                Interval iv = *it;
                iv.end = ev.ts;
                b.intervals.push_back(iv);
                b.open.erase(std::next(it).base());
            }
            b.lanes.insert(ev.tid);
            break;
          }
          case EventKind::FlowStart:
            b.flowStart = true;
            b.lanes.insert(ev.tid);
            break;
          case EventKind::FlowEnd:
            b.flowEnd = true;
            b.lanes.insert(ev.tid);
            break;
          case EventKind::FlowStep:
            b.lanes.insert(ev.tid);
            break;
          case EventKind::Instant:
            if (std::string_view(ev.cat) == "mem") {
                std::string_view n(ev.name);
                if (n == "tlb_miss_fill") {
                    b.mem.tlbWalks++;
                    b.mem.tlbWalkCycles += ev.arg;
                } else if (n == "l1_miss_fill") {
                    b.mem.l1Fills++;
                    b.mem.l1FillCycles += ev.arg;
                }
            }
            break;
          default:
            break;
        }
    }

    // Pass 2 - per request: close dangling spans, sweep the window.
    std::vector<RequestReport> out;
    for (auto &[id, b] : builders) {
        // Spans that never Ended (crash unwind, trace cut mid-call):
        // clamp to the last event seen for this request.
        for (Interval &iv : b.open) {
            iv.end = std::max(b.lastTs, iv.begin);
            iv.clamped = true;
            b.intervals.push_back(iv);
            b.clamped = true;
        }
        if (b.intervals.empty())
            continue; // flow/instant stamps only; nothing to walk

        RequestReport r;
        r.id = id;
        r.complete = !b.clamped;
        r.lanes = uint32_t(b.lanes.size());
        r.flowClosed = b.flowStart && b.flowEnd;
        r.startTs = b.intervals.front().begin;
        r.endTs = b.intervals.front().end;
        for (const Interval &iv : b.intervals) {
            r.startTs = std::min(r.startTs, iv.begin);
            r.endTs = std::max(r.endTs, iv.end);
        }
        r.mem = b.mem;

        // Elementary slices between span boundaries.
        std::vector<uint64_t> cuts;
        cuts.reserve(b.intervals.size() * 2);
        for (const Interval &iv : b.intervals) {
            cuts.push_back(iv.begin);
            cuts.push_back(iv.end);
        }
        std::sort(cuts.begin(), cuts.end());
        cuts.erase(std::unique(cuts.begin(), cuts.end()), cuts.end());

        static const Interval untracked{"", "(untracked)", 0, 0, 0, 0,
                                        false};
        std::map<std::string, uint64_t> totals;
        for (size_t i = 0; i + 1 < cuts.size(); i++) {
            uint64_t lo = cuts[i], hi = cuts[i + 1];
            const Interval *deepest = nullptr;
            for (const Interval &iv : b.intervals) {
                if (iv.begin > lo || iv.end < hi)
                    continue;
                if (!deepest || inner(iv, *deepest))
                    deepest = &iv;
            }
            if (!deepest)
                deepest = &untracked; // a gap nobody claimed
            uint64_t delta = hi - lo;
            totals[deepest->name] += delta;
            if (!r.path.empty() &&
                r.path.back().name ==
                    std::string_view(deepest->name) &&
                r.path.back().tid == deepest->tid) {
                r.path.back().cycles += delta;
            } else {
                Segment s;
                s.cat = deepest->cat;
                s.name = deepest->name;
                s.tid = deepest->tid;
                s.begin = lo;
                s.cycles = delta;
                r.path.push_back(s);
            }
        }

        r.spanCycles.assign(totals.begin(), totals.end());
        std::stable_sort(r.spanCycles.begin(), r.spanCycles.end(),
                         [](const auto &a, const auto &b) {
                             return a.second > b.second;
                         });
        out.push_back(std::move(r));
    }
    return out;
}

const RequestReport *
find(const std::vector<RequestReport> &reports, req::RequestId id)
{
    for (const RequestReport &r : reports)
        if (r.id == id)
            return &r;
    return nullptr;
}

namespace {

std::string
laneName(const trace::Tracer &tracer, uint32_t tid)
{
    auto it = tracer.trackNames().find(tid);
    if (it != tracer.trackNames().end())
        return it->second;
    char buf[32];
    if (tid >= req::threadLaneBase)
        std::snprintf(buf, sizeof(buf), "thread%u",
                      tid - req::threadLaneBase);
    else
        std::snprintf(buf, sizeof(buf), "core%u", tid);
    return buf;
}

std::string
pct(uint64_t part, uint64_t whole)
{
    char buf[16];
    std::snprintf(buf, sizeof(buf), "%.1f%%",
                  whole ? 100.0 * double(part) / double(whole) : 0.0);
    return buf;
}

} // namespace

std::string
formatReport(const RequestReport &r, const trace::Tracer &tracer)
{
    std::ostringstream os;
    os << "request #" << r.id << ": " << r.total() << " cycles, "
       << r.lanes << " lane" << (r.lanes == 1 ? "" : "s")
       << (r.flowClosed ? ", flow closed" : "")
       << (r.complete ? "" : ", INCOMPLETE (spans clamped)") << "\n";
    os << "  critical path:\n";
    for (const Segment &s : r.path) {
        char line[128];
        std::snprintf(line, sizeof(line),
                      "    %8llu  +%-8llu %-12s %s.%s\n",
                      (unsigned long long)s.begin,
                      (unsigned long long)s.cycles,
                      laneName(tracer, s.tid).c_str(), s.cat, s.name);
        os << line;
    }
    os << "  by span:";
    bool first = true;
    for (const auto &[name, cycles] : r.spanCycles) {
        os << (first ? " " : ", ") << name << " " << cycles << " ("
           << pct(cycles, r.total()) << ")";
        first = false;
    }
    os << "\n";
    if (r.mem.l1Fills || r.mem.tlbWalks) {
        os << "  memory: " << r.mem.tlbWalks << " TLB walk"
           << (r.mem.tlbWalks == 1 ? "" : "s") << " ("
           << r.mem.tlbWalkCycles << " cyc, "
           << pct(r.mem.tlbWalkCycles, r.total()) << "), "
           << r.mem.l1Fills << " L1 fill"
           << (r.mem.l1Fills == 1 ? "" : "s") << " ("
           << r.mem.l1FillCycles << " cyc, "
           << pct(r.mem.l1FillCycles, r.total()) << ")\n";
    }
    os << "  attribution check: " << r.attributed() << " / "
       << r.total() << " cycles ("
       << (r.attributed() == r.total() ? "exact" : "MISMATCH")
       << ")\n";
    return os.str();
}

std::string
formatTop(const std::vector<RequestReport> &reports)
{
    std::ostringstream os;
    Distribution totals;
    std::map<std::string, uint64_t> spans;
    uint64_t grand = 0;
    for (const RequestReport &r : reports) {
        totals.add(double(r.total()));
        grand += r.total();
        for (const auto &[name, cycles] : r.spanCycles)
            spans[name] += cycles;
    }
    os << "critpath top: " << reports.size() << " request"
       << (reports.size() == 1 ? "" : "s");
    if (totals.count() > 0) {
        char buf[96];
        std::snprintf(buf, sizeof(buf),
                      ", end-to-end p50 %.0f / p99 %.0f cycles",
                      totals.quantile(0.5), totals.quantile(0.99));
        os << buf;
    }
    os << "\n";
    std::vector<std::pair<std::string, uint64_t>> rows(spans.begin(),
                                                       spans.end());
    std::stable_sort(rows.begin(), rows.end(),
                     [](const auto &a, const auto &b) {
                         return a.second > b.second;
                     });
    for (const auto &[name, cycles] : rows) {
        char line[96];
        std::snprintf(line, sizeof(line), "  %-16s %10llu  %s\n",
                      name.c_str(), (unsigned long long)cycles,
                      pct(cycles, grand).c_str());
        os << line;
    }
    return os.str();
}

CritPathStats::CritPathStats(StatGroup *parent)
{
    group.setParent(parent);
    group.addDistribution("total_cycles", &totalCycles);
}

void
CritPathStats::add(const RequestReport &r)
{
    totalCycles.add(double(r.total()));
    for (const auto &[name, cycles] : r.spanCycles) {
        auto it = perSpan.find(name);
        if (it == perSpan.end()) {
            it = perSpan.emplace(name,
                                 std::make_unique<Distribution>())
                     .first;
            group.addDistribution(name, it->second.get());
        }
        it->second->add(double(cycles));
    }
}

const Distribution *
CritPathStats::span(const std::string &name) const
{
    auto it = perSpan.find(name);
    return it == perSpan.end() ? nullptr : it->second.get();
}

} // namespace xpc::critpath
