#include "stats.hh"

#include <algorithm>
#include <cmath>
#include <limits>
#include <ostream>

#include "logging.hh"

namespace xpc {

void
Distribution::add(double sample)
{
    samples.push_back(sample);
    runningSum += sample;
    sorted = false;
}

void
Distribution::reset()
{
    samples.clear();
    runningSum = 0;
    sorted = true;
}

void
Distribution::ensureSorted() const
{
    if (!sorted) {
        std::sort(samples.begin(), samples.end());
        sorted = true;
    }
}

namespace {
constexpr double statNaN = std::numeric_limits<double>::quiet_NaN();
} // namespace

double
Distribution::min() const
{
    if (samples.empty())
        return statNaN;
    ensureSorted();
    return samples.front();
}

double
Distribution::max() const
{
    if (samples.empty())
        return statNaN;
    ensureSorted();
    return samples.back();
}

double
Distribution::mean() const
{
    if (samples.empty())
        return statNaN;
    return runningSum / double(samples.size());
}

double
Distribution::quantile(double q) const
{
    panic_if(q < 0 || q > 1, "quantile %f out of [0,1]", q);
    if (samples.empty())
        return statNaN;
    ensureSorted();
    double pos = q * double(samples.size() - 1);
    size_t lo = size_t(std::floor(pos));
    size_t hi = size_t(std::ceil(pos));
    // q=1 can round pos up to exactly size-1 with ceil still landing
    // there, but floating error (e.g. q=0.999.. * (n-1)) may push hi
    // one past the last sample: clamp both indices into range.
    lo = std::min(lo, samples.size() - 1);
    hi = std::min(hi, samples.size() - 1);
    double frac = pos - double(lo);
    return samples[lo] * (1 - frac) + samples[hi] * frac;
}

void
WeightedCdf::add(uint64_t key, double weight)
{
    buckets[key] += weight;
}

double
WeightedCdf::totalWeight() const
{
    double total = 0;
    for (const auto &[key, w] : buckets)
        total += w;
    return total;
}

double
WeightedCdf::cumulativeAt(uint64_t key) const
{
    double total = totalWeight();
    if (total == 0)
        return 0;
    double below = 0;
    for (const auto &[k, w] : buckets) {
        if (k > key)
            break;
        below += w;
    }
    return below / total;
}

std::vector<std::pair<uint64_t, double>>
WeightedCdf::points() const
{
    return {buckets.begin(), buckets.end()};
}

StatGroup::StatGroup(std::string name, StatGroup *parent)
    : groupName(std::move(name))
{
    setParent(parent);
}

StatGroup::~StatGroup()
{
    setParent(nullptr);
    for (StatGroup *kid : kids)
        kid->parentGroup = nullptr;
}

void
StatGroup::setParent(StatGroup *parent)
{
    if (parentGroup) {
        auto &sibs = parentGroup->kids;
        sibs.erase(std::remove(sibs.begin(), sibs.end(), this),
                   sibs.end());
    }
    parentGroup = parent;
    if (parentGroup)
        parentGroup->kids.push_back(this);
}

void
StatGroup::addCounter(const std::string &name, Counter *c)
{
    counters.emplace_back(name, c);
}

void
StatGroup::addDistribution(const std::string &name, Distribution *d)
{
    dists.emplace_back(name, d);
}

void
StatGroup::addHistogram(const std::string &name, Histogram *h)
{
    hists.emplace_back(name, h);
}

void
StatGroup::resetAll()
{
    for (auto &[name, c] : counters)
        c->reset();
    for (auto &[name, d] : dists)
        d->reset();
    for (auto &[name, h] : hists)
        h->reset();
    for (StatGroup *kid : kids)
        kid->resetAll();
}

const Counter *
StatGroup::counter(const std::string &name) const
{
    for (const auto &[n, c] : counters)
        if (n == name)
            return c;
    return nullptr;
}

const Distribution *
StatGroup::distribution(const std::string &name) const
{
    for (const auto &[n, d] : dists)
        if (n == name)
            return d;
    return nullptr;
}

const Histogram *
StatGroup::histogram(const std::string &name) const
{
    for (const auto &[n, h] : hists)
        if (n == name)
            return h;
    return nullptr;
}

const StatGroup *
StatGroup::child(const std::string &name) const
{
    for (const StatGroup *kid : kids)
        if (kid->groupName == name)
            return kid;
    return nullptr;
}

namespace {

std::string
jsonQuote(const std::string &s)
{
    std::string out = "\"";
    for (char c : s) {
        if (c == '"' || c == '\\')
            out += '\\';
        out += c;
    }
    out += '"';
    return out;
}

/** JSON has no NaN; only called with count > 0. */
void
emitDistJson(std::ostream &os, const Distribution &d)
{
    os << "{\"count\":" << d.count() << ",\"sum\":" << d.sum()
       << ",\"mean\":" << d.mean() << ",\"min\":" << d.min()
       << ",\"max\":" << d.max() << ",\"p50\":" << d.quantile(0.5)
       << ",\"p95\":" << d.quantile(0.95)
       << ",\"p99\":" << d.quantile(0.99) << "}";
}

void
pad(std::ostream &os, int indent)
{
    for (int i = 0; i < indent; i++)
        os << ' ';
}

} // namespace

void
StatGroup::dumpJson(std::ostream &os, int indent) const
{
    pad(os, indent);
    os << "{\"name\":" << jsonQuote(groupName);
    if (!counters.empty()) {
        os << ",\n";
        pad(os, indent + 1);
        os << "\"counters\":{";
        bool first = true;
        for (const auto &[name, c] : counters) {
            os << (first ? "" : ",") << jsonQuote(name) << ":"
               << c->value();
            first = false;
        }
        os << "}";
    }
    if (!dists.empty()) {
        os << ",\n";
        pad(os, indent + 1);
        os << "\"distributions\":{";
        bool first = true;
        for (const auto &[name, d] : dists) {
            os << (first ? "" : ",") << jsonQuote(name) << ":";
            if (d->count() == 0)
                os << "{\"count\":0}";
            else
                emitDistJson(os, *d);
            first = false;
        }
        os << "}";
    }
    if (!hists.empty()) {
        os << ",\n";
        pad(os, indent + 1);
        os << "\"histograms\":{";
        bool first = true;
        for (const auto &[name, h] : hists) {
            os << (first ? "" : ",") << jsonQuote(name) << ":";
            h->summaryJson(os);
            first = false;
        }
        os << "}";
    }
    if (!kids.empty()) {
        os << ",\n";
        pad(os, indent + 1);
        os << "\"children\":[\n";
        for (size_t i = 0; i < kids.size(); i++) {
            kids[i]->dumpJson(os, indent + 2);
            os << (i + 1 < kids.size() ? ",\n" : "\n");
        }
        pad(os, indent + 1);
        os << "]";
    }
    os << "}";
}

void
StatGroup::dumpCsv(std::ostream &os, const std::string &prefix) const
{
    std::string path =
        prefix.empty() ? groupName : prefix + "." + groupName;
    for (const auto &[name, c] : counters)
        os << path << ",counter," << name << "," << c->value() << "\n";
    for (const auto &[name, d] : dists) {
        os << path << ",dist_count," << name << "," << d->count()
           << "\n";
        if (d->count() > 0) {
            os << path << ",dist_mean," << name << "," << d->mean()
               << "\n";
            os << path << ",dist_p50," << name << ","
               << d->quantile(0.5) << "\n";
            os << path << ",dist_p99," << name << ","
               << d->quantile(0.99) << "\n";
        }
    }
    for (const auto &[name, h] : hists) {
        os << path << ",hist_count," << name << "," << h->count()
           << "\n";
        if (h->count() > 0) {
            os << path << ",hist_mean," << name << "," << h->mean()
               << "\n";
            os << path << ",hist_p50," << name << ","
               << h->quantile(0.5) << "\n";
            os << path << ",hist_p99," << name << ","
               << h->quantile(0.99) << "\n";
            os << path << ",hist_p999," << name << ","
               << h->quantile(0.999) << "\n";
        }
    }
    for (const StatGroup *kid : kids)
        kid->dumpCsv(os, path);
}

} // namespace xpc
