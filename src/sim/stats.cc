#include "stats.hh"

#include <algorithm>
#include <cmath>

#include "logging.hh"

namespace xpc {

void
Distribution::add(double sample)
{
    samples.push_back(sample);
    runningSum += sample;
    sorted = false;
}

void
Distribution::reset()
{
    samples.clear();
    runningSum = 0;
    sorted = true;
}

void
Distribution::ensureSorted() const
{
    if (!sorted) {
        std::sort(samples.begin(), samples.end());
        sorted = true;
    }
}

double
Distribution::min() const
{
    panic_if(samples.empty(), "min() of an empty distribution");
    ensureSorted();
    return samples.front();
}

double
Distribution::max() const
{
    panic_if(samples.empty(), "max() of an empty distribution");
    ensureSorted();
    return samples.back();
}

double
Distribution::mean() const
{
    panic_if(samples.empty(), "mean() of an empty distribution");
    return runningSum / double(samples.size());
}

double
Distribution::quantile(double q) const
{
    panic_if(samples.empty(), "quantile() of an empty distribution");
    panic_if(q < 0 || q > 1, "quantile %f out of [0,1]", q);
    ensureSorted();
    double pos = q * double(samples.size() - 1);
    size_t lo = size_t(std::floor(pos));
    size_t hi = size_t(std::ceil(pos));
    double frac = pos - double(lo);
    return samples[lo] * (1 - frac) + samples[hi] * frac;
}

void
WeightedCdf::add(uint64_t key, double weight)
{
    buckets[key] += weight;
}

double
WeightedCdf::totalWeight() const
{
    double total = 0;
    for (const auto &[key, w] : buckets)
        total += w;
    return total;
}

double
WeightedCdf::cumulativeAt(uint64_t key) const
{
    double total = totalWeight();
    if (total == 0)
        return 0;
    double below = 0;
    for (const auto &[k, w] : buckets) {
        if (k > key)
            break;
        below += w;
    }
    return below / total;
}

std::vector<std::pair<uint64_t, double>>
WeightedCdf::points() const
{
    return {buckets.begin(), buckets.end()};
}

} // namespace xpc
