/**
 * @file
 * Deterministic fault injection for chaos testing.
 *
 * A FaultPlan is a seeded, pre-generated schedule of faults keyed by
 * the global call sequence number: "on call #17, kill the server
 * mid-handler". The FaultInjector carries the plan through a run,
 * answers the hooks threaded through the kernels, the XPC engine and
 * the runtime, and records every fault it actually fired so a run can
 * be replayed (same seed, same config => identical fired sequence).
 *
 * Like all randomness in the tree, plans flow through the seeded Rng;
 * nothing here touches global state, so two injectors built from the
 * same seed produce byte-identical schedules.
 */

#ifndef XPC_SIM_FAULT_INJECTOR_HH
#define XPC_SIM_FAULT_INJECTOR_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace xpc {

/** What to break (the tentpole's fault taxonomy). */
enum class FaultOp : uint32_t
{
    /** Kill the callee's process mid-xcall (paper 4.2 termination). */
    KillServer,
    /** Hang the handler past the watchdog budget (paper 6.1). */
    HangServer,
    /** Revoke the relay segment the callee currently holds (4.4). */
    RevokeSeg,
    /** Corrupt the top linkage record under the running call. */
    CorruptLinkage,
    /** Force an engine exception on the next xcall. */
    EngineException,
    /** Fail a message copy (surfaces as a memory fault mid-IPC). */
    CopyFault,
    /**
     * Stall the handler: the server busy-loops and never produces a
     * reply. Only observable where a deadline (or watchdog) is
     * armed - a stalled server with no budget to exceed is simply a
     * hung caller, which is exactly the failure mode deadlines
     * exist to bound.
     */
    StallServer,
    /** Run the handler at arg x its normal cost (slow server). */
    SlowServer,
};

/** How many FaultOp values exist (for plan generation and stats). */
constexpr uint32_t faultOpCount = 8;

const char *faultOpName(FaultOp op);

/** Where in a call's lifetime the fault lands (Table 1 phases). */
enum class FaultPhase : uint32_t
{
    PreXcall, ///< before the transfer instruction fires
    InHandler, ///< while the migrated thread runs the handler
    PreXret,   ///< after the handler, before control returns
};

const char *faultPhaseName(FaultPhase phase);

/** One scheduled fault. */
struct FaultEvent
{
    /** Global call sequence number the fault fires on (1-based). */
    uint64_t callSeq = 0;
    FaultOp op = FaultOp::CopyFault;
    FaultPhase phase = FaultPhase::PreXcall;
    /** Op-specific argument (e.g. which engine exception to force). */
    uint32_t arg = 0;
};

/** A complete seeded fault schedule. */
struct FaultPlan
{
    uint64_t seed = 0;
    /** Events sorted by callSeq; at most one per call. */
    std::vector<FaultEvent> events;

    /**
     * Generate @p count faults spread over the first @p call_span
     * calls, drawing ops from @p op_mask (bit i enables FaultOp(i);
     * 0 means all ops). Deterministic in @p seed.
     */
    static FaultPlan generate(uint64_t seed, uint64_t count,
                              uint64_t call_span, uint32_t op_mask = 0);
};

/**
 * Carries a FaultPlan through a run. The hooks come in two flavors:
 * schedule queries (beginCall/eventAt) used by the kernels and the
 * XPC runtime at phase boundaries, and one-shot armed faults
 * (armMemFault/armEngineException) that the memory system and engine
 * consume at the exact micro-architectural point the fault models.
 */
class FaultInjector
{
  public:
    explicit FaultInjector(FaultPlan plan) : plan_(std::move(plan)) {}

    /** Master switch: hooks are inert while false (wiring time). */
    bool enabled = false;

    /** Advance the global call counter. @return the new sequence. */
    uint64_t beginCall() { return ++seq_; }

    /** The scheduled event for call @p seq, or nullptr. */
    const FaultEvent *eventAt(uint64_t seq) const;

    /** Log that @p ev was actually injected (the replay record). */
    void recordFired(const FaultEvent &ev);

    /// @name One-shot memory fault (consumed by MemSystem).
    /// @{
    void armMemFault() { memArmed_ = true; }
    bool
    consumeMemFault()
    {
        bool was = memArmed_;
        memArmed_ = false;
        return was;
    }
    bool memFaultArmed() const { return memArmed_; }
    /// @}

    /// @name One-shot forced engine exception (consumed by xcall).
    /// @{
    void
    armEngineException(uint32_t exc)
    {
        engExc_ = exc;
        engArmed_ = true;
    }

    /** @return true and the exception code if one is armed. */
    bool
    consumeEngineException(uint32_t *exc)
    {
        if (!engArmed_)
            return false;
        engArmed_ = false;
        *exc = engExc_;
        return true;
    }
    /// @}

    /// @name Enumerable crash points (systematic exploration).
    ///
    /// The storage layers and the XPC runtime visit a crash site at
    /// every durable block write and every XPC phase boundary; sites
    /// are numbered 0, 1, 2, ... in execution order, so one baseline
    /// run censuses the whole fault space and each exploration run
    /// re-executes the workload crashing at exactly the armed sites.
    /// A firing latches crashed(): the block device then suppresses
    /// every subsequent durable write, freezing the disk at the exact
    /// prefix a power cut would leave behind. Plan entries after the
    /// first are *relative*: the site counter restarts at each
    /// firing, so {12, 3} means "crash at site 12, then again 3
    /// sites into the recovery that follows".
    /// @{

    /** Arm a crash plan (entries consumed in order, never sorted). */
    void
    armCrashPlan(std::vector<uint64_t> sites)
    {
        crashPlan_ = std::move(sites);
        crashNext_ = 0;
        crashed_ = false;
        siteSeq_ = 0;
        siteTotal_ = 0;
        siteCensus_.clear();
        crashLog_.clear();
    }

    /**
     * Visit one crash site. Counts it, and latches crashed() when
     * the armed plan names it. Inert while disabled, and while
     * already crashed (a dead machine executes nothing, so the
     * writes it never issues are not sites).
     * @return the site's index (relative to the last firing).
     */
    uint64_t atCrashSite(const char *kind);

    /** True between a crash-site firing and clearCrashed(). The
     *  block device suppresses durable writes while this holds. */
    bool crashed() const { return crashed_; }

    /** Acknowledge the crash (the harness has torn down the dead
     *  components); durable writes flow again, e.g. for recovery. */
    void clearCrashed() { crashed_ = false; }

    /** Sites visited since arming (the baseline census). */
    uint64_t crashSitesVisited() const { return siteTotal_; }

    /** Per-kind site counts, in kind order (census reporting). */
    const std::map<std::string, uint64_t> &
    siteCensus() const
    {
        return siteCensus_;
    }

    /** Plan-shaped (relative) site indexes that actually fired. */
    const std::vector<uint64_t> &crashesFired() const
    {
        return crashLog_;
    }
    /// @}

    const FaultPlan &plan() const { return plan_; }
    uint64_t seed() const { return plan_.seed; }
    uint64_t callCount() const { return seq_; }

    /** Every fault actually fired, in firing order. */
    const std::vector<FaultEvent> &fired() const { return log_; }
    uint64_t firedCount(FaultOp op) const;
    uint64_t firedTotal() const { return log_.size(); }

    /** Distinct FaultOp kinds that actually fired. */
    uint32_t firedKinds() const;

    /**
     * One-line JSON report: seed, call count, per-op fired counts.
     * Enough to rebuild the plan and replay the run from a log.
     */
    std::string reportJson() const;

  private:
    FaultPlan plan_;
    uint64_t seq_ = 0;
    bool memArmed_ = false;
    bool engArmed_ = false;
    uint32_t engExc_ = 0;
    std::vector<FaultEvent> log_;
    uint64_t firedPerOp_[faultOpCount] = {};

    std::vector<uint64_t> crashPlan_;
    size_t crashNext_ = 0;
    bool crashed_ = false;
    uint64_t siteSeq_ = 0;   ///< relative to the last firing
    uint64_t siteTotal_ = 0; ///< absolute, since arming
    std::map<std::string, uint64_t> siteCensus_;
    std::vector<uint64_t> crashLog_;
};

} // namespace xpc

#endif // XPC_SIM_FAULT_INJECTOR_HH
