#include "trace.hh"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <ostream>

#include "phase.hh"

namespace xpc::trace {

Tracer::Tracer()
{
    if (const char *env = std::getenv("XPC_TRACE"))
        on = env[0] != '\0' && !(env[0] == '0' && env[1] == '\0');
    if (const char *env = std::getenv("XPC_TRACE_BUF")) {
        unsigned long long n = std::strtoull(env, nullptr, 10);
        if (n > 0)
            cap = size_t(n);
    }
    ring.resize(cap);
    texts.resize(textCapacity);
}

Tracer &
Tracer::global()
{
    static Tracer tracer;
    return tracer;
}

void
Tracer::setCapacity(size_t events)
{
    cap = events > 0 ? events : 1;
    ring.assign(cap, TraceEvent{});
    nrec = 0;
    ntext = 0;
}

void
Tracer::clear()
{
    ring.assign(cap, TraceEvent{});
    nrec = 0;
    ntext = 0;
    lastTs.fill(0);
}

void
Tracer::push(TraceEvent &ev)
{
    // Stamp the causal context: which request chain, which phase.
    const req::RequestContext &ctx = req::RequestContext::global();
    ev.req = ctx.current();
    ev.phase = ctx.currentPhase();
    if (ev.tid < lastTs.size())
        lastTs[ev.tid] = ev.ts;
    ring[nrec % cap] = ev;
    nrec++;
}

void
Tracer::begin(const char *cat, const char *name, uint64_t ts,
              uint32_t tid)
{
    if (!enabled())
        return;
    TraceEvent ev;
    ev.ts = ts;
    ev.tid = tid;
    ev.cat = cat;
    ev.name = name;
    ev.kind = EventKind::Begin;
    push(ev);
}

void
Tracer::end(const char *cat, const char *name, uint64_t ts,
            uint32_t tid)
{
    if (!enabled())
        return;
    TraceEvent ev;
    ev.ts = ts;
    ev.tid = tid;
    ev.cat = cat;
    ev.name = name;
    ev.kind = EventKind::End;
    push(ev);
}

void
Tracer::instant(const char *cat, const char *name, uint64_t ts,
                uint32_t tid, std::string text)
{
    if (!enabled())
        return;
    TraceEvent ev;
    ev.ts = ts;
    ev.tid = tid;
    ev.cat = cat;
    ev.name = name;
    ev.kind = EventKind::Instant;
    if (!text.empty()) {
        texts[ntext % textCapacity] = std::move(text);
        ntext++;
        ev.textRef = uint32_t(ntext); // 1-based sequence
    }
    push(ev);
}

void
Tracer::counter(const char *cat, const char *name, uint64_t value,
                uint64_t ts, uint32_t tid)
{
    if (!enabled())
        return;
    TraceEvent ev;
    ev.ts = ts;
    ev.tid = tid;
    ev.cat = cat;
    ev.name = name;
    ev.arg = value;
    ev.kind = EventKind::Counter;
    push(ev);
}

void
Tracer::flow(EventKind kind, const char *cat, const char *name,
             uint64_t flow_id, uint64_t ts, uint32_t tid)
{
    if (!enabled())
        return;
    TraceEvent ev;
    ev.ts = ts;
    ev.tid = tid;
    ev.cat = cat;
    ev.name = name;
    ev.arg = flow_id;
    ev.kind = kind;
    push(ev);
}

void
Tracer::instantNow(const char *cat, const char *name, uint32_t tid,
                   std::string text, uint64_t arg)
{
    if (!enabled())
        return;
    TraceEvent ev;
    ev.ts = lastTime(tid);
    ev.tid = tid;
    ev.cat = cat;
    ev.name = name;
    ev.arg = arg;
    ev.kind = EventKind::Instant;
    if (!text.empty()) {
        texts[ntext % textCapacity] = std::move(text);
        ntext++;
        ev.textRef = uint32_t(ntext);
    }
    push(ev);
}

uint64_t
Tracer::lastTime(uint32_t tid) const
{
    return lastTs[tid % lastTs.size()];
}

uint64_t
Tracer::droppedCount() const
{
    return nrec > cap ? nrec - cap : 0;
}

size_t
Tracer::size() const
{
    return nrec < cap ? size_t(nrec) : cap;
}

std::vector<TraceEvent>
Tracer::events() const
{
    std::vector<TraceEvent> out;
    size_t held = size();
    out.reserve(held);
    uint64_t first = nrec > cap ? nrec - cap : 0;
    for (uint64_t i = first; i < nrec; i++)
        out.push_back(ring[i % cap]);
    return out;
}

const std::string &
Tracer::textOf(const TraceEvent &ev) const
{
    static const std::string empty;
    if (ev.textRef == 0)
        return empty;
    uint64_t seq = ev.textRef; // 1-based
    if (seq > ntext || ntext - seq >= textCapacity)
        return empty; // slot has been overwritten since
    return texts[(seq - 1) % textCapacity];
}

void
Tracer::setTrackName(uint32_t tid, std::string name)
{
    if (!compiledIn)
        return;
    laneNames[tid] = std::move(name);
}

namespace {

/** Minimal JSON string escaping for event payloads. */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          case '\r':
            out += "\\r";
            break;
          default:
            if (uint8_t(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

char
phaseChar(EventKind kind)
{
    switch (kind) {
      case EventKind::Begin:
        return 'B';
      case EventKind::End:
        return 'E';
      case EventKind::Instant:
        return 'i';
      case EventKind::Counter:
        return 'C';
      case EventKind::FlowStart:
        return 's';
      case EventKind::FlowStep:
        return 't';
      case EventKind::FlowEnd:
        return 'f';
    }
    return 'i';
}

bool
isFlow(EventKind kind)
{
    return kind == EventKind::FlowStart ||
           kind == EventKind::FlowStep || kind == EventKind::FlowEnd;
}

} // namespace

void
Tracer::exportChromeJson(std::ostream &os) const
{
    os << "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
    bool first_ev = true;
    auto sep = [&]() {
        if (!first_ev)
            os << ",";
        first_ev = false;
        os << "\n";
    };
    // Lane metadata first: names registered at wiring time label the
    // client/server tracks in the Perfetto UI.
    for (const auto &[tid, name] : laneNames) {
        sep();
        os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0"
           << ",\"tid\":" << tid << ",\"args\":{\"name\":\""
           << jsonEscape(name) << "\"}}";
    }
    for (const TraceEvent &ev : events()) {
        sep();
        os << "{\"name\":\"" << jsonEscape(ev.name) << "\""
           << ",\"cat\":\"" << jsonEscape(ev.cat) << "\""
           << ",\"ph\":\"" << phaseChar(ev.kind) << "\""
           << ",\"ts\":" << ev.ts << ",\"pid\":0,\"tid\":" << ev.tid;
        if (ev.kind == EventKind::Instant)
            os << ",\"s\":\"t\"";
        if (isFlow(ev.kind)) {
            os << ",\"id\":" << ev.arg;
            if (ev.kind == EventKind::FlowEnd)
                os << ",\"bp\":\"e\""; // bind to the enclosing slice
        }
        // args: counter value / text payload / causal stamps.
        std::string args;
        auto field = [&](const std::string &f) {
            args += (args.empty() ? "" : ",") + f;
        };
        if (ev.kind == EventKind::Counter)
            field("\"value\":" + std::to_string(ev.arg));
        if (const std::string &text = textOf(ev); !text.empty())
            field("\"msg\":\"" + jsonEscape(text) + "\"");
        if (ev.kind == EventKind::Instant && ev.arg != 0)
            field("\"v\":" + std::to_string(ev.arg));
        if (!isFlow(ev.kind) && ev.req != 0)
            field("\"req\":" + std::to_string(ev.req));
        if (ev.phase != req::phaseNone && ev.phase < phaseCount)
            field(std::string("\"phase\":\"") +
                  phaseName(Phase(ev.phase)) + "\"");
        if (!args.empty())
            os << ",\"args\":{" << args << "}";
        os << "}";
    }
    os << "\n]}\n";
}

bool
Tracer::exportChromeJson(const std::string &path) const
{
    std::ofstream os(path);
    if (!os)
        return false;
    exportChromeJson(os);
    return os.good();
}

} // namespace xpc::trace
