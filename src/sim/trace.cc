#include "trace.hh"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <ostream>

namespace xpc::trace {

Tracer::Tracer()
{
    if (const char *env = std::getenv("XPC_TRACE"))
        on = env[0] != '\0' && !(env[0] == '0' && env[1] == '\0');
    if (const char *env = std::getenv("XPC_TRACE_BUF")) {
        unsigned long long n = std::strtoull(env, nullptr, 10);
        if (n > 0)
            cap = size_t(n);
    }
    ring.resize(cap);
}

Tracer &
Tracer::global()
{
    static Tracer tracer;
    return tracer;
}

void
Tracer::setCapacity(size_t events)
{
    cap = events > 0 ? events : 1;
    ring.assign(cap, TraceEvent{});
    nrec = 0;
}

void
Tracer::clear()
{
    ring.assign(cap, TraceEvent{});
    nrec = 0;
    lastTs.fill(0);
}

void
Tracer::push(TraceEvent ev)
{
    lastTs[ev.tid % lastTs.size()] = ev.ts;
    ring[nrec % cap] = std::move(ev);
    nrec++;
}

void
Tracer::begin(const char *cat, const char *name, uint64_t ts,
              uint32_t tid)
{
    if (!enabled())
        return;
    TraceEvent ev;
    ev.ts = ts;
    ev.tid = tid;
    ev.cat = cat;
    ev.name = name;
    ev.kind = EventKind::Begin;
    push(std::move(ev));
}

void
Tracer::end(const char *cat, const char *name, uint64_t ts,
            uint32_t tid)
{
    if (!enabled())
        return;
    TraceEvent ev;
    ev.ts = ts;
    ev.tid = tid;
    ev.cat = cat;
    ev.name = name;
    ev.kind = EventKind::End;
    push(std::move(ev));
}

void
Tracer::instant(const char *cat, const char *name, uint64_t ts,
                uint32_t tid, std::string text)
{
    if (!enabled())
        return;
    TraceEvent ev;
    ev.ts = ts;
    ev.tid = tid;
    ev.cat = cat;
    ev.name = name;
    ev.kind = EventKind::Instant;
    ev.text = std::move(text);
    push(std::move(ev));
}

void
Tracer::counter(const char *cat, const char *name, uint64_t value,
                uint64_t ts, uint32_t tid)
{
    if (!enabled())
        return;
    TraceEvent ev;
    ev.ts = ts;
    ev.tid = tid;
    ev.cat = cat;
    ev.name = name;
    ev.arg = value;
    ev.kind = EventKind::Counter;
    push(std::move(ev));
}

void
Tracer::instantNow(const char *cat, const char *name, uint32_t tid,
                   std::string text)
{
    instant(cat, name, lastTime(tid), tid, std::move(text));
}

uint64_t
Tracer::lastTime(uint32_t tid) const
{
    return lastTs[tid % lastTs.size()];
}

uint64_t
Tracer::droppedCount() const
{
    return nrec > cap ? nrec - cap : 0;
}

size_t
Tracer::size() const
{
    return nrec < cap ? size_t(nrec) : cap;
}

std::vector<TraceEvent>
Tracer::events() const
{
    std::vector<TraceEvent> out;
    size_t held = size();
    out.reserve(held);
    uint64_t first = nrec > cap ? nrec - cap : 0;
    for (uint64_t i = first; i < nrec; i++)
        out.push_back(ring[i % cap]);
    return out;
}

namespace {

/** Minimal JSON string escaping for event payloads. */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          case '\r':
            out += "\\r";
            break;
          default:
            if (uint8_t(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

char
phaseChar(EventKind kind)
{
    switch (kind) {
      case EventKind::Begin:
        return 'B';
      case EventKind::End:
        return 'E';
      case EventKind::Instant:
        return 'i';
      case EventKind::Counter:
        return 'C';
    }
    return 'i';
}

} // namespace

void
Tracer::exportChromeJson(std::ostream &os) const
{
    os << "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
    bool first_ev = true;
    for (const TraceEvent &ev : events()) {
        if (!first_ev)
            os << ",";
        first_ev = false;
        os << "\n{\"name\":\"" << jsonEscape(ev.name) << "\""
           << ",\"cat\":\"" << jsonEscape(ev.cat) << "\""
           << ",\"ph\":\"" << phaseChar(ev.kind) << "\""
           << ",\"ts\":" << ev.ts << ",\"pid\":0,\"tid\":" << ev.tid;
        if (ev.kind == EventKind::Instant)
            os << ",\"s\":\"t\"";
        if (ev.kind == EventKind::Counter)
            os << ",\"args\":{\"value\":" << ev.arg << "}";
        else if (!ev.text.empty())
            os << ",\"args\":{\"msg\":\"" << jsonEscape(ev.text)
               << "\"}";
        os << "}";
    }
    os << "\n]}\n";
}

bool
Tracer::exportChromeJson(const std::string &path) const
{
    std::ofstream os(path);
    if (!os)
        return false;
    exportChromeJson(os);
    return os.good();
}

} // namespace xpc::trace
