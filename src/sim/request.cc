#include "request.hh"

namespace xpc::req {

RequestContext &
RequestContext::global()
{
    static RequestContext ctx;
    return ctx;
}

} // namespace xpc::req
