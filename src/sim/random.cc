#include "random.hh"

#include <cmath>

#include "logging.hh"

namespace xpc {

namespace {

/** splitmix64 step used to expand a single seed into generator state. */
uint64_t
splitmix64(uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ULL;
    uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

uint64_t
rotl(uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(uint64_t seed)
{
    uint64_t s = seed;
    for (auto &word : state)
        word = splitmix64(s);
}

uint64_t
Rng::next()
{
    uint64_t result = rotl(state[1] * 5, 7) * 9;
    uint64_t t = state[1] << 17;
    state[2] ^= state[0];
    state[3] ^= state[1];
    state[1] ^= state[2];
    state[0] ^= state[3];
    state[2] ^= t;
    state[3] = rotl(state[3], 45);
    return result;
}

uint64_t
Rng::nextBounded(uint64_t bound)
{
    panic_if(bound == 0, "nextBounded requires bound > 0");
    // Rejection sampling to avoid modulo bias.
    uint64_t threshold = (0 - bound) % bound;
    for (;;) {
        uint64_t r = next();
        if (r >= threshold)
            return r % bound;
    }
}

double
Rng::nextDouble()
{
    return double(next() >> 11) * 0x1.0p-53;
}

double
Zipfian::zeta(uint64_t n, double theta)
{
    double sum = 0;
    for (uint64_t i = 0; i < n; i++)
        sum += 1.0 / std::pow(double(i + 1), theta);
    return sum;
}

Zipfian::Zipfian(uint64_t n, double t, uint64_t seed)
    : items(n), theta(t), rng(seed)
{
    panic_if(n == 0, "Zipfian requires a non-empty item set");
    zetan = zeta(n, theta);
    double zeta2 = zeta(2, theta);
    alpha = 1.0 / (1.0 - theta);
    eta = (1.0 - std::pow(2.0 / double(n), 1.0 - theta)) /
          (1.0 - zeta2 / zetan);
}

uint64_t
Zipfian::next()
{
    // Gray et al.'s quick Zipf sampler, as used by YCSB's generator.
    double u = rng.nextDouble();
    double uz = u * zetan;
    if (uz < 1.0)
        return 0;
    if (uz < 1.0 + std::pow(0.5, theta))
        return 1;
    return uint64_t(double(items) *
                    std::pow(eta * u - eta + 1.0, alpha));
}

} // namespace xpc
