/**
 * @file
 * Systematic crash-point exploration with failing-plan shrinking.
 *
 * The storage layers and the XPC runtime visit a numbered crash site
 * at every durable block write and every phase boundary (see
 * FaultInjector::atCrashSite). The Explorer turns that enumeration
 * into a search: run the workload once to census the fault space,
 * then re-run it crashing at each site (and at sampled site *pairs* -
 * the second entry fires during recovery, modelling a crash while
 * recovering from a crash), driving recovery and a consistency check
 * after every crash. Any failing plan can then be handed to the
 * delta-debugging shrinker, which reduces it to a locally-minimal
 * reproducer - the smallest plan (fewest entries, then smallest site
 * indexes) that still fails - printable as a replay command line.
 *
 * Everything is deterministic: sites are numbered by execution order,
 * pair sampling uses a seeded Rng, and the report serializes with a
 * stable layout, so two same-seed explorations are byte-identical.
 */

#ifndef XPC_SIM_EXPLORER_HH
#define XPC_SIM_EXPLORER_HH

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "sim/fault_injector.hh"

namespace xpc::sim {

/**
 * One crashable workload instance, built fresh for every exploration
 * run. Implementations own the whole simulated machine: run() builds
 * it, enables the injector *after* setup (formatting the disk is not
 * part of the fault space) and executes the workload; when a crash
 * site fires mid-run, run() returns early with inj.crashed() set.
 * The Explorer then discards the volatile half (server process,
 * client state) by calling recoverAndVerify(), which restarts the
 * stateful services, replays their journals and checks every
 * consistency invariant, returning "" on success or a one-line
 * description of the violation. Expected failures are *returned*,
 * never panicked - the shrinker runs failing plans on purpose.
 */
class CrashWorkload
{
  public:
    virtual ~CrashWorkload() = default;

    /** Build the machine, enable @p inj, run the workload (possibly
     *  crashing partway). */
    virtual void run(FaultInjector &inj) = 0;

    /**
     * Tear down the volatile state, restart + recover the stateful
     * services and verify every invariant; then re-run a fig07-style
     * workload to completion to prove the store still works.
     * Crash sites stay armed, so recovery itself can crash (the
     * Explorer loops while inj.crashed()).
     * @return "" if consistent, else a one-line violation report.
     */
    virtual std::string recoverAndVerify(FaultInjector &inj) = 0;
};

using CrashWorkloadFactory =
    std::function<std::unique_ptr<CrashWorkload>()>;

struct ExplorerOptions
{
    /** Crash-pair samples on top of the single-site sweep (0 = only
     *  singles). Pairs model a second crash during recovery. */
    uint64_t pairSamples = 0;
    /** Seed for pair sampling (deterministic across runs). */
    uint64_t pairSeed = 42;
    /** Give up when recovery crashes this many times in a row. */
    uint32_t maxRecoveryRounds = 8;
};

/** What one exploration run (one plan) did. */
struct CrashOutcome
{
    /** The armed plan (entries relative to the previous firing). */
    std::vector<uint64_t> plan;
    /** How many of the plan's entries actually fired. */
    uint64_t fired = 0;
    /** True when every armed-and-fired crash recovered into a
     *  consistent store (vacuously true if nothing fired). */
    bool consistent = true;
    /** The violation, when !consistent. */
    std::string detail;
};

/** A full exploration: census plus per-plan outcomes. */
struct ExplorerReport
{
    /** Sites the baseline (no-crash) run visited. */
    uint64_t totalSites = 0;
    /** Per-kind site counts from the baseline census. */
    std::vector<std::pair<std::string, uint64_t>> census;
    std::vector<CrashOutcome> outcomes;

    /** The inconsistent outcomes only. */
    std::vector<CrashOutcome> failures() const;

    /**
     * Stable JSON serialization (sorted census, outcomes in
     * execution order) - two same-seed explorations must compare
     * byte-identical through this.
     */
    std::string json() const;
};

/** "12+3" - the plan in replay-command syntax. */
std::string planString(const std::vector<uint64_t> &plan);

class Explorer
{
  public:
    Explorer(CrashWorkloadFactory factory,
             const ExplorerOptions &options = {})
        : factory(std::move(factory)), opts(options)
    {}

    /** Baseline run: census the fault space without crashing.
     *  @return sites visited; fills censusOut when non-null. */
    uint64_t countSites(
        std::vector<std::pair<std::string, uint64_t>> *census_out =
            nullptr);

    /** Run one plan: crash, recover, verify (looping while recovery
     *  itself crashes), on a fresh workload instance. */
    CrashOutcome runPlan(const std::vector<uint64_t> &plan);

    /** Sweep every single crash site. */
    ExplorerReport exploreSingles();

    /** Singles plus opts.pairSamples sampled crash pairs. */
    ExplorerReport explore();

    /**
     * Delta-debug @p plan (which must fail) to a locally-minimal
     * failing reproducer: no entry can be dropped and no entry can
     * be halved or decremented without the failure disappearing.
     * Deterministic: same plan in, same reproducer out.
     */
    std::vector<uint64_t> shrink(const std::vector<uint64_t> &plan);

  private:
    CrashWorkloadFactory factory;
    ExplorerOptions opts;
};

} // namespace xpc::sim

#endif // XPC_SIM_EXPLORER_HH
