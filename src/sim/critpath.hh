/**
 * @file
 * Per-request critical-path reconstruction over the trace ring.
 *
 * The simulator's calls are synchronous: one client request is a
 * single chain of nested spans across lanes (client, servers, engine,
 * kernel phases), all stamped with the same RequestId by the tracer.
 * The analyzer rebuilds those spans into intervals, then walks the
 * request's time window attributing every cycle to the *innermost*
 * span active at that instant - so the per-span cycle totals sum to
 * exactly the request's end-to-end simulated cycles (the acceptance
 * invariant of the profiler; cycles nobody claimed land in the
 * "(untracked)" bucket rather than vanishing).
 *
 * Wraparound and crash unwinds degrade gracefully: a span whose
 * Begin was overwritten is clamped to the snapshot's start, a span
 * that never Ended (fault-injected kill, trace cut mid-call) is
 * clamped to the request's last event, and the report is marked
 * incomplete instead of lying.
 */

#ifndef XPC_SIM_CRITPATH_HH
#define XPC_SIM_CRITPATH_HH

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "sim/request.hh"
#include "sim/stats.hh"
#include "sim/trace.hh"

namespace xpc::critpath {

/** One slice of a request's critical path. */
struct Segment
{
    const char *cat = "";
    const char *name = "";
    uint32_t tid = 0;      ///< lane the cycles were spent on
    uint64_t begin = 0;    ///< first cycle of the slice
    uint64_t cycles = 0;   ///< cycles attributed to it
};

/** Memory-hierarchy events attributed to the request. */
struct MemRollup
{
    uint64_t l1Fills = 0;
    uint64_t l1FillCycles = 0;
    uint64_t tlbWalks = 0;
    uint64_t tlbWalkCycles = 0;
};

/** Everything reconstructed about one request. */
struct RequestReport
{
    req::RequestId id = 0;
    uint64_t startTs = 0;
    uint64_t endTs = 0;
    /** False when spans were clamped (ring wraparound, a call that
     *  never returned) - totals are then lower bounds. */
    bool complete = true;
    /** Distinct lanes the request's spans and flow arcs touched. */
    uint32_t lanes = 0;
    /** True when the flow arc has both its start and end anchor. */
    bool flowClosed = false;
    /** Time-ordered critical path (consecutive same-span merged). */
    std::vector<Segment> path;
    /** Per-span-name cycle totals, largest first. */
    std::vector<std::pair<std::string, uint64_t>> spanCycles;
    MemRollup mem;

    uint64_t total() const { return endTs - startTs; }
    /** Sum of spanCycles - equals total() by construction. */
    uint64_t attributed() const;
};

/** Reconstruct every request found in @p events (snapshot order =
 *  record order, as returned by Tracer::events()). */
std::vector<RequestReport>
analyze(const std::vector<trace::TraceEvent> &events);

/** The report for request @p id, if present. */
const RequestReport *
find(const std::vector<RequestReport> &reports, req::RequestId id);

/** Multi-line human-readable report for one request. Lane names
 *  resolve through @p tracer (pass Tracer::global()). */
std::string formatReport(const RequestReport &r,
                         const trace::Tracer &tracer);

/** xpctop-style aggregate: per-span cycles over all requests, hottest
 *  first, with request count and p50/p99 of end-to-end cycles. */
std::string formatTop(const std::vector<RequestReport> &reports);

/**
 * Aggregates per-request totals and per-span attributions into
 * Distributions registered under one StatGroup ("critpath"), so
 * benches export p50/p99 through the registry and BENCH_*.json.
 */
class CritPathStats
{
  public:
    explicit CritPathStats(StatGroup *parent = nullptr);

    void add(const RequestReport &r);

    void
    addAll(const std::vector<RequestReport> &reports)
    {
        for (const RequestReport &r : reports)
            add(r);
    }

    StatGroup &statGroup() { return group; }
    const Distribution &total() const { return totalCycles; }
    /** Per-span distribution (nullptr if the span never appeared). */
    const Distribution *span(const std::string &name) const;
    const std::map<std::string, std::unique_ptr<Distribution>> &
    spans() const
    {
        return perSpan;
    }

  private:
    StatGroup group{"critpath"};
    Distribution totalCycles;
    std::map<std::string, std::unique_ptr<Distribution>> perSpan;
};

} // namespace xpc::critpath

#endif // XPC_SIM_CRITPATH_HH
