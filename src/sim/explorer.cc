#include "explorer.hh"

#include <algorithm>
#include <sstream>

#include "sim/logging.hh"
#include "sim/random.hh"

namespace xpc::sim {

std::string
planString(const std::vector<uint64_t> &plan)
{
    std::ostringstream os;
    for (size_t i = 0; i < plan.size(); i++) {
        if (i)
            os << "+";
        os << plan[i];
    }
    return os.str();
}

std::vector<CrashOutcome>
ExplorerReport::failures() const
{
    std::vector<CrashOutcome> bad;
    for (const auto &o : outcomes) {
        if (!o.consistent)
            bad.push_back(o);
    }
    return bad;
}

std::string
ExplorerReport::json() const
{
    std::ostringstream os;
    os << "{\"total_sites\":" << totalSites << ",\"census\":{";
    for (size_t i = 0; i < census.size(); i++) {
        if (i)
            os << ",";
        os << "\"" << census[i].first << "\":" << census[i].second;
    }
    os << "},\"runs\":" << outcomes.size()
       << ",\"failures\":" << failures().size() << ",\"outcomes\":[";
    for (size_t i = 0; i < outcomes.size(); i++) {
        const CrashOutcome &o = outcomes[i];
        if (i)
            os << ",";
        os << "{\"plan\":\"" << planString(o.plan)
           << "\",\"fired\":" << o.fired
           << ",\"consistent\":" << (o.consistent ? "true" : "false");
        if (!o.detail.empty())
            os << ",\"detail\":\"" << o.detail << "\"";
        os << "}";
    }
    os << "]}";
    return os.str();
}

uint64_t
Explorer::countSites(
    std::vector<std::pair<std::string, uint64_t>> *census_out)
{
    auto w = factory();
    FaultInjector inj{FaultPlan{}};
    inj.armCrashPlan({});
    w->run(inj);
    panic_if(inj.crashed(), "baseline run crashed with an empty plan");
    if (census_out) {
        census_out->assign(inj.siteCensus().begin(),
                           inj.siteCensus().end());
    }
    return inj.crashSitesVisited();
}

CrashOutcome
Explorer::runPlan(const std::vector<uint64_t> &plan)
{
    CrashOutcome out;
    out.plan = plan;

    auto w = factory();
    FaultInjector inj{FaultPlan{}};
    inj.armCrashPlan(plan);
    w->run(inj);

    uint32_t rounds = 0;
    while (inj.crashed()) {
        if (++rounds > opts.maxRecoveryRounds) {
            out.consistent = false;
            out.detail = "recovery crash-looped";
            break;
        }
        // Acknowledge the power cut: the harness (the workload's
        // recover path) discards the volatile state; durable writes
        // flow again for journal replay.
        inj.clearCrashed();
        std::string err = w->recoverAndVerify(inj);
        if (inj.crashed()) {
            // Recovery itself hit the next armed site (a pair plan):
            // crash again, recover again.
            continue;
        }
        if (!err.empty()) {
            out.consistent = false;
            out.detail = err;
        }
        break;
    }
    out.fired = inj.crashesFired().size();
    return out;
}

ExplorerReport
Explorer::exploreSingles()
{
    ExplorerReport report;
    report.totalSites = countSites(&report.census);
    for (uint64_t site = 0; site < report.totalSites; site++)
        report.outcomes.push_back(runPlan({site}));
    return report;
}

ExplorerReport
Explorer::explore()
{
    ExplorerReport report = exploreSingles();
    if (opts.pairSamples == 0 || report.totalSites == 0)
        return report;
    Rng rng(opts.pairSeed);
    for (uint64_t i = 0; i < opts.pairSamples; i++) {
        uint64_t first = rng.nextBounded(report.totalSites);
        // The second entry is relative: "this many sites into the
        // recovery that follows the first crash". Recovery's site
        // count differs from the baseline's, so sampling from the
        // baseline range is only a heuristic; a second entry past
        // recovery's end simply never fires (fired == 1).
        uint64_t second = rng.nextBounded(report.totalSites);
        report.outcomes.push_back(runPlan({first, second}));
    }
    return report;
}

std::vector<uint64_t>
Explorer::shrink(const std::vector<uint64_t> &plan)
{
    auto fails = [&](const std::vector<uint64_t> &p) {
        return !runPlan(p).consistent;
    };
    panic_if(plan.empty(), "cannot shrink an empty plan");
    panic_if(!fails(plan),
             "shrink needs a failing plan ('%s' is consistent)",
             planString(plan).c_str());

    std::vector<uint64_t> cur = plan;
    bool changed = true;
    while (changed) {
        changed = false;
        // Pass 1: drop entries (left to right, restarting the scan
        // after each successful drop keeps the order deterministic).
        for (size_t i = 0; i < cur.size() && cur.size() > 1;) {
            std::vector<uint64_t> cand = cur;
            cand.erase(cand.begin() + long(i));
            if (fails(cand)) {
                cur = std::move(cand);
                changed = true;
            } else {
                i++;
            }
        }
        // Pass 2: minimize each entry's value - try halving (fast
        // descent), then decrementing (local minimality).
        for (size_t i = 0; i < cur.size(); i++) {
            while (cur[i] > 0) {
                std::vector<uint64_t> cand = cur;
                cand[i] = cur[i] / 2;
                if (fails(cand)) {
                    cur = std::move(cand);
                    changed = true;
                    continue;
                }
                cand = cur;
                cand[i] = cur[i] - 1;
                if (fails(cand)) {
                    cur = std::move(cand);
                    changed = true;
                    continue;
                }
                break;
            }
        }
    }
    return cur;
}

} // namespace xpc::sim
