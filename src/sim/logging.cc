#include "logging.hh"

#include <cstdarg>

namespace xpc {

namespace {
bool quietFlag = false;
} // namespace

void
setLogQuiet(bool quiet)
{
    quietFlag = quiet;
}

bool
logQuiet()
{
    return quietFlag;
}

namespace detail {

std::string
logFormat(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    va_list copy;
    va_copy(copy, args);
    int len = std::vsnprintf(nullptr, 0, fmt, copy);
    va_end(copy);
    std::string out;
    if (len > 0) {
        out.resize(size_t(len) + 1);
        std::vsnprintf(out.data(), out.size(), fmt, args);
        out.resize(size_t(len));
    }
    va_end(args);
    return out;
}

void
logPanic(const char *file, int line, std::string msg)
{
    std::fprintf(stderr, "panic: %s (%s:%d)\n", msg.c_str(), file, line);
    std::abort();
}

void
logFatal(const char *file, int line, std::string msg)
{
    std::fprintf(stderr, "fatal: %s (%s:%d)\n", msg.c_str(), file, line);
    std::exit(1);
}

void
logWarn(std::string msg)
{
    if (!quietFlag)
        std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
logInform(std::string msg)
{
    if (!quietFlag)
        std::fprintf(stdout, "info: %s\n", msg.c_str());
}

} // namespace detail
} // namespace xpc
