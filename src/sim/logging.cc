#include "logging.hh"

#include <cstdarg>

#include "trace.hh"

namespace xpc {

namespace {

bool quietFlag = false;
LogSink sinkFn; // empty = default stdio sink

/** stdio behaviour when no sink is installed. */
void
defaultSink(LogLevel level, const std::string &msg)
{
    switch (level) {
      case LogLevel::Panic:
        std::fprintf(stderr, "panic: %s\n", msg.c_str());
        break;
      case LogLevel::Fatal:
        std::fprintf(stderr, "fatal: %s\n", msg.c_str());
        break;
      case LogLevel::Warn:
        if (!quietFlag)
            std::fprintf(stderr, "warn: %s\n", msg.c_str());
        break;
      case LogLevel::Inform:
        if (!quietFlag)
            std::fprintf(stdout, "info: %s\n", msg.c_str());
        break;
    }
}

/** Route one record through the sink and the tracer. */
void
emit(LogLevel level, const std::string &msg)
{
    trace::Tracer &t = trace::Tracer::global();
    if (t.enabled())
        t.instantNow("log", logLevelName(level), 0, msg);
    if (sinkFn)
        sinkFn(level, msg);
    else
        defaultSink(level, msg);
}

} // namespace

const char *
logLevelName(LogLevel level)
{
    switch (level) {
      case LogLevel::Panic:
        return "panic";
      case LogLevel::Fatal:
        return "fatal";
      case LogLevel::Warn:
        return "warn";
      case LogLevel::Inform:
        return "inform";
    }
    return "unknown";
}

void
setLogSink(LogSink sink)
{
    sinkFn = std::move(sink);
}

void
setLogQuiet(bool quiet)
{
    quietFlag = quiet;
}

bool
logQuiet()
{
    return quietFlag;
}

namespace detail {

std::string
logFormat(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    va_list copy;
    va_copy(copy, args);
    int len = std::vsnprintf(nullptr, 0, fmt, copy);
    va_end(copy);
    std::string out;
    if (len > 0) {
        out.resize(size_t(len) + 1);
        std::vsnprintf(out.data(), out.size(), fmt, args);
        out.resize(size_t(len));
    }
    va_end(args);
    return out;
}

void
logPanic(const char *file, int line, std::string msg)
{
    emit(LogLevel::Panic,
         msg + " (" + file + ":" + std::to_string(line) + ")");
    std::abort();
}

void
logFatal(const char *file, int line, std::string msg)
{
    emit(LogLevel::Fatal,
         msg + " (" + file + ":" + std::to_string(line) + ")");
    std::exit(1);
}

void
logWarn(std::string msg)
{
    emit(LogLevel::Warn, msg);
}

void
logInform(std::string msg)
{
    emit(LogLevel::Inform, msg);
}

} // namespace detail
} // namespace xpc
