/**
 * @file
 * Fixed-memory log-bucketed latency histogram (HDR-histogram style).
 *
 * The keep-all-samples Distribution (sim/stats.hh) is exact but
 * unbounded: an open-loop run pushing 100k+ requests through the mesh
 * would allocate per sample and sort per query. Histogram is its
 * always-on sibling: record() is O(1) and allocation-free, memory is
 * a fixed ~15 KB bucket array regardless of sample count, and
 * quantile queries walk the buckets with a bounded relative error of
 * 2^-subBucketBits (~3.1%). min, max, count, sum and mean are exact.
 *
 * Bucketing: values below 2^subBucketBits land in unit-width buckets
 * (exact); above that, each power-of-two range is split into
 * 2^subBucketBits equal sub-buckets, so bucket width scales with
 * magnitude and the relative error stays constant across the full
 * 64-bit range. This is the gem5 Stats / HdrHistogram layout.
 *
 * merge() adds another histogram bucket-wise; because the layout is
 * static, merging is exact and associative - shards can fold their
 * per-core histograms in any order and reach byte-identical state.
 *
 * Empty-histogram queries mirror Distribution: min/max/mean/quantile
 * return NaN, never panic; q outside [0, 1] is a caller bug and
 * panics.
 */

#ifndef XPC_SIM_HISTOGRAM_HH
#define XPC_SIM_HISTOGRAM_HH

#include <array>
#include <cstdint>
#include <iosfwd>

namespace xpc {

class Histogram
{
  public:
    /** Sub-buckets per power of two; relative error is 2^-this. */
    static constexpr uint32_t subBucketBits = 5;
    static constexpr uint64_t subBucketCount = uint64_t(1)
                                               << subBucketBits;
    /** Unit buckets + subBucketCount per exponent in [bits, 63]. */
    static constexpr size_t bucketCount =
        size_t(subBucketCount) * (65 - subBucketBits);

    /** Record one sample of @p value cycles. O(1), allocation-free. */
    void record(uint64_t value) { recordN(value, 1); }

    /** Record @p n samples of the same @p value. */
    void recordN(uint64_t value, uint64_t n);

    /** Fold @p other into this histogram (exact, associative). */
    void merge(const Histogram &other);

    void reset();

    uint64_t count() const { return total; }
    double sum() const { return double(sumValues); }

    /** Exact moments; NaN when empty. */
    double min() const;
    double max() const;
    double mean() const;

    /**
     * The q-quantile for q in [0, 1]: the smallest recorded bucket
     * boundary at or above rank ceil(q * count), clamped into
     * [min, max] so quantile(0) == min() and quantile(1) == max()
     * exactly. NaN when empty; q outside [0, 1] panics.
     */
    double quantile(double q) const;

    /** Raw bucket count (tests / exporters). */
    uint64_t bucketValue(size_t index) const { return buckets[index]; }

    /** Smallest / largest value mapping to bucket @p index. */
    static uint64_t bucketLow(size_t index);
    static uint64_t bucketHigh(size_t index);
    /** The bucket @p value lands in. */
    static size_t bucketIndex(uint64_t value);

    /**
     * One-line JSON summary {"count":...,"sum":...,"mean":...,
     * "min":...,"max":...,"p50":...,"p99":...,"p999":...} with
     * non-finite values (the empty histogram) mapped to null,
     * matching the BENCH json convention.
     */
    void summaryJson(std::ostream &os) const;

  private:
    std::array<uint64_t, bucketCount> buckets{};
    uint64_t total = 0;
    uint64_t sumValues = 0;
    uint64_t minValue = ~uint64_t(0);
    uint64_t maxValue = 0;
};

} // namespace xpc

#endif // XPC_SIM_HISTOGRAM_HH
