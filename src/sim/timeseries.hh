/**
 * @file
 * Windowed time-series over the simulated cycle clock.
 *
 * A TimeSeries buckets events into fixed-width windows of simulated
 * cycles and keeps one value per window per named channel. Counter
 * channels accumulate (offered requests, goodput, sheds); gauge
 * channels keep the last sample of the window and carry it forward
 * across empty windows (in-flight depth, admission backlog, breaker
 * state), so curves render as step functions. This is what makes
 * overload dynamics *visible*: metastable-failure onset shows up as
 * the goodput channel decaying while offered stays flat, and
 * post-crash recovery time is the gap until goodput returns to its
 * pre-kill level.
 *
 * Everything is keyed by caller-supplied simulated timestamps, so
 * recording costs no simulated cycles and two same-seed runs produce
 * byte-identical series. Export targets: a stable JSON document (one
 * array per channel, window order) for the BENCH/loadgen reports,
 * and Perfetto counter tracks (one "C" event per window) so the
 * curves land beside the causal trace in the same UI.
 */

#ifndef XPC_SIM_TIMESERIES_HH
#define XPC_SIM_TIMESERIES_HH

#include <cstdint>
#include <deque>
#include <iosfwd>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace xpc::trace {
class Tracer;
}

namespace xpc {

class TimeSeries
{
  public:
    using ChannelId = size_t;

    explicit TimeSeries(Cycles window_cycles);

    uint64_t windowCycles() const { return window; }

    /** Create (or find) an accumulating channel named @p name. */
    ChannelId counterChannel(const std::string &name);
    /** Create (or find) a last-sample-wins channel named @p name. */
    ChannelId gaugeChannel(const std::string &name);

    /** Accumulate @p n into @p ch's window containing cycle @p t. */
    void add(ChannelId ch, uint64_t t, double n = 1);

    /** Record gauge sample @p v at cycle @p t (last in window wins). */
    void sample(ChannelId ch, uint64_t t, double v);

    /** Look up an existing channel by name without creating it.
     *  @return true and set @p out when the channel exists. */
    bool findChannel(const std::string &name, ChannelId &out) const;

    /** Windows materialized so far (max over channels). */
    size_t windowCount() const;

    /**
     * Value of @p ch in window @p w: counters default to 0, gauges
     * carry the last earlier sample forward (NaN before the first).
     */
    double at(ChannelId ch, size_t w) const;

    /** Drop all recorded values; channels and window width stay. */
    void reset();

    /**
     * Stable JSON: {"window_cycles":W,"windows":N,
     * "channels":{"name":[...],...}} with channels in creation order
     * and non-finite values as null.
     */
    void dumpJson(std::ostream &os, int indent = 0) const;

    /**
     * Emit one Perfetto counter sample per channel per window at the
     * window-start timestamp onto lane @p tid. No-op while the
     * tracer is disabled. The channel names are handed to the tracer
     * by pointer, so this TimeSeries must outlive the trace export
     * (the same static-lifetime rule every probe site follows).
     */
    void exportCounterTracks(trace::Tracer &tracer,
                             uint32_t tid) const;

  private:
    struct Channel
    {
        std::string name;
        bool isGauge = false;
        std::vector<double> vals;
        std::vector<uint8_t> seen; ///< gauge: window has a sample
    };

    ChannelId makeChannel(const std::string &name, bool gauge);
    void ensureWindow(Channel &ch, size_t w);

    uint64_t window;
    /** deque: stable element addresses for the exported name ptrs. */
    std::deque<Channel> channels;
};

} // namespace xpc

#endif // XPC_SIM_TIMESERIES_HH
