#include "phase.hh"

namespace xpc {

const char *
phaseName(Phase phase)
{
    switch (phase) {
      case Phase::Trap:
        return "trap";
      case Phase::IpcLogic:
        return "ipc_logic";
      case Phase::ProcessSwitch:
        return "process_switch";
      case Phase::Restore:
        return "restore";
      case Phase::Transfer:
        return "transfer";
      case Phase::Trampoline:
        return "trampoline";
      case Phase::Xcall:
        return "xcall";
      case Phase::Handler:
        return "handler";
      case Phase::Xret:
        return "xret";
      case Phase::OneWay:
        return "one_way";
      case Phase::RoundTrip:
        return "round_trip";
    }
    return "unknown";
}

PhaseStats::PhaseStats(const char *name, StatGroup *parent)
    : group(name, parent)
{
    for (uint32_t i = 0; i < phaseCount; i++)
        group.addDistribution(phaseName(Phase(i)), &perPhase[i]);
}

void
PhaseStats::reset()
{
    for (uint32_t i = 0; i < phaseCount; i++) {
        perPhase[i].reset();
        lastVal[i] = 0;
    }
}

} // namespace xpc
