#include "histogram.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <ostream>

#include "logging.hh"

namespace xpc {

namespace {

constexpr double histNaN = std::numeric_limits<double>::quiet_NaN();

/** Format like BenchReport::num: integral doubles without a point,
 *  everything else %.6g, non-finite as null (JSON has no NaN). */
void
emitNum(std::ostream &os, double v)
{
    if (!std::isfinite(v)) {
        os << "null";
        return;
    }
    char buf[64];
    if (v == std::floor(v) && std::fabs(v) < 1e15)
        std::snprintf(buf, sizeof(buf), "%.0f", v);
    else
        std::snprintf(buf, sizeof(buf), "%.6g", v);
    os << buf;
}

} // namespace

size_t
Histogram::bucketIndex(uint64_t value)
{
    if (value < subBucketCount)
        return size_t(value);
    uint32_t exp = 63 - uint32_t(__builtin_clzll(value));
    uint64_t mantissa =
        (value >> (exp - subBucketBits)) - subBucketCount;
    return size_t(subBucketCount +
                  uint64_t(exp - subBucketBits) * subBucketCount +
                  mantissa);
}

uint64_t
Histogram::bucketLow(size_t index)
{
    if (index < subBucketCount)
        return index;
    uint64_t shift = (index - subBucketCount) / subBucketCount;
    uint64_t mantissa = (index - subBucketCount) % subBucketCount;
    return (subBucketCount + mantissa) << shift;
}

uint64_t
Histogram::bucketHigh(size_t index)
{
    if (index < subBucketCount)
        return index;
    uint64_t shift = (index - subBucketCount) / subBucketCount;
    return bucketLow(index) + ((uint64_t(1) << shift) - 1);
}

void
Histogram::recordN(uint64_t value, uint64_t n)
{
    if (n == 0)
        return;
    buckets[bucketIndex(value)] += n;
    total += n;
    sumValues += value * n;
    minValue = std::min(minValue, value);
    maxValue = std::max(maxValue, value);
}

void
Histogram::merge(const Histogram &other)
{
    if (other.total == 0)
        return;
    for (size_t i = 0; i < bucketCount; i++)
        buckets[i] += other.buckets[i];
    total += other.total;
    sumValues += other.sumValues;
    minValue = std::min(minValue, other.minValue);
    maxValue = std::max(maxValue, other.maxValue);
}

void
Histogram::reset()
{
    buckets.fill(0);
    total = 0;
    sumValues = 0;
    minValue = ~uint64_t(0);
    maxValue = 0;
}

double
Histogram::min() const
{
    return total == 0 ? histNaN : double(minValue);
}

double
Histogram::max() const
{
    return total == 0 ? histNaN : double(maxValue);
}

double
Histogram::mean() const
{
    return total == 0 ? histNaN : double(sumValues) / double(total);
}

double
Histogram::quantile(double q) const
{
    panic_if(q < 0 || q > 1, "quantile %f out of [0,1]", q);
    if (total == 0)
        return histNaN;
    // Rank of the wanted sample, 1-based; q=0 wants the first.
    uint64_t rank = uint64_t(std::ceil(q * double(total)));
    rank = std::max<uint64_t>(rank, 1);
    rank = std::min(rank, total);
    uint64_t seen = 0;
    for (size_t i = 0; i < bucketCount; i++) {
        seen += buckets[i];
        if (seen >= rank) {
            // Report the bucket's upper bound (the value every
            // sample in it is <=), clamped into the exact observed
            // range so the endpoints stay exact.
            uint64_t v = bucketHigh(i);
            v = std::max(v, minValue);
            v = std::min(v, maxValue);
            return double(v);
        }
    }
    return double(maxValue); // unreachable: seen reaches total
}

void
Histogram::summaryJson(std::ostream &os) const
{
    os << "{\"count\":" << total << ",\"sum\":";
    emitNum(os, double(sumValues));
    os << ",\"mean\":";
    emitNum(os, mean());
    os << ",\"min\":";
    emitNum(os, min());
    os << ",\"max\":";
    emitNum(os, max());
    os << ",\"p50\":";
    emitNum(os, quantile(0.5));
    os << ",\"p99\":";
    emitNum(os, quantile(0.99));
    os << ",\"p999\":";
    emitNum(os, quantile(0.999));
    os << "}";
}

} // namespace xpc
