#include "fault_injector.hh"

#include <algorithm>
#include <set>

#include "sim/logging.hh"
#include "sim/random.hh"
#include "sim/trace.hh"

namespace xpc {

const char *
faultOpName(FaultOp op)
{
    switch (op) {
      case FaultOp::KillServer:
        return "kill-server";
      case FaultOp::HangServer:
        return "hang-server";
      case FaultOp::RevokeSeg:
        return "revoke-seg";
      case FaultOp::CorruptLinkage:
        return "corrupt-linkage";
      case FaultOp::EngineException:
        return "engine-exception";
      case FaultOp::CopyFault:
        return "copy-fault";
      case FaultOp::StallServer:
        return "stall-server";
      case FaultOp::SlowServer:
        return "slow-server";
    }
    return "unknown";
}

const char *
faultPhaseName(FaultPhase phase)
{
    switch (phase) {
      case FaultPhase::PreXcall:
        return "pre-xcall";
      case FaultPhase::InHandler:
        return "in-handler";
      case FaultPhase::PreXret:
        return "pre-xret";
    }
    return "unknown";
}

FaultPlan
FaultPlan::generate(uint64_t seed, uint64_t count, uint64_t call_span,
                    uint32_t op_mask)
{
    panic_if(call_span < count,
             "fault plan wants %lu faults in only %lu calls",
             (unsigned long)count, (unsigned long)call_span);
    if (op_mask == 0)
        op_mask = (1u << faultOpCount) - 1;

    std::vector<FaultOp> ops;
    for (uint32_t i = 0; i < faultOpCount; i++) {
        if (op_mask & (1u << i))
            ops.push_back(FaultOp(i));
    }
    panic_if(ops.empty(), "fault plan with an empty op mask");

    Rng rng(seed);

    // Distinct call sequence numbers (at most one fault per call).
    std::set<uint64_t> seqs;
    while (seqs.size() < count)
        seqs.insert(1 + rng.nextBounded(call_span));

    FaultPlan plan;
    plan.seed = seed;
    for (uint64_t s : seqs) {
        FaultEvent ev;
        ev.callSeq = s;
        ev.op = ops[rng.nextBounded(ops.size())];
        switch (ev.op) {
          case FaultOp::KillServer:
            ev.phase = FaultPhase(rng.nextBounded(3));
            break;
          case FaultOp::HangServer:
          case FaultOp::RevokeSeg:
            ev.phase = FaultPhase::InHandler;
            break;
          case FaultOp::CorruptLinkage:
            ev.phase = rng.nextBounded(2) == 0 ? FaultPhase::InHandler
                                               : FaultPhase::PreXret;
            break;
          case FaultOp::EngineException:
            ev.phase = FaultPhase::PreXcall;
            // 1 = InvalidXEntry, 2 = InvalidXcallCap (engine codes).
            ev.arg = 1 + uint32_t(rng.nextBounded(2));
            break;
          case FaultOp::CopyFault:
            ev.phase = FaultPhase::PreXcall;
            break;
          case FaultOp::StallServer:
            ev.phase = FaultPhase::InHandler;
            break;
          case FaultOp::SlowServer:
            ev.phase = FaultPhase::InHandler;
            // Run the handler at 2..8 x its normal cost.
            ev.arg = 2 + uint32_t(rng.nextBounded(7));
            break;
        }
        plan.events.push_back(ev);
    }
    // std::set iteration is ordered, but be explicit about the
    // contract: events sorted by firing sequence.
    std::sort(plan.events.begin(), plan.events.end(),
              [](const FaultEvent &a, const FaultEvent &b) {
                  return a.callSeq < b.callSeq;
              });
    return plan;
}

const FaultEvent *
FaultInjector::eventAt(uint64_t seq) const
{
    auto it = std::lower_bound(
        plan_.events.begin(), plan_.events.end(), seq,
        [](const FaultEvent &ev, uint64_t s) { return ev.callSeq < s; });
    if (it == plan_.events.end() || it->callSeq != seq)
        return nullptr;
    return &*it;
}

void
FaultInjector::recordFired(const FaultEvent &ev)
{
    log_.push_back(ev);
    firedPerOp_[uint32_t(ev.op)]++;
    trace::Tracer::global().instantNow("fault", faultOpName(ev.op), 0);
}

uint64_t
FaultInjector::atCrashSite(const char *kind)
{
    if (!enabled || crashed_)
        return siteSeq_;
    uint64_t site = siteSeq_++;
    siteTotal_++;
    siteCensus_[kind]++;
    if (crashNext_ < crashPlan_.size() &&
        site == crashPlan_[crashNext_]) {
        crashNext_++;
        crashed_ = true;
        // Later plan entries count from here: a {12, 3} plan crashes
        // again 3 sites into whatever recovery follows this firing.
        siteSeq_ = 0;
        crashLog_.push_back(site);
        trace::Tracer::global().instantNow("fault", "crash-site", 0,
                                           kind);
    }
    return site;
}

uint64_t
FaultInjector::firedCount(FaultOp op) const
{
    return firedPerOp_[uint32_t(op)];
}

uint32_t
FaultInjector::firedKinds() const
{
    uint32_t kinds = 0;
    for (uint32_t i = 0; i < faultOpCount; i++) {
        if (firedPerOp_[i] > 0)
            kinds++;
    }
    return kinds;
}

std::string
FaultInjector::reportJson() const
{
    std::string s = "{\"seed\":" + std::to_string(plan_.seed) +
                    ",\"calls\":" + std::to_string(seq_) +
                    ",\"planned\":" + std::to_string(plan_.events.size()) +
                    ",\"injected\":" + std::to_string(log_.size()) +
                    ",\"by_kind\":{";
    for (uint32_t i = 0; i < faultOpCount; i++) {
        if (i > 0)
            s += ",";
        s += "\"" + std::string(faultOpName(FaultOp(i))) +
             "\":" + std::to_string(firedPerOp_[i]);
    }
    s += "}}";
    return s;
}

} // namespace xpc
