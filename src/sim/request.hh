/**
 * @file
 * Request-scoped causal context: the process-global cursor that says
 * "which cross-process call chain is executing right now, and in
 * which phase".
 *
 * Every top-level call (any transport, either kernel, or the raw XPC
 * runtime) mints a RequestId and binds it for the call's dynamic
 * extent with a RequestScope; nested calls - handover via seg-mask,
 * scratch calls, kernel-mediated hops - inherit the active id, so one
 * client request keeps a single identity across every process it
 * migrates through. The tracer stamps the active (request, phase)
 * pair onto every event it records, and the memory system charges
 * cache/TLB traffic to the same pair, which is what lets the
 * critical-path profiler (sim/critpath.hh) say "request #42 spent 61%
 * of its cycles on relay-seg TLB walks".
 *
 * The context is purely observational: binding or minting never
 * spends simulated cycles, so cycle output is byte-identical whether
 * anyone looks at it or not.
 */

#ifndef XPC_SIM_REQUEST_HH
#define XPC_SIM_REQUEST_HH

#include <cstddef>
#include <cstdint>
#include <vector>

namespace xpc::req {

/** Identity of one top-level cross-process call chain; 0 = none. */
using RequestId = uint64_t;

/** Sentinel phase index: no phase scope is active. */
inline constexpr uint32_t phaseNone = 0xffffffffu;

/** The process-wide request/phase cursor. */
class RequestContext
{
  public:
    static RequestContext &global();

    /** The request bound to the executing call chain (0 if none). */
    RequestId
    current() const
    {
        return reqs.empty() ? 0 : reqs.back();
    }

    /** Innermost active phase index (phaseNone if none). */
    uint32_t
    currentPhase() const
    {
        return phases.empty() ? phaseNone : phases.back();
    }

    /** Requests minted so far (ids are 1..minted()). */
    uint64_t minted() const { return lastId; }

    /** Nesting depth of the active call chain (0 = idle). */
    size_t depth() const { return reqs.size(); }

    /**
     * Absolute-cycle deadline of the executing call chain (0 = no
     * deadline). Deadlines are absolute against the monotonic cycle
     * clock, so "propagating and decrementing the budget across a
     * hop" is automatic: every nested hop sees the same absolute
     * limit, and whatever cycles an upstream server burned have
     * already shrunk the remaining budget. Nested scopes can only
     * tighten the deadline, never extend it.
     */
    uint64_t
    currentDeadline() const
    {
        return deadlines.empty() ? 0 : deadlines.back();
    }

    void pushPhase(uint32_t phase) { phases.push_back(phase); }

    void
    popPhase()
    {
        if (!phases.empty())
            phases.pop_back();
    }

    /** Drop all bindings and restart id numbering (tests, examples
     *  that want the traced request to be #1). */
    void
    reset()
    {
        reqs.clear();
        phases.clear();
        deadlines.clear();
        lastId = 0;
    }

  private:
    friend class RequestScope;
    friend class DeadlineScope;

    RequestId mint() { return ++lastId; }

    std::vector<RequestId> reqs;
    std::vector<uint32_t> phases;
    std::vector<uint64_t> deadlines;
    uint64_t lastId = 0;
};

/**
 * RAII binding of a call to a request. The outermost scope on the
 * stack mints a fresh id; nested scopes (handover calls, kernel hops
 * made from inside a handler) inherit it, keeping the whole chain
 * under one identity.
 */
class RequestScope
{
  public:
    RequestScope()
    {
        RequestContext &c = RequestContext::global();
        top = c.reqs.empty();
        id_ = top ? c.mint() : c.reqs.back();
        c.reqs.push_back(id_);
    }

    ~RequestScope() { RequestContext::global().reqs.pop_back(); }

    RequestScope(const RequestScope &) = delete;
    RequestScope &operator=(const RequestScope &) = delete;

    RequestId id() const { return id_; }
    /** True when this scope minted the id (start of the chain). */
    bool topLevel() const { return top; }

  private:
    RequestId id_ = 0;
    bool top = false;
};

/**
 * RAII deadline binding. Pass the absolute cycle by which the work
 * under this scope must finish (0 = "no deadline of my own"). The
 * effective deadline is the minimum of the enclosing one and the one
 * passed in, so an inner hop can tighten the budget but a nested call
 * can never outlive its caller's deadline. Like RequestScope this is
 * purely observational - pushing a deadline spends no cycles; the
 * call paths decide what to do when the clock passes it.
 */
class DeadlineScope
{
  public:
    explicit DeadlineScope(uint64_t absolute_deadline)
    {
        RequestContext &c = RequestContext::global();
        uint64_t outer = c.currentDeadline();
        uint64_t eff = absolute_deadline;
        if (outer != 0 && (eff == 0 || outer < eff))
            eff = outer;
        c.deadlines.push_back(eff);
    }

    ~DeadlineScope() { RequestContext::global().deadlines.pop_back(); }

    DeadlineScope(const DeadlineScope &) = delete;
    DeadlineScope &operator=(const DeadlineScope &) = delete;
};

/** RAII phase binding; memory traffic inside is charged to it. */
class PhaseScope
{
  public:
    explicit PhaseScope(uint32_t phase_index)
    {
        RequestContext::global().pushPhase(phase_index);
    }

    ~PhaseScope() { RequestContext::global().popPhase(); }

    PhaseScope(const PhaseScope &) = delete;
    PhaseScope &operator=(const PhaseScope &) = delete;
};

/**
 * Trace lane (Chrome tid) of a logical kernel thread. Core lanes use
 * the core id directly (small numbers); thread lanes are offset so
 * the migrating-thread model still renders client and servers as
 * separate, named tracks even though they share core 0.
 */
inline constexpr uint32_t threadLaneBase = 1000;

inline uint32_t
threadLane(uint32_t thread_id)
{
    return threadLaneBase + thread_id;
}

} // namespace xpc::req

#endif // XPC_SIM_REQUEST_HH
