/**
 * @file
 * SLO health observability: regime classification over windowed
 * goodput curves, metastable-failure onset detection, and
 * recovery-time telemetry (DESIGN.md §4i).
 *
 * The open-loop harness (sim/timeseries + apps/loadgen) can *record*
 * overload dynamics; this layer makes them interpretable. An SloSpec
 * states what "healthy" means for one (tenant, service) - a goodput
 * floor relative to a calibrated capacity knee, optionally a p99
 * latency target - and a RegimeTracker classifies every time-series
 * window into one of three regimes:
 *
 *   healthy     goodput meets the floor (or the window is idle);
 *   overloaded  goodput misses the floor while offered load exceeds
 *               the knee - degradation the load fully explains, which
 *               admission control is expected to ride out;
 *   metastable  offered load is back *below* the knee yet goodput
 *               stays below the floor for K consecutive windows - the
 *               sustained-feedback signature of retry storms and open
 *               circuit breakers, a state that will not heal on its
 *               own (Bronson et al., "Metastable Failures in
 *               Distributed Systems").
 *
 * The K-window onset debounce keeps a single bad window from being
 * promoted to a failure regime, and leaving Metastable takes M
 * consecutive healthy windows (exit hysteresis), so the classifier
 * never flaps on boundary values. Every transition is logged with its
 * window and cycle, exportable as Perfetto instants beside the causal
 * trace, and counted in the stats registry.
 *
 * Recovery time - the metric the crash-mid-surge experiment reports -
 * is measured from a named mark (fault injected, surge over, heal
 * ran) to the *start of the first sustained healthy run*: the first
 * window opening M consecutive windows whose raw health condition
 * holds. NaN when the run never becomes healthy again, which is
 * exactly what distinguishes "slow recovery" from "trapped".
 *
 * Everything here is a pure function of the fed window values, costs
 * no simulated cycles, and is default-off: nothing on the paper path
 * constructs a tracker, so fig05/fig06 stay byte-identical.
 */

#ifndef XPC_SIM_SLO_HH
#define XPC_SIM_SLO_HH

#include <cstdint>
#include <iosfwd>
#include <limits>
#include <string>
#include <vector>

#include "sim/stats.hh"
#include "sim/timeseries.hh"
#include "sim/types.hh"

namespace xpc::trace {
class Tracer;
}

namespace xpc::slo {

/** Health regime of one time-series window. */
enum class Regime : uint8_t
{
    Healthy,
    Overloaded,
    Metastable,
};
constexpr size_t regimeCount = 3;
const char *regimeName(Regime r);
/** One-letter code used in the compact JSON timeline. */
char regimeCode(Regime r);

/** What "healthy" means for one (tenant, service) or an aggregate. */
struct SloSpec
{
    /**
     * Calibrated capacity knee, requests per Mcycle (the deadline-
     * free goodput ceiling bench_tail measures). 0 disables the
     * whole layer: nothing is classified, nothing is emitted.
     */
    double kneePerMcycle = 0;
    /**
     * Goodput floor as a fraction of the *expected* goodput
     * min(offered, knee): below the knee a healthy mesh serves what
     * it is offered, above it a healthy mesh saturates at the knee.
     */
    double goodputFloorFrac = 0.7;
    /** Optional p99 latency target in cycles (0 = goodput only). */
    uint64_t p99TargetCycles = 0;
    /** Consecutive degraded-below-knee windows before Metastable. */
    uint32_t metastableWindows = 3;
    /** Consecutive healthy windows to leave Metastable ("sustained
     *  healthy", also the recovery-time endpoint). */
    uint32_t healthyWindows = 2;
    /**
     * observeSeries() sums this many consecutive series windows into
     * one observation. Narrow telemetry windows (good for curves)
     * hold too few requests to classify: at half the knee a 100
     * kcycle window sees single-digit arrivals, and Poisson noise
     * plus the arrival-to-completion lag produces degraded-looking
     * windows in a perfectly healthy mesh. Smoothing trades regime-
     * boundary resolution for counting statistics the floor fraction
     * can survive.
     */
    uint32_t smoothWindows = 1;

    bool enabled() const { return kneePerMcycle > 0; }
};

/** One regime change, stamped with its window and start cycle. */
struct Transition
{
    size_t window = 0;
    uint64_t cycle = 0;
    Regime from = Regime::Healthy;
    Regime to = Regime::Healthy;
};

/** A named timeline annotation (fault injected, surge over, ...). */
struct Mark
{
    std::string name;
    uint64_t cycle = 0;
};

/**
 * The windowed evaluator: feed per-window offered/goodput counts (in
 * window order) and read back the regime timeline, the transition
 * log, and recovery times relative to marks.
 */
class RegimeTracker
{
  public:
    RegimeTracker(std::string label, const SloSpec &spec,
                  Cycles window_cycles);

    const std::string &label() const { return trackerLabel; }
    const SloSpec &spec() const { return sloSpec; }
    /** Cycles per *observation*: the series window width times
     *  SloSpec::smoothWindows. */
    uint64_t windowCycles() const { return window; }

    /**
     * Classify the next window (windows are consecutive from 0).
     * @p offered / @p goodput are absolute counts in the window;
     * @p p99 is the window's p99 latency in cycles (NaN = no latency
     * signal, the latency target then never fails the window).
     */
    Regime observe(double offered, double goodput,
                   double p99 = std::numeric_limits<double>::quiet_NaN());

    /**
     * Replay a whole TimeSeries pair of counter channels through
     * observe(), one call per materialized window.
     */
    void observeSeries(const TimeSeries &ts,
                       TimeSeries::ChannelId offered,
                       TimeSeries::ChannelId goodput);

    /** Annotate the timeline (fault end, surge end, heal, ...). */
    void mark(std::string name, uint64_t cycle);

    const std::vector<Regime> &windows() const { return regimes; }
    const std::vector<Transition> &transitions() const
    {
        return transitionLog;
    }
    const std::vector<Mark> &marks() const { return markLog; }

    /** Did any window classify as Metastable? */
    bool sawMetastable() const
    {
        return windowsMetastable.value() > 0;
    }

    /**
     * Cycles from @p cycle to the start of the first sustained
     * healthy run (healthyWindows consecutive raw-healthy windows)
     * beginning at or after it; 0 when @p cycle already sits inside
     * one, NaN when the timeline never becomes healthy again.
     */
    double recoveryCyclesFrom(uint64_t cycle) const;

    /**
     * Stable JSON: spec, compact regime timeline ("hhoomm..."),
     * per-regime window counts, the transition log, and every mark
     * with its recovery time (NaN -> null).
     */
    void dumpJson(std::ostream &os, int indent = 0) const;

    /**
     * Emit the transition log and marks as Perfetto "slo" instants
     * onto lane @p tid, so regime flips land beside the causal trace
     * and the counter tracks. No-op while the tracer is disabled.
     */
    void exportTrace(trace::Tracer &tracer, uint32_t tid) const;

    /** Registry node "<label>" holding the counters below. */
    StatGroup stats;
    Counter windowsHealthy;
    Counter windowsOverloaded;
    Counter windowsMetastable;
    Counter transitionCount;
    /** Transitions *into* Metastable (the onsets the layer exists
     *  to detect). */
    Counter metastableOnsets;

  private:
    /** Raw per-window health condition, before debounce/hysteresis:
     *  what recovery-time scans look for. */
    std::vector<uint8_t> rawHealthy;

    std::string trackerLabel;
    SloSpec sloSpec;
    uint64_t window;

    std::vector<Regime> regimes;
    std::vector<Transition> transitionLog;
    std::vector<Mark> markLog;

    Regime current = Regime::Healthy;
    uint32_t degradedStreak = 0;
    uint32_t healthyStreak = 0;
};

} // namespace xpc::slo

#endif // XPC_SIM_SLO_HH
