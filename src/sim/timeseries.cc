#include "timeseries.hh"

#include <cmath>
#include <cstdio>
#include <limits>
#include <ostream>

#include "logging.hh"
#include "trace.hh"

namespace xpc {

namespace {

constexpr double tsNaN = std::numeric_limits<double>::quiet_NaN();

void
emitNum(std::ostream &os, double v)
{
    if (!std::isfinite(v)) {
        os << "null";
        return;
    }
    char buf[64];
    if (v == std::floor(v) && std::fabs(v) < 1e15)
        std::snprintf(buf, sizeof(buf), "%.0f", v);
    else
        std::snprintf(buf, sizeof(buf), "%.6g", v);
    os << buf;
}

void
pad(std::ostream &os, int indent)
{
    for (int i = 0; i < indent; i++)
        os << ' ';
}

} // namespace

TimeSeries::TimeSeries(Cycles window_cycles)
    : window(window_cycles.value())
{
    panic_if(window == 0, "time-series window must be non-zero");
}

TimeSeries::ChannelId
TimeSeries::makeChannel(const std::string &name, bool gauge)
{
    for (size_t i = 0; i < channels.size(); i++) {
        if (channels[i].name == name) {
            panic_if(channels[i].isGauge != gauge,
                     "channel '%s' redefined with a different kind",
                     name.c_str());
            return i;
        }
    }
    Channel ch;
    ch.name = name;
    ch.isGauge = gauge;
    channels.push_back(std::move(ch));
    return channels.size() - 1;
}

bool
TimeSeries::findChannel(const std::string &name, ChannelId &out) const
{
    for (size_t i = 0; i < channels.size(); i++) {
        if (channels[i].name == name) {
            out = i;
            return true;
        }
    }
    return false;
}

TimeSeries::ChannelId
TimeSeries::counterChannel(const std::string &name)
{
    return makeChannel(name, false);
}

TimeSeries::ChannelId
TimeSeries::gaugeChannel(const std::string &name)
{
    return makeChannel(name, true);
}

void
TimeSeries::ensureWindow(Channel &ch, size_t w)
{
    if (ch.vals.size() <= w) {
        ch.vals.resize(w + 1, 0);
        if (ch.isGauge)
            ch.seen.resize(w + 1, 0);
    }
}

void
TimeSeries::add(ChannelId ch, uint64_t t, double n)
{
    panic_if(ch >= channels.size(), "bad channel id %zu", ch);
    Channel &c = channels[ch];
    panic_if(c.isGauge, "add() on gauge channel '%s'", c.name.c_str());
    size_t w = size_t(t / window);
    ensureWindow(c, w);
    c.vals[w] += n;
}

void
TimeSeries::sample(ChannelId ch, uint64_t t, double v)
{
    panic_if(ch >= channels.size(), "bad channel id %zu", ch);
    Channel &c = channels[ch];
    panic_if(!c.isGauge, "sample() on counter channel '%s'",
             c.name.c_str());
    size_t w = size_t(t / window);
    ensureWindow(c, w);
    c.vals[w] = v;
    c.seen[w] = 1;
}

size_t
TimeSeries::windowCount() const
{
    size_t n = 0;
    for (const Channel &c : channels)
        n = std::max(n, c.vals.size());
    return n;
}

double
TimeSeries::at(ChannelId ch, size_t w) const
{
    panic_if(ch >= channels.size(), "bad channel id %zu", ch);
    const Channel &c = channels[ch];
    if (!c.isGauge)
        return w < c.vals.size() ? c.vals[w] : 0;
    // Gauge: last sample at or before window w carries forward.
    size_t lim = std::min(w + 1, c.vals.size());
    for (size_t i = lim; i-- > 0;)
        if (c.seen[i])
            return c.vals[i];
    return tsNaN;
}

void
TimeSeries::reset()
{
    for (Channel &c : channels) {
        c.vals.clear();
        c.seen.clear();
    }
}

void
TimeSeries::dumpJson(std::ostream &os, int indent) const
{
    size_t n = windowCount();
    pad(os, indent);
    os << "{\"window_cycles\":" << window << ",\"windows\":" << n
       << ",\n";
    pad(os, indent + 1);
    os << "\"channels\":{";
    bool first_ch = true;
    for (size_t ch = 0; ch < channels.size(); ch++) {
        if (!first_ch)
            os << ",";
        first_ch = false;
        os << "\n";
        pad(os, indent + 2);
        os << "\"" << channels[ch].name << "\":[";
        double carry = tsNaN; // gauges fill forward inline
        for (size_t w = 0; w < n; w++) {
            if (w > 0)
                os << ",";
            double v;
            if (channels[ch].isGauge) {
                if (w < channels[ch].vals.size() &&
                    channels[ch].seen[w])
                    carry = channels[ch].vals[w];
                v = carry;
            } else {
                v = w < channels[ch].vals.size()
                        ? channels[ch].vals[w]
                        : 0;
            }
            emitNum(os, v);
        }
        os << "]";
    }
    if (!channels.empty()) {
        os << "\n";
        pad(os, indent + 1);
    }
    os << "}}";
}

void
TimeSeries::exportCounterTracks(trace::Tracer &tracer,
                                uint32_t tid) const
{
    if (!tracer.enabled())
        return;
    size_t n = windowCount();
    for (const Channel &c : channels) {
        double carry = 0;
        for (size_t w = 0; w < n; w++) {
            double v;
            if (c.isGauge) {
                if (w < c.vals.size() && c.seen[w])
                    carry = c.vals[w];
                v = carry;
            } else {
                v = w < c.vals.size() ? c.vals[w] : 0;
            }
            tracer.counter("load", c.name.c_str(),
                           uint64_t(v < 0 ? 0 : v), w * window, tid);
        }
    }
}

} // namespace xpc
