/**
 * @file
 * Fundamental strong types shared by every simulator component.
 *
 * Cycle counts, virtual addresses and physical addresses are all 64-bit
 * integers at heart; keeping them as distinct types prevents the classic
 * unit-confusion bugs (charging an address as a latency, translating a
 * physical address twice, ...).
 */

#ifndef XPC_SIM_TYPES_HH
#define XPC_SIM_TYPES_HH

#include <compare>
#include <cstddef>
#include <cstdint>

namespace xpc {

/** Simulated clock cycles. Additive; never implicitly an address. */
class Cycles
{
  public:
    constexpr Cycles() : count(0) {}
    constexpr explicit Cycles(uint64_t c) : count(c) {}

    constexpr uint64_t value() const { return count; }

    constexpr Cycles
    operator+(Cycles other) const
    {
        return Cycles(count + other.count);
    }

    constexpr Cycles
    operator-(Cycles other) const
    {
        return Cycles(count - other.count);
    }

    Cycles &
    operator+=(Cycles other)
    {
        count += other.count;
        return *this;
    }

    constexpr Cycles
    operator*(uint64_t n) const
    {
        return Cycles(count * n);
    }

    constexpr auto operator<=>(const Cycles &) const = default;

  private:
    uint64_t count;
};

/** Virtual address in a simulated address space. */
using VAddr = uint64_t;

/** Physical address in simulated DRAM. */
using PAddr = uint64_t;

/** Address-space identifier (one per simulated process). */
using Asid = uint16_t;

/** Simulated hardware thread / core index. */
using CoreId = uint32_t;

/** Page geometry shared by the whole machine (4 KiB pages). */
constexpr uint64_t pageShift = 12;
constexpr uint64_t pageSize = uint64_t(1) << pageShift;
constexpr uint64_t pageMask = pageSize - 1;

/** Round @p addr down to the containing page boundary. */
constexpr uint64_t
pageAlignDown(uint64_t addr)
{
    return addr & ~pageMask;
}

/** Round @p addr up to the next page boundary. */
constexpr uint64_t
pageAlignUp(uint64_t addr)
{
    return (addr + pageMask) & ~pageMask;
}

/** True when @p addr is page aligned. */
constexpr bool
pageAligned(uint64_t addr)
{
    return (addr & pageMask) == 0;
}

} // namespace xpc

#endif // XPC_SIM_TYPES_HH
