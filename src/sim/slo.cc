#include "slo.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <ostream>

#include "sim/logging.hh"
#include "sim/trace.hh"

namespace xpc::slo {

namespace {

constexpr double sloNaN = std::numeric_limits<double>::quiet_NaN();

void
emitNum(std::ostream &os, double v)
{
    if (!std::isfinite(v)) {
        os << "null";
        return;
    }
    char buf[64];
    if (v == std::floor(v) && std::fabs(v) < 1e15)
        std::snprintf(buf, sizeof(buf), "%.0f", v);
    else
        std::snprintf(buf, sizeof(buf), "%.6g", v);
    os << buf;
}

void
pad(std::ostream &os, int indent)
{
    for (int i = 0; i < indent; i++)
        os << ' ';
}

} // namespace

const char *
regimeName(Regime r)
{
    switch (r) {
      case Regime::Healthy: return "healthy";
      case Regime::Overloaded: return "overloaded";
      case Regime::Metastable: return "metastable";
    }
    return "?";
}

char
regimeCode(Regime r)
{
    switch (r) {
      case Regime::Healthy: return 'h';
      case Regime::Overloaded: return 'o';
      case Regime::Metastable: return 'm';
    }
    return '?';
}

RegimeTracker::RegimeTracker(std::string label, const SloSpec &spec,
                             Cycles window_cycles)
    : stats(label), trackerLabel(std::move(label)), sloSpec(spec),
      window(window_cycles.value() *
             std::max<uint32_t>(1, spec.smoothWindows))
{
    panic_if(window == 0, "SLO window must be non-zero");
    panic_if(!spec.enabled(),
             "RegimeTracker needs a calibrated knee (> 0)");
    panic_if(spec.metastableWindows == 0 || spec.healthyWindows == 0,
             "debounce window counts must be >= 1");
    stats.addCounter("windows_healthy", &windowsHealthy);
    stats.addCounter("windows_overloaded", &windowsOverloaded);
    stats.addCounter("windows_metastable", &windowsMetastable);
    stats.addCounter("transitions", &transitionCount);
    stats.addCounter("metastable_onsets", &metastableOnsets);
}

Regime
RegimeTracker::observe(double offered, double goodput, double p99)
{
    const size_t w = regimes.size();
    const double scale = 1e6 / double(window);
    const double offered_rate = offered * scale;
    const double goodput_rate = goodput * scale;
    const double expected =
        std::min(offered_rate, sloSpec.kneePerMcycle);

    // The raw condition, before any debounce: the floor holds on >=,
    // so a window sitting exactly on the boundary is healthy and the
    // classifier cannot flap across it. A NaN p99 (no latency signal
    // this window) never fails the latency clause.
    const bool meets_goodput =
        goodput_rate >= sloSpec.goodputFloorFrac * expected;
    const bool meets_latency =
        sloSpec.p99TargetCycles == 0 ||
        !(p99 > double(sloSpec.p99TargetCycles));
    const bool healthy =
        offered <= 0 || (meets_goodput && meets_latency);
    rawHealthy.push_back(healthy ? 1 : 0);

    Regime next;
    if (healthy) {
        healthyStreak++;
        degradedStreak = 0;
        // Exit hysteresis: one good window inside a retry storm is
        // noise, not recovery. Metastable holds until the healthy
        // streak is sustained.
        if (current == Regime::Metastable &&
            healthyStreak < sloSpec.healthyWindows)
            next = Regime::Metastable;
        else
            next = Regime::Healthy;
    } else {
        healthyStreak = 0;
        if (offered_rate > sloSpec.kneePerMcycle) {
            // Degradation the offered load fully explains. These
            // windows never count toward metastable onset: the
            // definition requires load *below* the knee.
            degradedStreak = 0;
            next = current == Regime::Metastable ? Regime::Metastable
                                                 : Regime::Overloaded;
        } else {
            degradedStreak++;
            next = (current == Regime::Metastable ||
                    degradedStreak >= sloSpec.metastableWindows)
                       ? Regime::Metastable
                       : Regime::Overloaded;
        }
    }

    if (next != current) {
        transitionLog.push_back({w, w * window, current, next});
        transitionCount.inc();
        if (next == Regime::Metastable)
            metastableOnsets.inc();
    }
    current = next;
    regimes.push_back(next);
    switch (next) {
      case Regime::Healthy: windowsHealthy.inc(); break;
      case Regime::Overloaded: windowsOverloaded.inc(); break;
      case Regime::Metastable: windowsMetastable.inc(); break;
    }
    return next;
}

void
RegimeTracker::observeSeries(const TimeSeries &ts,
                             TimeSeries::ChannelId offered,
                             TimeSeries::ChannelId goodput)
{
    const size_t smooth = std::max<uint32_t>(1, sloSpec.smoothWindows);
    panic_if(ts.windowCycles() * smooth != window,
             "series window (%llu) x smooth (%zu) != tracker window "
             "(%llu)",
             (unsigned long long)ts.windowCycles(), smooth,
             (unsigned long long)window);
    // Each observation sums `smooth` consecutive series windows; a
    // partial trailing group is observed as-is (its lower counts read
    // as a lower rate, which can only make the window look idle or
    // below-knee, never falsely overloaded).
    for (size_t w = 0; w < ts.windowCount(); w += smooth) {
        double off = 0, good = 0;
        for (size_t k = w; k < w + smooth && k < ts.windowCount();
             k++) {
            double o = ts.at(offered, k);
            double g = ts.at(goodput, k);
            if (std::isfinite(o))
                off += o;
            if (std::isfinite(g))
                good += g;
        }
        observe(off, good);
    }
}

void
RegimeTracker::mark(std::string name, uint64_t cycle)
{
    markLog.push_back({std::move(name), cycle});
}

double
RegimeTracker::recoveryCyclesFrom(uint64_t cycle) const
{
    const size_t need = sloSpec.healthyWindows;
    const size_t w0 = size_t(cycle / window);
    size_t streak = 0;
    for (size_t w = w0; w < rawHealthy.size(); w++) {
        streak = rawHealthy[w] ? streak + 1 : 0;
        if (streak >= need) {
            const uint64_t start = (w + 1 - need) * window;
            return start <= cycle ? 0 : double(start - cycle);
        }
    }
    return sloNaN;
}

void
RegimeTracker::dumpJson(std::ostream &os, int indent) const
{
    pad(os, indent);
    os << "{\"label\":\"" << trackerLabel << "\",\"spec\":{"
       << "\"knee_per_mcycle\":";
    emitNum(os, sloSpec.kneePerMcycle);
    os << ",\"goodput_floor\":";
    emitNum(os, sloSpec.goodputFloorFrac);
    os << ",\"p99_target_cycles\":" << sloSpec.p99TargetCycles
       << ",\"metastable_windows\":" << sloSpec.metastableWindows
       << ",\"healthy_windows\":" << sloSpec.healthyWindows
       << ",\"smooth_windows\":" << sloSpec.smoothWindows << "},\n";
    pad(os, indent + 1);
    os << "\"window_cycles\":" << window << ",\"regimes\":\"";
    for (Regime r : regimes)
        os << regimeCode(r);
    os << "\",\n";
    pad(os, indent + 1);
    os << "\"counts\":{\"healthy\":" << windowsHealthy.value()
       << ",\"overloaded\":" << windowsOverloaded.value()
       << ",\"metastable\":" << windowsMetastable.value()
       << "},\"metastable\":" << (sawMetastable() ? "true" : "false")
       << ",\n";
    pad(os, indent + 1);
    os << "\"transitions\":[";
    for (size_t i = 0; i < transitionLog.size(); i++) {
        const Transition &t = transitionLog[i];
        os << (i ? "," : "") << "{\"window\":" << t.window
           << ",\"cycle\":" << t.cycle << ",\"from\":\""
           << regimeName(t.from) << "\",\"to\":\"" << regimeName(t.to)
           << "\"}";
    }
    os << "],\n";
    pad(os, indent + 1);
    os << "\"marks\":[";
    for (size_t i = 0; i < markLog.size(); i++) {
        const Mark &m = markLog[i];
        os << (i ? "," : "") << "{\"name\":\"" << m.name
           << "\",\"cycle\":" << m.cycle << ",\"recovery_cycles\":";
        emitNum(os, recoveryCyclesFrom(m.cycle));
        os << "}";
    }
    os << "]}";
}

void
RegimeTracker::exportTrace(trace::Tracer &tracer, uint32_t tid) const
{
    if (!tracer.enabled())
        return;
    for (const Transition &t : transitionLog)
        tracer.instant("slo", regimeName(t.to), t.cycle, tid,
                       trackerLabel);
    for (const Mark &m : markLog)
        tracer.instant("slo", "mark", m.cycle, tid,
                       trackerLabel + ":" + m.name);
}

} // namespace xpc::slo
