/**
 * @file
 * Server-side admission control: a bounded pending-work queue with
 * deterministic load shedding and per-client fair-share accounting.
 *
 * Each server owns (or shares) an AdmissionController and consults
 * it at the top of its handler; a request refused admission is
 * answered with CallStatus::Overloaded instead of being queued
 * behind work the server cannot absorb. The queue is modelled as a
 * leaky bucket drained by the simulated cycle clock: every admitted
 * request adds one unit of backlog, and one unit drains every
 * `drainCycles`. Because the drain is a pure function of the cycle
 * clock, two same-seed runs shed exactly the same requests - the
 * determinism the chaos soak asserts.
 *
 * Fair share: each client (keyed by its calling thread id) also has
 * its own bucket; a client whose private backlog reaches
 * `clientShare` is shed even while the global queue has room, so one
 * aggressive client cannot starve the rest.
 */

#ifndef XPC_SERVICES_ADMISSION_HH
#define XPC_SERVICES_ADMISSION_HH

#include <cstdint>
#include <map>
#include <string>

#include "sim/stats.hh"
#include "sim/types.hh"

namespace xpc::core {
class ServerApi;
}

namespace xpc::services {

struct AdmissionOptions
{
    /** Shed when the modelled backlog reaches this many requests. */
    uint32_t highWatermark = 12;
    /** One queued request drains per this many cycles. */
    Cycles drainCycles{2000};
    /** Per-client backlog cap (fair share); 0 disables it. */
    uint32_t clientShare = 8;
    /**
     * Per-tenant backlog cap, for controllers guarding services that
     * are shared across tenants (the name server): one tenant's
     * crash-looping retry storm cannot fill the queue for everyone.
     * 0 (the default) disables it - per-service controllers in
     * single-tenant rigs behave exactly as before.
     */
    uint32_t tenantShare = 0;
};

class AdmissionController
{
  public:
    explicit AdmissionController(std::string name,
                                 const AdmissionOptions &options = {});

    /**
     * Decide one request: drain the buckets to @p now, then admit
     * (true) or shed (false). @p client_id keys the fair-share
     * bucket (a thread id; 0 = unknown client, global bucket only);
     * @p tenant keys the per-tenant bucket when tenantShare is on.
     */
    bool admit(Cycles now, uint32_t client_id, uint32_t tenant = 0);

    /** Modelled global backlog after draining to @p now (tests). */
    uint64_t backlogAt(Cycles now) const;

    /**
     * Restart-time reset: drop the modelled backlog and every
     * per-client bucket. The queued work a restarted server was
     * drowning under died with the old instance; keeping the buckets
     * would shed the first requests to a perfectly idle server.
     * Counters survive (history, not state).
     */
    void reset();

    /**
     * Quarantine-recovery reset for one tenant of a *shared*
     * controller: drop that tenant's bucket (its backlog died with
     * its crashed services) without touching the global bucket or
     * any other tenant's. Per-service controllers use reset().
     */
    void resetTenant(uint32_t tenant);

    /** Modelled backlog of @p tenant's bucket at @p now (tests). */
    uint64_t tenantBacklogAt(Cycles now, uint32_t tenant) const;

    const AdmissionOptions &options() const { return opts; }

    Counter admitted;
    /** Requests shed at the global high-watermark. */
    Counter shed;
    /** Requests shed by the per-client fair-share cap. */
    Counter shedFairShare;
    /** Requests shed by the per-tenant fair-share cap. */
    Counter shedTenantShare;

    /** Registry node; attach it next to the owning server's. */
    StatGroup stats;

  private:
    struct Bucket
    {
        uint64_t level = 0;
        uint64_t lastDrain = 0;
    };

    /** Leak @p b down to @p now (one unit per drainCycles). */
    void drain(Bucket &b, uint64_t now) const;

    std::string name_;
    AdmissionOptions opts;
    Bucket global;
    std::map<uint32_t, Bucket> perClient;
    std::map<uint32_t, Bucket> perTenant;
};

/**
 * Shared handler prologue: consult @p adm (null = admission off,
 * always admitted); a shed request fails the invocation with
 * CallStatus::Overloaded and an empty reply. Servers call this first
 * thing in their handler and return immediately on false.
 */
bool admitOrShed(AdmissionController *adm, core::ServerApi &api);

} // namespace xpc::services

#endif // XPC_SERVICES_ADMISSION_HH
