#include "kv.hh"

#include <cstring>

#include "services/admission.hh"
#include "services/telemetry.hh"

namespace xpc::services {

KvServer::KvServer(core::Transport &tr, kernel::Thread &t)
{
    core::ServiceDesc desc;
    desc.name = "kv";
    desc.handlerThread = &t;
    desc.maxMsgBytes = 4096;
    svcId = tr.registerService(
        desc, [this](core::ServerApi &api) { handle(api); });
}

void
KvServer::handle(core::ServerApi &api)
{
    HandlerScope probe(telemetry, api);
    if (!admitOrShed(admission, api)) {
        probe.shed();
        return;
    }
    uint8_t key_raw[8] = {};
    api.readRequest(0, key_raw, sizeof(key_raw));
    uint64_t key = 0;
    std::memcpy(&key, key_raw, sizeof(key));
    if (api.opcode() == opPut) {
        std::array<uint8_t, valueBytes> val{};
        api.readRequest(8, val.data(), val.size());
        store[key] = val;
        api.setReplyLen(0);
        return;
    }
    // Anything else (including a zeroed opcode off a faulted
    // copy) is treated as a get; unknown keys miss cleanly.
    auto it = store.find(key);
    if (it == store.end()) {
        api.setReplyLen(0);
        return;
    }
    api.writeReply(0, it->second.data(), it->second.size());
    api.setReplyLen(it->second.size());
}

} // namespace xpc::services
