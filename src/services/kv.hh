/**
 * @file
 * A YCSB-flavored key-value server: u64 keys, fixed 64-byte values.
 * Small enough to crash-loop cheaply, stateful enough that loss of
 * an instance is observable - which is exactly what the chaos and
 * tenant-containment suites need from their "kv" workload. Values
 * are a pure function of the key (valueFor), so reads stay
 * verifiable across server restarts.
 */

#ifndef XPC_SERVICES_KV_HH
#define XPC_SERVICES_KV_HH

#include <array>
#include <map>

#include "core/transport.hh"

namespace xpc::services {

class AdmissionController;
class ServiceTelemetry;

/** YCSB-flavored KV server: u64 keys, fixed 64-byte values. */
class KvServer
{
  public:
    static constexpr uint64_t valueBytes = 64;
    enum : uint64_t { opGet = 1, opPut = 2 };

    KvServer(core::Transport &tr, kernel::Thread &t);

    core::ServiceId id() const { return svcId; }

    void setAdmission(AdmissionController *adm) { admission = adm; }

    /** Attach telemetry (null = off, the default). */
    void setTelemetry(ServiceTelemetry *t) { telemetry = t; }

    /** The value every put stores for @p key. Deriving values from
     *  keys makes reads verifiable across server restarts. */
    static std::array<uint8_t, valueBytes> valueFor(uint64_t key)
    {
        std::array<uint8_t, valueBytes> v;
        for (uint64_t j = 0; j < valueBytes; j++)
            v[j] = uint8_t(key * 31 + j * 7 + 1);
        return v;
    }

  private:
    core::ServiceId svcId = 0;
    std::map<uint64_t, std::array<uint8_t, valueBytes>> store;
    AdmissionController *admission = nullptr;
    ServiceTelemetry *telemetry = nullptr;

    void handle(core::ServerApi &api);
};

} // namespace xpc::services

#endif // XPC_SERVICES_KV_HH
