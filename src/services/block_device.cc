#include "block_device.hh"

#include <vector>

#include "hw/machine.hh"
#include "services/proto.hh"
#include "sim/fault_injector.hh"
#include "sim/logging.hh"

namespace xpc::services {

BlockDeviceServer::BlockDeviceServer(core::Transport &tr,
                                     kernel::Thread &handler_thread,
                                     uint64_t n)
    : transport(tr), serverThread(handler_thread), nblocks(n)
{
    store = handler_thread.process()->alloc(nblocks * blockBytes);

    core::ServiceDesc desc;
    desc.name = "blockdev";
    desc.handlerThread = &handler_thread;
    desc.maxMsgBytes = 64 * 1024;
    svcId = transport.registerService(
        desc, [this](core::ServerApi &api) { handle(api); });
}

void
BlockDeviceServer::handle(core::ServerApi &api)
{
    using namespace proto;
    uint8_t hdr[sizeof(BlockReq)];
    api.readRequest(0, hdr, sizeof(hdr));
    BlockReq req = unpackFrom<BlockReq>(hdr);
    if (req.blockNo + req.count > nblocks) {
        // A corrupted request (e.g. a faulted copy read as zeros or
        // garbage) must not take the device down with it.
        api.fail(core::TransportStatus::CopyFault);
        api.setReplyLen(0);
        return;
    }

    kernel::Kernel &kern = transport.kernelRef();
    kernel::Process &proc = *serverThread.process();
    uint64_t bytes = req.count * blockBytes;
    std::vector<uint8_t> buf(bytes);

    switch (BlockOp(api.opcode())) {
      case BlockOp::Read: {
        reads.inc(req.count);
        auto res = kern.userRead(api.core(), proc,
                                 store + req.blockNo * blockBytes,
                                 buf.data(), bytes);
        if (!res.ok) {
            api.fail(core::TransportStatus::CopyFault);
            api.setReplyLen(0);
            return;
        }
        api.writeReply(0, buf.data(), bytes);
        api.setReplyLen(bytes);
        return;
      }
      case BlockOp::Write: {
        // Every durable write is an enumerable crash site: the
        // explorer re-runs the workload crashing here, and once
        // crashed the store stops absorbing writes - the disk image
        // is frozen at the exact write prefix a power cut leaves.
        FaultInjector *inj =
            transport.kernelRef().machine().faultInjector();
        if (inj && inj->enabled) {
            inj->atCrashSite("block-write");
            if (inj->crashed()) {
                suppressedWrites.inc(req.count);
                api.setReplyLen(0);
                return;
            }
        }
        writes.inc(req.count);
        api.readRequest(blockDataOffset, buf.data(), bytes);
        auto res = kern.userWrite(api.core(), proc,
                                  store + req.blockNo * blockBytes,
                                  buf.data(), bytes);
        if (!res.ok) {
            api.fail(core::TransportStatus::CopyFault);
            api.setReplyLen(0);
            return;
        }
        api.setReplyLen(0);
        return;
      }
      case BlockOp::Info: {
        uint64_t info[2] = {nblocks, blockBytes};
        api.writeReply(0, info, sizeof(info));
        api.setReplyLen(sizeof(info));
        return;
      }
    }
    panic("unknown block-device opcode %lu",
          (unsigned long)api.opcode());
}

void
BlockDeviceServer::readDirect(hw::Core &core, uint64_t block_no,
                              void *dst)
{
    panic_if(block_no >= nblocks, "readDirect beyond device");
    auto res = transport.kernelRef().userRead(
        core, *serverThread.process(), store + block_no * blockBytes,
        dst, blockBytes);
    panic_if(!res.ok, "readDirect faulted");
}

void
BlockDeviceServer::writeDirect(hw::Core &core, uint64_t block_no,
                               const void *src)
{
    panic_if(block_no >= nblocks, "writeDirect beyond device");
    auto res = transport.kernelRef().userWrite(
        core, *serverThread.process(), store + block_no * blockBytes,
        src, blockBytes);
    panic_if(!res.ok, "writeDirect faulted");
}

} // namespace xpc::services
