/**
 * @file
 * The shared write-ahead journal codec under the storage stack.
 *
 * Both stateful services commit through this layer: xv6fs's on-disk
 * log header and MiniDb's WAL-mode journal are encoded as a
 * checksummed commit record - {magic, n, seq, per-entry {no, crc},
 * header crc} - followed (elsewhere on the device) by the n payload
 * images the entries describe. The commit record is the atomic
 * point: recovery decodes it, rejects anything torn (bad magic, bad
 * header crc, an entry crc that does not match its payload), and
 * replays intact commits idempotently. A commit whose record never
 * became valid simply never happened, which is exactly the
 * committed-durable / uncommitted-absent invariant the crash
 * explorer asserts at every enumerated crash point.
 */

#ifndef XPC_SERVICES_JOURNAL_HH
#define XPC_SERVICES_JOURNAL_HH

#include <cstdint>
#include <cstddef>
#include <vector>

namespace xpc::services::journal {

/** CRC-32 (IEEE 802.3 polynomial, table-driven). */
uint32_t walCrc(const void *data, size_t len, uint32_t seed = 0);

/** Commit-record magic ("WAL1"). */
constexpr uint32_t walMagic = 0x57414c31;

/** One journaled payload: block/page @p no, checksummed. */
struct WalEntry
{
    uint32_t no = 0;
    uint32_t crc = 0;
};

/**
 * The checksummed commit record. Encode writes it as:
 *   u32 magic | u32 n | u64 seq | n x {u32 no, u32 crc} | u32 hcrc
 * where hcrc covers every preceding byte. Decode validates all of
 * that and refuses anything torn.
 */
struct WalHeader
{
    uint64_t seq = 0;
    std::vector<WalEntry> entries;

    /** Encoded size of a record with @p n entries. */
    static constexpr size_t
    encodedBytes(size_t n)
    {
        return 4 + 4 + 8 + n * 8 + 4;
    }

    size_t encodedBytes() const { return encodedBytes(entries.size()); }

    /** Serialize (with checksums) into @p out, which is resized. */
    void encodeTo(std::vector<uint8_t> *out) const;

    /**
     * Decode and validate a commit record from @p raw. @return true
     * iff the record is intact (magic, bounds and header crc all
     * check out); any torn or stale record decodes to false.
     */
    static bool decode(const uint8_t *raw, size_t len, WalHeader *out);
};

/** Does @p payload match entry @p e (its crc)? */
bool walPayloadMatches(const WalEntry &e, const void *payload,
                       size_t payload_len);

} // namespace xpc::services::journal

#endif // XPC_SERVICES_JOURNAL_HH
