#include "fs_server.hh"

#include <cstring>
#include <vector>

#include "services/admission.hh"
#include "services/telemetry.hh"
#include "services/proto.hh"
#include "sim/logging.hh"

namespace xpc::services {

using namespace proto;

void
FsServer::IpcBlockIo::read(uint32_t block_no, void *dst)
{
    panic_if(!core, "block IO without a core context");
    if (ioFailed) {
        // The device already failed this invocation; don't hammer a
        // dead service, serve zeros until the handler aborts.
        std::memset(dst, 0, BlockDeviceServer::blockBytes);
        return;
    }
    uint8_t req[sizeof(BlockReq)];
    packInto(req, BlockReq{block_no, 1});
    // The disk call may fail under fault injection; retry a couple of
    // times (the backing store is durable), then give up and let the
    // FS handler fail the whole invocation.
    for (int attempt = 0; attempt < 3; attempt++) {
        uint64_t got = transport.scratchCall(
            *core, fsThread, inHandler, diskSvc,
            uint64_t(BlockOp::Read), req, sizeof(req), dst,
            BlockDeviceServer::blockBytes);
        if (got == BlockDeviceServer::blockBytes)
            return;
    }
    std::memset(dst, 0, BlockDeviceServer::blockBytes);
    ioFailed = true;
}

void
FsServer::IpcBlockIo::write(uint32_t block_no, const void *src)
{
    panic_if(!core, "block IO without a core context");
    if (ioFailed)
        return;
    std::vector<uint8_t> req(blockDataOffset +
                             BlockDeviceServer::blockBytes);
    packInto(req.data(), BlockReq{block_no, 1});
    std::memcpy(req.data() + blockDataOffset, src,
                BlockDeviceServer::blockBytes);
    for (int attempt = 0; attempt < 3; attempt++) {
        uint64_t got = transport.scratchCall(
            *core, fsThread, inHandler, diskSvc,
            uint64_t(BlockOp::Write), req.data(), req.size(), nullptr,
            0);
        if (got != core::Transport::scratchFailed)
            return;
    }
    ioFailed = true;
}

FsServer::FsServer(core::Transport &tr, kernel::Thread &fs_thread,
                   core::ServiceId block_svc, uint64_t disk_blocks,
                   bool format)
    : transport(tr), fsThread(fs_thread),
      blockIo(tr, fs_thread, block_svc)
{
    // The FS thread needs a scratch message area big enough for one
    // block write plus headers.
    hw::Core &boot_core = transport.kernelRef().machine().core(
        fs_thread.sched.homeCore);
    transport.prepareScratch(boot_core, fs_thread,
                             blockDataOffset +
                                 BlockDeviceServer::blockBytes + 256);

    // Mount (formatting first unless attaching), as the FS thread,
    // at wiring time. On the attach path mount() replays a committed
    // log - crash recovery completes before the service registers.
    blockIo.core = &boot_core;
    blockIo.inHandler = false;
    if (format)
        fs::Xv6Fs::mkfs(blockIo, uint32_t(disk_blocks));
    int64_t r = filesystem.mount(blockIo);
    fatal_if(r != fs::fsOk, format
                 ? "failed to mount the fresh file system"
                 : "failed to attach to the existing file system");

    core::ServiceDesc desc;
    desc.name = "fs";
    desc.handlerThread = &fs_thread;
    desc.maxMsgBytes = 256 * 1024;
    desc.selfAppendBytes = fsDataOffset;
    desc.callees = {block_svc};
    svcId = transport.registerService(
        desc, [this](core::ServerApi &api) { handle(api); });
}

void
FsServer::handle(core::ServerApi &api)
{
    HandlerScope probe(telemetry, api);
    if (!admitOrShed(admission, api)) {
        probe.shed();
        return;
    }
    blockIo.core = &api.core();
    blockIo.inHandler = true;

    uint8_t hdr_raw[sizeof(FsMsg)];
    api.readRequest(0, hdr_raw, sizeof(hdr_raw));
    FsMsg req = unpackFrom<FsMsg>(hdr_raw);
    FsMsg reply{};

    auto read_path = [&](uint64_t len) {
        panic_if(len > fsMaxPath, "path too long");
        std::vector<char> raw(len + 1, 0);
        if (len > 0)
            api.readRequest(fsDataOffset, raw.data(), len);
        return std::string(raw.data());
    };

    switch (FsOp(api.opcode())) {
      case FsOp::Open: {
        std::string path = read_path(uint64_t(req.c));
        reply.a = filesystem.open(path, req.a & fsOpenCreate);
        break;
      }
      case FsOp::Read: {
        std::vector<uint8_t> buf(req.c);
        int64_t r = filesystem.pread(req.a, uint64_t(req.b),
                                     buf.data(), uint64_t(req.c));
        reply.a = r;
        if (r > 0)
            api.writeReply(fsDataOffset, buf.data(), uint64_t(r));
        break;
      }
      case FsOp::Write: {
        std::vector<uint8_t> buf(req.c);
        if (req.c > 0)
            api.readRequest(fsDataOffset, buf.data(), uint64_t(req.c));
        reply.a = filesystem.pwrite(req.a, uint64_t(req.b), buf.data(),
                                    uint64_t(req.c));
        break;
      }
      case FsOp::Close:
        reply.a = filesystem.close(req.a);
        break;
      case FsOp::Unlink:
        reply.a = filesystem.unlink(read_path(uint64_t(req.c)));
        break;
      case FsOp::Stat:
        reply.a = filesystem.fileSize(req.a);
        break;
      case FsOp::Mkdir:
        reply.a = filesystem.mkdir(read_path(uint64_t(req.c)));
        break;
      default:
        panic("unknown FS opcode %lu", (unsigned long)api.opcode());
    }

    uint8_t reply_raw[sizeof(FsMsg)];
    packInto(reply_raw, reply);
    api.writeReply(0, reply_raw, sizeof(reply_raw));
    if (api.opcode() == uint64_t(FsOp::Read) && reply.a > 0)
        api.setReplyLen(fsDataOffset + uint64_t(reply.a));
    else
        api.setReplyLen(sizeof(FsMsg));

    if (blockIo.ioFailed) {
        // A disk call failed even after retries: the FS state this
        // handler produced cannot be trusted, abort the invocation.
        blockIo.ioFailed = false;
        api.fail(core::TransportStatus::NestedFailure);
    }

    blockIo.core = nullptr;
    blockIo.inHandler = false;
}

namespace {

/** Shared client-side call plumbing. */
int64_t
fsCall(core::Transport &tr, hw::Core &core, kernel::Thread &client,
       core::ServiceId svc, FsOp op, const FsMsg &msg,
       const void *payload, uint64_t payload_len, void *reply_data,
       uint64_t reply_data_cap)
{
    tr.requestArea(core, client,
                   fsDataOffset + std::max(payload_len,
                                           reply_data_cap));
    uint8_t hdr[sizeof(FsMsg)];
    packInto(hdr, msg);
    tr.clientWrite(core, client, 0, hdr, sizeof(hdr));
    if (payload_len > 0)
        tr.clientWrite(core, client, fsDataOffset, payload,
                       payload_len);
    auto r = tr.call(core, client, svc, uint64_t(op),
                     fsDataOffset + payload_len,
                     fsDataOffset + reply_data_cap);
    if (!r.ok)
        return FsServer::callFailed;
    uint8_t reply_raw[sizeof(FsMsg)];
    tr.clientRead(core, client, 0, reply_raw, sizeof(reply_raw));
    FsMsg reply = unpackFrom<FsMsg>(reply_raw);
    if (reply.a > 0 && reply_data) {
        uint64_t n = std::min<uint64_t>(uint64_t(reply.a),
                                        reply_data_cap);
        tr.clientRead(core, client, fsDataOffset, reply_data, n);
    }
    return reply.a;
}

} // namespace

int64_t
FsServer::clientOpen(core::Transport &tr, hw::Core &core,
                     kernel::Thread &client, core::ServiceId svc,
                     const std::string &path, bool create)
{
    FsMsg msg;
    msg.a = create ? fsOpenCreate : 0;
    msg.c = int64_t(path.size());
    return fsCall(tr, core, client, svc, FsOp::Open, msg, path.data(),
                  path.size(), nullptr, 0);
}

int64_t
FsServer::clientRead(core::Transport &tr, hw::Core &core,
                     kernel::Thread &client, core::ServiceId svc,
                     int64_t fd, uint64_t off, void *dst, uint64_t len)
{
    FsMsg msg;
    msg.a = fd;
    msg.b = int64_t(off);
    msg.c = int64_t(len);
    return fsCall(tr, core, client, svc, FsOp::Read, msg, nullptr, 0,
                  dst, len);
}

int64_t
FsServer::clientWrite(core::Transport &tr, hw::Core &core,
                      kernel::Thread &client, core::ServiceId svc,
                      int64_t fd, uint64_t off, const void *src,
                      uint64_t len)
{
    FsMsg msg;
    msg.a = fd;
    msg.b = int64_t(off);
    msg.c = int64_t(len);
    return fsCall(tr, core, client, svc, FsOp::Write, msg, src, len,
                  nullptr, 0);
}

int64_t
FsServer::clientClose(core::Transport &tr, hw::Core &core,
                      kernel::Thread &client, core::ServiceId svc,
                      int64_t fd)
{
    FsMsg msg;
    msg.a = fd;
    return fsCall(tr, core, client, svc, FsOp::Close, msg, nullptr, 0,
                  nullptr, 0);
}

int64_t
FsServer::clientStat(core::Transport &tr, hw::Core &core,
                     kernel::Thread &client, core::ServiceId svc,
                     int64_t fd)
{
    FsMsg msg;
    msg.a = fd;
    return fsCall(tr, core, client, svc, FsOp::Stat, msg, nullptr, 0,
                  nullptr, 0);
}

int64_t
FsServer::clientUnlink(core::Transport &tr, hw::Core &core,
                       kernel::Thread &client, core::ServiceId svc,
                       const std::string &path)
{
    FsMsg msg;
    msg.c = int64_t(path.size());
    return fsCall(tr, core, client, svc, FsOp::Unlink, msg,
                  path.data(), path.size(), nullptr, 0);
}

} // namespace xpc::services
