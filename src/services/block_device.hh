/**
 * @file
 * The ramdisk block-device server (the paper's "in-memory ram disk
 * server"). Disk contents live in the server process's simulated
 * memory, so serving a block is real, charged data movement.
 */

#ifndef XPC_SERVICES_BLOCK_DEVICE_HH
#define XPC_SERVICES_BLOCK_DEVICE_HH

#include "core/transport.hh"
#include "sim/stats.hh"

namespace xpc::services {

/** A ramdisk served over IPC. */
class BlockDeviceServer
{
  public:
    static constexpr uint64_t blockBytes = 4096;

    /**
     * Create and register the service.
     * @param handler_thread the server thread (its process stores
     *        the disk image)
     * @param nblocks disk capacity in blocks
     */
    BlockDeviceServer(core::Transport &transport,
                      kernel::Thread &handler_thread, uint64_t nblocks);

    core::ServiceId id() const { return svcId; }
    uint64_t blockCount() const { return nblocks; }

    /** Direct (charged) access for mkfs-time population and tests. */
    void readDirect(hw::Core &core, uint64_t block_no, void *dst);
    void writeDirect(hw::Core &core, uint64_t block_no,
                     const void *src);

    Counter reads;
    Counter writes;
    /** Writes dropped after a crash-site firing: the power is off,
     *  so the store freezes at the exact prefix written so far. */
    Counter suppressedWrites;

  private:
    core::Transport &transport;
    kernel::Thread &serverThread;
    uint64_t nblocks;
    VAddr store = 0;
    core::ServiceId svcId = 0;

    void handle(core::ServerApi &api);
};

} // namespace xpc::services

#endif // XPC_SERVICES_BLOCK_DEVICE_HH
