#include "tcp.hh"

#include <cstddef>
#include <cstring>

#include "sim/logging.hh"

namespace xpc::services::net {

uint16_t
inetChecksum(const uint8_t *data, uint64_t len)
{
    uint32_t sum = 0;
    uint64_t i = 0;
    for (; i + 1 < len; i += 2)
        sum += uint32_t(data[i]) << 8 | data[i + 1];
    if (i < len)
        sum += uint32_t(data[i]) << 8;
    while (sum >> 16)
        sum = (sum & 0xffff) + (sum >> 16);
    return uint16_t(~sum);
}

TcpSocket *
TcpStack::lookup(int64_t sock)
{
    auto it = sockets.find(sock);
    return it == sockets.end() ? nullptr : &it->second;
}

const TcpSocket *
TcpStack::find(int64_t sock) const
{
    auto it = sockets.find(sock);
    return it == sockets.end() ? nullptr : &it->second;
}

int64_t
TcpStack::socket()
{
    TcpSocket s;
    s.id = nextId++;
    sockets[s.id] = s;
    return s.id;
}

int64_t
TcpStack::listen(int64_t sock, uint16_t port)
{
    TcpSocket *s = lookup(sock);
    if (!s)
        return -1;
    if (listeners.count(port))
        return -1;
    s->state = TcpState::Listen;
    s->localPort = port;
    listeners[port] = sock;
    return 0;
}

std::vector<uint8_t>
TcpStack::makeSegment(TcpSocket &s, uint8_t flags,
                      const uint8_t *payload, uint64_t len)
{
    return makeSegmentAt(s, s.sndNxt, flags, payload, len);
}

std::vector<uint8_t>
TcpStack::makeSegmentAt(TcpSocket &s, uint32_t seq, uint8_t flags,
                        const uint8_t *payload, uint64_t len)
{
    std::vector<uint8_t> frame(sizeof(TcpHeader) + len);
    TcpHeader hdr{};
    hdr.srcPort = s.localPort;
    hdr.dstPort = s.remotePort;
    hdr.seq = seq;
    hdr.ack = s.rcvNxt;
    hdr.dataOff = uint8_t((sizeof(TcpHeader) / 4) << 4);
    hdr.flags = flags;
    hdr.window = 0xffff;
    hdr.checksum = 0;
    std::memcpy(frame.data(), &hdr, sizeof(hdr));
    if (len > 0)
        std::memcpy(frame.data() + sizeof(hdr), payload, len);
    uint16_t csum = inetChecksum(frame.data(), frame.size());
    std::memcpy(frame.data() + offsetof(TcpHeader, checksum), &csum,
                sizeof(csum));
    return frame;
}

int64_t
TcpStack::connect(
    int64_t sock, uint16_t port,
    const std::function<void(std::vector<uint8_t> &)> &xmit)
{
    TcpSocket *s = lookup(sock);
    if (!s)
        return -1;
    auto lit = listeners.find(port);
    if (lit == listeners.end())
        return -1;
    TcpSocket *l = lookup(lit->second);
    panic_if(!l, "listener socket vanished");

    // Allocate an ephemeral local port.
    static uint16_t ephemeral = 40000;
    s->localPort = ephemeral++;
    s->remotePort = port;

    // SYN through the device; deliver() completes the listener side.
    auto syn = makeSegment(*s, tcpFlagSyn, nullptr, 0);
    xmit(syn);

    // The loopback reflected our SYN; the listener spawned state and
    // its SYN-ACK came back through deliver(). Finalize both ends.
    s->state = TcpState::Established;
    s->peer = l->id;
    l->peer = s->id;
    l->remotePort = s->localPort;
    l->state = TcpState::Established;
    s->sndNxt++;
    l->rcvNxt = s->sndNxt;
    return 0;
}

int64_t
TcpStack::send(int64_t sock, const uint8_t *data, uint64_t len,
               const std::function<void(std::vector<uint8_t> &)> &xmit)
{
    TcpSocket *s = lookup(sock);
    if (!s || s->state != TcpState::Established)
        return -1;
    uint64_t done = 0;
    while (done < len) {
        uint64_t chunk = std::min(len - done, tcpMss);
        uint8_t flags = tcpFlagAck;
        if (done + chunk == len)
            flags |= tcpFlagPsh;
        auto frame = makeSegment(*s, flags, data + done, chunk);
        s->unacked.emplace(s->sndNxt,
                           std::vector<uint8_t>(data + done,
                                                data + done + chunk));
        s->sndNxt += uint32_t(chunk);
        s->bytesSent += chunk;
        segmentsSent.inc();
        xmit(frame);
        done += chunk;
    }
    return int64_t(done);
}

void
TcpStack::deliver(const uint8_t *frame, uint64_t len)
{
    panic_if(len < sizeof(TcpHeader), "runt TCP segment");
    segmentsReceived.inc();

    // Verify the checksum over the frame with the field zeroed.
    std::vector<uint8_t> copy(frame, frame + len);
    uint16_t received;
    std::memcpy(&received, copy.data() + offsetof(TcpHeader, checksum),
                sizeof(received));
    std::memset(copy.data() + offsetof(TcpHeader, checksum), 0,
                sizeof(received));
    if (inetChecksum(copy.data(), copy.size()) != received) {
        checksumFailures.inc();
        return;
    }

    TcpHeader hdr;
    std::memcpy(&hdr, frame, sizeof(hdr));

    if (hdr.flags & tcpFlagSyn) {
        // Handshake segments are finalized in connect(); nothing to
        // deliver.
        return;
    }

    // Find the destination socket: an established socket whose local
    // port matches the segment's destination.
    for (auto &[id, s] : sockets) {
        if (s.state == TcpState::Established &&
            s.localPort == hdr.dstPort &&
            s.remotePort == hdr.srcPort) {
            uint64_t payload = len - sizeof(TcpHeader);
            const uint8_t *data = frame + sizeof(TcpHeader);
            // In-order check (the loopback never reorders).
            if (s.rcvNxt != 0 && hdr.seq != s.rcvNxt) {
                // Out-of-window: drop. Keeps bookkeeping honest.
                return;
            }
            s.recvBuf.insert(s.recvBuf.end(), data, data + payload);
            s.rcvNxt = hdr.seq + uint32_t(payload);
            s.bytesReceived += payload;
            return;
        }
    }
    // No socket: drop, as lwIP would.
}

TcpSocket *
TcpStack::peerOf(TcpSocket &s)
{
    return s.peer >= 0 ? lookup(s.peer) : nullptr;
}

void
TcpStack::pruneAcked(TcpSocket &s)
{
    TcpSocket *peer = peerOf(s);
    if (!peer)
        return;
    for (auto it = s.unacked.begin(); it != s.unacked.end();) {
        if (it->first + it->second.size() <= peer->rcvNxt)
            it = s.unacked.erase(it);
        else
            ++it;
    }
}

uint64_t
TcpStack::pendingBytes(int64_t sock)
{
    TcpSocket *s = lookup(sock);
    if (!s)
        return 0;
    pruneAcked(*s);
    uint64_t total = 0;
    for (const auto &[seq, payload] : s->unacked)
        total += payload.size();
    return total;
}

uint32_t
TcpStack::retransmit(
    int64_t sock,
    const std::function<void(std::vector<uint8_t> &)> &xmit)
{
    TcpSocket *s = lookup(sock);
    if (!s)
        return 0;
    pruneAcked(*s);
    uint32_t resent = 0;
    // Resend in sequence order so the receiver's in-order check
    // accepts them.
    for (auto &[seq, payload] : s->unacked) {
        auto frame = makeSegmentAt(*s, seq, tcpFlagAck | tcpFlagPsh,
                                   payload.data(), payload.size());
        segmentsRetransmitted.inc();
        resent++;
        xmit(frame);
    }
    pruneAcked(*s);
    return resent;
}

int64_t
TcpStack::recv(int64_t sock, uint8_t *dst, uint64_t maxlen)
{
    TcpSocket *s = lookup(sock);
    if (!s)
        return -1;
    uint64_t n = std::min<uint64_t>(maxlen, s->recvBuf.size());
    for (uint64_t i = 0; i < n; i++) {
        dst[i] = s->recvBuf.front();
        s->recvBuf.pop_front();
    }
    return int64_t(n);
}

int64_t
TcpStack::close(int64_t sock)
{
    TcpSocket *s = lookup(sock);
    if (!s)
        return -1;
    if (s->state == TcpState::Listen)
        listeners.erase(s->localPort);
    sockets.erase(sock);
    return 0;
}

} // namespace xpc::services::net
