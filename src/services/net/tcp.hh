/**
 * @file
 * A small TCP implementation in the lwIP spirit: sockets, listen /
 * connect pairing, MSS segmentation with real 20-byte TCP headers
 * and a computed Internet checksum, in-order delivery, receive
 * buffering and cumulative ACKs. Loss and retransmission timers are
 * out of scope (the device is a lossless loopback, as in the paper's
 * network experiment), but sequence bookkeeping is fully tracked so
 * the tests can assert it.
 */

#ifndef XPC_SERVICES_NET_TCP_HH
#define XPC_SERVICES_NET_TCP_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <vector>

#include "sim/stats.hh"

namespace xpc::services::net {

/** Maximum segment size (Ethernet-ish). */
constexpr uint64_t tcpMss = 1460;

/** TCP header (RFC 793, 20 bytes, no options). */
struct TcpHeader
{
    uint16_t srcPort;
    uint16_t dstPort;
    uint32_t seq;
    uint32_t ack;
    uint8_t dataOff; ///< header length in 32-bit words << 4
    uint8_t flags;
    uint16_t window;
    uint16_t checksum;
    uint16_t urgent;
};

constexpr uint8_t tcpFlagSyn = 0x02;
constexpr uint8_t tcpFlagAck = 0x10;
constexpr uint8_t tcpFlagFin = 0x01;
constexpr uint8_t tcpFlagPsh = 0x08;

/** RFC 1071 Internet checksum over @p len bytes. */
uint16_t inetChecksum(const uint8_t *data, uint64_t len);

/** Socket states (the subset a loopback needs). */
enum class TcpState
{
    Closed,
    Listen,
    Established,
};

/** One socket / protocol control block. */
struct TcpSocket
{
    int64_t id = 0;
    TcpState state = TcpState::Closed;
    uint16_t localPort = 0;
    uint16_t remotePort = 0;
    int64_t peer = -1; ///< socket id of the other end
    uint32_t sndNxt = 0;
    uint32_t rcvNxt = 0;
    uint64_t bytesSent = 0;
    uint64_t bytesReceived = 0;
    std::deque<uint8_t> recvBuf;
    /** Sent-but-unacknowledged payloads, keyed by sequence number
     *  (the retransmission queue). */
    std::map<uint32_t, std::vector<uint8_t>> unacked;
};

/**
 * The protocol engine. It is transport-agnostic: the owner provides
 * a frame-transmit hook (IPC to the device server) and calls
 * deliver() for frames that come back.
 */
class TcpStack
{
  public:
    /** Create a socket. @return its id. */
    int64_t socket();

    /** Put @p sock into LISTEN on @p port. */
    int64_t listen(int64_t sock, uint16_t port);

    /**
     * Connect @p sock to the listener on @p port (loopback). The
     * three-way handshake runs through @p xmit like any segment.
     */
    int64_t connect(int64_t sock, uint16_t port,
                    const std::function<void(std::vector<uint8_t> &)>
                        &xmit);

    /**
     * Segment @p len bytes and push each segment through @p xmit.
     * @return bytes queued (all of them, window permitting).
     */
    int64_t send(int64_t sock, const uint8_t *data, uint64_t len,
                 const std::function<void(std::vector<uint8_t> &)>
                     &xmit);

    /** Drain up to @p maxlen received bytes. */
    int64_t recv(int64_t sock, uint8_t *dst, uint64_t maxlen);

    /** Bytes sent on @p sock that the peer has not yet received. */
    uint64_t pendingBytes(int64_t sock);

    /**
     * Retransmit every unacknowledged segment of @p sock (the RTO
     * path, driven by the owner when the device may drop frames).
     * @return segments resent.
     */
    uint32_t retransmit(int64_t sock,
                        const std::function<void(
                            std::vector<uint8_t> &)> &xmit);

    /** Handle a frame arriving from the device. */
    void deliver(const uint8_t *frame, uint64_t len);

    int64_t close(int64_t sock);

    const TcpSocket *find(int64_t sock) const;

    Counter segmentsSent;
    Counter segmentsReceived;
    Counter segmentsRetransmitted;
    Counter checksumFailures;

  private:
    std::map<int64_t, TcpSocket> sockets;
    std::map<uint16_t, int64_t> listeners;
    int64_t nextId = 1;

    TcpSocket *lookup(int64_t sock);
    TcpSocket *peerOf(TcpSocket &s);
    /** Drop retransmission-queue entries the peer has received. */
    void pruneAcked(TcpSocket &s);
    std::vector<uint8_t> makeSegment(TcpSocket &s, uint8_t flags,
                                     const uint8_t *payload,
                                     uint64_t len);
    std::vector<uint8_t> makeSegmentAt(TcpSocket &s, uint32_t seq,
                                       uint8_t flags,
                                       const uint8_t *payload,
                                       uint64_t len);
};

} // namespace xpc::services::net

#endif // XPC_SERVICES_NET_TCP_HH
