/**
 * @file
 * The web-server experiment's three services (paper 5.4): an HTTP
 * server, an in-memory file-cache server, and an AES-128 encryption
 * server. The HTTP server forwards the body region of its message to
 * the cache (which fills it) and then to the crypto server (which
 * encrypts it in place); with XPC these hops are seg-mask handovers
 * and no body byte is ever copied between servers.
 */

#ifndef XPC_SERVICES_WEB_HH
#define XPC_SERVICES_WEB_HH

#include <map>
#include <string>
#include <vector>

#include "core/transport.hh"
#include "services/crypto/aes.hh"

namespace xpc::services {

class AdmissionController;
class ServiceTelemetry;

/** In-memory file cache server. */
class FileCacheServer
{
  public:
    FileCacheServer(core::Transport &transport,
                    kernel::Thread &handler_thread);

    core::ServiceId id() const { return svcId; }

    /** Preload a file (wiring-time, not charged). */
    void preload(const std::string &path, std::vector<uint8_t> data);

    /** Attach admission control (null = off, the default). */
    void setAdmission(AdmissionController *adm) { admission = adm; }

    Counter gets;
    Counter misses;

  private:
    core::Transport &transport;
    core::ServiceId svcId = 0;
    std::map<std::string, std::vector<uint8_t>> files;
    AdmissionController *admission = nullptr;

    void handle(core::ServerApi &api);
};

/** AES-128-CBC encryption server. */
class CryptoServer
{
  public:
    CryptoServer(core::Transport &transport,
                 kernel::Thread &handler_thread,
                 const uint8_t key[crypto::Aes128::keyBytes]);

    core::ServiceId id() const { return svcId; }

    /** Attach admission control (null = off, the default). */
    void setAdmission(AdmissionController *adm) { admission = adm; }

    Counter requests;

  private:
    core::Transport &transport;
    core::ServiceId svcId = 0;
    crypto::Aes128 aes;
    AdmissionController *admission = nullptr;

    void handle(core::ServerApi &api);
};

/**
 * The HTTP server. The message layout it maintains:
 *   [0, 16)            reply preamble {respOff, respLen}
 *   [16, bodyOff)      request line / response headers
 *   [bodyOff, ...)     body window handed to cache / crypto
 */
class HttpServer
{
  public:
    /** Offset of the body window inside the message. */
    static constexpr uint64_t bodyOff = 256;

    HttpServer(core::Transport &transport,
               kernel::Thread &handler_thread,
               core::ServiceId cache_svc, core::ServiceId crypto_svc,
               bool encrypt, uint64_t max_body);

    core::ServiceId id() const { return svcId; }

    /**
     * Client helper: perform one GET and return the response bytes.
     * @return response length, or a negative status.
     */
    static int64_t clientGet(core::Transport &tr, hw::Core &core,
                             kernel::Thread &client,
                             core::ServiceId svc,
                             const std::string &path,
                             std::vector<uint8_t> *response,
                             uint64_t max_body);

    /** Attach admission control (null = off, the default). */
    void setAdmission(AdmissionController *adm) { admission = adm; }

    /** Attach telemetry (null = off, the default). */
    void setTelemetry(ServiceTelemetry *t) { telemetry = t; }

    Counter requests;
    Counter notFound;

  private:
    core::Transport &transport;
    core::ServiceId svcId = 0;
    core::ServiceId cacheSvc;
    core::ServiceId cryptoSvc;
    bool encrypt;
    uint64_t maxBody;
    AdmissionController *admission = nullptr;
    ServiceTelemetry *telemetry = nullptr;

    void handle(core::ServerApi &api);
};

} // namespace xpc::services

#endif // XPC_SERVICES_WEB_HH
