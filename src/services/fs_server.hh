/**
 * @file
 * The file-system server: xv6fs exported over IPC, with its disk
 * traffic going to the BlockDeviceServer through scratch calls -
 * the two-server FS architecture of the paper's section 5.3.
 */

#ifndef XPC_SERVICES_FS_SERVER_HH
#define XPC_SERVICES_FS_SERVER_HH

#include <string>

#include "core/transport.hh"
#include "services/block_device.hh"
#include "services/fs/xv6fs.hh"

namespace xpc::services {

class AdmissionController;
class ServiceTelemetry;

/** xv6fs served over IPC. */
class FsServer
{
  public:
    /**
     * Create the server and mount the disk.
     * @param fs_thread the server thread
     * @param block_svc the block-device service to talk to
     * @param format true: mkfs a fresh volume first (the default).
     *        false: attach to the existing volume - the crash-restart
     *        path, where mount() replays any committed journal before
     *        the service registers (stateful recovery).
     */
    FsServer(core::Transport &transport, kernel::Thread &fs_thread,
             core::ServiceId block_svc, uint64_t disk_blocks,
             bool format = true);

    core::ServiceId id() const { return svcId; }
    fs::Xv6Fs &fsImpl() { return filesystem; }

    /** Attach admission control (null = off, the default). */
    void setAdmission(AdmissionController *adm) { admission = adm; }

    /** Attach telemetry (null = off, the default). */
    void setTelemetry(ServiceTelemetry *t) { telemetry = t; }

    /** Client-wrapper return value when the IPC itself failed (as
     *  opposed to an FS-level error like fsNoEnt). */
    static constexpr int64_t callFailed = -1000;

    /// @name Typed client wrappers (drive the service over IPC).
    /// @{
    static int64_t clientOpen(core::Transport &tr, hw::Core &core,
                              kernel::Thread &client,
                              core::ServiceId svc,
                              const std::string &path, bool create);
    static int64_t clientRead(core::Transport &tr, hw::Core &core,
                              kernel::Thread &client,
                              core::ServiceId svc, int64_t fd,
                              uint64_t off, void *dst, uint64_t len);
    static int64_t clientWrite(core::Transport &tr, hw::Core &core,
                               kernel::Thread &client,
                               core::ServiceId svc, int64_t fd,
                               uint64_t off, const void *src,
                               uint64_t len);
    static int64_t clientClose(core::Transport &tr, hw::Core &core,
                               kernel::Thread &client,
                               core::ServiceId svc, int64_t fd);
    /** @return the file's size in bytes (FsOp::Stat). */
    static int64_t clientStat(core::Transport &tr, hw::Core &core,
                              kernel::Thread &client,
                              core::ServiceId svc, int64_t fd);
    static int64_t clientUnlink(core::Transport &tr, hw::Core &core,
                                kernel::Thread &client,
                                core::ServiceId svc,
                                const std::string &path);
    /// @}

  private:
    /** BlockIo routed over IPC scratch calls. */
    class IpcBlockIo : public fs::BlockIo
    {
      public:
        IpcBlockIo(core::Transport &tr, kernel::Thread &thread,
                   core::ServiceId disk)
            : transport(tr), fsThread(thread), diskSvc(disk)
        {}

        void read(uint32_t block_no, void *dst) override;
        void write(uint32_t block_no, const void *src) override;

        /** Per-request context. */
        hw::Core *core = nullptr;
        bool inHandler = false;
        /** Set when a disk call failed even after retries; the FS
         *  handler checks it and fails the whole invocation. */
        bool ioFailed = false;

      private:
        core::Transport &transport;
        kernel::Thread &fsThread;
        core::ServiceId diskSvc;
    };

    core::Transport &transport;
    kernel::Thread &fsThread;
    core::ServiceId svcId = 0;
    IpcBlockIo blockIo;
    fs::Xv6Fs filesystem;
    AdmissionController *admission = nullptr;
    ServiceTelemetry *telemetry = nullptr;

    void handle(core::ServerApi &api);
};

} // namespace xpc::services

#endif // XPC_SERVICES_FS_SERVER_HH
