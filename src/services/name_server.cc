#include "name_server.hh"

#include <cstring>
#include <vector>

#include "services/admission.hh"
#include "services/proto.hh"
#include "sim/logging.hh"

namespace xpc::services {

using namespace proto;

NameServer::NameServer(core::Transport &tr,
                       kernel::Thread &handler_thread)
    : transport(tr), serverThread(handler_thread)
{
    core::ServiceDesc desc;
    desc.name = "nameserver";
    desc.handlerThread = &handler_thread;
    desc.maxMsgBytes = 4096;
    svcId = transport.registerService(
        desc, [this](core::ServerApi &api) { handle(api); });
}

void
NameServer::bind(const std::string &name, core::ServiceId svc)
{
    panic_if(name.empty() || name.size() > fsMaxPath,
             "bad service name");
    names[name] = svc;
}

void
NameServer::publish(const std::string &name, core::ServiceId svc,
                    kernel::Thread &owner)
{
    bind(name, svc);
    // Give the name server the right to authorize clients: the
    // owner (who holds the grant-cap) lets it act on its behalf.
    // connect() below is where the actual grant happens per client.
    (void)owner;
}

void
NameServer::handle(core::ServerApi &api)
{
    if (!admitOrShed(admission, api))
        return;
    lookups.inc();
    // Request: a NUL-terminated service name.
    char raw[fsMaxPath + 1] = {};
    uint64_t probe = std::min<uint64_t>(fsMaxPath, api.requestLen());
    api.readRequest(0, raw, probe);
    raw[fsMaxPath] = 0;
    std::string name(raw);

    int64_t result = -1;
    auto it = names.find(name);
    if (it == names.end()) {
        misses.inc();
    } else {
        result = int64_t(it->second);
        // Authorize the caller: on capability transports this sets
        // the client's xcall-cap bit (set_xcap, paper Figure 4); on
        // Zircon it would hand over a channel handle.
        kernel::Thread *caller = api.callerThread();
        if (caller)
            transport.connect(*caller, it->second);
    }
    api.writeReply(0, &result, sizeof(result));
    api.setReplyLen(sizeof(result));
}

int64_t
NameServer::resolve(core::Transport &tr, hw::Core &core,
                    kernel::Thread &client, core::ServiceId ns,
                    const std::string &name)
{
    tr.requestArea(core, client, 4096);
    std::string keyed = name + std::string(1, '\0');
    tr.clientWrite(core, client, 0, keyed.data(), keyed.size());
    auto r = tr.call(core, client, ns, 0, keyed.size(), 4096);
    if (!r.ok)
        return -1;
    int64_t result = -1;
    tr.clientRead(core, client, 0, &result, sizeof(result));
    return result;
}

} // namespace xpc::services
