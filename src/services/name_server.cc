#include "name_server.hh"

#include <cstring>
#include <vector>

#include "services/admission.hh"
#include "services/proto.hh"
#include "sim/logging.hh"

namespace xpc::services {

using namespace proto;

NameServer::NameServer(core::Transport &tr,
                       kernel::Thread &handler_thread)
    : transport(tr), serverThread(handler_thread)
{
    core::ServiceDesc desc;
    desc.name = "nameserver";
    desc.handlerThread = &handler_thread;
    desc.maxMsgBytes = 4096;
    // The name server is the tenant boundary itself: every tenant
    // must be able to reach it even under tenancy enforcement.
    desc.sharedAcrossTenants = true;
    svcId = transport.registerService(
        desc, [this](core::ServerApi &api) { handle(api); });
}

NameServer::BindStatus
NameServer::bind(const std::string &name, core::ServiceId svc,
                 kernel::TenantId tenant)
{
    panic_if(name.empty() || name.size() > fsMaxPath,
             "bad service name");
    auto &space = spaces[tenant];
    if (space.count(name))
        return BindStatus::AlreadyBound;
    space[name] = svc;
    return BindStatus::Ok;
}

void
NameServer::rebind(const std::string &name, core::ServiceId svc,
                   kernel::TenantId tenant)
{
    panic_if(name.empty() || name.size() > fsMaxPath,
             "bad service name");
    spaces[tenant][name] = svc;
}

void
NameServer::publish(const std::string &name, core::ServiceId svc,
                    kernel::Thread &owner)
{
    BindStatus st = bind(name, svc, owner.tenant);
    panic_if(st != BindStatus::Ok,
             "publish: '%s' is already bound in tenant %u",
             name.c_str(), unsigned(owner.tenant));
    // Give the name server the right to authorize clients: the
    // owner (who holds the grant-cap) lets it act on its behalf.
    // connect() below is where the actual grant happens per client.
}

void
NameServer::handle(core::ServerApi &api)
{
    if (!admitOrShed(admission, api))
        return;
    lookups.inc();
    kernel::Thread *caller = api.callerThread();
    kernel::TenantId tenant =
        caller ? caller->tenant : kernel::defaultTenant;

    // Request: a NUL-terminated service name. Probe one byte past
    // fsMaxPath so an over-long name cannot masquerade (by
    // truncation) as a valid one; a request whose payload has no NUL
    // within requestLen() is rejected, not truncated.
    char raw[fsMaxPath + 2] = {};
    uint64_t probe =
        std::min<uint64_t>(fsMaxPath + 1, api.requestLen());
    if (probe > 0)
        api.readRequest(0, raw, probe);

    int64_t result = resolveBadName;
    if (probe == 0 || !memchr(raw, 0, probe) || raw[0] == 0) {
        badNames.inc();
    } else {
        std::string name(raw);
        bool hit = false;
        core::ServiceId svc = 0;
        auto space = spaces.find(tenant);
        if (space != spaces.end()) {
            auto it = space->second.find(name);
            if (it != space->second.end()) {
                svc = it->second;
                hit = true;
            }
        }
        if (!hit) {
            misses.inc();
            result = resolveMiss;
        } else {
            result = int64_t(svc);
            if (transport.tenantOf(svc) != tenant)
                crossTenantResolves.inc();
            // Authorize the caller: on capability transports this
            // sets the client's xcall-cap bit (set_xcap, paper
            // Figure 4); on Zircon it would hand over a channel
            // handle.
            if (caller)
                transport.connect(*caller, svc);
        }
    }
    api.writeReply(0, &result, sizeof(result));
    api.setReplyLen(sizeof(result));
}

int64_t
NameServer::resolve(core::Transport &tr, hw::Core &core,
                    kernel::Thread &client, core::ServiceId ns,
                    const std::string &name)
{
    tr.requestArea(core, client, 4096);
    std::string keyed = name + std::string(1, '\0');
    tr.clientWrite(core, client, 0, keyed.data(), keyed.size());
    auto r = tr.call(core, client, ns, 0, keyed.size(), 4096);
    if (!r.ok)
        return resolveFailed;
    if (r.replyLen < sizeof(int64_t))
        return resolveFailed;
    int64_t result = resolveMiss;
    tr.clientRead(core, client, 0, &result, sizeof(result));
    return result;
}

} // namespace xpc::services
