/**
 * @file
 * Crash recovery above the transport: a supervisor that notices dead
 * server processes, restarts them and re-registers the fresh instance
 * with the name server, plus a client-side call helper that retries
 * failed calls with capped, jittered exponential backoff. The helper
 * is deadline-aware (it never retries past the call's cycle budget)
 * and consults one circuit breaker per supervised service, so a
 * stalled or overloaded server is quarantined instead of hammered.
 *
 * Together with the error statuses the kernels and the XPC runtime
 * now propagate (TransportStatus), this closes the recovery loop the
 * paper's section 4.2 sketches for application termination: a server
 * dying mid-xcall surfaces as ServiceDead at the client, the
 * supervisor resurrects the service, and the retried call lands on
 * the new instance.
 */

#ifndef XPC_SERVICES_SUPERVISOR_HH
#define XPC_SERVICES_SUPERVISOR_HH

#include <functional>
#include <map>
#include <string>

#include "core/breaker.hh"
#include "services/name_server.hh"
#include "sim/random.hh"

namespace xpc::services {

class AdmissionController;

/** Client retry policy: capped exponential backoff. */
struct RetryPolicy
{
    uint32_t maxAttempts = 5;
    /** Backoff before retry k is base << k, capped below. */
    Cycles backoffBase{2000};
    Cycles backoffCap{64000};
    /** Decorrelate the backoff with seeded jitter (half fixed, half
     *  uniform); still fully deterministic for a given Supervisor
     *  seed. */
    bool jitter = true;
    /**
     * Cycle budget for the whole retried operation, 0 = none. Minted
     * as a deadline scope around every attempt, so the transports see
     * (and enforce) it on every hop, and no retry ever starts past
     * it.
     */
    Cycles deadlineCycles{0};
};

/** Restarts dead services and re-registers them by name. */
class Supervisor
{
  public:
    /**
     * Rebuild a dead service: spawn a fresh process and thread,
     * register the service on the transport, update @p server to the
     * new handler thread and return the new ServiceId.
     */
    using RestartFn = std::function<core::ServiceId(kernel::Thread *&server)>;

    Supervisor(core::Transport &transport, NameServer &ns)
        : transport(transport), nameServer(ns)
    {
        stats.addCounter("restarts", &restarts);
        stats.addCounter("recoveries", &recoveries);
        stats.addCounter("retries", &retries);
        stats.addCounter("breaker_rejected", &breakerRejected);
        stats.addCounter("breaker_trips", &breakerTrips);
        stats.addCounter("deadline_give_ups", &deadlineGiveUps);
    }

    /**
     * Put service @p name under supervision. The supervision group
     * it joins is the *server thread's* tenant: heal(tenant) only
     * ever touches that tenant's entries, and two tenants may
     * supervise the same name independently.
     */
    void supervise(const std::string &name, kernel::Thread &server,
                   core::ServiceId svc, RestartFn restart);

    /**
     * Install a stateful-recovery hook for @p name: heal() runs it
     * after the restart function but *before* re-registering the
     * fresh instance with the name server, so a journaled service
     * (fs, minidb) replays its journal while no client can reach it
     * yet. The hook sees the new ServiceId via currentId().
     */
    void setRecovery(const std::string &name,
                     std::function<void()> recover,
                     kernel::TenantId tenant = kernel::defaultTenant);

    /**
     * Attach the admission controller guarding @p name's server, so
     * heal() can drop its modelled backlog along with the breaker
     * state: the queue a dead server was drowning under died with it.
     */
    void setAdmission(const std::string &name,
                      AdmissionController *admission,
                      kernel::TenantId tenant = kernel::defaultTenant);

    /** True when the named service's server process is dead. */
    bool isDown(const std::string &name,
                kernel::TenantId tenant = kernel::defaultTenant) const;

    /**
     * Sweep every supervised service (all tenants); restart and
     * re-register the dead ones. @return how many were restarted.
     */
    uint64_t heal();

    /**
     * Per-tenant sweep: restart, recover and re-bind only @p
     * tenant's dead services, resetting only its breakers and
     * admission buckets. The blast radius of one tenant's crash-loop
     * stops here: healing it never touches another tenant's state.
     */
    uint64_t heal(kernel::TenantId tenant);

    /** The ServiceId currently serving @p name (tracks restarts). */
    core::ServiceId
    currentId(const std::string &name,
              kernel::TenantId tenant = kernel::defaultTenant) const;

    /**
     * Supervised client call: stage @p req, call @p name, consume the
     * reply into @p reply. On failure, heal dead services, back off
     * (charged to @p core, capped exponential) and retry. The name is
     * looked up in - and failures heal only - the *client's* tenant's
     * supervision group.
     * @return the reply length, or -1 once attempts are exhausted
     *         (lastStatus then says why the final attempt failed).
     */
    int64_t callWithRetry(hw::Core &core, kernel::Thread &client,
                          const std::string &name, uint64_t opcode,
                          const void *req, uint64_t req_len,
                          void *reply, uint64_t reply_cap,
                          const RetryPolicy &policy = {});

    /** Status of the most recent callWithRetry attempt. */
    core::TransportStatus lastStatus = core::TransportStatus::Ok;

    /**
     * When false, callWithRetry stops healing dead services before
     * each attempt: calls to a crashed service keep failing with
     * ServiceDead until someone invokes heal() explicitly. The
     * crash-mid-surge experiment flips this off to measure what
     * recovery time looks like *without* supervision.
     */
    bool autoHeal = true;

    /**
     * Lifecycle observer for the SLO health layer: invoked once per
     * healed service with event "recover" (stateful recovery hook
     * ran) and then "restart" (fresh instance re-bound). Observers
     * annotate regime timelines; they must not call back into the
     * supervisor.
     */
    std::function<void(const char *event, const std::string &name,
                       kernel::TenantId tenant)>
        onLifecycle;

    /**
     * Breaker tunables for every supervised service; set before the
     * first callWithRetry (breakers are created lazily per name).
     * Default-off: callWithRetry then never consults a breaker.
     */
    core::BreakerOptions breakerOpts;

    /** The named service's breaker (created on first use), one per
     *  (tenant, name): tripping tenant A's "kv" never quarantines
     *  tenant B's. */
    core::CircuitBreaker &
    breakerFor(const std::string &name,
               kernel::TenantId tenant = kernel::defaultTenant);

    /** Reseed the backoff-jitter PRNG (deterministic per seed). */
    void reseed(uint64_t seed) { rng = Rng(seed); }

    Counter restarts;
    /** Stateful recoveries run by heal() (setRecovery hooks). */
    Counter recoveries;
    Counter retries;
    Counter breakerRejected;
    Counter breakerTrips;
    Counter deadlineGiveUps;

    /** Registry node; benches attach it next to the system's. */
    StatGroup stats{"supervisor"};

  private:
    struct Entry
    {
        kernel::Thread *server = nullptr;
        core::ServiceId svc = 0;
        RestartFn restart;
        /** Journal replay etc., run between restart and re-bind. */
        std::function<void()> recover;
        AdmissionController *admission = nullptr;
    };

    /** Supervision key: (tenant, name). Ordered by tenant first, so
     *  a per-tenant heal() walks a contiguous range, and by name
     *  within a tenant - the same deterministic iteration order the
     *  single-tenant chaos suite always had. */
    using Key = std::pair<kernel::TenantId, std::string>;

    core::Transport &transport;
    NameServer &nameServer;
    std::map<Key, Entry> supervised;
    std::map<Key, core::CircuitBreaker> breakers;
    Rng rng{0xb4c0ffULL};

    /** Heal one entry if its server process is dead. */
    bool healEntry(const Key &key, Entry &entry);
};

} // namespace xpc::services

#endif // XPC_SERVICES_SUPERVISOR_HH
