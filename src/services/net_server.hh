/**
 * @file
 * The network servers of the paper's section 5.3: a network-stack
 * server (lwIP-like, holding the TCP engine) and a loopback device
 * server. Every transmitted segment crosses IPC to the device server
 * and back, so throughput directly reflects IPC cost.
 */

#ifndef XPC_SERVICES_NET_SERVER_HH
#define XPC_SERVICES_NET_SERVER_HH

#include "core/transport.hh"
#include "services/net/tcp.hh"

namespace xpc::services {

class AdmissionController;

/** The loopback device server: reflects every frame. */
class LoopbackDeviceServer
{
  public:
    /**
     * @param drop_every_nth when non-zero, drop every Nth frame
     *        (reply with zero bytes), exercising the TCP
     *        retransmission path.
     */
    LoopbackDeviceServer(core::Transport &transport,
                         kernel::Thread &handler_thread,
                         uint32_t drop_every_nth = 0);

    core::ServiceId id() const { return svcId; }

    Counter framesReflected;
    Counter framesDropped;

  private:
    core::Transport &transport;
    core::ServiceId svcId = 0;
    uint32_t dropEveryNth;
    uint64_t frameCounter = 0;
};

/** Protocol-processing compute costs (lwIP on an in-order core). */
struct NetStackCosts
{
    /** Socket-layer entry per send/recv call. */
    Cycles perCall{1800};
    /** TCP/IP output path per segment (header build, pcb update). */
    Cycles perSegment{1500};
    /** Checksum cycles per payload byte (computed + charged). */
    uint32_t checksumPerByte = 2;
};

/** The network-stack server. */
class NetStackServer
{
  public:
    NetStackServer(core::Transport &transport,
                   kernel::Thread &handler_thread,
                   core::ServiceId loopback_svc);

    core::ServiceId id() const { return svcId; }
    net::TcpStack &stack() { return tcp; }
    NetStackCosts costs;

    /** Returned by client wrappers when the call itself failed. */
    static constexpr int64_t callFailed = -1000;

    /** Attach admission control (null = off, the default). */
    void setAdmission(AdmissionController *adm) { admission = adm; }

    /// @name Typed client wrappers.
    /// @{
    static int64_t clientSocket(core::Transport &tr, hw::Core &core,
                                kernel::Thread &client,
                                core::ServiceId svc);
    static int64_t clientListen(core::Transport &tr, hw::Core &core,
                                kernel::Thread &client,
                                core::ServiceId svc, int64_t sock,
                                uint16_t port);
    static int64_t clientConnect(core::Transport &tr, hw::Core &core,
                                 kernel::Thread &client,
                                 core::ServiceId svc, int64_t sock,
                                 uint16_t port);
    static int64_t clientSend(core::Transport &tr, hw::Core &core,
                              kernel::Thread &client,
                              core::ServiceId svc, int64_t sock,
                              const void *data, uint64_t len);
    static int64_t clientRecv(core::Transport &tr, hw::Core &core,
                              kernel::Thread &client,
                              core::ServiceId svc, int64_t sock,
                              void *dst, uint64_t maxlen);
    /// @}

  private:
    core::Transport &transport;
    kernel::Thread &serverThread;
    core::ServiceId svcId = 0;
    core::ServiceId loopbackSvc;
    net::TcpStack tcp;
    AdmissionController *admission = nullptr;

    void handle(core::ServerApi &api);

    /** Transmit a frame to the device server and deliver the
     *  reflected copy back into the stack. Dropped frames (lossy
     *  device) are simply not delivered; the retransmission loop in
     *  the Send handler recovers them. */
    void xmitFrame(hw::Core &core, bool in_handler,
                   std::vector<uint8_t> &frame);
};

} // namespace xpc::services

#endif // XPC_SERVICES_NET_SERVER_HH
