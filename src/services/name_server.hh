/**
 * @file
 * The name server: how clients acquire x-entry IDs and capabilities
 * at run time (paper 3.1: "The client gets the server's ID as well
 * as the IPC capability, typically from its parent process or a name
 * server", and 6.1's L4-style name-server authentication).
 *
 * Servers register (name -> service) with the name server, handing
 * it the grant capability; clients then resolve names over IPC and
 * the name server grants them the xcall capability before replying
 * with the ID. Resolution is itself an IPC call, so the bootstrap
 * path costs what the paper says it costs.
 */

#ifndef XPC_SERVICES_NAME_SERVER_HH
#define XPC_SERVICES_NAME_SERVER_HH

#include <map>
#include <string>

#include "core/transport.hh"

namespace xpc::services {

class AdmissionController;

/** The name-server service. */
class NameServer
{
  public:
    NameServer(core::Transport &transport,
               kernel::Thread &handler_thread);

    core::ServiceId id() const { return svcId; }

    /**
     * Wiring-time registration: bind @p name to @p svc. For XPC
     * transports the registering server must also pass the
     * grant-cap for the backing x-entry to the name server's thread
     * (use publish() below, which does both).
     */
    void bind(const std::string &name, core::ServiceId svc);

    /**
     * Server-side convenience: bind @p name and forward the
     * grant-cap to the name server so it can authorize clients.
     */
    void publish(const std::string &name, core::ServiceId svc,
                 kernel::Thread &owner);

    /**
     * Client-side resolution over IPC: returns the ServiceId and, on
     * capability transports, leaves the client authorized to call it.
     * @return the service id, or -1 when the name is unknown.
     */
    static int64_t resolve(core::Transport &tr, hw::Core &core,
                           kernel::Thread &client, core::ServiceId ns,
                           const std::string &name);

    /** Attach admission control (null = off, the default). */
    void setAdmission(AdmissionController *adm) { admission = adm; }

    Counter lookups;
    Counter misses;

  private:
    core::Transport &transport;
    kernel::Thread &serverThread;
    core::ServiceId svcId = 0;
    std::map<std::string, core::ServiceId> names;
    AdmissionController *admission = nullptr;

    void handle(core::ServerApi &api);
};

} // namespace xpc::services

#endif // XPC_SERVICES_NAME_SERVER_HH
