/**
 * @file
 * The name server: how clients acquire x-entry IDs and capabilities
 * at run time (paper 3.1: "The client gets the server's ID as well
 * as the IPC capability, typically from its parent process or a name
 * server", and 6.1's L4-style name-server authentication).
 *
 * Servers register (name -> service) with the name server, handing
 * it the grant capability; clients then resolve names over IPC and
 * the name server grants them the xcall capability before replying
 * with the ID. Resolution is itself an IPC call, so the bootstrap
 * path costs what the paper says it costs.
 *
 * Tenancy: the server keeps one name table per TenantId and resolves
 * a request only against the *caller's* tenant's table (the caller's
 * tenant comes from its kernel thread). Two tenants can bind the
 * same name to different services, and neither can name - let alone
 * get a capability for - the other's. With everything in tenant 0
 * (the default) this degenerates to the old single global namespace.
 */

#ifndef XPC_SERVICES_NAME_SERVER_HH
#define XPC_SERVICES_NAME_SERVER_HH

#include <map>
#include <string>

#include "core/transport.hh"

namespace xpc::services {

class AdmissionController;

/** The name-server service. */
class NameServer
{
  public:
    NameServer(core::Transport &transport,
               kernel::Thread &handler_thread);

    core::ServiceId id() const { return svcId; }

    /** Outcome of a bind() attempt. */
    enum class BindStatus
    {
        Ok,
        /** The name is already bound in this tenant; bind() refuses
         *  to overwrite a live binding (use rebind()). */
        AlreadyBound,
    };

    /**
     * Wiring-time registration: bind @p name to @p svc inside
     * @p tenant's namespace. For XPC transports the registering
     * server must also pass the grant-cap for the backing x-entry to
     * the name server's thread (use publish() below, which does
     * both). Fails with AlreadyBound rather than silently stealing a
     * name another service answers to.
     */
    BindStatus bind(const std::string &name, core::ServiceId svc,
                    kernel::TenantId tenant = kernel::defaultTenant);

    /**
     * Replace a binding (or create it): the supervisor's restart
     * path, where the *same* logical service comes back under a
     * fresh ServiceId and must take its old name over.
     */
    void rebind(const std::string &name, core::ServiceId svc,
                kernel::TenantId tenant = kernel::defaultTenant);

    /**
     * Server-side convenience: bind @p name (in the owner's tenant)
     * and forward the grant-cap to the name server so it can
     * authorize clients.
     */
    void publish(const std::string &name, core::ServiceId svc,
                 kernel::Thread &owner);

    /// @name Typed results of resolve() / the wire protocol.
    /// All strictly negative so any valid ServiceId is distinct.
    /// @{
    /** The name is not bound in the caller's tenant. */
    static constexpr int64_t resolveMiss = -1;
    /** Malformed request: empty name, or no NUL terminator within
     *  requestLen() (includes oversized names). */
    static constexpr int64_t resolveBadName = -2;
    /** The resolution IPC itself failed, or the reply was shorter
     *  than the 8-byte result (client-side classification). */
    static constexpr int64_t resolveFailed = -3;
    /// @}

    /**
     * Client-side resolution over IPC: returns the ServiceId and, on
     * capability transports, leaves the client authorized to call it.
     * Looks up the *client's* tenant's namespace only.
     * @return the service id, or one of the negative typed results.
     */
    static int64_t resolve(core::Transport &tr, hw::Core &core,
                           kernel::Thread &client, core::ServiceId ns,
                           const std::string &name);

    /** Attach admission control (null = off, the default). */
    void setAdmission(AdmissionController *adm) { admission = adm; }

    Counter lookups;
    Counter misses;
    /** Requests rejected by the name-parsing hardening. */
    Counter badNames;
    /**
     * Resolutions that would have granted across a tenant boundary.
     * Structurally impossible (lookups never leave the caller's
     * table); the containment suite asserts it stays zero.
     */
    Counter crossTenantResolves;

  private:
    core::Transport &transport;
    kernel::Thread &serverThread;
    core::ServiceId svcId = 0;
    /** One namespace per tenant. */
    std::map<kernel::TenantId,
             std::map<std::string, core::ServiceId>> spaces;
    AdmissionController *admission = nullptr;

    void handle(core::ServerApi &api);
};

} // namespace xpc::services

#endif // XPC_SERVICES_NAME_SERVER_HH
