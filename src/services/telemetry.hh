/**
 * @file
 * Server-side tail-latency telemetry: the admit/complete recording
 * hooks the observability layer hangs off every service handler.
 *
 * A ServiceTelemetry bundles what one service instance exports:
 * a fixed-memory Histogram of handler service time (cycles between
 * handler entry and reply), admit/shed counters, and - when a
 * TimeSeries is attached - "done"/"shed" counter channels plus an
 * in-flight gauge, all keyed by the simulated cycle clock. Recording
 * costs no simulated cycles: telemetry observes the run, it never
 * perturbs it, so fig05/fig06 cycle tables stay byte-identical with
 * the layer compiled in.
 *
 * Servers opt in with setTelemetry() (null = off, the default - the
 * same pattern as setAdmission) and wrap their handler body in a
 * HandlerScope, which times the invocation and classifies it on
 * destruction. Because TenantRig rebuilds service instances on crash
 * restart, the ServiceTelemetry lives with the *stack*, not the
 * instance: a restarted server re-attaches to the same telemetry and
 * the histograms span incarnations.
 */

#ifndef XPC_SERVICES_TELEMETRY_HH
#define XPC_SERVICES_TELEMETRY_HH

#include <cstdint>
#include <string>

#include "sim/histogram.hh"
#include "sim/stats.hh"
#include "sim/timeseries.hh"

namespace xpc::core {
class ServerApi;
}
namespace xpc::hw {
class Core;
}

namespace xpc::services {

class ServiceTelemetry
{
  public:
    explicit ServiceTelemetry(std::string service_name);

    const std::string &name() const { return serviceName; }

    /**
     * Route windowed per-window curves into @p ts: creates counter
     * channels "<name>.done" / "<name>.shed" and gauge
     * "<name>.inflight". Null detaches.
     */
    void attachSeries(TimeSeries *ts);

    /** Handler service time in cycles, completed invocations only. */
    Histogram serviceCycles;
    /** Invocations that ran to completion. */
    Counter handled;
    /** Invocations refused admission (shed at the handler door). */
    Counter shedCount;

    /** Registry node "<service_name>" holding the stats above. */
    StatGroup stats;

  private:
    friend class HandlerScope;

    std::string serviceName;
    TimeSeries *series = nullptr;
    TimeSeries::ChannelId chDone = 0;
    TimeSeries::ChannelId chShed = 0;
    TimeSeries::ChannelId chInflight = 0;
    uint32_t inflight = 0;
};

/**
 * RAII handler probe: construct first thing in the handler, call
 * shed() when admission refuses the request. The destructor records
 * service time (or the shed) and updates the in-flight gauge. A null
 * telemetry pointer makes every operation a no-op, so un-instrumented
 * rigs pay nothing.
 */
class HandlerScope
{
  public:
    HandlerScope(ServiceTelemetry *t, core::ServerApi &api);
    ~HandlerScope();

    HandlerScope(const HandlerScope &) = delete;
    HandlerScope &operator=(const HandlerScope &) = delete;

    /** Mark this invocation as refused admission. */
    void shed() { wasShed = true; }

  private:
    ServiceTelemetry *tel;
    hw::Core *core = nullptr;
    uint64_t start = 0;
    bool wasShed = false;
};

} // namespace xpc::services

#endif // XPC_SERVICES_TELEMETRY_HH
