#include "admission.hh"

#include "core/transport.hh"
#include "sim/trace.hh"

namespace xpc::services {

AdmissionController::AdmissionController(std::string name,
                                         const AdmissionOptions &options)
    : stats("admission." + name), name_(std::move(name)), opts(options)
{
    stats.addCounter("admitted", &admitted);
    stats.addCounter("shed", &shed);
    stats.addCounter("shed_fair_share", &shedFairShare);
    stats.addCounter("shed_tenant_share", &shedTenantShare);
}

void
AdmissionController::drain(Bucket &b, uint64_t now) const
{
    if (now <= b.lastDrain) {
        b.lastDrain = now;
        return;
    }
    uint64_t leaked = (now - b.lastDrain) / opts.drainCycles.value();
    b.level = b.level > leaked ? b.level - leaked : 0;
    // Keep the remainder: advancing lastDrain only by whole drain
    // periods keeps the bucket an exact function of the cycle clock.
    b.lastDrain += leaked * opts.drainCycles.value();
}

bool
AdmissionController::admit(Cycles now, uint32_t client_id,
                           uint32_t tenant)
{
    uint64_t t = now.value();
    drain(global, t);

    Bucket *client = nullptr;
    if (opts.clientShare != 0 && client_id != 0) {
        client = &perClient[client_id];
        drain(*client, t);
        if (client->level >= opts.clientShare) {
            // This client already owns its fair share of the queue.
            shedFairShare.inc();
            shed.inc();
            trace::Tracer::global().instantNow(
                "admission", "shed", 0, name_ + " fair-share");
            return false;
        }
    }
    Bucket *tb = nullptr;
    if (opts.tenantShare != 0) {
        tb = &perTenant[tenant];
        drain(*tb, t);
        if (tb->level >= opts.tenantShare) {
            // This tenant already owns its fair share of the shared
            // queue; shedding here keeps its retry storm from
            // starving other tenants of the shared service.
            shedTenantShare.inc();
            shed.inc();
            trace::Tracer::global().instantNow(
                "admission", "shed", 0, name_ + " tenant-share");
            return false;
        }
    }
    if (global.level >= opts.highWatermark) {
        shed.inc();
        trace::Tracer::global().instantNow("admission", "shed", 0,
                                           name_ + " overload");
        return false;
    }
    global.level++;
    if (client)
        client->level++;
    if (tb)
        tb->level++;
    admitted.inc();
    return true;
}

void
AdmissionController::reset()
{
    global = Bucket{};
    perClient.clear();
    perTenant.clear();
}

void
AdmissionController::resetTenant(uint32_t tenant)
{
    perTenant.erase(tenant);
}

uint64_t
AdmissionController::tenantBacklogAt(Cycles now, uint32_t tenant) const
{
    auto it = perTenant.find(tenant);
    if (it == perTenant.end())
        return 0;
    Bucket b = it->second;
    drain(b, now.value());
    return b.level;
}

uint64_t
AdmissionController::backlogAt(Cycles now) const
{
    Bucket b = global;
    drain(b, now.value());
    return b.level;
}

bool
admitOrShed(AdmissionController *adm, core::ServerApi &api)
{
    if (!adm)
        return true;
    kernel::Thread *caller = api.callerThread();
    if (adm->admit(api.core().now(),
                   caller ? uint32_t(caller->id()) : 0,
                   caller ? uint32_t(caller->tenant) : 0))
        return true;
    api.fail(core::TransportStatus::Overloaded);
    api.setReplyLen(0);
    return false;
}

} // namespace xpc::services
