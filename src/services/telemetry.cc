#include "telemetry.hh"

#include "core/transport.hh"
#include "hw/core.hh"

namespace xpc::services {

ServiceTelemetry::ServiceTelemetry(std::string service_name)
    : stats(service_name), serviceName(std::move(service_name))
{
    stats.addHistogram("service_cycles", &serviceCycles);
    stats.addCounter("handled", &handled);
    stats.addCounter("shed", &shedCount);
}

void
ServiceTelemetry::attachSeries(TimeSeries *ts)
{
    series = ts;
    if (!series)
        return;
    chDone = series->counterChannel(serviceName + ".done");
    chShed = series->counterChannel(serviceName + ".shed");
    chInflight = series->gaugeChannel(serviceName + ".inflight");
}

HandlerScope::HandlerScope(ServiceTelemetry *t, core::ServerApi &api)
    : tel(t)
{
    if (!tel)
        return;
    core = &api.core();
    start = core->now().value();
    tel->inflight++;
    if (tel->series)
        tel->series->sample(tel->chInflight, start, tel->inflight);
}

HandlerScope::~HandlerScope()
{
    if (!tel)
        return;
    uint64_t end = core->now().value();
    if (wasShed) {
        tel->shedCount.inc();
        if (tel->series)
            tel->series->add(tel->chShed, end);
    } else {
        tel->handled.inc();
        tel->serviceCycles.record(end - start);
        if (tel->series)
            tel->series->add(tel->chDone, end);
    }
    tel->inflight--;
    if (tel->series)
        tel->series->sample(tel->chInflight, end, tel->inflight);
}

} // namespace xpc::services
