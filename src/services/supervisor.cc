#include "supervisor.hh"

#include <algorithm>

#include "sim/logging.hh"
#include "sim/trace.hh"

namespace xpc::services {

void
Supervisor::supervise(const std::string &name, kernel::Thread &server,
                      core::ServiceId svc, RestartFn restart)
{
    panic_if(!restart, "supervised service needs a restart function");
    supervised[name] = Entry{&server, svc, std::move(restart)};
}

bool
Supervisor::isDown(const std::string &name) const
{
    auto it = supervised.find(name);
    if (it == supervised.end())
        return false;
    const kernel::Thread *srv = it->second.server;
    return !srv || !srv->process() || srv->process()->dead;
}

uint64_t
Supervisor::heal()
{
    uint64_t healed = 0;
    for (auto &[name, entry] : supervised) {
        kernel::Thread *srv = entry.server;
        if (srv && srv->process() && !srv->process()->dead)
            continue;
        entry.svc = entry.restart(entry.server);
        nameServer.bind(name, entry.svc);
        restarts.inc();
        trace::Tracer::global().instantNow("supervisor", "restart", 0,
                                           name);
        healed++;
    }
    return healed;
}

core::ServiceId
Supervisor::currentId(const std::string &name) const
{
    auto it = supervised.find(name);
    if (it != supervised.end())
        return it->second.svc;
    return transport.lookup(name);
}

int64_t
Supervisor::callWithRetry(hw::Core &core, kernel::Thread &client,
                          const std::string &name, uint64_t opcode,
                          const void *req, uint64_t req_len,
                          void *reply, uint64_t reply_cap,
                          const RetryPolicy &policy)
{
    uint64_t area = std::max(req_len, reply_cap);
    for (uint32_t attempt = 0; attempt < policy.maxAttempts;
         attempt++) {
        if (attempt > 0) {
            retries.inc();
            // Capped exponential backoff, charged as idle time.
            uint64_t delay = policy.backoffBase.value()
                             << (attempt - 1);
            delay = std::min(delay, policy.backoffCap.value());
            core.spend(Cycles(delay));
        }
        heal();
        core::ServiceId svc = currentId(name);
        // Re-authorize every attempt: a restarted service means the
        // old capability grant died with the old instance.
        transport.connect(client, svc);
        transport.requestArea(core, client, area);
        if (req_len > 0 &&
            !transport.clientWrite(core, client, 0, req, req_len)) {
            // The staging copy faulted: calling now would send stale
            // bytes as a valid-looking request. Retry instead.
            lastStatus = core::TransportStatus::CopyFault;
            continue;
        }
        core::CallResult r = transport.call(core, client, svc, opcode,
                                            req_len, area);
        lastStatus = r.status;
        if (!r.ok)
            continue;
        uint64_t rlen = std::min<uint64_t>(r.replyLen, reply_cap);
        if (rlen > 0 &&
            !transport.clientRead(core, client, 0, reply, rlen)) {
            // The reply came back but its copy-out faulted. The op
            // already applied server-side, so supervised calls must
            // be idempotent (retry re-applies them).
            lastStatus = core::TransportStatus::CopyFault;
            continue;
        }
        return int64_t(rlen);
    }
    return -1;
}

} // namespace xpc::services
