#include "supervisor.hh"

#include <algorithm>

#include "services/admission.hh"
#include "sim/logging.hh"
#include "sim/request.hh"
#include "sim/trace.hh"

namespace xpc::services {

namespace {

/** Trace label for a supervised service: tenant-qualified only in
 *  multi-tenant rigs so single-tenant traces are byte-identical. */
std::string
traceLabel(const std::pair<kernel::TenantId, std::string> &key)
{
    if (key.first == kernel::defaultTenant)
        return key.second;
    return key.second + "@t" + std::to_string(key.first);
}

} // namespace

void
Supervisor::supervise(const std::string &name, kernel::Thread &server,
                      core::ServiceId svc, RestartFn restart)
{
    panic_if(!restart, "supervised service needs a restart function");
    Entry entry;
    entry.server = &server;
    entry.svc = svc;
    entry.restart = std::move(restart);
    supervised[{server.tenant, name}] = std::move(entry);
}

void
Supervisor::setRecovery(const std::string &name,
                        std::function<void()> recover,
                        kernel::TenantId tenant)
{
    auto it = supervised.find({tenant, name});
    panic_if(it == supervised.end(),
             "setRecovery on an unsupervised service '%s'",
             name.c_str());
    it->second.recover = std::move(recover);
}

void
Supervisor::setAdmission(const std::string &name,
                         AdmissionController *admission,
                         kernel::TenantId tenant)
{
    auto it = supervised.find({tenant, name});
    panic_if(it == supervised.end(),
             "setAdmission on an unsupervised service '%s'",
             name.c_str());
    it->second.admission = admission;
}

bool
Supervisor::isDown(const std::string &name,
                   kernel::TenantId tenant) const
{
    auto it = supervised.find({tenant, name});
    if (it == supervised.end())
        return false;
    const kernel::Thread *srv = it->second.server;
    return !srv || !srv->process() || srv->process()->dead;
}

bool
Supervisor::healEntry(const Key &key, Entry &entry)
{
    kernel::Thread *srv = entry.server;
    if (srv && srv->process() && !srv->process()->dead)
        return false;
    entry.svc = entry.restart(entry.server);
    if (entry.recover) {
        // Stateful recovery (journal replay) runs before the
        // re-bind: no client can reach the fresh instance until
        // its durable state is consistent again.
        entry.recover();
        recoveries.inc();
        trace::Tracer::global().instantNow("supervisor", "recover", 0,
                                           traceLabel(key));
        if (onLifecycle)
            onLifecycle("recover", key.second, key.first);
    }
    // rebind, not bind: the restarted instance deliberately takes
    // its old name over from the dead one.
    nameServer.rebind(key.second, entry.svc, key.first);
    // The failures that tripped the breaker - and the backlog
    // that tripped admission control - died with the old
    // instance. A restarted service starts with a clean slate;
    // stale quarantine would shed the first calls to it.
    auto brk = breakers.find(key);
    if (brk != breakers.end())
        brk->second.reset();
    if (entry.admission)
        entry.admission->reset();
    restarts.inc();
    trace::Tracer::global().instantNow("supervisor", "restart", 0,
                                       traceLabel(key));
    if (onLifecycle)
        onLifecycle("restart", key.second, key.first);
    return true;
}

uint64_t
Supervisor::heal()
{
    uint64_t healed = 0;
    for (auto &[key, entry] : supervised)
        healed += healEntry(key, entry) ? 1 : 0;
    return healed;
}

uint64_t
Supervisor::heal(kernel::TenantId tenant)
{
    uint64_t healed = 0;
    auto it = supervised.lower_bound({tenant, std::string()});
    for (; it != supervised.end() && it->first.first == tenant; ++it)
        healed += healEntry(it->first, it->second) ? 1 : 0;
    return healed;
}

core::ServiceId
Supervisor::currentId(const std::string &name,
                      kernel::TenantId tenant) const
{
    auto it = supervised.find({tenant, name});
    if (it != supervised.end())
        return it->second.svc;
    return transport.lookup(name, tenant);
}

core::CircuitBreaker &
Supervisor::breakerFor(const std::string &name,
                       kernel::TenantId tenant)
{
    Key key{tenant, name};
    auto it = breakers.find(key);
    if (it == breakers.end())
        it = breakers.emplace(key, core::CircuitBreaker(breakerOpts))
                 .first;
    return it->second;
}

int64_t
Supervisor::callWithRetry(hw::Core &core, kernel::Thread &client,
                          const std::string &name, uint64_t opcode,
                          const void *req, uint64_t req_len,
                          void *reply, uint64_t reply_cap,
                          const RetryPolicy &policy)
{
    // Blast-radius containment: everything below - the name lookup,
    // the breaker, the heal on failure - is scoped to the *caller's*
    // tenant. A client retrying into its crashed tenant never
    // restarts, re-binds or resets anything owned by another.
    const kernel::TenantId tenant = client.tenant;
    uint64_t area = std::max(req_len, reply_cap);
    // Mint a deadline for the whole retried operation; the transports
    // inherit (and enforce) it on every hop, and nested scopes can
    // only tighten it.
    req::DeadlineScope dscope(
        policy.deadlineCycles.value() != 0
            ? (core.now() + policy.deadlineCycles).value()
            : 0);
    const uint64_t deadline =
        req::RequestContext::global().currentDeadline();
    core::CircuitBreaker *brk =
        breakerOpts.enabled ? &breakerFor(name, tenant) : nullptr;
    auto noteFailure = [&] {
        if (!brk)
            return;
        uint64_t before = brk->trips();
        brk->onFailure(core.now());
        if (brk->trips() != before) {
            breakerTrips.inc();
            trace::Tracer::global().instantNow(
                "supervisor", "breaker_trip", 0,
                traceLabel({tenant, name}));
        }
    };
    for (uint32_t attempt = 0; attempt < policy.maxAttempts;
         attempt++) {
        if (attempt > 0) {
            retries.inc();
            // Capped exponential backoff, charged as idle time.
            uint64_t delay = policy.backoffBase.value()
                             << (attempt - 1);
            delay = std::min(delay, policy.backoffCap.value());
            if (policy.jitter && delay > 1) {
                // Decorrelate retries: half the delay is fixed, half
                // is drawn from the seeded PRNG, so replays with the
                // same seed back off identically.
                delay = delay / 2 + rng.nextBounded(delay / 2 + 1);
            }
            if (deadline != 0) {
                uint64_t now = core.now().value();
                if (now >= deadline)
                    break;
                // Never sleep past the deadline.
                delay = std::min(delay, deadline - now);
            }
            core.spend(Cycles(delay));
        }
        if (deadline != 0 && core.now().value() >= deadline) {
            // Out of budget before this attempt could even start.
            lastStatus = core::TransportStatus::DeadlineExpired;
            deadlineGiveUps.inc();
            trace::Tracer::global().instantNow(
                "supervisor", "deadline_give_up", 0,
                traceLabel({tenant, name}));
            break;
        }
        if (brk && !brk->allow(core.now())) {
            // Quarantined: don't touch the transport at all. The
            // backoff above keeps advancing the clock toward the
            // cooldown, so a later attempt may become the probe.
            lastStatus = core::TransportStatus::BreakerOpen;
            breakerRejected.inc();
            continue;
        }
        if (autoHeal)
            heal(tenant);
        core::ServiceId svc = currentId(name, tenant);
        // Re-authorize every attempt: a restarted service means the
        // old capability grant died with the old instance.
        transport.connect(client, svc);
        transport.requestArea(core, client, area);
        if (req_len > 0 &&
            !transport.clientWrite(core, client, 0, req, req_len)) {
            // The staging copy faulted: calling now would send stale
            // bytes as a valid-looking request. Retry instead.
            lastStatus = core::TransportStatus::CopyFault;
            noteFailure();
            continue;
        }
        core::CallResult r = transport.call(core, client, svc, opcode,
                                            req_len, area);
        lastStatus = r.status;
        if (!r.ok) {
            noteFailure();
            continue;
        }
        uint64_t rlen = std::min<uint64_t>(r.replyLen, reply_cap);
        if (rlen > 0 &&
            !transport.clientRead(core, client, 0, reply, rlen)) {
            // The reply came back but its copy-out faulted. The op
            // already applied server-side, so supervised calls must
            // be idempotent (retry re-applies them).
            lastStatus = core::TransportStatus::CopyFault;
            noteFailure();
            continue;
        }
        if (brk)
            brk->onSuccess(core.now());
        return int64_t(rlen);
    }
    return -1;
}

} // namespace xpc::services
