#include "xv6fs.hh"

#include <algorithm>
#include <cstring>

#include "services/journal.hh"
#include "sim/logging.hh"

namespace xpc::services::fs {

namespace {

constexpr uint32_t inodesPerBlock =
    uint32_t(fsBlockBytes / sizeof(DiskInode));
constexpr uint32_t direntsPerBlock =
    uint32_t(fsBlockBytes / sizeof(Dirent));
constexpr uint32_t bitsPerBlock = uint32_t(fsBlockBytes * 8);

// The log's commit record is the shared checksummed WAL header
// (services/journal): block sb.logStart holds the encoded record,
// blocks sb.logStart+1.. hold the n logged images it describes.
static_assert(journal::WalHeader::encodedBytes(maxOpBlocks) <=
                  fsBlockBytes,
              "log commit record must fit one block");

} // namespace

// --------------------------------------------------------------------
// BufCache
// --------------------------------------------------------------------

BufCache::BufCache(uint32_t nbufs) : capacity(nbufs)
{
    panic_if(nbufs == 0, "buffer cache needs at least one buffer");
}

BufCache::Buf &
BufCache::get(BlockIo &io, uint32_t block_no)
{
    for (auto &b : bufs) {
        if (b.valid && b.blockNo == block_no) {
            hits.inc();
            b.lru = ++clock;
            return b;
        }
    }
    misses.inc();

    if (bufs.size() >= capacity) {
        // Evict the least recently used unpinned buffer, writing it
        // back if dirty.
        auto victim = bufs.end();
        for (auto it = bufs.begin(); it != bufs.end(); ++it) {
            if (it->pinned)
                continue;
            if (victim == bufs.end() || it->lru < victim->lru)
                victim = it;
        }
        if (victim != bufs.end()) {
            if (victim->valid && victim->dirty)
                io.write(victim->blockNo, victim->data.data());
            bufs.erase(victim);
        }
        // All pinned: allow temporary growth past capacity.
    }

    bufs.emplace_back();
    Buf &b = bufs.back();
    b.blockNo = block_no;
    b.valid = true;
    b.dirty = false;
    b.lru = ++clock;
    io.read(block_no, b.data.data());
    return b;
}

void
BufCache::pin(uint32_t block_no, bool pinned)
{
    for (auto &b : bufs) {
        if (b.valid && b.blockNo == block_no) {
            b.pinned = pinned;
            return;
        }
    }
}

void
BufCache::flush(BlockIo &io, uint32_t block_no)
{
    for (auto &b : bufs) {
        if (b.valid && b.blockNo == block_no && b.dirty) {
            io.write(b.blockNo, b.data.data());
            b.dirty = false;
            return;
        }
    }
}

void
BufCache::flushAll(BlockIo &io)
{
    for (auto &b : bufs) {
        if (b.valid && b.dirty) {
            io.write(b.blockNo, b.data.data());
            b.dirty = false;
        }
    }
}

void
BufCache::invalidateAll()
{
    bufs.clear();
}

// --------------------------------------------------------------------
// mkfs and mount
// --------------------------------------------------------------------

Xv6Fs::Xv6Fs() : fdTable(64) {}

void
Xv6Fs::mkfs(BlockIo &io, uint32_t total_blocks, uint32_t ninodes,
            uint32_t nlog)
{
    panic_if(nlog < maxOpBlocks + 1, "log too small");
    uint32_t ninodeblocks = (ninodes + inodesPerBlock - 1) /
                            inodesPerBlock;
    uint32_t nbitmap = (total_blocks + bitsPerBlock - 1) /
                       bitsPerBlock;

    SuperBlock sb{};
    sb.magic = fsMagic;
    sb.size = total_blocks;
    sb.ninodes = ninodes;
    sb.nlog = nlog;
    sb.logStart = 1;
    sb.inodeStart = sb.logStart + nlog;
    sb.bmapStart = sb.inodeStart + ninodeblocks;
    uint32_t data_start = sb.bmapStart + nbitmap;
    panic_if(data_start >= total_blocks, "disk too small for metadata");
    sb.nblocks = total_blocks - data_start;

    std::array<uint8_t, fsBlockBytes> zero{};
    // Superblock.
    std::array<uint8_t, fsBlockBytes> blk{};
    std::memcpy(blk.data(), &sb, sizeof(sb));
    io.write(0, blk.data());
    // Clean log header.
    io.write(sb.logStart, zero.data());
    // Zeroed inodes.
    for (uint32_t b = 0; b < ninodeblocks; b++)
        io.write(sb.inodeStart + b, zero.data());
    // Bitmap: metadata blocks (everything below data_start) are used.
    for (uint32_t b = 0; b < nbitmap; b++) {
        std::array<uint8_t, fsBlockBytes> bits{};
        for (uint32_t i = 0; i < bitsPerBlock; i++) {
            uint32_t block = b * bitsPerBlock + i;
            if (block < data_start)
                bits[i / 8] |= uint8_t(1 << (i % 8));
        }
        io.write(sb.bmapStart + b, bits.data());
    }

    // Root directory inode.
    DiskInode root{};
    root.type = uint16_t(InodeType::Dir);
    root.nlink = 1;
    root.size = 0;
    std::array<uint8_t, fsBlockBytes> iblk{};
    io.read(sb.inodeStart + rootIno / inodesPerBlock, iblk.data());
    std::memcpy(iblk.data() +
                    (rootIno % inodesPerBlock) * sizeof(DiskInode),
                &root, sizeof(root));
    io.write(sb.inodeStart + rootIno / inodesPerBlock, iblk.data());
}

int64_t
Xv6Fs::mount(BlockIo &device)
{
    io = &device;
    bcache.invalidateAll();
    std::array<uint8_t, fsBlockBytes> blk;
    io->read(0, blk.data());
    std::memcpy(&sb, blk.data(), sizeof(sb));
    if (sb.magic != fsMagic)
        return fsErrNotFound;

    // Crash recovery: replay a committed log. The commit record is
    // checksummed (services/journal), so a record the crash tore -
    // or one whose logged images never all reached the disk - is
    // detected and discarded instead of half-replayed: the
    // transaction it described simply never happened.
    io->read(sb.logStart, blk.data());
    journal::WalHeader hdr;
    bool committed = journal::WalHeader::decode(blk.data(), blk.size(),
                                               &hdr);
    if (committed) {
        std::vector<std::array<uint8_t, fsBlockBytes>> images(
            hdr.entries.size());
        for (size_t i = 0; i < hdr.entries.size(); i++) {
            io->read(uint32_t(sb.logStart + 1 + i), images[i].data());
            if (!journal::walPayloadMatches(hdr.entries[i],
                                            images[i].data(),
                                            fsBlockBytes)) {
                committed = false;
                break;
            }
        }
        if (committed) {
            // Idempotent redo: installing twice lands the same bytes.
            for (size_t i = 0; i < hdr.entries.size(); i++)
                io->write(hdr.entries[i].no, images[i].data());
        }
        // Either way the record is consumed: clear it.
        blk.fill(0);
        io->write(sb.logStart, blk.data());
    }
    recovered = committed;
    return fsOk;
}

// --------------------------------------------------------------------
// The log
// --------------------------------------------------------------------

void
Xv6Fs::beginOp()
{
    panic_if(inOp, "nested FS transactions are not supported");
    inOp = true;
    dirtyBlocks.clear();
    transactions.inc();
}

void
Xv6Fs::logWrite(uint32_t block_no)
{
    panic_if(!inOp, "logWrite outside a transaction");
    // Absorption: a block dirtied twice is logged once.
    if (std::find(dirtyBlocks.begin(), dirtyBlocks.end(), block_no) ==
        dirtyBlocks.end()) {
        panic_if(dirtyBlocks.size() >= maxOpBlocks,
                 "transaction exceeds the log (%u blocks)",
                 unsigned(maxOpBlocks));
        dirtyBlocks.push_back(block_no);
        bcache.pin(block_no, true);
        logWrites.inc();
    }
}

void
Xv6Fs::endOp()
{
    panic_if(!inOp, "endOp outside a transaction");
    inOp = false;
    if (dirtyBlocks.empty())
        return;

    // 1. Copy dirty blocks into the on-disk log, checksumming each
    //    image into the commit record as it goes out.
    journal::WalHeader hdr;
    hdr.seq = transactions.value();
    for (size_t i = 0; i < dirtyBlocks.size(); i++) {
        BufCache::Buf &b = bread(dirtyBlocks[i]);
        io->write(uint32_t(sb.logStart + 1 + i), b.data.data());
        hdr.entries.push_back(
            {dirtyBlocks[i],
             journal::walCrc(b.data.data(), fsBlockBytes)});
    }
    // 2. Commit: write the checksummed record. The atomic point - a
    //    crash before this write leaves an undecodable record and the
    //    transaction never happened; after it, recovery redoes it.
    std::array<uint8_t, fsBlockBytes> blk{};
    std::vector<uint8_t> rec;
    hdr.encodeTo(&rec);
    std::memcpy(blk.data(), rec.data(), rec.size());
    io->write(sb.logStart, blk.data());
    // 3. Install to home locations.
    installLog(false);
    // 4. Clear the record.
    blk.fill(0);
    io->write(sb.logStart, blk.data());
    for (uint32_t block_no : dirtyBlocks)
        bcache.pin(block_no, false);
    dirtyBlocks.clear();
}

void
Xv6Fs::installLog(bool from_recovery)
{
    (void)from_recovery;
    for (uint32_t block_no : dirtyBlocks) {
        BufCache::Buf &b = bread(block_no);
        io->write(block_no, b.data.data());
        b.dirty = false;
    }
}

// --------------------------------------------------------------------
// Low-level allocation
// --------------------------------------------------------------------

BufCache::Buf &
Xv6Fs::bread(uint32_t block_no)
{
    panic_if(!io, "file system not mounted");
    return bcache.get(*io, block_no);
}

uint32_t
Xv6Fs::balloc()
{
    for (uint32_t b = 0; b < sb.size; b += bitsPerBlock) {
        uint32_t bmap_block = sb.bmapStart + b / bitsPerBlock;
        BufCache::Buf &buf = bread(bmap_block);
        for (uint32_t i = 0; i < bitsPerBlock && b + i < sb.size; i++) {
            uint8_t mask = uint8_t(1 << (i % 8));
            if (!(buf.data[i / 8] & mask)) {
                buf.data[i / 8] |= mask;
                buf.dirty = true;
                logWrite(bmap_block);
                // Fresh blocks are zeroed.
                BufCache::Buf &nb = bread(b + i);
                nb.data.fill(0);
                nb.dirty = true;
                logWrite(b + i);
                return b + i;
            }
        }
    }
    return 0; // no space
}

void
Xv6Fs::bfree(uint32_t block_no)
{
    uint32_t bmap_block = sb.bmapStart + block_no / bitsPerBlock;
    BufCache::Buf &buf = bread(bmap_block);
    uint32_t i = block_no % bitsPerBlock;
    uint8_t mask = uint8_t(1 << (i % 8));
    if (!(buf.data[i / 8] & mask)) {
        // An already-free bit here means the bitmap came off a
        // faulted disk read (zeros). Leak the block instead of
        // taking the whole server down; the supervisor will rebuild
        // the volume when the device is restarted.
        leakedBlocks.inc();
        return;
    }
    buf.data[i / 8] &= uint8_t(~mask);
    buf.dirty = true;
    logWrite(bmap_block);
}

DiskInode
Xv6Fs::readInode(uint32_t inum)
{
    panic_if(inum >= sb.ninodes, "inode %u out of range", inum);
    BufCache::Buf &b = bread(sb.inodeStart + inum / inodesPerBlock);
    DiskInode ino;
    std::memcpy(&ino,
                b.data.data() +
                    (inum % inodesPerBlock) * sizeof(DiskInode),
                sizeof(ino));
    return ino;
}

void
Xv6Fs::writeInode(uint32_t inum, const DiskInode &ino)
{
    uint32_t block = sb.inodeStart + inum / inodesPerBlock;
    BufCache::Buf &b = bread(block);
    std::memcpy(b.data.data() +
                    (inum % inodesPerBlock) * sizeof(DiskInode),
                &ino, sizeof(ino));
    b.dirty = true;
    logWrite(block);
}

uint32_t
Xv6Fs::ialloc(InodeType type)
{
    for (uint32_t inum = 1; inum < sb.ninodes; inum++) {
        DiskInode ino = readInode(inum);
        if (ino.type == uint16_t(InodeType::Free)) {
            DiskInode fresh{};
            fresh.type = uint16_t(type);
            fresh.nlink = 1;
            writeInode(inum, fresh);
            return inum;
        }
    }
    return 0;
}

uint32_t
Xv6Fs::bmap(uint32_t inum, DiskInode &ino, uint32_t bn, bool alloc)
{
    if (bn < ndirect) {
        if (ino.addrs[bn] == 0 && alloc) {
            ino.addrs[bn] = balloc();
            writeInode(inum, ino);
        }
        return ino.addrs[bn];
    }
    bn -= ndirect;
    panic_if(bn >= nindirect, "file block %u beyond maximum size",
             bn + ndirect);
    if (ino.addrs[ndirect] == 0) {
        if (!alloc)
            return 0;
        ino.addrs[ndirect] = balloc();
        writeInode(inum, ino);
    }
    uint32_t iblock = ino.addrs[ndirect];
    BufCache::Buf &b = bread(iblock);
    uint32_t addr;
    std::memcpy(&addr, b.data.data() + bn * 4, 4);
    if (addr == 0 && alloc) {
        addr = balloc();
        BufCache::Buf &b2 = bread(iblock);
        std::memcpy(b2.data.data() + bn * 4, &addr, 4);
        b2.dirty = true;
        logWrite(iblock);
    }
    return addr;
}

void
Xv6Fs::itrunc(uint32_t inum, DiskInode &ino)
{
    for (uint32_t i = 0; i < ndirect; i++) {
        if (ino.addrs[i]) {
            bfree(ino.addrs[i]);
            ino.addrs[i] = 0;
        }
    }
    if (ino.addrs[ndirect]) {
        BufCache::Buf &b = bread(ino.addrs[ndirect]);
        for (uint32_t i = 0; i < nindirect; i++) {
            uint32_t addr;
            std::memcpy(&addr, b.data.data() + i * 4, 4);
            if (addr)
                bfree(addr);
        }
        bfree(ino.addrs[ndirect]);
        ino.addrs[ndirect] = 0;
    }
    ino.size = 0;
    writeInode(inum, ino);
}

int64_t
Xv6Fs::readi(uint32_t inum, uint64_t off, void *dst, uint64_t len)
{
    DiskInode ino = readInode(inum);
    if (off >= ino.size)
        return 0;
    len = std::min<uint64_t>(len, ino.size - off);
    auto *out = static_cast<uint8_t *>(dst);
    uint64_t done = 0;
    while (done < len) {
        uint32_t bn = uint32_t((off + done) / fsBlockBytes);
        uint64_t boff = (off + done) % fsBlockBytes;
        uint64_t chunk = std::min<uint64_t>(len - done,
                                            fsBlockBytes - boff);
        uint32_t addr = bmap(inum, ino, bn, false);
        if (addr == 0) {
            std::memset(out + done, 0, chunk); // hole
        } else {
            BufCache::Buf &b = bread(addr);
            std::memcpy(out + done, b.data.data() + boff, chunk);
        }
        done += chunk;
    }
    return int64_t(done);
}

int64_t
Xv6Fs::writei(uint32_t inum, uint64_t off, const void *src,
              uint64_t len)
{
    DiskInode ino = readInode(inum);
    auto *in = static_cast<const uint8_t *>(src);
    uint64_t done = 0;
    while (done < len) {
        uint32_t bn = uint32_t((off + done) / fsBlockBytes);
        uint64_t boff = (off + done) % fsBlockBytes;
        uint64_t chunk = std::min<uint64_t>(len - done,
                                            fsBlockBytes - boff);
        uint32_t addr = bmap(inum, ino, bn, true);
        if (addr == 0)
            return done > 0 ? int64_t(done) : fsErrNoSpace;
        BufCache::Buf &b = bread(addr);
        std::memcpy(b.data.data() + boff, in + done, chunk);
        b.dirty = true;
        logWrite(addr);
        done += chunk;
    }
    if (off + len > ino.size) {
        // Re-read: bmap may have updated the inode via writeInode.
        ino = readInode(inum);
        ino.size = uint32_t(off + len);
        writeInode(inum, ino);
    }
    return int64_t(done);
}

// --------------------------------------------------------------------
// Directories and paths
// --------------------------------------------------------------------

std::vector<std::string>
Xv6Fs::splitPath(const std::string &path)
{
    std::vector<std::string> parts;
    std::string cur;
    for (char c : path) {
        if (c == '/') {
            if (!cur.empty()) {
                parts.push_back(cur);
                cur.clear();
            }
        } else {
            cur.push_back(c);
        }
    }
    if (!cur.empty())
        parts.push_back(cur);
    return parts;
}

int64_t
Xv6Fs::dirLookup(uint32_t dir_inum, const std::string &name)
{
    DiskInode dir = readInode(dir_inum);
    if (dir.type != uint16_t(InodeType::Dir))
        return fsErrNotDir;
    for (uint64_t off = 0; off < dir.size; off += sizeof(Dirent)) {
        Dirent de;
        readi(dir_inum, off, &de, sizeof(de));
        if (de.inum != 0 &&
            std::strncmp(de.name, name.c_str(), dirNameLen) == 0) {
            return de.inum;
        }
    }
    return fsErrNotFound;
}

int64_t
Xv6Fs::dirLink(uint32_t dir_inum, const std::string &name,
               uint32_t inum)
{
    if (name.size() >= dirNameLen)
        return fsErrNameTooLong;
    if (dirLookup(dir_inum, name) >= 0)
        return fsErrExists;

    DiskInode dir = readInode(dir_inum);
    Dirent de{};
    uint64_t off = 0;
    for (; off < dir.size; off += sizeof(Dirent)) {
        readi(dir_inum, off, &de, sizeof(de));
        if (de.inum == 0)
            break;
    }
    std::memset(&de, 0, sizeof(de));
    de.inum = inum;
    std::strncpy(de.name, name.c_str(), dirNameLen - 1);
    int64_t r = writei(dir_inum, off, &de, sizeof(de));
    return r == sizeof(de) ? fsOk : r;
}

int64_t
Xv6Fs::dirUnlink(uint32_t dir_inum, const std::string &name)
{
    DiskInode dir = readInode(dir_inum);
    for (uint64_t off = 0; off < dir.size; off += sizeof(Dirent)) {
        Dirent de;
        readi(dir_inum, off, &de, sizeof(de));
        if (de.inum != 0 &&
            std::strncmp(de.name, name.c_str(), dirNameLen) == 0) {
            std::memset(&de, 0, sizeof(de));
            writei(dir_inum, off, &de, sizeof(de));
            return fsOk;
        }
    }
    return fsErrNotFound;
}

bool
Xv6Fs::dirEmpty(uint32_t dir_inum)
{
    DiskInode dir = readInode(dir_inum);
    for (uint64_t off = 0; off < dir.size; off += sizeof(Dirent)) {
        Dirent de;
        readi(dir_inum, off, &de, sizeof(de));
        if (de.inum != 0)
            return false;
    }
    return true;
}

int64_t
Xv6Fs::namei(const std::string &path, bool parent, std::string *last)
{
    std::vector<std::string> parts = splitPath(path);
    if (parent) {
        if (parts.empty())
            return fsErrNotFound;
        if (last)
            *last = parts.back();
        parts.pop_back();
    }
    uint32_t inum = rootIno;
    for (const std::string &name : parts) {
        int64_t next = dirLookup(inum, name);
        if (next < 0)
            return next;
        inum = uint32_t(next);
    }
    return inum;
}

// --------------------------------------------------------------------
// Public file API
// --------------------------------------------------------------------

int64_t
Xv6Fs::open(const std::string &path, bool create)
{
    int64_t inum = namei(path, false, nullptr);
    if (inum < 0) {
        if (!create)
            return inum;
        std::string name;
        int64_t dir = namei(path, true, &name);
        if (dir < 0)
            return dir;
        beginOp();
        uint32_t fresh = ialloc(InodeType::File);
        if (fresh == 0) {
            endOp();
            return fsErrNoSpace;
        }
        int64_t r = dirLink(uint32_t(dir), name, fresh);
        endOp();
        if (r < 0)
            return r;
        inum = fresh;
    } else {
        DiskInode ino = readInode(uint32_t(inum));
        if (ino.type == uint16_t(InodeType::Dir))
            return fsErrIsDir;
    }

    for (size_t fd = 0; fd < fdTable.size(); fd++) {
        if (!fdTable[fd].used) {
            fdTable[fd] = OpenFile{true, uint32_t(inum)};
            return int64_t(fd);
        }
    }
    return fsErrNoSpace;
}

int64_t
Xv6Fs::pread(int64_t fd, uint64_t off, void *dst, uint64_t len)
{
    if (fd < 0 || size_t(fd) >= fdTable.size() || !fdTable[fd].used)
        return fsErrBadFd;
    return readi(fdTable[fd].inum, off, dst, len);
}

int64_t
Xv6Fs::pwrite(int64_t fd, uint64_t off, const void *src, uint64_t len)
{
    if (fd < 0 || size_t(fd) >= fdTable.size() || !fdTable[fd].used)
        return fsErrBadFd;
    auto *in = static_cast<const uint8_t *>(src);
    // Split into transactions that fit the log, as xv6's sys_write
    // does for large writes.
    uint64_t max_bytes = uint64_t(maxOpBlocks - 8) * fsBlockBytes;
    uint64_t done = 0;
    while (done < len) {
        uint64_t chunk = std::min(len - done, max_bytes);
        beginOp();
        int64_t r = writei(fdTable[fd].inum, off + done, in + done,
                           chunk);
        endOp();
        if (r < 0)
            return done > 0 ? int64_t(done) : r;
        done += uint64_t(r);
        if (uint64_t(r) < chunk)
            break;
    }
    return int64_t(done);
}

int64_t
Xv6Fs::close(int64_t fd)
{
    if (fd < 0 || size_t(fd) >= fdTable.size() || !fdTable[fd].used)
        return fsErrBadFd;
    fdTable[fd].used = false;
    return fsOk;
}

int64_t
Xv6Fs::fileSize(int64_t fd)
{
    if (fd < 0 || size_t(fd) >= fdTable.size() || !fdTable[fd].used)
        return fsErrBadFd;
    return readInode(fdTable[fd].inum).size;
}

int64_t
Xv6Fs::unlink(const std::string &path)
{
    std::string name;
    int64_t dir = namei(path, true, &name);
    if (dir < 0)
        return dir;
    int64_t inum = dirLookup(uint32_t(dir), name);
    if (inum < 0)
        return inum;

    DiskInode ino = readInode(uint32_t(inum));
    if (ino.type == uint16_t(InodeType::Dir) &&
        !dirEmpty(uint32_t(inum))) {
        return fsErrNotEmpty;
    }

    beginOp();
    dirUnlink(uint32_t(dir), name);
    ino.nlink--;
    if (ino.nlink == 0) {
        itrunc(uint32_t(inum), ino);
        ino.type = uint16_t(InodeType::Free);
    }
    writeInode(uint32_t(inum), ino);
    endOp();
    return fsOk;
}

int64_t
Xv6Fs::mkdir(const std::string &path)
{
    std::string name;
    int64_t dir = namei(path, true, &name);
    if (dir < 0)
        return dir;
    if (dirLookup(uint32_t(dir), name) >= 0)
        return fsErrExists;
    beginOp();
    uint32_t fresh = ialloc(InodeType::Dir);
    if (fresh == 0) {
        endOp();
        return fsErrNoSpace;
    }
    int64_t r = dirLink(uint32_t(dir), name, fresh);
    endOp();
    return r;
}

void
Xv6Fs::sync()
{
    panic_if(!io, "file system not mounted");
    bcache.flushAll(*io);
}

} // namespace xpc::services::fs
