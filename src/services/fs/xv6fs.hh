/**
 * @file
 * A log-based file system in the xv6/FSCQ lineage (the paper ports
 * xv6fs from FSCQ and runs it over a ram-disk server).
 *
 * On-disk layout:
 *   [ super | log header + log | inodes | free bitmap | data ]
 *
 * Every mutating operation runs inside a transaction: modified
 * blocks are first written to the on-disk log, the log header commit
 * is the atomic point, then blocks are installed in their home
 * locations and the header is cleared. Recovery replays a committed
 * log, so a crash at any block-write boundary leaves the file system
 * consistent (property-tested).
 *
 * Disk access goes through the abstract BlockIo, which in the full
 * system is IPC to the BlockDeviceServer - that is exactly the
 * traffic the paper's Figure 7 measures.
 */

#ifndef XPC_SERVICES_FS_XV6FS_HH
#define XPC_SERVICES_FS_XV6FS_HH

#include <array>
#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "sim/stats.hh"

namespace xpc::services::fs {

constexpr uint64_t fsBlockBytes = 4096;
constexpr uint32_t ndirect = 12;
constexpr uint32_t nindirect = fsBlockBytes / 4;
constexpr uint32_t rootIno = 1;
constexpr uint32_t fsMagic = 0x10203040;
/** Blocks one transaction may dirty (bounded by the log size). */
constexpr uint32_t maxOpBlocks = 48;
constexpr uint32_t dirNameLen = 28;

/** File type stored in an inode. */
enum class InodeType : uint16_t { Free = 0, Dir = 1, File = 2 };

/** On-disk superblock (block 0). */
struct SuperBlock
{
    uint32_t magic;
    uint32_t size;       ///< total blocks
    uint32_t nblocks;    ///< data blocks
    uint32_t ninodes;
    uint32_t nlog;
    uint32_t logStart;
    uint32_t inodeStart;
    uint32_t bmapStart;
};

/** On-disk inode. */
struct DiskInode
{
    uint16_t type;
    uint16_t nlink;
    uint32_t size;
    uint32_t addrs[ndirect + 1]; ///< direct + one indirect
};

/** Directory entry. */
struct Dirent
{
    uint32_t inum;
    char name[dirNameLen];
};

/** Abstract block device (IPC-backed in the real system). */
class BlockIo
{
  public:
    virtual ~BlockIo() = default;
    virtual void read(uint32_t block_no, void *dst) = 0;
    virtual void write(uint32_t block_no, const void *src) = 0;
};

/** Write-back buffer cache over a BlockIo (xv6's bcache). */
class BufCache
{
  public:
    explicit BufCache(uint32_t nbufs = 64);

    struct Buf
    {
        uint32_t blockNo = 0;
        bool valid = false;
        bool dirty = false;
        /** Pinned buffers (in-transaction) are never evicted, so no
         *  home-location write can precede the log commit. */
        bool pinned = false;
        uint64_t lru = 0;
        std::array<uint8_t, fsBlockBytes> data;
    };

    /** Pin/unpin a block against eviction. */
    void pin(uint32_t block_no, bool pinned);

    /** Get the buffer for @p block_no, reading it if needed. A dirty
     *  LRU victim is written back through @p io. */
    Buf &get(BlockIo &io, uint32_t block_no);

    /** Write a specific block through (used by the log installer). */
    void flush(BlockIo &io, uint32_t block_no);

    /** Write every dirty buffer through. */
    void flushAll(BlockIo &io);

    /** Drop all cached state (crash simulation). */
    void invalidateAll();

    Counter hits;
    Counter misses;

  private:
    uint32_t capacity;
    uint64_t clock = 0;
    std::list<Buf> bufs;
};

/** Result codes (negative errno-style values). */
enum FsStatus : int64_t
{
    fsOk = 0,
    fsErrNotFound = -2,
    fsErrExists = -17,
    fsErrNoSpace = -28,
    fsErrBadFd = -9,
    fsErrIsDir = -21,
    fsErrNotDir = -20,
    fsErrNameTooLong = -36,
    fsErrNotEmpty = -39,
};

/** The file system proper. */
class Xv6Fs
{
  public:
    Xv6Fs();

    /** Format a fresh file system onto @p io. */
    static void mkfs(BlockIo &io, uint32_t total_blocks,
                     uint32_t ninodes = 512, uint32_t nlog = 64);

    /** Attach to a formatted device, replaying a committed log. */
    int64_t mount(BlockIo &io);

    /** True when a committed-but-uninstalled log was replayed. */
    bool recoveredOnMount() const { return recovered; }

    /// @name File API (pread/pwrite style, errno-like returns).
    /// @{
    int64_t open(const std::string &path, bool create);
    int64_t pread(int64_t fd, uint64_t off, void *dst, uint64_t len);
    int64_t pwrite(int64_t fd, uint64_t off, const void *src,
                   uint64_t len);
    int64_t close(int64_t fd);
    int64_t fileSize(int64_t fd);
    int64_t unlink(const std::string &path);
    int64_t mkdir(const std::string &path);
    /// @}

    /** Flush the buffer cache through to the device. */
    void sync();

    BufCache &cache() { return bcache; }

    Counter transactions;
    Counter logWrites;
    /** Blocks leaked instead of double-freed off a corrupt bitmap. */
    Counter leakedBlocks;

  private:
    BlockIo *io = nullptr;
    SuperBlock sb{};
    BufCache bcache;
    bool recovered = false;

    struct OpenFile
    {
        bool used = false;
        uint32_t inum = 0;
    };
    std::vector<OpenFile> fdTable;

    /// @name Transactions (the xv6 log).
    /// @{
    bool inOp = false;
    std::vector<uint32_t> dirtyBlocks; ///< absorbed, ordered
    void beginOp();
    void logWrite(uint32_t block_no);
    void endOp();
    void installLog(bool from_recovery);
    /// @}

    /// @name Low-level helpers.
    /// @{
    BufCache::Buf &bread(uint32_t block_no);
    uint32_t balloc();
    void bfree(uint32_t block_no);
    DiskInode readInode(uint32_t inum);
    void writeInode(uint32_t inum, const DiskInode &ino);
    uint32_t ialloc(InodeType type);
    /** Map file block @p bn to a disk block, allocating if asked. */
    uint32_t bmap(uint32_t inum, DiskInode &ino, uint32_t bn,
                  bool alloc);
    void itrunc(uint32_t inum, DiskInode &ino);
    int64_t readi(uint32_t inum, uint64_t off, void *dst, uint64_t len);
    int64_t writei(uint32_t inum, uint64_t off, const void *src,
                   uint64_t len);
    /// @}

    /// @name Path handling.
    /// @{
    static std::vector<std::string> splitPath(const std::string &path);
    int64_t dirLookup(uint32_t dir_inum, const std::string &name);
    int64_t dirLink(uint32_t dir_inum, const std::string &name,
                    uint32_t inum);
    int64_t dirUnlink(uint32_t dir_inum, const std::string &name);
    bool dirEmpty(uint32_t dir_inum);
    /** Resolve @p path; with @p parent, stop one level early and
     *  return the final component via @p last. */
    int64_t namei(const std::string &path, bool parent,
                  std::string *last);
    /// @}
};

} // namespace xpc::services::fs

#endif // XPC_SERVICES_FS_XV6FS_HH
