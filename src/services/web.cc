#include "web.hh"

#include <cstdio>
#include <cstring>

#include "services/admission.hh"
#include "services/proto.hh"
#include "services/telemetry.hh"
#include "sim/logging.hh"

namespace xpc::services {

using namespace proto;

// --------------------------------------------------------------------
// File cache
// --------------------------------------------------------------------

FileCacheServer::FileCacheServer(core::Transport &tr,
                                 kernel::Thread &handler_thread)
    : transport(tr)
{
    core::ServiceDesc desc;
    desc.name = "filecache";
    desc.handlerThread = &handler_thread;
    desc.maxMsgBytes = 256 * 1024;
    svcId = transport.registerService(
        desc, [this](core::ServerApi &api) { handle(api); });
}

void
FileCacheServer::preload(const std::string &path,
                         std::vector<uint8_t> data)
{
    files[path] = std::move(data);
}

void
FileCacheServer::handle(core::ServerApi &api)
{
    if (!admitOrShed(admission, api))
        return;
    panic_if(api.opcode() != uint64_t(CacheOp::Get),
             "unknown cache opcode %lu", (unsigned long)api.opcode());
    gets.inc();

    // The request is a NUL-terminated path in the first bytes.
    char raw[fsMaxPath + 1] = {};
    uint64_t probe = std::min<uint64_t>(fsMaxPath, api.requestLen());
    if (probe == 0)
        probe = fsMaxPath;
    api.readRequest(0, raw, probe);
    raw[fsMaxPath] = 0;
    std::string path(raw);

    auto it = files.find(path);
    if (it == files.end()) {
        misses.inc();
        static const char body[] = "404 Not Found";
        api.writeReply(0, body, sizeof(body) - 1);
        api.setReplyLen(sizeof(body) - 1);
        return;
    }
    api.writeReply(0, it->second.data(), it->second.size());
    api.setReplyLen(it->second.size());
}

// --------------------------------------------------------------------
// Crypto server
// --------------------------------------------------------------------

CryptoServer::CryptoServer(core::Transport &tr,
                           kernel::Thread &handler_thread,
                           const uint8_t key[crypto::Aes128::keyBytes])
    : transport(tr), aes(key)
{
    core::ServiceDesc desc;
    desc.name = "crypto";
    desc.handlerThread = &handler_thread;
    desc.maxMsgBytes = 256 * 1024;
    svcId = transport.registerService(
        desc, [this](core::ServerApi &api) { handle(api); });
}

void
CryptoServer::handle(core::ServerApi &api)
{
    if (!admitOrShed(admission, api))
        return;
    requests.inc();
    uint64_t len = api.requestLen();
    panic_if(len % crypto::Aes128::blockBytes != 0,
             "crypto payload must be block aligned (%lu bytes)",
             (unsigned long)len);
    std::vector<uint8_t> buf(len);
    api.readRequest(0, buf.data(), len);

    static const uint8_t iv[crypto::Aes128::blockBytes] = {};
    switch (CryptoOp(api.opcode())) {
      case CryptoOp::Encrypt:
        aes.encryptCbc(buf.data(), len, iv);
        break;
      case CryptoOp::Decrypt:
        aes.decryptCbc(buf.data(), len, iv);
        break;
      default:
        panic("unknown crypto opcode %lu",
              (unsigned long)api.opcode());
    }
    // Charge the cipher compute to the executing core.
    api.core().spend(Cycles(crypto::Aes128::costCycles(len)));

    api.writeReply(0, buf.data(), len);
    api.setReplyLen(len);
}

// --------------------------------------------------------------------
// HTTP server
// --------------------------------------------------------------------

HttpServer::HttpServer(core::Transport &tr,
                       kernel::Thread &handler_thread,
                       core::ServiceId cache_svc,
                       core::ServiceId crypto_svc, bool encrypt_on,
                       uint64_t max_body)
    : transport(tr), cacheSvc(cache_svc), cryptoSvc(crypto_svc),
      encrypt(encrypt_on), maxBody(max_body)
{
    core::ServiceDesc desc;
    desc.name = "http";
    desc.handlerThread = &handler_thread;
    desc.maxMsgBytes = bodyOff + max_body + 64;
    desc.selfAppendBytes = bodyOff;
    desc.callees = {cache_svc};
    if (encrypt_on)
        desc.callees.push_back(crypto_svc);
    svcId = transport.registerService(
        desc, [this](core::ServerApi &api) { handle(api); });
}

void
HttpServer::handle(core::ServerApi &api)
{
    HandlerScope probe(telemetry, api);
    if (!admitOrShed(admission, api)) {
        probe.shed();
        return;
    }
    requests.inc();

    // Parse "GET /path HTTP/1.1" from the request text after the
    // 16-byte reply preamble.
    char text[128] = {};
    uint64_t text_len =
        std::min<uint64_t>(sizeof(text) - 1,
                           api.requestLen() - sizeof(HttpReplyHeader));
    api.readRequest(sizeof(HttpReplyHeader), text, text_len);
    std::string line(text);
    std::string path;
    bool ok = false;
    if (line.rfind("GET ", 0) == 0) {
        size_t sp = line.find(' ', 4);
        if (sp != std::string::npos) {
            path = line.substr(4, sp - 4);
            ok = true;
        }
    }

    uint64_t body_len = 0;
    int status = 200;
    if (!ok) {
        status = 400;
        static const char bad[] = "Bad Request";
        api.writeRequest(bodyOff, bad, sizeof(bad) - 1);
        body_len = sizeof(bad) - 1;
    } else {
        // Stage the path at the body window and hand the window to
        // the cache server, which fills it with the file content.
        std::string keyed = path + std::string(1, '\0');
        api.writeRequest(bodyOff, keyed.data(), keyed.size());
        body_len = api.callService(cacheSvc, uint64_t(CacheOp::Get),
                                   bodyOff, maxBody, keyed.size());
        if (api.failStatus != core::TransportStatus::Ok) {
            // The cache died or the hop faulted; the invocation is
            // already marked failed, don't build a reply on garbage.
            api.setReplyLen(0);
            return;
        }
        if (body_len == 13) {
            // Crude 404 detection mirrors real static servers that
            // stat() first; the cache reply is still served.
            char probe[13];
            api.readRequest(bodyOff, probe, sizeof(probe));
            if (std::memcmp(probe, "404 Not Found", 13) == 0) {
                status = 404;
                notFound.inc();
            }
        }
    }

    if (encrypt && status == 200) {
        // Pad to the cipher block and encrypt in place.
        uint64_t padded = (body_len + crypto::Aes128::blockBytes - 1) &
                          ~uint64_t(crypto::Aes128::blockBytes - 1);
        if (padded != body_len) {
            uint8_t zeros[crypto::Aes128::blockBytes] = {};
            api.writeRequest(bodyOff + body_len, zeros,
                             padded - body_len);
        }
        uint64_t r = api.callService(
            cryptoSvc, uint64_t(CryptoOp::Encrypt), bodyOff, padded);
        if (api.failStatus != core::TransportStatus::Ok ||
            r != padded) {
            // A dead crypto server must not take the HTTP server
            // down with it; fail this invocation only.
            if (api.failStatus == core::TransportStatus::Ok)
                api.fail(core::TransportStatus::NestedFailure);
            api.setReplyLen(0);
            return;
        }
        body_len = padded;
    }

    // Response headers immediately before the body.
    char hdr[bodyOff];
    int hdr_len = std::snprintf(
        hdr, sizeof(hdr),
        "HTTP/1.1 %d %s\r\nServer: xpc-httpd\r\n"
        "Content-Length: %llu\r\nConnection: keep-alive\r\n\r\n",
        status, status == 200 ? "OK" : (status == 404 ? "Not Found"
                                                      : "Bad Request"),
        (unsigned long long)body_len);
    panic_if(hdr_len <= 0 || uint64_t(hdr_len) >
                                 bodyOff - sizeof(HttpReplyHeader),
             "header overflow");
    uint64_t hdr_off = bodyOff - uint64_t(hdr_len);
    api.writeReply(hdr_off, hdr, uint64_t(hdr_len));

    HttpReplyHeader pre{hdr_off, uint64_t(hdr_len) + body_len};
    uint8_t pre_raw[sizeof(pre)];
    packInto(pre_raw, pre);
    api.writeReply(0, pre_raw, sizeof(pre_raw));

    // The body is already in place within the message.
    api.replyFromRequest(bodyOff, body_len);
    api.setReplyLen(bodyOff + body_len);
}

int64_t
HttpServer::clientGet(core::Transport &tr, hw::Core &core,
                      kernel::Thread &client, core::ServiceId svc,
                      const std::string &path,
                      std::vector<uint8_t> *response, uint64_t max_body)
{
    uint64_t area = bodyOff + max_body + 64;
    tr.requestArea(core, client, area);

    std::string text = "GET " + path + " HTTP/1.1\r\n\r\n";
    tr.clientWrite(core, client, sizeof(HttpReplyHeader), text.data(),
                   text.size());
    auto r = tr.call(core, client, svc, uint64_t(HttpOp::Request),
                     sizeof(HttpReplyHeader) + text.size(), area);
    if (!r.ok)
        return -1;

    uint8_t pre_raw[sizeof(HttpReplyHeader)];
    tr.clientRead(core, client, 0, pre_raw, sizeof(pre_raw));
    auto pre = unpackFrom<HttpReplyHeader>(pre_raw);
    if (response) {
        response->resize(pre.respLen);
        tr.clientRead(core, client, pre.respOff, response->data(),
                      pre.respLen);
    }
    return int64_t(pre.respLen);
}

} // namespace xpc::services
