/**
 * @file
 * AES-128 (FIPS-197): key expansion, block encrypt/decrypt, and
 * CBC-mode helpers. This is a complete software implementation used
 * by the crypto service of the paper's web-server experiment; the
 * bytes are computed for real (validated against the FIPS-197 and
 * NIST SP 800-38A vectors in the tests) and the simulated compute
 * cost is charged per byte by the caller.
 */

#ifndef XPC_SERVICES_CRYPTO_AES_HH
#define XPC_SERVICES_CRYPTO_AES_HH

#include <array>
#include <cstdint>
#include <cstddef>

namespace xpc::services::crypto {

/** AES-128 cipher context with a precomputed key schedule. */
class Aes128
{
  public:
    static constexpr size_t blockBytes = 16;
    static constexpr size_t keyBytes = 16;

    /** Expand @p key into the round-key schedule. */
    explicit Aes128(const uint8_t key[keyBytes]);

    /** Encrypt one 16-byte block (ECB primitive). */
    void encryptBlock(const uint8_t in[blockBytes],
                      uint8_t out[blockBytes]) const;

    /** Decrypt one 16-byte block. */
    void decryptBlock(const uint8_t in[blockBytes],
                      uint8_t out[blockBytes]) const;

    /**
     * CBC-encrypt @p len bytes in place. @p len must be a multiple of
     * the block size (callers zero-pad).
     */
    void encryptCbc(uint8_t *data, size_t len,
                    const uint8_t iv[blockBytes]) const;

    /** CBC-decrypt @p len bytes in place. */
    void decryptCbc(uint8_t *data, size_t len,
                    const uint8_t iv[blockBytes]) const;

    /**
     * Simulated cost of processing @p len bytes on an in-order core
     * (an optimized T-table implementation runs at roughly a dozen
     * cycles per byte).
     */
    static uint64_t
    costCycles(uint64_t len)
    {
        return len * 12;
    }

  private:
    static constexpr int rounds = 10;
    std::array<uint32_t, 4 * (rounds + 1)> roundKeys;
};

} // namespace xpc::services::crypto

#endif // XPC_SERVICES_CRYPTO_AES_HH
