#include "journal.hh"

#include <cstring>

namespace xpc::services::journal {

namespace {

struct CrcTable
{
    uint32_t t[256];

    CrcTable()
    {
        for (uint32_t i = 0; i < 256; i++) {
            uint32_t c = i;
            for (int k = 0; k < 8; k++)
                c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
            t[i] = c;
        }
    }
};

const CrcTable crcTable;

} // namespace

uint32_t
walCrc(const void *data, size_t len, uint32_t seed)
{
    const auto *p = static_cast<const uint8_t *>(data);
    uint32_t c = seed ^ 0xffffffffu;
    for (size_t i = 0; i < len; i++)
        c = crcTable.t[(c ^ p[i]) & 0xff] ^ (c >> 8);
    return c ^ 0xffffffffu;
}

void
WalHeader::encodeTo(std::vector<uint8_t> *out) const
{
    out->resize(encodedBytes());
    uint8_t *p = out->data();
    uint32_t magic = walMagic;
    uint32_t n = uint32_t(entries.size());
    std::memcpy(p, &magic, 4);
    std::memcpy(p + 4, &n, 4);
    std::memcpy(p + 8, &seq, 8);
    for (size_t i = 0; i < entries.size(); i++) {
        std::memcpy(p + 16 + i * 8, &entries[i].no, 4);
        std::memcpy(p + 16 + i * 8 + 4, &entries[i].crc, 4);
    }
    uint32_t hcrc = walCrc(p, out->size() - 4);
    std::memcpy(p + out->size() - 4, &hcrc, 4);
}

bool
WalHeader::decode(const uint8_t *raw, size_t len, WalHeader *out)
{
    if (len < encodedBytes(0))
        return false;
    uint32_t magic, n;
    std::memcpy(&magic, raw, 4);
    if (magic != walMagic)
        return false;
    std::memcpy(&n, raw + 4, 4);
    size_t need = encodedBytes(n);
    if (n == 0 || need > len)
        return false;
    uint32_t hcrc, want;
    std::memcpy(&hcrc, raw + need - 4, 4);
    want = walCrc(raw, need - 4);
    if (hcrc != want)
        return false;
    out->entries.clear();
    std::memcpy(&out->seq, raw + 8, 8);
    out->entries.resize(n);
    for (uint32_t i = 0; i < n; i++) {
        std::memcpy(&out->entries[i].no, raw + 16 + i * 8, 4);
        std::memcpy(&out->entries[i].crc, raw + 16 + i * 8 + 4, 4);
    }
    return true;
}

bool
walPayloadMatches(const WalEntry &e, const void *payload,
                  size_t payload_len)
{
    return walCrc(payload, payload_len) == e.crc;
}

} // namespace xpc::services::journal
