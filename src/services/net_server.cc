#include "net_server.hh"

#include <cstring>
#include <vector>

#include "services/admission.hh"
#include "services/proto.hh"
#include "sim/logging.hh"

namespace xpc::services {

using namespace proto;

LoopbackDeviceServer::LoopbackDeviceServer(
    core::Transport &tr, kernel::Thread &handler_thread,
    uint32_t drop_every_nth)
    : transport(tr), dropEveryNth(drop_every_nth)
{
    core::ServiceDesc desc;
    desc.name = "loopback";
    desc.handlerThread = &handler_thread;
    desc.maxMsgBytes = 4096;
    svcId = transport.registerService(
        desc, [this](core::ServerApi &api) {
            panic_if(api.opcode() != uint64_t(DevOp::Xmit),
                     "unknown device opcode");
            frameCounter++;
            if (dropEveryNth != 0 &&
                frameCounter % dropEveryNth == 0) {
                // The wire ate it: no reply payload.
                framesDropped.inc();
                api.setReplyLen(0);
                return;
            }
            framesReflected.inc();
            // A loopback "transmits" by handing the frame straight
            // back: the reply is the request.
            api.replyFromRequest(0, api.requestLen());
        });
}

NetStackServer::NetStackServer(core::Transport &tr,
                               kernel::Thread &handler_thread,
                               core::ServiceId loopback_svc)
    : transport(tr), serverThread(handler_thread),
      loopbackSvc(loopback_svc)
{
    hw::Core &boot_core = transport.kernelRef().machine().core(
        handler_thread.sched.homeCore);
    transport.prepareScratch(boot_core, handler_thread, 4096);

    core::ServiceDesc desc;
    desc.name = "netstack";
    desc.handlerThread = &handler_thread;
    desc.maxMsgBytes = 256 * 1024;
    desc.selfAppendBytes = sizeof(net::TcpHeader) + fsDataOffset;
    desc.callees = {loopback_svc};
    svcId = transport.registerService(
        desc, [this](core::ServerApi &api) { handle(api); });
}

void
NetStackServer::xmitFrame(hw::Core &core, bool in_handler,
                          std::vector<uint8_t> &frame)
{
    // TCP output path: header construction, PCB bookkeeping and the
    // Internet checksum over the payload.
    core.spend(costs.perSegment);
    core.spend(Cycles(costs.checksumPerByte * frame.size()));
    std::vector<uint8_t> reflected(frame.size());
    uint64_t got = transport.scratchCall(
        core, serverThread, in_handler, loopbackSvc,
        uint64_t(DevOp::Xmit), frame.data(), frame.size(),
        reflected.data(), reflected.size());
    if (got == 0)
        return; // the device dropped it; RTO will resend
    panic_if(got != frame.size(), "loopback truncated a frame");
    tcp.deliver(reflected.data(), got);
}

void
NetStackServer::handle(core::ServerApi &api)
{
    if (!admitOrShed(admission, api))
        return;
    uint8_t hdr_raw[sizeof(FsMsg)];
    api.readRequest(0, hdr_raw, sizeof(hdr_raw));
    FsMsg req = unpackFrom<FsMsg>(hdr_raw);
    FsMsg reply{};

    hw::Core &core = api.core();
    core.spend(costs.perCall);
    auto xmit = [&](std::vector<uint8_t> &frame) {
        xmitFrame(core, true, frame);
    };

    switch (NetOp(api.opcode())) {
      case NetOp::Socket:
        reply.a = tcp.socket();
        break;
      case NetOp::Listen:
        reply.a = tcp.listen(req.a, uint16_t(req.b));
        break;
      case NetOp::Connect:
        reply.a = tcp.connect(req.a, uint16_t(req.b), xmit);
        break;
      case NetOp::Send: {
        std::vector<uint8_t> data(req.c);
        if (req.c > 0)
            api.readRequest(fsDataOffset, data.data(),
                            uint64_t(req.c));
        reply.a = tcp.send(req.a, data.data(), uint64_t(req.c), xmit);
        // RTO loop: resend anything a lossy device dropped, with a
        // bounded number of rounds.
        for (int rto = 0;
             rto < 16 && tcp.pendingBytes(req.a) > 0; rto++) {
            tcp.retransmit(req.a, xmit);
        }
        break;
      }
      case NetOp::Recv: {
        std::vector<uint8_t> data(req.c);
        int64_t n = tcp.recv(req.a, data.data(), uint64_t(req.c));
        reply.a = n;
        if (n > 0)
            api.writeReply(fsDataOffset, data.data(), uint64_t(n));
        break;
      }
      case NetOp::CloseSock:
        reply.a = tcp.close(req.a);
        break;
      default:
        panic("unknown net opcode %lu", (unsigned long)api.opcode());
    }

    uint8_t reply_raw[sizeof(FsMsg)];
    packInto(reply_raw, reply);
    api.writeReply(0, reply_raw, sizeof(reply_raw));
    if (api.opcode() == uint64_t(NetOp::Recv) && reply.a > 0)
        api.setReplyLen(fsDataOffset + uint64_t(reply.a));
    else
        api.setReplyLen(sizeof(FsMsg));
}

namespace {

int64_t
netCall(core::Transport &tr, hw::Core &core, kernel::Thread &client,
        core::ServiceId svc, NetOp op, const FsMsg &msg,
        const void *payload, uint64_t payload_len, void *reply_data,
        uint64_t reply_data_cap)
{
    tr.requestArea(core, client,
                   fsDataOffset + std::max(payload_len,
                                           reply_data_cap));
    uint8_t hdr[sizeof(FsMsg)];
    packInto(hdr, msg);
    tr.clientWrite(core, client, 0, hdr, sizeof(hdr));
    if (payload_len > 0)
        tr.clientWrite(core, client, fsDataOffset, payload,
                       payload_len);
    auto r = tr.call(core, client, svc, uint64_t(op),
                     fsDataOffset + payload_len,
                     fsDataOffset + reply_data_cap);
    if (!r.ok)
        return NetStackServer::callFailed;
    uint8_t reply_raw[sizeof(FsMsg)];
    tr.clientRead(core, client, 0, reply_raw, sizeof(reply_raw));
    FsMsg reply = unpackFrom<FsMsg>(reply_raw);
    if (reply.a > 0 && reply_data) {
        uint64_t n = std::min<uint64_t>(uint64_t(reply.a),
                                        reply_data_cap);
        tr.clientRead(core, client, fsDataOffset, reply_data, n);
    }
    return reply.a;
}

} // namespace

int64_t
NetStackServer::clientSocket(core::Transport &tr, hw::Core &core,
                             kernel::Thread &client,
                             core::ServiceId svc)
{
    return netCall(tr, core, client, svc, NetOp::Socket, FsMsg{},
                   nullptr, 0, nullptr, 0);
}

int64_t
NetStackServer::clientListen(core::Transport &tr, hw::Core &core,
                             kernel::Thread &client,
                             core::ServiceId svc, int64_t sock,
                             uint16_t port)
{
    FsMsg msg;
    msg.a = sock;
    msg.b = port;
    return netCall(tr, core, client, svc, NetOp::Listen, msg, nullptr,
                   0, nullptr, 0);
}

int64_t
NetStackServer::clientConnect(core::Transport &tr, hw::Core &core,
                              kernel::Thread &client,
                              core::ServiceId svc, int64_t sock,
                              uint16_t port)
{
    FsMsg msg;
    msg.a = sock;
    msg.b = port;
    return netCall(tr, core, client, svc, NetOp::Connect, msg, nullptr,
                   0, nullptr, 0);
}

int64_t
NetStackServer::clientSend(core::Transport &tr, hw::Core &core,
                           kernel::Thread &client, core::ServiceId svc,
                           int64_t sock, const void *data, uint64_t len)
{
    FsMsg msg;
    msg.a = sock;
    msg.c = int64_t(len);
    return netCall(tr, core, client, svc, NetOp::Send, msg, data, len,
                   nullptr, 0);
}

int64_t
NetStackServer::clientRecv(core::Transport &tr, hw::Core &core,
                           kernel::Thread &client, core::ServiceId svc,
                           int64_t sock, void *dst, uint64_t maxlen)
{
    FsMsg msg;
    msg.a = sock;
    msg.c = int64_t(maxlen);
    return netCall(tr, core, client, svc, NetOp::Recv, msg, nullptr, 0,
                   dst, maxlen);
}

} // namespace xpc::services
