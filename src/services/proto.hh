/**
 * @file
 * Wire protocols of the user-level services. All messages are plain
 * little-endian structs at fixed offsets so the same bytes work over
 * every transport.
 */

#ifndef XPC_SERVICES_PROTO_HH
#define XPC_SERVICES_PROTO_HH

#include <cstdint>
#include <cstring>

namespace xpc::services::proto {

/// @name Block device server.
/// @{
enum class BlockOp : uint64_t { Read = 1, Write = 2, Info = 3 };

/** Request header; write payload follows at dataOffset. */
struct BlockReq
{
    uint64_t blockNo;
    uint64_t count; ///< blocks
};

constexpr uint64_t blockDataOffset = 16;
/// @}

/// @name File system server.
/// @{
enum class FsOp : uint64_t
{
    Open = 1,  ///< a = flags; path follows
    Read,      ///< a = fd, b = offset, c = len
    Write,     ///< a = fd, b = offset, c = len; data at fsDataOffset
    Close,     ///< a = fd
    Unlink,    ///< path follows
    Stat,      ///< a = fd; reply b = size
    Mkdir,     ///< path follows
};

/** Open flags. */
constexpr uint64_t fsOpenCreate = 1;

/** Fixed request/reply header. */
struct FsMsg
{
    int64_t a = 0;
    int64_t b = 0;
    int64_t c = 0;
    int64_t d = 0;
};

constexpr uint64_t fsDataOffset = 32;
constexpr uint64_t fsMaxPath = 120;
/// @}

/// @name Network stack server.
/// @{
enum class NetOp : uint64_t
{
    Socket = 1, ///< reply a = sock id
    Listen,     ///< a = sock, b = port
    Connect,    ///< a = sock, b = port; pairs with a listening sock
    Send,       ///< a = sock, c = len; data at fsDataOffset
    Recv,       ///< a = sock, c = maxLen; reply a = len, data follows
    CloseSock,  ///< a = sock
};
/// @}

/// @name Loopback network device server.
/// @{
enum class DevOp : uint64_t { Xmit = 1 };
/// @}

/// @name In-memory file cache server.
/// @{
enum class CacheOp : uint64_t
{
    Get = 1, ///< request = path bytes; reply = content
    Put,     ///< a = contentLen; path at 32, content at 160
};
constexpr uint64_t cachePathOffset = 32;
constexpr uint64_t cacheDataOffset = 160;
/// @}

/// @name AES encryption server.
/// @{
enum class CryptoOp : uint64_t
{
    Encrypt = 1, ///< request = payload; reply = ciphertext in place
    Decrypt,
};
/// @}

/// @name HTTP server.
/// @{
enum class HttpOp : uint64_t { Request = 1 };

/** Reply preamble written at offset 0 of the message. */
struct HttpReplyHeader
{
    uint64_t respOff;
    uint64_t respLen;
};
/// @}

/** Helper: serialize a POD into a byte buffer. */
template <typename T>
void
packInto(uint8_t *dst, const T &value)
{
    std::memcpy(dst, &value, sizeof(T));
}

/** Helper: deserialize a POD from a byte buffer. */
template <typename T>
T
unpackFrom(const uint8_t *src)
{
    T value;
    std::memcpy(&value, src, sizeof(T));
    return value;
}

} // namespace xpc::services::proto

#endif // XPC_SERVICES_PROTO_HH
