/**
 * @file
 * Per-hardware-thread state: the cycle clock, privilege level and the
 * architectural registers the XPC engine extends the core with.
 *
 * Execution in this simulator is call-driven (simulated software is
 * C++ invoking simulated primitives), so a Core is principally a
 * cycle accumulator plus the CSR state those primitives read/write.
 */

#ifndef XPC_HW_CORE_HH
#define XPC_HW_CORE_HH

#include <cstdint>
#include <string>

#include "mem/mem_system.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace xpc::hw {

/** Privilege level of the code currently running on a core. */
enum class Privilege { User, Kernel, Machine };

/**
 * The XPC CSRs of one core (paper Table 2). The per-thread registers
 * (xcall-cap-reg, link-reg, seg state) are saved/restored by the
 * kernel on context switch; the engine reads them from here.
 */
struct XpcCsrs
{
    /** Current page-table pointer (satp analogue); the engine swaps
     *  it on xcall/xret without kernel involvement. */
    PAddr pageTableRoot = 0;
    PAddr xEntryTable = 0;    ///< x-entry-table-reg
    uint64_t xEntryTableSize = 0; ///< x-entry-table-size
    PAddr xcallCap = 0;       ///< xcall-cap-reg (bitmap base)
    PAddr linkReg = 0;        ///< link-reg (link stack base)
    uint64_t linkTop = 0;     ///< link stack depth (index of next push)
    mem::SegWindow segReg;    ///< relay-seg mapping register
    uint64_t segId = 0;       ///< kernel identity of the active segment
    uint64_t segMaskOffset = 0; ///< seg-mask: offset into seg-reg
    uint64_t segMaskLen = 0;  ///< seg-mask: length (0 = unmasked)
    PAddr segList = 0;        ///< seg-listp (relay segment list base)
};

/** One simulated hardware thread. */
class Core
{
  public:
    Core(CoreId id, mem::MemSystem &mem_system)
        : coreId(id), memSys(mem_system)
    {
        stats.setName("core" + std::to_string(id));
        stats.addCounter("instructions_retired",
                         &instructionsRetired);
    }

    CoreId id() const { return coreId; }

    /** Current local time in cycles. */
    Cycles now() const { return clock; }

    /** Charge @p c cycles of work to this core. */
    void spend(Cycles c) { clock += c; }

    /**
     * Advance this core's clock to at least @p t (used when a message
     * or IPI from another core imposes a happens-before edge).
     */
    void
    syncTo(Cycles t)
    {
        if (clock < t)
            clock = t;
    }

    Privilege privilege() const { return priv; }
    void setPrivilege(Privilege p) { priv = p; }

    /** XPC CSR file, mutated by the engine and the kernel. */
    XpcCsrs csrs;

    mem::MemSystem &mem() { return memSys; }

    Counter instructionsRetired;

    /** Registry node; attached to the machine's group. */
    StatGroup stats{"core"};

  private:
    CoreId coreId;
    mem::MemSystem &memSys;
    Cycles clock;
    Privilege priv = Privilege::User;
};

} // namespace xpc::hw

#endif // XPC_HW_CORE_HH
