/**
 * @file
 * Machine parameter sets for the three platforms in the paper.
 *
 * rocketU500()  - SiFive Freedom U500 on a Xilinx VC707 (seL4, Binder
 *                 experiments; no tagged TLB).
 * lowRiscKc705()- lowRISC on a KC705 (Zircon experiments).
 * armHpi()      - the gem5 ARM High-Performance In-order configuration
 *                 of the paper's Table 4 (generality check, Table 5).
 *
 * Cost constants marked "calibrated" are set so the micro-benchmarks
 * land on the paper's FPGA measurements (Table 1, Figure 5, Table 3);
 * everything else (copies, cache and TLB behaviour) is derived from
 * the simulated hierarchy.
 */

#ifndef XPC_HW_MACHINE_CONFIG_HH
#define XPC_HW_MACHINE_CONFIG_HH

#include <cstdint>
#include <string>

#include "mem/mem_system.hh"
#include "sim/types.hh"

namespace xpc::hw {

/** Costs of privilege transitions and context handling. */
struct CoreCosts
{
    /** Mode switch into the kernel (pipeline flush + CSR swap). */
    Cycles trapEnter;
    /** sret/eret back to user mode. */
    Cycles trapExit;
    /** Save or restore of one general-purpose register (kernel path). */
    Cycles perRegSaveRestore;
    /** Registers the kernel saves+restores on a full context switch. */
    uint32_t contextRegs;
    /** TLB flush instruction itself (sfence.vma / TTBR barriers). */
    Cycles tlbFlush;
    /** Refill penalty right after an untagged user-level switch (the
     *  callee's first I-fetch and stack walks; calibrated to the
     *  40-cycle TLB component of paper Figure 5). */
    Cycles tlbRefillOnSwitch;
    /** Inter-processor interrupt delivery + remote wakeup. */
    Cycles ipi;
};

/** Costs internal to the XPC engine (calibrated to Figure 5/Table 3). */
struct XpcCosts
{
    /** Combinational logic of xcall outside memory accesses. */
    Cycles xcallLogic;
    /** Combinational logic of xret outside memory accesses. */
    Cycles xretLogic;
    /** swapseg logic outside memory accesses. */
    Cycles swapsegLogic;
    /** Extra cycles of a blocking linkage-record push (hidden when the
     *  non-blocking link stack optimization is on). */
    Cycles linkPushBlocking;
};

/** A complete machine description. */
struct MachineConfig
{
    std::string name;
    uint32_t cores;
    /** Clock frequency, used only to convert cycles to seconds. */
    uint64_t freqHz;
    mem::MemParams mem;
    CoreCosts core;
    XpcCosts xpc;

    double
    cyclesToUsec(Cycles c) const
    {
        return double(c.value()) * 1e6 / double(freqHz);
    }

    double
    cyclesToSec(Cycles c) const
    {
        return double(c.value()) / double(freqHz);
    }
};

/** SiFive Freedom U500 (VC707 FPGA): Rocket, untagged TLB. */
MachineConfig rocketU500();

/** lowRISC (KC705 FPGA): Rocket-derived, untagged TLB. */
MachineConfig lowRiscKc705();

/** gem5 ARM HPI model per the paper's Table 4, tagged TLB. */
MachineConfig armHpi();

/** rocketU500 with a tagged TLB (Figure 5 "+Tagged-TLB" rung). */
MachineConfig rocketU500Tagged();

} // namespace xpc::hw

#endif // XPC_HW_MACHINE_CONFIG_HH
