#include "machine_config.hh"

namespace xpc::hw {

MachineConfig
rocketU500()
{
    MachineConfig cfg;
    cfg.name = "rocket-u500";
    cfg.cores = 4;
    cfg.freqHz = 100'000'000; // 100 MHz FPGA clock

    cfg.mem.l1d = {32 * 1024, 64, 4, Cycles(2)};
    cfg.mem.l2 = {1024 * 1024, 64, 16, Cycles(14)};
    cfg.mem.dramLatency = Cycles(60);
    cfg.mem.tlbEntries = 128;
    cfg.mem.tlbAssoc = 4;
    cfg.mem.taggedTlb = false;
    cfg.mem.walkOverhead = Cycles(4);
    cfg.mem.perWordIssue = Cycles(1);

    cfg.core.trapEnter = Cycles(35);
    cfg.core.trapExit = Cycles(38);
    cfg.core.perRegSaveRestore = Cycles(2);
    cfg.core.contextRegs = 31;
    cfg.core.tlbFlush = Cycles(10);
    cfg.core.tlbRefillOnSwitch = Cycles(30);
    cfg.core.ipi = Cycles(2400);

    cfg.xpc.xcallLogic = Cycles(5);
    cfg.xpc.xretLogic = Cycles(5);
    cfg.xpc.swapsegLogic = Cycles(6);
    cfg.xpc.linkPushBlocking = Cycles(13);
    return cfg;
}

MachineConfig
rocketU500Tagged()
{
    MachineConfig cfg = rocketU500();
    cfg.name = "rocket-u500-tagged";
    cfg.mem.taggedTlb = true;
    return cfg;
}

MachineConfig
lowRiscKc705()
{
    MachineConfig cfg = rocketU500();
    cfg.name = "lowrisc-kc705";
    cfg.cores = 2;
    cfg.freqHz = 50'000'000; // 50 MHz FPGA clock
    cfg.mem.l2 = {512 * 1024, 64, 8, Cycles(16)};
    return cfg;
}

MachineConfig
armHpi()
{
    MachineConfig cfg;
    cfg.name = "gem5-arm-hpi";
    cfg.cores = 8;
    cfg.freqHz = 2'000'000'000; // 2.0 GHz (paper Table 4)

    // Paper Table 4: 32KB L1 (2/4 assoc), latency 3; 1MB 16-way L2,
    // data/tag 13 + response 5; LPDDR3_1600; 256-entry TLBs.
    cfg.mem.l1d = {32 * 1024, 64, 4, Cycles(3)};
    cfg.mem.l2 = {1024 * 1024, 64, 16, Cycles(13)};
    cfg.mem.dramLatency = Cycles(100);
    cfg.mem.tlbEntries = 256;
    cfg.mem.tlbAssoc = 4;
    cfg.mem.taggedTlb = true;
    cfg.mem.walkOverhead = Cycles(4);
    cfg.mem.perWordIssue = Cycles(1);
    cfg.mem.wordBytes = 16; // 128-bit copy datapath

    cfg.core.trapEnter = Cycles(20);
    cfg.core.trapExit = Cycles(22);
    cfg.core.perRegSaveRestore = Cycles(1);
    cfg.core.contextRegs = 31;
    // TTBR0 update with isb+dsb barriers, measured at 58 cycles on a
    // Hikey-960 in the paper (Table 5 footnote).
    cfg.core.tlbFlush = Cycles(58);
    cfg.core.tlbRefillOnSwitch = Cycles(0); // tagged TLB: no flush
    cfg.core.ipi = Cycles(1200);

    cfg.xpc.xcallLogic = Cycles(3);
    cfg.xpc.xretLogic = Cycles(4);
    cfg.xpc.swapsegLogic = Cycles(2);
    cfg.xpc.linkPushBlocking = Cycles(12);
    return cfg;
}

} // namespace xpc::hw
