#include "machine.hh"

#include "sim/logging.hh"

namespace xpc::hw {

namespace {
/** First frame handed to the allocator; low frames are left free for
 *  firmware-like fixed structures if a component ever needs them. */
constexpr PAddr allocBase = 0x10000;
} // namespace

Machine::Machine(const MachineConfig &config, uint64_t dram_bytes)
    : cfg(config), physMem(dram_bytes),
      frameAlloc(allocBase, dram_bytes - allocBase)
{
    panic_if(cfg.cores == 0, "machine with zero cores");
    memSys = std::make_unique<mem::MemSystem>(physMem, cfg.mem,
                                              cfg.cores);
    memSys->stats.setParent(&stats);
    for (CoreId i = 0; i < cfg.cores; i++) {
        coresVec.push_back(std::make_unique<Core>(i, *memSys));
        coresVec.back()->stats.setParent(&stats);
    }
}

void
Machine::sendIpi(CoreId src, CoreId dst)
{
    panic_if(src == dst, "self-IPI is unsupported");
    Core &sender = core(src);
    Core &target = core(dst);
    target.syncTo(sender.now());
    target.spend(cfg.core.ipi);
}

} // namespace xpc::hw
