/**
 * @file
 * The top-level simulated machine: DRAM, the frame allocator, the
 * memory system and the cores, built from one MachineConfig.
 */

#ifndef XPC_HW_MACHINE_HH
#define XPC_HW_MACHINE_HH

#include <memory>
#include <vector>

#include "hw/core.hh"
#include "hw/machine_config.hh"
#include "mem/mem_system.hh"
#include "mem/phys_mem.hh"

namespace xpc::hw {

/** A complete simulated machine instance. */
class Machine
{
  public:
    explicit Machine(const MachineConfig &config,
                     uint64_t dram_bytes = uint64_t(512) << 20);

    const MachineConfig &config() const { return cfg; }

    uint32_t coreCount() const { return uint32_t(coresVec.size()); }
    Core &core(CoreId id) { return *coresVec.at(id); }

    mem::PhysMem &phys() { return physMem; }
    mem::PhysAllocator &allocator() { return frameAlloc; }
    mem::MemSystem &mem() { return *memSys; }

    /**
     * Deliver an IPI from @p src to @p dst: charges the interrupt cost
     * on the destination and synchronizes its clock past the sender's.
     */
    void sendIpi(CoreId src, CoreId dst);

    /**
     * Attach a chaos fault injector to the whole machine: the memory
     * system, the XPC engine, the kernels and the runtime all consult
     * it. Null detaches.
     */
    void
    setFaultInjector(FaultInjector *inj)
    {
        injector = inj;
        memSys->setFaultInjector(inj);
    }

    FaultInjector *faultInjector() const { return injector; }

    /** Registry node covering the cores and the memory system. */
    StatGroup stats{"machine"};

  private:
    MachineConfig cfg;
    FaultInjector *injector = nullptr;
    mem::PhysMem physMem;
    mem::PhysAllocator frameAlloc;
    std::unique_ptr<mem::MemSystem> memSys;
    std::vector<std::unique_ptr<Core>> coresVec;
};

} // namespace xpc::hw

#endif // XPC_HW_MACHINE_HH
