#include "resource_model.hh"

namespace xpc::hwcost {

namespace {

/**
 * Per-primitive FPGA cost factors (Artix/Virtex-7 class fabric),
 * calibrated so the default inventory reproduces the paper's
 * measured deltas (+888 LUT, +1007 FF, +1 DSP).
 */
constexpr double lutPerCsrBit = 0.40;   // write-enable decode + read mux
constexpr double ffPerStateBit = 1.0;
constexpr uint32_t lutPerComparator = 24;
constexpr uint32_t lutPerAdder = 44;
constexpr uint32_t lutPerMux = 24;
constexpr uint32_t lutControl = 72;
constexpr uint32_t lutPerCacheEntry = 180;
constexpr uint32_t ffPerCacheEntry = 420;

} // namespace

ResourceEstimate
ResourceModel::freedomU500Baseline()
{
    // Paper Table 6, "Freedom" column.
    ResourceEstimate base;
    base.lut = 44643;
    base.lutram = 3370;
    base.srl = 636;
    base.ff = 30379;
    base.ramb36 = 3;
    base.ramb18 = 48;
    base.dsp = 15;
    return base;
}

EngineInventory
ResourceModel::defaultEngine()
{
    EngineInventory inv;
    // 7 CSRs of Table 2: 64 (table base) + 64 (table size) +
    // 64 (cap reg) + 64 (link reg) + 3x64 (relay-seg) + 2x64
    // (seg-mask) + 64 (seg-listp) = 10 x 64 bits.
    inv.csrBits = 10 * 64;
    // FSM (xcall/xret/swapseg sequencing) + link-top counter.
    inv.controlBits = 39;
    // Fetched x-entry (40B), linkage record assembly (dominant words
    // of the 96B record kept in flight), non-blocking store buffer.
    inv.stagingBits = 328;
    // Cap bit test, x-entry valid, table bound, seg lo/hi bounds,
    // mask bound, linkage valid, xret equality x3.
    inv.comparators64 = 10;
    // Table index scale, cap word address, link-stack address,
    // seg translation add.
    inv.adders64 = 4;
    // CSR write-back paths from the three instructions.
    inv.muxes64 = 6;
    // The relay-seg offset multiply-accumulate.
    inv.dspBlocks = 1;
    inv.cacheEntries = 0;
    return inv;
}

EngineInventory
ResourceModel::engineWithCache()
{
    EngineInventory inv = defaultEngine();
    inv.cacheEntries = 1;
    return inv;
}

ResourceEstimate
ResourceModel::estimate(const EngineInventory &inv)
{
    ResourceEstimate e;
    double lut = double(inv.csrBits) * lutPerCsrBit +
                 double(inv.comparators64) * lutPerComparator +
                 double(inv.adders64) * lutPerAdder +
                 double(inv.muxes64) * lutPerMux + lutControl +
                 double(inv.cacheEntries) * lutPerCacheEntry;
    double ff = double(inv.csrBits + inv.controlBits +
                       inv.stagingBits) *
                    ffPerStateBit +
                double(inv.cacheEntries) * ffPerCacheEntry;
    e.lut = uint64_t(lut);
    e.ff = uint64_t(ff);
    e.dsp = inv.dspBlocks;
    return e;
}

ResourceEstimate
ResourceModel::withEngine(const EngineInventory &inv)
{
    ResourceEstimate base = freedomU500Baseline();
    ResourceEstimate delta = estimate(inv);
    ResourceEstimate total = base;
    total.lut += delta.lut;
    total.ff += delta.ff;
    total.dsp += delta.dsp;
    return total;
}

} // namespace xpc::hwcost
