/**
 * @file
 * FPGA resource estimator for the XPC engine (the Table 6
 * substitution: Vivado synthesis is unavailable, so we estimate LUT /
 * FF / DSP deltas from the engine's structural inventory with
 * per-primitive factors calibrated against the paper's published
 * synthesis of the Freedom U500 + XPC design).
 */

#ifndef XPC_HWCOST_RESOURCE_MODEL_HH
#define XPC_HWCOST_RESOURCE_MODEL_HH

#include <cstdint>
#include <string>
#include <vector>

namespace xpc::hwcost {

/** One FPGA resource vector. */
struct ResourceEstimate
{
    uint64_t lut = 0;
    uint64_t lutram = 0;
    uint64_t srl = 0;
    uint64_t ff = 0;
    uint64_t ramb36 = 0;
    uint64_t ramb18 = 0;
    uint64_t dsp = 0;
};

/** Structural inventory of the XPC engine RTL. */
struct EngineInventory
{
    /** Architectural register bits: the 7 CSRs of Table 2
     *  (x-entry-table-reg, x-entry-table-size, xcall-cap-reg,
     *  link-reg, relay-seg x3, seg-mask x2, seg-listp). */
    uint32_t csrBits = 0;
    /** Control FSM + link-top counter state. */
    uint32_t controlBits = 0;
    /** Pipeline staging registers (fetched x-entry, linkage record
     *  being assembled, non-blocking store buffer). */
    uint32_t stagingBits = 0;
    /** 64-bit comparators: capability bit test, x-entry valid,
     *  relay-seg bounds (lo/hi), seg-mask bounds, linkage valid,
     *  xret seg-reg equality (3 fields). */
    uint32_t comparators64 = 0;
    /** 64-bit adders: table index scaling, link-stack addressing,
     *  relay-seg offset translation. */
    uint32_t adders64 = 0;
    /** 64-bit 2:1 muxes on the CSR write paths. */
    uint32_t muxes64 = 0;
    /** DSP blocks (the seg address multiply-accumulate). */
    uint32_t dspBlocks = 0;
    /** Engine cache entries (0 = the default no-cache build). */
    uint32_t cacheEntries = 0;
};

/** The estimator. */
class ResourceModel
{
  public:
    /** Baseline Freedom U500 synthesis (paper Table 6 left column). */
    static ResourceEstimate freedomU500Baseline();

    /** Inventory of the default engine (no cache). */
    static EngineInventory defaultEngine();

    /** Inventory with the one-entry engine cache. */
    static EngineInventory engineWithCache();

    /** Estimate the resources the inventory adds. */
    static ResourceEstimate estimate(const EngineInventory &inv);

    /** Baseline + engine = full design (Table 6 middle column). */
    static ResourceEstimate withEngine(const EngineInventory &inv);

    /** Relative cost in percent for a resource class. */
    static double
    overheadPercent(uint64_t base, uint64_t with)
    {
        if (base == 0)
            return with == 0 ? 0.0 : 100.0;
        return 100.0 * double(with - base) / double(base);
    }
};

} // namespace xpc::hwcost

#endif // XPC_HWCOST_RESOURCE_MODEL_HH
