#include "kernel.hh"

#include "sim/logging.hh"

namespace xpc::kernel {

Process::Process(ProcessId id, std::string name, hw::Machine &machine)
    : procId(id), procName(std::move(name)),
      addressSpace(Asid(id), machine)
{
}

VAddr
Process::alloc(uint64_t len)
{
    return addressSpace.allocMap(len, mem::permsRW);
}

Kernel::Kernel(hw::Machine &machine)
    : mach(machine), currentThread(machine.coreCount(), nullptr)
{
    stats.addCounter("traps", &traps);
    stats.addCounter("context_switches", &contextSwitches);
    stats.addCounter("deadline_expired", &deadlineExpired);
}

Process &
Kernel::createProcess(const std::string &name)
{
    auto id = ProcessId(processes.size() + 1);
    panic_if(id >= (1u << 16), "too many processes for the ASID space");
    processes.push_back(std::make_unique<Process>(id, name, mach));
    return *processes.back();
}

Thread &
Kernel::createThread(Process &process, CoreId home_core)
{
    panic_if(home_core >= mach.coreCount(),
             "thread homed on nonexistent core %u", home_core);
    auto id = ThreadId(threads.size() + 1);
    threads.push_back(std::make_unique<Thread>(id, &process, home_core));
    Thread &t = *threads.back();
    process.threads.push_back(&t);
    t.savedCsrs.pageTableRoot = process.space().root();
    t.savedCsrs.segList = process.space().segList();
    return t;
}

void
Kernel::trapEnter(hw::Core &core)
{
    traps.inc();
    core.spend(mach.config().core.trapEnter);
    core.setPrivilege(hw::Privilege::Kernel);
}

void
Kernel::trapExit(hw::Core &core)
{
    core.spend(mach.config().core.trapExit);
    core.setPrivilege(hw::Privilege::User);
}

void
Kernel::saveRestoreRegs(hw::Core &core, uint32_t nregs)
{
    core.spend(Cycles(mach.config().core.perRegSaveRestore.value() *
                      nregs));
}

void
Kernel::contextSwitchTo(hw::Core &core, Thread &next)
{
    contextSwitches.inc();
    Thread *prev = current(core.id());
    if (prev == &next)
        return;

    // Save + restore the architectural registers and scheduler work.
    saveRestoreRegs(core, 2 * mach.config().core.contextRegs);
    core.spend(costs.schedule);

    if (prev)
        prev->savedCsrs = core.csrs;
    core.csrs = next.savedCsrs;

    // Address-space switch.
    PAddr new_root = next.process()->space().root();
    if (core.csrs.pageTableRoot != new_root)
        core.csrs.pageTableRoot = new_root;
    if (!mach.config().mem.taggedTlb) {
        core.spend(mach.config().core.tlbFlush);
        mach.mem().flushTlb(core.id());
    }

    setCurrent(core.id(), &next);
    next.state = ThreadState::Running;
}

mem::TransContext
Kernel::userCtx(Process &process) const
{
    mem::TransContext ctx;
    ctx.pt = &process.space().pageTable();
    ctx.asid = process.space().asid();
    ctx.seg = nullptr;
    ctx.user = true;
    return ctx;
}

mem::AccessResult
Kernel::userRead(hw::Core &core, Process &process, VAddr va, void *dst,
                 uint64_t len)
{
    auto res = mach.mem().read(core.id(), userCtx(process), va, dst,
                               len);
    core.spend(res.cycles);
    return res;
}

mem::AccessResult
Kernel::userWrite(hw::Core &core, Process &process, VAddr va,
                  const void *src, uint64_t len)
{
    auto res = mach.mem().write(core.id(), userCtx(process), va, src,
                                len);
    core.spend(res.cycles);
    return res;
}

const char *
callStatusName(CallStatus status)
{
    switch (status) {
      case CallStatus::Ok:
        return "ok";
      case CallStatus::NoCapability:
        return "no-capability";
      case CallStatus::CopyFault:
        return "copy-fault";
      case CallStatus::Timeout:
        return "timeout";
      case CallStatus::Exhausted:
        return "exhausted";
      case CallStatus::ServiceDead:
        return "service-dead";
      case CallStatus::SegRevoked:
        return "seg-revoked";
      case CallStatus::LinkageCorrupt:
        return "linkage-corrupt";
      case CallStatus::EngineFault:
        return "engine-fault";
      case CallStatus::NestedFailure:
        return "nested-failure";
      case CallStatus::Overloaded:
        return "overloaded";
      case CallStatus::DeadlineExpired:
        return "deadline-expired";
      case CallStatus::BreakerOpen:
        return "breaker-open";
    }
    return "unknown";
}

} // namespace xpc::kernel
