#include "thread.hh"

namespace xpc::kernel {

Thread::Thread(ThreadId id, Process *process, CoreId home_core)
    : threadId(id)
{
    runtime.process = process;
    sched.homeCore = home_core;
}

} // namespace xpc::kernel
