/**
 * @file
 * Kernel thread objects with the split thread state of paper 4.2.
 *
 * The scheduling state (priority, time slice, core) always belongs to
 * the thread that was created; the runtime state (address space,
 * capability bitmap) is what the kernel consults to serve a trap, and
 * it travels with xcall: after a user-level domain switch the same
 * scheduling state runs under the callee's runtime state, selected by
 * the value of xcall-cap-reg.
 */

#ifndef XPC_KERNEL_THREAD_HH
#define XPC_KERNEL_THREAD_HH

#include <cstdint>

#include "hw/core.hh"

namespace xpc::kernel {

class AddressSpace;
class Process;

using ThreadId = uint32_t;
using ProcessId = uint32_t;

/**
 * Tenant identity (container-style isolation). Every thread belongs
 * to exactly one tenant; the name server keeps one namespace per
 * tenant and the transports can refuse cross-tenant grants and calls
 * (Transport::enforceTenancy). Tenant 0 is the default single-tenant
 * world of the paper reproduction - with every thread there, tenancy
 * is invisible.
 */
using TenantId = uint32_t;
constexpr TenantId defaultTenant = 0;

/** Scheduling half of a thread (paper 4.2 "scheduling state"). */
struct SchedState
{
    int priority = 0;
    uint32_t timeSlice = 0;
    CoreId homeCore = 0;
};

/** Runtime half of a thread (paper 4.2 "runtime state"). */
struct RuntimeState
{
    Process *process = nullptr;
    /** Physical base of this thread's xcall capability bitmap. */
    PAddr capBitmap = 0;
};

/** Lifecycle of a thread. */
enum class ThreadState
{
    Ready,
    Running,
    BlockedOnIpc,
    BlockedOnReply,
    Dead,
};

/** A kernel thread. */
class Thread
{
  public:
    Thread(ThreadId id, Process *process, CoreId home_core);

    ThreadId id() const { return threadId; }
    Process *process() const { return runtime.process; }

    SchedState sched;
    RuntimeState runtime;
    ThreadState state = ThreadState::Ready;

    /** The tenant this thread (and anything it spawns) belongs to. */
    TenantId tenant = defaultTenant;

    /** Saved per-thread XPC CSRs, swapped in on context switch. */
    hw::XpcCsrs savedCsrs;

    /** Physical base of this thread's 8 KiB link stack. */
    PAddr linkStack = 0;

  private:
    ThreadId threadId;
};

} // namespace xpc::kernel

#endif // XPC_KERNEL_THREAD_HH
