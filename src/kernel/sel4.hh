/**
 * @file
 * A behavioural model of seL4's synchronous endpoint IPC, with the
 * phase structure and message-size policy of the paper's section 2.2:
 *
 *   trap -> IPC logic -> process switch -> restore
 *
 * Messages <= 32 B travel in registers on the fast path; 33..120 B
 * take the slow path with a kernel copy through IPC buffers; larger
 * messages go through user-level shared memory, in a one-copy
 * (TOCTTOU-prone) or two-copy (safe) discipline. Cross-core calls add
 * IPIs and scheduler work.
 */

#ifndef XPC_KERNEL_SEL4_HH
#define XPC_KERNEL_SEL4_HH

#include <functional>
#include <map>

#include "kernel/kernel.hh"
#include "sim/phase.hh"

namespace xpc::kernel {

/** Fast-path phase latencies of the most recent call (Table 1). */
struct Sel4Phases
{
    Cycles trap;
    Cycles logic;
    Cycles processSwitch;
    Cycles restore;
    Cycles transfer;

    Cycles
    sum() const
    {
        return trap + logic + processSwitch + restore + transfer;
    }
};

/** Shared-memory copy discipline for long messages. */
enum class LongMsgMode
{
    /** Server works in the shared buffer directly (TOCTTOU risk). */
    OneCopy,
    /** Server copies to private memory before use (safe). */
    TwoCopy,
};

/** Calibrated software-cost constants of the IPC path. */
struct Sel4Params
{
    Cycles trapConst{38};
    Cycles logicConst{208};
    Cycles switchConst{136};
    Cycles restoreConst{127};
    /** Extra cost of leaving the fast path (scheduling allowed). */
    Cycles slowpathExtra{1400};
    /** Registers saved/restored on the fast path. */
    uint32_t fastpathRegs = 17;
    /** Bytes that fit in message registers. */
    uint64_t regMsgMax = 32;
    /** IPC buffer size: above regMsgMax and up to this, slow path. */
    uint64_t ipcBufMax = 120;
    /** Capacity of a client/server shared buffer. */
    uint64_t sharedBufBytes = 256 * 1024;
};

class Sel4Kernel;

/**
 * The server's view of one in-progress call; passed to the endpoint
 * handler. All request/reply access is charged to the executing core
 * and respects the transfer mode of the message.
 */
class Sel4ServerCall
{
  public:
    uint64_t opcode() const { return op; }
    uint64_t requestLen() const { return reqLen; }

    /** Charged read of request bytes. */
    void readRequest(uint64_t off, void *dst, uint64_t len);
    /** Charged in-place update of the request (handover plumbing). */
    void writeRequest(uint64_t off, const void *src, uint64_t len);
    /** Charged write of reply bytes. */
    void writeReply(uint64_t off, const void *src, uint64_t len);
    void setReplyLen(uint64_t len);

    hw::Core &core() { return coreRef; }
    Thread &serverThread() { return server; }
    /** The calling thread (the kernel knows its IPC partner). */
    Thread *callerThread() { return client; }
    Sel4Kernel &kernel() { return owner; }

    /**
     * Mark the whole invocation failed (a nested call the handler
     * depended on went wrong, or a message access faulted). The
     * kernel aborts the reply and surfaces @p status to the caller.
     */
    void fail(CallStatus status) { failStatus = status; }
    CallStatus failStatus = CallStatus::Ok;

  private:
    friend class Sel4Kernel;

    enum class Mode { Registers, IpcBuffer, Shared };

    Sel4ServerCall(Sel4Kernel &k, hw::Core &c, Thread &s)
        : owner(k), coreRef(c), server(s)
    {}

    Sel4Kernel &owner;
    hw::Core &coreRef;
    Thread &server;
    Thread *client = nullptr;
    uint64_t op = 0;
    uint64_t reqLen = 0;
    /** Writable extent of the request representation (the handler
     *  may build forwarded messages beyond reqLen, up to here). */
    uint64_t reqCapacity = 0;
    uint64_t replyLen = 0;
    uint64_t replyCapacity = 0;
    Mode mode = Mode::Registers;
    LongMsgMode longMode = LongMsgMode::TwoCopy;
    /** Registers-mode staging (host memory = register file). */
    uint8_t regs[32];
    uint8_t regsReply[32];
    /** Server-VA of the buffer the handler reads/writes. */
    VAddr serverBufVa = 0;
    /** Shared-mode: server VA of the shared window (one-copy). */
    VAddr sharedVa = 0;
    /** One-copy mode: where reply bytes are produced directly. */
    VAddr replySharedVa = 0;
    /** True once the reply outgrew the message registers. */
    bool replyInBuffer = false;

    VAddr
    replyDst() const
    {
        return replySharedVa ? replySharedVa : serverBufVa;
    }
};

/** Outcome of a synchronous call. */
struct Sel4CallOutcome
{
    bool ok = false;
    CallStatus status = CallStatus::Ok;
    uint64_t replyLen = 0;
    /** Cycles from invocation until the server saw the request. */
    Cycles oneWay;
    /** Full round-trip cycles on the client core. */
    Cycles roundTrip;
    /** Cycles spent inside the server handler (not IPC overhead). */
    Cycles handlerCycles;
};

/** seL4-like microkernel personality. */
class Sel4Kernel : public Kernel
{
  public:
    using Handler = std::function<void(Sel4ServerCall &)>;

    explicit Sel4Kernel(hw::Machine &machine);

    Sel4Params params;

    /** Create an endpoint owned by @p server running @p handler. */
    uint64_t createEndpoint(Thread &server, Handler handler);

    /** Give @p client the right to call endpoint @p ep. */
    void grantEndpointCap(Thread &client, uint64_t ep);

    /**
     * Synchronous call: request bytes at @p req_va (client VA), reply
     * delivered to @p reply_va (client VA, capacity @p reply_cap).
     */
    Sel4CallOutcome call(hw::Core &core, Thread &client, uint64_t ep,
                         uint64_t opcode, VAddr req_va, uint64_t req_len,
                         VAddr reply_va, uint64_t reply_cap,
                         LongMsgMode mode = LongMsgMode::TwoCopy);

    /** Phase breakdown of the most recent fast-path call (Table 1). */
    Sel4Phases lastPhases;

    /** Registry-visible phase attribution (Table 1 taxonomy). */
    PhaseStats phaseStats{"phases", &stats};

    Counter fastpathCalls;
    Counter slowpathCalls;
    Counter crossCoreCalls;

  private:
    struct SharedBuf
    {
        VAddr clientVa = 0;
        VAddr serverVa = 0;
        uint64_t len = 0;
    };

    struct Endpoint
    {
        uint64_t id;
        Thread *server;
        Handler handler;
        /** Server-private scratch for two-copy and IPC-buffer modes. */
        VAddr scratchVa = 0;
        uint64_t scratchLen = 0;
        /** Shared windows keyed by client thread. */
        std::map<ThreadId, SharedBuf> shared;
    };

    std::vector<Endpoint> endpoints;
    std::map<std::pair<ThreadId, uint64_t>, bool> endpointCaps;

    SharedBuf &sharedFor(Endpoint &ep, Thread &client);
    friend class Sel4ServerCall;
};

} // namespace xpc::kernel

#endif // XPC_KERNEL_SEL4_HH
