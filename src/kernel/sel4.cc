#include "sel4.hh"

#include <cstring>

#include "sim/fault_injector.hh"
#include "sim/logging.hh"
#include "sim/trace.hh"

namespace xpc::kernel {

namespace {

/** Closes the outer "sel4.call" span (and, for top-level calls, the
 *  causal flow arc) on every exit path, abort unwinds included. */
struct Sel4SpanCloser
{
    trace::Tracer &tr;
    hw::Core &core;
    uint32_t lane;
    uint64_t flowId;
    bool top;
    bool active;
    /** The request's terminal outcome, stamped as an instant for
     *  critpath.py's --top outcome column. */
    const Sel4CallOutcome *out = nullptr;
    /** Caller's tenant; stamped (non-default only, so single-tenant
     *  traces are unchanged) for critpath.py's per-tenant column. */
    TenantId tenant = defaultTenant;

    ~Sel4SpanCloser()
    {
        if (top && out) {
            tr.instantNow("sel4", "outcome", lane,
                          callStatusName(out->status));
            if (tenant != defaultTenant)
                tr.instantNow("sel4", "tenant", lane,
                              std::to_string(tenant));
        }
        if (!active)
            return;
        uint64_t now = core.now().value();
        if (top)
            tr.flow(trace::EventKind::FlowEnd, "sel4", "req", flowId,
                    now, lane);
        tr.end("sel4", "call", now, lane);
    }
};

} // namespace

Sel4Kernel::Sel4Kernel(hw::Machine &machine) : Kernel(machine)
{
    stats.setName("sel4");
    stats.addCounter("fastpath_calls", &fastpathCalls);
    stats.addCounter("slowpath_calls", &slowpathCalls);
    stats.addCounter("cross_core_calls", &crossCoreCalls);
}

uint64_t
Sel4Kernel::createEndpoint(Thread &server, Handler handler)
{
    Endpoint ep;
    ep.id = endpoints.size();
    ep.server = &server;
    ep.handler = std::move(handler);
    ep.scratchLen = params.sharedBufBytes;
    ep.scratchVa = server.process()->alloc(ep.scratchLen);
    endpoints.push_back(std::move(ep));
    return endpoints.back().id;
}

void
Sel4Kernel::grantEndpointCap(Thread &client, uint64_t ep)
{
    panic_if(ep >= endpoints.size(), "no such endpoint %lu",
             (unsigned long)ep);
    endpointCaps[{client.id(), ep}] = true;
}

Sel4Kernel::SharedBuf &
Sel4Kernel::sharedFor(Endpoint &ep, Thread &client)
{
    auto it = ep.shared.find(client.id());
    if (it != ep.shared.end())
        return it->second;

    // First long message from this client: the kernel sets up a
    // buffer shared between the two address spaces.
    uint64_t len = params.sharedBufBytes;
    uint64_t npages = len / pageSize;
    PAddr phys = mach.allocator().allocFrames(npages);
    panic_if(phys == 0, "out of memory for shared IPC buffer");
    mach.phys().clear(phys, len);

    AddressSpace &cspace = client.process()->space();
    AddressSpace &sspace = ep.server->process()->space();
    VAddr cva = cspace.reserveSegRange(len);
    VAddr sva = sspace.reserveSegRange(len);
    // reserveSegRange found us a free range; convert it to a real
    // shared mapping.
    cspace.releaseSegRange(cva);
    sspace.releaseSegRange(sva);
    for (uint64_t i = 0; i < npages; i++) {
        cspace.pageTable().map(cva + i * pageSize, phys + i * pageSize,
                               mem::permsRW);
        sspace.pageTable().map(sva + i * pageSize, phys + i * pageSize,
                               mem::permsRW);
    }
    SharedBuf buf{cva, sva, len};
    return ep.shared.emplace(client.id(), buf).first->second;
}

void
Sel4ServerCall::readRequest(uint64_t off, void *dst, uint64_t len)
{
    panic_if(off + len > reqCapacity, "request read out of bounds");
    if (len == 0)
        return; // memcpy on a null dst is UB even for zero bytes
    switch (mode) {
      case Mode::Registers:
        std::memcpy(dst, regs + off, len);
        return;
      case Mode::IpcBuffer:
      case Mode::Shared: {
        VAddr src = (mode == Mode::Shared &&
                     longMode == LongMsgMode::OneCopy)
                        ? sharedVa
                        : serverBufVa;
        auto res = owner.userRead(coreRef, *server.process(), src + off,
                                  dst, len);
        if (!res.ok) {
            // Deterministic garbage for the handler; the kernel
            // aborts the reply once the handler returns.
            std::memset(dst, 0, len);
            fail(CallStatus::CopyFault);
        }
        return;
      }
    }
}

void
Sel4ServerCall::writeRequest(uint64_t off, const void *src,
                             uint64_t len)
{
    panic_if(off + len > reqCapacity, "request write out of bounds");
    if (len == 0)
        return;
    switch (mode) {
      case Mode::Registers:
        std::memcpy(regs + off, src, len);
        return;
      case Mode::IpcBuffer:
      case Mode::Shared: {
        VAddr dst = (mode == Mode::Shared &&
                     longMode == LongMsgMode::OneCopy)
                        ? sharedVa
                        : serverBufVa;
        auto res = owner.userWrite(coreRef, *server.process(),
                                   dst + off, src, len);
        if (!res.ok)
            fail(CallStatus::CopyFault);
        return;
      }
    }
}

void
Sel4ServerCall::writeReply(uint64_t off, const void *src, uint64_t len)
{
    panic_if(off + len > replyCapacity, "reply write out of bounds");
    if (len == 0)
        return;
    uint64_t prev = replyLen;
    if (replyLen < off + len)
        replyLen = off + len;

    if (!replyInBuffer && replyLen <= owner.params.regMsgMax) {
        std::memcpy(regsReply + off, src, len);
        return;
    }
    if (!replyInBuffer) {
        // The reply outgrew the registers: migrate what was staged.
        if (prev > 0) {
            auto res = owner.userWrite(coreRef, *server.process(),
                                       replyDst(), regsReply, prev);
            if (!res.ok)
                fail(CallStatus::CopyFault);
        }
        replyInBuffer = true;
    }
    auto res = owner.userWrite(coreRef, *server.process(),
                               replyDst() + off, src, len);
    if (!res.ok)
        fail(CallStatus::CopyFault);
}

void
Sel4ServerCall::setReplyLen(uint64_t len)
{
    panic_if(len > replyCapacity, "reply longer than client buffer");
    replyLen = len;
}

Sel4CallOutcome
Sel4Kernel::call(hw::Core &core, Thread &client, uint64_t ep_id,
                 uint64_t opcode, VAddr req_va, uint64_t req_len,
                 VAddr reply_va, uint64_t reply_cap, LongMsgMode mode)
{
    Sel4CallOutcome out;
    panic_if(ep_id >= endpoints.size(), "no such endpoint %lu",
             (unsigned long)ep_id);
    Endpoint &ep = endpoints[ep_id];
    if (!endpointCaps[{client.id(), ep_id}]) {
        warn("thread %u lacks a cap for endpoint %lu", client.id(),
             (unsigned long)ep_id);
        out.status = CallStatus::NoCapability;
        return out;
    }

    // Chaos hook: a scheduled copy fault arms a one-shot memory
    // fault that the next copy on this call path consumes; stall and
    // slowdown faults strike later, around the handler.
    FaultInjector *inj = mach.faultInjector();
    const FaultEvent *fault = nullptr;
    if (inj && inj->enabled) {
        uint64_t seq = inj->beginCall();
        fault = inj->eventAt(seq);
        if (fault && fault->op == FaultOp::CopyFault) {
            inj->armMemFault();
            inj->recordFired(*fault);
        }
    }

    // One seL4 IPC is one hop of a request chain: mint (or inherit)
    // the request id and bracket the whole call on the client's lane.
    req::RequestScope rscope;

    // Deadline: minted from the kernel's per-call budget at the top
    // of a chain, inherited (absolute) by every nested hop.
    req::DeadlineScope dscope(
        rscope.topLevel() && callDeadline.value() != 0
            ? (core.now() + callDeadline).value()
            : 0);
    const uint64_t deadline =
        req::RequestContext::global().currentDeadline();
    auto &tr = trace::Tracer::global();
    uint32_t clane = req::threadLane(uint32_t(client.id()));

    Cycles start = core.now();
    if (tr.enabled()) {
        tr.begin("sel4", "call", start.value(), clane);
        tr.flow(rscope.topLevel() ? trace::EventKind::FlowStart
                                  : trace::EventKind::FlowStep,
                "sel4", "req", rscope.id(), start.value(), clane);
    }
    Sel4SpanCloser closer{tr,          core,
                          clane,       rscope.id(),
                          rscope.topLevel(), tr.enabled(),
                          &out,        client.tenant};

    // Abandon the call: if the kernel already switched to the server,
    // charge the bare return IPC before surfacing the error.
    auto abortCall = [&](CallStatus status) {
        if (current(core.id()) != &client) {
            trapEnter(core);
            saveRestoreRegs(core, params.fastpathRegs);
            core.spend(params.trapConst);
            core.spend(params.switchConst);
            if (!mach.config().mem.taggedTlb) {
                core.spend(mach.config().core.tlbFlush);
                mach.mem().flushTlb(core.id());
            }
            setCurrent(core.id(), &client);
            saveRestoreRegs(core, params.fastpathRegs);
            core.spend(params.restoreConst);
            trapExit(core);
        }
        out.ok = false;
        out.status = status;
        out.roundTrip = core.now() - start;
        return out;
    };

    if (deadline != 0 && core.now().value() >= deadline) {
        // Out of budget before the syscall even traps: an upstream
        // hop burned the whole deadline. Reject instead of calling.
        deadlineExpired.inc();
        return abortCall(CallStatus::DeadlineExpired);
    }

    Sel4Phases phases;
    bool cross_core = ep.server->sched.homeCore != core.id();
    bool medium = req_len > params.regMsgMax &&
                  req_len <= params.ipcBufMax;
    bool large = req_len > params.ipcBufMax;
    bool reply_large_cap = reply_cap > params.ipcBufMax;
    bool slowpath = cross_core || medium ||
                    client.sched.priority != ep.server->sched.priority;

    // --- Message transfer, client half. ---------------------------
    // For long messages the client first copies its private request
    // into the shared window; this happens in user mode before the
    // syscall (the paper's "Message Transfer" phase).
    Cycles t0 = core.now();
    Sel4ServerCall call_ctx(*this, core, *ep.server);
    call_ctx.client = &client;
    call_ctx.op = opcode;
    call_ctx.reqLen = req_len;
    call_ctx.reqCapacity = params.regMsgMax;
    call_ctx.replyCapacity = reply_cap;
    call_ctx.longMode = mode;
    call_ctx.serverBufVa = ep.scratchVa;

    SharedBuf *shared = nullptr;
    if (large || reply_large_cap)
        shared = &sharedFor(ep, client);
    if (shared && mode == LongMsgMode::OneCopy) {
        // One-copy replies are produced straight into the window.
        call_ctx.replySharedVa = shared->serverVa;
    }
    if (large) {
        panic_if(req_len > shared->len, "message exceeds shared buffer");
        req::PhaseScope phase(uint32_t(Phase::Transfer));
        auto res =
            mach.mem().copy(core.id(), userCtx(*client.process()),
                            req_va, userCtx(*client.process()),
                            shared->clientVa, req_len);
        core.spend(res.cycles);
        if (!res.ok)
            return abortCall(CallStatus::CopyFault);
        call_ctx.mode = Sel4ServerCall::Mode::Shared;
        call_ctx.sharedVa = shared->serverVa;
        call_ctx.serverBufVa = ep.scratchVa;
        call_ctx.reqCapacity = std::min(shared->len, ep.scratchLen);
    } else if (req_len > 0 && !medium) {
        // Register transfer: load the words now (functionally); the
        // cycle cost rides in the process-switch phase.
        auto res = userRead(core, *client.process(), req_va,
                            call_ctx.regs, req_len);
        if (!res.ok)
            return abortCall(CallStatus::CopyFault);
        call_ctx.mode = Sel4ServerCall::Mode::Registers;
    }

    // --- Phase 1: trap. -------------------------------------------
    Cycles trap_start = core.now();
    {
        req::PhaseScope phase(uint32_t(Phase::Trap));
        trapEnter(core);
        saveRestoreRegs(core, params.fastpathRegs);
        core.spend(params.trapConst);
    }
    phases.trap = core.now() - trap_start;
    if (tr.enabled()) {
        tr.begin("sel4", "trap", trap_start.value(), core.id());
        tr.end("sel4", "trap", core.now().value(), core.id());
    }

    // --- Phase 2: IPC logic (capability fetch + checks). ----------
    t0 = core.now();
    {
        req::PhaseScope phase(uint32_t(Phase::IpcLogic));
        // The cap lookup reads the client's cnode slot and the
        // endpoint object, both in kernel memory.
        uint64_t scratch[2];
        core.spend(mach.mem().readPhys(core.id(), 0x1000 + ep_id * 64,
                                       scratch, 16));
        core.spend(params.logicConst);
        if (slowpath) {
            slowpathCalls.inc();
            core.spend(params.slowpathExtra);
        } else {
            fastpathCalls.inc();
        }
    }
    phases.logic = core.now() - t0;
    if (tr.enabled()) {
        tr.begin("sel4", "ipc_logic", t0.value(), core.id());
        tr.end("sel4", "ipc_logic", core.now().value(), core.id());
    }

    // Medium messages: the kernel copies through the IPC buffer
    // while still in the kernel (slow path).
    t0 = core.now();
    if (medium) {
        req::PhaseScope phase(uint32_t(Phase::Transfer));
        auto res = mach.mem().copy(
            core.id(), userCtx(*client.process()), req_va,
            userCtx(*ep.server->process()), ep.scratchVa, req_len);
        core.spend(res.cycles);
        if (!res.ok) {
            trapExit(core);
            return abortCall(CallStatus::CopyFault);
        }
        call_ctx.mode = Sel4ServerCall::Mode::IpcBuffer;
        call_ctx.serverBufVa = ep.scratchVa;
        call_ctx.reqCapacity = ep.scratchLen;
    }
    Cycles medium_copy = core.now() - t0;

    // --- Phase 3: process switch. ---------------------------------
    t0 = core.now();
    {
        req::PhaseScope phase(uint32_t(Phase::ProcessSwitch));
        if (cross_core) {
            crossCoreCalls.inc();
            hw::Core &scre = mach.core(ep.server->sched.homeCore);
            mach.sendIpi(core.id(), scre.id());
            scre.spend(costs.remoteWake);
            core.spend(costs.schedule);
        }
        core.spend(params.switchConst);
        if (!mach.config().mem.taggedTlb) {
            core.spend(mach.config().core.tlbFlush);
            mach.mem().flushTlb(core.id());
        }
        setCurrent(core.id(), ep.server);
    }
    phases.processSwitch = core.now() - t0;
    if (tr.enabled()) {
        tr.begin("sel4", "process_switch", t0.value(), core.id());
        tr.end("sel4", "process_switch", core.now().value(), core.id());
    }

    // --- Phase 4: restore the server's context, back to user. -----
    t0 = core.now();
    {
        req::PhaseScope phase(uint32_t(Phase::Restore));
        saveRestoreRegs(core, params.fastpathRegs);
        core.spend(params.restoreConst);
        trapExit(core);
    }
    phases.restore = core.now() - t0;
    if (tr.enabled()) {
        tr.begin("sel4", "restore", t0.value(), core.id());
        tr.end("sel4", "restore", core.now().value(), core.id());
    }

    // Two-copy discipline: in user mode, the server copies the
    // message to private memory before using it.
    hw::Core &handler_core =
        cross_core ? mach.core(ep.server->sched.homeCore) : core;
    if (cross_core)
        handler_core.syncTo(core.now());
    t0 = handler_core.now();
    if (large && mode == LongMsgMode::TwoCopy) {
        req::PhaseScope phase(uint32_t(Phase::Transfer));
        auto res = mach.mem().copy(
            handler_core.id(), userCtx(*ep.server->process()),
            shared->serverVa, userCtx(*ep.server->process()),
            ep.scratchVa, req_len);
        handler_core.spend(res.cycles);
        if (!res.ok)
            return abortCall(CallStatus::CopyFault);
        call_ctx.serverBufVa = ep.scratchVa;
    }
    phases.transfer = medium_copy + (handler_core.now() - t0);
    if (large) {
        // Include the client-side shared-buffer fill.
        phases.transfer += trap_start - start;
    }
    if (tr.enabled() && phases.transfer.value() > 0) {
        tr.begin("sel4", "transfer", t0.value(), handler_core.id());
        tr.end("sel4", "transfer",
               t0.value() + phases.transfer.value(),
               handler_core.id());
    }

    out.oneWay = (handler_core.now() > core.now() ? handler_core.now()
                                                  : core.now()) -
                 start;

    // --- The handler runs in the server's address space. ----------
    // Stall / slowdown faults strike here, while the server owns the
    // request. A stall only fires when a deadline is armed - without
    // a budget to exceed it would wedge the caller forever.
    bool stall_injected = false;
    uint32_t slow_factor = 1;
    if (fault && fault->op == FaultOp::StallServer && deadline != 0) {
        stall_injected = true;
        inj->recordFired(*fault);
    } else if (fault && fault->op == FaultOp::SlowServer) {
        slow_factor = fault->arg > 1 ? fault->arg : 2;
        inj->recordFired(*fault);
    }
    auto run_handler = [&](hw::Core &hcore, Sel4ServerCall &ctx) {
        if (stall_injected) {
            // Busy-loop past the deadline; no reply is produced.
            uint64_t now = hcore.now().value();
            hcore.spend(Cycles(
                (deadline > now ? deadline - now : 0) + 1000));
            return;
        }
        Cycles h0 = hcore.now();
        ep.handler(ctx);
        if (slow_factor > 1)
            hcore.spend((hcore.now() - h0) * (slow_factor - 1));
    };

    uint32_t hlane = req::threadLane(uint32_t(ep.server->id()));
    if (cross_core) {
        Sel4ServerCall remote(*this, handler_core, *ep.server);
        remote.client = &client;
        remote.op = call_ctx.op;
        remote.reqLen = call_ctx.reqLen;
        remote.reqCapacity = call_ctx.reqCapacity;
        remote.replyCapacity = call_ctx.replyCapacity;
        remote.longMode = call_ctx.longMode;
        remote.mode = call_ctx.mode;
        std::memcpy(remote.regs, call_ctx.regs, sizeof(remote.regs));
        remote.serverBufVa = call_ctx.serverBufVa;
        remote.sharedVa = call_ctx.sharedVa;
        remote.replySharedVa = call_ctx.replySharedVa;
        Cycles h0 = handler_core.now();
        {
            req::PhaseScope phase(uint32_t(Phase::Handler));
            run_handler(handler_core, remote);
        }
        out.handlerCycles = handler_core.now() - h0;
        if (tr.enabled()) {
            tr.begin("sel4", "handler", h0.value(), hlane);
            tr.flow(trace::EventKind::FlowStep, "sel4", "req",
                    rscope.id(), h0.value(), hlane);
            tr.end("sel4", "handler", handler_core.now().value(),
                   hlane);
        }
        call_ctx.replyLen = remote.replyLen;
        call_ctx.replyInBuffer = remote.replyInBuffer;
        call_ctx.failStatus = remote.failStatus;
        std::memcpy(call_ctx.regsReply, remote.regsReply,
                    sizeof(remote.regsReply));
        mach.sendIpi(handler_core.id(), core.id());
        core.syncTo(handler_core.now());
        core.spend(costs.remoteWake);
    } else {
        Cycles h0 = core.now();
        {
            req::PhaseScope phase(uint32_t(Phase::Handler));
            run_handler(core, call_ctx);
        }
        out.handlerCycles = core.now() - h0;
        if (tr.enabled()) {
            tr.begin("sel4", "handler", h0.value(), hlane);
            tr.flow(trace::EventKind::FlowStep, "sel4", "req",
                    rscope.id(), h0.value(), hlane);
            tr.end("sel4", "handler", core.now().value(), hlane);
        }
    }

    if (deadline != 0 && core.now().value() >= deadline) {
        // The deadline expired while the server held the request
        // (stalled, slow, or genuinely long handler). The kernel
        // unwinds back to the client and discards whatever partial
        // reply exists - the caller already gave up on it.
        deadlineExpired.inc();
        tr.instantNow("sel4", "deadline_expired", clane);
        return abortCall(CallStatus::DeadlineExpired);
    }

    // A handler-flagged failure (nested call went wrong, message
    // access faulted) aborts the reply: the caller gets the status,
    // not a half-built message.
    if (call_ctx.failStatus != CallStatus::Ok)
        return abortCall(call_ctx.failStatus);

    // --- Reply: transfer back, then the return IPC. ---------------
    uint64_t reply_len = call_ctx.replyLen;
    panic_if(reply_len > reply_cap, "reply overflows client buffer");
    if (reply_len > 0) {
        req::PhaseScope phase(uint32_t(Phase::Transfer));
        if (!call_ctx.replyInBuffer) {
            // Reply travelled in registers.
            auto res = userWrite(core, *client.process(), reply_va,
                                 call_ctx.regsReply, reply_len);
            if (!res.ok)
                return abortCall(CallStatus::CopyFault);
        } else if (reply_len > params.ipcBufMax) {
            // Large reply through the shared window.
            panic_if(!shared, "large reply without a shared buffer");
            if (call_ctx.replySharedVa == 0) {
                // Two-copy: server private reply -> shared window.
                auto res = mach.mem().copy(
                    core.id(), userCtx(*ep.server->process()),
                    ep.scratchVa, userCtx(*ep.server->process()),
                    shared->serverVa, reply_len);
                core.spend(res.cycles);
                if (!res.ok)
                    return abortCall(CallStatus::CopyFault);
            }
            auto res = mach.mem().copy(
                core.id(), userCtx(*client.process()),
                shared->clientVa, userCtx(*client.process()),
                reply_va, reply_len);
            core.spend(res.cycles);
            if (!res.ok)
                return abortCall(CallStatus::CopyFault);
        } else {
            // Small/medium reply from a buffer: kernel copy on the
            // slow path.
            VAddr src = call_ctx.replySharedVa ? call_ctx.replySharedVa
                                               : ep.scratchVa;
            auto res = mach.mem().copy(
                core.id(), userCtx(*ep.server->process()), src,
                userCtx(*client.process()), reply_va, reply_len);
            core.spend(res.cycles);
            if (!res.ok)
                return abortCall(CallStatus::CopyFault);
            core.spend(params.slowpathExtra);
        }
    }

    // Return-direction IPC (seL4's ReplyRecv fast path).
    trapEnter(core);
    saveRestoreRegs(core, params.fastpathRegs);
    core.spend(params.trapConst);
    core.spend(params.logicConst);
    core.spend(params.switchConst);
    if (!mach.config().mem.taggedTlb) {
        core.spend(mach.config().core.tlbFlush);
        mach.mem().flushTlb(core.id());
    }
    setCurrent(core.id(), &client);
    saveRestoreRegs(core, params.fastpathRegs);
    core.spend(params.restoreConst);
    trapExit(core);

    lastPhases = phases;
    phaseStats.record(Phase::Trap, phases.trap);
    phaseStats.record(Phase::IpcLogic, phases.logic);
    phaseStats.record(Phase::ProcessSwitch, phases.processSwitch);
    phaseStats.record(Phase::Restore, phases.restore);
    phaseStats.record(Phase::Transfer, phases.transfer);
    phaseStats.record(Phase::RoundTrip, core.now() - start);
    phaseStats.record(Phase::OneWay, out.oneWay);
    out.ok = true;
    out.replyLen = reply_len;
    out.roundTrip = core.now() - start;
    return out;
}

} // namespace xpc::kernel
