/**
 * @file
 * A behavioural model of Zircon channel IPC.
 *
 * Zircon has no synchronous-call fast path: a round trip is a
 * zx_channel_write, a scheduler hop to the server, a zx_channel_read
 * (kernel "twofold copy" on each direction), the handler, and the
 * same path back. That is why the paper measures it at tens of
 * thousands of cycles per round trip, and why batching (e.g. lwIP's
 * send buffering) helps it disproportionately.
 */

#ifndef XPC_KERNEL_ZIRCON_HH
#define XPC_KERNEL_ZIRCON_HH

#include <functional>
#include <map>
#include <vector>

#include "kernel/kernel.hh"
#include "sim/phase.hh"

namespace xpc::kernel {

/** Calibrated software-cost constants of the channel path. */
struct ZirconParams
{
    /** Syscall entry/dispatch logic per zx_channel_* call. */
    Cycles syscallConst{600};
    /** Port/object wait bookkeeping when blocking. */
    Cycles portWait{1200};
    /** Scheduler hop between client and server threads. */
    Cycles schedule{3000};
    /** Registers saved on a syscall. */
    uint32_t syscallRegs = 31;
    /** Largest single channel message. */
    uint64_t maxMsgBytes = 64 * 1024;
};

class ZirconKernel;

/** Server-side view of one received channel message. */
class ZirconServerCall
{
  public:
    uint64_t opcode() const { return op; }
    uint64_t requestLen() const { return reqLen; }

    /** Charged read from the server's private message buffer. */
    void readRequest(uint64_t off, void *dst, uint64_t len);
    /** Charged in-place update of the request (handover plumbing). */
    void writeRequest(uint64_t off, const void *src, uint64_t len);
    /** Charged write into the server's private reply buffer. */
    void writeReply(uint64_t off, const void *src, uint64_t len);
    void setReplyLen(uint64_t len);

    hw::Core &core() { return coreRef; }
    Thread &serverThread() { return server; }
    /** The calling thread (channel peer). */
    Thread *callerThread() { return client; }

    /** Mark the whole invocation failed (see Sel4ServerCall::fail). */
    void fail(CallStatus status) { failStatus = status; }
    CallStatus failStatus = CallStatus::Ok;

  private:
    friend class ZirconKernel;

    ZirconServerCall(ZirconKernel &k, hw::Core &c, Thread &s)
        : owner(k), coreRef(c), server(s)
    {}

    ZirconKernel &owner;
    hw::Core &coreRef;
    Thread &server;
    Thread *client = nullptr;
    uint64_t op = 0;
    uint64_t reqLen = 0;
    uint64_t replyLen = 0;
    uint64_t replyCapacity = 0;
    VAddr reqVa = 0;   ///< server-private request buffer
    VAddr replyVa = 0; ///< server-private reply buffer
};

/** Outcome of a synchronous (write + wait + read) channel call. */
struct ZirconCallOutcome
{
    bool ok = false;
    CallStatus status = CallStatus::Ok;
    uint64_t replyLen = 0;
    Cycles oneWay;
    Cycles roundTrip;
    /** Cycles spent inside the server handler (not IPC overhead). */
    Cycles handlerCycles;
};

/** Zircon-like kernel personality. */
class ZirconKernel : public Kernel
{
  public:
    using Handler = std::function<void(ZirconServerCall &)>;

    explicit ZirconKernel(hw::Machine &machine);

    ZirconParams params;

    /** Create a channel served by @p server running @p handler. */
    uint64_t createChannel(Thread &server, Handler handler);

    /**
     * Synchronous call over channel @p ch: write request, block on
     * the reply, read it back into @p reply_va.
     */
    ZirconCallOutcome call(hw::Core &core, Thread &client, uint64_t ch,
                           uint64_t opcode, VAddr req_va,
                           uint64_t req_len, VAddr reply_va,
                           uint64_t reply_cap);

    Counter channelMsgs;

    /** Registry-visible phase attribution (one-way/handler/round
     *  trip; Zircon has no fast-path phase split to attribute). */
    PhaseStats phaseStats{"phases", &stats};

  private:
    struct Channel
    {
        uint64_t id;
        Thread *server;
        Handler handler;
        /** Kernel-owned message buffer (the twofold-copy staging). */
        PAddr kernelBuf = 0;
        /** Server-private request/reply buffers. */
        VAddr serverReqVa = 0;
        VAddr serverReplyVa = 0;
    };

    std::vector<Channel> channels;

    /** One zx_channel syscall's fixed cost. */
    void chargeSyscall(hw::Core &core);

    friend class ZirconServerCall;
};

} // namespace xpc::kernel

#endif // XPC_KERNEL_ZIRCON_HH
