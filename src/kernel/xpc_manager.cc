#include "xpc_manager.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace xpc::kernel {

XpcManager::XpcManager(Kernel &k, engine::XpcEngine &e)
    : kernel(k), xpcEngine(e)
{
    hw::Machine &m = kernel.machine();
    uint64_t bytes = pageAlignUp(tableSize * engine::xEntryBytes);
    tableBase = m.allocator().allocFrames(bytes / pageSize);
    panic_if(tableBase == 0, "out of memory for the x-entry table");
    m.phys().clear(tableBase, bytes);
    entries.resize(tableSize);
}

void
XpcManager::initThread(Thread &thread)
{
    hw::Machine &m = kernel.machine();
    panic_if(thread.linkStack != 0, "thread %u already initialized",
             thread.id());

    thread.linkStack =
        m.allocator().allocFrames(engine::linkStackBytes / pageSize);
    panic_if(thread.linkStack == 0, "out of memory for link stack");
    m.phys().clear(thread.linkStack, engine::linkStackBytes);

    PAddr bitmap = m.allocator().allocFrames(1);
    panic_if(bitmap == 0, "out of memory for capability bitmap");
    m.phys().clear(bitmap, pageSize);
    thread.runtime.capBitmap = bitmap;

    hw::XpcCsrs &csrs = thread.savedCsrs;
    csrs.xEntryTable = tableBase;
    csrs.xEntryTableSize = tableSize;
    csrs.xcallCap = bitmap;
    csrs.linkReg = thread.linkStack;
    csrs.linkTop = 0;
    csrs.segList = thread.process()->space().segList();
    threadsManaged.push_back(&thread);
}

uint64_t
XpcManager::registerEntry(Thread &creator, Thread &handler_thread,
                          VAddr entry_addr, uint32_t max_contexts)
{
    panic_if(handler_thread.runtime.capBitmap == 0,
             "handler thread has no XPC plumbing (initThread first)");
    for (uint64_t id = 0; id < tableSize; id++) {
        if (entries[id].live)
            continue;
        entries[id] = XEntryInfo{id, &handler_thread, entry_addr,
                                 max_contexts, true};

        engine::XEntry e;
        e.valid = true;
        e.pageTableRoot = handler_thread.process()->space().root();
        e.entryAddr = entry_addr;
        e.capPtr = handler_thread.runtime.capBitmap;
        e.segList = handler_thread.process()->space().segList();
        engine::XpcEngine::writeXEntry(kernel.machine().phys(),
                                       tableBase, id, e);

        grantCaps.insert({creator.id(), id});
        return id;
    }
    fatal("x-entry table full (%lu entries)", (unsigned long)tableSize);
}

void
XpcManager::removeEntry(uint64_t id)
{
    panic_if(id >= tableSize, "x-entry id %lu out of range",
             (unsigned long)id);
    entries[id].live = false;
    engine::XEntry e; // invalid
    engine::XpcEngine::writeXEntry(kernel.machine().phys(), tableBase,
                                   id, e);
}

const XEntryInfo &
XpcManager::entryInfo(uint64_t id) const
{
    panic_if(id >= tableSize, "x-entry id %lu out of range",
             (unsigned long)id);
    return entries[id];
}

void
XpcManager::setCapBit(Thread &thread, uint64_t id, bool value)
{
    panic_if(thread.runtime.capBitmap == 0,
             "thread %u has no capability bitmap", thread.id());
    PAddr word = thread.runtime.capBitmap + (id / 64) * 8;
    uint64_t bits = kernel.machine().phys().read64(word);
    if (value)
        bits |= uint64_t(1) << (id % 64);
    else
        bits &= ~(uint64_t(1) << (id % 64));
    kernel.machine().phys().write64(word, bits);
}

void
XpcManager::grantXcallCap(Thread &grantor, Thread &grantee, uint64_t id)
{
    panic_if(!hasGrantCap(grantor, id),
             "thread %u grants entry %lu without a grant-cap",
             grantor.id(), (unsigned long)id);
    setCapBit(grantee, id, true);
}

void
XpcManager::grantGrantCap(Thread &grantor, Thread &grantee, uint64_t id)
{
    panic_if(!hasGrantCap(grantor, id),
             "thread %u forwards a grant-cap for %lu it does not hold",
             grantor.id(), (unsigned long)id);
    grantCaps.insert({grantee.id(), id});
}

void
XpcManager::revokeXcallCap(Thread &thread, uint64_t id)
{
    setCapBit(thread, id, false);
}

bool
XpcManager::hasXcallCap(const Thread &thread, uint64_t id) const
{
    if (thread.runtime.capBitmap == 0)
        return false;
    PAddr word = thread.runtime.capBitmap + (id / 64) * 8;
    uint64_t bits = kernel.machine().phys().read64(word);
    return (bits >> (id % 64)) & 1;
}

bool
XpcManager::hasGrantCap(const Thread &thread, uint64_t id) const
{
    return grantCaps.count({thread.id(), id}) > 0;
}

RelaySeg
XpcManager::allocRelaySeg(hw::Core *core, Process &process,
                          uint64_t len, uint64_t slot)
{
    if (core)
        kernel.trapEnter(*core);

    len = pageAlignUp(len);
    hw::Machine &m = kernel.machine();
    PAddr pa = m.allocator().allocFrames(len / pageSize);
    fatal_if(pa == 0,
             "cannot allocate a contiguous relay segment of %lu bytes",
             (unsigned long)len);
    m.phys().clear(pa, len);

    // Relay-seg VAs come from a machine-global window so the same
    // virtual range is valid in every address space along a call
    // chain, and never overlaps a page-table mapping (paper 3.1).
    VAddr va = segVaNext;
    segVaNext += len;
    process.space().reserveSegRangeAt(va, len);

    RelaySeg seg{nextSegId++, va, pa, len, process.id()};
    liveSegs[seg.segId] = seg;

    engine::RelaySegEntry entry;
    entry.valid = true;
    entry.window = mem::SegWindow{true, va, pa, len, true, true};
    entry.segId = seg.segId;
    engine::XpcEngine::writeSegListEntry(m.phys(),
                                         process.space().segList(),
                                         slot, entry);
    if (core) {
        // The kernel writes the seg-list slot on the thread's behalf.
        core->spend(Cycles(60));
        kernel.trapExit(*core);
    }
    return seg;
}

void
XpcManager::freeRelaySeg(Process &process, uint64_t seg_id)
{
    auto it = liveSegs.find(seg_id);
    panic_if(it == liveSegs.end(), "free of unknown relay seg %lu",
             (unsigned long)seg_id);
    panic_if(it->second.allocator != process.id(),
             "process %u frees a segment it does not own", process.id());
    hw::Machine &m = kernel.machine();
    m.allocator().freeFrames(it->second.pa, it->second.len / pageSize);
    if (!process.space().dead())
        process.space().releaseSegRange(it->second.va);
    liveSegs.erase(it);
}

void
XpcManager::revokeRelaySeg(uint64_t seg_id)
{
    auto it = liveSegs.find(seg_id);
    panic_if(it == liveSegs.end(), "revoke of unknown relay seg %lu",
             (unsigned long)seg_id);
    RelaySeg seg = it->second;
    hw::Machine &m = kernel.machine();

    // Invalidate every seg-list slot naming the segment, in every
    // process this manager plumbed (seg-lists are per-process; the
    // set below dedups threads sharing one).
    std::set<PAddr> seg_lists;
    for (Thread *t : threadsManaged) {
        Process *p = t->process();
        if (p && !p->dead)
            seg_lists.insert(p->space().segList());
    }
    for (PAddr list : seg_lists) {
        for (uint64_t slot = 0; slot < engine::segListCapacity; slot++) {
            auto entry = engine::XpcEngine::readSegListEntry(m.phys(),
                                                             list, slot);
            if (entry.valid && entry.segId == seg_id) {
                entry.valid = false;
                engine::XpcEngine::writeSegListEntry(m.phys(), list,
                                                     slot, entry);
            }
        }
    }

    // Scrub it out of any core currently holding it in seg-reg so
    // in-flight relay accesses fault instead of hitting freed frames.
    for (CoreId c = 0; c < m.coreCount(); c++) {
        hw::XpcCsrs &csrs = m.core(c).csrs;
        if (csrs.segId == seg_id) {
            csrs.segReg = mem::SegWindow{};
            csrs.segId = 0;
        }
    }

    m.allocator().freeFrames(seg.pa, seg.len / pageSize);
    auto owner_it = std::find_if(
        threadsManaged.begin(), threadsManaged.end(), [&](Thread *t) {
            return t->process() && t->process()->id() == seg.allocator;
        });
    if (owner_it != threadsManaged.end() &&
        !(*owner_it)->process()->space().dead()) {
        (*owner_it)->process()->space().releaseSegRange(seg.va);
    }
    liveSegs.erase(seg_id);
}

std::vector<uint64_t>
XpcManager::segsOwnedBy(ProcessId pid) const
{
    std::vector<uint64_t> out;
    for (const auto &[id, seg] : liveSegs) {
        if (seg.allocator == pid)
            out.push_back(id);
    }
    return out;
}

std::vector<uint64_t>
XpcManager::relayPtsOwnedBy(ProcessId pid) const
{
    std::vector<uint64_t> out;
    for (const auto &[id, rpt] : liveRelayPts) {
        if (rpt.owner == pid)
            out.push_back(id);
    }
    return out;
}

std::optional<RelaySeg>
XpcManager::segById(uint64_t seg_id) const
{
    auto it = liveSegs.find(seg_id);
    if (it == liveSegs.end())
        return std::nullopt;
    return it->second;
}

XpcManager::RelayPt &
XpcManager::allocRelayPt(hw::Core *core, Process &process,
                         uint64_t len)
{
    if (core)
        kernel.trapEnter(*core);
    len = pageAlignUp(len);
    hw::Machine &m = kernel.machine();

    RelayPt rpt;
    rpt.id = nextSegId++;
    rpt.len = len;
    rpt.asid = nextRelayAsid++;
    rpt.owner = process.id();
    rpt.va = segVaNext;
    segVaNext += len;
    // Keep relay-pt VAs inside Sv39 so the dual table can map them.
    panic_if(rpt.va + len > (uint64_t(1) << 39),
             "relay-pt VA window exhausted");
    rpt.table = std::make_unique<mem::PageTable>(m.phys(),
                                                 m.allocator());
    // Scattered frames: allocated one page at a time, deliberately
    // non-contiguous (the capability relay segments lack).
    for (uint64_t off = 0; off < len; off += pageSize) {
        PAddr frame = m.allocator().allocFrames(1);
        fatal_if(frame == 0, "out of memory for relay-pt frames");
        m.phys().clear(frame, pageSize);
        rpt.frames.push_back(frame);
        rpt.table->map(rpt.va + off, frame, mem::permsRW);
    }
    process.space().reserveSegRangeAt(rpt.va, len);

    if (core) {
        // Kernel builds the table: charged per page mapped.
        core->spend(Cycles(40 * (len / pageSize) + 120));
        kernel.trapExit(*core);
    }
    auto [it, fresh] = liveRelayPts.emplace(rpt.id, std::move(rpt));
    panic_if(!fresh, "relay-pt id collision");
    return it->second;
}

void
XpcManager::transferRelayPt(hw::Core *core, uint64_t id, Process &to)
{
    auto it = liveRelayPts.find(id);
    panic_if(it == liveRelayPts.end(), "transfer of unknown relay-pt");
    RelayPt &rpt = it->second;

    if (core)
        kernel.trapEnter(*core);
    rpt.owner = to.id();
    if (core) {
        hw::Machine &m = kernel.machine();
        // The kernel revalidates each leaf PTE (ownership cannot be
        // flipped in one register write as with seg-reg)...
        for (uint64_t off = 0; off < rpt.len; off += pageSize) {
            auto walk = rpt.table->walk(rpt.va + off);
            core->spend(m.mem().l1(core->id())
                            .access(walk.pteAddrs[walk.levels - 1], 8,
                                    true));
        }
        // ... and the relay ASID must be shot down everywhere, since
        // stale TLB entries would let the old owner keep accessing.
        for (CoreId c = 0; c < m.coreCount(); c++) {
            m.mem().tlb(c).flushAsid(rpt.asid);
            if (c != core->id())
                m.sendIpi(core->id(), c);
        }
        core->spend(m.config().core.tlbFlush);
        kernel.trapExit(*core);
    } else {
        for (CoreId c = 0; c < kernel.machine().coreCount(); c++)
            kernel.machine().mem().tlb(c).flushAsid(rpt.asid);
    }
}

mem::RelayPtWindow
XpcManager::relayPtWindow(uint64_t id) const
{
    auto it = liveRelayPts.find(id);
    panic_if(it == liveRelayPts.end(), "window of unknown relay-pt");
    mem::RelayPtWindow w;
    w.valid = true;
    w.vaBase = it->second.va;
    w.len = it->second.len;
    w.pt = it->second.table.get();
    w.asid = it->second.asid;
    return w;
}

const XpcManager::RelayPt *
XpcManager::relayPtById(uint64_t id) const
{
    auto it = liveRelayPts.find(id);
    return it == liveRelayPts.end() ? nullptr : &it->second;
}

Thread *
XpcManager::threadByCapBitmap(PAddr bitmap) const
{
    for (Thread *t : threadsManaged) {
        if (t->runtime.capBitmap == bitmap)
            return t;
    }
    return nullptr;
}

bool
XpcManager::forceUnwind(hw::Core &core, bool even_if_invalid)
{
    hw::XpcCsrs &csrs = core.csrs;
    if (csrs.linkTop == 0)
        return false;
    kernel.trapEnter(core);
    uint64_t index = csrs.linkTop - 1;
    hw::Machine &m = kernel.machine();
    auto rec = engine::XpcEngine::readLinkageRecord(m.phys(),
                                                    csrs.linkReg,
                                                    index);
    if (!rec.valid && !even_if_invalid) {
        kernel.trapExit(core);
        return false;
    }
    // Kernel-side pop: restore the caller completely and consume
    // the record. Timer handling + the restore work.
    core.spend(Cycles(180));
    auto dead = rec;
    dead.valid = false;
    engine::XpcEngine::writeLinkageRecord(m.phys(), csrs.linkReg,
                                          index, dead);
    csrs.linkTop = index;
    csrs.xcallCap = rec.callerCapPtr;
    csrs.segList = rec.callerSegList;
    csrs.segReg = rec.callerSeg;
    csrs.segId = rec.callerSegId;
    csrs.segMaskOffset = rec.callerMaskOffset;
    csrs.segMaskLen = rec.callerMaskLen;
    csrs.pageTableRoot = rec.callerPageTable;
    // Don't reinstall a segment that was revoked while the callee
    // held it: the caller resumes without a relay window instead of
    // with a window onto freed frames.
    if (csrs.segId != 0 && !liveSegs.count(csrs.segId)) {
        csrs.segReg = mem::SegWindow{};
        csrs.segId = 0;
        csrs.segMaskOffset = 0;
        csrs.segMaskLen = 0;
    }
    if (!m.config().mem.taggedTlb) {
        core.spend(m.config().core.tlbFlush);
        m.mem().flushTlb(core.id());
    }
    kernel.trapExit(core);
    return true;
}

bool
XpcManager::corruptTopLinkage(hw::Core &core)
{
    hw::XpcCsrs &csrs = core.csrs;
    if (csrs.linkTop == 0)
        return false;
    hw::Machine &m = kernel.machine();
    uint64_t index = csrs.linkTop - 1;
    auto rec = engine::XpcEngine::readLinkageRecord(m.phys(),
                                                    csrs.linkReg,
                                                    index);
    rec.valid = false;
    engine::XpcEngine::writeLinkageRecord(m.phys(), csrs.linkReg,
                                          index, rec);
    return true;
}

void
XpcManager::installThread(hw::Core &core, Thread &thread)
{
    core.csrs = thread.savedCsrs;
    core.csrs.pageTableRoot = thread.process()->space().root();
    kernel.setCurrent(core.id(), &thread);
}

void
XpcManager::saveThread(hw::Core &core, Thread &thread)
{
    thread.savedCsrs = core.csrs;
}

void
XpcManager::onProcessExit(Process &process)
{
    hw::Machine &m = kernel.machine();
    PAddr dying_root = process.space().root();

    // 1. Invalidate the dying process's linkage records everywhere
    //    so an xret into it faults instead of resuming dead code.
    for (Thread *t : threadsManaged) {
        if (t->linkStack == 0)
            continue;
        for (uint64_t i = 0; i < engine::linkStackCapacity; i++) {
            auto rec = engine::XpcEngine::readLinkageRecord(
                m.phys(), t->linkStack, i);
            if (rec.valid && rec.callerPageTable == dying_root) {
                rec.valid = false;
                engine::XpcEngine::writeLinkageRecord(
                    m.phys(), t->linkStack, i, rec);
            }
        }
    }

    // 2. Remove x-entries served by the dying process.
    for (auto &info : entries) {
        if (info.live && info.handlerThread &&
            info.handlerThread->process() == &process) {
            removeEntry(info.id);
        }
    }

    // 3. Segment revocation (paper 4.4): segments the process
    //    allocated are freed; borrowed ones stay with their owners.
    std::vector<uint64_t> to_free;
    for (auto &[id, seg] : liveSegs) {
        if (seg.allocator == process.id())
            to_free.push_back(id);
    }

    // 3b. Relay page tables currently owned by the process.
    std::vector<uint64_t> rpts;
    for (auto &[id, rpt] : liveRelayPts) {
        if (rpt.owner == process.id())
            rpts.push_back(id);
    }
    for (uint64_t id : rpts) {
        RelayPt &rpt = liveRelayPts.at(id);
        for (CoreId c = 0; c < m.coreCount(); c++)
            m.mem().tlb(c).flushAsid(rpt.asid);
        for (PAddr frame : rpt.frames)
            m.allocator().freeFrames(frame, 1);
        liveRelayPts.erase(id);
    }

    // 4. Zap the root page table so every stale translation faults.
    process.space().kill();
    process.dead = true;
    for (Thread *t : process.threads)
        t->state = ThreadState::Dead;

    for (uint64_t id : to_free)
        freeRelaySeg(process, id);
}

} // namespace xpc::kernel
