/**
 * @file
 * Kernel base: processes, threads, traps, context switches and timed
 * user-memory access. Sel4Kernel and ZirconKernel specialize the IPC
 * path on top of this.
 */

#ifndef XPC_KERNEL_KERNEL_HH
#define XPC_KERNEL_KERNEL_HH

#include <memory>
#include <string>
#include <vector>

#include "hw/machine.hh"
#include "kernel/address_space.hh"
#include "kernel/thread.hh"

namespace xpc::kernel {

/**
 * Why a cross-process call did (or did not) complete. Kernels fill
 * this into their call outcomes; the transports forward it to
 * clients as a TransportStatus so a faulting call is an error the
 * caller can handle instead of a simulator abort.
 */
enum class CallStatus
{
    Ok,
    /** Caller lacks the capability for the target. */
    NoCapability,
    /** A request or reply copy faulted mid-transfer. */
    CopyFault,
    /** The callee overran its budget; the kernel unwound the call. */
    Timeout,
    /** No idle invocation context at the callee. */
    Exhausted,
    /** The callee's process died while the call was in flight. */
    ServiceDead,
    /** The relay segment was revoked while the callee held it. */
    SegRevoked,
    /** The linkage record under the call was corrupt. */
    LinkageCorrupt,
    /** The transfer instruction itself faulted (engine exception). */
    EngineFault,
    /** A nested (handover) call the handler issued failed. */
    NestedFailure,
    /** The server shed the request at admission (load shedding). */
    Overloaded,
    /** The request's deadline expired before a reply was produced. */
    DeadlineExpired,
    /** The client-side circuit breaker is open; call not attempted. */
    BreakerOpen,
};

const char *callStatusName(CallStatus status);

/** A process: one address space plus one or more threads. */
class Process
{
  public:
    Process(ProcessId id, std::string name, hw::Machine &machine);

    ProcessId id() const { return procId; }
    const std::string &name() const { return procName; }
    AddressSpace &space() { return addressSpace; }

    /** Allocate zeroed user RW memory; convenience over allocMap. */
    VAddr alloc(uint64_t len);

    /** Threads belonging to this process (non-owning). */
    std::vector<Thread *> threads;

    bool dead = false;

  private:
    ProcessId procId;
    std::string procName;
    AddressSpace addressSpace;
};

/** Software cost constants shared by both kernel personalities. */
struct KernelCosts
{
    /** Run-queue manipulation + pick-next on a scheduling event. */
    Cycles schedule{2600};
    /** Blocking a thread and waking another on a remote core (on top
     *  of the IPI itself). */
    Cycles remoteWake{1600};
};

/**
 * The kernel base. Owns every process and thread and the per-core
 * notion of "current thread"; charges privilege transitions and
 * context switches using the machine's cost model.
 */
class Kernel
{
  public:
    explicit Kernel(hw::Machine &machine);
    virtual ~Kernel() = default;

    hw::Machine &machine() { return mach; }
    KernelCosts costs;

    /**
     * Per-call deadline budget for top-level kernel IPC (0 = off,
     * the default). When set, every outermost call mints an absolute
     * deadline of now + callDeadline; nested hops inherit the
     * tightest enclosing deadline and the kernel aborts the call
     * with CallStatus::DeadlineExpired once the cycle clock passes
     * it, instead of letting a stalled server block the caller.
     */
    Cycles callDeadline{0};

    /** Calls aborted because their deadline expired. */
    Counter deadlineExpired;

    Process &createProcess(const std::string &name);
    Thread &createThread(Process &process, CoreId home_core);

    Thread *current(CoreId core) const { return currentThread[core]; }
    void setCurrent(CoreId core, Thread *t) { currentThread[core] = t; }

    /// @name Trap path cost charging.
    /// @{
    /** user -> kernel transition. */
    void trapEnter(hw::Core &core);
    /** kernel -> user transition. */
    void trapExit(hw::Core &core);
    /** Save or restore @p nregs general-purpose registers. */
    void saveRestoreRegs(hw::Core &core, uint32_t nregs);
    /// @}

    /**
     * Full kernel context switch on @p core to @p next: registers,
     * scheduler bookkeeping, address-space switch (flushing an
     * untagged TLB), XPC CSR swap.
     */
    void contextSwitchTo(hw::Core &core, Thread &next);

    /// @name Timed user-memory access on behalf of a process.
    /// @{
    mem::TransContext userCtx(Process &process) const;
    mem::AccessResult userRead(hw::Core &core, Process &process,
                               VAddr va, void *dst, uint64_t len);
    mem::AccessResult userWrite(hw::Core &core, Process &process,
                                VAddr va, const void *src, uint64_t len);
    /// @}

    Counter traps;
    Counter contextSwitches;

    /** Registry node; subclasses add their own stats under it. */
    StatGroup stats{"kernel"};

  protected:
    hw::Machine &mach;
    std::vector<std::unique_ptr<Process>> processes;
    std::vector<std::unique_ptr<Thread>> threads;
    std::vector<Thread *> currentThread;
    Asid nextAsid = 1;
};

} // namespace xpc::kernel

#endif // XPC_KERNEL_KERNEL_HH
