/**
 * @file
 * The kernel's XPC control plane (paper 3/4.1/4.2/4.4).
 *
 * The data plane (xcall/xret/swapseg) is hardware; everything slow or
 * security-critical stays in the kernel: allocating the global
 * x-entry table, per-thread link stacks and capability bitmaps,
 * per-process seg-lists; the grant-cap capability model; allocating
 * physically contiguous relay segments that never overlap page-table
 * mappings; and cleaning all of it up when a process dies mid-chain.
 */

#ifndef XPC_KERNEL_XPC_MANAGER_HH
#define XPC_KERNEL_XPC_MANAGER_HH

#include <map>
#include <optional>
#include <set>
#include <vector>

#include "kernel/kernel.hh"
#include "xpc/engine.hh"

namespace xpc::kernel {

/** A kernel-allocated relay segment. */
struct RelaySeg
{
    uint64_t segId = 0;
    VAddr va = 0;
    PAddr pa = 0;
    uint64_t len = 0;
    /** Process that allocated (and ultimately owns) the memory. */
    ProcessId allocator = 0;
};

/** Metadata the kernel keeps per registered x-entry. */
struct XEntryInfo
{
    uint64_t id = 0;
    Thread *handlerThread = nullptr;
    VAddr entryAddr = 0;
    uint32_t maxContexts = 1;
    bool live = false;
};

/** Kernel-side manager of all XPC state. */
class XpcManager
{
  public:
    XpcManager(Kernel &kernel, engine::XpcEngine &engine);

    engine::XpcEngine &engine() { return xpcEngine; }
    PAddr xEntryTable() const { return tableBase; }
    uint64_t xEntryTableSize() const { return tableSize; }

    /**
     * Give @p thread its XPC plumbing: an 8 KiB link stack and a
     * capability bitmap. Called once per thread before it may xcall.
     */
    void initThread(Thread &thread);

    /**
     * Register a new x-entry served by @p handler_thread at
     * @p entry_addr. The creating thread receives the grant-cap.
     * @return the new x-entry ID.
     */
    uint64_t registerEntry(Thread &creator, Thread &handler_thread,
                           VAddr entry_addr, uint32_t max_contexts);

    /** Invalidate an x-entry. */
    void removeEntry(uint64_t id);

    const XEntryInfo &entryInfo(uint64_t id) const;

    /// @name Capability model (paper 4.2).
    /// @{
    /**
     * @p grantor (holding the grant-cap) gives @p grantee the xcall
     * capability for entry @p id. Fails loudly without the grant-cap.
     */
    void grantXcallCap(Thread &grantor, Thread &grantee, uint64_t id);

    /** Pass the grant-cap itself on to another thread. */
    void grantGrantCap(Thread &grantor, Thread &grantee, uint64_t id);

    /** Remove @p thread's xcall capability for @p id. */
    void revokeXcallCap(Thread &thread, uint64_t id);

    bool hasXcallCap(const Thread &thread, uint64_t id) const;
    bool hasGrantCap(const Thread &thread, uint64_t id) const;
    /// @}

    /// @name Relay segments (paper 3.3/4.4).
    /// @{
    /**
     * Allocate a physically contiguous relay segment of @p len bytes
     * for @p process and install it in seg-list slot @p slot. The VA
     * range is guaranteed never to overlap any page-table mapping.
     * Charged as a syscall when @p core is non-null.
     */
    RelaySeg allocRelaySeg(hw::Core *core, Process &process,
                           uint64_t len, uint64_t slot);

    /** Free a relay segment owned by @p process. */
    void freeRelaySeg(Process &process, uint64_t seg_id);

    /**
     * Revoke a live relay segment out from under whoever holds it
     * (paper 4.4 "Segment Revocation"): invalidate every seg-list
     * slot naming it, scrub it out of any core's seg-reg, free the
     * frames and retire the ID. A callee holding the segment sees
     * its next access fault and its xret fail the seg-reg check.
     */
    void revokeRelaySeg(uint64_t seg_id);

    /** Look up a live segment by ID. */
    std::optional<RelaySeg> segById(uint64_t seg_id) const;

    /** Live segments allocated by (still owned by) @p pid. */
    std::vector<uint64_t> segsOwnedBy(ProcessId pid) const;
    /** Live relay page tables owned by @p pid. */
    std::vector<uint64_t> relayPtsOwnedBy(ProcessId pid) const;
    uint64_t liveSegCount() const { return liveSegs.size(); }
    uint64_t liveRelayPtCount() const { return liveRelayPts.size(); }
    /// @}

    /// @name Relay page tables (the paper's 6.2 extension).
    /// @{
    /** A non-contiguous relay region translated by a dual page table. */
    struct RelayPt
    {
        uint64_t id = 0;
        VAddr va = 0;
        uint64_t len = 0;
        Asid asid = 0;
        ProcessId owner = 0;
        std::unique_ptr<mem::PageTable> table;
        /** Scattered backing frames (one per page, not contiguous). */
        std::vector<PAddr> frames;
    };

    /**
     * Allocate a relay page table of @p len bytes backed by scattered
     * frames for @p process. Unlike relay segments, no contiguous
     * physical range is needed; unlike them, ownership transfer is a
     * kernel operation (see transferRelayPt).
     */
    RelayPt &allocRelayPt(hw::Core *core, Process &process,
                          uint64_t len);

    /**
     * Transfer ownership of relay-pt @p id to @p to. This is what the
     * hardware cannot do for a page-table-backed region: the kernel
     * revalidates the table (charged per-page) and shoots the
     * region's TLB entries down on every core.
     */
    void transferRelayPt(hw::Core *core, uint64_t id, Process &to);

    /** Translation window for MemSystem's TransContext. */
    mem::RelayPtWindow relayPtWindow(uint64_t id) const;

    const RelayPt *relayPtById(uint64_t id) const;
    /// @}

    /// @name Thread installation on a core.
    /// @{
    /** Load @p thread's saved XPC CSRs (and table regs) onto @p core. */
    void installThread(hw::Core &core, Thread &thread);
    /** Save @p core's XPC CSRs back into @p thread. */
    void saveThread(hw::Core &core, Thread &thread);
    /// @}

    /**
     * Handle the death of @p process (paper 4.2 "Application
     * Termination" and 4.4 "Segment Revocation"): invalidate its
     * linkage records in every link stack, zap its page-table root,
     * return borrowed segments and free owned ones.
     */
    void onProcessExit(Process &process);

    /** Threads whose plumbing this manager initialized. */
    const std::vector<Thread *> &managedThreads() const
    {
        return threadsManaged;
    }

    /** Resolve a caller's xcall-cap-reg value back to its thread
     *  (what a callee uses to authenticate callers, paper 6.1). */
    Thread *threadByCapBitmap(PAddr bitmap) const;

    /**
     * Kernel-driven unwind of the top linkage record (the paper's
     * 6.1 timeout mechanism: when a callee hangs past its budget,
     * the kernel forces control back to the caller). Restores the
     * caller's full saved state - unlike xret, no seg-reg equality
     * check, since the hung callee cannot be trusted to have
     * restored anything - and invalidates the record.
     *
     * With @p even_if_invalid the kernel also consumes a record whose
     * valid bit is gone (corruption, or the caller process died): the
     * stale caller state is restored as far as it can be trusted, and
     * a seg-reg naming a revoked segment is cleared rather than
     * reinstalled.
     * @return true if a record was unwound.
     */
    bool forceUnwind(hw::Core &core, bool even_if_invalid = false);

    /**
     * Fault injection helper: flip the valid bit of the top linkage
     * record on @p core, as a bit flip or rogue DMA would. No cost is
     * charged; this models damage, not an operation.
     * @return true if there was a record to corrupt.
     */
    bool corruptTopLinkage(hw::Core &core);

  private:
    Kernel &kernel;
    engine::XpcEngine &xpcEngine;
    PAddr tableBase = 0;
    uint64_t tableSize = engine::defaultXEntryCount;
    uint64_t nextSegId = 1;
    /** Global relay-seg VA window, disjoint from process heaps. */
    VAddr segVaNext = uint64_t(0x30) << 32;

    std::vector<XEntryInfo> entries;
    /** (thread, entry) -> holds grant capability. */
    std::set<std::pair<ThreadId, uint64_t>> grantCaps;
    std::map<uint64_t, RelaySeg> liveSegs;
    std::map<uint64_t, RelayPt> liveRelayPts;
    Asid nextRelayAsid = 0x7000;
    std::vector<Thread *> threadsManaged;

    void setCapBit(Thread &thread, uint64_t id, bool value);
};

} // namespace xpc::kernel

#endif // XPC_KERNEL_XPC_MANAGER_HH
