/**
 * @file
 * A process address space: page table, virtual-address allocation and
 * the bookkeeping needed to keep relay segments disjoint from every
 * page-table mapping (paper 3.1's no-TLB-shootdown guarantee).
 */

#ifndef XPC_KERNEL_ADDRESS_SPACE_HH
#define XPC_KERNEL_ADDRESS_SPACE_HH

#include <map>
#include <memory>

#include "hw/machine.hh"
#include "mem/page_table.hh"

namespace xpc::kernel {

/** One process's virtual address space. */
class AddressSpace
{
  public:
    AddressSpace(Asid asid, hw::Machine &machine);
    ~AddressSpace();

    AddressSpace(const AddressSpace &) = delete;
    AddressSpace &operator=(const AddressSpace &) = delete;

    Asid asid() const { return spaceAsid; }
    mem::PageTable &pageTable() { return *table; }
    const mem::PageTable &pageTable() const { return *table; }
    PAddr root() const { return table->root(); }

    /**
     * Allocate @p len bytes (rounded to pages) of fresh anonymous
     * memory, map it with @p perms, and return its base VA.
     */
    VAddr allocMap(uint64_t len, mem::Perms perms);

    /** Unmap and free a region returned by allocMap. */
    void freeMap(VAddr base);

    /**
     * Reserve a virtual range for a relay segment. The range is
     * recorded so no later allocMap overlaps it, and allocMap regions
     * are checked so it never overlaps an existing mapping.
     * @return the reserved VA base, or 0 when the range is taken.
     */
    VAddr reserveSegRange(uint64_t len);

    /**
     * Reserve a specific virtual range (used for relay segments whose
     * VA must be valid in every address space along a call chain).
     * Panics when the range collides with an existing region.
     */
    void reserveSegRangeAt(VAddr base, uint64_t len);

    /** Release a relay-seg reservation. */
    void releaseSegRange(VAddr base);

    /** True when [va, va+len) intersects any mapping or reservation. */
    bool overlapsAnything(VAddr va, uint64_t len) const;

    /** Per-address-space seg-list page (physical). */
    PAddr segList() const { return segListPage; }

    /** Mark this space dead: zero the page-table root so stale
     *  translations (and stale xrets) fault (paper 4.2). */
    void kill();

    bool dead() const { return isDead; }

  private:
    Asid spaceAsid;
    hw::Machine &machine;
    std::unique_ptr<mem::PageTable> table;
    PAddr segListPage;
    bool isDead = false;

    /** Next VA handed out by the bump allocator. */
    VAddr nextVa = 0x10000000;

    struct Region
    {
        uint64_t len;
        PAddr phys;     ///< 0 for reservations (no frames owned)
        bool isSegRange;
    };
    /** All live regions: mappings and relay-seg reservations. */
    std::map<VAddr, Region> regions;
};

} // namespace xpc::kernel

#endif // XPC_KERNEL_ADDRESS_SPACE_HH
