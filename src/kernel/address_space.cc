#include "address_space.hh"

#include "sim/logging.hh"

namespace xpc::kernel {

AddressSpace::AddressSpace(Asid asid, hw::Machine &m)
    : spaceAsid(asid), machine(m)
{
    table = std::make_unique<mem::PageTable>(m.phys(), m.allocator());
    segListPage = m.allocator().allocFrames(1);
    panic_if(segListPage == 0, "out of memory for seg-list page");
    m.phys().clear(segListPage, pageSize);
}

AddressSpace::~AddressSpace()
{
    for (auto &[va, region] : regions) {
        if (region.phys != 0) {
            machine.allocator().freeFrames(region.phys,
                                           region.len / pageSize);
        }
    }
    machine.allocator().freeFrames(segListPage, 1);
}

bool
AddressSpace::overlapsAnything(VAddr va, uint64_t len) const
{
    if (len == 0)
        return false;
    auto it = regions.upper_bound(va);
    if (it != regions.begin()) {
        auto prev = std::prev(it);
        if (prev->first + prev->second.len > va)
            return true;
    }
    return it != regions.end() && it->first < va + len;
}

VAddr
AddressSpace::allocMap(uint64_t len, mem::Perms perms)
{
    panic_if(isDead, "allocMap on a dead address space");
    panic_if(len == 0, "allocMap of zero bytes");
    len = pageAlignUp(len);

    VAddr base = nextVa;
    while (overlapsAnything(base, len))
        base += pageSize;
    nextVa = base + len;

    uint64_t npages = len / pageSize;
    PAddr phys = machine.allocator().allocFrames(npages);
    panic_if(phys == 0, "out of physical memory (%lu pages)",
             (unsigned long)npages);
    machine.phys().clear(phys, len);
    for (uint64_t i = 0; i < npages; i++) {
        table->map(base + i * pageSize, phys + i * pageSize, perms);
    }
    regions[base] = Region{len, phys, false};
    return base;
}

void
AddressSpace::freeMap(VAddr base)
{
    auto it = regions.find(base);
    panic_if(it == regions.end() || it->second.isSegRange,
             "freeMap of unknown region %#lx", (unsigned long)base);
    uint64_t npages = it->second.len / pageSize;
    for (uint64_t i = 0; i < npages; i++)
        table->unmap(base + i * pageSize);
    machine.allocator().freeFrames(it->second.phys, npages);
    regions.erase(it);
}

VAddr
AddressSpace::reserveSegRange(uint64_t len)
{
    panic_if(isDead, "reserveSegRange on a dead address space");
    len = pageAlignUp(len);
    VAddr base = nextVa;
    while (overlapsAnything(base, len))
        base += pageSize;
    nextVa = base + len;

    // Invariant 2 of DESIGN.md: the kernel guarantees relay segments
    // never coincide with page-table mappings.
    panic_if(table->anyMappingIn(base, len),
             "relay-seg range overlaps a page-table mapping");
    regions[base] = Region{len, 0, true};
    return base;
}

void
AddressSpace::reserveSegRangeAt(VAddr base, uint64_t len)
{
    panic_if(isDead, "reserveSegRangeAt on a dead address space");
    len = pageAlignUp(len);
    panic_if(overlapsAnything(base, len),
             "relay-seg range %#lx collides with an existing region",
             (unsigned long)base);
    panic_if(table->anyMappingIn(base, len),
             "relay-seg range overlaps a page-table mapping");
    regions[base] = Region{len, 0, true};
}

void
AddressSpace::releaseSegRange(VAddr base)
{
    auto it = regions.find(base);
    panic_if(it == regions.end() || !it->second.isSegRange,
             "releaseSegRange of unknown range %#lx",
             (unsigned long)base);
    regions.erase(it);
}

void
AddressSpace::kill()
{
    isDead = true;
    table->zapRoot();
}

} // namespace xpc::kernel
