#include "zircon.hh"

#include <cstring>

#include "sim/fault_injector.hh"
#include "sim/logging.hh"
#include "sim/trace.hh"

namespace xpc::kernel {

namespace {

/** Closes the "zircon.channel_call" span (and the flow arc for the
 *  chain's top-level call) on every exit path, aborts included. */
struct ZirconSpanCloser
{
    trace::Tracer &tr;
    hw::Core &core;
    uint32_t lane;
    uint64_t flowId;
    bool top;
    bool active;
    /** The request's terminal outcome, stamped as an instant for
     *  critpath.py's --top outcome column. */
    const ZirconCallOutcome *out = nullptr;
    /** Caller's tenant; stamped (non-default only, so single-tenant
     *  traces are unchanged) for critpath.py's per-tenant column. */
    TenantId tenant = defaultTenant;

    ~ZirconSpanCloser()
    {
        if (top && out) {
            tr.instantNow("zircon", "outcome", lane,
                          callStatusName(out->status));
            if (tenant != defaultTenant)
                tr.instantNow("zircon", "tenant", lane,
                              std::to_string(tenant));
        }
        if (!active)
            return;
        uint64_t now = core.now().value();
        if (top)
            tr.flow(trace::EventKind::FlowEnd, "zircon", "req",
                    flowId, now, lane);
        tr.end("zircon", "channel_call", now, lane);
    }
};

} // namespace

ZirconKernel::ZirconKernel(hw::Machine &machine) : Kernel(machine)
{
    costs.schedule = params.schedule;
    stats.setName("zircon");
    stats.addCounter("channel_msgs", &channelMsgs);
}

uint64_t
ZirconKernel::createChannel(Thread &server, Handler handler)
{
    Channel ch;
    ch.id = channels.size();
    ch.server = &server;
    ch.handler = std::move(handler);
    uint64_t npages = params.maxMsgBytes / pageSize;
    ch.kernelBuf = mach.allocator().allocFrames(npages);
    panic_if(ch.kernelBuf == 0, "out of memory for channel buffer");
    ch.serverReqVa = server.process()->alloc(params.maxMsgBytes);
    ch.serverReplyVa = server.process()->alloc(params.maxMsgBytes);
    channels.push_back(std::move(ch));
    return channels.back().id;
}

void
ZirconKernel::chargeSyscall(hw::Core &core)
{
    trapEnter(core);
    saveRestoreRegs(core, 2 * params.syscallRegs);
    core.spend(params.syscallConst);
    trapExit(core);
}

void
ZirconServerCall::readRequest(uint64_t off, void *dst, uint64_t len)
{
    panic_if(off + len > owner.params.maxMsgBytes,
             "request read out of bounds");
    auto res = owner.userRead(coreRef, *server.process(), reqVa + off,
                              dst, len);
    if (!res.ok) {
        std::memset(dst, 0, len);
        fail(CallStatus::CopyFault);
    }
}

void
ZirconServerCall::writeRequest(uint64_t off, const void *src,
                               uint64_t len)
{
    panic_if(off + len > owner.params.maxMsgBytes,
             "request write out of bounds");
    auto res = owner.userWrite(coreRef, *server.process(), reqVa + off,
                               src, len);
    if (!res.ok)
        fail(CallStatus::CopyFault);
}

void
ZirconServerCall::writeReply(uint64_t off, const void *src, uint64_t len)
{
    panic_if(off + len > replyCapacity, "reply write out of bounds");
    if (replyLen < off + len)
        replyLen = off + len;
    auto res = owner.userWrite(coreRef, *server.process(),
                               replyVa + off, src, len);
    if (!res.ok)
        fail(CallStatus::CopyFault);
}

void
ZirconServerCall::setReplyLen(uint64_t len)
{
    panic_if(len > replyCapacity, "reply longer than client buffer");
    replyLen = len;
}

ZirconCallOutcome
ZirconKernel::call(hw::Core &core, Thread &client, uint64_t ch_id,
                   uint64_t opcode, VAddr req_va, uint64_t req_len,
                   VAddr reply_va, uint64_t reply_cap)
{
    ZirconCallOutcome out;
    panic_if(ch_id >= channels.size(), "no such channel %lu",
             (unsigned long)ch_id);
    Channel &ch = channels[ch_id];
    panic_if(req_len > params.maxMsgBytes,
             "channel message of %lu bytes exceeds the limit",
             (unsigned long)req_len);
    channelMsgs.inc();

    FaultInjector *inj = mach.faultInjector();
    const FaultEvent *fault = nullptr;
    if (inj && inj->enabled) {
        uint64_t seq = inj->beginCall();
        fault = inj->eventAt(seq);
        if (fault && fault->op == FaultOp::CopyFault) {
            inj->armMemFault();
            inj->recordFired(*fault);
        }
    }

    // Bind the hop to its request chain and bracket the whole channel
    // round-trip on the client's lane (the old post-hoc span could
    // not cover abort unwinds; the closer can).
    req::RequestScope rscope;

    // Deadline: minted from the kernel's per-call budget at the top
    // of a chain, inherited (absolute) by every nested hop.
    req::DeadlineScope dscope(
        rscope.topLevel() && callDeadline.value() != 0
            ? (core.now() + callDeadline).value()
            : 0);
    const uint64_t deadline =
        req::RequestContext::global().currentDeadline();
    auto &tr = trace::Tracer::global();
    uint32_t clane = req::threadLane(uint32_t(client.id()));

    Cycles start = core.now();
    if (tr.enabled()) {
        tr.begin("zircon", "channel_call", start.value(), clane);
        tr.flow(rscope.topLevel() ? trace::EventKind::FlowStart
                                  : trace::EventKind::FlowStep,
                "zircon", "req", rscope.id(), start.value(), clane);
    }
    ZirconSpanCloser closer{tr,          core,
                            clane,       rscope.id(),
                            rscope.topLevel(), tr.enabled(),
                            &out,        client.tenant};

    bool cross_core = ch.server->sched.homeCore != core.id();
    hw::Core &scre =
        cross_core ? mach.core(ch.server->sched.homeCore) : core;

    // A fault mid-call must still return control to the client: pay
    // for the hop back (if the server was woken) and surface the
    // status instead of panicking the whole simulation.
    bool server_woken = false;
    auto abortCall = [&](CallStatus status) -> ZirconCallOutcome {
        if (server_woken) {
            if (cross_core) {
                mach.sendIpi(scre.id(), core.id());
                core.syncTo(scre.now());
                core.spend(costs.remoteWake);
            } else {
                core.spend(params.schedule);
                contextSwitches.inc();
                setCurrent(core.id(), &client);
            }
        }
        out.ok = false;
        out.status = status;
        out.roundTrip = core.now() - start;
        return out;
    };

    if (deadline != 0 && core.now().value() >= deadline) {
        // Budget already exhausted by upstream hops: reject before
        // the channel write.
        deadlineExpired.inc();
        return abortCall(CallStatus::DeadlineExpired);
    }

    // --- zx_channel_write: copy in (user -> kernel). --------------
    chargeSyscall(core);
    {
        req::PhaseScope phase(uint32_t(Phase::Transfer));
        std::vector<uint8_t> stage(req_len);
        if (req_len > 0) {
            auto res = userRead(core, *client.process(), req_va,
                                stage.data(), req_len);
            if (!res.ok)
                return abortCall(CallStatus::CopyFault);
            core.spend(mach.mem().writePhys(core.id(), ch.kernelBuf,
                                            stage.data(), req_len));
        }
    }

    // --- Wake the server; the client blocks on the reply. ---------
    server_woken = true;
    {
        req::PhaseScope phase(uint32_t(Phase::ProcessSwitch));
        if (cross_core) {
            mach.sendIpi(core.id(), scre.id());
            scre.spend(costs.remoteWake);
            scre.syncTo(core.now());
        } else {
            core.spend(params.schedule);
            contextSwitches.inc();
            setCurrent(core.id(), ch.server);
        }
        core.spend(params.portWait);
    }

    // --- zx_channel_read on the server: copy out (kernel->user). --
    chargeSyscall(scre);
    scre.spend(params.portWait);
    if (req_len > 0) {
        req::PhaseScope phase(uint32_t(Phase::Transfer));
        std::vector<uint8_t> stage(req_len);
        scre.spend(mach.mem().readPhys(scre.id(), ch.kernelBuf,
                                       stage.data(), req_len));
        auto res = userWrite(scre, *ch.server->process(),
                             ch.serverReqVa, stage.data(), req_len);
        if (!res.ok)
            return abortCall(CallStatus::CopyFault);
    }

    out.oneWay = scre.now() - start;

    // --- Handler. --------------------------------------------------
    ZirconServerCall call_ctx(*this, scre, *ch.server);
    call_ctx.client = &client;
    call_ctx.op = opcode;
    call_ctx.reqLen = req_len;
    call_ctx.replyCapacity = std::min(reply_cap, params.maxMsgBytes);
    call_ctx.reqVa = ch.serverReqVa;
    call_ctx.replyVa = ch.serverReplyVa;
    uint32_t hlane = req::threadLane(uint32_t(ch.server->id()));
    // Stall / slowdown faults strike while the server owns the
    // request; a stall only fires when a deadline is armed.
    bool stall_injected = false;
    uint32_t slow_factor = 1;
    if (fault && fault->op == FaultOp::StallServer && deadline != 0) {
        stall_injected = true;
        inj->recordFired(*fault);
    } else if (fault && fault->op == FaultOp::SlowServer) {
        slow_factor = fault->arg > 1 ? fault->arg : 2;
        inj->recordFired(*fault);
    }
    Cycles h0 = scre.now();
    {
        req::PhaseScope phase(uint32_t(Phase::Handler));
        if (stall_injected) {
            // Busy-loop past the deadline; no reply is produced.
            uint64_t now = scre.now().value();
            scre.spend(Cycles(
                (deadline > now ? deadline - now : 0) + 1000));
        } else {
            ch.handler(call_ctx);
            if (slow_factor > 1)
                scre.spend((scre.now() - h0) * (slow_factor - 1));
        }
    }
    out.handlerCycles = scre.now() - h0;
    if (tr.enabled()) {
        tr.begin("zircon", "handler", h0.value(), hlane);
        tr.flow(trace::EventKind::FlowStep, "zircon", "req",
                rscope.id(), h0.value(), hlane);
        tr.end("zircon", "handler", scre.now().value(), hlane);
    }

    if (deadline != 0 && scre.now().value() >= deadline) {
        // Expired while the server held the request: hop back to the
        // client and discard the (partial) reply it gave up on.
        deadlineExpired.inc();
        tr.instantNow("zircon", "deadline_expired", clane);
        return abortCall(CallStatus::DeadlineExpired);
    }

    if (call_ctx.failStatus != CallStatus::Ok)
        return abortCall(call_ctx.failStatus);

    // --- Reply: server write, schedule back, client read. ---------
    uint64_t reply_len = call_ctx.replyLen;
    chargeSyscall(scre);
    if (reply_len > 0) {
        req::PhaseScope phase(uint32_t(Phase::Transfer));
        std::vector<uint8_t> stage(reply_len);
        auto res = userRead(scre, *ch.server->process(),
                            ch.serverReplyVa, stage.data(), reply_len);
        if (!res.ok)
            return abortCall(CallStatus::CopyFault);
        scre.spend(mach.mem().writePhys(scre.id(), ch.kernelBuf,
                                        stage.data(), reply_len));
    }

    {
        req::PhaseScope phase(uint32_t(Phase::ProcessSwitch));
        if (cross_core) {
            mach.sendIpi(scre.id(), core.id());
            core.syncTo(scre.now());
            core.spend(costs.remoteWake);
        } else {
            core.spend(params.schedule);
            contextSwitches.inc();
            setCurrent(core.id(), &client);
        }
    }
    server_woken = false;

    chargeSyscall(core);
    if (reply_len > 0) {
        req::PhaseScope phase(uint32_t(Phase::Transfer));
        std::vector<uint8_t> stage(reply_len);
        core.spend(mach.mem().readPhys(core.id(), ch.kernelBuf,
                                       stage.data(), reply_len));
        auto res = userWrite(core, *client.process(), reply_va,
                             stage.data(), reply_len);
        if (!res.ok)
            return abortCall(CallStatus::CopyFault);
    }

    out.ok = true;
    out.replyLen = reply_len;
    out.roundTrip = core.now() - start;
    phaseStats.record(Phase::OneWay, out.oneWay);
    phaseStats.record(Phase::Handler, out.handlerCycles);
    phaseStats.record(Phase::RoundTrip, out.roundTrip);
    return out;
}

} // namespace xpc::kernel
