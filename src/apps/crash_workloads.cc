#include "crash_workloads.hh"

#include <cstring>
#include <map>
#include <optional>

#include "core/system.hh"
#include "services/block_device.hh"
#include "services/fs_server.hh"
#include "services/name_server.hh"
#include "services/supervisor.hh"
#include "sim/logging.hh"

namespace xpc::apps {
namespace {

using services::BlockDeviceServer;
using services::FsServer;
using services::NameServer;
using services::Supervisor;

constexpr uint64_t diskBlocks = 2048;

/**
 * The shared machine under every crash workload: block device (the
 * durable medium - it survives every crash), a supervised FS server
 * (volatile: killed and restarted with journal replay on every
 * crash) and a client thread. Old FsServer instances go to a
 * graveyard vector because transport-side handler closures reference
 * them by pointer.
 */
class CrashRig
{
  public:
    CrashRig()
    {
        core::SystemOptions opts;
        opts.flavor = core::SystemFlavor::Sel4Xpc;
        sys = std::make_unique<core::System>(opts);
        tr = &sys->transport();
        kernel::Thread &ns_t = sys->spawn("nameserver");
        ns = std::make_unique<NameServer>(*tr, ns_t);
        sup = std::make_unique<Supervisor>(*tr, *ns);
        client = &sys->spawn("client");
        kernel::Thread &dev_t = sys->spawn("blockdev");
        dev = std::make_unique<BlockDeviceServer>(*tr, dev_t,
                                                  diskBlocks);
        kernel::Thread *t = nullptr;
        core::ServiceId id = makeFs(t, /*format=*/true);
        fsT = t;
        ns->bind("fs", id);
        sup->supervise("fs", *t, id, [this](kernel::Thread *&srv) {
            // Attach, don't format: mount() replays any committed
            // FS log before the service re-registers.
            core::ServiceId fresh = makeFs(srv, /*format=*/false);
            fsT = srv;
            return fresh;
        });
    }

    void
    installInjector(FaultInjector &inj)
    {
        sys->machine().setFaultInjector(&inj);
    }

    /** Power-cut teardown: the FS process dies with the machine;
     *  heal() restarts it and runs the recovery hooks. */
    void
    restartFs()
    {
        if (fsT && fsT->process() && !fsT->process()->dead)
            sys->manager().onProcessExit(*fsT->process());
        sup->heal();
    }

    core::ServiceId fsId() const { return sup->currentId("fs"); }
    hw::Core &core0() { return sys->core(0); }

    std::unique_ptr<core::System> sys;
    core::Transport *tr = nullptr;
    std::unique_ptr<NameServer> ns;
    std::unique_ptr<Supervisor> sup;
    std::unique_ptr<BlockDeviceServer> dev;
    std::vector<std::unique_ptr<FsServer>> fss;
    kernel::Thread *client = nullptr;
    kernel::Thread *fsT = nullptr;

  private:
    core::ServiceId
    makeFs(kernel::Thread *&t, bool format)
    {
        t = &sys->spawn("fs");
        tr->connect(*t, dev->id());
        fss.push_back(std::make_unique<FsServer>(
            *tr, *t, dev->id(), diskBlocks, format));
        return fss.back()->id();
    }
};

// --------------------------------------------------------------------
// MiniDb: per-key atomicity under a journaled (or not) store
// --------------------------------------------------------------------

class MiniDbCrashWorkload : public sim::CrashWorkload
{
  public:
    explicit MiniDbCrashWorkload(const MiniDbCrashOptions &options)
        : opts(options)
    {
        rig.sup->setRecovery("fs", [this] { attachDb(); });
    }

    void
    run(FaultInjector &inj_) override
    {
        inj = &inj_;
        rig.installInjector(inj_);
        rig.tr->connect(*rig.client, rig.fsId());
        MiniDbOptions db_opts;
        db_opts.cachePages = opts.cachePages;
        db_opts.journal = opts.journal;
        db_opts.createFresh = true;
        db = std::make_unique<MiniDb>(*rig.tr, rig.core0(),
                                      *rig.client, rig.fsId(), "crash",
                                      db_opts);
        // Generation 1 lands outside the fault space: the invariant
        // map starts with every key acknowledged and durable.
        runGeneration();
        inj->enabled = true;
        runGeneration();
    }

    std::string
    recoverAndVerify(FaultInjector &inj_) override
    {
        (void)inj_;
        // The power cut killed the volatile half: the client's
        // database object and the FS server process.
        db.reset();
        rig.restartFs();
        if (inj->crashed())
            return ""; // recovery hit the next armed site; go again
        std::string err = verify();
        if (!err.empty())
            return err;
        // fig07-style epilogue: the store must still absorb a full
        // update generation after recovery.
        runGeneration();
        if (inj->crashed())
            return "";
        return verify();
    }

  private:
    std::string keyName(uint32_t i) { return "k" + std::to_string(i); }

    std::vector<uint8_t>
    valueFor(uint64_t gen, uint32_t i)
    {
        std::vector<uint8_t> val(64);
        std::memcpy(val.data(), &gen, sizeof(gen));
        for (size_t b = sizeof(gen); b < val.size(); b++)
            val[b] = uint8_t(gen * 13 + i * 7 + b);
        return val;
    }

    /** Run inside heal(), between the FS restart and the re-bind:
     *  attach to the durable database, replaying its journal. */
    void
    attachDb()
    {
        rig.tr->connect(*rig.client, rig.fsId());
        MiniDbOptions db_opts;
        db_opts.cachePages = opts.cachePages;
        db_opts.journal = opts.journal;
        db_opts.createFresh = false;
        db = std::make_unique<MiniDb>(*rig.tr, rig.core0(),
                                      *rig.client, rig.fsId(), "crash",
                                      db_opts);
    }

    void
    runGeneration()
    {
        uint64_t gen = ++generation;
        for (uint32_t i = 0; i < opts.keys; i++) {
            if (inj->crashed())
                return;
            std::string key = keyName(i);
            std::vector<uint8_t> val = valueFor(gen, i);
            inflight.active = true;
            inflight.key = key;
            auto old = ackd.find(key);
            inflight.oldVal =
                old == ackd.end()
                    ? std::nullopt
                    : std::optional<std::vector<uint8_t>>(old->second);
            inflight.newVal = val;
            db->put(key, val.data(), uint32_t(val.size()));
            if (inj->crashed())
                return; // the ack never reached the application
            ackd[key] = val;
            inflight.active = false;
        }
    }

    std::string
    verify()
    {
        for (const auto &[key, val] : ackd) {
            if (inflight.active && key == inflight.key)
                continue;
            auto got = db->get(key);
            if (!got)
                return "acked key " + key + " missing after recovery";
            if (*got != val)
                return "acked key " + key + " reads back wrong bytes";
        }
        if (inflight.active) {
            auto got = db->get(inflight.key);
            bool old_ok = inflight.oldVal
                              ? (got && *got == *inflight.oldVal)
                              : !got;
            bool new_ok = got && *got == inflight.newVal;
            if (!old_ok && !new_ok) {
                return "in-flight key " + inflight.key +
                       " is neither its old nor its new value";
            }
            // The crash resolved the in-flight put one way or the
            // other; fold the durable outcome into the model.
            if (new_ok)
                ackd[inflight.key] = inflight.newVal;
            else if (inflight.oldVal)
                ackd[inflight.key] = *inflight.oldVal;
            else
                ackd.erase(inflight.key);
            inflight.active = false;
        }
        db->tree().checkInvariants();
        return "";
    }

    MiniDbCrashOptions opts;
    CrashRig rig;
    FaultInjector *inj = nullptr;
    std::unique_ptr<MiniDb> db;
    uint64_t generation = 0;
    std::map<std::string, std::vector<uint8_t>> ackd;
    struct
    {
        bool active = false;
        std::string key;
        std::optional<std::vector<uint8_t>> oldVal;
        std::vector<uint8_t> newVal;
    } inflight;
};

// --------------------------------------------------------------------
// xv6fs: per-file atomicity from the FS log
// --------------------------------------------------------------------

class Xv6FsCrashWorkload : public sim::CrashWorkload
{
  public:
    Xv6FsCrashWorkload(uint32_t files, uint32_t blocks_per_file)
        : fileCount(files),
          payloadBytes(uint64_t(blocks_per_file) * 4096),
          ackedGen(files, 0), fds(files, -1)
    {
        rig.sup->setRecovery("fs", [this] { reopenAll(); });
    }

    void
    run(FaultInjector &inj_) override
    {
        inj = &inj_;
        rig.installInjector(inj_);
        reopenAll();
        // Generation 1 (outside the fault space) gives every file a
        // known, fully-acknowledged content and its final size.
        runGeneration();
        inj->enabled = true;
        runGeneration();
    }

    std::string
    recoverAndVerify(FaultInjector &inj_) override
    {
        (void)inj_;
        rig.restartFs(); // mount() replays the FS log; the recovery
                         // hook re-opens the client's files
        if (inj->crashed())
            return "";
        std::string err = verify();
        if (!err.empty())
            return err;
        runGeneration();
        if (inj->crashed())
            return "";
        return verify();
    }

  private:
    std::string pathOf(uint32_t f)
    {
        return "/f" + std::to_string(f);
    }

    uint8_t genByte(uint64_t gen, uint32_t f)
    {
        return uint8_t(gen * 16 + f);
    }

    void
    reopenAll()
    {
        rig.tr->connect(*rig.client, rig.fsId());
        for (uint32_t f = 0; f < fileCount; f++) {
            fds[f] = FsServer::clientOpen(*rig.tr, rig.core0(),
                                          *rig.client, rig.fsId(),
                                          pathOf(f), true);
            fatal_if(fds[f] < 0, "cannot open workload file");
        }
    }

    void
    runGeneration()
    {
        uint64_t gen = ++generation;
        std::vector<uint8_t> payload(payloadBytes);
        for (uint32_t f = 0; f < fileCount; f++) {
            if (inj->crashed())
                return;
            std::memset(payload.data(), genByte(gen, f),
                        payload.size());
            inflight = {true, f, ackedGen[f], gen};
            int64_t r = FsServer::clientWrite(
                *rig.tr, rig.core0(), *rig.client, rig.fsId(), fds[f],
                0, payload.data(), payload.size());
            if (inj->crashed())
                return;
            panic_if(r != int64_t(payload.size()),
                     "un-crashed file write failed");
            ackedGen[f] = gen;
            inflight.active = false;
        }
    }

    std::string
    verify()
    {
        std::vector<uint8_t> buf(payloadBytes);
        for (uint32_t f = 0; f < fileCount; f++) {
            int64_t r = FsServer::clientRead(
                *rig.tr, rig.core0(), *rig.client, rig.fsId(), fds[f],
                0, buf.data(), buf.size());
            if (r != int64_t(buf.size()))
                return "file " + pathOf(f) + " lost bytes";
            // The whole file must be one generation: the FS log makes
            // multi-block writes all-or-nothing.
            uint8_t first = buf[0];
            for (size_t b = 1; b < buf.size(); b++) {
                if (buf[b] != first)
                    return "file " + pathOf(f) + " is torn mid-write";
            }
            bool in_flight = inflight.active && inflight.file == f;
            bool acked_ok = first == genByte(ackedGen[f], f);
            bool new_ok =
                in_flight && first == genByte(inflight.to, f);
            if (!acked_ok && !new_ok) {
                return "file " + pathOf(f) +
                       " holds an impossible generation";
            }
            if (in_flight) {
                if (new_ok)
                    ackedGen[f] = inflight.to;
                inflight.active = false;
            }
        }
        return "";
    }

    uint32_t fileCount;
    uint64_t payloadBytes;
    CrashRig rig;
    FaultInjector *inj = nullptr;
    uint64_t generation = 0;
    std::vector<uint64_t> ackedGen;
    std::vector<int64_t> fds;
    struct
    {
        bool active = false;
        uint32_t file = 0;
        uint64_t from = 0, to = 0;
    } inflight;
};

// --------------------------------------------------------------------
// Torn pairs: the deliberately unjournaled failing subject
// --------------------------------------------------------------------

class TornPairCrashWorkload : public sim::CrashWorkload
{
  public:
    explicit TornPairCrashWorkload(uint32_t pairs)
        : pairCount(pairs), ackedGen(pairs, 0)
    {
        rig.sup->setRecovery("fs", [this] { attachDb(); });
    }

    void
    run(FaultInjector &inj_) override
    {
        inj = &inj_;
        rig.installInjector(inj_);
        rig.tr->connect(*rig.client, rig.fsId());
        MiniDbOptions db_opts;
        db_opts.journal = JournalMode::None; // crash-unsafe on purpose
        db_opts.createFresh = true;
        db = std::make_unique<MiniDb>(*rig.tr, rig.core0(),
                                      *rig.client, rig.fsId(), "torn",
                                      db_opts);
        // Build every pair outside the fault space; generation-1
        // updates then stay in place (same sizes, no splits), so a
        // crash can tear pair atomicity but never the tree structure.
        runGeneration();
        inj->enabled = true;
        runGeneration();
    }

    std::string
    recoverAndVerify(FaultInjector &inj_) override
    {
        (void)inj_;
        db.reset();
        rig.restartFs();
        if (inj->crashed())
            return "";
        std::string err = verify();
        if (!err.empty())
            return err;
        runGeneration();
        if (inj->crashed())
            return "";
        return verify();
    }

  private:
    std::string sideKey(uint32_t i, int side)
    {
        return (side == 0 ? "a" : "b") + std::to_string(i);
    }

    std::vector<uint8_t>
    valueFor(uint64_t gen, uint32_t i, int side)
    {
        std::vector<uint8_t> val(48);
        std::memcpy(val.data(), &gen, sizeof(gen));
        for (size_t b = sizeof(gen); b < val.size(); b++)
            val[b] = uint8_t(i * 2 + side);
        return val;
    }

    void
    attachDb()
    {
        rig.tr->connect(*rig.client, rig.fsId());
        MiniDbOptions db_opts;
        db_opts.journal = JournalMode::None;
        db_opts.createFresh = false;
        db = std::make_unique<MiniDb>(*rig.tr, rig.core0(),
                                      *rig.client, rig.fsId(), "torn",
                                      db_opts);
    }

    void
    runGeneration()
    {
        uint64_t gen = ++generation;
        for (uint32_t i = 0; i < pairCount; i++) {
            if (inj->crashed())
                return;
            // The application wants the pair updated atomically, but
            // journal mode None provides nothing of the sort.
            inflight = {true, i, ackedGen[i], gen};
            for (int side = 0; side < 2; side++) {
                std::vector<uint8_t> val = valueFor(gen, i, side);
                db->put(sideKey(i, side), val.data(),
                        uint32_t(val.size()));
                if (inj->crashed())
                    return;
            }
            ackedGen[i] = gen;
            inflight.active = false;
        }
    }

    /** The generation a stored value claims (its first 8 bytes). */
    uint64_t
    genOf(const std::optional<std::vector<uint8_t>> &val)
    {
        if (!val || val->size() < sizeof(uint64_t))
            return ~uint64_t(0);
        uint64_t gen = 0;
        std::memcpy(&gen, val->data(), sizeof(gen));
        return gen;
    }

    std::string
    verify()
    {
        for (uint32_t i = 0; i < pairCount; i++) {
            uint64_t ga = genOf(db->get(sideKey(i, 0)));
            uint64_t gb = genOf(db->get(sideKey(i, 1)));
            bool in_flight = inflight.active && inflight.pair == i;
            if (!in_flight) {
                if (ga != ackedGen[i] || gb != ackedGen[i]) {
                    return "acked pair " + std::to_string(i) +
                           " lost its update";
                }
                continue;
            }
            bool both_old =
                ga == inflight.from && gb == inflight.from;
            bool both_new = ga == inflight.to && gb == inflight.to;
            if (!both_old && !both_new) {
                return "pair " + std::to_string(i) +
                       " is torn (a=gen" + std::to_string(ga) +
                       ", b=gen" + std::to_string(gb) + ")";
            }
            if (both_new)
                ackedGen[i] = inflight.to;
            inflight.active = false;
        }
        return "";
    }

    uint32_t pairCount;
    CrashRig rig;
    FaultInjector *inj = nullptr;
    std::unique_ptr<MiniDb> db;
    uint64_t generation = 0;
    std::vector<uint64_t> ackedGen;
    struct
    {
        bool active = false;
        uint32_t pair = 0;
        uint64_t from = 0, to = 0;
    } inflight;
};

} // namespace

sim::CrashWorkloadFactory
makeMiniDbCrashWorkload(const MiniDbCrashOptions &options)
{
    return [options] {
        return std::unique_ptr<sim::CrashWorkload>(
            new MiniDbCrashWorkload(options));
    };
}

sim::CrashWorkloadFactory
makeXv6FsCrashWorkload(uint32_t files, uint32_t blocks_per_file)
{
    return [files, blocks_per_file] {
        return std::unique_ptr<sim::CrashWorkload>(
            new Xv6FsCrashWorkload(files, blocks_per_file));
    };
}

sim::CrashWorkloadFactory
makeTornPairCrashWorkload(uint32_t pairs)
{
    return [pairs] {
        return std::unique_ptr<sim::CrashWorkload>(
            new TornPairCrashWorkload(pairs));
    };
}

} // namespace xpc::apps
