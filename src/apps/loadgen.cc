#include "loadgen.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <ostream>

#include "core/breaker.hh"
#include "sim/logging.hh"
#include "sim/request.hh"

namespace xpc::apps {

using namespace xpc::services;

const char *const LoadGenResult::serviceNames[3] = {"kv", "httpd",
                                                    "fs"};

const char *
loadOutcomeName(LoadOutcome o)
{
    switch (o) {
      case LoadOutcome::Ok: return "ok";
      case LoadOutcome::Shed: return "shed";
      case LoadOutcome::Timeout: return "timeout";
      case LoadOutcome::Breaker: return "breaker";
      case LoadOutcome::Abandoned: return "abandoned";
      case LoadOutcome::Error: return "error";
    }
    return "?";
}

LoadGenResult::LoadGenResult(const LoadGenOptions &o)
    : config(o), latencyTenant(o.tenants), series(o.windowCycles)
{}

double
LoadGenResult::goodputPerMcycle() const
{
    uint64_t e = elapsedCycles();
    return e == 0 ? 0 : double(goodput()) * 1e6 / double(e);
}

double
LoadGenResult::offeredPerMcycleActual() const
{
    uint64_t e = elapsedCycles();
    return e == 0 ? 0 : double(offered) * 1e6 / double(e);
}

uint64_t
LoadGenResult::scheduledRequests() const
{
    if (config.phases.empty())
        return config.requests;
    uint64_t n = 0;
    for (const LoadPhase &p : config.phases)
        n += p.requests;
    return n;
}

namespace {

void
emitNum(std::ostream &os, double v)
{
    if (!std::isfinite(v)) {
        os << "null";
        return;
    }
    char buf[64];
    if (v == std::floor(v) && std::fabs(v) < 1e15)
        std::snprintf(buf, sizeof(buf), "%.0f", v);
    else
        std::snprintf(buf, sizeof(buf), "%.6g", v);
    os << buf;
}

/** "kv@t1" - the (tenant, service) label every layer shares. */
std::string
svcLabel(uint32_t svc, uint32_t tenant_ix)
{
    return std::string(LoadGenResult::serviceNames[svc]) + "@t" +
           std::to_string(tenant_ix + 1);
}

} // namespace

void
LoadGenResult::dumpJson(std::ostream &os) const
{
    os << "{\n \"config\":{\"seed\":" << config.seed
       << ",\"offered_per_mcycle\":";
    emitNum(os, config.offeredPerMcycle);
    os << ",\"requests\":" << config.requests
       << ",\"tenants\":" << config.tenants << ",\"mix\":{\"kv\":"
       << config.kvWeight << ",\"httpd\":" << config.httpWeight
       << ",\"fs\":" << config.fsWeight << "}"
       << ",\"zipf_keys\":" << config.zipfKeys << ",\"zipf_theta\":";
    emitNum(os, config.zipfTheta);
    os << ",\"zipf_theta_step\":";
    emitNum(os, config.zipfThetaStep);
    os << ",\"deadline_cycles\":" << config.deadlineCycles.value()
       << ",\"window_cycles\":" << config.windowCycles.value()
       << ",\"max_attempts\":" << config.maxAttempts
       << ",\"breakers\":" << (config.breakers ? "true" : "false");
    if (!config.phases.empty()) {
        os << ",\"phases\":[";
        for (size_t i = 0; i < config.phases.size(); i++) {
            const LoadPhase &p = config.phases[i];
            os << (i ? "," : "") << "{\"rate\":";
            emitNum(os, p.offeredPerMcycle);
            os << ",\"requests\":" << p.requests;
            if (!p.markName.empty())
                os << ",\"mark\":\"" << p.markName << "\"";
            os << "}";
        }
        os << "]";
    }
    if (config.killAtRequest != 0)
        os << ",\"kill_at_request\":" << config.killAtRequest
           << ",\"kill_tenant\":" << config.killTenant
           << ",\"kill_service\":" << config.killService
           << ",\"healing\":" << (config.healing ? "true" : "false");
    os << "},\n";
    os << " \"totals\":{\"offered\":" << offered;
    for (size_t i = 0; i < loadOutcomeCount; i++)
        os << ",\"" << loadOutcomeName(LoadOutcome(i))
           << "\":" << counts[i];
    os << "},\n";
    os << " \"elapsed_cycles\":" << elapsedCycles()
       << ",\n \"offered_per_mcycle\":";
    emitNum(os, offeredPerMcycleActual());
    os << ",\n \"goodput_per_mcycle\":";
    emitNum(os, goodputPerMcycle());
    os << ",\n \"latency\":{\n  \"all\":";
    latencyAll.summaryJson(os);
    os << ",\n  \"service\":{";
    for (size_t i = 0; i < 3; i++) {
        os << (i ? "," : "") << "\"" << serviceNames[i] << "\":";
        latencyService[i].summaryJson(os);
    }
    os << "},\n  \"tenant\":{";
    for (size_t i = 0; i < latencyTenant.size(); i++) {
        os << (i ? "," : "") << "\"t" << (i + 1) << "\":";
        latencyTenant[i].summaryJson(os);
    }
    os << "},\n  \"outcome\":{";
    for (size_t i = 0; i < loadOutcomeCount; i++) {
        os << (i ? "," : "") << "\""
           << loadOutcomeName(LoadOutcome(i)) << "\":";
        latencyOutcome[i].summaryJson(os);
    }
    os << "}},\n";
    if (!marks.empty()) {
        os << " \"marks\":[";
        for (size_t i = 0; i < marks.size(); i++)
            os << (i ? "," : "") << "{\"name\":\"" << marks[i].name
               << "\",\"cycle\":" << marks[i].cycle << "}";
        os << "],\n";
    }
    if (!sloTrackers.empty()) {
        os << " \"slo\":{\n";
        for (size_t i = 0; i < sloTrackers.size(); i++) {
            os << (i ? ",\n" : "") << "  \""
               << sloTrackers[i]->label() << "\":";
            sloTrackers[i]->dumpJson(os, 0);
        }
        os << "},\n";
    }
    os << " \"timeseries\":\n";
    series.dumpJson(os, 2);
    os << "\n}\n";
}

LoadGen::LoadGen(const LoadGenOptions &options)
    : opts(options), res(options), rng(options.seed)
{
    panic_if(opts.tenants < 1 || opts.tenants > TenantRig::maxTenants,
             "tenants must be in 1..%u", TenantRig::maxTenants);
    panic_if(opts.kvWeight + opts.httpWeight + opts.fsWeight == 0,
             "service mix must have at least one non-zero weight");

    // The effective schedule: explicit phases, or the one implicit
    // phase the flat options describe.
    if (opts.phases.empty()) {
        panic_if(opts.offeredPerMcycle <= 0,
                 "offered rate must be > 0");
        schedule.push_back({opts.offeredPerMcycle, opts.requests, ""});
    } else {
        schedule = opts.phases;
        for (const LoadPhase &p : schedule)
            panic_if(p.offeredPerMcycle <= 0,
                     "phase rates must be > 0");
    }

    // One Zipfian per tenant, each with its own skew and seed lane:
    // the draw order stays a pure function of the master seed.
    uint64_t keys = opts.zipfKeys == 0 ? 1 : opts.zipfKeys;
    for (uint32_t t = 0; t < opts.tenants; t++) {
        double theta = opts.zipfTheta - double(t) * opts.zipfThetaStep;
        theta = std::clamp(theta, 0.0, 0.999);
        zipfs.emplace_back(keys, theta,
                           opts.seed ^ (0x5a5a5a5aULL + t * 0x9e3779b97f4a7c15ULL));
    }

    TenantRigOptions ro;
    ro.flavor = opts.flavor;
    ro.tenants = opts.tenants;
    ro.breakers = opts.breakers;
    ro.admitAll = true;
    rig_ = std::make_unique<TenantRig>(ro);
    rig_->policy.maxAttempts = opts.maxAttempts;
    rig_->supervisor().autoHeal = opts.healing;
    if (opts.breakers && opts.breakerCooldownCycles.value() != 0) {
        // Breakers are created lazily on first use, so retuning the
        // options here (before any call) covers all of them.
        rig_->supervisor().breakerOpts.cooldownCycles =
            opts.breakerCooldownCycles;
    }

    // The generator's own curves come first so the JSON channel
    // order stays stable no matter how many tenants are active.
    chOffered = res.series.counterChannel("offered");
    chGoodput = res.series.counterChannel("goodput");
    chShed = res.series.counterChannel("shed");
    chTimeout = res.series.counterChannel("timeout");
    chFailed = res.series.counterChannel("failed");
    chAbandoned = res.series.counterChannel("abandoned");
    chBacklog = res.series.gaugeChannel("admission_backlog");
    chBreakers = res.series.gaugeChannel("breakers_open");

    if (opts.slo.enabled()) {
        // Per-(tenant, service) curves feed the per-spec trackers.
        for (uint32_t t = 0; t < opts.tenants; t++) {
            for (uint32_t s = 0; s < 3; s++) {
                std::string label = svcLabel(s, t);
                chSvcOffered.push_back(
                    res.series.counterChannel(label + ".offered"));
                chSvcGoodput.push_back(
                    res.series.counterChannel(label + ".goodput"));
            }
        }
        // Supervisor lifecycle events annotate the regime timeline.
        hw::Core &core = rig_->system().core(0);
        rig_->supervisor().onLifecycle =
            [this, &core](const char *event, const std::string &name,
                          kernel::TenantId tenant) {
                res.marks.push_back(
                    {std::string(event) + ":" + name + "@t" +
                         std::to_string(tenant),
                     core.now().value()});
            };
    }

    for (uint32_t t = 0; t < opts.tenants; t++) {
        TenantRig::Stack &st = rig_->stack(TenantRig::tenantOf(t));
        st.telKv->attachSeries(&res.series);
        st.telHttp->attachSeries(&res.series);
        st.telFs->attachSeries(&res.series);
        // Make the per-service histograms visible in the system's
        // stat registry dump, beside the kernel's Distributions.
        st.telKv->stats.setParent(&rig_->system().stats());
        st.telHttp->stats.setParent(&rig_->system().stats());
        st.telFs->stats.setParent(&rig_->system().stats());
    }
}

void
LoadGen::warmup()
{
    hw::Core &core = rig_->system().core(0);
    uint64_t keys = std::min<uint64_t>(opts.zipfKeys, 32);
    for (uint32_t t = 0; t < opts.tenants; t++) {
        kernel::TenantId tenant = TenantRig::tenantOf(t);
        for (uint64_t k = 1; k <= keys; k++) {
            rig_->kvPut(tenant, k);
            // Pace the preload below the admission drain rate so it
            // neither sheds nor leaves backlog behind.
            core.spend(Cycles(4000));
        }
        rig_->httpGet(tenant, "/index.html", nullptr, nullptr);
        core.spend(Cycles(4000));
    }
}

uint32_t
LoadGen::pickService()
{
    uint64_t total = opts.kvWeight + opts.httpWeight + opts.fsWeight;
    uint64_t r = rng.nextBounded(total);
    if (r < opts.kvWeight)
        return 0;
    if (r < opts.kvWeight + opts.httpWeight)
        return 1;
    return 2;
}

LoadOutcome
LoadGen::issue(kernel::TenantId tenant, uint32_t svc, uint64_t key,
               bool is_put)
{
    bool ok = false;
    switch (svc) {
      case 0:
        ok = is_put ? rig_->kvPut(tenant, key)
                    : rig_->kvGet(tenant, key) >= 0;
        break;
      case 1: {
        int64_t n =
            rig_->httpGet(tenant, "/index.html", nullptr, nullptr);
        ok = n != TenantRig::callFailed;
        break;
      }
      default: {
        std::string path = "/l" + std::to_string(key % 8);
        proto::FsMsg om;
        om.a = int64_t(proto::fsOpenCreate);
        om.c = int64_t(path.size());
        int64_t fd = rig_->fsOp(tenant, proto::FsOp::Open, om,
                                path.data(), path.size(), nullptr, 0);
        if (fd == TenantRig::callFailed) {
            ok = false;
        } else if (fd >= 0) {
            proto::FsMsg cm;
            cm.a = fd;
            int64_t c = rig_->fsOp(tenant, proto::FsOp::Close, cm,
                                   nullptr, 0, nullptr, 0);
            ok = c != TenantRig::callFailed;
        } else {
            ok = true; // an fs-level error is still a served reply
        }
        break;
      }
    }
    if (ok)
        return LoadOutcome::Ok;
    switch (rig_->supervisor().lastStatus) {
      case core::TransportStatus::Overloaded:
        return LoadOutcome::Shed;
      case core::TransportStatus::DeadlineExpired:
      case core::TransportStatus::Timeout:
        return LoadOutcome::Timeout;
      case core::TransportStatus::BreakerOpen:
        return LoadOutcome::Breaker;
      default:
        return LoadOutcome::Error;
    }
}

void
LoadGen::sampleGauges(uint64_t now)
{
    uint64_t backlog = 0;
    for (uint32_t t = 0; t < opts.tenants; t++) {
        TenantRig::Stack &st = rig_->stack(TenantRig::tenantOf(t));
        backlog += st.admKv->backlogAt(Cycles(now));
        if (st.admFs)
            backlog += st.admFs->backlogAt(Cycles(now));
        if (st.admHttp)
            backlog += st.admHttp->backlogAt(Cycles(now));
    }
    res.series.sample(chBacklog, now, double(backlog));

    uint32_t open = 0;
    if (opts.breakers) {
        static const char *const names[3] = {"kv", "httpd", "fs"};
        for (uint32_t t = 0; t < opts.tenants; t++) {
            kernel::TenantId tenant = TenantRig::tenantOf(t);
            for (const char *name : names) {
                auto &b = rig_->supervisor().breakerFor(name, tenant);
                if (b.state(Cycles(now)) ==
                    core::CircuitBreaker::State::Open)
                    open++;
            }
        }
    }
    res.series.sample(chBreakers, now, double(open));
}

void
LoadGen::evaluateSlo()
{
    // Aggregate tracker first, then one per (tenant, service). The
    // per-service knee is the aggregate knee scaled by that
    // service's share of the offered mix - an expectation reference,
    // not a separately calibrated capacity.
    res.sloTrackers.push_back(std::make_unique<slo::RegimeTracker>(
        "all", opts.slo, opts.windowCycles));
    const double total =
        double(opts.kvWeight + opts.httpWeight + opts.fsWeight);
    const double weights[3] = {double(opts.kvWeight),
                               double(opts.httpWeight),
                               double(opts.fsWeight)};
    for (uint32_t t = 0; t < opts.tenants; t++) {
        for (uint32_t s = 0; s < 3; s++) {
            slo::SloSpec spec = opts.slo;
            spec.kneePerMcycle = opts.slo.kneePerMcycle *
                                 (weights[s] / total) /
                                 double(opts.tenants);
            if (spec.kneePerMcycle <= 0)
                continue; // zero-weight service: nothing to classify
            res.sloTrackers.push_back(
                std::make_unique<slo::RegimeTracker>(
                    svcLabel(s, t), spec, opts.windowCycles));
        }
    }

    size_t ix = 1;
    for (auto &tracker : res.sloTrackers) {
        for (const slo::Mark &m : res.marks)
            tracker->mark(m.name, m.cycle);
    }
    res.sloTrackers[0]->observeSeries(res.series, chOffered,
                                      chGoodput);
    for (uint32_t t = 0; t < opts.tenants; t++) {
        for (uint32_t s = 0; s < 3; s++) {
            if (weights[s] <= 0)
                continue;
            res.sloTrackers[ix]->observeSeries(
                res.series, chSvcOffered[t * 3 + s],
                chSvcGoodput[t * 3 + s]);
            ix++;
        }
    }
}

const LoadGenResult &
LoadGen::run()
{
    hw::Core &core = rig_->system().core(0);
    warmup();

    uint64_t base = core.now().value();
    res.startCycle = base;
    double cum = 0;
    uint64_t issued = 0;
    bool killed = false;

    for (const LoadPhase &phase : schedule) {
        double mean_ia = 1e6 / phase.offeredPerMcycle;
        uint64_t last_arrival = base + uint64_t(cum);
        for (uint64_t i = 0; i < phase.requests; i++) {
            // Every random draw happens here, unconditionally and in
            // a fixed order: the schedule is a pure function of the
            // seed and can never depend on how earlier requests
            // fared.
            cum += -std::log(1.0 - rng.nextDouble()) * mean_ia;
            uint64_t arrival = base + uint64_t(cum);
            last_arrival = arrival;
            uint32_t tix =
                opts.tenants > 1 ? uint32_t(rng.nextBounded(opts.tenants))
                                 : 0;
            uint32_t svc = pickService();
            uint64_t key = 1 + zipfs[tix].next();
            bool is_put = rng.nextDouble() < 0.5;

            kernel::TenantId tenant = TenantRig::tenantOf(tix);
            issued++;

            if (opts.killAtRequest != 0 && !killed &&
                issued == opts.killAtRequest) {
                // Crash-mid-surge: the victim dies at this request's
                // scheduled arrival; whether it ever comes back is
                // the supervisor's (autoHeal) business.
                rig_->killOne(opts.killTenant, opts.killService);
                res.marks.push_back({"fault", arrival});
                killed = true;
            }

            core.syncTo(Cycles(arrival));
            res.offered++;
            res.series.add(chOffered, arrival);
            if (opts.slo.enabled())
                res.series.add(chSvcOffered[tix * 3 + svc], arrival);

            uint64_t dl = opts.deadlineCycles.value() == 0
                              ? 0
                              : arrival + opts.deadlineCycles.value();
            LoadOutcome out;
            if (dl != 0 && core.now().value() >= dl) {
                // The mesh is so far behind that this request's
                // deadline passed before it could even be issued: the
                // caller hangs up. This is what keeps an open-loop
                // generator from pushing work nobody is waiting for.
                out = LoadOutcome::Abandoned;
            } else {
                req::DeadlineScope scope(dl);
                out = issue(tenant, svc, key, is_put);
            }

            uint64_t end = core.now().value();
            uint64_t lat = end - arrival;
            res.counts[size_t(out)]++;
            res.latencyAll.record(lat);
            res.latencyService[svc].record(lat);
            res.latencyTenant[tix].record(lat);
            res.latencyOutcome[size_t(out)].record(lat);
            switch (out) {
              case LoadOutcome::Ok:
                res.series.add(chGoodput, end);
                if (opts.slo.enabled())
                    res.series.add(chSvcGoodput[tix * 3 + svc], end);
                break;
              case LoadOutcome::Shed:
                res.series.add(chShed, end);
                break;
              case LoadOutcome::Timeout:
                res.series.add(chTimeout, end);
                break;
              case LoadOutcome::Abandoned:
                res.series.add(chAbandoned, end);
                break;
              default:
                res.series.add(chFailed, end);
                break;
            }
            sampleGauges(end);
        }
        if (!phase.markName.empty())
            res.marks.push_back({phase.markName, last_arrival});
    }
    res.endCycle = core.now().value();
    if (opts.slo.enabled())
        evaluateSlo();
    return res;
}

} // namespace xpc::apps
