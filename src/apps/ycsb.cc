#include "ycsb.hh"

#include <cstdio>

#include "sim/logging.hh"

namespace xpc::apps {

const char *
ycsbName(YcsbWorkload w)
{
    switch (w) {
      case YcsbWorkload::A:
        return "YCSB-A";
      case YcsbWorkload::B:
        return "YCSB-B";
      case YcsbWorkload::C:
        return "YCSB-C";
      case YcsbWorkload::D:
        return "YCSB-D";
      case YcsbWorkload::E:
        return "YCSB-E";
      case YcsbWorkload::F:
        return "YCSB-F";
    }
    return "?";
}

Ycsb::Ycsb(const YcsbConfig &config)
    : cfg(config), rng(config.seed), zipf(config.records, 0.99,
                                          config.seed + 1),
      insertedKeys(config.records)
{
}

std::string
Ycsb::keyFor(uint64_t n) const
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "user%016llu",
                  (unsigned long long)n);
    return buf;
}

std::string
Ycsb::nextRequestKey()
{
    return keyFor(zipf.next());
}

void
Ycsb::fillValue(std::vector<uint8_t> &value, uint64_t n)
{
    value.resize(cfg.valueBytes);
    for (size_t i = 0; i < value.size(); i++)
        value[i] = uint8_t((n * 131 + i * 7) & 0xff);
}

void
Ycsb::load(MiniDb &db, hw::Core &core)
{
    (void)core;
    std::vector<uint8_t> value;
    for (uint64_t i = 0; i < cfg.records; i++) {
        fillValue(value, i);
        db.put(keyFor(i), value.data(), uint32_t(value.size()));
    }
    insertedKeys = cfg.records;
}

YcsbResult
Ycsb::run(MiniDb &db, hw::Core &core, YcsbWorkload workload)
{
    YcsbResult res;
    std::vector<uint8_t> value;
    Cycles start = core.now();

    for (uint64_t op = 0; op < cfg.operations; op++) {
        double p = rng.nextDouble();
        switch (workload) {
          case YcsbWorkload::A:
            if (p < 0.5) {
                db.get(nextRequestKey());
                res.reads++;
            } else {
                fillValue(value, op);
                db.put(nextRequestKey(), value.data(),
                       uint32_t(value.size()));
                res.updates++;
            }
            break;
          case YcsbWorkload::B:
            if (p < 0.95) {
                db.get(nextRequestKey());
                res.reads++;
            } else {
                fillValue(value, op);
                db.put(nextRequestKey(), value.data(),
                       uint32_t(value.size()));
                res.updates++;
            }
            break;
          case YcsbWorkload::C:
            db.get(nextRequestKey());
            res.reads++;
            break;
          case YcsbWorkload::D:
            if (p < 0.95) {
                // Read latest: bias to recently inserted keys.
                uint64_t back = rng.nextBounded(
                    std::min<uint64_t>(insertedKeys, 64));
                db.get(keyFor(insertedKeys - 1 - back));
                res.reads++;
            } else {
                fillValue(value, insertedKeys);
                db.put(keyFor(insertedKeys++), value.data(),
                       uint32_t(value.size()));
                res.inserts++;
            }
            break;
          case YcsbWorkload::E:
            if (p < 0.95) {
                uint32_t len =
                    1 + uint32_t(rng.nextBounded(cfg.maxScanLen));
                db.scan(nextRequestKey(), len);
                res.scans++;
            } else {
                fillValue(value, insertedKeys);
                db.put(keyFor(insertedKeys++), value.data(),
                       uint32_t(value.size()));
                res.inserts++;
            }
            break;
          case YcsbWorkload::F:
            if (p < 0.5) {
                db.get(nextRequestKey());
                res.reads++;
            } else {
                db.readModifyWrite(nextRequestKey(), 1);
                res.updates++;
            }
            break;
        }
        res.operations++;
    }

    res.totalCycles = core.now() - start;
    return res;
}

} // namespace xpc::apps
