/**
 * @file
 * Seeded open-loop load generator over the supervised tenant mesh.
 *
 * Closed-loop clients (everything in bench/ before this) wait for
 * each reply before sending the next request, so they can never
 * observe queueing collapse: the offered load falls with the service
 * rate. LoadGen is open-loop: it pre-draws a Poisson arrival schedule
 * at a configured offered rate and issues every request at its
 * scheduled simulated-cycle arrival, advancing the core's clock with
 * syncTo() when the generator is ahead of the mesh. Latency is
 * measured from the *arrival*, not from the moment the call is
 * issued, so the time a request spends waiting behind a saturated
 * mesh is part of its tail - the methodology of open-loop tail
 * studies (and the reason the goodput-vs-offered-load curve can
 * actually show the admission knee).
 *
 * Each request draws tenant, service (kv / httpd / fs, weighted) and
 * a Zipfian key (from the drawn tenant's own generator, each with its
 * own skew) in a fixed per-request order, so the schedule is a pure
 * function of the seed and never depends on outcomes: two same-seed
 * runs are byte-identical, shed or not. Requests whose arrival-
 * anchored deadline has already passed before they are issued are
 * abandoned client-side (the open-loop analogue of a caller hanging
 * up), which is what lets goodput saturate instead of collapsing
 * under 2x overload.
 *
 * The rate can be *phased* (ramp past the knee, ramp back down - the
 * hysteresis experiment), a service kill can be scheduled mid-run
 * (crash-mid-surge), and with an SloSpec attached the run classifies
 * every time-series window into healthy / overloaded / metastable
 * regimes and reports recovery times relative to the recorded marks
 * (phase boundaries, the injected fault, supervisor restarts). All
 * of that is default-off; the plain configuration behaves exactly
 * like the PR-7 generator.
 *
 * Results land in per-service, per-tenant and per-outcome fixed-
 * memory Histograms plus a windowed TimeSeries (offered, goodput,
 * sheds, backlog, breaker state), all dumpable as one stable JSON
 * document.
 */

#ifndef XPC_APPS_LOADGEN_HH
#define XPC_APPS_LOADGEN_HH

#include <memory>
#include <vector>

#include "apps/tenant_rig.hh"
#include "sim/histogram.hh"
#include "sim/random.hh"
#include "sim/slo.hh"
#include "sim/timeseries.hh"

namespace xpc::apps {

/** One segment of a phased offered-load schedule. */
struct LoadPhase
{
    /** Offered arrival rate in this phase, requests per Mcycle. */
    double offeredPerMcycle = 0;
    /** Requests drawn in this phase. */
    uint64_t requests = 0;
    /** Non-empty: record a mark with this name at the phase's last
     *  scheduled arrival ("surge_end", ...). */
    std::string markName;
};

struct LoadGenOptions
{
    core::SystemFlavor flavor = core::SystemFlavor::Sel4Xpc;
    uint64_t seed = 42;
    /** Offered arrival rate, requests per million cycles. */
    double offeredPerMcycle = 300;
    /** Total requests in the schedule. */
    uint64_t requests = 2000;
    /**
     * Phased schedule (hysteresis ramps); empty = a single phase of
     * (offeredPerMcycle, requests). When set, it replaces both.
     */
    std::vector<LoadPhase> phases;
    /** Tenants drawing from the same schedule,
     *  1..TenantRig::maxTenants. */
    uint32_t tenants = 2;
    /** Service mix weights (kv-heavy by default, like YCSB). */
    uint32_t kvWeight = 6;
    uint32_t httpWeight = 3;
    uint32_t fsWeight = 1;
    /** Zipfian key universe for the kv workload. */
    uint64_t zipfKeys = 256;
    /** Tenant t (0-based) draws keys with skew
     *  theta = zipfTheta - t * zipfThetaStep (clamped to [0, 0.999]):
     *  per-tenant popularity profiles from one seed. */
    double zipfTheta = 0.99;
    double zipfThetaStep = 0.0;
    /** Arrival-anchored deadline per request; 0 = none. */
    Cycles deadlineCycles{400000};
    /** TimeSeries window width. */
    Cycles windowCycles{100000};
    /**
     * Retries amplify offered load under overload, so the open-loop
     * default is a single attempt; the retry ladder is the closed-
     * loop chaos suites' territory.
     */
    uint32_t maxAttempts = 1;
    /**
     * Breakers default off: with admission shedding feeding
     * noteFailure(), a breaker would quarantine a merely-busy
     * service and turn an overload plateau into a cliff. Turn on to
     * measure exactly that cliff.
     */
    bool breakers = false;
    /** Override the rig's breaker cooldown (0 = rig default). The
     *  metastable experiment sets this far past the run length so an
     *  open breaker never probes its way closed. */
    Cycles breakerCooldownCycles{0};
    /**
     * Crash injection: just before drawing request #killAtRequest
     * (1-based; 0 = off), kill killTenant's service #killService
     * (TenantRig victim index, 5 = kv) and record a "fault" mark.
     */
    uint64_t killAtRequest = 0;
    kernel::TenantId killTenant = TenantRig::tenantA;
    uint32_t killService = 5;
    /** Supervisor::autoHeal: false leaves crashed services down. */
    bool healing = true;
    /**
     * SLO health layer (DESIGN.md §4i). Default-off: a zero knee
     * skips regime tracking entirely and the JSON document keeps its
     * PR-7 shape. With a calibrated knee the run adds per-(tenant,
     * service) offered/goodput channels, classifies every window,
     * and emits the regime timeline + recovery table under "slo".
     */
    slo::SloSpec slo;
};

/** Client-observed fate of one scheduled request. */
enum class LoadOutcome
{
    Ok,        ///< served within its deadline
    Shed,      ///< refused admission (CallStatus::Overloaded)
    Timeout,   ///< deadline expired or watchdog fired mid-call
    Breaker,   ///< short-circuited by an open breaker
    Abandoned, ///< deadline already past at issue time; never sent
    Error,     ///< any other failure
};
constexpr size_t loadOutcomeCount = 6;
const char *loadOutcomeName(LoadOutcome o);

struct LoadGenResult
{
    explicit LoadGenResult(const LoadGenOptions &o);

    LoadGenOptions config;
    uint64_t offered = 0;
    uint64_t counts[loadOutcomeCount] = {};
    uint64_t startCycle = 0;
    uint64_t endCycle = 0;

    /** Arrival-to-completion latency, cycles. */
    Histogram latencyAll;
    Histogram latencyService[3]; ///< kv, httpd, fs
    std::vector<Histogram> latencyTenant;
    Histogram latencyOutcome[loadOutcomeCount];
    TimeSeries series;

    /** Timeline annotations (phase marks, fault, restarts). */
    std::vector<slo::Mark> marks;

    /** Regime trackers, populated after run() when slo.enabled():
     *  [0] aggregate "all", then one per (tenant, service). */
    std::vector<std::unique_ptr<slo::RegimeTracker>> sloTrackers;

    static const char *const serviceNames[3];

    uint64_t goodput() const { return counts[0]; }
    uint64_t elapsedCycles() const { return endCycle - startCycle; }
    double goodputPerMcycle() const;
    double offeredPerMcycleActual() const;
    /** Total requests across the effective phase list. */
    uint64_t scheduledRequests() const;

    /** The aggregate tracker (null unless slo.enabled()). */
    const slo::RegimeTracker *sloAll() const
    {
        return sloTrackers.empty() ? nullptr : sloTrackers[0].get();
    }

    /** Tracker by label ("kv@t1", "all"); null when absent. */
    const slo::RegimeTracker *sloFor(const std::string &label) const
    {
        for (const auto &t : sloTrackers)
            if (t->label() == label)
                return t.get();
        return nullptr;
    }

    /** One stable JSON document (same seed => same bytes). */
    void dumpJson(std::ostream &os) const;
};

class LoadGen
{
  public:
    explicit LoadGen(const LoadGenOptions &options = {});

    /** Run the full schedule (call once). */
    const LoadGenResult &run();

    TenantRig &rig() { return *rig_; }
    const LoadGenResult &result() const { return res; }

  private:
    void warmup();
    uint32_t pickService();
    LoadOutcome issue(kernel::TenantId tenant, uint32_t svc,
                      uint64_t key, bool is_put);
    void sampleGauges(uint64_t now);
    void evaluateSlo();

    LoadGenOptions opts;
    /** The effective schedule: opts.phases, or the one implicit
     *  phase. */
    std::vector<LoadPhase> schedule;
    std::unique_ptr<TenantRig> rig_;
    LoadGenResult res;
    Rng rng;
    std::vector<Zipfian> zipfs; ///< one per tenant, per-tenant skew

    TimeSeries::ChannelId chOffered = 0;
    TimeSeries::ChannelId chGoodput = 0;
    TimeSeries::ChannelId chShed = 0;
    TimeSeries::ChannelId chTimeout = 0;
    TimeSeries::ChannelId chFailed = 0;
    TimeSeries::ChannelId chAbandoned = 0;
    TimeSeries::ChannelId chBacklog = 0;
    TimeSeries::ChannelId chBreakers = 0;
    /** Per (tenant, service) curves, slo.enabled() only:
     *  [t * 3 + svc]. */
    std::vector<TimeSeries::ChannelId> chSvcOffered;
    std::vector<TimeSeries::ChannelId> chSvcGoodput;
};

} // namespace xpc::apps

#endif // XPC_APPS_LOADGEN_HH
