/**
 * @file
 * Seeded open-loop load generator over the supervised tenant mesh.
 *
 * Closed-loop clients (everything in bench/ before this) wait for
 * each reply before sending the next request, so they can never
 * observe queueing collapse: the offered load falls with the service
 * rate. LoadGen is open-loop: it pre-draws a Poisson arrival schedule
 * at a configured offered rate and issues every request at its
 * scheduled simulated-cycle arrival, advancing the core's clock with
 * syncTo() when the generator is ahead of the mesh. Latency is
 * measured from the *arrival*, not from the moment the call is
 * issued, so the time a request spends waiting behind a saturated
 * mesh is part of its tail - the methodology of open-loop tail
 * studies (and the reason the goodput-vs-offered-load curve can
 * actually show the admission knee).
 *
 * Each request draws tenant, service (kv / httpd / fs, weighted) and
 * a Zipfian key from one seeded Rng in a fixed per-request order, so
 * the schedule is a pure function of the seed and never depends on
 * outcomes: two same-seed runs are byte-identical, shed or not.
 * Requests whose arrival-anchored deadline has already passed before
 * they are issued are abandoned client-side (the open-loop analogue
 * of a caller hanging up), which is what lets goodput saturate
 * instead of collapsing under 2x overload.
 *
 * Results land in per-service, per-tenant and per-outcome fixed-
 * memory Histograms plus a windowed TimeSeries (offered, goodput,
 * sheds, backlog, breaker state), all dumpable as one stable JSON
 * document.
 */

#ifndef XPC_APPS_LOADGEN_HH
#define XPC_APPS_LOADGEN_HH

#include <memory>

#include "apps/tenant_rig.hh"
#include "sim/histogram.hh"
#include "sim/random.hh"
#include "sim/timeseries.hh"

namespace xpc::apps {

struct LoadGenOptions
{
    core::SystemFlavor flavor = core::SystemFlavor::Sel4Xpc;
    uint64_t seed = 42;
    /** Offered arrival rate, requests per million cycles. */
    double offeredPerMcycle = 300;
    /** Total requests in the schedule. */
    uint64_t requests = 2000;
    /** 1 or 2 tenants drawing from the same schedule. */
    uint32_t tenants = 2;
    /** Service mix weights (kv-heavy by default, like YCSB). */
    uint32_t kvWeight = 6;
    uint32_t httpWeight = 3;
    uint32_t fsWeight = 1;
    /** Zipfian key universe for the kv workload. */
    uint64_t zipfKeys = 256;
    /** Arrival-anchored deadline per request; 0 = none. */
    Cycles deadlineCycles{400000};
    /** TimeSeries window width. */
    Cycles windowCycles{100000};
    /**
     * Retries amplify offered load under overload, so the open-loop
     * default is a single attempt; the retry ladder is the closed-
     * loop chaos suites' territory.
     */
    uint32_t maxAttempts = 1;
    /**
     * Breakers default off: with admission shedding feeding
     * noteFailure(), a breaker would quarantine a merely-busy
     * service and turn an overload plateau into a cliff. Turn on to
     * measure exactly that cliff.
     */
    bool breakers = false;
};

/** Client-observed fate of one scheduled request. */
enum class LoadOutcome
{
    Ok,        ///< served within its deadline
    Shed,      ///< refused admission (CallStatus::Overloaded)
    Timeout,   ///< deadline expired or watchdog fired mid-call
    Breaker,   ///< short-circuited by an open breaker
    Abandoned, ///< deadline already past at issue time; never sent
    Error,     ///< any other failure
};
constexpr size_t loadOutcomeCount = 6;
const char *loadOutcomeName(LoadOutcome o);

struct LoadGenResult
{
    explicit LoadGenResult(const LoadGenOptions &o);

    LoadGenOptions config;
    uint64_t offered = 0;
    uint64_t counts[loadOutcomeCount] = {};
    uint64_t startCycle = 0;
    uint64_t endCycle = 0;

    /** Arrival-to-completion latency, cycles. */
    Histogram latencyAll;
    Histogram latencyService[3]; ///< kv, httpd, fs
    Histogram latencyTenant[2];
    Histogram latencyOutcome[loadOutcomeCount];
    TimeSeries series;

    static const char *const serviceNames[3];

    uint64_t goodput() const { return counts[0]; }
    uint64_t elapsedCycles() const { return endCycle - startCycle; }
    double goodputPerMcycle() const;
    double offeredPerMcycleActual() const;

    /** One stable JSON document (same seed => same bytes). */
    void dumpJson(std::ostream &os) const;
};

class LoadGen
{
  public:
    explicit LoadGen(const LoadGenOptions &options = {});

    /** Run the full schedule (call once). */
    const LoadGenResult &run();

    TenantRig &rig() { return *rig_; }
    const LoadGenResult &result() const { return res; }

  private:
    void warmup();
    uint32_t pickService();
    LoadOutcome issue(kernel::TenantId tenant, uint32_t svc,
                      uint64_t key, bool is_put);
    void sampleGauges(uint64_t now);

    LoadGenOptions opts;
    std::unique_ptr<TenantRig> rig_;
    LoadGenResult res;
    Rng rng;
    Zipfian zipf;

    TimeSeries::ChannelId chOffered = 0;
    TimeSeries::ChannelId chGoodput = 0;
    TimeSeries::ChannelId chShed = 0;
    TimeSeries::ChannelId chTimeout = 0;
    TimeSeries::ChannelId chFailed = 0;
    TimeSeries::ChannelId chAbandoned = 0;
    TimeSeries::ChannelId chBacklog = 0;
    TimeSeries::ChannelId chBreakers = 0;
};

} // namespace xpc::apps

#endif // XPC_APPS_LOADGEN_HH
