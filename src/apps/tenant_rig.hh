/**
 * @file
 * An N-tenant supervised service stack (two by default) for the
 * tenant-containment suite, the examples/tenants demo and the
 * open-loop load generator (ROADMAP item 4, modeled on xv6
 * mount-namespace/pouch-style container isolation).
 *
 * Each tenant owns a full copy of the three chaos workloads - fs
 * (fs -> blockdev), web (http -> cache -> crypto) and kv - wired
 * under the *same* service names ("fs", "httpd", "kv", ...) in its
 * own NameServer namespace, with its own supervision group, circuit
 * breakers and admission controllers. The transport runs with
 * tenancy enforcement on, so a grant or call that crosses the tenant
 * boundary is refused and counted. Crash-looping every service of
 * tenant A must leave tenant B's goodput intact: that is the
 * blast-radius property the chaos test asserts over this rig.
 */

#ifndef XPC_APPS_TENANT_RIG_HH
#define XPC_APPS_TENANT_RIG_HH

#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "core/system.hh"
#include "services/admission.hh"
#include "services/block_device.hh"
#include "services/fs_server.hh"
#include "services/kv.hh"
#include "services/name_server.hh"
#include "services/proto.hh"
#include "services/supervisor.hh"
#include "services/telemetry.hh"
#include "services/web.hh"

namespace xpc::apps {

namespace proto = xpc::services::proto;

/** Construction knobs for a TenantRig. */
struct TenantRigOptions
{
    core::SystemFlavor flavor = core::SystemFlavor::Sel4Xpc;
    /** Refuse cross-tenant grants/calls at the transport. */
    bool enforceTenancy = true;
    /** Tenants to build, 1..maxTenants; tenant ids are 1..N. The
     *  historical two-tenant layout stays the default. */
    uint32_t tenants = 2;
    /** Per-call budget, enforced on every hop (stalls unwind). */
    Cycles deadlineCycles{150000};
    /** XPC watchdog for hung servers. */
    Cycles timeoutCycles{20000};
    /** Quarantine repeated failures per (tenant, service). */
    bool breakers = true;
    /**
     * Give fs and httpd their own admission controllers too (kv
     * always has one). The load generator turns this on so every
     * front-door service sheds under overload instead of queueing;
     * the chaos suites keep the historical kv-only layout.
     */
    bool admitAll = false;
};

/** N tenants x (fs, kv, web), supervised, under one transport. */
class TenantRig
{
  public:
    static constexpr kernel::TenantId tenantA = 1;
    static constexpr kernel::TenantId tenantB = 2;
    static constexpr uint32_t maxTenants = 8;
    /** Tenant id of stack index @p ix (ids are 1-based). */
    static constexpr kernel::TenantId tenantOf(uint32_t ix)
    {
        return kernel::TenantId(ix + 1);
    }
    static constexpr uint64_t diskBlocks = 2048;
    static constexpr uint64_t httpMaxBody = 4096;
    /** Sentinel for "the transport/retry layer gave up". */
    static constexpr int64_t callFailed = INT64_MIN;

    explicit TenantRig(const TenantRigOptions &options = {});

    core::System &system() { return *sys; }
    core::Transport &transport() { return *tr; }
    services::NameServer &nameServer() { return *ns; }
    services::Supervisor &supervisor() { return *sup; }

    /** One tenant's threads, clients and controllers. */
    struct Stack
    {
        kernel::TenantId tenant = kernel::defaultTenant;
        kernel::Thread *devT = nullptr;
        kernel::Thread *fsT = nullptr;
        kernel::Thread *cacheT = nullptr;
        kernel::Thread *cryptoT = nullptr;
        kernel::Thread *httpT = nullptr;
        kernel::Thread *kvT = nullptr;
        kernel::Thread *client = nullptr;
        std::unique_ptr<services::AdmissionController> admKv;
        /** Only with TenantRigOptions::admitAll. */
        std::unique_ptr<services::AdmissionController> admFs;
        std::unique_ptr<services::AdmissionController> admHttp;
        /** Always-on front-door telemetry; instances re-attach to
         *  these across crash restarts, so histograms span
         *  incarnations. */
        std::unique_ptr<services::ServiceTelemetry> telFs;
        std::unique_ptr<services::ServiceTelemetry> telHttp;
        std::unique_ptr<services::ServiceTelemetry> telKv;
    };

    Stack &stack(kernel::TenantId tenant);

    /** Stacks actually built (== options.tenants). */
    uint32_t tenantCount() const { return uint32_t(stacks.size()); }

    /** Tallies of one tenant's client operations. */
    struct OpCounts
    {
        uint64_t ok = 0;
        uint64_t failed = 0;
        /** Replies that broke their protocol framing (must stay 0). */
        uint64_t corrupt = 0;
        /** Failures without a named error status (must stay 0). */
        uint64_t unexplained = 0;
        /** Ops that left link-stack state behind (must stay 0). */
        uint64_t leakedLinkage = 0;
    };

    /**
     * One iteration of the standard mixed workload (fs open/write/
     * read/close, http GET, kv put + read-verify) as @p tenant's
     * client, folded into @p counts.
     */
    void runMix(kernel::TenantId tenant, int i, OpCounts &counts);

    /** Kill one of the tenant's six services, round-robin by @p k.
     *  The supervisor resurrects it on the tenant's next retry. */
    void killOne(kernel::TenantId tenant, unsigned k);

    /** Kill every service of the tenant at once. */
    void killAll(kernel::TenantId tenant);

    /** True when every supervised service of the tenant is up. */
    bool allUp(kernel::TenantId tenant) const;

    /// @name Per-tenant client helpers (callWithRetry underneath).
    /// @{
    int64_t fsOp(kernel::TenantId tenant, proto::FsOp op,
                 const proto::FsMsg &msg, const void *payload,
                 uint64_t plen, void *rdata, uint64_t rcap);
    int64_t httpGet(kernel::TenantId tenant, const std::string &path,
                    std::string *response, uint64_t *garbled);
    bool kvPut(kernel::TenantId tenant, uint64_t key);
    /** @return 1 verified hit, 0 clean miss, -1 clean failure,
     *          -2 corrupt value (must never happen). */
    int kvGet(kernel::TenantId tenant, uint64_t key);
    /// @}

    /** Policy every client helper uses. */
    services::RetryPolicy policy;

    /** Service names each tenant wires (supervision + namespace). */
    static const char *const serviceNames[6];

  private:
    void buildStack(Stack &st);
    void killProcessOf(kernel::Thread *t);

    TenantRigOptions opts;

    core::ServiceId makeBlockdev(Stack &st);
    core::ServiceId makeFs(Stack &st);
    core::ServiceId makeCache(Stack &st);
    core::ServiceId makeCrypto(Stack &st);
    core::ServiceId makeHttp(Stack &st);
    core::ServiceId makeKv(Stack &st);

    std::unique_ptr<core::System> sys;
    core::Transport *tr = nullptr;
    std::unique_ptr<services::NameServer> ns;
    std::unique_ptr<services::Supervisor> sup;

    /** deque: supervise() restart lambdas capture Stack&, so element
     *  addresses must survive growth. */
    std::deque<Stack> stacks;

    // Every instance ever started is kept alive: transport-side
    // handler closures reference them by pointer.
    std::vector<std::unique_ptr<services::BlockDeviceServer>> devs;
    std::vector<std::unique_ptr<services::FsServer>> fss;
    std::vector<std::unique_ptr<services::FileCacheServer>> caches;
    std::vector<std::unique_ptr<services::CryptoServer>> cryptos;
    std::vector<std::unique_ptr<services::HttpServer>> https;
    std::vector<std::unique_ptr<services::KvServer>> kvs;
};

} // namespace xpc::apps

#endif // XPC_APPS_TENANT_RIG_HH
