/**
 * @file
 * Crashable workloads for the systematic crash-point explorer
 * (sim/explorer): each factory builds a full simulated machine -
 * block device (the durable medium), FS server, client - runs a
 * write workload under enumerable crash sites, and knows how to
 * restart + journal-recover the stack and verify its consistency
 * invariants after any crash.
 *
 * The crash model is a power cut: when a site fires, the block
 * device starts suppressing durable writes, freezing the disk at the
 * exact write prefix. recoverAndVerify() then discards the volatile
 * half (the FS server process and the client's database object),
 * heals through the Supervisor - whose recovery hook replays the
 * journals before the fresh instance is re-registered - and checks
 * that committed data is intact, uncommitted data is absent, and a
 * fig07-style workload still completes.
 */

#ifndef XPC_APPS_CRASH_WORKLOADS_HH
#define XPC_APPS_CRASH_WORKLOADS_HH

#include "apps/minidb/minidb.hh"
#include "sim/explorer.hh"

namespace xpc::apps {

/** Knobs for the MiniDb crash workload. */
struct MiniDbCrashOptions
{
    JournalMode journal = JournalMode::Rollback;
    /** Distinct keys; each run() generation updates all of them. */
    uint32_t keys = 4;
    uint32_t cachePages = 64;
};

/**
 * MiniDb over FS over the block device. The workload pre-populates
 * @p keys records (outside the fault space), then updates every one
 * per generation; the invariant is per-key atomicity: acknowledged
 * puts read back exactly, the single in-flight put reads back as
 * either its old or its new value, never a mix. Crash-safe in
 * Rollback and Wal modes; in None mode the explorer will find
 * torn transactions (which is the point).
 */
sim::CrashWorkloadFactory
makeMiniDbCrashWorkload(const MiniDbCrashOptions &options = {});

/**
 * Raw FS workload: whole-file generation rewrites, each one xv6fs
 * log transaction. The invariant is per-file atomicity: every file
 * reads back as entirely one generation - acknowledged writes as
 * theirs, the in-flight write as old-or-new - because the FS log
 * makes multi-block transactions all-or-nothing.
 */
sim::CrashWorkloadFactory
makeXv6FsCrashWorkload(uint32_t files = 3,
                       uint32_t blocks_per_file = 2);

/**
 * Deliberately crash-UNSAFE workload (journal None): records are
 * updated in pairs that the application wants atomic, but nothing
 * makes them so. Crashes between the two home writes leave a torn
 * pair, which verification reports as a graceful one-line failure -
 * the genuinely failing subject the shrinker needs.
 */
sim::CrashWorkloadFactory makeTornPairCrashWorkload(uint32_t pairs = 3);

} // namespace xpc::apps

#endif // XPC_APPS_CRASH_WORKLOADS_HH
