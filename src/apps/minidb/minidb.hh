/**
 * @file
 * MiniDb: the embedded, journaled relational-style store standing in
 * for Sqlite3 in the paper's Figure 1 / Figure 8 experiments. It
 * lives in the client process, keeps its table in a B+tree over a
 * paged database file on the FS server, and wraps every mutation in
 * a rollback-journal transaction (journal pre-images, header commit,
 * page write-back, header clear - sqlite's classic journal mode),
 * all through real IPC.
 */

#ifndef XPC_APPS_MINIDB_MINIDB_HH
#define XPC_APPS_MINIDB_MINIDB_HH

#include <memory>
#include <optional>
#include <string>

#include "apps/minidb/btree.hh"

namespace xpc::apps {

/** Compute-cost model of the query layer (parse/plan/execute). */
struct MiniDbCosts
{
    /** Per-point-query compute (sqlite parse + btree walk logic). */
    Cycles readCompute{14000};
    /** Per-update compute on top of the read path. */
    Cycles writeCompute{140000};
    /** Per-record compute during scans. */
    Cycles scanPerRecord{2000};
};

/** The database. */
class MiniDb
{
  public:
    /**
     * Create (or overwrite) database @p name on the FS service.
     * @param cache_pages sqlite-style page cache capacity
     */
    MiniDb(core::Transport &transport, hw::Core &core,
           kernel::Thread &client, core::ServiceId fs_svc,
           const std::string &name, uint32_t cache_pages = 64);

    MiniDbCosts costs;

    /** Insert or update one record (journaled transaction). */
    void put(const std::string &key, const void *value, uint32_t len);

    /** Point lookup. */
    std::optional<std::vector<uint8_t>> get(const std::string &key);

    /** Range scan of up to @p limit records from @p key. */
    uint32_t scan(const std::string &key, uint32_t limit);

    /** Read-modify-write (YCSB-F's workhorse). */
    void readModifyWrite(const std::string &key, uint8_t delta);

    BTree &tree() { return *btree; }
    PagedFile &pager() { return *file; }

    Counter transactions;
    Counter journalPages;

  private:
    core::Transport &transport;
    hw::Core &core;
    kernel::Thread &client;
    core::ServiceId fsSvc;
    std::unique_ptr<PagedFile> file;
    std::unique_ptr<BTree> btree;
    int64_t journalFd = -1;
    /** Buffered journal records of the open transaction. */
    std::vector<uint8_t> journalBuf;

    void lockProbe();
    void beginTxn();
    void commitTxn();
    void journalAppend(uint32_t page_no, const DbPage &pre);
    int64_t fsWrite(int64_t fd, uint64_t off, const void *src,
                    uint64_t len);
};

} // namespace xpc::apps

#endif // XPC_APPS_MINIDB_MINIDB_HH
