/**
 * @file
 * MiniDb: the embedded, journaled relational-style store standing in
 * for Sqlite3 in the paper's Figure 1 / Figure 8 experiments. It
 * lives in the client process, keeps its table in a B+tree over a
 * paged database file on the FS server, and wraps every mutation in
 * a rollback-journal transaction (journal pre-images, header commit,
 * page write-back, header clear - sqlite's classic journal mode),
 * all through real IPC.
 */

#ifndef XPC_APPS_MINIDB_MINIDB_HH
#define XPC_APPS_MINIDB_MINIDB_HH

#include <memory>
#include <optional>
#include <string>

#include "apps/minidb/btree.hh"

namespace xpc::apps {

/** Compute-cost model of the query layer (parse/plan/execute). */
struct MiniDbCosts
{
    /** Per-point-query compute (sqlite parse + btree walk logic). */
    Cycles readCompute{14000};
    /** Per-update compute on top of the read path. */
    Cycles writeCompute{140000};
    /** Per-record compute during scans. */
    Cycles scanPerRecord{2000};
};

/** How mutations are made crash-safe. */
enum class JournalMode : uint8_t
{
    /**
     * sqlite's classic rollback journal (the default): pre-images,
     * header commit, page write-back, header clear. The commit point
     * is the header *clear*; recovery rolls a hot journal back.
     */
    Rollback,
    /**
     * Write-ahead redo log through the checksummed commit codec
     * (services/journal): post-images, commit record, page
     * write-back, record clear. The commit point is the record
     * *write*; recovery replays an intact record idempotently.
     */
    Wal,
    /** No journal at all - deliberately crash-UNSAFE. Exists so the
     *  crash explorer's shrinker has a genuinely failing subject. */
    None,
};

/** Open-time knobs (the plain constructor = fresh + Rollback). */
struct MiniDbOptions
{
    uint32_t cachePages = 64;
    JournalMode journal = JournalMode::Rollback;
    /** false: attach to an existing database instead of formatting,
     *  running journal recovery before the first tree access (the
     *  crash-restart path). */
    bool createFresh = true;
};

/** The database. */
class MiniDb
{
  public:
    /**
     * Create (or overwrite) database @p name on the FS service.
     * @param cache_pages sqlite-style page cache capacity
     */
    MiniDb(core::Transport &transport, hw::Core &core,
           kernel::Thread &client, core::ServiceId fs_svc,
           const std::string &name, uint32_t cache_pages = 64);

    /** Full-control variant: journal mode and create-vs-attach. */
    MiniDb(core::Transport &transport, hw::Core &core,
           kernel::Thread &client, core::ServiceId fs_svc,
           const std::string &name, const MiniDbOptions &options);

    /** True when attaching found (and consumed) a hot journal. */
    bool recoveredOnOpen() const { return recoveredOnOpen_; }

    JournalMode journalMode() const { return mode; }

    MiniDbCosts costs;

    /** Insert or update one record (journaled transaction). */
    void put(const std::string &key, const void *value, uint32_t len);

    /** Point lookup. */
    std::optional<std::vector<uint8_t>> get(const std::string &key);

    /** Range scan of up to @p limit records from @p key. */
    uint32_t scan(const std::string &key, uint32_t limit);

    /** Read-modify-write (YCSB-F's workhorse). */
    void readModifyWrite(const std::string &key, uint8_t delta);

    BTree &tree() { return *btree; }
    PagedFile &pager() { return *file; }

    Counter transactions;
    Counter journalPages;

  private:
    core::Transport &transport;
    hw::Core &core;
    kernel::Thread &client;
    core::ServiceId fsSvc;
    std::unique_ptr<PagedFile> file;
    std::unique_ptr<BTree> btree;
    JournalMode mode = JournalMode::Rollback;
    bool recoveredOnOpen_ = false;
    int64_t journalFd = -1;
    /** Buffered journal records of the open transaction. */
    std::vector<uint8_t> journalBuf;

    void lockProbe();
    void beginTxn();
    void commitTxn();
    void journalAppend(uint32_t page_no, const DbPage &pre);
    void recoverRollback();
    void recoverWal();
    void installRecoveredPage(uint32_t page_no, const uint8_t *img);
    int64_t fsWrite(int64_t fd, uint64_t off, const void *src,
                    uint64_t len);
};

} // namespace xpc::apps

#endif // XPC_APPS_MINIDB_MINIDB_HH
