#include "minidb.hh"

#include <cstring>

#include "services/fs_server.hh"
#include "sim/logging.hh"

namespace xpc::apps {

using services::FsServer;

MiniDb::MiniDb(core::Transport &tr, hw::Core &c, kernel::Thread &cl,
               core::ServiceId fs, const std::string &name,
               uint32_t cache_pages)
    : transport(tr), core(c), client(cl), fsSvc(fs)
{
    file = std::make_unique<PagedFile>(tr, c, cl, fs, "/" + name,
                                       cache_pages);
    btree = std::make_unique<BTree>(*file);
    btree->create();
    journalFd = FsServer::clientOpen(tr, c, cl, fs,
                                     "/" + name + "-journal", true);
    fatal_if(journalFd < 0, "cannot create the rollback journal");
    // The tree header/root must be durable before first use.
    file->flushDirty();
}

int64_t
MiniDb::fsWrite(int64_t fd, uint64_t off, const void *src,
                uint64_t len)
{
    return FsServer::clientWrite(transport, core, client, fsSvc, fd,
                                 off, src, len);
}

void
MiniDb::beginTxn()
{
    transactions.inc();
    journalBuf.clear();
    file->preImageHook = [this](uint32_t page_no, const DbPage &pre) {
        journalAppend(page_no, pre);
    };
}

void
MiniDb::journalAppend(uint32_t page_no, const DbPage &pre)
{
    journalPages.inc();
    // Buffer {pageNo, preimage} like sqlite's buffered journal I/O;
    // the bytes hit the FS in one sequential write at commit.
    size_t at = journalBuf.size();
    journalBuf.resize(at + 8 + dbPageBytes);
    std::memcpy(journalBuf.data() + at, &page_no, 4);
    std::memset(journalBuf.data() + at + 4, 0, 4);
    std::memcpy(journalBuf.data() + at + 8, pre.data.data(),
                dbPageBytes);
}

void
MiniDb::commitTxn()
{
    file->preImageHook = nullptr;
    if (file->dirtyPages().empty())
        return;

    // 1. Sequential journal write + header: the commit mark (one
    //    buffered write plus the header, as sqlite does per fsync).
    fsWrite(journalFd, dbPageBytes, journalBuf.data(),
            journalBuf.size());
    uint64_t hdr[2] = {0x4a524e4cu,
                       journalBuf.size() / (8 + dbPageBytes)};
    fsWrite(journalFd, 0, hdr, sizeof(hdr));
    journalBuf.clear();
    // 2. Write the dirty pages home.
    file->flushDirty();
    // 3. Invalidate the journal (sqlite "delete"s it; zeroing the
    //    header is the journal_mode=PERSIST variant).
    uint64_t zero[2] = {0, 0};
    fsWrite(journalFd, 0, zero, sizeof(zero));
}

void
MiniDb::put(const std::string &key, const void *value, uint32_t len)
{
    core.spend(costs.readCompute);
    core.spend(costs.writeCompute);
    beginTxn();
    btree->put(BtKey::fromString(key), value, len);
    commitTxn();
}

void
MiniDb::lockProbe()
{
    // sqlite in rollback-journal mode takes a shared lock and checks
    // for a hot journal on every read transaction: two small file
    // operations through the FS server.
    uint64_t hdr[2];
    FsServer::clientRead(transport, core, client, fsSvc, journalFd, 0,
                         hdr, sizeof(hdr));
}

std::optional<std::vector<uint8_t>>
MiniDb::get(const std::string &key)
{
    core.spend(costs.readCompute);
    lockProbe();
    return btree->get(BtKey::fromString(key));
}

uint32_t
MiniDb::scan(const std::string &key, uint32_t limit)
{
    core.spend(costs.readCompute);
    lockProbe();
    uint64_t checksum = 0;
    uint32_t n = btree->scan(
        BtKey::fromString(key), limit,
        [&](const BtKey &, const uint8_t *val, uint32_t len) {
            core.spend(costs.scanPerRecord);
            // Touch the record like a row decoder would.
            for (uint32_t i = 0; i < len; i += 64)
                checksum += val[i];
        });
    (void)checksum;
    return n;
}

void
MiniDb::readModifyWrite(const std::string &key, uint8_t delta)
{
    auto value = get(key);
    if (!value)
        return;
    for (auto &b : *value)
        b = uint8_t(b + delta);
    put(key, value->data(), uint32_t(value->size()));
}

} // namespace xpc::apps
