#include "minidb.hh"

#include <cstring>

#include "services/fs_server.hh"
#include "services/journal.hh"
#include "sim/logging.hh"

namespace xpc::apps {

using services::FsServer;
namespace journal = services::journal;

namespace {

/** Rollback-journal header magic ("LNRJ" little-endian). */
constexpr uint64_t rollbackMagic = 0x4a524e4c;

/** Journal body (records/post-images) starts one page in. */
constexpr uint64_t journalBodyOffset = dbPageBytes;

} // namespace

MiniDb::MiniDb(core::Transport &tr, hw::Core &c, kernel::Thread &cl,
               core::ServiceId fs, const std::string &name,
               uint32_t cache_pages)
    : MiniDb(tr, c, cl, fs, name, MiniDbOptions{cache_pages})
{}

MiniDb::MiniDb(core::Transport &tr, hw::Core &c, kernel::Thread &cl,
               core::ServiceId fs, const std::string &name,
               const MiniDbOptions &options)
    : transport(tr), core(c), client(cl), fsSvc(fs),
      mode(options.journal)
{
    file = std::make_unique<PagedFile>(tr, c, cl, fs, "/" + name,
                                       options.cachePages);
    if (mode == JournalMode::Wal) {
        // Write-ahead ordering: never push a dirty page home ahead
        // of its commit record just to make cache room.
        file->preferCleanEviction = true;
    }
    if (options.createFresh) {
        btree = std::make_unique<BTree>(*file);
        btree->create();
        journalFd = FsServer::clientOpen(
            tr, c, cl, fs, "/" + name + "-journal", true);
        fatal_if(journalFd < 0, "cannot create the journal");
        // The tree header/root must be durable before first use.
        file->flushDirty();
        return;
    }
    // Attach (crash restart): adopt the durable extent, consume any
    // hot journal, and only then touch the tree.
    journalFd = FsServer::clientOpen(
        tr, c, cl, fs, "/" + name + "-journal", true);
    fatal_if(journalFd < 0, "cannot open the journal");
    file->adoptExisting();
    if (mode == JournalMode::Rollback)
        recoverRollback();
    else if (mode == JournalMode::Wal)
        recoverWal();
    btree = std::make_unique<BTree>(*file);
}

int64_t
MiniDb::fsWrite(int64_t fd, uint64_t off, const void *src,
                uint64_t len)
{
    return FsServer::clientWrite(transport, core, client, fsSvc, fd,
                                 off, src, len);
}

void
MiniDb::beginTxn()
{
    transactions.inc();
    journalBuf.clear();
    if (mode == JournalMode::Rollback) {
        file->preImageHook = [this](uint32_t page_no,
                                    const DbPage &pre) {
            journalAppend(page_no, pre);
        };
    }
    // Wal journals post-images at commit; None journals nothing.
}

void
MiniDb::journalAppend(uint32_t page_no, const DbPage &pre)
{
    journalPages.inc();
    // Buffer {pageNo, preimage} like sqlite's buffered journal I/O;
    // the bytes hit the FS in one sequential write at commit.
    size_t at = journalBuf.size();
    journalBuf.resize(at + 8 + dbPageBytes);
    std::memcpy(journalBuf.data() + at, &page_no, 4);
    std::memset(journalBuf.data() + at + 4, 0, 4);
    std::memcpy(journalBuf.data() + at + 8, pre.data.data(),
                dbPageBytes);
}

void
MiniDb::commitTxn()
{
    file->preImageHook = nullptr;
    if (file->dirtyPages().empty())
        return;

    if (mode == JournalMode::None) {
        // Crash-unsafe by design: pages go straight home.
        file->flushDirty();
        return;
    }

    if (mode == JournalMode::Wal) {
        // Post-images first, then the checksummed commit record (the
        // atomic point), then the pages home, then the record clear.
        // Recovery replays an intact record idempotently; anything
        // torn decodes invalid and the transaction never happened.
        journal::WalHeader hdr;
        hdr.seq = transactions.value();
        std::vector<uint8_t> body;
        for (uint32_t page_no : file->dirtyPages()) {
            journalPages.inc();
            DbPage &p = file->get(page_no);
            size_t at = body.size();
            body.resize(at + dbPageBytes);
            std::memcpy(body.data() + at, p.data.data(), dbPageBytes);
            hdr.entries.push_back(
                {page_no,
                 journal::walCrc(p.data.data(), dbPageBytes)});
        }
        fsWrite(journalFd, journalBodyOffset, body.data(),
                body.size());
        std::vector<uint8_t> rec;
        hdr.encodeTo(&rec);
        fsWrite(journalFd, 0, rec.data(), rec.size());
        file->flushDirty();
        uint64_t zero[2] = {0, 0};
        fsWrite(journalFd, 0, zero, sizeof(zero));
        return;
    }

    // 1. Sequential journal write + header: the commit mark (one
    //    buffered write plus the header, as sqlite does per fsync).
    fsWrite(journalFd, journalBodyOffset, journalBuf.data(),
            journalBuf.size());
    uint64_t hdr[2] = {rollbackMagic,
                       journalBuf.size() / (8 + dbPageBytes)};
    fsWrite(journalFd, 0, hdr, sizeof(hdr));
    journalBuf.clear();
    // 2. Write the dirty pages home.
    file->flushDirty();
    // 3. Invalidate the journal (sqlite "delete"s it; zeroing the
    //    header is the journal_mode=PERSIST variant). This clear is
    //    the rollback commit point: a crash before it leaves a hot
    //    journal, and recovery rolls the transaction back.
    uint64_t zero[2] = {0, 0};
    fsWrite(journalFd, 0, zero, sizeof(zero));
}

void
MiniDb::installRecoveredPage(uint32_t page_no, const uint8_t *img)
{
    if (page_no >= file->pageCount())
        file->adoptPages(page_no + 1);
    DbPage &p = file->get(page_no);
    file->markDirty(page_no);
    std::memcpy(p.data.data(), img, dbPageBytes);
}

void
MiniDb::recoverRollback()
{
    uint64_t hdr[2] = {0, 0};
    FsServer::clientRead(transport, core, client, fsSvc, journalFd, 0,
                         hdr, sizeof(hdr));
    if (hdr[0] != rollbackMagic || hdr[1] == 0)
        return; // no hot journal: the last transaction committed
    // Hot journal: the crash hit between the journal commit mark and
    // the journal clear, so the home pages may be any prefix of the
    // transaction's writes. Undo: copy every pre-image back.
    recoveredOnOpen_ = true;
    std::vector<uint8_t> rec(8 + dbPageBytes);
    for (uint64_t i = 0; i < hdr[1]; i++) {
        int64_t r = FsServer::clientRead(
            transport, core, client, fsSvc, journalFd,
            journalBodyOffset + i * (8 + dbPageBytes), rec.data(),
            rec.size());
        if (r != int64_t(rec.size()))
            break; // torn body cannot happen after a valid header
        uint32_t page_no;
        std::memcpy(&page_no, rec.data(), 4);
        installRecoveredPage(page_no, rec.data() + 8);
    }
    file->flushDirty();
    uint64_t zero[2] = {0, 0};
    fsWrite(journalFd, 0, zero, sizeof(zero));
}

void
MiniDb::recoverWal()
{
    std::vector<uint8_t> hraw(dbPageBytes, 0);
    int64_t r = FsServer::clientRead(transport, core, client, fsSvc,
                                     journalFd, 0, hraw.data(),
                                     hraw.size());
    journal::WalHeader hdr;
    if (r <= 0 ||
        !journal::WalHeader::decode(hraw.data(), size_t(r), &hdr))
        return; // no intact commit record: nothing to redo
    // Verify every post-image before touching the database; a record
    // describing torn images is discarded whole.
    std::vector<uint8_t> body(hdr.entries.size() * dbPageBytes);
    bool intact = true;
    for (size_t i = 0; i < hdr.entries.size(); i++) {
        uint8_t *img = body.data() + i * dbPageBytes;
        int64_t got = FsServer::clientRead(
            transport, core, client, fsSvc, journalFd,
            journalBodyOffset + i * dbPageBytes, img, dbPageBytes);
        if (got != int64_t(dbPageBytes) ||
            !journal::walPayloadMatches(hdr.entries[i], img,
                                        dbPageBytes)) {
            intact = false;
            break;
        }
    }
    if (intact) {
        recoveredOnOpen_ = true;
        for (size_t i = 0; i < hdr.entries.size(); i++) {
            installRecoveredPage(hdr.entries[i].no,
                                 body.data() + i * dbPageBytes);
        }
        file->flushDirty();
    }
    // The record is consumed either way.
    uint64_t zero[2] = {0, 0};
    fsWrite(journalFd, 0, zero, sizeof(zero));
}

void
MiniDb::put(const std::string &key, const void *value, uint32_t len)
{
    core.spend(costs.readCompute);
    core.spend(costs.writeCompute);
    beginTxn();
    btree->put(BtKey::fromString(key), value, len);
    commitTxn();
}

void
MiniDb::lockProbe()
{
    // sqlite in rollback-journal mode takes a shared lock and checks
    // for a hot journal on every read transaction: two small file
    // operations through the FS server.
    uint64_t hdr[2];
    FsServer::clientRead(transport, core, client, fsSvc, journalFd, 0,
                         hdr, sizeof(hdr));
}

std::optional<std::vector<uint8_t>>
MiniDb::get(const std::string &key)
{
    core.spend(costs.readCompute);
    lockProbe();
    return btree->get(BtKey::fromString(key));
}

uint32_t
MiniDb::scan(const std::string &key, uint32_t limit)
{
    core.spend(costs.readCompute);
    lockProbe();
    uint64_t checksum = 0;
    uint32_t n = btree->scan(
        BtKey::fromString(key), limit,
        [&](const BtKey &, const uint8_t *val, uint32_t len) {
            core.spend(costs.scanPerRecord);
            // Touch the record like a row decoder would.
            for (uint32_t i = 0; i < len; i += 64)
                checksum += val[i];
        });
    (void)checksum;
    return n;
}

void
MiniDb::readModifyWrite(const std::string &key, uint8_t delta)
{
    auto value = get(key);
    if (!value)
        return;
    for (auto &b : *value)
        b = uint8_t(b + delta);
    put(key, value->data(), uint32_t(value->size()));
}

} // namespace xpc::apps
