/**
 * @file
 * A paged file over the IPC file-system server, with a client-side
 * page cache - the storage layer under MiniDb's B+tree, standing in
 * for sqlite3's pager. Every cache miss and every flush is a real
 * read/write RPC to the FS server, which is precisely the IPC the
 * paper's Figure 1 and Figure 8 measure.
 */

#ifndef XPC_APPS_MINIDB_PAGED_FILE_HH
#define XPC_APPS_MINIDB_PAGED_FILE_HH

#include <array>
#include <functional>
#include <list>
#include <string>

#include "core/transport.hh"
#include "sim/stats.hh"

namespace xpc::apps {

constexpr uint64_t dbPageBytes = 4096;

/** One cached page. */
struct DbPage
{
    uint32_t pageNo = 0;
    bool valid = false;
    bool dirty = false;
    uint64_t lru = 0;
    std::array<uint8_t, dbPageBytes> data;
};

/** FS-backed paged file with a fixed-size page cache. */
class PagedFile
{
  public:
    /**
     * Open (creating if needed) @p path on the FS service.
     * @param cache_pages page-cache capacity
     */
    PagedFile(core::Transport &transport, hw::Core &core,
              kernel::Thread &client, core::ServiceId fs_svc,
              const std::string &path, uint32_t cache_pages);

    /** Fetch a page, reading through the FS on a miss. */
    DbPage &get(uint32_t page_no);

    /** Mark a page dirty. Fires the pre-image hook the first time a
     *  page is dirtied while a hook is installed (journaling). */
    void markDirty(uint32_t page_no);

    /** Write all dirty pages through to the FS server. */
    void flushDirty();

    /** Extend the file by one zeroed page. @return its number. */
    uint32_t appendPage();

    /** Attach to an existing file of @p n pages: subsequent get()
     *  calls read them through from the FS (reopen support). */
    void
    adoptPages(uint32_t n)
    {
        numPages = std::max(numPages, n);
    }

    /** Attach to the file's existing extent: stat it on the FS
     *  server and adopt every page already (even partially) written
     *  - the crash-restart reopen path. */
    void adoptExisting();

    uint32_t pageCount() const { return numPages; }

    /** Journaling hook: called with (pageNo, preImage) on first dirty. */
    std::function<void(uint32_t, const DbPage &)> preImageHook;

    /**
     * Prefer evicting clean pages over dirty ones (WAL discipline:
     * a dirty page written home before its commit record would break
     * the write-ahead invariant). Default off - the classic pager
     * evicts strictly by LRU, and the benches depend on that exact
     * write-back sequence.
     */
    bool preferCleanEviction = false;

    /** Dirty page numbers in first-dirtied order. */
    const std::vector<uint32_t> &dirtyPages() const { return dirtyList; }

    Counter cacheHits;
    Counter cacheMisses;
    Counter pageReads;
    Counter pageWrites;

  private:
    core::Transport &transport;
    hw::Core &core;
    kernel::Thread &client;
    core::ServiceId fsSvc;
    int64_t fd = -1;
    uint32_t numPages = 0;
    uint32_t capacity;
    uint64_t clock = 0;
    std::list<DbPage> pages;
    std::vector<uint32_t> dirtyList;

    DbPage *find(uint32_t page_no);
    void writeThrough(DbPage &page);
    void evictOne();
};

} // namespace xpc::apps

#endif // XPC_APPS_MINIDB_PAGED_FILE_HH
