/**
 * @file
 * A page-based B+tree over a PagedFile: MiniDb's table storage,
 * standing in for sqlite3's btree.c.
 *
 * Fixed-size 24-byte keys, values up to 1000 bytes, leaves linked
 * left-to-right for range scans. Inserts split full nodes bottom-up;
 * updates rewrite in place; deletes remove the slot without
 * rebalancing (YCSB never shrinks tables, and sqlite's own
 * balance-after-delete is lazy too).
 */

#ifndef XPC_APPS_MINIDB_BTREE_HH
#define XPC_APPS_MINIDB_BTREE_HH

#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include "apps/minidb/paged_file.hh"

namespace xpc::apps {

constexpr uint32_t btreeKeyBytes = 24;
constexpr uint32_t btreeValueMax = 1000;

/** Fixed-width key wrapper with memcmp ordering. */
struct BtKey
{
    uint8_t bytes[btreeKeyBytes] = {};

    static BtKey fromString(const std::string &s);

    bool
    operator<(const BtKey &other) const
    {
        return std::memcmp(bytes, other.bytes, btreeKeyBytes) < 0;
    }

    bool
    operator==(const BtKey &other) const
    {
        return std::memcmp(bytes, other.bytes, btreeKeyBytes) == 0;
    }
};

/** The B+tree. Page 0 of the file holds {magic, root, height}. */
class BTree
{
  public:
    explicit BTree(PagedFile &file);

    /** Format a fresh tree (page 0 header plus an empty root leaf). */
    void create();

    /** Insert or overwrite. @return true if the key was new. */
    bool put(const BtKey &key, const void *value, uint32_t len);

    /** Look up a key. */
    std::optional<std::vector<uint8_t>> get(const BtKey &key);

    /** Remove a key. @return true if it existed. */
    bool erase(const BtKey &key);

    /**
     * Range scan: visit up to @p limit records with key >= @p start,
     * in order. @return records visited.
     */
    uint32_t scan(const BtKey &start, uint32_t limit,
                  const std::function<void(const BtKey &,
                                           const uint8_t *,
                                           uint32_t)> &visit);

    /** Height of the tree (1 = root is a leaf). */
    uint32_t height();

    /** Walk the whole tree checking ordering and reachability;
     *  panics on violation (used by property tests). */
    void checkInvariants();

    uint64_t recordCount();

  private:
    PagedFile &file;

    struct SplitResult
    {
        bool split = false;
        BtKey sepKey;
        uint32_t rightPage = 0;
    };

    uint32_t rootPage();
    void setRoot(uint32_t page_no);

    SplitResult insertInto(uint32_t page_no, const BtKey &key,
                           const void *value, uint32_t len,
                           bool *inserted);
    uint32_t findLeaf(uint32_t page_no, const BtKey &key);
};

} // namespace xpc::apps

#endif // XPC_APPS_MINIDB_BTREE_HH
