#include "btree.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace xpc::apps {

namespace {

constexpr uint32_t btreeMagic = 0xb7ee0001;
constexpr uint8_t nodeLeaf = 1;
constexpr uint8_t nodeInternal = 2;

/** Slots per leaf: 8B header + n * (24 key + 4 len + 1000 value). */
constexpr uint32_t leafCap = 3;
/** Entries per internal node (kept modest so splits get exercised). */
constexpr uint32_t internalCap = 64;
constexpr uint32_t leafSlotBytes = btreeKeyBytes + 4 + btreeValueMax;
constexpr uint32_t intSlotBytes = btreeKeyBytes + 4;

static_assert(8 + leafCap * leafSlotBytes <= dbPageBytes);
static_assert(8 + internalCap * intSlotBytes <= dbPageBytes);

/** Host-side decoded node. */
struct Node
{
    bool leaf = true;
    /** Leaf: right sibling (0 = none). Internal: leftmost child. */
    uint32_t next = 0;

    struct LeafEntry
    {
        BtKey key;
        std::vector<uint8_t> value;
    };
    struct IntEntry
    {
        BtKey key;
        uint32_t child;
    };

    std::vector<LeafEntry> leafEntries;
    std::vector<IntEntry> intEntries;
};

Node
decode(const DbPage &page)
{
    Node n;
    const uint8_t *d = page.data.data();
    uint8_t type = d[0];
    uint16_t nkeys;
    std::memcpy(&nkeys, d + 2, 2);
    std::memcpy(&n.next, d + 4, 4);
    n.leaf = type != nodeInternal;
    if (n.leaf) {
        for (uint16_t i = 0; i < nkeys; i++) {
            const uint8_t *slot = d + 8 + i * leafSlotBytes;
            Node::LeafEntry e;
            std::memcpy(e.key.bytes, slot, btreeKeyBytes);
            uint32_t len;
            std::memcpy(&len, slot + btreeKeyBytes, 4);
            panic_if(len > btreeValueMax, "corrupt leaf slot");
            e.value.assign(slot + btreeKeyBytes + 4,
                           slot + btreeKeyBytes + 4 + len);
            n.leafEntries.push_back(std::move(e));
        }
    } else {
        for (uint16_t i = 0; i < nkeys; i++) {
            const uint8_t *slot = d + 8 + i * intSlotBytes;
            Node::IntEntry e;
            std::memcpy(e.key.bytes, slot, btreeKeyBytes);
            std::memcpy(&e.child, slot + btreeKeyBytes, 4);
            n.intEntries.push_back(e);
        }
    }
    return n;
}

void
encode(const Node &n, DbPage &page)
{
    uint8_t *d = page.data.data();
    std::memset(d, 0, dbPageBytes);
    d[0] = n.leaf ? nodeLeaf : nodeInternal;
    uint16_t nkeys = uint16_t(n.leaf ? n.leafEntries.size()
                                     : n.intEntries.size());
    std::memcpy(d + 2, &nkeys, 2);
    std::memcpy(d + 4, &n.next, 4);
    if (n.leaf) {
        panic_if(n.leafEntries.size() > leafCap, "leaf overflow");
        for (uint16_t i = 0; i < nkeys; i++) {
            uint8_t *slot = d + 8 + i * leafSlotBytes;
            const auto &e = n.leafEntries[i];
            std::memcpy(slot, e.key.bytes, btreeKeyBytes);
            uint32_t len = uint32_t(e.value.size());
            std::memcpy(slot + btreeKeyBytes, &len, 4);
            std::memcpy(slot + btreeKeyBytes + 4, e.value.data(), len);
        }
    } else {
        panic_if(n.intEntries.size() > internalCap,
                 "internal overflow");
        for (uint16_t i = 0; i < nkeys; i++) {
            uint8_t *slot = d + 8 + i * intSlotBytes;
            const auto &e = n.intEntries[i];
            std::memcpy(slot, e.key.bytes, btreeKeyBytes);
            std::memcpy(slot + btreeKeyBytes, &e.child, 4);
        }
    }
}

} // namespace

BtKey
BtKey::fromString(const std::string &s)
{
    BtKey k;
    std::memcpy(k.bytes, s.data(),
                std::min<size_t>(s.size(), btreeKeyBytes));
    return k;
}

BTree::BTree(PagedFile &f) : file(f) {}

uint32_t
BTree::rootPage()
{
    DbPage &hdr = file.get(0);
    uint32_t magic, root;
    std::memcpy(&magic, hdr.data.data(), 4);
    std::memcpy(&root, hdr.data.data() + 4, 4);
    panic_if(magic != btreeMagic, "not a MiniDb B+tree file");
    return root;
}

void
BTree::setRoot(uint32_t page_no)
{
    DbPage &hdr = file.get(0);
    file.markDirty(0);
    std::memcpy(hdr.data.data(), &btreeMagic, 4);
    std::memcpy(hdr.data.data() + 4, &page_no, 4);
}

void
BTree::create()
{
    panic_if(file.pageCount() != 0, "create on a non-empty file");
    file.appendPage(); // header
    uint32_t root = file.appendPage();
    Node empty;
    empty.leaf = true;
    DbPage &p = file.get(root);
    file.markDirty(root);
    encode(empty, p);
    setRoot(root);
}

BTree::SplitResult
BTree::insertInto(uint32_t page_no, const BtKey &key,
                  const void *value, uint32_t len, bool *inserted)
{
    SplitResult res;
    Node node = decode(file.get(page_no));

    if (node.leaf) {
        auto it = std::lower_bound(
            node.leafEntries.begin(), node.leafEntries.end(), key,
            [](const Node::LeafEntry &e, const BtKey &k) {
                return e.key < k;
            });
        const auto *bytes = static_cast<const uint8_t *>(value);
        if (it != node.leafEntries.end() && it->key == key) {
            it->value.assign(bytes, bytes + len);
            *inserted = false;
        } else {
            Node::LeafEntry e;
            e.key = key;
            e.value.assign(bytes, bytes + len);
            node.leafEntries.insert(it, std::move(e));
            *inserted = true;
        }

        if (node.leafEntries.size() > leafCap) {
            // Split: move the upper half right.
            size_t mid = node.leafEntries.size() / 2;
            Node right;
            right.leaf = true;
            right.next = node.next;
            right.leafEntries.assign(
                std::make_move_iterator(node.leafEntries.begin() +
                                        long(mid)),
                std::make_move_iterator(node.leafEntries.end()));
            node.leafEntries.resize(mid);

            uint32_t right_page = file.appendPage();
            node.next = right_page;
            DbPage &rp = file.get(right_page);
            file.markDirty(right_page);
            encode(right, rp);

            res.split = true;
            res.sepKey = right.leafEntries.front().key;
            res.rightPage = right_page;
        }

        DbPage &p = file.get(page_no);
        file.markDirty(page_no);
        encode(node, p);
        return res;
    }

    // Internal node: find the child to descend into.
    size_t idx = 0;
    while (idx < node.intEntries.size() &&
           !(key < node.intEntries[idx].key)) {
        idx++;
    }
    uint32_t child = idx == 0 ? node.next
                              : node.intEntries[idx - 1].child;

    SplitResult child_split =
        insertInto(child, key, value, len, inserted);
    if (!child_split.split)
        return res;

    // Re-read: the recursive call may have evicted our page.
    node = decode(file.get(page_no));
    Node::IntEntry e{child_split.sepKey, child_split.rightPage};
    auto it = std::lower_bound(
        node.intEntries.begin(), node.intEntries.end(),
        child_split.sepKey,
        [](const Node::IntEntry &a, const BtKey &k) {
            return a.key < k;
        });
    node.intEntries.insert(it, e);

    if (node.intEntries.size() > internalCap) {
        size_t mid = node.intEntries.size() / 2;
        Node right;
        right.leaf = false;
        // The middle key moves up; its child seeds the right node.
        res.sepKey = node.intEntries[mid].key;
        right.next = node.intEntries[mid].child;
        right.intEntries.assign(node.intEntries.begin() + long(mid) + 1,
                                node.intEntries.end());
        node.intEntries.resize(mid);

        uint32_t right_page = file.appendPage();
        DbPage &rp = file.get(right_page);
        file.markDirty(right_page);
        encode(right, rp);

        res.split = true;
        res.rightPage = right_page;
    }

    DbPage &p = file.get(page_no);
    file.markDirty(page_no);
    encode(node, p);
    return res;
}

bool
BTree::put(const BtKey &key, const void *value, uint32_t len)
{
    panic_if(len > btreeValueMax, "value of %u bytes too large", len);
    bool inserted = false;
    uint32_t root = rootPage();
    SplitResult split = insertInto(root, key, value, len, &inserted);
    if (split.split) {
        Node new_root;
        new_root.leaf = false;
        new_root.next = root;
        new_root.intEntries.push_back({split.sepKey, split.rightPage});
        uint32_t page = file.appendPage();
        DbPage &p = file.get(page);
        file.markDirty(page);
        encode(new_root, p);
        setRoot(page);
    }
    return inserted;
}

uint32_t
BTree::findLeaf(uint32_t page_no, const BtKey &key)
{
    for (;;) {
        Node node = decode(file.get(page_no));
        if (node.leaf)
            return page_no;
        size_t idx = 0;
        while (idx < node.intEntries.size() &&
               !(key < node.intEntries[idx].key)) {
            idx++;
        }
        page_no = idx == 0 ? node.next
                           : node.intEntries[idx - 1].child;
    }
}

std::optional<std::vector<uint8_t>>
BTree::get(const BtKey &key)
{
    uint32_t leaf = findLeaf(rootPage(), key);
    Node node = decode(file.get(leaf));
    for (const auto &e : node.leafEntries) {
        if (e.key == key)
            return e.value;
    }
    return std::nullopt;
}

bool
BTree::erase(const BtKey &key)
{
    uint32_t leaf = findLeaf(rootPage(), key);
    Node node = decode(file.get(leaf));
    for (auto it = node.leafEntries.begin();
         it != node.leafEntries.end(); ++it) {
        if (it->key == key) {
            node.leafEntries.erase(it);
            DbPage &p = file.get(leaf);
            file.markDirty(leaf);
            encode(node, p);
            return true;
        }
    }
    return false;
}

uint32_t
BTree::scan(const BtKey &start, uint32_t limit,
            const std::function<void(const BtKey &, const uint8_t *,
                                     uint32_t)> &visit)
{
    uint32_t visited = 0;
    uint32_t leaf = findLeaf(rootPage(), start);
    while (leaf != 0 && visited < limit) {
        Node node = decode(file.get(leaf));
        for (const auto &e : node.leafEntries) {
            if (visited >= limit)
                break;
            if (e.key < start)
                continue;
            visit(e.key, e.value.data(), uint32_t(e.value.size()));
            visited++;
        }
        leaf = node.next;
    }
    return visited;
}

uint32_t
BTree::height()
{
    uint32_t h = 1;
    uint32_t page = rootPage();
    for (;;) {
        Node node = decode(file.get(page));
        if (node.leaf)
            return h;
        page = node.next;
        h++;
    }
}

uint64_t
BTree::recordCount()
{
    uint64_t count = 0;
    uint32_t page = rootPage();
    // Descend to the leftmost leaf.
    for (;;) {
        Node node = decode(file.get(page));
        if (node.leaf)
            break;
        page = node.next;
    }
    while (page != 0) {
        Node node = decode(file.get(page));
        count += node.leafEntries.size();
        page = node.next;
    }
    return count;
}

void
BTree::checkInvariants()
{
    // 1. Every leaf is at the same depth and keys are globally
    //    ordered along the leaf chain.
    uint32_t page = rootPage();
    uint32_t depth = 1;
    for (;;) {
        Node node = decode(file.get(page));
        if (node.leaf)
            break;
        panic_if(node.intEntries.empty() && depth > 1,
                 "empty internal node");
        page = node.next;
        depth++;
    }
    uint32_t expected_height = height();
    panic_if(depth != expected_height, "leftmost depth mismatch");

    BtKey prev{};
    bool first = true;
    while (page != 0) {
        Node node = decode(file.get(page));
        panic_if(!node.leaf, "non-leaf on the leaf chain");
        for (const auto &e : node.leafEntries) {
            if (!first) {
                panic_if(!(prev < e.key),
                         "keys out of order along the leaf chain");
            }
            prev = e.key;
            first = false;
        }
        page = node.next;
    }
}

} // namespace xpc::apps
