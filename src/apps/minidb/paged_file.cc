#include "paged_file.hh"

#include <cstring>

#include "services/fs_server.hh"
#include "sim/logging.hh"

namespace xpc::apps {

using services::FsServer;

PagedFile::PagedFile(core::Transport &tr, hw::Core &c,
                     kernel::Thread &cl, core::ServiceId fs,
                     const std::string &path, uint32_t cache_pages)
    : transport(tr), core(c), client(cl), fsSvc(fs),
      capacity(cache_pages)
{
    panic_if(cache_pages == 0, "page cache needs at least one page");
    fd = FsServer::clientOpen(transport, core, client, fsSvc, path,
                              true);
    fatal_if(fd < 0, "cannot open database file '%s'", path.c_str());
    // Databases are created fresh in every experiment; the page
    // count grows through appendPage().
    numPages = 0;
}

void
PagedFile::adoptExisting()
{
    int64_t bytes = FsServer::clientStat(transport, core, client,
                                         fsSvc, fd);
    if (bytes > 0) {
        adoptPages(uint32_t((uint64_t(bytes) + dbPageBytes - 1) /
                            dbPageBytes));
    }
}

DbPage *
PagedFile::find(uint32_t page_no)
{
    for (auto &p : pages) {
        if (p.valid && p.pageNo == page_no) {
            p.lru = ++clock;
            return &p;
        }
    }
    return nullptr;
}

void
PagedFile::writeThrough(DbPage &page)
{
    pageWrites.inc();
    int64_t r = FsServer::clientWrite(
        transport, core, client, fsSvc, fd,
        uint64_t(page.pageNo) * dbPageBytes, page.data.data(),
        dbPageBytes);
    panic_if(r != int64_t(dbPageBytes), "short database page write");
    page.dirty = false;
}

void
PagedFile::evictOne()
{
    auto victim = pages.begin();
    if (preferCleanEviction) {
        // WAL discipline: pick the LRU *clean* page when one exists;
        // only write a dirty page home early if everything is dirty.
        auto clean = pages.end();
        for (auto it = pages.begin(); it != pages.end(); ++it) {
            if (!it->dirty &&
                (clean == pages.end() || it->lru < clean->lru))
                clean = it;
        }
        if (clean != pages.end()) {
            pages.erase(clean);
            return;
        }
    }
    for (auto it = pages.begin(); it != pages.end(); ++it) {
        if (it->lru < victim->lru)
            victim = it;
    }
    if (victim->dirty)
        writeThrough(*victim);
    pages.erase(victim);
}

DbPage &
PagedFile::get(uint32_t page_no)
{
    panic_if(page_no >= numPages, "page %u beyond the file", page_no);
    if (DbPage *hit = find(page_no)) {
        cacheHits.inc();
        return *hit;
    }
    cacheMisses.inc();

    if (pages.size() >= capacity)
        evictOne();

    pages.emplace_back();
    DbPage &p = pages.back();
    p.pageNo = page_no;
    p.valid = true;
    p.dirty = false;
    p.lru = ++clock;
    pageReads.inc();
    int64_t r = FsServer::clientRead(
        transport, core, client, fsSvc, fd,
        uint64_t(page_no) * dbPageBytes, p.data.data(), dbPageBytes);
    if (r < int64_t(dbPageBytes)) {
        // Sparse tail: unwritten bytes read as zero.
        std::memset(p.data.data() + (r > 0 ? r : 0), 0,
                    dbPageBytes - uint64_t(r > 0 ? r : 0));
    }
    return p;
}

void
PagedFile::markDirty(uint32_t page_no)
{
    DbPage *p = find(page_no);
    panic_if(!p, "markDirty on an uncached page %u", page_no);
    if (!p->dirty) {
        if (preImageHook) {
            // Capture the pre-image before anyone modifies it.
            // NOTE: callers must markDirty *before* writing.
            preImageHook(page_no, *p);
        }
        dirtyList.push_back(page_no);
    }
    p->dirty = true;
}

void
PagedFile::flushDirty()
{
    for (uint32_t page_no : dirtyList) {
        if (DbPage *p = find(page_no)) {
            if (p->dirty)
                writeThrough(*p);
        }
    }
    dirtyList.clear();
}

uint32_t
PagedFile::appendPage()
{
    uint32_t page_no = numPages++;
    // Materialize it in the cache as a zeroed page.
    if (pages.size() >= capacity)
        evictOne();
    pages.emplace_back();
    DbPage &p = pages.back();
    p.pageNo = page_no;
    p.valid = true;
    p.dirty = false;
    p.lru = ++clock;
    p.data.fill(0);
    return page_no;
}

} // namespace xpc::apps
