/**
 * @file
 * The YCSB core workloads (A-F) driving MiniDb, as in the paper's
 * Figure 1 and Figure 8 experiments: 1,000 records, Zipfian request
 * keys, the standard operation mixes.
 */

#ifndef XPC_APPS_YCSB_HH
#define XPC_APPS_YCSB_HH

#include <string>

#include "apps/minidb/minidb.hh"
#include "sim/random.hh"

namespace xpc::apps {

/** The six core workloads. */
enum class YcsbWorkload { A, B, C, D, E, F };

const char *ycsbName(YcsbWorkload w);

/** Configuration of one run. */
struct YcsbConfig
{
    uint64_t records = 1000;     ///< table size (paper 5.4)
    uint64_t operations = 500;   ///< ops per measured run
    uint64_t valueBytes = 1000;  ///< 10 fields x 100 B
    uint32_t maxScanLen = 100;
    uint64_t seed = 42;
};

/** Result of one run. */
struct YcsbResult
{
    uint64_t operations = 0;
    uint64_t reads = 0;
    uint64_t updates = 0;
    uint64_t inserts = 0;
    uint64_t scans = 0;
    Cycles totalCycles;

    double
    throughputOpsPerSec(double freq_hz) const
    {
        return double(operations) * freq_hz /
               double(totalCycles.value());
    }
};

/** The workload driver. */
class Ycsb
{
  public:
    explicit Ycsb(const YcsbConfig &config);

    /** Load phase: insert the records. */
    void load(MiniDb &db, hw::Core &core);

    /** Run phase for @p workload. */
    YcsbResult run(MiniDb &db, hw::Core &core, YcsbWorkload workload);

  private:
    YcsbConfig cfg;
    Rng rng;
    Zipfian zipf;
    uint64_t insertedKeys;

    std::string keyFor(uint64_t n) const;
    std::string nextRequestKey();
    void fillValue(std::vector<uint8_t> &value, uint64_t n);
};

} // namespace xpc::apps

#endif // XPC_APPS_YCSB_HH
