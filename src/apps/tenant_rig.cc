#include "tenant_rig.hh"

#include <cassert>
#include <cstring>

#include "sim/fault_injector.hh"
#include "sim/logging.hh"

namespace xpc::apps {

using namespace xpc::services;

namespace {

/** Pause injection for the duration of a recovery action. */
class ScopedCalm
{
  public:
    explicit ScopedCalm(FaultInjector *inj) : inj(inj)
    {
        if (inj) {
            was = inj->enabled;
            inj->enabled = false;
        }
    }
    ~ScopedCalm()
    {
        if (inj)
            inj->enabled = was;
    }

  private:
    FaultInjector *inj;
    bool was = false;
};

} // namespace

const char *const TenantRig::serviceNames[6] = {
    "blockdev", "cache", "crypto", "fs", "httpd", "kv",
};

TenantRig::TenantRig(const TenantRigOptions &options) : opts(options)
{
    core::SystemOptions sys_opts;
    sys_opts.flavor = options.flavor;
    sys_opts.runtimeOpts.timeoutCycles = options.timeoutCycles;
    sys_opts.deadlineCycles = options.deadlineCycles;
    sys = std::make_unique<core::System>(sys_opts);
    tr = &sys->transport();
    tr->enforceTenancy = options.enforceTenancy;

    // The name server is the one deliberately shared service: its
    // descriptor opts into sharedAcrossTenants, everything else a
    // tenant registers stays private to it.
    kernel::Thread &ns_t = sys->spawn("nameserver");
    ns = std::make_unique<NameServer>(*tr, ns_t);
    sup = std::make_unique<Supervisor>(*tr, *ns);

    policy.maxAttempts = 8;
    policy.deadlineCycles = Cycles(600000);
    if (options.breakers) {
        sup->breakerOpts.enabled = true;
        sup->breakerOpts.failureThreshold = 3;
        sup->breakerOpts.cooldownCycles = Cycles(60000);
    }

    panic_if(options.tenants < 1 || options.tenants > maxTenants,
             "tenants must be in 1..%u", maxTenants);
    for (uint32_t t = 0; t < options.tenants; t++) {
        stacks.emplace_back();
        stacks.back().tenant = tenantOf(t);
        buildStack(stacks.back());
    }
}

TenantRig::Stack &
TenantRig::stack(kernel::TenantId tenant)
{
    assert(tenant >= tenantA && tenant <= stacks.size());
    return stacks[tenant - tenantA];
}

void
TenantRig::buildStack(Stack &st)
{
    const kernel::TenantId tenant = st.tenant;
    st.client = &sys->spawn("client", 0, tenant);
    tr->connect(*st.client, ns->id()); // bootstrap cap: only the NS
    const std::string suffix = "@t" + std::to_string(tenant);
    st.admKv = std::make_unique<AdmissionController>("kv" + suffix);
    if (opts.admitAll) {
        st.admFs =
            std::make_unique<AdmissionController>("fs" + suffix);
        st.admHttp =
            std::make_unique<AdmissionController>("httpd" + suffix);
    }
    st.telFs = std::make_unique<ServiceTelemetry>("fs" + suffix);
    st.telHttp = std::make_unique<ServiceTelemetry>("httpd" + suffix);
    st.telKv = std::make_unique<ServiceTelemetry>("kv" + suffix);

    // Supervision sweeps a tenant's entries by name; the dependency
    // killers rely on "blockdev" < "fs" and "cache"/"crypto" <
    // "httpd" so a dependent killed during its dependency's restart
    // is itself rebuilt later in the same sweep.
    core::ServiceId id = makeBlockdev(st);
    ns->bind("blockdev", id, tenant);
    sup->supervise("blockdev", *st.devT, id,
                   [this, &st](kernel::Thread *&srv) {
                       ScopedCalm calm(sys->machine().faultInjector());
                       // A fresh blank disk invalidates the mounted
                       // volume: this tenant's fs server must go down
                       // with it and remount.
                       killProcessOf(st.fsT);
                       core::ServiceId fresh = makeBlockdev(st);
                       srv = st.devT;
                       return fresh;
                   });

    id = makeFs(st);
    ns->bind("fs", id, tenant);
    sup->supervise("fs", *st.fsT, id, [this, &st](kernel::Thread *&srv) {
        ScopedCalm calm(sys->machine().faultInjector());
        core::ServiceId fresh = makeFs(st);
        srv = st.fsT;
        return fresh;
    });
    if (st.admFs)
        sup->setAdmission("fs", st.admFs.get(), tenant);

    id = makeCache(st);
    ns->bind("cache", id, tenant);
    sup->supervise("cache", *st.cacheT, id,
                   [this, &st](kernel::Thread *&srv) {
                       ScopedCalm calm(sys->machine().faultInjector());
                       // This tenant's http server holds the dead
                       // instance's id; rebuild it against the fresh
                       // one.
                       killProcessOf(st.httpT);
                       core::ServiceId fresh = makeCache(st);
                       srv = st.cacheT;
                       return fresh;
                   });

    id = makeCrypto(st);
    ns->bind("crypto", id, tenant);
    sup->supervise("crypto", *st.cryptoT, id,
                   [this, &st](kernel::Thread *&srv) {
                       ScopedCalm calm(sys->machine().faultInjector());
                       killProcessOf(st.httpT);
                       core::ServiceId fresh = makeCrypto(st);
                       srv = st.cryptoT;
                       return fresh;
                   });

    id = makeHttp(st);
    ns->bind("httpd", id, tenant);
    sup->supervise("httpd", *st.httpT, id,
                   [this, &st](kernel::Thread *&srv) {
                       ScopedCalm calm(sys->machine().faultInjector());
                       core::ServiceId fresh = makeHttp(st);
                       srv = st.httpT;
                       return fresh;
                   });
    if (st.admHttp)
        sup->setAdmission("httpd", st.admHttp.get(), tenant);

    id = makeKv(st);
    ns->bind("kv", id, tenant);
    sup->supervise("kv", *st.kvT, id, [this, &st](kernel::Thread *&srv) {
        ScopedCalm calm(sys->machine().faultInjector());
        core::ServiceId fresh = makeKv(st);
        srv = st.kvT;
        return fresh;
    });
    sup->setAdmission("kv", st.admKv.get(), tenant);
}

void
TenantRig::killProcessOf(kernel::Thread *t)
{
    if (t && t->process() && !t->process()->dead)
        sys->manager().onProcessExit(*t->process());
}

core::ServiceId
TenantRig::makeBlockdev(Stack &st)
{
    st.devT = &sys->spawn("blockdev", 0, st.tenant);
    devs.push_back(std::make_unique<BlockDeviceServer>(*tr, *st.devT,
                                                       diskBlocks));
    return devs.back()->id();
}

core::ServiceId
TenantRig::makeFs(Stack &st)
{
    st.fsT = &sys->spawn("fs", 0, st.tenant);
    core::ServiceId dev = sup->currentId("blockdev", st.tenant);
    tr->connect(*st.fsT, dev);
    fss.push_back(std::make_unique<FsServer>(*tr, *st.fsT, dev,
                                             diskBlocks));
    fss.back()->setAdmission(st.admFs.get());
    fss.back()->setTelemetry(st.telFs.get());
    return fss.back()->id();
}

core::ServiceId
TenantRig::makeCache(Stack &st)
{
    st.cacheT = &sys->spawn("webcache", 0, st.tenant);
    caches.push_back(std::make_unique<FileCacheServer>(*tr, *st.cacheT));
    std::vector<uint8_t> page(1500);
    for (size_t i = 0; i < page.size(); i++)
        page[i] = uint8_t('A' + (i % 26));
    caches.back()->preload("/index.html", page);
    return caches.back()->id();
}

core::ServiceId
TenantRig::makeCrypto(Stack &st)
{
    st.cryptoT = &sys->spawn("crypto", 0, st.tenant);
    static const uint8_t key[crypto::Aes128::keyBytes] = {
        0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6,
        0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c};
    cryptos.push_back(std::make_unique<CryptoServer>(*tr, *st.cryptoT,
                                                     key));
    return cryptos.back()->id();
}

core::ServiceId
TenantRig::makeHttp(Stack &st)
{
    st.httpT = &sys->spawn("httpd", 0, st.tenant);
    core::ServiceId cache_id = sup->currentId("cache", st.tenant);
    core::ServiceId crypto_id = sup->currentId("crypto", st.tenant);
    tr->connect(*st.httpT, cache_id);
    tr->connect(*st.httpT, crypto_id);
    https.push_back(std::make_unique<HttpServer>(
        *tr, *st.httpT, cache_id, crypto_id, /*encrypt=*/true,
        httpMaxBody));
    https.back()->setAdmission(st.admHttp.get());
    https.back()->setTelemetry(st.telHttp.get());
    return https.back()->id();
}

core::ServiceId
TenantRig::makeKv(Stack &st)
{
    st.kvT = &sys->spawn("kv", 0, st.tenant);
    kvs.push_back(std::make_unique<KvServer>(*tr, *st.kvT));
    kvs.back()->setAdmission(st.admKv.get());
    kvs.back()->setTelemetry(st.telKv.get());
    return kvs.back()->id();
}

void
TenantRig::killOne(kernel::TenantId tenant, unsigned k)
{
    Stack &st = stack(tenant);
    kernel::Thread *victims[6] = {st.devT,    st.fsT,   st.cacheT,
                                  st.cryptoT, st.httpT, st.kvT};
    killProcessOf(victims[k % 6]);
}

void
TenantRig::killAll(kernel::TenantId tenant)
{
    for (unsigned k = 0; k < 6; k++)
        killOne(tenant, k);
}

bool
TenantRig::allUp(kernel::TenantId tenant) const
{
    for (const char *name : serviceNames)
        if (sup->isDown(name, tenant))
            return false;
    return true;
}

int64_t
TenantRig::fsOp(kernel::TenantId tenant, proto::FsOp op,
                const proto::FsMsg &msg, const void *payload,
                uint64_t plen, void *rdata, uint64_t rcap)
{
    using namespace proto;
    std::vector<uint8_t> req(fsDataOffset + plen);
    packInto(req.data(), msg);
    if (plen > 0)
        std::memcpy(req.data() + fsDataOffset, payload, plen);
    std::vector<uint8_t> rep(fsDataOffset + rcap);
    int64_t rlen = sup->callWithRetry(
        sys->core(0), *stack(tenant).client, "fs", uint64_t(op),
        req.data(), req.size(), rep.data(), rep.size(), policy);
    if (rlen < int64_t(sizeof(FsMsg)))
        return callFailed;
    FsMsg reply = unpackFrom<FsMsg>(rep.data());
    if (reply.a > 0 && rdata) {
        uint64_t n = std::min<uint64_t>(uint64_t(reply.a), rcap);
        std::memcpy(rdata, rep.data() + fsDataOffset, n);
    }
    return reply.a;
}

int64_t
TenantRig::httpGet(kernel::TenantId tenant, const std::string &path,
                   std::string *response, uint64_t *garbled)
{
    using namespace proto;
    std::string text = "GET " + path + " HTTP/1.1\r\n\r\n";
    std::vector<uint8_t> req(sizeof(HttpReplyHeader) + text.size(), 0);
    std::memcpy(req.data() + sizeof(HttpReplyHeader), text.data(),
                text.size());
    std::vector<uint8_t> rep(HttpServer::bodyOff + httpMaxBody + 64);
    int64_t rlen = sup->callWithRetry(
        sys->core(0), *stack(tenant).client, "httpd",
        uint64_t(HttpOp::Request), req.data(), req.size(), rep.data(),
        rep.size(), policy);
    if (rlen < int64_t(sizeof(HttpReplyHeader)))
        return callFailed;
    auto pre = unpackFrom<HttpReplyHeader>(rep.data());
    if (pre.respOff + pre.respLen > uint64_t(rlen)) {
        if (garbled)
            (*garbled)++; // a successful call must frame its reply
        return callFailed;
    }
    if (response)
        response->assign(rep.begin() + pre.respOff,
                         rep.begin() + pre.respOff + pre.respLen);
    return int64_t(pre.respLen);
}

bool
TenantRig::kvPut(kernel::TenantId tenant, uint64_t key)
{
    auto val = KvServer::valueFor(key);
    std::vector<uint8_t> req(8 + val.size());
    std::memcpy(req.data(), &key, 8);
    std::memcpy(req.data() + 8, val.data(), val.size());
    return sup->callWithRetry(sys->core(0), *stack(tenant).client,
                              "kv", KvServer::opPut, req.data(),
                              req.size(), nullptr, 0, policy) >= 0;
}

int
TenantRig::kvGet(kernel::TenantId tenant, uint64_t key)
{
    uint8_t rep[KvServer::valueBytes] = {};
    int64_t r = sup->callWithRetry(sys->core(0),
                                   *stack(tenant).client, "kv",
                                   KvServer::opGet, &key, sizeof(key),
                                   rep, sizeof(rep), policy);
    if (r < 0)
        return -1;
    if (r == 0)
        return 0;
    auto want = KvServer::valueFor(key);
    if (r != int64_t(want.size()))
        return -2;
    return std::memcmp(rep, want.data(), want.size()) == 0 ? 1 : -2;
}

void
TenantRig::runMix(kernel::TenantId tenant, int i, OpCounts &counts)
{
    auto note = [&](bool clean_ok) {
        if (clean_ok) {
            counts.ok++;
        } else {
            counts.failed++;
            // A failed operation must carry a named error status.
            if (sup->lastStatus == core::TransportStatus::Ok)
                counts.unexplained++;
        }
        // Invariant: no operation ever leaves the core mid-chain.
        if (sys->core(0).csrs.linkTop != 0)
            counts.leakedLinkage++;
    };

    // --- fs workload: open / write / read back / close ---
    std::string path = "/f" + std::to_string(i % 8);
    proto::FsMsg om;
    om.a = int64_t(proto::fsOpenCreate);
    om.c = int64_t(path.size());
    int64_t fd = fsOp(tenant, proto::FsOp::Open, om, path.data(),
                      path.size(), nullptr, 0);
    note(fd != callFailed);
    if (fd >= 0) {
        std::vector<uint8_t> data(1024);
        for (size_t j = 0; j < data.size(); j++)
            data[j] = uint8_t(i + 3 * j);
        proto::FsMsg wm;
        wm.a = fd;
        wm.b = int64_t((i % 4) * 1024);
        wm.c = int64_t(data.size());
        int64_t w = fsOp(tenant, proto::FsOp::Write, wm, data.data(),
                         data.size(), nullptr, 0);
        note(w != callFailed);

        proto::FsMsg cm;
        cm.a = fd;
        int64_t c = fsOp(tenant, proto::FsOp::Close, cm, nullptr, 0,
                         nullptr, 0);
        note(c != callFailed);
    }

    // --- web workload: GET through http -> cache -> crypto ---
    std::string resp;
    int64_t n = httpGet(tenant,
                        (i % 3 == 0) ? "/missing.html" : "/index.html",
                        &resp, &counts.corrupt);
    note(n != callFailed);
    if (n > 0 && resp.rfind("HTTP/1.1 ", 0) != 0)
        counts.corrupt++;

    // --- ycsb-ish kv workload: put then read-verify ---
    uint64_t key = 1 + (uint64_t(i) * 7) % 32;
    note(kvPut(tenant, key));
    int g = kvGet(tenant, key);
    note(g != -1);
    if (g == -2)
        counts.corrupt++;
}

} // namespace xpc::apps
