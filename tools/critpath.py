#!/usr/bin/env python3
"""Per-request critical-path profiler over an XPC simulator trace.

Usage:
    critpath.py [--req ID] [--top] [--check] TRACE.json

TRACE.json is the Chrome/Perfetto trace_event file written by
trace::Tracer::exportChromeJson (e.g. by `XPC_TRACE=1
examples/web_chain`). Every span the simulator records is stamped with
the request chain that caused it ("args":{"req":N}); this tool
rebuilds each request's span tree and attributes every cycle of the
request's end-to-end window to the innermost span active at that
instant, exactly like the in-simulator analyzer (src/sim/critpath.cc).

The invariant this enforces: the per-span cycle totals of one request
sum to exactly its end-to-end simulated cycles. Gaps no span claims
are reported as "(untracked)" rather than dropped. --check exits
non-zero if any request violates the invariant (it should never).

Timestamps are simulated cycles (exported 1 cycle = 1 us).

Exit status: 0 = ok, 1 = --check failed, 2 = usage/IO error.
"""

import argparse
import json
import sys
from collections import defaultdict


def load_events(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"critpath: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)
    events = doc.get("traceEvents", doc if isinstance(doc, list) else [])
    return events


def lane_names(events):
    names = {}
    for ev in events:
        if ev.get("ph") == "M" and ev.get("name") == "thread_name" \
                and "tid" in ev:
            names[ev["tid"]] = ev.get("args", {}).get("name", "")
    return names


class Request:
    def __init__(self, rid):
        self.id = rid
        self.intervals = []   # (begin, end, name, tid, seq, clamped)
        self.open = []        # [tid, cat, name, begin, seq]
        self.lanes = set()
        self.flow_start = False
        self.flow_end = False
        self.last_ts = 0
        self.clamped = False
        self.mem = defaultdict(int)
        self.outcome = None   # terminal status name, from "outcome"
        self.tenant = None    # tenant id, from "tenant" instants
                              # (only stamped in multi-tenant runs)


def build(events):
    """Pair B/E spans per request in record order."""
    reqs = {}
    window_start = min((e["ts"] for e in events if "ts" in e),
                       default=0)

    def req_of(ev):
        args = ev.get("args", {})
        ph = ev.get("ph")
        if ph in ("s", "t", "f"):
            return ev.get("id", 0)
        return args.get("req", 0)

    for seq, ev in enumerate(events):
        ph = ev.get("ph")
        rid = req_of(ev)
        if not rid or ph == "M":
            continue
        r = reqs.setdefault(rid, Request(rid))
        ts = ev.get("ts", 0)
        r.last_ts = max(r.last_ts, ts)
        tid = ev.get("tid", 0)
        key = (tid, ev.get("cat", ""), ev.get("name", ""))
        if ph == "B":
            r.open.append([key, ts, seq])
            r.lanes.add(tid)
        elif ph == "E":
            for i in range(len(r.open) - 1, -1, -1):
                if r.open[i][0] == key:
                    _, begin, bseq = r.open.pop(i)
                    r.intervals.append(
                        (begin, ts, key[2], tid, bseq, False))
                    break
            else:
                # Begin lost to ring wraparound: clamp to the window.
                r.intervals.append(
                    (window_start, ts, key[2], tid, -1, True))
                r.clamped = True
            r.lanes.add(tid)
        elif ph == "s":
            r.flow_start = True
            r.lanes.add(tid)
        elif ph == "f":
            r.flow_end = True
            r.lanes.add(tid)
        elif ph == "t":
            r.lanes.add(tid)
        elif ph == "i" and ev.get("name") == "outcome":
            # Emitted once per top-level call with the terminal
            # CallStatus name as the text payload.
            r.outcome = ev.get("args", {}).get("msg", "")
        elif ph == "i" and ev.get("name") == "tenant":
            # Caller's tenant id (decimal text), stamped alongside the
            # outcome for non-default tenants only.
            try:
                r.tenant = int(ev.get("args", {}).get("msg", ""))
            except ValueError:
                pass
        elif ph == "i" and ev.get("cat") == "mem":
            name = ev.get("name", "")
            if name in ("tlb_miss_fill", "l1_miss_fill"):
                r.mem[name] += 1
                r.mem[name + ".cycles"] += ev.get("args", {}).get(
                    "v", 0)

    for r in reqs.values():
        for key, begin, bseq in r.open:
            # A span that never closed (crash, trace cut mid-call).
            end = max(r.last_ts, begin)
            r.intervals.append((begin, end, key[2], key[0], bseq, True))
            r.clamped = True
        r.open = []
    return reqs


def sweep(r):
    """Attribute every slice of the request window to the innermost
    active span. Returns (path, totals, start, end)."""
    if not r.intervals:
        return [], {}, 0, 0
    start = min(iv[0] for iv in r.intervals)
    end = max(iv[1] for iv in r.intervals)
    cuts = sorted({ts for iv in r.intervals for ts in (iv[0], iv[1])})
    totals = defaultdict(int)
    path = []
    for lo, hi in zip(cuts, cuts[1:]):
        # innermost: latest begin, then earliest end, then latest seq
        best = None
        for begin, iend, name, tid, seq, _ in r.intervals:
            if begin > lo or iend < hi:
                continue
            cand = (begin, -iend, seq, name, tid)
            if best is None or cand > best:
                best = cand
        if best is None:
            name, tid = "(untracked)", 0
        else:
            name, tid = best[3], best[4]
        totals[name] += hi - lo
        if path and path[-1][0] == name and path[-1][1] == tid:
            path[-1][3] += hi - lo
        else:
            path.append([name, tid, lo, hi - lo])
    return path, dict(totals), start, end


# CallStatus name -> coarse outcome class. Anything else (copy faults,
# dead servers, ...) keeps its raw status name.
OUTCOME_CLASSES = {
    "ok": "ok",
    "timeout": "timeout",
    "deadline-expired": "timeout",
    "overloaded": "shed",
    "breaker-open": "breaker-open",
}


def outcome_class(status):
    if status is None:
        return "-"
    return OUTCOME_CLASSES.get(status, status)


def lane_label(names, tid):
    if tid in names:
        return names[tid]
    return f"thread{tid - 1000}" if tid >= 1000 else f"core{tid}"


def report_request(r, names):
    path, totals, start, end = sweep(r)
    total = end - start
    attributed = sum(totals.values())
    flags = []
    if r.flow_start and r.flow_end:
        flags.append("flow closed")
    if r.clamped:
        flags.append("INCOMPLETE (spans clamped)")
    if r.outcome is not None:
        flags.append(f"outcome {outcome_class(r.outcome)}")
    extra = (", " + ", ".join(flags)) if flags else ""
    print(f"request #{r.id}: {total} cycles, "
          f"{len(r.lanes)} lane(s){extra}")
    print("  critical path:")
    for name, tid, begin, cycles in path:
        print(f"    {begin:>10}  +{cycles:<8} "
              f"{lane_label(names, tid):<12} {name}")
    print("  by span:")
    for name, cycles in sorted(totals.items(), key=lambda kv: -kv[1]):
        share = 100.0 * cycles / total if total else 0.0
        print(f"    {name:<16} {cycles:>10}  {share:5.1f}%")
    if r.mem:
        tw = r.mem.get("tlb_miss_fill", 0)
        twc = r.mem.get("tlb_miss_fill.cycles", 0)
        l1 = r.mem.get("l1_miss_fill", 0)
        l1c = r.mem.get("l1_miss_fill.cycles", 0)
        print(f"  memory: {tw} TLB walk(s) ({twc} cyc), "
              f"{l1} L1 fill(s) ({l1c} cyc)")
    ok = attributed == total
    print(f"  attribution check: {attributed} / {total} cycles "
          f"({'exact' if ok else 'MISMATCH'})")
    return ok


def tenant_label(tenant):
    return "-" if tenant is None else f"t{tenant}"


def report_top(reqs):
    """xpctop-style aggregate across every request."""
    span_totals = defaultdict(int)
    durations = []
    rows = []
    # End-to-end durations bucketed by outcome class: shed requests
    # are cheap and fast, timeouts pin the tail, so one blended
    # percentile hides exactly the split that matters.
    outcome_durations = defaultdict(list)
    # Outcome counts split by tenant; only printed when some request
    # carries a tenant stamp, so single-tenant output is unchanged.
    tenant_counts = defaultdict(lambda: defaultdict(int))
    tenanted = False
    for rid in sorted(reqs):
        r = reqs[rid]
        _, totals, start, end = sweep(r)
        durations.append(end - start)
        rows.append((rid, end - start, outcome_class(r.outcome),
                     r.tenant))
        outcome_durations[outcome_class(r.outcome)].append(end - start)
        tenant_counts[r.tenant][outcome_class(r.outcome)] += 1
        if r.tenant is not None:
            tenanted = True
        for name, cycles in totals.items():
            span_totals[name] += cycles
    durations.sort()
    grand = sum(span_totals.values())

    def quantile_of(sorted_vals, q):
        if not sorted_vals:
            return 0
        return sorted_vals[min(len(sorted_vals) - 1,
                               int(q * len(sorted_vals)))]

    def quantile(q):
        return quantile_of(durations, q)

    print(f"critpath top: {len(reqs)} request(s), end-to-end "
          f"p50 {quantile(0.5)} / p99 {quantile(0.99)} cycles")
    print("  outcomes:")
    for outcome, durs in sorted(outcome_durations.items()):
        durs = sorted(durs)
        print(f"    {outcome:<14} {len(durs):>6}  "
              f"p50 {quantile_of(durs, 0.5):>8}  "
              f"p99 {quantile_of(durs, 0.99):>8} cyc")
    if tenanted:
        for tenant in sorted(tenant_counts,
                             key=lambda t: (t is None, t)):
            counts = tenant_counts[tenant]
            print(f"  outcomes[{tenant_label(tenant)}]: " +
                  ", ".join(f"{k} {v}" for k, v in
                            sorted(counts.items())))
    for name, cycles in sorted(span_totals.items(),
                               key=lambda kv: -kv[1]):
        share = 100.0 * cycles / grand if grand else 0.0
        print(f"  {name:<16} {cycles:>12}  {share:5.1f}%")
    if tenanted:
        print(f"  {'req':>8}  {'cycles':>10}  {'tenant':>6}  outcome")
        for rid, cycles, outcome, tenant in rows:
            print(f"  {'#' + str(rid):>8}  {cycles:>10}  "
                  f"{tenant_label(tenant):>6}  {outcome}")
    else:
        print(f"  {'req':>8}  {'cycles':>10}  outcome")
        for rid, cycles, outcome, _ in rows:
            print(f"  {'#' + str(rid):>8}  {cycles:>10}  {outcome}")


def main():
    ap = argparse.ArgumentParser(
        description="Critical-path profiler for XPC simulator traces.")
    ap.add_argument("trace", help="Chrome trace_event JSON file")
    ap.add_argument("--req", type=int, default=None,
                    help="report only this request id")
    ap.add_argument("--top", action="store_true",
                    help="print only the aggregate (xpctop) view")
    ap.add_argument("--check", action="store_true",
                    help="exit 1 unless every request's span cycles "
                         "sum to its end-to-end cycles")
    args = ap.parse_args()

    events = load_events(args.trace)
    names = lane_names(events)
    reqs = build(events)
    reqs = {rid: r for rid, r in reqs.items() if r.intervals}
    if not reqs:
        # An empty or header-only trace (e.g. XPC_TRACE off, or a run
        # that made no calls) is not an error: there is simply nothing
        # to profile.
        print("critpath: no spans in the trace; nothing to profile")
        sys.exit(0)
    if args.req is not None:
        if args.req not in reqs:
            print(f"critpath: request {args.req} not in the trace "
                  f"(have: {sorted(reqs)})", file=sys.stderr)
            sys.exit(2)
        reqs = {args.req: reqs[args.req]}

    all_ok = True
    if args.top:
        report_top(reqs)
    else:
        for rid in sorted(reqs):
            all_ok = report_request(reqs[rid], names) and all_ok
        if len(reqs) > 1:
            print()
            report_top(reqs)
    if args.check and not all_ok:
        print("critpath: attribution mismatch", file=sys.stderr)
        sys.exit(1)
    sys.exit(0)


if __name__ == "__main__":
    main()
