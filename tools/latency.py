#!/usr/bin/env python3
"""Render and gate the goodput-vs-offered-load sweep of bench_tail.

Usage:
    latency.py [--check] [--retention MIN] BENCH_tail.json

Reads the report written by bench/bench_tail.cc and prints the
goodput-vs-offered-load curve (an ASCII plot plus the per-point
table) and the per-service latency percentiles at every sweep point.

When the report carries the breakers-armed sweep
(goodput_per_mcycle.breakers.*) the tool renders both curves side by
side: below the knee they coincide (the breakers never trip), past it
quarantine makes excess requests fail fast instead of queueing - the
measured effect of arming breakers under overload.

With --check the tool also gates the open-loop acceptance claims and
exits non-zero when any fails:
  * the same-seed replay was byte-identical (same_seed_identical == 1)
  * goodput saturates instead of collapsing: goodput at the highest
    overload point retains at least --retention (default 0.75) of the
    goodput at the knee (1x)
  * every sweep point carries non-empty per-service distributions
    with finite p50/p99/p999
  * when the breakers sweep is present, its retention metric exists
    (the cliff is measured, not asserted: no minimum is imposed)

Exit status: 0 = ok, 1 = a --check claim failed, 2 = usage/IO error.
"""

import argparse
import json
import math
import sys


def load(path):
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, ValueError) as e:
        print(f"error: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)


def sweep_points(metrics):
    """[(multiplier, offered, goodput)] sorted by multiplier."""
    points = []
    for key, offered in metrics.items():
        if not key.startswith("offered_per_mcycle."):
            continue
        tag = key.split(".", 1)[1]  # "0.25x"
        mult = float(tag[:-1])
        goodput = metrics.get("goodput_per_mcycle." + tag)
        if goodput is None:
            continue
        points.append((mult, tag, offered, goodput))
    return sorted(points)


def ascii_curve(points, width=48):
    top = max(max(o for _, _, o, _ in points),
              max(g for _, _, _, g in points))
    if top <= 0:
        return
    print("\n  goodput (#) vs offered (|) per Mcycle")
    for _, tag, offered, goodput in points:
        gbar = int(round(goodput / top * width))
        obar = int(round(offered / top * width))
        line = ["."] * (width + 1)
        for i in range(min(gbar, width)):
            line[i] = "#"
        line[min(obar, width)] = "|"
        print(f"  {tag:>6} {''.join(line)} {goodput:7.1f}")


def main():
    ap = argparse.ArgumentParser(
        description="render/gate the bench_tail sweep")
    ap.add_argument("report", help="BENCH_tail.json")
    ap.add_argument("--check", action="store_true",
                    help="gate the acceptance claims")
    ap.add_argument("--retention", type=float, default=0.75,
                    help="min goodput retention at max overload")
    args = ap.parse_args()

    report = load(args.report)
    metrics = report.get("metrics", {})
    dists = report.get("distributions", {})
    points = sweep_points(metrics)
    if not points:
        print("error: no sweep points in report", file=sys.stderr)
        sys.exit(2)

    cap = metrics.get("capacity_per_mcycle")
    if cap is not None:
        print(f"calibrated capacity: {cap:.1f} req/Mcycle")
    ascii_curve(points)

    breaker_points = [
        (m, tag, o, metrics[f"goodput_per_mcycle.breakers.{tag}"])
        for m, tag, o, _ in points
        if f"goodput_per_mcycle.breakers.{tag}" in metrics]
    if breaker_points:
        print("\n  same sweep, circuit breakers armed:")
        ascii_curve(breaker_points)
        ret = metrics.get("overload_goodput_retention")
        bret = metrics.get("overload_goodput_retention.breakers")
        if ret is not None and bret is not None:
            print(f"\n  2x retention: {ret:.2f} breakers-off vs "
                  f"{bret:.2f} breakers-on")

    services = ("kv", "httpd", "fs")
    print(f"\n  {'point':>6} {'offered':>8} {'goodput':>8}  "
          + "  ".join(f"{s + ' p50/p99/p999':>24}" for s in services))
    for _, tag, offered, goodput in points:
        cells = []
        for svc in services:
            d = dists.get(f"{tag}.{svc}")
            if d:
                cells.append(f"{d['p50']:.0f}/{d['p99']:.0f}/"
                             f"{d['p999']:.0f}".rjust(24))
            else:
                cells.append("-".rjust(24))
        print(f"  {tag:>6} {offered:8.1f} {goodput:8.1f}  "
              + "  ".join(cells))

    if not args.check:
        return

    failures = []
    if metrics.get("same_seed_identical") != 1:
        failures.append("same-seed replay was not byte-identical")

    knee = next((g for m, _, _, g in points if m == 1.0), None)
    peak_mult, _, _, peak_goodput = points[-1]
    if knee is None or knee <= 0:
        failures.append("no 1x knee point in the sweep")
    elif peak_mult > 1.0 and peak_goodput < args.retention * knee:
        failures.append(
            f"goodput collapsed: {peak_goodput:.1f} at {peak_mult}x "
            f"< {args.retention} * {knee:.1f} at 1x")

    if breaker_points and \
            metrics.get("overload_goodput_retention.breakers") is None:
        failures.append("breakers sweep present but its retention "
                        "metric is missing")

    for _, tag, _, _ in points:
        for svc in services:
            d = dists.get(f"{tag}.{svc}")
            if not d or d.get("count", 0) == 0:
                failures.append(f"missing distribution {tag}.{svc}")
                continue
            for q in ("p50", "p99", "p999"):
                v = d.get(q)
                if v is None or not math.isfinite(v):
                    failures.append(f"{tag}.{svc}.{q} not finite")

    if failures:
        print("\nCHECK FAILED:", file=sys.stderr)
        for f in failures:
            print(f"  - {f}", file=sys.stderr)
        sys.exit(1)
    print("\ncheck ok: deterministic, saturating, fully "
          "distributed-percentiled")


if __name__ == "__main__":
    main()
