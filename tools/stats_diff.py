#!/usr/bin/env python3
"""Compare two BENCH_*.json reports and fail on regressions.

Usage:
    stats_diff.py [--threshold PCT] [--all-metrics] BASELINE CURRENT

Both inputs are files written by xpc::bench::BenchReport (or
directories holding several of them, compared pairwise by file name).
Every numeric entry under "metrics" and "phases" is compared; an entry
counts as a regression when the current value is worse than the
baseline by more than --threshold percent (default 0: the simulator is
deterministic, so any drift is a real change).

"Worse" is direction-aware: throughput-like keys (containing ops,
MBps, rps, per_sec, throughput, speedup, normalized) regress when they
shrink, everything else (cycles, latency, us, ms) regresses when it
grows. Keys present on only one side are reported but are not
failures, so adding a metric does not break the gate.

Non-finite values (NaN/Infinity leak through from empty
distributions; Python's json accepts those tokens) are skipped with a
warning rather than compared: NaN != NaN would otherwise count every
empty-stat entry as a change, and inf deltas are meaningless.

Exit status: 0 = no regression, 1 = regression, 2 = usage/IO error.
"""

import argparse
import json
import math
import os
import sys

HIGHER_IS_BETTER = ("ops", "mbps", "rps", "per_sec", "throughput",
                    "speedup", "normalized", "share")


def flatten(report, origin="?"):
    """Numeric leaves of the comparable sections, as {path: value}."""
    out = {}
    for section in ("metrics", "phases"):
        for key, val in report.get(section, {}).items():
            if isinstance(val, (int, float)) and val is not True \
                    and val is not False:
                if not math.isfinite(val):
                    print(f"stats_diff: warning: skipping non-finite "
                          f"{section}.{key} = {val} in {origin}",
                          file=sys.stderr)
                    continue
                out[f"{section}.{key}"] = float(val)
    return out


def higher_is_better(key):
    low = key.lower()
    return any(tag in low for tag in HIGHER_IS_BETTER)


def compare(base, cur, threshold_pct):
    """@return (regressions, improvements, missing) lists of text."""
    regressions, improvements, missing = [], [], []
    for key in sorted(set(base) | set(cur)):
        if key not in base:
            missing.append(f"  only in current:  {key}")
            continue
        if key not in cur:
            missing.append(f"  only in baseline: {key}")
            continue
        b, c = base[key], cur[key]
        if b == c:
            continue
        delta = c - b
        pct = (delta / abs(b) * 100.0) if b != 0 else float("inf")
        worse = -pct if higher_is_better(key) else pct
        line = f"  {key}: {b:g} -> {c:g} ({pct:+.2f}%)"
        if worse > threshold_pct:
            regressions.append(line)
        else:
            improvements.append(line)
    return regressions, improvements, missing


def load(path):
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"stats_diff: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)


def pair_up(base, cur):
    """Yield (name, base_path, cur_path) for files or directories."""
    if os.path.isfile(base) and os.path.isfile(cur):
        yield os.path.basename(cur), base, cur
        return
    if not (os.path.isdir(base) and os.path.isdir(cur)):
        print("stats_diff: arguments must both be files or both be "
              "directories", file=sys.stderr)
        sys.exit(2)
    names = sorted(n for n in os.listdir(base)
                   if n.startswith("BENCH_") and n.endswith(".json"))
    if not names:
        print(f"stats_diff: no BENCH_*.json under {base}",
              file=sys.stderr)
        sys.exit(2)
    for name in names:
        cur_path = os.path.join(cur, name)
        if not os.path.exists(cur_path):
            print(f"stats_diff: {name} missing from {cur}",
                  file=sys.stderr)
            sys.exit(2)
        yield name, os.path.join(base, name), cur_path


def main():
    ap = argparse.ArgumentParser(
        description="Compare two BenchReport JSON files/directories.")
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument("--threshold", type=float, default=0.0,
                    metavar="PCT",
                    help="tolerated regression in percent (default 0)")
    args = ap.parse_args()

    failed = False
    for name, base_path, cur_path in pair_up(args.baseline,
                                             args.current):
        regs, imps, miss = compare(flatten(load(base_path), base_path),
                                   flatten(load(cur_path), cur_path),
                                   args.threshold)
        if regs:
            failed = True
            print(f"{name}: {len(regs)} regression(s) beyond "
                  f"{args.threshold:g}%:")
            print("\n".join(regs))
        elif imps or miss:
            print(f"{name}: no regressions "
                  f"({len(imps)} other change(s))")
        else:
            print(f"{name}: identical")
        for block in (imps, miss):
            if block:
                print("\n".join(block))
    sys.exit(1 if failed else 0)


if __name__ == "__main__":
    main()
