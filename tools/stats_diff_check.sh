#!/bin/sh
# Determinism gate: run a bench twice into two report directories and
# require the BENCH_*.json reports to be identical (0% threshold -
# the simulator is deterministic, so any drift is a real change).
#
# Usage: stats_diff_check.sh BENCH_BINARY [BENCH_BINARY...]
set -eu

here="$(cd "$(dirname "$0")" && pwd)"
work="$(mktemp -d)"
trap 'rm -rf "$work"' EXIT
mkdir -p "$work/a" "$work/b"

for bench in "$@"; do
    echo "stats_diff_check: $bench"
    XPC_BENCH_DIR="$work/a" "$bench" --benchmark_filter=NONE \
        > /dev/null
    XPC_BENCH_DIR="$work/b" "$bench" --benchmark_filter=NONE \
        > /dev/null
done

python3 "$here/stats_diff.py" --threshold 0 "$work/a" "$work/b"
