#!/usr/bin/env python3
"""Crash-point exploration front-end.

Wraps the explorer binary (build/examples/explore) that sweeps the
enumerable crash sites of a workload - every durable block write and
every XPC phase boundary - crashing at each one (and at sampled
crash-during-recovery pairs), running journal recovery and checking
consistency after every crash. Failing plans are printed with the
exact replay command; --shrink reduces a failing plan to its minimal
reproducer first.

Usage:
    explore.py [--binary PATH] WORKLOAD                  # full sweep
    explore.py WORKLOAD --count                          # census only
    explore.py WORKLOAD --pairs N [--seed S]             # + pairs
    explore.py WORKLOAD --crash-at 12+3                  # one plan
    explore.py WORKLOAD --shrink 11+5+2                  # minimize

Workloads: minidb (WAL journal), minidb-rollback, xv6fs, torn-pair
(deliberately crash-unsafe; the shrinker's subject).

Exit status: 0 = every explored plan recovered consistently (or the
shrink succeeded), 1 = inconsistency found, 2 = usage/IO error.
"""

import argparse
import json
import subprocess
import sys


def run_binary(binary, args):
    try:
        return subprocess.run([binary] + args, capture_output=True,
                              text=True)
    except OSError as e:
        print(f"explore: cannot run {binary}: {e}", file=sys.stderr)
        sys.exit(2)


def pretty_report(doc, workload, census_only=False):
    census = ", ".join(f"{kind} {n}"
                       for kind, n in sorted(doc["census"].items()))
    print(f"{doc['total_sites']} crash sites ({census})")
    if census_only:
        return
    print(f"{doc['runs']} plans explored, "
          f"{doc['failures']} inconsistent")
    for outcome in doc.get("outcomes", []):
        if outcome["consistent"]:
            continue
        print(f"  FAIL plan={outcome['plan']} "
              f"fired={outcome['fired']}: "
              f"{outcome.get('detail', '?')}")
        print(f"    replay: tools/explore.py {workload} "
              f"--crash-at {outcome['plan']}")


def main():
    ap = argparse.ArgumentParser(
        description="Systematic crash-point exploration with "
                    "failing-plan shrinking.")
    ap.add_argument("workload",
                    choices=["minidb", "minidb-rollback", "xv6fs",
                             "torn-pair"])
    ap.add_argument("--binary", default="build/examples/explore",
                    help="explorer binary (default: "
                         "build/examples/explore)")
    ap.add_argument("--count", action="store_true",
                    help="census the fault space, run nothing")
    ap.add_argument("--pairs", type=int, default=None,
                    help="sample N crash-during-recovery pairs on top "
                         "of the single-site sweep")
    ap.add_argument("--seed", type=int, default=None,
                    help="pair-sampling seed (default 42)")
    ap.add_argument("--crash-at", metavar="PLAN",
                    help="run one plan, e.g. 12+3 (site 12, then 3 "
                         "sites into recovery)")
    ap.add_argument("--shrink", metavar="PLAN",
                    help="minimize a failing plan to its smallest "
                         "reproducer")
    ap.add_argument("--json", action="store_true",
                    help="emit the raw JSON report")
    args = ap.parse_args()

    argv = ["--workload", args.workload]
    if args.seed is not None:
        argv += ["--seed", str(args.seed)]

    if args.crash_at:
        argv += ["--crash-at", args.crash_at]
    elif args.shrink:
        argv += ["--shrink", args.shrink]
    elif args.count:
        argv += ["--count", "--json"]
    elif args.pairs is not None:
        argv += ["--pairs", str(args.pairs), "--json"]
    else:
        argv += ["--all-singles", "--json"]

    proc = run_binary(args.binary, argv)
    if proc.returncode == 2 or (args.crash_at or args.shrink):
        # Plan runs and shrinks are already human-readable; relay.
        sys.stdout.write(proc.stdout)
        sys.stderr.write(proc.stderr)
        sys.exit(proc.returncode)

    if args.json:
        sys.stdout.write(proc.stdout)
        sys.exit(proc.returncode)
    try:
        doc = json.loads(proc.stdout)
    except json.JSONDecodeError as e:
        print(f"explore: bad report from {args.binary}: {e}",
              file=sys.stderr)
        sys.stderr.write(proc.stderr)
        sys.exit(2)
    pretty_report(doc, args.workload, census_only=args.count)
    sys.exit(proc.returncode)


if __name__ == "__main__":
    main()
