#!/usr/bin/env python3
"""Render and gate the metastable-failure experiments (DESIGN.md §4i).

Usage:
    metastable.py [--check] BENCH_metastable.json

Reads the report written by bench/bench_metastable.cc and renders:
  * the regime timeline of every embedded tracker (h = healthy,
    o = overloaded, m = metastable), with the recorded marks (fault
    injected, surge over, supervisor restarts) placed on the timeline
  * the hysteresis summary: post-surge goodput fraction and whether
    the detector flagged each run
  * the crash-mid-surge recovery table: restart latency and
    SLO-window recovery time, supervision on vs off

With --check the tool gates the acceptance claims and exits non-zero
when any fails:
  * the same-seed replay of the trapped run was byte-identical
  * the seeded hysteresis run is genuinely trapped: post-surge
    goodput stays at or below 0.7x of what the (half-knee) offered
    load should get, and the detector flagged it metastable
  * the healthy baseline run was NOT flagged
  * crash-mid-surge recovery is reported for both supervision
    settings: finite restart latency and recovery with healing on,
    null (never) with healing off, where the victim's own timeline
    must flag metastable

Exit status: 0 = ok, 1 = a --check claim failed, 2 = usage/IO error.
"""

import argparse
import json
import math
import sys


def load(path):
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, ValueError) as e:
        print(f"error: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)


def fmt_cycles(v):
    if v is None or (isinstance(v, float) and not math.isfinite(v)):
        return "never"
    return f"{v:.0f}"


def render_tracker(name, t):
    regimes = t.get("regimes", "")
    window = t.get("window_cycles", 1)
    print(f"  {name:<10} |{regimes}|")
    marks = t.get("marks", [])
    if marks:
        # Place each mark's first letter under its window.
        lane = [" "] * (len(regimes) + 1)
        for m in marks:
            w = min(m["cycle"] // window, len(regimes))
            lane[w] = m["name"][0]
        print(f"  {'':<10} |{''.join(lane)[:len(regimes)]}|  "
              + ", ".join(f"{m['name']}@w{m['cycle'] // window}"
                          for m in marks))


def render_run(key, trackers):
    print(f"\n{key}:")
    if "all" in trackers:
        render_tracker("all", trackers["all"])
    for name in sorted(trackers):
        if name == "all":
            continue
        t = trackers[name]
        # Per-service lanes only earn a line when something happened.
        if t.get("counts", {}).get("healthy") != len(
                t.get("regimes", "")):
            render_tracker(name, t)


def main():
    ap = argparse.ArgumentParser(
        description="render/gate the metastable experiments")
    ap.add_argument("report", help="BENCH_metastable.json")
    ap.add_argument("--check", action="store_true",
                    help="gate the acceptance claims")
    ap.add_argument("--trap-frac", type=float, default=0.7,
                    help="max post-surge goodput fraction for the "
                         "trapped run (default 0.7)")
    args = ap.parse_args()

    report = load(args.report)
    metrics = report.get("metrics", {})
    runs = {k: v for k, v in report.items() if k.startswith("slo_")}
    if not runs:
        print("error: no slo_* sections in report", file=sys.stderr)
        sys.exit(2)

    cap = metrics.get("capacity_per_mcycle")
    if cap is not None:
        print(f"calibrated knee: {cap:.1f} req/Mcycle")
    print("regime timelines (h healthy / o overloaded / "
          "m metastable):")
    for key in sorted(runs):
        render_run(key, runs[key])

    print("\nhysteresis (offered ramps past the knee and back):")
    print(f"  {'run':<10} {'tail-goodput':>14} {'flagged':>9}")
    for leg in ("baseline", "trapped"):
        frac = metrics.get(f"hysteresis.{leg}.tail_goodput_frac")
        flag = metrics.get(f"hysteresis.{leg}.metastable_flagged")
        if frac is None:
            continue
        print(f"  {leg:<10} {frac:14.2f} "
              f"{'YES' if flag == 1 else 'no':>9}")

    print("\ncrash-mid-surge recovery (kv@t1 killed at peak load):")
    print(f"  {'run':<10} {'restart-latency':>16} {'recovery':>12}")
    for leg in ("heal_on", "heal_off"):
        lat = metrics.get(f"crash.{leg}.restart_latency_cycles")
        rec = metrics.get(f"crash.{leg}.recovery_cycles")
        print(f"  {leg:<10} {fmt_cycles(lat):>16} "
              f"{fmt_cycles(rec):>12}")

    if not args.check:
        return

    failures = []

    def metric(key):
        return metrics.get(key)

    if metric("same_seed_identical") != 1:
        failures.append("same-seed trapped replay was not "
                        "byte-identical")

    frac = metric("hysteresis.trapped.tail_goodput_frac")
    if frac is None or frac > args.trap_frac:
        failures.append(
            f"trapped run not trapped: post-surge goodput fraction "
            f"{frac} > {args.trap_frac}")
    if metric("hysteresis.trapped.metastable_flagged") != 1:
        failures.append("detector did not flag the trapped run")
    if metric("hysteresis.baseline.metastable_flagged") != 0:
        failures.append("detector flagged the healthy baseline")

    lat_on = metric("crash.heal_on.restart_latency_cycles")
    if lat_on is None or not math.isfinite(lat_on) or lat_on <= 0:
        failures.append("heal-on restart latency not finite")
    if metric("crash.heal_on.recovery_cycles") is None:
        failures.append("heal-on recovery missing or never")
    if "crash.heal_off.recovery_cycles" not in metrics:
        failures.append("heal-off recovery not reported")
    elif metrics["crash.heal_off.recovery_cycles"] is not None:
        failures.append("heal-off run recovered without supervision")
    if metric("crash.heal_off.victim_metastable") != 1:
        failures.append("dead victim's timeline not flagged "
                        "metastable")

    if failures:
        print("\nCHECK FAILED:", file=sys.stderr)
        for f in failures:
            print(f"  - {f}", file=sys.stderr)
        sys.exit(1)
    print("\ncheck ok: deterministic, detector separates trapped "
          "from baseline, recovery reported heal-on vs heal-off")


if __name__ == "__main__":
    main()
