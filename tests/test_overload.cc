/**
 * @file
 * Deadline propagation, admission control and circuit breaking
 * (DESIGN.md §4e): per-request cycle deadlines enforced on all three
 * transports, the paper-faithful cleanup on the XPC path (link-stack
 * unwind + relay-seg revocation so a stalled server can never write
 * a reclaimed segment), deterministic load shedding, and the
 * closed -> open -> half-open -> closed breaker state machine.
 */

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/breaker.hh"
#include "core/system.hh"
#include "kernel/sel4.hh"
#include "kernel/zircon.hh"
#include "services/admission.hh"
#include "services/name_server.hh"
#include "services/proto.hh"
#include "services/supervisor.hh"
#include "services/web.hh"
#include "sim/fault_injector.hh"
#include "sim/request.hh"

namespace xpc {
namespace {

constexpr uint64_t kCacheGet = uint64_t(services::proto::CacheOp::Get);

// --------------------------------------------------------------------
// Deadline scopes
// --------------------------------------------------------------------

TEST(DeadlineScope, NestedScopesOnlyTighten)
{
    req::RequestContext &ctx = req::RequestContext::global();
    EXPECT_EQ(ctx.currentDeadline(), 0u);
    {
        req::DeadlineScope outer(100);
        EXPECT_EQ(ctx.currentDeadline(), 100u);
        {
            // A looser nested budget inherits the tighter outer one.
            req::DeadlineScope inner(200);
            EXPECT_EQ(ctx.currentDeadline(), 100u);
        }
        {
            // A tighter nested budget wins.
            req::DeadlineScope inner(50);
            EXPECT_EQ(ctx.currentDeadline(), 50u);
        }
        {
            // "No own budget" inherits the outer one.
            req::DeadlineScope inner(0);
            EXPECT_EQ(ctx.currentDeadline(), 100u);
        }
        EXPECT_EQ(ctx.currentDeadline(), 100u);
    }
    EXPECT_EQ(ctx.currentDeadline(), 0u);
}

// --------------------------------------------------------------------
// Deadline expiry, one test per transport
// --------------------------------------------------------------------

TEST(Deadline, ExpiryUnwindsAndRevokesOnXpc)
{
    core::SystemOptions opts;
    opts.flavor = core::SystemFlavor::Sel4Xpc;
    opts.deadlineCycles = Cycles(10000);
    core::System sys(opts);
    kernel::Thread &server = sys.spawn("slow-server");
    kernel::Thread &client = sys.spawn("client");
    core::XpcRuntime &rt = sys.runtime();
    uint64_t id = rt.registerEntry(
        server, server,
        [](core::XpcServerCall &call) {
            if (call.opcode() == 1)
                call.core().spend(Cycles(50000)); // blows the budget
            call.setReplyLen(0);
        },
        2);
    sys.manager().grantXcallCap(server, client, id);
    hw::Core &core = sys.core(0);
    core::RelaySegHandle seg = rt.allocRelayMem(core, client, 4096);

    auto out = rt.call(core, client, id, 1, 0);
    EXPECT_FALSE(out.ok);
    EXPECT_EQ(out.status, kernel::CallStatus::DeadlineExpired);
    EXPECT_EQ(rt.deadlineExpired.value(), 1u);
    // Paper 6.1 + 4.4 cleanup: the link stack was unwound and the
    // relay seg the expired call held was revoked, so a stalled
    // server can never write a reclaimed segment.
    EXPECT_EQ(core.csrs.linkTop, 0u);
    EXPECT_EQ(rt.deadlineRevocations.value(), 1u);
    EXPECT_FALSE(sys.manager().segById(seg.segId).has_value());
    EXPECT_EQ(core.csrs.segId, 0u);

    // A fresh seg and a fast call work fine afterwards.
    rt.allocRelayMem(core, client, 4096);
    auto ok = rt.call(core, client, id, 0, 0);
    EXPECT_TRUE(ok.ok);
    EXPECT_EQ(rt.deadlineExpired.value(), 1u);
}

TEST(Deadline, ExpiryAbortsSel4Call)
{
    hw::Machine machine(hw::rocketU500(), 128 << 20);
    kernel::Sel4Kernel kern(machine);
    kern.callDeadline = Cycles(10000);
    kernel::Process &cp = kern.createProcess("client");
    kernel::Process &sp = kern.createProcess("server");
    kernel::Thread &client = kern.createThread(cp, 0);
    kernel::Thread &server = kern.createThread(sp, 0);
    kern.setCurrent(0, &client);
    uint64_t ep = kern.createEndpoint(
        server, [](kernel::Sel4ServerCall &call) {
            if (call.opcode() == 1)
                call.core().spend(Cycles(50000));
        });
    kern.grantEndpointCap(client, ep);
    VAddr req = cp.alloc(4096), reply = cp.alloc(4096);

    auto out = kern.call(machine.core(0), client, ep, 1, req, 16,
                         reply, 4096);
    EXPECT_FALSE(out.ok);
    EXPECT_EQ(out.status, kernel::CallStatus::DeadlineExpired);
    EXPECT_EQ(kern.deadlineExpired.value(), 1u);

    auto ok = kern.call(machine.core(0), client, ep, 0, req, 16,
                        reply, 4096);
    EXPECT_TRUE(ok.ok);
}

TEST(Deadline, ExpiryAbortsZirconCall)
{
    hw::Machine machine(hw::rocketU500(), 128 << 20);
    kernel::ZirconKernel kern(machine);
    kern.callDeadline = Cycles(20000);
    kernel::Process &cp = kern.createProcess("client");
    kernel::Process &sp = kern.createProcess("server");
    kernel::Thread &client = kern.createThread(cp, 0);
    kernel::Thread &server = kern.createThread(sp, 0);
    kern.setCurrent(0, &client);
    uint64_t ch = kern.createChannel(
        server, [](kernel::ZirconServerCall &call) {
            if (call.opcode() == 1)
                call.core().spend(Cycles(80000));
        });
    VAddr req = cp.alloc(4096), reply = cp.alloc(4096);

    auto out = kern.call(machine.core(0), client, ch, 1, req, 16,
                         reply, 4096);
    EXPECT_FALSE(out.ok);
    EXPECT_EQ(out.status, kernel::CallStatus::DeadlineExpired);
    EXPECT_EQ(kern.deadlineExpired.value(), 1u);

    auto ok = kern.call(machine.core(0), client, ch, 0, req, 16,
                        reply, 4096);
    EXPECT_TRUE(ok.ok);
}

// --------------------------------------------------------------------
// A stalled server's late write faults after revocation
// --------------------------------------------------------------------

TEST(Deadline, RevocationBlocksLateWriteFromStalledServer)
{
    core::SystemOptions opts;
    opts.flavor = core::SystemFlavor::Sel4Xpc;
    opts.deadlineCycles = Cycles(10000);
    core::System sys(opts);
    kernel::Thread &server = sys.spawn("stalled");
    kernel::Thread &client = sys.spawn("client");
    core::XpcRuntime &rt = sys.runtime();
    uint64_t id = rt.registerEntry(
        server, server,
        [](core::XpcServerCall &call) {
            static const char late[] = "late";
            call.writeMsg(0, late, sizeof(late));
            call.setReplyLen(sizeof(late));
        },
        2);
    sys.manager().grantXcallCap(server, client, id);
    hw::Core &core = sys.core(0);
    core::RelaySegHandle seg = rt.allocRelayMem(core, client, 4096);

    // Schedule a stall on the first call: the handler never gets to
    // run its reply writes in time; the deadline machinery revokes
    // the relay seg while the server notionally still holds it.
    FaultPlan plan;
    plan.seed = 1;
    FaultEvent ev;
    ev.callSeq = 1;
    ev.op = FaultOp::StallServer;
    ev.phase = FaultPhase::InHandler;
    plan.events.push_back(ev);
    FaultInjector inj(plan);
    sys.machine().setFaultInjector(&inj);
    inj.enabled = true;

    auto out = rt.call(core, client, id, 0, 0);
    inj.enabled = false;
    EXPECT_FALSE(out.ok);
    EXPECT_EQ(out.status, kernel::CallStatus::DeadlineExpired);
    EXPECT_EQ(inj.firedCount(FaultOp::StallServer), 1u);
    // The seg was revoked (4.4) and the stalled server's write path
    // through its scrubbed seg-reg faulted instead of landing in
    // reclaimed memory.
    EXPECT_EQ(rt.deadlineRevocations.value(), 1u);
    EXPECT_GE(rt.lateWritesBlocked.value(), 1u);
    EXPECT_FALSE(sys.manager().segById(seg.segId).has_value());
    EXPECT_EQ(core.csrs.linkTop, 0u);
}

// --------------------------------------------------------------------
// Stall / slow fault kinds
// --------------------------------------------------------------------

TEST(FaultKinds, StallAndSlowPlansAreSeededAndBounded)
{
    uint32_t mask = (1u << uint32_t(FaultOp::StallServer)) |
                    (1u << uint32_t(FaultOp::SlowServer));
    FaultPlan a = FaultPlan::generate(7, 40, 400, mask);
    FaultPlan b = FaultPlan::generate(7, 40, 400, mask);
    ASSERT_EQ(a.events.size(), 40u);
    ASSERT_EQ(a.events.size(), b.events.size());
    for (size_t i = 0; i < a.events.size(); i++) {
        EXPECT_TRUE(a.events[i].op == FaultOp::StallServer ||
                    a.events[i].op == FaultOp::SlowServer);
        EXPECT_EQ(a.events[i].phase, FaultPhase::InHandler);
        if (a.events[i].op == FaultOp::SlowServer) {
            EXPECT_GE(a.events[i].arg, 2u);
            EXPECT_LE(a.events[i].arg, 8u);
        }
        EXPECT_EQ(a.events[i].op, b.events[i].op);
        EXPECT_EQ(a.events[i].callSeq, b.events[i].callSeq);
        EXPECT_EQ(a.events[i].arg, b.events[i].arg);
    }
    EXPECT_STREQ(faultOpName(FaultOp::StallServer), "stall-server");
    EXPECT_STREQ(faultOpName(FaultOp::SlowServer), "slow-server");
}

TEST(FaultKinds, SlowServerMultipliesHandlerCost)
{
    core::SystemOptions opts;
    opts.flavor = core::SystemFlavor::Sel4Xpc;
    core::System sys(opts);
    kernel::Thread &server = sys.spawn("server");
    kernel::Thread &client = sys.spawn("client");
    core::XpcRuntime &rt = sys.runtime();
    uint64_t id = rt.registerEntry(
        server, server,
        [](core::XpcServerCall &call) {
            call.core().spend(Cycles(2000));
            call.setReplyLen(0);
        },
        2);
    sys.manager().grantXcallCap(server, client, id);
    hw::Core &core = sys.core(0);
    rt.allocRelayMem(core, client, 4096);

    // Slow the first call down 4x; the second runs clean.
    FaultPlan plan;
    plan.seed = 1;
    FaultEvent ev;
    ev.callSeq = 1;
    ev.op = FaultOp::SlowServer;
    ev.phase = FaultPhase::InHandler;
    ev.arg = 4;
    plan.events.push_back(ev);
    FaultInjector inj(plan);
    sys.machine().setFaultInjector(&inj);
    inj.enabled = true;
    auto slow = rt.call(core, client, id, 0, 0);
    auto fast = rt.call(core, client, id, 0, 0);
    inj.enabled = false;

    ASSERT_TRUE(slow.ok);
    ASSERT_TRUE(fast.ok);
    EXPECT_EQ(inj.firedCount(FaultOp::SlowServer), 1u);
    // (4 - 1) x 2000 extra handler cycles, minus cache-warmth noise.
    EXPECT_GT(slow.roundTrip.value(),
              fast.roundTrip.value() + 5000u);
}

// --------------------------------------------------------------------
// Admission control
// --------------------------------------------------------------------

TEST(Admission, ShedsAtTheHighWatermarkAndDrainsBack)
{
    services::AdmissionOptions opts;
    opts.highWatermark = 3;
    opts.drainCycles = Cycles(1000);
    opts.clientShare = 0;
    services::AdmissionController adm("t", opts);

    // Three rapid requests fill the queue; the fourth is shed.
    EXPECT_TRUE(adm.admit(Cycles(10), 0));
    EXPECT_TRUE(adm.admit(Cycles(20), 0));
    EXPECT_TRUE(adm.admit(Cycles(30), 0));
    EXPECT_FALSE(adm.admit(Cycles(40), 0));
    EXPECT_EQ(adm.shed.value(), 1u);
    EXPECT_EQ(adm.backlogAt(Cycles(40)), 3u);

    // Two drain periods later there is room again.
    EXPECT_EQ(adm.backlogAt(Cycles(2040)), 1u);
    EXPECT_TRUE(adm.admit(Cycles(2040), 0));
    EXPECT_EQ(adm.admitted.value(), 4u);
}

TEST(Admission, FairShareShedsTheGreedyClientOnly)
{
    services::AdmissionOptions opts;
    opts.highWatermark = 100; // global queue never fills
    opts.drainCycles = Cycles(1000000);
    opts.clientShare = 2;
    services::AdmissionController adm("t", opts);

    EXPECT_TRUE(adm.admit(Cycles(1), 7));
    EXPECT_TRUE(adm.admit(Cycles(2), 7));
    // Client 7 owns its fair share; client 9 still gets in.
    EXPECT_FALSE(adm.admit(Cycles(3), 7));
    EXPECT_TRUE(adm.admit(Cycles(4), 9));
    EXPECT_EQ(adm.shedFairShare.value(), 1u);
    EXPECT_EQ(adm.shed.value(), 1u);
}

TEST(Admission, IsDeterministic)
{
    for (int run = 0; run < 2; run++) {
        services::AdmissionOptions opts;
        opts.highWatermark = 2;
        opts.drainCycles = Cycles(500);
        services::AdmissionController adm("t", opts);
        std::vector<bool> decisions;
        for (uint64_t t = 0; t < 40; t++)
            decisions.push_back(adm.admit(Cycles(t * 100), 0));
        static std::vector<bool> first;
        if (run == 0)
            first = decisions;
        else
            EXPECT_EQ(first, decisions);
    }
}

// --------------------------------------------------------------------
// Circuit breaker
// --------------------------------------------------------------------

TEST(Breaker, TripsHalfOpensAndCloses)
{
    core::BreakerOptions opts;
    opts.enabled = true;
    opts.failureThreshold = 3;
    opts.cooldownCycles = Cycles(1000);
    core::CircuitBreaker brk(opts);

    // Closed until three consecutive failures.
    EXPECT_TRUE(brk.allow(Cycles(0)));
    brk.onFailure(Cycles(10));
    brk.onFailure(Cycles(20));
    EXPECT_EQ(brk.state(Cycles(20)), core::CircuitBreaker::State::Closed);
    brk.onFailure(Cycles(30));
    EXPECT_EQ(brk.state(Cycles(30)), core::CircuitBreaker::State::Open);
    EXPECT_EQ(brk.trips(), 1u);

    // Open: short-circuit inside the cooldown window.
    EXPECT_FALSE(brk.allow(Cycles(500)));
    EXPECT_EQ(brk.shortCircuits(), 1u);

    // After the cooldown exactly one probe passes...
    EXPECT_EQ(brk.state(Cycles(1030)),
              core::CircuitBreaker::State::HalfOpen);
    EXPECT_TRUE(brk.allow(Cycles(1030)));
    EXPECT_FALSE(brk.allow(Cycles(1040))); // probe in flight
    EXPECT_EQ(brk.probes(), 1u);

    // ...and its success closes the breaker.
    brk.onSuccess(Cycles(1100));
    EXPECT_EQ(brk.state(Cycles(1100)),
              core::CircuitBreaker::State::Closed);
    EXPECT_TRUE(brk.allow(Cycles(1100)));
}

TEST(Breaker, FailedProbeReopensWithFreshCooldown)
{
    core::BreakerOptions opts;
    opts.enabled = true;
    opts.failureThreshold = 1;
    opts.cooldownCycles = Cycles(1000);
    core::CircuitBreaker brk(opts);

    brk.onFailure(Cycles(0)); // trip immediately
    EXPECT_EQ(brk.state(Cycles(0)), core::CircuitBreaker::State::Open);
    EXPECT_TRUE(brk.allow(Cycles(1000)));  // the probe
    brk.onFailure(Cycles(1010));           // probe fails
    EXPECT_EQ(brk.state(Cycles(1010)), core::CircuitBreaker::State::Open);
    EXPECT_EQ(brk.trips(), 2u);
    // The cooldown restarted at the probe failure.
    EXPECT_FALSE(brk.allow(Cycles(1500)));
    EXPECT_TRUE(brk.allow(Cycles(2010)));
    brk.onSuccess(Cycles(2020));
    EXPECT_EQ(brk.state(Cycles(2020)),
              core::CircuitBreaker::State::Closed);

    EXPECT_STREQ(core::breakerStateName(
                     core::CircuitBreaker::State::HalfOpen),
                 "half-open");
}

// --------------------------------------------------------------------
// The supervisor's quarantine loop end to end
// --------------------------------------------------------------------

TEST(Breaker, SupervisorQuarantinesAnOverloadedService)
{
    core::SystemOptions opts;
    opts.flavor = core::SystemFlavor::Sel4Xpc;
    core::System sys(opts);
    core::Transport &tr = sys.transport();
    kernel::Thread &ns_t = sys.spawn("nameserver");
    services::NameServer ns(tr, ns_t);
    services::Supervisor sup(tr, ns);
    sup.breakerOpts.enabled = true;
    sup.breakerOpts.failureThreshold = 3;
    sup.breakerOpts.cooldownCycles = Cycles(50000);
    kernel::Thread &client = sys.spawn("client");

    kernel::Thread &cache_t = sys.spawn("cache");
    services::FileCacheServer cache(tr, cache_t);
    std::vector<uint8_t> page(64, 'x');
    cache.preload("/a", page);
    // An admission controller that never drains: after one admit,
    // every further request is shed.
    services::AdmissionOptions aopts;
    aopts.highWatermark = 1;
    aopts.drainCycles = Cycles(1000000000);
    aopts.clientShare = 0;
    services::AdmissionController adm("cache", aopts);
    cache.setAdmission(&adm);
    ns.bind("cache", cache.id());
    sup.supervise("cache", cache_t, cache.id(),
                  [&](kernel::Thread *&) { return cache.id(); });

    hw::Core &core = sys.core(0);
    std::string path = "/a";
    path.push_back('\0');
    uint8_t reply[256];

    // First call is admitted and succeeds.
    EXPECT_GE(sup.callWithRetry(core, client, "cache", kCacheGet, path.data(),
                                path.size(), reply, sizeof(reply)),
              0);

    // Second call: every attempt is shed, the breaker trips after 3
    // consecutive failures and the tail attempts short-circuit.
    EXPECT_LT(sup.callWithRetry(core, client, "cache", kCacheGet, path.data(),
                                path.size(), reply, sizeof(reply)),
              0);
    EXPECT_EQ(sup.lastStatus, core::TransportStatus::BreakerOpen);
    EXPECT_EQ(sup.breakerTrips.value(), 1u);
    EXPECT_GT(sup.breakerRejected.value(), 0u);
    EXPECT_EQ(sup.breakerFor("cache").state(core.now()),
              core::CircuitBreaker::State::Open);

    // While open and inside the cooldown, calls never even touch the
    // transport.
    uint64_t admitted = adm.admitted.value();
    uint64_t shed = adm.shed.value();
    EXPECT_LT(sup.callWithRetry(core, client, "cache", kCacheGet, path.data(),
                                path.size(), reply, sizeof(reply),
                                {.maxAttempts = 1}),
              0);
    EXPECT_EQ(sup.lastStatus, core::TransportStatus::BreakerOpen);
    EXPECT_EQ(adm.admitted.value(), admitted);
    EXPECT_EQ(adm.shed.value(), shed);

    // After the cooldown (and with the overload cleared) the
    // half-open probe succeeds and the breaker closes.
    core.spend(Cycles(60000));
    cache.setAdmission(nullptr);
    EXPECT_GE(sup.callWithRetry(core, client, "cache", kCacheGet, path.data(),
                                path.size(), reply, sizeof(reply)),
              0);
    EXPECT_EQ(sup.breakerFor("cache").state(core.now()),
              core::CircuitBreaker::State::Closed);
}

TEST(Breaker, SupervisorRestartResetsBreakerAndAdmission)
{
    core::SystemOptions opts;
    opts.flavor = core::SystemFlavor::Sel4Xpc;
    core::System sys(opts);
    core::Transport &tr = sys.transport();
    kernel::Thread &ns_t = sys.spawn("nameserver");
    services::NameServer ns(tr, ns_t);
    services::Supervisor sup(tr, ns);
    sup.breakerOpts.enabled = true;
    sup.breakerOpts.failureThreshold = 3;
    // A cooldown no test-scale clock advance can outlast: without the
    // restart-time reset the breaker would stay open forever here.
    sup.breakerOpts.cooldownCycles = Cycles(1000000000);
    kernel::Thread &client = sys.spawn("client");

    // An admission controller that never drains: one admit, then
    // every further request is shed until the buckets are reset.
    services::AdmissionOptions aopts;
    aopts.highWatermark = 1;
    aopts.drainCycles = Cycles(1000000000);
    aopts.clientShare = 0;
    services::AdmissionController adm("cache", aopts);

    std::vector<std::unique_ptr<services::FileCacheServer>> caches;
    std::vector<uint8_t> page(64, 'x');
    auto makeCache = [&](kernel::Thread *&t) {
        t = &sys.spawn("cache");
        caches.push_back(
            std::make_unique<services::FileCacheServer>(tr, *t));
        caches.back()->preload("/a", page);
        caches.back()->setAdmission(&adm);
        return caches.back()->id();
    };
    kernel::Thread *cache_t = nullptr;
    core::ServiceId id = makeCache(cache_t);
    ns.bind("cache", id);
    sup.supervise("cache", *cache_t, id,
                  [&](kernel::Thread *&srv) { return makeCache(srv); });
    sup.setAdmission("cache", &adm);

    hw::Core &core = sys.core(0);
    std::string path = "/a";
    path.push_back('\0');
    uint8_t reply[256];

    // Admit once, then overload until the breaker trips and latches.
    EXPECT_GE(sup.callWithRetry(core, client, "cache", kCacheGet,
                                path.data(), path.size(), reply,
                                sizeof(reply)),
              0);
    EXPECT_LT(sup.callWithRetry(core, client, "cache", kCacheGet,
                                path.data(), path.size(), reply,
                                sizeof(reply)),
              0);
    EXPECT_EQ(sup.breakerFor("cache").state(core.now()),
              core::CircuitBreaker::State::Open);
    EXPECT_GT(adm.backlogAt(core.now()), 0u);

    // The overloaded instance dies. heal() restarts it and must wipe
    // the quarantine with it: the failures that tripped the breaker
    // and the backlog that tripped admission died with the process.
    sys.manager().onProcessExit(*cache_t->process());
    EXPECT_EQ(sup.heal(), 1u);
    EXPECT_EQ(sup.breakerFor("cache").state(core.now()),
              core::CircuitBreaker::State::Closed);
    EXPECT_TRUE(sup.breakerFor("cache").allow(core.now()));
    EXPECT_EQ(adm.backlogAt(core.now()), 0u);

    // The very first call to the fresh instance goes straight
    // through - no cooldown wait, no stale shedding. A single
    // attempt proves nothing is being short-circuited.
    EXPECT_GE(sup.callWithRetry(core, client, "cache", kCacheGet,
                                path.data(), path.size(), reply,
                                sizeof(reply), {.maxAttempts = 1}),
              0);
    EXPECT_EQ(sup.lastStatus, core::TransportStatus::Ok);
    // The breaker's trip history survives the reset (it is history,
    // not state).
    EXPECT_EQ(sup.breakerFor("cache").trips(), 1u);
}

// --------------------------------------------------------------------
// Jittered backoff determinism
// --------------------------------------------------------------------

TEST(Backoff, JitterIsSeededAndDeterministic)
{
    // Two identical systems, same supervisor seed: the jittered
    // backoff must burn exactly the same number of cycles.
    uint64_t spent[2] = {};
    for (int run = 0; run < 2; run++) {
        core::SystemOptions opts;
        opts.flavor = core::SystemFlavor::Sel4Xpc;
        core::System sys(opts);
        core::Transport &tr = sys.transport();
        kernel::Thread &ns_t = sys.spawn("nameserver");
        services::NameServer ns(tr, ns_t);
        services::Supervisor sup(tr, ns);
        kernel::Thread &client = sys.spawn("client");
        kernel::Thread &cache_t = sys.spawn("cache");
        services::FileCacheServer cache(tr, cache_t);
        services::AdmissionOptions aopts;
        aopts.highWatermark = 1;
        aopts.drainCycles = Cycles(1000000000);
        services::AdmissionController adm("cache", aopts);
        cache.setAdmission(&adm);
        ns.bind("cache", cache.id());
        sup.supervise("cache", cache_t, cache.id(),
                      [&](kernel::Thread *&) { return cache.id(); });

        hw::Core &core = sys.core(0);
        std::string path = "/a";
        path.push_back('\0');
        uint8_t reply[64];
        sup.callWithRetry(core, client, "cache", kCacheGet, path.data(),
                          path.size(), reply, sizeof(reply));
        uint64_t before = core.now().value();
        sup.callWithRetry(core, client, "cache", kCacheGet, path.data(),
                          path.size(), reply, sizeof(reply));
        spent[run] = core.now().value() - before;
    }
    EXPECT_EQ(spent[0], spent[1]);
    EXPECT_GT(spent[0], 0u);
}

} // namespace
} // namespace xpc
