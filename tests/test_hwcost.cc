/**
 * @file
 * Tests for the FPGA resource estimator (the Table 6 substitute).
 */

#include <gtest/gtest.h>

#include "hwcost/resource_model.hh"

namespace xpc::hwcost {
namespace {

TEST(ResourceModelTest, BaselineMatchesPaperTable6)
{
    ResourceEstimate base = ResourceModel::freedomU500Baseline();
    EXPECT_EQ(base.lut, 44643u);
    EXPECT_EQ(base.ff, 30379u);
    EXPECT_EQ(base.dsp, 15u);
    EXPECT_EQ(base.lutram, 3370u);
}

TEST(ResourceModelTest, DefaultEngineReproducesPaperDeltas)
{
    ResourceEstimate d =
        ResourceModel::estimate(ResourceModel::defaultEngine());
    // Paper: XPC adds 888 LUTs (45531-44643), 1007 FFs
    // (31386-30379) and one DSP block.
    EXPECT_EQ(d.lut, 888u);
    EXPECT_EQ(d.ff, 1007u);
    EXPECT_EQ(d.dsp, 1u);
}

TEST(ResourceModelTest, PercentagesMatchPaper)
{
    ResourceEstimate base = ResourceModel::freedomU500Baseline();
    ResourceEstimate with =
        ResourceModel::withEngine(ResourceModel::defaultEngine());
    EXPECT_NEAR(ResourceModel::overheadPercent(base.lut, with.lut),
                1.99, 0.02);
    EXPECT_NEAR(ResourceModel::overheadPercent(base.ff, with.ff),
                3.31, 0.02);
    EXPECT_NEAR(ResourceModel::overheadPercent(base.dsp, with.dsp),
                6.67, 0.02);
}

TEST(ResourceModelTest, EngineCacheCostsExtra)
{
    ResourceEstimate plain =
        ResourceModel::estimate(ResourceModel::defaultEngine());
    ResourceEstimate cached =
        ResourceModel::estimate(ResourceModel::engineWithCache());
    EXPECT_GT(cached.lut, plain.lut);
    EXPECT_GT(cached.ff, plain.ff);
}

TEST(ResourceModelTest, InventoryScalesMonotonically)
{
    EngineInventory inv = ResourceModel::defaultEngine();
    ResourceEstimate base = ResourceModel::estimate(inv);
    inv.comparators64 += 4;
    inv.csrBits += 64;
    ResourceEstimate bigger = ResourceModel::estimate(inv);
    EXPECT_GT(bigger.lut, base.lut);
    EXPECT_GT(bigger.ff, base.ff);
}

TEST(ResourceModelTest, OverheadPercentEdgeCases)
{
    EXPECT_DOUBLE_EQ(ResourceModel::overheadPercent(0, 0), 0.0);
    EXPECT_DOUBLE_EQ(ResourceModel::overheadPercent(0, 5), 100.0);
    EXPECT_DOUBLE_EQ(ResourceModel::overheadPercent(100, 100), 0.0);
}

} // namespace
} // namespace xpc::hwcost
