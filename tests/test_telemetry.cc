/**
 * @file
 * Tail-latency telemetry tests: the fixed-memory Histogram, the
 * windowed TimeSeries, and a seeded open-loop LoadGen soak whose
 * whole JSON document must be byte-identical across same-seed runs.
 * Labeled `load` (not tier1): the soak drives thousands of requests
 * through the full supervised mesh.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "apps/loadgen.hh"
#include "sim/histogram.hh"
#include "sim/timeseries.hh"

namespace xpc {
namespace {

TEST(HistogramTest, SmallValuesLandInExactUnitBuckets)
{
    // Below 2^subBucketBits every value gets its own unit-width
    // bucket: no quantization at all in the range that matters for
    // sub-call-granularity phases.
    for (uint64_t v = 0; v < Histogram::subBucketCount; v++) {
        size_t idx = Histogram::bucketIndex(v);
        EXPECT_EQ(Histogram::bucketLow(idx), v);
        EXPECT_EQ(Histogram::bucketHigh(idx), v);
    }
}

TEST(HistogramTest, BucketBoundariesTileTheRange)
{
    // Consecutive buckets must tile [0, 2^63...] with no gaps or
    // overlaps: high(i) + 1 == low(i+1), and every value maps into
    // the bucket whose [low, high] contains it.
    for (size_t i = 0; i + 1 < Histogram::bucketCount; i++)
        EXPECT_EQ(Histogram::bucketHigh(i) + 1,
                  Histogram::bucketLow(i + 1))
            << "gap after bucket " << i;

    for (uint64_t v :
         {uint64_t(31), uint64_t(32), uint64_t(33), uint64_t(1023),
          uint64_t(1024), uint64_t(1) << 40,
          (uint64_t(1) << 40) + 12345, ~uint64_t(0)}) {
        size_t idx = Histogram::bucketIndex(v);
        EXPECT_GE(v, Histogram::bucketLow(idx)) << v;
        EXPECT_LE(v, Histogram::bucketHigh(idx)) << v;
    }
}

TEST(HistogramTest, RelativeErrorIsBounded)
{
    // The documented contract: the bucket boundary reported for any
    // value is within 2^-subBucketBits (~3.1%) of the value.
    const double rel = 1.0 / double(Histogram::subBucketCount);
    for (uint64_t v = 1; v < (uint64_t(1) << 40); v = v * 3 + 7) {
        size_t idx = Histogram::bucketIndex(v);
        double high = double(Histogram::bucketHigh(idx));
        EXPECT_LE(high - double(v), double(v) * rel + 1) << v;
    }
}

TEST(HistogramTest, ExactMomentsAndClampedQuantiles)
{
    Histogram h;
    for (uint64_t v = 1; v <= 1000; v++)
        h.record(v);
    EXPECT_EQ(h.count(), 1000u);
    EXPECT_DOUBLE_EQ(h.sum(), 500500.0);
    EXPECT_DOUBLE_EQ(h.min(), 1.0);
    EXPECT_DOUBLE_EQ(h.max(), 1000.0);
    EXPECT_DOUBLE_EQ(h.mean(), 500.5);
    // Quantile endpoints clamp to the exact extremes.
    EXPECT_DOUBLE_EQ(h.quantile(0.0), 1.0);
    EXPECT_DOUBLE_EQ(h.quantile(1.0), 1000.0);
    // Interior quantiles carry the ~3.1% bucket error.
    EXPECT_NEAR(h.quantile(0.5), 500.0, 500.0 / 32 + 1);
    EXPECT_NEAR(h.quantile(0.99), 990.0, 990.0 / 32 + 1);
}

TEST(HistogramTest, EmptyQueriesAreNaNAndSummaryIsNull)
{
    Histogram h;
    EXPECT_TRUE(std::isnan(h.min()));
    EXPECT_TRUE(std::isnan(h.max()));
    EXPECT_TRUE(std::isnan(h.mean()));
    EXPECT_TRUE(std::isnan(h.quantile(0.5)));
    std::ostringstream os;
    h.summaryJson(os);
    EXPECT_NE(os.str().find("\"p50\":null"), std::string::npos);
    EXPECT_NE(os.str().find("\"count\":0"), std::string::npos);
}

TEST(HistogramTest, QuantileOutOfRangePanics)
{
    Histogram h;
    h.record(1);
    EXPECT_DEATH(h.quantile(-0.1), "quantile");
    EXPECT_DEATH(h.quantile(1.1), "quantile");
}

TEST(HistogramTest, MergeIsExactAndAssociative)
{
    Histogram a, b, c;
    for (uint64_t v = 1; v < 5000; v += 3)
        a.record(v);
    for (uint64_t v = 2; v < 9000; v += 5)
        b.record(v * 17);
    c.recordN(123456, 40);

    // (a + b) + c ...
    Histogram left = a;
    left.merge(b);
    left.merge(c);
    // ... == a + (b + c).
    Histogram right = b;
    right.merge(c);
    Histogram right2 = a;
    right2.merge(right);

    EXPECT_EQ(left.count(), a.count() + b.count() + c.count());
    EXPECT_DOUBLE_EQ(left.sum(), a.sum() + b.sum() + c.sum());
    EXPECT_DOUBLE_EQ(left.min(), right2.min());
    EXPECT_DOUBLE_EQ(left.max(), right2.max());
    for (size_t i = 0; i < Histogram::bucketCount; i++)
        ASSERT_EQ(left.bucketValue(i), right2.bucketValue(i));

    std::ostringstream lo, ro;
    left.summaryJson(lo);
    right2.summaryJson(ro);
    EXPECT_EQ(lo.str(), ro.str());
}

TEST(HistogramTest, ResetClears)
{
    Histogram h;
    h.recordN(99, 7);
    h.reset();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_TRUE(std::isnan(h.min()));
}

TEST(TimeSeriesTest, CountersAccumulateAndRollOverWindows)
{
    TimeSeries ts(Cycles(100));
    auto ch = ts.counterChannel("reqs");
    ts.add(ch, 5);
    ts.add(ch, 99, 2);
    ts.add(ch, 100); // first cycle of window 1
    ts.add(ch, 350); // skips window 2 entirely
    ASSERT_EQ(ts.windowCount(), 4u);
    EXPECT_DOUBLE_EQ(ts.at(ch, 0), 3.0);
    EXPECT_DOUBLE_EQ(ts.at(ch, 1), 1.0);
    EXPECT_DOUBLE_EQ(ts.at(ch, 2), 0.0); // empty counter window = 0
    EXPECT_DOUBLE_EQ(ts.at(ch, 3), 1.0);
}

TEST(TimeSeriesTest, GaugesCarryForwardAndStartAsNaN)
{
    TimeSeries ts(Cycles(100));
    auto g = ts.gaugeChannel("depth");
    auto c = ts.counterChannel("ticks");
    ts.add(c, 10);      // window 0 exists but the gauge is unsampled
    ts.sample(g, 150, 4); // window 1
    ts.sample(g, 199, 7); // last sample in the window wins
    ts.add(c, 399);       // stretch to window 3
    ASSERT_EQ(ts.windowCount(), 4u);
    EXPECT_TRUE(std::isnan(ts.at(g, 0))); // before first sample
    EXPECT_DOUBLE_EQ(ts.at(g, 1), 7.0);
    EXPECT_DOUBLE_EQ(ts.at(g, 2), 7.0); // carried forward
    EXPECT_DOUBLE_EQ(ts.at(g, 3), 7.0);
}

TEST(TimeSeriesTest, ChannelsAreFoundByNameAndKindChecked)
{
    TimeSeries ts(Cycles(10));
    auto a = ts.counterChannel("x");
    auto b = ts.counterChannel("x");
    EXPECT_EQ(a, b);
    EXPECT_DEATH(ts.gaugeChannel("x"), "x");
}

TEST(TimeSeriesTest, DumpJsonIsStableAndNullsNaN)
{
    TimeSeries ts(Cycles(100));
    auto g = ts.gaugeChannel("depth");
    auto c = ts.counterChannel("reqs");
    ts.add(c, 0);
    ts.sample(g, 150, 2.5);
    std::ostringstream os;
    ts.dumpJson(os);
    std::string json = os.str();
    EXPECT_NE(json.find("\"window_cycles\":100"), std::string::npos);
    EXPECT_NE(json.find("\"windows\":2"), std::string::npos);
    // Gauge window 0 predates the first sample: null, not NaN.
    EXPECT_NE(json.find("\"depth\":[null,2.5]"), std::string::npos);
    EXPECT_NE(json.find("\"reqs\":[1,0]"), std::string::npos);
    // Creation order: depth before reqs.
    EXPECT_LT(json.find("depth"), json.find("reqs"));
}

TEST(TimeSeriesTest, ResetKeepsChannelsDropsValues)
{
    TimeSeries ts(Cycles(10));
    auto c = ts.counterChannel("n");
    ts.add(c, 25);
    ts.reset();
    EXPECT_EQ(ts.windowCount(), 0u);
    EXPECT_EQ(ts.counterChannel("n"), c);
}

/** Seeded soak: the full open-loop run is a function of its seed. */
TEST(LoadGenTest, SameSeedRunsAreByteIdentical)
{
    apps::LoadGenOptions o;
    o.requests = 800;
    o.offeredPerMcycle = 250; // past the per-service admission knee
    auto run = [&]() {
        apps::LoadGen gen(o);
        std::ostringstream os;
        gen.run().dumpJson(os);
        return os.str();
    };
    std::string a = run();
    std::string b = run();
    EXPECT_EQ(a, b) << "same-seed loadgen JSON diverged";

    o.seed = 43;
    EXPECT_NE(run(), a) << "seed is not reaching the schedule";
}

TEST(LoadGenTest, OutcomesPartitionTheSchedule)
{
    apps::LoadGenOptions o;
    o.requests = 600;
    o.offeredPerMcycle = 120;
    apps::LoadGen gen(o);
    const apps::LoadGenResult &res = gen.run();

    uint64_t sum = 0;
    for (size_t i = 0; i < apps::loadOutcomeCount; i++)
        sum += res.counts[i];
    EXPECT_EQ(sum, o.requests);
    EXPECT_EQ(res.offered, o.requests);
    EXPECT_GT(res.goodput(), 0u);
    // Every request leaves a latency sample, abandoned ones
    // included (theirs is the time the caller waited before
    // hanging up).
    EXPECT_EQ(res.latencyAll.count(), o.requests);
    // Per-service histograms partition the per-request samples.
    uint64_t per_service = 0;
    for (const Histogram &h : res.latencyService)
        per_service += h.count();
    EXPECT_EQ(per_service, res.latencyAll.count());
    // ... and so do the per-outcome histograms.
    uint64_t per_outcome = 0;
    for (const Histogram &h : res.latencyOutcome)
        per_outcome += h.count();
    EXPECT_EQ(per_outcome, res.latencyAll.count());
}

TEST(LoadGenTest, UnderloadedMeshServesEverything)
{
    apps::LoadGenOptions o;
    o.requests = 300;
    o.offeredPerMcycle = 40; // far below capacity
    apps::LoadGen gen(o);
    const apps::LoadGenResult &res = gen.run();
    EXPECT_EQ(res.goodput(), o.requests);
    EXPECT_EQ(res.counts[size_t(apps::LoadOutcome::Abandoned)], 0u);
}

} // namespace
} // namespace xpc
