/**
 * @file
 * Causal tracing and critical-path reconstruction: one request must
 * render as a single closed flow across lanes, and the per-span cycle
 * attribution must sum to exactly the request's end-to-end cycles -
 * including under ring wraparound and fault-injected server death.
 */

#include <gtest/gtest.h>

#include <type_traits>

#include "core/system.hh"
#include "core/transport.hh"
#include "sim/critpath.hh"
#include "sim/fault_injector.hh"
#include "sim/request.hh"
#include "sim/trace.hh"

using namespace xpc;

namespace {

class CritPathTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        trace::Tracer &t = trace::Tracer::global();
        t.setEnabled(true);
        t.setCapacity(1 << 14);
        t.clear();
        req::RequestContext::global().reset();
    }

    void
    TearDown() override
    {
        trace::Tracer &t = trace::Tracer::global();
        t.setEnabled(false);
        t.clear();
        req::RequestContext::global().reset();
    }

    static std::unique_ptr<core::System>
    makeSystem(core::SystemFlavor flavor)
    {
        core::SystemOptions opts;
        opts.flavor = flavor;
        return std::make_unique<core::System>(opts);
    }
};

/** The invariant every report must satisfy: nothing vanished. */
void
expectExact(const critpath::RequestReport &r)
{
    EXPECT_EQ(r.attributed(), r.total())
        << "request #" << r.id << " lost cycles";
}

TEST_F(CritPathTest, SingleXcallReconstructs)
{
    // The quickstart shape: client -> echo server, XPC fast path.
    auto sys = makeSystem(core::SystemFlavor::Sel4Xpc);
    core::XpcRuntime &rt = sys->runtime();
    hw::Core &core = sys->core(0);

    kernel::Thread &server = sys->spawn("echo-server");
    // The handler touches the message so its span has real cycles
    // (readMsg/writeMsg are charged through the relay segment).
    uint64_t id = rt.registerEntry(
        server, server,
        [](core::XpcServerCall &call) {
            uint8_t buf[64];
            call.readMsg(0, buf, sizeof(buf));
            call.writeMsg(0, buf, sizeof(buf));
            call.setReplyLen(sizeof(buf));
        },
        4);
    kernel::Thread &client = sys->spawn("client");
    sys->manager().grantXcallCap(server, client, id);
    rt.allocRelayMem(core, client, 4096);

    trace::Tracer &tracer = trace::Tracer::global();
    tracer.clear();
    req::RequestContext::global().reset();
    auto out = rt.call(core, client, id, 0, 64);
    ASSERT_TRUE(out.ok);

    auto reports = critpath::analyze(tracer.events());
    ASSERT_EQ(reports.size(), 1u);
    const critpath::RequestReport &r = reports[0];
    EXPECT_EQ(r.id, 1u);
    EXPECT_TRUE(r.complete);
    EXPECT_TRUE(r.flowClosed);
    EXPECT_GE(r.lanes, 2u); // client thread lane + handler/core lanes
    expectExact(r);
    EXPECT_FALSE(r.path.empty());

    // The handler span exists and sits on a lane in the path.
    bool saw_handler = false;
    for (const auto &[name, cycles] : r.spanCycles)
        saw_handler |= name == "handler";
    EXPECT_TRUE(saw_handler);

    // The human-readable report agrees with the flags.
    std::string text = critpath::formatReport(r, tracer);
    EXPECT_NE(text.find("flow closed"), std::string::npos);
    EXPECT_NE(text.find("exact"), std::string::npos);
    EXPECT_EQ(text.find("MISMATCH"), std::string::npos);
}

TEST_F(CritPathTest, NestedChainKeepsOneFlow)
{
    // The web_chain shape: client -> A -> B -> C by seg-mask
    // handover. All three hops must share one RequestId and land in
    // one report that spans at least four lanes.
    auto sys = makeSystem(core::SystemFlavor::Sel4Xpc);
    core::XpcRuntime &rt = sys->runtime();
    hw::Core &core = sys->core(0);

    kernel::Thread &a_t = sys->spawn("front");
    kernel::Thread &b_t = sys->spawn("middle");
    kernel::Thread &c_t = sys->spawn("back");
    kernel::Thread &client = sys->spawn("client");

    uint64_t b_id = 0, c_id = 0;
    c_id = rt.registerEntry(
        c_t, c_t,
        [](core::XpcServerCall &call) { call.setReplyLen(16); }, 4);
    b_id = rt.registerEntry(
        b_t, b_t,
        [&](core::XpcServerCall &call) {
            auto out = call.callNested(c_id, 0, 0, 16);
            EXPECT_TRUE(out.ok);
        },
        4);
    uint64_t a_id = rt.registerEntry(
        a_t, a_t,
        [&](core::XpcServerCall &call) {
            auto out = call.callNested(b_id, 0, 0, 16);
            EXPECT_TRUE(out.ok);
        },
        4);
    sys->manager().grantXcallCap(a_t, client, a_id);
    sys->manager().grantXcallCap(b_t, a_t, b_id);
    sys->manager().grantXcallCap(c_t, b_t, c_id);
    rt.allocRelayMem(core, client, 4096);

    trace::Tracer &tracer = trace::Tracer::global();
    tracer.clear();
    req::RequestContext::global().reset();
    auto out = rt.call(core, client, a_id, 0, 64);
    ASSERT_TRUE(out.ok);
    EXPECT_EQ(req::RequestContext::global().minted(), 1u);

    auto reports = critpath::analyze(tracer.events());
    ASSERT_EQ(reports.size(), 1u) << "nested hops minted extra ids";
    const critpath::RequestReport &r = reports[0];
    EXPECT_TRUE(r.complete);
    EXPECT_TRUE(r.flowClosed);
    EXPECT_GE(r.lanes, 4u); // client + front + middle + back
    expectExact(r);
}

TEST_F(CritPathTest, TransportCallsCloseOnEveryKernel)
{
    // The same invariants through the Transport layer on all three
    // systems: XPC fast path, seL4 IPC, Zircon channels.
    const core::SystemFlavor flavors[] = {
        core::SystemFlavor::Sel4Xpc,
        core::SystemFlavor::Sel4TwoCopy,
        core::SystemFlavor::Zircon,
    };
    for (auto flavor : flavors) {
        SCOPED_TRACE(core::systemFlavorName(flavor));
        auto sys = makeSystem(flavor);
        kernel::Thread &server = sys->spawn("server");
        kernel::Thread &client = sys->spawn("client");
        core::ServiceDesc desc;
        desc.name = "echo";
        desc.handlerThread = &server;
        core::ServiceId svc = sys->transport().registerService(
            desc, [](core::ServerApi &api) {
                api.replyFromRequest(0, api.requestLen());
            });
        sys->transport().connect(client, svc);

        hw::Core &core = sys->core(0);
        core::Transport &tr = sys->transport();
        tr.requestArea(core, client, 4096);

        trace::Tracer &tracer = trace::Tracer::global();
        tracer.clear();
        req::RequestContext::global().reset();
        uint8_t payload[64] = {0x5a};
        tr.clientWrite(core, client, 0, payload, sizeof(payload));
        core::CallResult res =
            tr.call(core, client, svc, 0, sizeof(payload), 4096);
        ASSERT_TRUE(res.ok);

        auto reports = critpath::analyze(tracer.events());
        ASSERT_EQ(reports.size(), 1u);
        const critpath::RequestReport &r = reports[0];
        EXPECT_TRUE(r.complete);
        EXPECT_TRUE(r.flowClosed);
        EXPECT_GE(r.lanes, 2u);
        expectExact(r);
    }
}

TEST_F(CritPathTest, RingWraparoundMidRequestDegradesGracefully)
{
    // A ring too small for one call: the oldest events (the request's
    // opening span and flow anchor) are overwritten. The analyzer
    // must clamp, flag the report incomplete, and still attribute
    // every surviving cycle.
    auto sys = makeSystem(core::SystemFlavor::Sel4Xpc);
    core::XpcRuntime &rt = sys->runtime();
    hw::Core &core = sys->core(0);

    kernel::Thread &server = sys->spawn("server");
    uint64_t id = rt.registerEntry(
        server, server,
        [](core::XpcServerCall &call) {
            call.setReplyLen(call.requestLen());
        },
        4);
    kernel::Thread &client = sys->spawn("client");
    sys->manager().grantXcallCap(server, client, id);
    rt.allocRelayMem(core, client, 4096);

    trace::Tracer &tracer = trace::Tracer::global();
    tracer.setCapacity(16);
    req::RequestContext::global().reset();
    auto out = rt.call(core, client, id, 0, 2048);
    ASSERT_TRUE(out.ok);
    ASSERT_EQ(tracer.size(), 16u) << "call too small to wrap the ring";

    auto reports = critpath::analyze(tracer.events());
    for (const critpath::RequestReport &r : reports) {
        expectExact(r); // holds even for a clamped window
        EXPECT_FALSE(r.complete && r.flowClosed)
            << "a wrapped request cannot be fully reconstructed";
    }
}

TEST_F(CritPathTest, FaultInjectedServerDeathStillBalancesSpans)
{
    // KillServer mid-handler: the call unwinds with ServiceDead, yet
    // the RAII span closers must still end every span so the request
    // window stays exactly attributable.
    auto sys = makeSystem(core::SystemFlavor::Sel4Xpc);
    core::XpcRuntime &rt = sys->runtime();
    hw::Core &core = sys->core(0);

    kernel::Thread &server = sys->spawn("victim");
    uint64_t id = rt.registerEntry(
        server, server,
        [](core::XpcServerCall &call) {
            call.setReplyLen(call.requestLen());
        },
        4);
    kernel::Thread &client = sys->spawn("client");
    sys->manager().grantXcallCap(server, client, id);
    rt.allocRelayMem(core, client, 4096);

    FaultPlan plan;
    FaultEvent ev;
    ev.callSeq = 1;
    ev.op = FaultOp::KillServer;
    ev.phase = FaultPhase::InHandler;
    plan.events.push_back(ev);
    FaultInjector inj(plan);
    sys->machine().setFaultInjector(&inj);
    inj.enabled = true;

    trace::Tracer &tracer = trace::Tracer::global();
    tracer.clear();
    req::RequestContext::global().reset();
    auto out = rt.call(core, client, id, 0, 64);
    EXPECT_FALSE(out.ok);
    EXPECT_EQ(out.status, kernel::CallStatus::ServiceDead);
    sys->machine().setFaultInjector(nullptr);

    auto reports = critpath::analyze(tracer.events());
    ASSERT_EQ(reports.size(), 1u);
    const critpath::RequestReport &r = reports[0];
    EXPECT_TRUE(r.flowClosed) << "unwind skipped the flow end";
    expectExact(r);
    std::string text = critpath::formatReport(r, tracer);
    EXPECT_EQ(text.find("MISMATCH"), std::string::npos);
}

TEST_F(CritPathTest, AggregateStatsAndTopReport)
{
    auto sys = makeSystem(core::SystemFlavor::Sel4Xpc);
    core::XpcRuntime &rt = sys->runtime();
    hw::Core &core = sys->core(0);

    kernel::Thread &server = sys->spawn("server");
    uint64_t id = rt.registerEntry(
        server, server,
        [](core::XpcServerCall &call) {
            uint8_t buf[64];
            call.readMsg(0, buf, sizeof(buf));
            call.setReplyLen(sizeof(buf));
        },
        4);
    kernel::Thread &client = sys->spawn("client");
    sys->manager().grantXcallCap(server, client, id);
    rt.allocRelayMem(core, client, 4096);

    trace::Tracer &tracer = trace::Tracer::global();
    tracer.clear();
    req::RequestContext::global().reset();
    constexpr int calls = 5;
    for (int i = 0; i < calls; i++)
        ASSERT_TRUE(rt.call(core, client, id, 0, 64).ok);

    auto reports = critpath::analyze(tracer.events());
    ASSERT_EQ(reports.size(), size_t(calls));
    for (const auto &r : reports)
        expectExact(r);

    critpath::CritPathStats agg;
    agg.addAll(reports);
    EXPECT_EQ(agg.total().count(), uint64_t(calls));
    ASSERT_NE(agg.span("handler"), nullptr);
    EXPECT_EQ(agg.span("handler")->count(), uint64_t(calls));

    std::string top = critpath::formatTop(reports);
    EXPECT_NE(top.find("5 request"), std::string::npos);
    EXPECT_NE(top.find("handler"), std::string::npos);
}

TEST_F(CritPathTest, TraceEventStaysPodWithSideText)
{
    // Satellite guarantee: the ring slot allocates nothing; dynamic
    // text lives in the side ring and survives lookup via textOf.
    static_assert(std::is_trivially_copyable_v<trace::TraceEvent>,
                  "TraceEvent must stay a POD ring slot");
    trace::Tracer &tracer = trace::Tracer::global();
    tracer.clear();
    tracer.instantNow("unit", "note", 7, "hello side ring");
    auto evs = tracer.events();
    ASSERT_EQ(evs.size(), 1u);
    EXPECT_EQ(tracer.textOf(evs[0]), "hello side ring");
}

} // namespace
