/**
 * @file
 * Tests for the application layer: the B+tree (unit + property), the
 * paged file, MiniDb's journaled transactions over the FS server,
 * and the YCSB driver.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "apps/minidb/minidb.hh"
#include "apps/ycsb.hh"
#include "core/recording_transport.hh"
#include "core/system.hh"
#include "services/block_device.hh"
#include "services/fs_server.hh"
#include "sim/random.hh"

namespace xpc::apps {
namespace {

/** One wired system: blockdev + FS + a DB client. */
class DbFixtureBase
{
  public:
    explicit DbFixtureBase(core::SystemFlavor flavor)
    {
        core::SystemOptions opts;
        opts.flavor = flavor;
        sys = std::make_unique<core::System>(opts);
        recorder = std::make_unique<core::RecordingTransport>(
            sys->transport());

        kernel::Thread &dev_t = sys->spawn("blockdev");
        kernel::Thread &fs_t = sys->spawn("fs");
        client = &sys->spawn("db-client");

        dev = std::make_unique<services::BlockDeviceServer>(
            *recorder, dev_t, 4096);
        recorder->connect(fs_t, dev->id());
        fsrv = std::make_unique<services::FsServer>(*recorder, fs_t,
                                                    dev->id(), 4096);
        recorder->connect(*client, fsrv->id());
    }

    MiniDb
    makeDb(const std::string &name, uint32_t cache_pages = 64)
    {
        return MiniDb(*recorder, sys->core(0), *client, fsrv->id(),
                      name, cache_pages);
    }

    std::unique_ptr<core::System> sys;
    std::unique_ptr<core::RecordingTransport> recorder;
    std::unique_ptr<services::BlockDeviceServer> dev;
    std::unique_ptr<services::FsServer> fsrv;
    kernel::Thread *client = nullptr;
};

class MiniDbTest : public ::testing::Test, public DbFixtureBase
{
  protected:
    MiniDbTest() : DbFixtureBase(core::SystemFlavor::Sel4Xpc) {}
};

TEST_F(MiniDbTest, PutGetRoundTrip)
{
    MiniDb db = makeDb("t1.db");
    std::vector<uint8_t> value(500, 0x5c);
    db.put("alpha", value.data(), uint32_t(value.size()));
    auto got = db.get("alpha");
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, value);
    EXPECT_FALSE(db.get("beta").has_value());
}

TEST_F(MiniDbTest, UpdateOverwrites)
{
    MiniDb db = makeDb("t2.db");
    uint32_t a = 1, b = 2;
    db.put("k", &a, sizeof(a));
    db.put("k", &b, sizeof(b));
    auto got = db.get("k");
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(got->size(), sizeof(b));
    uint32_t out;
    std::memcpy(&out, got->data(), 4);
    EXPECT_EQ(out, 2u);
    EXPECT_EQ(db.tree().recordCount(), 1u);
}

TEST_F(MiniDbTest, ManyRecordsSplitTheTree)
{
    MiniDb db = makeDb("t3.db");
    std::vector<uint8_t> value(800);
    for (int i = 0; i < 300; i++) {
        std::string key = "key" + std::to_string(1000 + i);
        for (auto &v : value)
            v = uint8_t(i);
        db.put(key, value.data(), uint32_t(value.size()));
    }
    EXPECT_GT(db.tree().height(), 1u);
    EXPECT_EQ(db.tree().recordCount(), 300u);
    db.tree().checkInvariants();
    for (int i = 0; i < 300; i += 37) {
        auto got = db.get("key" + std::to_string(1000 + i));
        ASSERT_TRUE(got.has_value()) << i;
        EXPECT_EQ((*got)[0], uint8_t(i));
    }
}

TEST_F(MiniDbTest, ScanVisitsInOrder)
{
    MiniDb db = makeDb("t4.db");
    for (int i = 0; i < 50; i++) {
        char key[16];
        std::snprintf(key, sizeof(key), "k%03d", i);
        uint32_t v = uint32_t(i);
        db.put(key, &v, sizeof(v));
    }
    std::vector<uint32_t> seen;
    db.tree().scan(BtKey::fromString("k010"), 10,
                   [&](const BtKey &, const uint8_t *val, uint32_t) {
                       uint32_t v;
                       std::memcpy(&v, val, 4);
                       seen.push_back(v);
                   });
    ASSERT_EQ(seen.size(), 10u);
    for (int i = 0; i < 10; i++)
        EXPECT_EQ(seen[i], uint32_t(10 + i));
}

TEST_F(MiniDbTest, EraseRemoves)
{
    MiniDb db = makeDb("t5.db");
    uint32_t v = 9;
    db.put("gone", &v, sizeof(v));
    EXPECT_TRUE(db.tree().erase(BtKey::fromString("gone")));
    EXPECT_FALSE(db.get("gone").has_value());
    EXPECT_FALSE(db.tree().erase(BtKey::fromString("gone")));
}

TEST_F(MiniDbTest, WritesJournalBeforeData)
{
    MiniDb db = makeDb("t6.db");
    uint64_t journal0 = db.journalPages.value();
    std::vector<uint8_t> value(900, 1);
    db.put("tx", value.data(), uint32_t(value.size()));
    EXPECT_GT(db.journalPages.value(), journal0);
    EXPECT_GE(db.transactions.value(), 1u);
}

TEST_F(MiniDbTest, ReadsHitThePageCacheWritesGoToDisk)
{
    MiniDb db = makeDb("t7.db");
    std::vector<uint8_t> value(200, 3);
    db.put("hot", value.data(), uint32_t(value.size()));
    uint64_t reads0 = db.pager().pageReads.value();
    for (int i = 0; i < 50; i++)
        EXPECT_TRUE(db.get("hot").has_value());
    // Point reads of a hot key never touch the FS.
    EXPECT_EQ(db.pager().pageReads.value(), reads0);

    uint64_t writes0 = db.pager().pageWrites.value();
    db.put("hot", value.data(), uint32_t(value.size()));
    EXPECT_GT(db.pager().pageWrites.value(), writes0);
}

/** Property test: MiniDb agrees with a std::map reference model. */
TEST_F(MiniDbTest, PropertyMatchesReferenceModel)
{
    MiniDb db = makeDb("t8.db");
    std::map<std::string, std::vector<uint8_t>> model;
    Rng rng(21);
    for (int i = 0; i < 400; i++) {
        std::string key =
            "p" + std::to_string(rng.nextBounded(60));
        uint64_t action = rng.nextBounded(10);
        if (action < 6) {
            std::vector<uint8_t> value(1 + rng.nextBounded(600));
            for (auto &v : value)
                v = uint8_t(rng.next());
            db.put(key, value.data(), uint32_t(value.size()));
            model[key] = value;
        } else if (action < 9) {
            auto got = db.get(key);
            auto ref = model.find(key);
            if (ref == model.end()) {
                EXPECT_FALSE(got.has_value()) << key;
            } else {
                ASSERT_TRUE(got.has_value()) << key;
                EXPECT_EQ(*got, ref->second) << key;
            }
        } else {
            bool had = db.tree().erase(BtKey::fromString(key));
            EXPECT_EQ(had, model.erase(key) > 0) << key;
        }
    }
    db.tree().checkInvariants();
    EXPECT_EQ(db.tree().recordCount(), model.size());
}

TEST_F(MiniDbTest, YcsbLoadAndAllWorkloadsRun)
{
    MiniDb db = makeDb("ycsb.db", 128);
    YcsbConfig cfg;
    cfg.records = 120;
    cfg.operations = 60;
    Ycsb ycsb(cfg);
    ycsb.load(db, sys->core(0));
    EXPECT_EQ(db.tree().recordCount(), cfg.records);

    for (auto w : {YcsbWorkload::A, YcsbWorkload::B, YcsbWorkload::C,
                   YcsbWorkload::D, YcsbWorkload::E, YcsbWorkload::F}) {
        YcsbResult r = ycsb.run(db, sys->core(0), w);
        EXPECT_EQ(r.operations, cfg.operations) << ycsbName(w);
        EXPECT_GT(r.totalCycles.value(), 0u) << ycsbName(w);
        switch (w) {
          case YcsbWorkload::C:
            EXPECT_EQ(r.updates + r.inserts + r.scans, 0u);
            break;
          case YcsbWorkload::E:
            EXPECT_GT(r.scans, r.inserts);
            break;
          default:
            break;
        }
    }
    db.tree().checkInvariants();
}

TEST_F(MiniDbTest, RecordingTransportSeesTheIpc)
{
    recorder->reset();
    MiniDb db = makeDb("rec.db");
    std::vector<uint8_t> value(700, 9);
    db.put("x", value.data(), uint32_t(value.size()));
    EXPECT_GT(recorder->calls, 0u);
    EXPECT_GT(recorder->totalRoundTrip, 0u);
    EXPECT_GE(recorder->totalRoundTrip, recorder->totalHandler);
}

TEST(MiniDbFlavors, WriteHeavyRunsFasterOnXpc)
{
    auto measure = [](core::SystemFlavor flavor) {
        DbFixtureBase fix(flavor);
        MiniDb db = fix.makeDb("bench.db", 128);
        YcsbConfig cfg;
        cfg.records = 60;
        cfg.operations = 40;
        Ycsb ycsb(cfg);
        ycsb.load(db, fix.sys->core(0));
        YcsbResult r = ycsb.run(db, fix.sys->core(0), YcsbWorkload::A);
        return r.totalCycles.value();
    };
    uint64_t xpc = measure(core::SystemFlavor::Sel4Xpc);
    uint64_t sel4 = measure(core::SystemFlavor::Sel4TwoCopy);
    uint64_t zircon = measure(core::SystemFlavor::Zircon);
    EXPECT_GT(sel4, xpc);
    EXPECT_GT(zircon, sel4);
}

} // namespace
} // namespace xpc::apps
