/**
 * @file
 * Chaos soak test for the fault-injection subsystem (DESIGN.md §4c).
 *
 * A seeded FaultPlan breaks calls across a three-workload supervised
 * service stack - web (http -> cache -> crypto), fs (fs -> blockdev)
 * and a YCSB-flavored key-value store - while a Supervisor restarts
 * dead services and re-registers them, and the client retries with
 * capped exponential backoff. The soak must sustain at least 100
 * injected faults of at least 4 distinct kinds with zero panics,
 * every client operation ending in success or a clean error status,
 * the liveness invariants holding throughout (no call ever leaves
 * the core mid-chain, segment accounting stays bounded), the system
 * fully functional again once injection stops, and an identical
 * fired-fault sequence when the run is replayed from the same seed.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/system.hh"
#include "services/admission.hh"
#include "services/block_device.hh"
#include "services/fs_server.hh"
#include "services/kv.hh"
#include "services/name_server.hh"
#include "services/proto.hh"
#include "services/supervisor.hh"
#include "services/web.hh"
#include "sim/fault_injector.hh"

namespace xpc::services {
namespace {

constexpr uint64_t diskBlocks = 2048;
constexpr uint64_t httpMaxBody = 4096;

/** Pause injection for the duration of a recovery action. */
class ScopedCalm
{
  public:
    explicit ScopedCalm(FaultInjector *inj) : inj(inj)
    {
        if (inj) {
            was = inj->enabled;
            inj->enabled = false;
        }
    }
    ~ScopedCalm()
    {
        if (inj)
            inj->enabled = was;
    }

  private:
    FaultInjector *inj;
    bool was = false;
};

// The KV workload (KvServer) used to live here; it moved to
// services/kv.hh so the tenant suite and examples share it.

/** The supervised three-workload stack. */
struct ChaosRig
{
    std::unique_ptr<core::System> sys;
    core::Transport *tr = nullptr;
    std::unique_ptr<NameServer> ns;
    std::unique_ptr<Supervisor> sup;

    /** Policy every client helper uses (overload rigs tighten it). */
    RetryPolicy policy;

    /** Admission controllers (overload rigs only; null otherwise).
     *  They outlive restarts: fresh instances re-attach to the same
     *  controller, so backlog accounting spans the service's lives. */
    std::unique_ptr<AdmissionController> admCache;
    std::unique_ptr<AdmissionController> admFs;
    std::unique_ptr<AdmissionController> admKv;

    // Every instance ever started is kept alive: transport-side
    // handler closures reference them by pointer.
    std::vector<std::unique_ptr<BlockDeviceServer>> devs;
    std::vector<std::unique_ptr<FsServer>> fss;
    std::vector<std::unique_ptr<FileCacheServer>> caches;
    std::vector<std::unique_ptr<CryptoServer>> cryptos;
    std::vector<std::unique_ptr<HttpServer>> https;
    std::vector<std::unique_ptr<KvServer>> kvs;

    kernel::Thread *fsT = nullptr;
    kernel::Thread *httpT = nullptr;
    kernel::Thread *client = nullptr;

    explicit ChaosRig(bool overload = false)
    {
        core::SystemOptions opts;
        opts.flavor = core::SystemFlavor::Sel4Xpc;
        opts.runtimeOpts.timeoutCycles = Cycles(20000);
        if (overload) {
            // Per-call cycle budget, enforced by the runtime on
            // every hop (a stalled server burns it and is unwound).
            opts.deadlineCycles = Cycles(150000);
        }
        sys = std::make_unique<core::System>(opts);
        tr = &sys->transport();

        kernel::Thread &ns_t = sys->spawn("nameserver");
        ns = std::make_unique<NameServer>(*tr, ns_t);
        sup = std::make_unique<Supervisor>(*tr, *ns);
        client = &sys->spawn("client");

        if (overload) {
            policy.maxAttempts = 8;
            policy.deadlineCycles = Cycles(600000);
            sup->breakerOpts.enabled = true;
            sup->breakerOpts.failureThreshold = 3;
            sup->breakerOpts.cooldownCycles = Cycles(60000);

            AdmissionOptions tight;
            tight.highWatermark = 4;
            tight.drainCycles = Cycles(30000);
            tight.clientShare = 0;
            admKv = std::make_unique<AdmissionController>("kv", tight);
            // Roomy controllers on the slower services: they mostly
            // admit, but keep the accounting live across restarts.
            admCache = std::make_unique<AdmissionController>("cache");
            admFs = std::make_unique<AdmissionController>("fs");
        }

        // Supervision map iterates by name; dependency killers rely
        // on "blockdev" < "fs" and "cache"/"crypto" < "httpd" so a
        // dependent killed by its dependency's restart is itself
        // rebuilt later in the same sweep.
        kernel::Thread *t = nullptr;
        core::ServiceId id = makeBlockdev(t);
        ns->bind("blockdev", id);
        sup->supervise("blockdev", *t, id,
                       [this](kernel::Thread *&srv) {
                           ScopedCalm calm(sys->machine().faultInjector());
                           // A fresh blank disk invalidates the
                           // mounted volume: the fs server must go
                           // down with it and remount.
                           killProcessOf(fsT);
                           return makeBlockdev(srv);
                       });

        id = makeFs(t);
        fsT = t;
        ns->bind("fs", id);
        sup->supervise("fs", *t, id, [this](kernel::Thread *&srv) {
            ScopedCalm calm(sys->machine().faultInjector());
            core::ServiceId fresh = makeFs(srv);
            fsT = srv;
            return fresh;
        });

        id = makeCache(t);
        ns->bind("cache", id);
        sup->supervise("cache", *t, id, [this](kernel::Thread *&srv) {
            ScopedCalm calm(sys->machine().faultInjector());
            // The http server holds the dead instance's id; rebuild
            // it against the fresh one.
            killProcessOf(httpT);
            return makeCache(srv);
        });

        id = makeCrypto(t);
        ns->bind("crypto", id);
        sup->supervise("crypto", *t, id, [this](kernel::Thread *&srv) {
            ScopedCalm calm(sys->machine().faultInjector());
            killProcessOf(httpT);
            return makeCrypto(srv);
        });

        id = makeHttp(t);
        httpT = t;
        ns->bind("httpd", id);
        sup->supervise("httpd", *t, id, [this](kernel::Thread *&srv) {
            ScopedCalm calm(sys->machine().faultInjector());
            core::ServiceId fresh = makeHttp(srv);
            httpT = srv;
            return fresh;
        });

        id = makeKv(t);
        ns->bind("kv", id);
        sup->supervise("kv", *t, id, [this](kernel::Thread *&srv) {
            ScopedCalm calm(sys->machine().faultInjector());
            return makeKv(srv);
        });
    }

    void killProcessOf(kernel::Thread *t)
    {
        if (t && t->process() && !t->process()->dead)
            sys->manager().onProcessExit(*t->process());
    }

    core::ServiceId makeBlockdev(kernel::Thread *&t)
    {
        t = &sys->spawn("blockdev");
        devs.push_back(std::make_unique<BlockDeviceServer>(
            *tr, *t, diskBlocks));
        return devs.back()->id();
    }

    core::ServiceId makeFs(kernel::Thread *&t)
    {
        t = &sys->spawn("fs");
        core::ServiceId dev = sup->currentId("blockdev");
        tr->connect(*t, dev);
        fss.push_back(std::make_unique<FsServer>(*tr, *t, dev,
                                                 diskBlocks));
        fss.back()->setAdmission(admFs.get());
        return fss.back()->id();
    }

    core::ServiceId makeCache(kernel::Thread *&t)
    {
        t = &sys->spawn("webcache");
        caches.push_back(
            std::make_unique<FileCacheServer>(*tr, *t));
        std::vector<uint8_t> page(1500);
        for (size_t i = 0; i < page.size(); i++)
            page[i] = uint8_t('A' + (i % 26));
        caches.back()->preload("/index.html", page);
        caches.back()->setAdmission(admCache.get());
        return caches.back()->id();
    }

    core::ServiceId makeCrypto(kernel::Thread *&t)
    {
        t = &sys->spawn("crypto");
        static const uint8_t key[crypto::Aes128::keyBytes] = {
            0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6,
            0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c};
        cryptos.push_back(
            std::make_unique<CryptoServer>(*tr, *t, key));
        return cryptos.back()->id();
    }

    core::ServiceId makeHttp(kernel::Thread *&t)
    {
        t = &sys->spawn("httpd");
        core::ServiceId cache_id = sup->currentId("cache");
        core::ServiceId crypto_id = sup->currentId("crypto");
        tr->connect(*t, cache_id);
        tr->connect(*t, crypto_id);
        https.push_back(std::make_unique<HttpServer>(
            *tr, *t, cache_id, crypto_id, /*encrypt=*/true,
            httpMaxBody));
        return https.back()->id();
    }

    core::ServiceId makeKv(kernel::Thread *&t)
    {
        t = &sys->spawn("kv");
        kvs.push_back(std::make_unique<KvServer>(*tr, *t));
        kvs.back()->setAdmission(admKv.get());
        return kvs.back()->id();
    }
};

/** Sentinel for "the transport/retry layer gave up". */
constexpr int64_t callFailed = INT64_MIN;

int64_t
fsOp(ChaosRig &rig, hw::Core &core, proto::FsOp op,
     const proto::FsMsg &msg, const void *payload, uint64_t plen,
     void *rdata, uint64_t rcap)
{
    using namespace proto;
    std::vector<uint8_t> req(fsDataOffset + plen);
    packInto(req.data(), msg);
    if (plen > 0)
        std::memcpy(req.data() + fsDataOffset, payload, plen);
    std::vector<uint8_t> rep(fsDataOffset + rcap);
    int64_t rlen = rig.sup->callWithRetry(
        core, *rig.client, "fs", uint64_t(op), req.data(), req.size(),
        rep.data(), rep.size(), rig.policy);
    if (rlen < int64_t(sizeof(FsMsg)))
        return callFailed;
    FsMsg reply = unpackFrom<FsMsg>(rep.data());
    if (reply.a > 0 && rdata) {
        uint64_t n = std::min<uint64_t>(uint64_t(reply.a), rcap);
        std::memcpy(rdata, rep.data() + fsDataOffset, n);
    }
    return reply.a;
}

int64_t
httpGet(ChaosRig &rig, hw::Core &core, const std::string &path,
        std::string *response, uint64_t *garbled)
{
    using namespace proto;
    std::string text = "GET " + path + " HTTP/1.1\r\n\r\n";
    std::vector<uint8_t> req(sizeof(HttpReplyHeader) + text.size(), 0);
    std::memcpy(req.data() + sizeof(HttpReplyHeader), text.data(),
                text.size());
    std::vector<uint8_t> rep(HttpServer::bodyOff + httpMaxBody + 64);
    int64_t rlen = rig.sup->callWithRetry(
        core, *rig.client, "httpd", uint64_t(HttpOp::Request),
        req.data(), req.size(), rep.data(), rep.size(), rig.policy);
    if (rlen < int64_t(sizeof(HttpReplyHeader)))
        return callFailed;
    auto pre = unpackFrom<HttpReplyHeader>(rep.data());
    if (pre.respOff + pre.respLen > uint64_t(rlen)) {
        (*garbled)++; // a successful call must frame its reply
        return callFailed;
    }
    if (response)
        response->assign(rep.begin() + pre.respOff,
                         rep.begin() + pre.respOff + pre.respLen);
    return int64_t(pre.respLen);
}

bool
kvPut(ChaosRig &rig, hw::Core &core, uint64_t key)
{
    auto val = KvServer::valueFor(key);
    std::vector<uint8_t> req(8 + val.size());
    std::memcpy(req.data(), &key, 8);
    std::memcpy(req.data() + 8, val.data(), val.size());
    return rig.sup->callWithRetry(core, *rig.client, "kv",
                                  KvServer::opPut, req.data(),
                                  req.size(), nullptr, 0,
                                  rig.policy) >= 0;
}

/** @return 1 verified hit, 0 clean miss, -1 clean failure,
 *          -2 corrupt value (must never happen). */
int
kvGet(ChaosRig &rig, hw::Core &core, uint64_t key)
{
    uint8_t rep[KvServer::valueBytes] = {};
    int64_t r = rig.sup->callWithRetry(core, *rig.client, "kv",
                                       KvServer::opGet, &key,
                                       sizeof(key), rep, sizeof(rep),
                                       rig.policy);
    if (r < 0)
        return -1;
    if (r == 0)
        return 0;
    auto want = KvServer::valueFor(key);
    if (r != int64_t(want.size()))
        return -2;
    return std::memcmp(rep, want.data(), want.size()) == 0 ? 1 : -2;
}

struct SoakResult
{
    std::vector<FaultEvent> fired;
    uint32_t firedKinds = 0;
    uint64_t calls = 0;
    std::string json;
    uint64_t opsOk = 0;
    uint64_t opsFailedClean = 0;
    uint64_t corrupt = 0;
    uint64_t restarts = 0;
    uint64_t retries = 0;
    uint64_t leakedBlocks = 0;
};

SoakResult
runSoak(uint64_t seed, int iters, uint64_t plan_events,
        uint64_t plan_span)
{
    // The classic six-op storm (kill/hang/revoke/corrupt/exception/
    // copy-fault): stall and slow faults get their own soak below.
    FaultInjector inj(FaultPlan::generate(seed, plan_events,
                                          plan_span, 0x3f));
    ChaosRig rig;
    rig.sys->machine().setFaultInjector(&inj);
    hw::Core &core = rig.sys->core(0);
    SoakResult res;

    auto note = [&](bool clean_ok) {
        if (clean_ok) {
            res.opsOk++;
        } else {
            res.opsFailedClean++;
            // A failed operation must carry a named error status.
            EXPECT_NE(rig.sup->lastStatus, core::TransportStatus::Ok);
        }
        // Invariant: no operation ever leaves the core mid-chain.
        EXPECT_EQ(core.csrs.linkTop, 0u);
    };

    inj.enabled = true;
    for (int i = 0; i < iters; i++) {
        // --- fs workload: open / write / read back / close ---
        std::string path = "/f" + std::to_string(i % 8);
        proto::FsMsg om;
        om.a = int64_t(proto::fsOpenCreate);
        om.c = int64_t(path.size());
        int64_t fd = fsOp(rig, core, proto::FsOp::Open, om,
                          path.data(), path.size(), nullptr, 0);
        note(fd != callFailed);
        if (fd >= 0) {
            std::vector<uint8_t> data(1024);
            for (size_t j = 0; j < data.size(); j++)
                data[j] = uint8_t(i + 3 * j);
            proto::FsMsg wm;
            wm.a = fd;
            wm.b = int64_t((i % 4) * 1024);
            wm.c = int64_t(data.size());
            int64_t w = fsOp(rig, core, proto::FsOp::Write, wm,
                             data.data(), data.size(), nullptr, 0);
            note(w != callFailed);

            std::vector<uint8_t> back(1024);
            proto::FsMsg rm;
            rm.a = fd;
            rm.b = wm.b;
            rm.c = int64_t(back.size());
            int64_t r = fsOp(rig, core, proto::FsOp::Read, rm,
                             nullptr, 0, back.data(), back.size());
            note(r != callFailed);

            proto::FsMsg cm;
            cm.a = fd;
            int64_t c = fsOp(rig, core, proto::FsOp::Close, cm,
                             nullptr, 0, nullptr, 0);
            note(c != callFailed);
        }

        // --- web workload: GET through http -> cache -> crypto ---
        std::string resp;
        int64_t n = httpGet(rig, core,
                            (i % 3 == 0) ? "/missing.html"
                                         : "/index.html",
                            &resp, &res.corrupt);
        note(n != callFailed);
        if (n > 0 && resp.rfind("HTTP/1.1 ", 0) != 0)
            res.corrupt++;

        // --- ycsb-ish kv workload: put then read-verify ---
        uint64_t key = 1 + (uint64_t(i) * 7) % 32;
        note(kvPut(rig, core, key));
        int g = kvGet(rig, core, key);
        note(g != -1);
        if (g == -2)
            res.corrupt++;

        // Invariant: segment accounting stays bounded (everything a
        // dead instance owned was reclaimed).
        EXPECT_LE(rig.sys->manager().liveSegCount(), 32u);
    }

    // The storm is over: after one heal the whole stack must be
    // fully functional again.
    inj.enabled = false;
    rig.sup->heal();
    std::string resp;
    uint64_t garbled = 0;
    EXPECT_GT(httpGet(rig, core, "/index.html", &resp, &garbled), 0);
    EXPECT_EQ(garbled, 0u);
    EXPECT_TRUE(kvPut(rig, core, 7));
    EXPECT_EQ(kvGet(rig, core, 7), 1);
    proto::FsMsg om;
    om.a = int64_t(proto::fsOpenCreate);
    om.c = 2;
    EXPECT_GE(fsOp(rig, core, proto::FsOp::Open, om, "/z", 2,
                   nullptr, 0),
              0);
    for (const char *name :
         {"blockdev", "fs", "cache", "crypto", "httpd", "kv"})
        EXPECT_FALSE(rig.sup->isDown(name)) << name;

    res.fired = inj.fired();
    res.firedKinds = inj.firedKinds();
    res.calls = inj.callCount();
    res.json = inj.reportJson();
    res.restarts = rig.sup->restarts.value();
    res.retries = rig.sup->retries.value();
    for (auto &fs : rig.fss)
        res.leakedBlocks += fs->fsImpl().leakedBlocks.value();
    return res;
}

TEST(ChaosSoak, SurvivesSeededFaultStorm)
{
    constexpr uint64_t seed = 0xC4A05;
    SoakResult res = runSoak(seed, 240, 220, 5000);

    // The plan actually exercised the machinery: >= 100 faults of
    // >= 4 kinds fired (ISSUE acceptance).
    EXPECT_GE(res.fired.size(), 100u);
    EXPECT_GE(res.firedKinds, 4u);
    EXPECT_GT(res.calls, 5000u); // the whole plan window was driven

    // Zero corruption: every reply either failed cleanly or carried
    // exactly the bytes the protocol promised.
    EXPECT_EQ(res.corrupt, 0u);

    // Recovery actually happened, and most traffic still succeeded.
    EXPECT_GT(res.restarts, 0u);
    EXPECT_GT(res.retries, 0u);
    EXPECT_GT(res.opsOk, res.opsFailedClean);

    // Satellite: seed + injected-fault counts in the test's JSON
    // output (RecordProperty lands in ctest/gtest XML+JSON).
    ::testing::Test::RecordProperty("chaos_seed",
                                    std::to_string(seed));
    ::testing::Test::RecordProperty("chaos_report", res.json);
    std::printf("CHAOS_JSON %s\n", res.json.c_str());
    std::printf("CHAOS_STATS ok=%llu failed_clean=%llu restarts=%llu "
                "retries=%llu leaked_blocks=%llu\n",
                (unsigned long long)res.opsOk,
                (unsigned long long)res.opsFailedClean,
                (unsigned long long)res.restarts,
                (unsigned long long)res.retries,
                (unsigned long long)res.leakedBlocks);
}

TEST(ChaosSoak, SameSeedReplaysIdenticalFaultSequence)
{
    SoakResult a = runSoak(0xDE7E12, 80, 80, 1600);
    SoakResult b = runSoak(0xDE7E12, 80, 80, 1600);

    EXPECT_EQ(a.calls, b.calls);
    ASSERT_EQ(a.fired.size(), b.fired.size());
    for (size_t i = 0; i < a.fired.size(); i++) {
        EXPECT_EQ(a.fired[i].callSeq, b.fired[i].callSeq) << i;
        EXPECT_EQ(a.fired[i].op, b.fired[i].op) << i;
        EXPECT_EQ(a.fired[i].phase, b.fired[i].phase) << i;
        EXPECT_EQ(a.fired[i].arg, b.fired[i].arg) << i;
    }
    EXPECT_GT(a.fired.size(), 10u);

    // A different seed produces a different storm.
    SoakResult c = runSoak(0xDE7E13, 80, 80, 1600);
    bool same = a.fired.size() == c.fired.size();
    for (size_t i = 0; same && i < a.fired.size(); i++)
        same = a.fired[i].callSeq == c.fired[i].callSeq &&
               a.fired[i].op == c.fired[i].op;
    EXPECT_FALSE(same);
}

// --------------------------------------------------------------------
// Stall + overload soak (DESIGN.md §4e): kills, stalled and slowed
// servers, plus bursty load against a tight admission controller.
// Every request must reach a terminal outcome in {ok, timeout, shed,
// breaker-open} with zero hangs, and two same-seed runs must produce
// identical outcome counts and stats.
// --------------------------------------------------------------------

struct OverloadResult
{
    uint64_t ok = 0;
    uint64_t timeout = 0;
    uint64_t shed = 0;
    uint64_t breakerOpen = 0;
    uint64_t other = 0;
    uint64_t deadlineExpired = 0;
    uint64_t revocations = 0;
    uint64_t lateBlocked = 0;
    uint64_t admShed = 0;
    uint64_t trips = 0;
    uint64_t rejected = 0;
    uint64_t restarts = 0;
    std::vector<FaultEvent> fired;
};

OverloadResult
runOverloadSoak(uint64_t seed, int iters)
{
    uint32_t mask = (1u << uint32_t(FaultOp::KillServer)) |
                    (1u << uint32_t(FaultOp::StallServer)) |
                    (1u << uint32_t(FaultOp::SlowServer));
    FaultInjector inj(FaultPlan::generate(seed, 50, 1500, mask));
    ChaosRig rig(/*overload=*/true);
    rig.sys->machine().setFaultInjector(&inj);
    hw::Core &core = rig.sys->core(0);
    OverloadResult res;

    auto classify = [&](int64_t ret) {
        // Zero hangs: control always returns, fully unwound.
        EXPECT_EQ(core.csrs.linkTop, 0u);
        if (ret >= 0) {
            res.ok++;
            return;
        }
        switch (rig.sup->lastStatus) {
          case core::TransportStatus::Timeout:
          case core::TransportStatus::DeadlineExpired:
            res.timeout++;
            break;
          case core::TransportStatus::Overloaded:
            res.shed++;
            break;
          case core::TransportStatus::BreakerOpen:
            res.breakerOpen++;
            break;
          default:
            res.other++;
            ADD_FAILURE() << "non-terminal outcome: "
                          << kernel::callStatusName(
                                 rig.sup->lastStatus);
            break;
        }
    };

    // Bursts probe the admission controller: at most one (healing)
    // retry, so ten rapid calls land inside one drain window but a
    // mid-call kill still resolves to a terminal outcome.
    RetryPolicy burst;
    burst.maxAttempts = 2;

    inj.enabled = true;
    for (int i = 0; i < iters; i++) {
        // fs workload: open / write / close.
        std::string path = "/f" + std::to_string(i % 8);
        proto::FsMsg om;
        om.a = int64_t(proto::fsOpenCreate);
        om.c = int64_t(path.size());
        int64_t fd = fsOp(rig, core, proto::FsOp::Open, om,
                          path.data(), path.size(), nullptr, 0);
        classify(fd != callFailed ? 0 : -1);
        if (fd >= 0) {
            std::vector<uint8_t> data(512, uint8_t(i));
            proto::FsMsg wm;
            wm.a = fd;
            wm.c = int64_t(data.size());
            classify(fsOp(rig, core, proto::FsOp::Write, wm,
                          data.data(), data.size(), nullptr,
                          0) != callFailed
                         ? 0
                         : -1);
            proto::FsMsg cm;
            cm.a = fd;
            classify(fsOp(rig, core, proto::FsOp::Close, cm, nullptr,
                          0, nullptr, 0) != callFailed
                         ? 0
                         : -1);
        }

        // web workload.
        std::string resp;
        uint64_t garbled = 0;
        classify(httpGet(rig, core, "/index.html", &resp,
                         &garbled) != callFailed
                     ? 0
                     : -1);
        EXPECT_EQ(garbled, 0u);

        // kv workload, with a burst every 8th iteration.
        uint64_t key = 1 + (uint64_t(i) * 7) % 32;
        classify(kvPut(rig, core, key) ? 0 : -1);
        if (i % 8 == 7) {
            for (int b = 0; b < 10; b++) {
                uint8_t rep[KvServer::valueBytes] = {};
                uint64_t k = 1 + uint64_t(b);
                classify(rig.sup->callWithRetry(
                    core, *rig.client, "kv", KvServer::opGet, &k,
                    sizeof(k), rep, sizeof(rep), burst));
            }
        }
    }
    inj.enabled = false;

    res.deadlineExpired = rig.sys->runtime().deadlineExpired.value();
    res.revocations = rig.sys->runtime().deadlineRevocations.value();
    res.lateBlocked = rig.sys->runtime().lateWritesBlocked.value();
    res.admShed = rig.admKv->shed.value() + rig.admCache->shed.value() +
                  rig.admFs->shed.value();
    res.trips = rig.sup->breakerTrips.value();
    res.rejected = rig.sup->breakerRejected.value();
    res.restarts = rig.sup->restarts.value();
    res.fired = inj.fired();
    return res;
}

TEST(ChaosSoak, StallAndOverloadSoakTerminatesEveryRequest)
{
    OverloadResult res = runOverloadSoak(0x57A11, 48);

    // The storm did something: stalls burned deadlines, the relay
    // segs of stalled servers were revoked, the admission controller
    // shed bursts and the breaker tripped.
    EXPECT_GT(res.ok, 0u);
    EXPECT_GT(res.timeout, 0u);
    EXPECT_GT(res.shed, 0u);
    EXPECT_GT(res.deadlineExpired, 0u);
    EXPECT_GT(res.revocations, 0u);
    EXPECT_GT(res.admShed, 0u);
    EXPECT_GT(res.trips, 0u);
    EXPECT_GT(res.breakerOpen, 0u);

    // Every request terminated in {ok, timeout, shed, breaker-open}.
    EXPECT_EQ(res.other, 0u);

    std::printf("OVERLOAD_STATS ok=%llu timeout=%llu shed=%llu "
                "breaker_open=%llu expired=%llu revoked=%llu "
                "late_blocked=%llu trips=%llu restarts=%llu\n",
                (unsigned long long)res.ok,
                (unsigned long long)res.timeout,
                (unsigned long long)res.shed,
                (unsigned long long)res.breakerOpen,
                (unsigned long long)res.deadlineExpired,
                (unsigned long long)res.revocations,
                (unsigned long long)res.lateBlocked,
                (unsigned long long)res.trips,
                (unsigned long long)res.restarts);
}

TEST(ChaosSoak, StallAndOverloadSoakIsDeterministic)
{
    OverloadResult a = runOverloadSoak(0x57A12, 32);
    OverloadResult b = runOverloadSoak(0x57A12, 32);

    // Identical outcome counts...
    EXPECT_EQ(a.ok, b.ok);
    EXPECT_EQ(a.timeout, b.timeout);
    EXPECT_EQ(a.shed, b.shed);
    EXPECT_EQ(a.breakerOpen, b.breakerOpen);
    EXPECT_EQ(a.other, b.other);
    // ...identical stats...
    EXPECT_EQ(a.deadlineExpired, b.deadlineExpired);
    EXPECT_EQ(a.revocations, b.revocations);
    EXPECT_EQ(a.lateBlocked, b.lateBlocked);
    EXPECT_EQ(a.admShed, b.admShed);
    EXPECT_EQ(a.trips, b.trips);
    EXPECT_EQ(a.rejected, b.rejected);
    EXPECT_EQ(a.restarts, b.restarts);
    // ...and an identical fired-fault sequence.
    ASSERT_EQ(a.fired.size(), b.fired.size());
    for (size_t i = 0; i < a.fired.size(); i++) {
        EXPECT_EQ(a.fired[i].callSeq, b.fired[i].callSeq) << i;
        EXPECT_EQ(a.fired[i].op, b.fired[i].op) << i;
    }
}

} // namespace
} // namespace xpc::services
