/**
 * @file
 * Unit tests for the kernel layer: address spaces, processes, the
 * seL4 and Zircon IPC paths, and the XPC control plane.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "kernel/sel4.hh"
#include "kernel/xpc_manager.hh"
#include "kernel/zircon.hh"
#include "sim/logging.hh"

namespace xpc::kernel {
namespace {

class KernelTest : public ::testing::Test
{
  protected:
    KernelTest()
        : machine(hw::rocketU500(), 128 << 20), kern(machine)
    {}

    hw::Machine machine;
    Sel4Kernel kern;
};

TEST_F(KernelTest, ProcessAllocatesUsableMemory)
{
    Process &p = kern.createProcess("test");
    VAddr va = p.alloc(3 * pageSize);
    uint64_t v = 0x1234;
    ASSERT_TRUE(kern.userWrite(machine.core(0), p, va + 100, &v,
                               8).ok);
    uint64_t out = 0;
    ASSERT_TRUE(kern.userRead(machine.core(0), p, va + 100, &out,
                              8).ok);
    EXPECT_EQ(out, v);
}

TEST_F(KernelTest, AddressSpacesAreIsolated)
{
    Process &a = kern.createProcess("a");
    Process &b = kern.createProcess("b");
    VAddr va = a.alloc(pageSize);
    uint64_t v = 42;
    kern.userWrite(machine.core(0), a, va, &v, 8);
    uint64_t out = 0;
    // The same VA in b is unmapped (or different memory).
    auto res = kern.userRead(machine.core(0), b, va, &out, 8);
    EXPECT_TRUE(!res.ok || out != v);
}

TEST_F(KernelTest, AllocMapRejectsOverlapWithSegReservation)
{
    Process &p = kern.createProcess("p");
    VAddr seg = p.space().reserveSegRange(4 * pageSize);
    VAddr heap = p.alloc(64 * pageSize);
    EXPECT_TRUE(heap + 64 * pageSize <= seg ||
                heap >= seg + 4 * pageSize);
}

TEST_F(KernelTest, FreeMapReturnsFrames)
{
    Process &p = kern.createProcess("p");
    // First cycle allocates page-table nodes, which the table keeps.
    p.space().freeMap(p.alloc(16 * pageSize));
    uint64_t before = machine.allocator().freeBytes();
    VAddr va = p.alloc(16 * pageSize);
    EXPECT_LT(machine.allocator().freeBytes(), before);
    p.space().freeMap(va);
    EXPECT_EQ(machine.allocator().freeBytes(), before);
}

TEST_F(KernelTest, ContextSwitchChargesAndSwitches)
{
    Process &a = kern.createProcess("a");
    Process &b = kern.createProcess("b");
    Thread &ta = kern.createThread(a, 0);
    Thread &tb = kern.createThread(b, 0);
    hw::Core &c = machine.core(0);
    kern.setCurrent(0, &ta);
    Cycles t0 = c.now();
    kern.contextSwitchTo(c, tb);
    EXPECT_GT(c.now(), t0);
    EXPECT_EQ(kern.current(0), &tb);
    EXPECT_EQ(c.csrs.pageTableRoot, b.space().root());
}

class Sel4IpcTest : public ::testing::Test
{
  protected:
    Sel4IpcTest()
        : machine(hw::rocketU500(), 128 << 20), kern(machine),
          client_proc(kern.createProcess("client")),
          server_proc(kern.createProcess("server")),
          client(kern.createThread(client_proc, 0)),
          server(kern.createThread(server_proc, 0))
    {
        kern.setCurrent(0, &client);
        // Echo server: reply = request bytes, reversed in place is
        // too slow for big tests; plain echo suffices.
        ep = kern.createEndpoint(server, [](Sel4ServerCall &call) {
            std::vector<uint8_t> buf(call.requestLen());
            call.readRequest(0, buf.data(), buf.size());
            for (auto &b : buf)
                b ^= 0xff;
            call.writeReply(0, buf.data(), buf.size());
        });
        kern.grantEndpointCap(client, ep);
        req = client_proc.alloc(64 * 1024);
        reply = client_proc.alloc(64 * 1024);
    }

    Sel4CallOutcome
    doCall(uint64_t len, LongMsgMode mode = LongMsgMode::TwoCopy)
    {
        std::vector<uint8_t> data(len);
        for (uint64_t i = 0; i < len; i++)
            data[i] = uint8_t(i * 13 + 7);
        if (len > 0) {
            kern.userWrite(machine.core(0), client_proc, req,
                           data.data(), len);
        }
        auto out = kern.call(machine.core(0), client, ep, 1, req, len,
                             reply, 64 * 1024, mode);
        if (out.ok && len > 0) {
            std::vector<uint8_t> got(len);
            kern.userRead(machine.core(0), client_proc, reply,
                          got.data(), len);
            for (uint64_t i = 0; i < len; i++) {
                EXPECT_EQ(got[i], uint8_t(data[i] ^ 0xff))
                    << "byte " << i << " len " << len;
            }
        }
        return out;
    }

    hw::Machine machine;
    Sel4Kernel kern;
    Process &client_proc;
    Process &server_proc;
    Thread &client;
    Thread &server;
    uint64_t ep = 0;
    VAddr req = 0, reply = 0;
};

TEST_F(Sel4IpcTest, RegisterMessageRoundTrips)
{
    auto out = doCall(16);
    EXPECT_TRUE(out.ok);
    EXPECT_EQ(out.replyLen, 16u);
    EXPECT_EQ(kern.fastpathCalls.value(), 1u);
}

TEST_F(Sel4IpcTest, MediumMessageTakesSlowPath)
{
    auto out = doCall(64);
    EXPECT_TRUE(out.ok);
    EXPECT_GE(kern.slowpathCalls.value(), 1u);
}

TEST_F(Sel4IpcTest, LargeMessagesRoundTripBothModes)
{
    EXPECT_TRUE(doCall(4096, LongMsgMode::TwoCopy).ok);
    EXPECT_TRUE(doCall(4096, LongMsgMode::OneCopy).ok);
    EXPECT_TRUE(doCall(32768, LongMsgMode::TwoCopy).ok);
}

TEST_F(Sel4IpcTest, TwoCopyCostsMoreThanOneCopy)
{
    doCall(16384, LongMsgMode::TwoCopy); // warm everything
    auto two = doCall(16384, LongMsgMode::TwoCopy);
    auto one = doCall(16384, LongMsgMode::OneCopy);
    EXPECT_GT(two.roundTrip.value(), one.roundTrip.value());
}

TEST_F(Sel4IpcTest, FastPathBreakdownNearPaperTable1)
{
    // Warm caches with a few calls first, as the paper's fast-path
    // numbers are warm-path numbers.
    for (int i = 0; i < 8; i++)
        doCall(0);
    auto out = doCall(0);
    ASSERT_TRUE(out.ok);
    const Sel4Phases &ph = kern.lastPhases;
    // Paper Table 1 (0B): trap 107, logic 212, switch 146,
    // restore 199, sum 664. Accept a +-35% band.
    EXPECT_NEAR(double(ph.trap.value()), 107, 38);
    EXPECT_NEAR(double(ph.logic.value()), 212, 75);
    EXPECT_NEAR(double(ph.processSwitch.value()), 146, 52);
    EXPECT_NEAR(double(ph.restore.value()), 199, 70);
    EXPECT_NEAR(double(ph.sum().value()), 664, 180);
}

TEST_F(Sel4IpcTest, LargeTransferDominatesAt4K)
{
    for (int i = 0; i < 4; i++)
        doCall(4096);
    doCall(4096);
    const Sel4Phases &ph = kern.lastPhases;
    // Paper Table 1 (4KB): transfer 4010 of 4804 total. Shapes:
    // transfer dominates and the sum is in the thousands.
    EXPECT_GT(ph.transfer.value(), ph.sum().value() / 2);
    EXPECT_GT(ph.sum().value(), 2500u);
}

TEST_F(Sel4IpcTest, CrossCoreCostsMuchMore)
{
    Thread &remote_server = kern.createThread(server_proc, 1);
    uint64_t ep2 = kern.createEndpoint(remote_server,
                                       [](Sel4ServerCall &) {});
    kern.grantEndpointCap(client, ep2);
    auto same = doCall(0);
    auto cross = kern.call(machine.core(0), client, ep2, 1, req, 0,
                           reply, 1024);
    EXPECT_TRUE(cross.ok);
    EXPECT_GT(cross.roundTrip.value(), same.roundTrip.value() * 4);
    EXPECT_EQ(kern.crossCoreCalls.value(), 1u);
}

TEST_F(Sel4IpcTest, CallWithoutCapFails)
{
    xpc::setLogQuiet(true);
    Thread &other = kern.createThread(client_proc, 0);
    auto out = kern.call(machine.core(0), other, ep, 1, req, 0, reply,
                         1024);
    xpc::setLogQuiet(false);
    EXPECT_FALSE(out.ok);
}

class ZirconIpcTest : public ::testing::Test
{
  protected:
    ZirconIpcTest()
        : machine(hw::lowRiscKc705(), 128 << 20), kern(machine),
          client_proc(kern.createProcess("client")),
          server_proc(kern.createProcess("server")),
          client(kern.createThread(client_proc, 0)),
          server(kern.createThread(server_proc, 0))
    {
        kern.setCurrent(0, &client);
        ch = kern.createChannel(server, [](ZirconServerCall &call) {
            std::vector<uint8_t> buf(call.requestLen());
            call.readRequest(0, buf.data(), buf.size());
            for (auto &b : buf)
                b = uint8_t(b + 1);
            call.writeReply(0, buf.data(), buf.size());
        });
        req = client_proc.alloc(64 * 1024);
        reply = client_proc.alloc(64 * 1024);
    }

    hw::Machine machine;
    ZirconKernel kern;
    Process &client_proc;
    Process &server_proc;
    Thread &client;
    Thread &server;
    uint64_t ch = 0;
    VAddr req = 0, reply = 0;
};

TEST_F(ZirconIpcTest, ChannelRoundTripsData)
{
    std::vector<uint8_t> data(1000);
    for (size_t i = 0; i < data.size(); i++)
        data[i] = uint8_t(i);
    kern.userWrite(machine.core(0), client_proc, req, data.data(),
                   data.size());
    auto out = kern.call(machine.core(0), client, ch, 7, req,
                         data.size(), reply, 64 * 1024);
    ASSERT_TRUE(out.ok);
    EXPECT_EQ(out.replyLen, data.size());
    std::vector<uint8_t> got(data.size());
    kern.userRead(machine.core(0), client_proc, reply, got.data(),
                  got.size());
    for (size_t i = 0; i < data.size(); i++)
        EXPECT_EQ(got[i], uint8_t(data[i] + 1));
}

TEST_F(ZirconIpcTest, RoundTripIsTensOfThousandsOfCycles)
{
    auto out = kern.call(machine.core(0), client, ch, 7, req, 64,
                         reply, 1024);
    ASSERT_TRUE(out.ok);
    EXPECT_GT(out.roundTrip.value(), 8000u);
    EXPECT_LT(out.roundTrip.value(), 80000u);
}

TEST_F(ZirconIpcTest, ZirconIsSlowerThanSel4FastPath)
{
    Sel4Kernel sel4(machine);
    Process &cp = sel4.createProcess("c");
    Process &sp = sel4.createProcess("s");
    Thread &ct = sel4.createThread(cp, 0);
    Thread &st = sel4.createThread(sp, 0);
    uint64_t ep = sel4.createEndpoint(st, [](Sel4ServerCall &) {});
    sel4.grantEndpointCap(ct, ep);
    VAddr r2 = cp.alloc(4096), rp2 = cp.alloc(4096);
    auto s = sel4.call(machine.core(0), ct, ep, 1, r2, 16, rp2, 64);
    auto z = kern.call(machine.core(0), client, ch, 7, req, 16, reply,
                       64);
    EXPECT_GT(z.roundTrip.value(), s.roundTrip.value() * 5);
}

class XpcManagerTest : public ::testing::Test
{
  protected:
    XpcManagerTest()
        : machine(hw::rocketU500(), 128 << 20), kern(machine),
          eng(machine, {}), mgr(kern, eng),
          server_proc(kern.createProcess("server")),
          client_proc(kern.createProcess("client")),
          server(kern.createThread(server_proc, 0)),
          client(kern.createThread(client_proc, 0))
    {
        mgr.initThread(server);
        mgr.initThread(client);
    }

    hw::Machine machine;
    Sel4Kernel kern;
    engine::XpcEngine eng;
    XpcManager mgr;
    Process &server_proc;
    Process &client_proc;
    Thread &server;
    Thread &client;
};

TEST_F(XpcManagerTest, RegisterEntryGrantsCreatorGrantCap)
{
    uint64_t id = mgr.registerEntry(server, server, 0x1000, 4);
    EXPECT_TRUE(mgr.hasGrantCap(server, id));
    EXPECT_FALSE(mgr.hasGrantCap(client, id));
    EXPECT_FALSE(mgr.hasXcallCap(client, id));
}

TEST_F(XpcManagerTest, GrantXcallCapSetsBitmapBit)
{
    uint64_t id = mgr.registerEntry(server, server, 0x1000, 4);
    mgr.grantXcallCap(server, client, id);
    EXPECT_TRUE(mgr.hasXcallCap(client, id));
    mgr.revokeXcallCap(client, id);
    EXPECT_FALSE(mgr.hasXcallCap(client, id));
}

TEST_F(XpcManagerTest, GrantWithoutGrantCapPanics)
{
    uint64_t id = mgr.registerEntry(server, server, 0x1000, 4);
    EXPECT_DEATH(mgr.grantXcallCap(client, client, id), "grant-cap");
}

TEST_F(XpcManagerTest, GrantCapCanBeForwarded)
{
    uint64_t id = mgr.registerEntry(server, server, 0x1000, 4);
    mgr.grantGrantCap(server, client, id);
    EXPECT_TRUE(mgr.hasGrantCap(client, id));
    // Now the client can grant to others.
    Thread &third = kern.createThread(client_proc, 0);
    mgr.initThread(third);
    mgr.grantXcallCap(client, third, id);
    EXPECT_TRUE(mgr.hasXcallCap(third, id));
}

TEST_F(XpcManagerTest, RelaySegIsContiguousAndDisjoint)
{
    RelaySeg seg = mgr.allocRelaySeg(nullptr, client_proc, 16384, 0);
    EXPECT_EQ(seg.len, 16384u);
    EXPECT_NE(seg.pa, 0u);
    // Never overlaps any page-table mapping of the process.
    EXPECT_FALSE(client_proc.space().pageTable().anyMappingIn(seg.va,
                                                              seg.len));
    // Installed in the seg-list.
    auto entry = engine::XpcEngine::readSegListEntry(
        machine.phys(), client_proc.space().segList(), 0);
    EXPECT_TRUE(entry.valid);
    EXPECT_EQ(entry.window.paBase, seg.pa);
    EXPECT_EQ(entry.segId, seg.segId);
}

TEST_F(XpcManagerTest, HeapNeverGrowsIntoSegRange)
{
    RelaySeg seg = mgr.allocRelaySeg(nullptr, client_proc, 65536, 0);
    for (int i = 0; i < 50; i++) {
        VAddr heap = client_proc.alloc(16 * pageSize);
        EXPECT_TRUE(heap + 16 * pageSize <= seg.va ||
                    heap >= seg.va + seg.len);
    }
}

TEST_F(XpcManagerTest, FreeRelaySegReturnsMemory)
{
    uint64_t before = machine.allocator().freeBytes();
    RelaySeg seg = mgr.allocRelaySeg(nullptr, client_proc, 16384, 0);
    mgr.freeRelaySeg(client_proc, seg.segId);
    EXPECT_EQ(machine.allocator().freeBytes(), before);
    EXPECT_FALSE(mgr.segById(seg.segId).has_value());
}

TEST_F(XpcManagerTest, ProcessExitInvalidatesItsLinkageRecords)
{
    // Push a record claiming client_proc as the caller onto the
    // server thread's link stack (as if client called server).
    engine::LinkageRecord rec;
    rec.valid = true;
    rec.callerPageTable = client_proc.space().root();
    engine::XpcEngine::writeLinkageRecord(machine.phys(),
                                          server.linkStack, 0, rec);
    mgr.onProcessExit(client_proc);
    auto got = engine::XpcEngine::readLinkageRecord(
        machine.phys(), server.linkStack, 0);
    EXPECT_FALSE(got.valid);
    EXPECT_TRUE(client_proc.dead);
}

TEST_F(XpcManagerTest, ProcessExitRemovesItsEntriesAndSegs)
{
    uint64_t id = mgr.registerEntry(server, server, 0x1000, 4);
    RelaySeg seg = mgr.allocRelaySeg(nullptr, server_proc, 8192, 0);
    mgr.onProcessExit(server_proc);
    EXPECT_FALSE(mgr.entryInfo(id).live);
    EXPECT_FALSE(mgr.segById(seg.segId).has_value());
    // The x-entry in the table is invalid now.
    auto e = engine::XpcEngine::readXEntry(machine.phys(),
                                           mgr.xEntryTable(), id);
    EXPECT_FALSE(e.valid);
}

} // namespace
} // namespace xpc::kernel
