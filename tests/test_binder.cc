/**
 * @file
 * Tests for the Android Binder model: Parcel marshaling, transactions
 * over the stock driver and over XPC, and the three ashmem variants.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "binder/binder.hh"
#include "core/system.hh"
#include "sim/random.hh"

namespace xpc::binder {
namespace {

TEST(ParcelTest, TypedRoundTrip)
{
    Parcel p;
    p.writeInt32(-7);
    p.writeString("SurfaceFlinger");
    p.writeInt64(1 << 30);
    std::vector<uint8_t> blob(100);
    for (size_t i = 0; i < blob.size(); i++)
        blob[i] = uint8_t(i);
    p.writeBlob(blob.data(), blob.size());
    p.writeFileDescriptor(42);

    Parcel q(p.data());
    EXPECT_EQ(q.readInt32(), -7);
    EXPECT_EQ(q.readString(), "SurfaceFlinger");
    EXPECT_EQ(q.readInt64(), 1 << 30);
    EXPECT_EQ(q.readBlob(), blob);
    EXPECT_EQ(q.readFileDescriptor(), 42u);
    EXPECT_TRUE(q.exhausted());
}

TEST(ParcelTest, AlignmentKeepsFollowingFieldsReadable)
{
    Parcel p;
    p.writeString("abc"); // 3 bytes, padded to 4
    p.writeInt32(99);
    Parcel q(p.data());
    EXPECT_EQ(q.readString(), "abc");
    EXPECT_EQ(q.readInt32(), 99);
}

TEST(ParcelDeathTest, UnderflowPanics)
{
    Parcel p;
    p.writeInt32(1);
    Parcel q(p.data());
    q.readInt32();
    EXPECT_DEATH(q.readInt64(), "underflow");
}

class BinderFixture : public ::testing::TestWithParam<BinderMode>
{
  protected:
    BinderFixture()
    {
        core::SystemOptions opts;
        opts.flavor = core::SystemFlavor::Sel4Xpc;
        sys = std::make_unique<core::System>(opts);
        binder = std::make_unique<BinderSystem>(
            sys->kern(), &sys->runtime(), GetParam());
        server = &sys->spawn("window-manager");
        client = &sys->spawn("compositor");
    }

    std::unique_ptr<core::System> sys;
    std::unique_ptr<BinderSystem> binder;
    kernel::Thread *server = nullptr;
    kernel::Thread *client = nullptr;
};

TEST_P(BinderFixture, TransactionRoundTripsParcel)
{
    binder->addService("wm", *server, [](BinderTxn &txn) {
        EXPECT_EQ(txn.code(), 5u);
        int32_t x = txn.data().readInt32();
        std::string s = txn.data().readString();
        txn.reply().writeInt32(x * 2);
        txn.reply().writeString(s + "!");
    });
    uint64_t handle = binder->getService(*client, "wm");

    Parcel data;
    data.writeInt32(21);
    data.writeString("draw");
    auto out = binder->transact(sys->core(0), *client, handle, 5,
                                data);
    ASSERT_TRUE(out.ok);
    EXPECT_EQ(out.reply.readInt32(), 42);
    EXPECT_EQ(out.reply.readString(), "draw!");
    EXPECT_GT(out.latency.value(), 0u);
}

TEST_P(BinderFixture, BlobPayloadSurvives)
{
    std::vector<uint8_t> seen;
    binder->addService("wm", *server, [&](BinderTxn &txn) {
        seen = txn.data().readBlob();
        txn.reply().writeInt32(int32_t(seen.size()));
    });
    uint64_t handle = binder->getService(*client, "wm");

    Rng rng(3);
    std::vector<uint8_t> payload(8192);
    for (auto &b : payload)
        b = uint8_t(rng.next());
    Parcel data;
    data.writeBlob(payload.data(), payload.size());
    auto out = binder->transact(sys->core(0), *client, handle, 1,
                                data);
    ASSERT_TRUE(out.ok);
    EXPECT_EQ(seen, payload);
    EXPECT_EQ(out.reply.readInt32(), int32_t(payload.size()));
}

TEST_P(BinderFixture, AshmemCarriesSurfaceData)
{
    hw::Core &core = sys->core(0);
    AshmemRegion region = binder->ashmemCreate(core, *client,
                                               64 * 1024);
    Rng rng(8);
    std::vector<uint8_t> surface(64 * 1024);
    for (auto &b : surface)
        b = uint8_t(rng.next());
    binder->ashmemWrite(core, region, 0, surface.data(),
                        surface.size());

    std::vector<uint8_t> drawn;
    binder->addService("wm", *server, [&](BinderTxn &txn) {
        uint64_t fd = txn.data().readFileDescriptor();
        int64_t size = txn.data().readInt64();
        AshmemRegion r{fd, uint64_t(size)};
        drawn.resize(size_t(size));
        txn.readAshmem(r, 0, drawn.data(), drawn.size());
        txn.reply().writeInt32(0);
    });
    uint64_t handle = binder->getService(*client, "wm");

    Parcel data;
    data.writeFileDescriptor(region.fd);
    data.writeInt64(int64_t(region.size));
    auto out = binder->transact(core, *client, handle, 2, data);
    ASSERT_TRUE(out.ok);
    EXPECT_EQ(drawn, surface);
}

INSTANTIATE_TEST_SUITE_P(
    AllModes, BinderFixture,
    ::testing::Values(BinderMode::Baseline, BinderMode::XpcCall,
                      BinderMode::XpcAshmem),
    [](const ::testing::TestParamInfo<BinderMode> &info) {
        std::string n = binderModeName(info.param);
        for (auto &c : n)
            if (!isalnum(static_cast<unsigned char>(c)))
                c = '_';
        return n;
    });

TEST(BinderSpeedupTest, XpcBeatsBaselineByALot)
{
    auto measure = [](BinderMode mode, uint64_t bytes) {
        core::SystemOptions opts;
        opts.flavor = core::SystemFlavor::Sel4Xpc;
        core::System sys(opts);
        BinderSystem binder(sys.kern(), &sys.runtime(), mode);
        kernel::Thread &server = sys.spawn("server");
        kernel::Thread &client = sys.spawn("client");
        binder.addService("svc", server, [](BinderTxn &txn) {
            auto blob = txn.data().readBlob();
            txn.reply().writeInt32(int32_t(blob.size()));
        });
        uint64_t handle = binder.getService(client, "svc");
        std::vector<uint8_t> payload(bytes, 0x11);
        uint64_t total = 0;
        for (int i = 0; i < 5; i++) {
            Parcel data;
            data.writeBlob(payload.data(), payload.size());
            auto out = binder.transact(sys.core(0), client, handle,
                                       1, data);
            EXPECT_TRUE(out.ok);
            if (i >= 1)
                total += out.latency.value();
        }
        return total / 4;
    };

    // Paper Figure 9(a): 46.2x at 2 KiB, 30.2x at 16 KiB. Accept a
    // wide band: at least 10x.
    for (uint64_t bytes : {2048ul, 16384ul}) {
        uint64_t base = measure(BinderMode::Baseline, bytes);
        uint64_t fast = measure(BinderMode::XpcCall, bytes);
        EXPECT_GT(base, fast * 10) << bytes;
    }
}

TEST(BinderSpeedupTest, AshmemXpcAvoidsTheDefensiveCopy)
{
    auto measure = [](BinderMode mode, uint64_t bytes) {
        core::SystemOptions opts;
        opts.flavor = core::SystemFlavor::Sel4Xpc;
        core::System sys(opts);
        BinderSystem binder(sys.kern(), &sys.runtime(), mode);
        kernel::Thread &server = sys.spawn("server");
        kernel::Thread &client = sys.spawn("client");
        std::vector<uint8_t> drawn(bytes);
        binder.addService("svc", server, [&](BinderTxn &txn) {
            uint64_t fd = txn.data().readFileDescriptor();
            int64_t size = txn.data().readInt64();
            txn.readAshmem(AshmemRegion{fd, uint64_t(size)}, 0,
                           drawn.data(), uint64_t(size));
            txn.reply().writeInt32(0);
        });
        uint64_t handle = binder.getService(client, "svc");
        hw::Core &core = sys.core(0);
        AshmemRegion region = binder.ashmemCreate(core, client, bytes);
        std::vector<uint8_t> payload(bytes, 0x22);
        binder.ashmemWrite(core, region, 0, payload.data(), bytes);
        Parcel data;
        data.writeFileDescriptor(region.fd);
        data.writeInt64(int64_t(bytes));
        auto out = binder.transact(core, client, handle, 2, data);
        EXPECT_TRUE(out.ok);
        return out.latency.value();
    };

    uint64_t bytes = 1 << 20;
    uint64_t base = measure(BinderMode::Baseline, bytes);
    uint64_t ashx = measure(BinderMode::XpcAshmem, bytes);
    uint64_t full = measure(BinderMode::XpcCall, bytes);
    // The defensive copy dominates at 1 MiB: both XPC variants win.
    EXPECT_GT(base, ashx * 2);
    EXPECT_LE(full, ashx);
}

} // namespace
} // namespace xpc::binder
