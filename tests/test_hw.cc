/**
 * @file
 * Unit tests for the hardware layer: machine configs, cores, IPIs.
 */

#include <gtest/gtest.h>

#include "hw/machine.hh"

namespace xpc::hw {
namespace {

TEST(MachineConfigTest, RocketU500Shape)
{
    MachineConfig cfg = rocketU500();
    EXPECT_EQ(cfg.name, "rocket-u500");
    EXPECT_FALSE(cfg.mem.taggedTlb);
    EXPECT_EQ(cfg.mem.l1d.sizeBytes, 32u * 1024);
    EXPECT_EQ(cfg.mem.l2.sizeBytes, 1024u * 1024);
    EXPECT_GT(cfg.cores, 1u);
}

TEST(MachineConfigTest, ArmHpiMatchesPaperTable4)
{
    MachineConfig cfg = armHpi();
    EXPECT_EQ(cfg.cores, 8u);                 // 8 in-order cores
    EXPECT_EQ(cfg.freqHz, 2'000'000'000ull);  // @2.0GHz
    EXPECT_EQ(cfg.mem.tlbEntries, 256u);      // 256-entry TLB
    EXPECT_EQ(cfg.mem.l1d.hitLatency, Cycles(3));
    EXPECT_EQ(cfg.mem.l2.hitLatency, Cycles(13));
    EXPECT_EQ(cfg.mem.l2.assoc, 16u);
    EXPECT_TRUE(cfg.mem.taggedTlb);
    EXPECT_EQ(cfg.core.tlbFlush, Cycles(58)); // TTBR0 barrier cost
}

TEST(MachineConfigTest, TaggedVariantOnlyChangesTlb)
{
    MachineConfig a = rocketU500(), b = rocketU500Tagged();
    EXPECT_FALSE(a.mem.taggedTlb);
    EXPECT_TRUE(b.mem.taggedTlb);
    EXPECT_EQ(a.mem.l1d.sizeBytes, b.mem.l1d.sizeBytes);
    EXPECT_EQ(a.core.ipi.value(), b.core.ipi.value());
}

TEST(MachineConfigTest, CycleConversion)
{
    MachineConfig cfg = rocketU500(); // 100 MHz
    EXPECT_DOUBLE_EQ(cfg.cyclesToUsec(Cycles(100)), 1.0);
    EXPECT_DOUBLE_EQ(cfg.cyclesToSec(Cycles(100'000'000)), 1.0);
}

TEST(CoreTest, ClockAccumulates)
{
    Machine m(rocketU500(), 64 << 20);
    Core &c = m.core(0);
    EXPECT_EQ(c.now(), Cycles(0));
    c.spend(Cycles(10));
    c.spend(Cycles(5));
    EXPECT_EQ(c.now(), Cycles(15));
}

TEST(CoreTest, SyncToOnlyMovesForward)
{
    Machine m(rocketU500(), 64 << 20);
    Core &c = m.core(0);
    c.spend(Cycles(100));
    c.syncTo(Cycles(50));
    EXPECT_EQ(c.now(), Cycles(100));
    c.syncTo(Cycles(150));
    EXPECT_EQ(c.now(), Cycles(150));
}

TEST(MachineTest, IpiChargesAndSynchronizes)
{
    MachineConfig cfg = rocketU500();
    Machine m(cfg, 64 << 20);
    m.core(0).spend(Cycles(1000));
    m.sendIpi(0, 1);
    EXPECT_EQ(m.core(1).now(), Cycles(1000) + cfg.core.ipi);
}

TEST(MachineTest, CoresShareL2ButNotL1)
{
    Machine m(rocketU500(), 64 << 20);
    uint8_t buf[8] = {};
    // Core 0 warms the line.
    m.mem().readPhys(0, 0x20000, buf, 8);
    uint64_t l2miss = m.mem().l2Cache().misses.value();
    // Core 1 misses L1 but hits L2.
    m.mem().readPhys(1, 0x20000, buf, 8);
    EXPECT_EQ(m.mem().l2Cache().misses.value(), l2miss);
    EXPECT_EQ(m.mem().l1(1).hits.value(), 0u);
}

} // namespace
} // namespace xpc::hw
