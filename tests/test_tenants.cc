/**
 * @file
 * Multi-tenant isolation and blast-radius containment (ROADMAP
 * item 4, DESIGN.md §4g).
 *
 * Property tests, parameterized over the three transports, pin the
 * tenancy contract: per-tenant namespaces are disjoint (two tenants
 * may bind the same name to different services and neither can even
 * learn the other's ids), cross-tenant calls and capability grants
 * are refused under enforcement on every substrate - including
 * Zircon, where connect() is a no-op and the call-side gate is the
 * only barrier - and on XPC the xcall-cap bitmap never acquires a
 * cross-tenant bit. Satellite regressions cover NameServer::bind's
 * refusal to overwrite a live binding (restart goes through
 * rebind()), the hardened name parsing (no-NUL/empty/oversized
 * requests are rejected, not truncated), resolve()'s typed failure
 * results, and Supervisor::heal(tenant) resetting only that tenant's
 * breakers and admission buckets.
 *
 * The containment chaos soak then proves the blast radius end to
 * end: a seeded fault storm plus round-robin process kills aimed at
 * every service of tenant A, under load, leaves tenant B's goodput
 * within 10% of its no-fault baseline with zero cross-tenant grants,
 * calls or resolutions - and the whole run replays byte-identically
 * from the same seed.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "apps/tenant_rig.hh"
#include "core/system.hh"
#include "services/admission.hh"
#include "services/name_server.hh"
#include "services/proto.hh"
#include "services/supervisor.hh"
#include "sim/fault_injector.hh"

namespace xpc::services {
namespace {

using apps::TenantRig;

constexpr kernel::TenantId tenantA = TenantRig::tenantA;
constexpr kernel::TenantId tenantB = TenantRig::tenantB;

// --------------------------------------------------------------------
// Property tests: the tenancy contract on all three transports.
// --------------------------------------------------------------------

/** A minimal two-tenant world: one echo service per tenant, bound
 *  under the *same* name, plus a private name only tenant B knows. */
class TenantTest : public ::testing::TestWithParam<core::SystemFlavor>
{
  protected:
    TenantTest()
    {
        core::SystemOptions opts;
        opts.flavor = GetParam();
        sys = std::make_unique<core::System>(opts);
        tr = &sys->transport();
        tr->enforceTenancy = true;

        kernel::Thread &ns_t = sys->spawn("nameserver");
        ns = std::make_unique<NameServer>(*tr, ns_t);

        clientA = &sys->spawn("client-a", 0, tenantA);
        clientB = &sys->spawn("client-b", 0, tenantB);
        svcA = makeEcho(tenantA, "echo-a");
        svcB = makeEcho(tenantB, "echo-b");
        EXPECT_EQ(ns->bind("echo", svcA, tenantA),
                  NameServer::BindStatus::Ok);
        EXPECT_EQ(ns->bind("echo", svcB, tenantB),
                  NameServer::BindStatus::Ok);
        EXPECT_EQ(ns->bind("secret-b", svcB, tenantB),
                  NameServer::BindStatus::Ok);

        // Bootstrap: each client holds only the name-server cap.
        tr->connect(*clientA, ns->id());
        tr->connect(*clientB, ns->id());
    }

    core::ServiceId
    makeEcho(kernel::TenantId tenant, const char *thread_name)
    {
        kernel::Thread &t = sys->spawn(thread_name, 0, tenant);
        core::ServiceDesc desc;
        desc.name = thread_name;
        desc.handlerThread = &t;
        return tr->registerService(desc, [](core::ServerApi &api) {
            api.replyFromRequest(0, api.requestLen());
        });
    }

    /** Raw client call (no retry layer), for negative paths. */
    core::CallResult
    rawCall(kernel::Thread &client, core::ServiceId svc,
            const void *req, uint64_t len)
    {
        tr->requestArea(sys->core(0), client, 4096);
        if (len > 0)
            tr->clientWrite(sys->core(0), client, 0, req, len);
        return tr->call(sys->core(0), client, svc, 0, len, 4096);
    }

    std::unique_ptr<core::System> sys;
    core::Transport *tr = nullptr;
    std::unique_ptr<NameServer> ns;
    kernel::Thread *clientA = nullptr;
    kernel::Thread *clientB = nullptr;
    core::ServiceId svcA = 0;
    core::ServiceId svcB = 0;
};

TEST_P(TenantTest, NamespacesAreDisjoint)
{
    hw::Core &core = sys->core(0);
    // The same name resolves to each tenant's own service.
    EXPECT_EQ(NameServer::resolve(*tr, core, *clientA, ns->id(),
                                  "echo"),
              int64_t(svcA));
    EXPECT_EQ(NameServer::resolve(*tr, core, *clientB, ns->id(),
                                  "echo"),
              int64_t(svcB));
    // A name bound only in B's namespace does not even *miss*
    // differently for A: A cannot learn that it exists.
    EXPECT_EQ(NameServer::resolve(*tr, core, *clientA, ns->id(),
                                  "secret-b"),
              NameServer::resolveMiss);
    EXPECT_EQ(NameServer::resolve(*tr, core, *clientB, ns->id(),
                                  "secret-b"),
              int64_t(svcB));
    // Lookups never leave the caller's table, so no resolution can
    // cross a tenant boundary - structurally.
    EXPECT_EQ(ns->crossTenantResolves.value(), 0u);
    EXPECT_EQ(tr->crossTenantGrants.value(), 0u);
}

TEST_P(TenantTest, CrossTenantCallIsRefused)
{
    hw::Core &core = sys->core(0);
    // Own-tenant traffic works end to end.
    ASSERT_EQ(NameServer::resolve(*tr, core, *clientA, ns->id(),
                                  "echo"),
              int64_t(svcA));
    uint8_t msg[16] = {9};
    auto ok = rawCall(*clientA, svcA, msg, sizeof(msg));
    EXPECT_TRUE(ok.ok);

    // Calling the other tenant's service *by id* is refused even
    // though A knows the id. On Zircon connect() is a no-op
    // (possession of the channel id is the capability), so this
    // call-side gate is the entire boundary there.
    auto denied = rawCall(*clientA, svcB, msg, sizeof(msg));
    EXPECT_FALSE(denied.ok);
    EXPECT_EQ(denied.status, core::TransportStatus::NoCapability);
    EXPECT_GE(tr->crossTenantDenied.value(), 1u);

    // An explicit connect() attempt is refused the same way.
    uint64_t before = tr->crossTenantDenied.value();
    tr->connect(*clientA, svcB);
    EXPECT_GT(tr->crossTenantDenied.value(), before);
    auto still = rawCall(*clientA, svcB, msg, sizeof(msg));
    EXPECT_FALSE(still.ok);

    // Nothing crossed: the deny counters moved, the breach counters
    // did not.
    EXPECT_EQ(tr->crossTenantGrants.value(), 0u);
    EXPECT_EQ(tr->crossTenantCalls.value(), 0u);
}

TEST_P(TenantTest, SharedServicesStayReachableFromEveryTenant)
{
    // The name server is tenant 0's thread yet serves both tenants:
    // its descriptor opts into sharedAcrossTenants, and those calls
    // are not denials.
    EXPECT_EQ(tr->tenantOf(ns->id()), kernel::defaultTenant);
    hw::Core &core = sys->core(0);
    uint64_t before = tr->crossTenantDenied.value();
    EXPECT_EQ(NameServer::resolve(*tr, core, *clientA, ns->id(),
                                  "echo"),
              int64_t(svcA));
    EXPECT_EQ(NameServer::resolve(*tr, core, *clientB, ns->id(),
                                  "echo"),
              int64_t(svcB));
    EXPECT_EQ(tr->crossTenantDenied.value(), before);
}

TEST_P(TenantTest, HandleRejectsMalformedNames)
{
    hw::Core &core = sys->core(0);
    auto resolveRaw = [&](const void *payload, uint64_t len) {
        auto r = rawCall(*clientA, ns->id(), payload, len);
        EXPECT_TRUE(r.ok);
        int64_t result = 0;
        EXPECT_GE(r.replyLen, sizeof(result));
        tr->clientRead(core, *clientA, 0, &result, sizeof(result));
        return result;
    };

    // Empty request: no name at all.
    EXPECT_EQ(resolveRaw(nullptr, 0), NameServer::resolveBadName);
    // Unterminated: bytes but no NUL within requestLen().
    EXPECT_EQ(resolveRaw("echoecho", 8), NameServer::resolveBadName);
    // Empty name: a NUL in first position.
    EXPECT_EQ(resolveRaw("\0x", 2), NameServer::resolveBadName);
    // Oversized: a name longer than fsMaxPath must be rejected, not
    // truncated into some shorter name that happens to be bound.
    std::string big(proto::fsMaxPath + 1, 'a');
    big += '\0';
    EXPECT_EQ(resolveRaw(big.data(), big.size()),
              NameServer::resolveBadName);
    EXPECT_EQ(ns->badNames.value(), 4u);

    // Boundary: a maximum-length name still resolves.
    std::string longest(proto::fsMaxPath, 'n');
    ASSERT_EQ(ns->bind(longest, svcA, tenantA),
              NameServer::BindStatus::Ok);
    EXPECT_EQ(NameServer::resolve(*tr, core, *clientA, ns->id(),
                                  longest),
              int64_t(svcA));
    EXPECT_EQ(ns->badNames.value(), 4u);
}

TEST_P(TenantTest, ResolveClassifiesFailures)
{
    hw::Core &core = sys->core(0);
    // Miss: bound nowhere in the caller's tenant.
    EXPECT_EQ(NameServer::resolve(*tr, core, *clientA, ns->id(),
                                  "nonesuch"),
              NameServer::resolveMiss);

    // Short reply: a service that answers with fewer than 8 bytes is
    // not a name server; the client classifies it as resolveFailed
    // instead of reading garbage.
    kernel::Thread &stub_t = sys->spawn("stubns", 0, tenantA);
    core::ServiceDesc desc;
    desc.name = "stubns";
    desc.handlerThread = &stub_t;
    core::ServiceId stub =
        tr->registerService(desc, [](core::ServerApi &api) {
            uint32_t half = 7;
            api.writeReply(0, &half, sizeof(half));
            api.setReplyLen(sizeof(half));
        });
    tr->connect(*clientA, stub);
    EXPECT_EQ(NameServer::resolve(*tr, core, *clientA, stub, "x"),
              NameServer::resolveFailed);

    // Call failure: on the capability kernels an unauthorized client
    // cannot even reach the name server. (On Zircon possession of
    // the id suffices, so there is no unauthorized-call path to a
    // shared service.)
    if (GetParam() != core::SystemFlavor::Zircon) {
        kernel::Thread &stranger = sys->spawn("stranger", 0, tenantA);
        EXPECT_EQ(NameServer::resolve(*tr, core, stranger, ns->id(),
                                      "echo"),
                  NameServer::resolveFailed);
    }
}

TEST_P(TenantTest, BindRefusesOverwriteRebindReplaces)
{
    hw::Core &core = sys->core(0);
    // "echo" is live in A's namespace; binding over it must fail...
    EXPECT_EQ(ns->bind("echo", svcB, tenantA),
              NameServer::BindStatus::AlreadyBound);
    // ...and leave the original binding untouched.
    EXPECT_EQ(NameServer::resolve(*tr, core, *clientA, ns->id(),
                                  "echo"),
              int64_t(svcA));
    // The same name in a *different* tenant is not a collision.
    EXPECT_EQ(ns->bind("fresh", svcA, tenantA),
              NameServer::BindStatus::Ok);
    EXPECT_EQ(ns->bind("fresh", svcB, tenantB),
              NameServer::BindStatus::Ok);
    // rebind() is the restart path: it deliberately takes over.
    core::ServiceId svcA2 = makeEcho(tenantA, "echo-a2");
    ns->rebind("echo", svcA2, tenantA);
    EXPECT_EQ(NameServer::resolve(*tr, core, *clientA, ns->id(),
                                  "echo"),
              int64_t(svcA2));
}

INSTANTIATE_TEST_SUITE_P(
    Flavors, TenantTest,
    ::testing::Values(core::SystemFlavor::Sel4TwoCopy,
                      core::SystemFlavor::Sel4Xpc,
                      core::SystemFlavor::Zircon),
    [](const ::testing::TestParamInfo<core::SystemFlavor> &info) {
        std::string n = core::systemFlavorName(info.param);
        for (auto &c : n)
            if (!isalnum(static_cast<unsigned char>(c)))
                c = '_';
        return n;
    });

// --------------------------------------------------------------------
// XPC-specific: the xcall-cap bitmap never grows a cross-tenant bit.
// --------------------------------------------------------------------

TEST(TenantXpc, CapabilityBitmapStaysWithinTheTenant)
{
    core::SystemOptions opts;
    opts.flavor = core::SystemFlavor::Sel4Xpc;
    core::System sys(opts);
    core::Transport &tr = sys.transport();
    tr.enforceTenancy = true;

    kernel::Thread &ns_t = sys.spawn("nameserver");
    NameServer ns(tr, ns_t);
    kernel::Thread &srvA = sys.spawn("srv-a", 0, tenantA);
    kernel::Thread &srvB = sys.spawn("srv-b", 0, tenantB);
    kernel::Thread &clientA = sys.spawn("client-a", 0, tenantA);

    auto reg = [&](kernel::Thread &t, const char *name) {
        core::ServiceDesc desc;
        desc.name = name;
        desc.handlerThread = &t;
        return tr.registerService(desc, [](core::ServerApi &) {});
    };
    core::ServiceId a = reg(srvA, "svc-a");
    core::ServiceId b = reg(srvB, "svc-b");
    ns.bind("svc", a, tenantA);
    ns.bind("svc", b, tenantB);
    tr.connect(clientA, ns.id());

    auto *xt = dynamic_cast<core::XpcTransport *>(&tr);
    ASSERT_NE(xt, nullptr);
    hw::Core &core = sys.core(0);

    // Resolving its own name grants exactly its own entry...
    ASSERT_EQ(NameServer::resolve(tr, core, clientA, ns.id(), "svc"),
              int64_t(a));
    EXPECT_TRUE(sys.manager().hasXcallCap(clientA, xt->entryOf(a)));
    // ...and no amount of asking grants the other tenant's: not via
    // the name server (the name simply is not in A's namespace), not
    // via a direct connect.
    EXPECT_FALSE(sys.manager().hasXcallCap(clientA, xt->entryOf(b)));
    tr.connect(clientA, b);
    EXPECT_FALSE(sys.manager().hasXcallCap(clientA, xt->entryOf(b)));
    EXPECT_EQ(tr.crossTenantGrants.value(), 0u);
}

// --------------------------------------------------------------------
// Per-tenant supervision: heal(tenant) scopes recovery state.
// --------------------------------------------------------------------

TEST(TenantSupervision, HealRestoresOnlyTheQuarantinedTenant)
{
    TenantRig rig;
    Supervisor &sup = rig.supervisor();
    hw::Core &core = rig.system().core(0);
    Cycles now = core.now();

    core::ServiceId oldKvA = sup.currentId("kv", tenantA);

    // Trip both tenants' kv breakers and prime both admission
    // buckets, then take every service of tenant A down.
    for (int i = 0; i < 3; i++) {
        sup.breakerFor("kv", tenantA).onFailure(now);
        sup.breakerFor("kv", tenantB).onFailure(now);
    }
    ASSERT_EQ(sup.breakerFor("kv", tenantA).state(now),
              core::CircuitBreaker::State::Open);
    for (int i = 0; i < 5; i++) {
        rig.stack(tenantA).admKv->admit(now, 1, tenantA);
        rig.stack(tenantB).admKv->admit(now, 1, tenantB);
    }
    ASSERT_GT(rig.stack(tenantA).admKv->backlogAt(now), 0u);
    rig.killAll(tenantA);
    for (const char *name : TenantRig::serviceNames)
        EXPECT_TRUE(sup.isDown(name, tenantA)) << name;

    // Heal tenant A only.
    EXPECT_EQ(sup.heal(tenantA), 6u);
    EXPECT_TRUE(rig.allUp(tenantA));

    // A's quarantine state was reset with its restarted services...
    EXPECT_EQ(sup.breakerFor("kv", tenantA).state(now),
              core::CircuitBreaker::State::Closed);
    EXPECT_EQ(rig.stack(tenantA).admKv->backlogAt(now), 0u);
    // ...while B's - whose services never died - was not touched.
    EXPECT_EQ(sup.breakerFor("kv", tenantB).state(now),
              core::CircuitBreaker::State::Open);
    EXPECT_GT(rig.stack(tenantB).admKv->backlogAt(now), 0u);

    // Satellite regression: the restart went through rebind(), so
    // the fresh instance answers to the old name in A's namespace.
    core::ServiceId newKvA = sup.currentId("kv", tenantA);
    EXPECT_NE(newKvA, oldKvA);
    EXPECT_EQ(NameServer::resolve(rig.transport(), core,
                                  *rig.stack(tenantA).client,
                                  rig.nameServer().id(), "kv"),
              int64_t(newKvA));
    // And B still resolves its own, untouched, kv.
    EXPECT_EQ(NameServer::resolve(rig.transport(), core,
                                  *rig.stack(tenantB).client,
                                  rig.nameServer().id(), "kv"),
              int64_t(sup.currentId("kv", tenantB)));
}

TEST(TenantSupervision, SharedAdmissionTenantShareCapsOneTenant)
{
    AdmissionOptions o;
    o.highWatermark = 100;
    o.clientShare = 0;
    o.tenantShare = 4;
    o.drainCycles = Cycles(1000000); // effectively no drain here
    AdmissionController adm("shared-ns", o);
    Cycles now(0);

    // Tenant A floods: exactly tenantShare requests fit.
    int admitted = 0;
    for (int i = 0; i < 10; i++)
        admitted += adm.admit(now, 0, tenantA) ? 1 : 0;
    EXPECT_EQ(admitted, 4);
    EXPECT_EQ(adm.shedTenantShare.value(), 6u);

    // Tenant B is unaffected by A's full bucket.
    EXPECT_TRUE(adm.admit(now, 0, tenantB));
    EXPECT_EQ(adm.tenantBacklogAt(now, tenantB), 1u);

    // Quarantine recovery drops only A's bucket.
    adm.resetTenant(tenantA);
    EXPECT_EQ(adm.tenantBacklogAt(now, tenantA), 0u);
    EXPECT_EQ(adm.tenantBacklogAt(now, tenantB), 1u);
    EXPECT_TRUE(adm.admit(now, 0, tenantA));
}

// --------------------------------------------------------------------
// The containment chaos soak: tenant A burns, tenant B is fine.
// --------------------------------------------------------------------

struct ContainmentResult
{
    TenantRig::OpCounts a, b;
    std::vector<FaultEvent> fired;
    uint64_t restarts = 0;
    uint64_t retries = 0;
    uint64_t denied = 0;
    uint64_t grants = 0;
    uint64_t crossCalls = 0;
    uint64_t crossResolves = 0;
};

/**
 * Drive both tenants' mixed workloads for @p iters iterations. With
 * @p storm, tenant A additionally suffers a seeded six-op fault
 * plan *and* deterministic round-robin process kills across all six
 * of its services (a full killAll every 24th iteration); injection
 * is gated off around tenant B's operations, which is exactly the
 * claim under test - the substrate does not couple them.
 */
ContainmentResult
runContainment(uint64_t seed, int iters, bool storm)
{
    FaultInjector inj(
        FaultPlan::generate(seed, 160, 4000, /*six classic ops*/ 0x3f));
    TenantRig rig;
    rig.system().machine().setFaultInjector(&inj);
    ContainmentResult res;

    for (int i = 0; i < iters; i++) {
        if (storm) {
            if (i % 24 == 1)
                rig.killAll(tenantA);
            else if (i % 2 == 0)
                rig.killOne(tenantA, unsigned(i / 2));
        }
        inj.enabled = storm;
        rig.runMix(tenantA, i, res.a);
        inj.enabled = false;
        rig.runMix(tenantB, i, res.b);
    }

    // The storm is over: one per-tenant heal must bring A all the
    // way back, and both tenants must be fully functional.
    rig.supervisor().heal(tenantA);
    EXPECT_TRUE(rig.allUp(tenantA));
    EXPECT_TRUE(rig.allUp(tenantB));
    for (kernel::TenantId t : {tenantA, tenantB}) {
        EXPECT_TRUE(rig.kvPut(t, 7));
        EXPECT_EQ(rig.kvGet(t, 7), 1);
        std::string resp;
        uint64_t garbled = 0;
        EXPECT_GT(rig.httpGet(t, "/index.html", &resp, &garbled), 0);
        EXPECT_EQ(garbled, 0u);
    }

    res.fired = inj.fired();
    res.restarts = rig.supervisor().restarts.value();
    res.retries = rig.supervisor().retries.value();
    res.denied = rig.transport().crossTenantDenied.value();
    res.grants = rig.transport().crossTenantGrants.value();
    res.crossCalls = rig.transport().crossTenantCalls.value();
    res.crossResolves = rig.nameServer().crossTenantResolves.value();
    return res;
}

TEST(TenantContainment, FaultStormInTenantALeavesTenantBsGoodput)
{
    constexpr uint64_t seed = 0x7E4A47;
    constexpr int iters = 96;
    ContainmentResult calm = runContainment(seed, iters, false);
    ContainmentResult storm = runContainment(seed, iters, true);

    // The storm was real: faults fired, services died and were
    // resurrected, and tenant A visibly suffered - every one of its
    // ops that came back did so through restarts and retries. (With
    // an 8-attempt budget A's ops may all eventually succeed; the
    // damage shows up as recovery work, not end failures.)
    EXPECT_GT(storm.fired.size(), 20u);
    EXPECT_GT(storm.restarts, 40u);
    EXPECT_GT(storm.retries, calm.retries + 20);

    // Containment: tenant B's goodput stays within 10% of its
    // no-fault baseline (ISSUE acceptance).
    ASSERT_GT(calm.b.ok, 0u);
    EXPECT_GE(storm.b.ok * 10, calm.b.ok * 9)
        << "storm B ok " << storm.b.ok << " vs calm " << calm.b.ok;

    // Zero leakage across the boundary, in either run: no grant, no
    // call, no resolution ever crossed tenants.
    for (const ContainmentResult *r : {&calm, &storm}) {
        EXPECT_EQ(r->grants, 0u);
        EXPECT_EQ(r->crossCalls, 0u);
        EXPECT_EQ(r->crossResolves, 0u);
    }

    // Every failure anywhere was clean and contained: no corrupt
    // replies, no unexplained failures, no leaked linkage - for
    // either tenant.
    for (const TenantRig::OpCounts *c :
         {&storm.a, &storm.b, &calm.a, &calm.b}) {
        EXPECT_EQ(c->corrupt, 0u);
        EXPECT_EQ(c->unexplained, 0u);
        EXPECT_EQ(c->leakedLinkage, 0u);
    }
    // The calm baseline really was calm.
    EXPECT_EQ(calm.a.failed + calm.b.failed, 0u);
}

TEST(TenantContainment, SameSeedReplaysIdentically)
{
    ContainmentResult x = runContainment(0xB1A57, 48, true);
    ContainmentResult y = runContainment(0xB1A57, 48, true);

    ASSERT_EQ(x.fired.size(), y.fired.size());
    for (size_t i = 0; i < x.fired.size(); i++) {
        EXPECT_EQ(x.fired[i].callSeq, y.fired[i].callSeq);
        EXPECT_EQ(x.fired[i].op, y.fired[i].op);
        EXPECT_EQ(x.fired[i].phase, y.fired[i].phase);
    }
    EXPECT_EQ(x.restarts, y.restarts);
    EXPECT_EQ(x.a.ok, y.a.ok);
    EXPECT_EQ(x.a.failed, y.a.failed);
    EXPECT_EQ(x.b.ok, y.b.ok);
    EXPECT_EQ(x.b.failed, y.b.failed);
}

} // namespace
} // namespace xpc::services
