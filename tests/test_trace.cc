/**
 * @file
 * Unit tests for the cycle-keyed event tracer, the RAII span probes
 * and the pluggable log sink.
 *
 * The tracer is process-global, so every test goes through the
 * TraceTest fixture: it saves the enabled flag, resets the buffer,
 * and restores everything on teardown so tests stay independent and
 * order-insensitive.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "sim/logging.hh"
#include "sim/phase.hh"
#include "sim/trace.hh"
#include "sim/types.hh"

namespace xpc {
namespace {

/** Minimal clock for Span/PhaseTimer: now().value() and id() only. */
struct StubCore
{
    uint64_t t = 0;
    uint32_t core = 3;

    Cycles now() const { return Cycles(t); }
    uint32_t id() const { return core; }
};

class TraceTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        if (!trace::Tracer::compiledIn)
            GTEST_SKIP() << "built with XPC_TRACING_DISABLED";
        trace::Tracer &t = trace::Tracer::global();
        wasEnabled = t.enabled();
        savedCap = t.capacity();
        t.setCapacity(1024); // also clears
        t.setEnabled(true);
    }

    void
    TearDown() override
    {
        if (!trace::Tracer::compiledIn)
            return;
        trace::Tracer &t = trace::Tracer::global();
        t.setEnabled(wasEnabled);
        t.setCapacity(savedCap);
        t.clear();
    }

    bool wasEnabled = false;
    size_t savedCap = 0;
};

TEST_F(TraceTest, SpanNestingEmitsBalancedBeginEnd)
{
    StubCore core;
    {
        trace::Span<StubCore> outer(core, "test", "outer");
        core.t = 10;
        {
            trace::Span<StubCore> inner(core, "test", "inner");
            core.t = 20;
        }
        core.t = 30;
    }
    auto evs = trace::Tracer::global().events();
    ASSERT_EQ(evs.size(), 4u);
    EXPECT_EQ(evs[0].kind, trace::EventKind::Begin);
    EXPECT_STREQ(evs[0].name, "outer");
    EXPECT_EQ(evs[0].ts, 0u);
    EXPECT_EQ(evs[1].kind, trace::EventKind::Begin);
    EXPECT_STREQ(evs[1].name, "inner");
    EXPECT_EQ(evs[1].ts, 10u);
    EXPECT_EQ(evs[2].kind, trace::EventKind::End);
    EXPECT_STREQ(evs[2].name, "inner");
    EXPECT_EQ(evs[2].ts, 20u);
    EXPECT_EQ(evs[3].kind, trace::EventKind::End);
    EXPECT_STREQ(evs[3].name, "outer");
    EXPECT_EQ(evs[3].ts, 30u);
    for (const auto &ev : evs)
        EXPECT_EQ(ev.tid, core.id());
}

TEST_F(TraceTest, RingWrapsAndCountsDrops)
{
    trace::Tracer &t = trace::Tracer::global();
    t.setCapacity(4);
    for (uint64_t i = 0; i < 10; i++)
        t.instant("test", "ev", i, 0);
    EXPECT_EQ(t.recordedCount(), 10u);
    EXPECT_EQ(t.size(), 4u);
    EXPECT_EQ(t.droppedCount(), 6u);
    auto evs = t.events();
    ASSERT_EQ(evs.size(), 4u);
    // Oldest retained first: timestamps 6..9.
    for (size_t i = 0; i < evs.size(); i++)
        EXPECT_EQ(evs[i].ts, 6 + i);

    t.clear();
    EXPECT_EQ(t.recordedCount(), 0u);
    EXPECT_EQ(t.size(), 0u);
    EXPECT_EQ(t.droppedCount(), 0u);
    EXPECT_EQ(t.capacity(), 4u);
}

TEST_F(TraceTest, DisabledTracerRecordsNothing)
{
    trace::Tracer &t = trace::Tracer::global();
    t.setEnabled(false);
    // Record methods self-guard: even unguarded probe sites stay
    // silent while tracing is off.
    t.begin("test", "x", 1, 0);
    t.end("test", "x", 2, 0);
    t.instant("test", "i", 3, 0);
    t.counter("test", "c", 4, 5, 0);
    t.instantNow("test", "n", 0);
    StubCore core;
    { trace::Span<StubCore> span(core, "test", "span"); }
    EXPECT_EQ(t.recordedCount(), 0u);
    EXPECT_EQ(t.size(), 0u);
    EXPECT_TRUE(t.events().empty());
}

TEST_F(TraceTest, InstantNowReusesLastTimestampPerTid)
{
    trace::Tracer &t = trace::Tracer::global();
    t.begin("test", "s", 500, 4);
    t.instant("test", "other", 900, 5);
    EXPECT_EQ(t.lastTime(4), 500u);
    EXPECT_EQ(t.lastTime(5), 900u);
    EXPECT_EQ(t.lastTime(42), 0u);
    t.instantNow("test", "obs", 4);
    auto evs = t.events();
    ASSERT_FALSE(evs.empty());
    EXPECT_EQ(evs.back().ts, 500u);
    EXPECT_EQ(evs.back().tid, 4u);
}

TEST_F(TraceTest, ChromeJsonRoundTrip)
{
    trace::Tracer &t = trace::Tracer::global();
    t.begin("cat", "span", 100, 1);
    t.end("cat", "span", 250, 1);
    t.instant("cat", "mark", 300, 2, "hello \"world\"\n");
    t.counter("cat", "depth", 7, 400, 1);

    std::ostringstream os;
    t.exportChromeJson(os);
    std::string json = os.str();

    EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
    EXPECT_NE(json.find("\"name\":\"span\",\"cat\":\"cat\","
                        "\"ph\":\"B\",\"ts\":100"),
              std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"E\",\"ts\":250"), std::string::npos);
    // Instants carry scope "t" and the escaped text payload.
    EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
    EXPECT_NE(json.find("\"s\":\"t\""), std::string::npos);
    EXPECT_NE(json.find("\\\"world\\\"\\n"), std::string::npos);
    // Counters export their sampled value.
    EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
    EXPECT_NE(json.find("\"args\":{\"value\":7}"), std::string::npos);
    // Cheap structural check: the document is brace-balanced and each
    // of the four events became one object.
    EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
              std::count(json.begin(), json.end(), '}'));
    size_t nevents = 0;
    for (size_t at = json.find("\"ph\":"); at != std::string::npos;
         at = json.find("\"ph\":", at + 1))
        nevents++;
    EXPECT_EQ(nevents, 4u);
}

TEST_F(TraceTest, LogSinkCapturesRecords)
{
    std::vector<std::pair<LogLevel, std::string>> captured;
    setLogSink([&](LogLevel level, const std::string &msg) {
        captured.emplace_back(level, msg);
    });
    warn("relay segment %d oversized", 7);
    inform("engine cache primed");
    setLogSink(nullptr);

    ASSERT_EQ(captured.size(), 2u);
    EXPECT_EQ(captured[0].first, LogLevel::Warn);
    EXPECT_EQ(captured[0].second, "relay segment 7 oversized");
    EXPECT_EQ(captured[1].first, LogLevel::Inform);
    EXPECT_EQ(captured[1].second, "engine cache primed");
}

TEST_F(TraceTest, LogRecordsInterleaveIntoTraceWhenEnabled)
{
    trace::Tracer &t = trace::Tracer::global();
    setLogSink([](LogLevel, const std::string &) {}); // mute stdio
    warn("tlb shootdown fallback");
    setLogSink(nullptr);

    auto evs = t.events();
    ASSERT_FALSE(evs.empty());
    const trace::TraceEvent &ev = evs.back();
    EXPECT_EQ(ev.kind, trace::EventKind::Instant);
    EXPECT_STREQ(ev.cat, "log");
    EXPECT_STREQ(ev.name, "warn");
    EXPECT_EQ(t.textOf(ev), "tlb shootdown fallback");
}

TEST_F(TraceTest, PhaseTimerRecordsStatsAndSpan)
{
    StubCore core;
    core.t = 100;
    PhaseStats stats;
    {
        PhaseTimer<StubCore> timer(core, stats, Phase::Xcall);
        core.t = 172;
    }
    EXPECT_EQ(stats.last(Phase::Xcall), 72u);
    EXPECT_EQ(stats.dist(Phase::Xcall).count(), 1u);

    auto evs = trace::Tracer::global().events();
    ASSERT_EQ(evs.size(), 2u);
    EXPECT_EQ(evs[0].kind, trace::EventKind::Begin);
    EXPECT_STREQ(evs[0].name, "xcall");
    EXPECT_EQ(evs[0].ts, 100u);
    EXPECT_EQ(evs[1].kind, trace::EventKind::End);
    EXPECT_EQ(evs[1].ts, 172u);
}

TEST_F(TraceTest, PhaseTimerStopIsIdempotent)
{
    StubCore core;
    PhaseStats stats;
    PhaseTimer<StubCore> timer(core, stats, Phase::Handler);
    core.t = 40;
    EXPECT_EQ(timer.stop().value(), 40u);
    core.t = 99; // later stops (and the destructor) must not re-record
    EXPECT_EQ(timer.stop().value(), 40u);
    EXPECT_EQ(stats.dist(Phase::Handler).count(), 1u);
    EXPECT_EQ(stats.last(Phase::Handler), 40u);
}

TEST_F(TraceTest, SetCapacityDropsOldEvents)
{
    trace::Tracer &t = trace::Tracer::global();
    t.instant("test", "a", 1, 0);
    t.instant("test", "b", 2, 0);
    EXPECT_EQ(t.size(), 2u);
    t.setCapacity(8);
    EXPECT_EQ(t.size(), 0u);
    EXPECT_EQ(t.capacity(), 8u);
    t.instant("test", "c", 3, 0);
    EXPECT_EQ(t.size(), 1u);
}

} // namespace
} // namespace xpc
