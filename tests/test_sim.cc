/**
 * @file
 * Unit tests for the sim substrate: types, RNG, Zipfian, statistics.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <sstream>

#include "sim/phase.hh"
#include "sim/random.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace xpc {
namespace {

TEST(CyclesTest, ArithmeticBehavesLikeIntegers)
{
    Cycles a(10), b(3);
    EXPECT_EQ((a + b).value(), 13u);
    EXPECT_EQ((a - b).value(), 7u);
    EXPECT_EQ((b * 4).value(), 12u);
    a += b;
    EXPECT_EQ(a.value(), 13u);
    EXPECT_LT(b, a);
}

TEST(PageMathTest, AlignmentHelpers)
{
    EXPECT_EQ(pageAlignDown(0x1234), 0x1000u);
    EXPECT_EQ(pageAlignUp(0x1234), 0x2000u);
    EXPECT_EQ(pageAlignUp(0x1000), 0x1000u);
    EXPECT_TRUE(pageAligned(0x3000));
    EXPECT_FALSE(pageAligned(0x3001));
}

TEST(RngTest, DeterministicForSameSeed)
{
    Rng a(7), b(7);
    for (int i = 0; i < 100; i++)
        EXPECT_EQ(a.next(), b.next());
}

TEST(RngTest, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; i++)
        same += (a.next() == b.next());
    EXPECT_LT(same, 4);
}

TEST(RngTest, BoundedStaysInBounds)
{
    Rng rng(99);
    for (int i = 0; i < 10000; i++)
        EXPECT_LT(rng.nextBounded(17), 17u);
}

TEST(RngTest, DoubleInUnitInterval)
{
    Rng rng(5);
    for (int i = 0; i < 10000; i++) {
        double d = rng.nextDouble();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(ZipfianTest, StaysInRange)
{
    Zipfian z(1000);
    for (int i = 0; i < 20000; i++)
        EXPECT_LT(z.next(), 1000u);
}

TEST(ZipfianTest, HeadIsHot)
{
    // With theta=0.99, the top handful of keys should dominate.
    Zipfian z(1000);
    uint64_t head = 0, total = 50000;
    for (uint64_t i = 0; i < total; i++)
        head += (z.next() < 10);
    EXPECT_GT(double(head) / double(total), 0.3);
}

TEST(DistributionTest, MomentsAndQuantiles)
{
    Distribution d;
    for (int i = 1; i <= 100; i++)
        d.add(double(i));
    EXPECT_EQ(d.count(), 100u);
    EXPECT_DOUBLE_EQ(d.min(), 1.0);
    EXPECT_DOUBLE_EQ(d.max(), 100.0);
    EXPECT_DOUBLE_EQ(d.mean(), 50.5);
    EXPECT_NEAR(d.quantile(0.5), 50.5, 0.01);
    EXPECT_NEAR(d.quantile(0.99), 99.01, 0.01);
}

TEST(DistributionTest, ResetClears)
{
    Distribution d;
    d.add(1);
    d.reset();
    EXPECT_EQ(d.count(), 0u);
    EXPECT_EQ(d.sum(), 0.0);
}

TEST(WeightedCdfTest, CumulativeFractionMonotone)
{
    WeightedCdf cdf;
    cdf.add(4, 10);
    cdf.add(64, 30);
    cdf.add(4096, 60);
    EXPECT_DOUBLE_EQ(cdf.totalWeight(), 100.0);
    EXPECT_DOUBLE_EQ(cdf.cumulativeAt(3), 0.0);
    EXPECT_DOUBLE_EQ(cdf.cumulativeAt(4), 0.1);
    EXPECT_DOUBLE_EQ(cdf.cumulativeAt(64), 0.4);
    EXPECT_DOUBLE_EQ(cdf.cumulativeAt(1 << 20), 1.0);
}

TEST(WeightedCdfTest, BelowFirstKeyAndEmptyAreZero)
{
    WeightedCdf empty;
    EXPECT_DOUBLE_EQ(empty.totalWeight(), 0.0);
    // Empty cdf: no mass anywhere, and no division by zero.
    EXPECT_DOUBLE_EQ(empty.cumulativeAt(0), 0.0);
    EXPECT_DOUBLE_EQ(empty.cumulativeAt(~uint64_t(0)), 0.0);

    WeightedCdf cdf;
    cdf.add(100, 1);
    // Every key strictly below the first bucket carries zero mass,
    // including key 0.
    EXPECT_DOUBLE_EQ(cdf.cumulativeAt(0), 0.0);
    EXPECT_DOUBLE_EQ(cdf.cumulativeAt(99), 0.0);
    EXPECT_DOUBLE_EQ(cdf.cumulativeAt(100), 1.0);
}

TEST(CounterTest, IncrementAndReset)
{
    Counter c;
    c.inc();
    c.inc(5);
    EXPECT_EQ(c.value(), 6u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(DistributionTest, EmptyQueriesAreNaN)
{
    Distribution d;
    EXPECT_TRUE(std::isnan(d.min()));
    EXPECT_TRUE(std::isnan(d.max()));
    EXPECT_TRUE(std::isnan(d.mean()));
    EXPECT_TRUE(std::isnan(d.quantile(0.5)));
    EXPECT_TRUE(std::isnan(d.quantile(0.0)));
    EXPECT_TRUE(std::isnan(d.quantile(1.0)));
}

TEST(DistributionTest, QuantileEndpointsAreMinAndMax)
{
    Distribution d;
    for (double v : {7.0, 3.0, 11.0, 5.0})
        d.add(v);
    EXPECT_DOUBLE_EQ(d.quantile(0.0), 3.0);
    EXPECT_DOUBLE_EQ(d.quantile(1.0), 11.0);
    EXPECT_DOUBLE_EQ(d.quantile(0.0), d.min());
    EXPECT_DOUBLE_EQ(d.quantile(1.0), d.max());
}

TEST(DistributionTest, SingleSampleEveryQuantileIsTheSample)
{
    Distribution d;
    d.add(42.0);
    // pos = q * (n-1) = 0 for every q: lo == hi == 0, no
    // interpolation partner to index past the end.
    for (double q : {0.0, 0.25, 0.5, 0.99, 0.999, 1.0})
        EXPECT_DOUBLE_EQ(d.quantile(q), 42.0) << "q=" << q;
}

TEST(DistributionTest, DuplicateHeavySamplesInterpolateExactly)
{
    // 99 copies of 5 and one 10: every quantile up to p98 sits inside
    // the run of fives; only the very top interpolates toward 10.
    Distribution d;
    for (int i = 0; i < 99; i++)
        d.add(5.0);
    d.add(10.0);
    EXPECT_DOUBLE_EQ(d.quantile(0.0), 5.0);
    EXPECT_DOUBLE_EQ(d.quantile(0.5), 5.0);
    EXPECT_DOUBLE_EQ(d.quantile(0.98), 5.0);
    EXPECT_DOUBLE_EQ(d.quantile(1.0), 10.0);
    // pos = 0.999 * 99 = 98.901: between the last 5 and the 10.
    EXPECT_NEAR(d.quantile(0.999), 5.0 + 0.901 * 5.0, 1e-9);
}

TEST(DistributionTest, QuantileNearOneDoesNotIndexPastEnd)
{
    // Regression: q just below 1 can make ceil(q * (n-1)) exceed
    // n-1 through floating error; the indices must clamp.
    Distribution d;
    for (int i = 1; i <= 7; i++)
        d.add(double(i));
    double v = d.quantile(0.9999999999999999);
    EXPECT_GE(v, d.min());
    EXPECT_LE(v, d.max());
}

TEST(DistributionTest, QuantileOutOfRangePanics)
{
    Distribution d;
    d.add(1.0);
    EXPECT_DEATH(d.quantile(-0.1), "quantile");
    EXPECT_DEATH(d.quantile(1.1), "quantile");
}

TEST(StatGroupTest, RegistersAndLooksUp)
{
    StatGroup root("system");
    StatGroup child("engine", &root);
    Counter c;
    Distribution d;
    child.addCounter("xcalls", &c);
    child.addDistribution("latency", &d);

    ASSERT_EQ(root.children().size(), 1u);
    EXPECT_EQ(root.child("engine"), &child);
    EXPECT_EQ(root.child("nope"), nullptr);
    EXPECT_EQ(child.counter("xcalls"), &c);
    EXPECT_EQ(child.distribution("latency"), &d);
    EXPECT_EQ(child.counter("latency"), nullptr);
}

TEST(StatGroupTest, ResetAllRecurses)
{
    StatGroup root("root");
    StatGroup child("child", &root);
    Counter top, bottom;
    Distribution d;
    root.addCounter("top", &top);
    child.addCounter("bottom", &bottom);
    child.addDistribution("dist", &d);
    top.inc(3);
    bottom.inc(5);
    d.add(42);

    root.resetAll();
    EXPECT_EQ(top.value(), 0u);
    EXPECT_EQ(bottom.value(), 0u);
    EXPECT_EQ(d.count(), 0u);
}

TEST(StatGroupTest, DumpJsonIsWellFormedAndComplete)
{
    StatGroup root("system");
    StatGroup child("cache", &root);
    Counter hits;
    Distribution lat;
    child.addCounter("hits", &hits);
    child.addDistribution("latency", &lat);
    hits.inc(7);
    for (int i = 1; i <= 4; i++)
        lat.add(double(i * 10));

    std::ostringstream os;
    root.dumpJson(os);
    std::string json = os.str();
    EXPECT_NE(json.find("\"name\":\"system\""), std::string::npos);
    EXPECT_NE(json.find("\"name\":\"cache\""), std::string::npos);
    EXPECT_NE(json.find("\"hits\":7"), std::string::npos);
    EXPECT_NE(json.find("\"p50\""), std::string::npos);
    // Balanced braces (cheap well-formedness check).
    EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
              std::count(json.begin(), json.end(), '}'));
}

TEST(StatGroupTest, DumpCsvRowsCarryFullPath)
{
    StatGroup root("system");
    StatGroup child("tlb", &root);
    Counter misses;
    child.addCounter("misses", &misses);
    misses.inc(9);

    std::ostringstream os;
    root.dumpCsv(os);
    EXPECT_NE(os.str().find("system.tlb,counter,misses,9"),
              std::string::npos);
}

TEST(StatGroupTest, DetachesFromDyingParentSafely)
{
    StatGroup child("child");
    {
        StatGroup parent("parent");
        child.setParent(&parent);
        ASSERT_EQ(parent.children().size(), 1u);
    }
    // Parent died first: the child must have been orphaned.
    EXPECT_EQ(child.parent(), nullptr);

    // And the reverse: a dying child detaches from its parent.
    StatGroup parent2("parent2");
    {
        StatGroup c2("c2", &parent2);
        ASSERT_EQ(parent2.children().size(), 1u);
    }
    EXPECT_TRUE(parent2.children().empty());
}

TEST(PhaseStatsTest, RecordsLastAndDistribution)
{
    PhaseStats ps;
    ps.record(Phase::Trap, Cycles(100));
    ps.record(Phase::Trap, Cycles(120));
    EXPECT_EQ(ps.last(Phase::Trap), 120u);
    EXPECT_EQ(ps.dist(Phase::Trap).count(), 2u);
    EXPECT_DOUBLE_EQ(ps.dist(Phase::Trap).mean(), 110.0);
    EXPECT_EQ(ps.last(Phase::Xret), 0u);
    EXPECT_EQ(ps.dist(Phase::Xret).count(), 0u);

    ps.reset();
    EXPECT_EQ(ps.last(Phase::Trap), 0u);
    EXPECT_EQ(ps.dist(Phase::Trap).count(), 0u);
}

TEST(PhaseStatsTest, PhaseNamesCoverTheTaxonomy)
{
    EXPECT_STREQ(phaseName(Phase::Trap), "trap");
    EXPECT_STREQ(phaseName(Phase::Transfer), "transfer");
    EXPECT_STREQ(phaseName(Phase::Xcall), "xcall");
    EXPECT_STREQ(phaseName(Phase::RoundTrip), "round_trip");
    std::set<std::string> names;
    for (uint32_t i = 0; i < phaseCount; i++)
        names.insert(phaseName(Phase(i)));
    EXPECT_EQ(names.size(), phaseCount); // all distinct
}

} // namespace
} // namespace xpc
