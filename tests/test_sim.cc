/**
 * @file
 * Unit tests for the sim substrate: types, RNG, Zipfian, statistics.
 */

#include <gtest/gtest.h>

#include <set>

#include "sim/random.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace xpc {
namespace {

TEST(CyclesTest, ArithmeticBehavesLikeIntegers)
{
    Cycles a(10), b(3);
    EXPECT_EQ((a + b).value(), 13u);
    EXPECT_EQ((a - b).value(), 7u);
    EXPECT_EQ((b * 4).value(), 12u);
    a += b;
    EXPECT_EQ(a.value(), 13u);
    EXPECT_LT(b, a);
}

TEST(PageMathTest, AlignmentHelpers)
{
    EXPECT_EQ(pageAlignDown(0x1234), 0x1000u);
    EXPECT_EQ(pageAlignUp(0x1234), 0x2000u);
    EXPECT_EQ(pageAlignUp(0x1000), 0x1000u);
    EXPECT_TRUE(pageAligned(0x3000));
    EXPECT_FALSE(pageAligned(0x3001));
}

TEST(RngTest, DeterministicForSameSeed)
{
    Rng a(7), b(7);
    for (int i = 0; i < 100; i++)
        EXPECT_EQ(a.next(), b.next());
}

TEST(RngTest, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; i++)
        same += (a.next() == b.next());
    EXPECT_LT(same, 4);
}

TEST(RngTest, BoundedStaysInBounds)
{
    Rng rng(99);
    for (int i = 0; i < 10000; i++)
        EXPECT_LT(rng.nextBounded(17), 17u);
}

TEST(RngTest, DoubleInUnitInterval)
{
    Rng rng(5);
    for (int i = 0; i < 10000; i++) {
        double d = rng.nextDouble();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(ZipfianTest, StaysInRange)
{
    Zipfian z(1000);
    for (int i = 0; i < 20000; i++)
        EXPECT_LT(z.next(), 1000u);
}

TEST(ZipfianTest, HeadIsHot)
{
    // With theta=0.99, the top handful of keys should dominate.
    Zipfian z(1000);
    uint64_t head = 0, total = 50000;
    for (uint64_t i = 0; i < total; i++)
        head += (z.next() < 10);
    EXPECT_GT(double(head) / double(total), 0.3);
}

TEST(DistributionTest, MomentsAndQuantiles)
{
    Distribution d;
    for (int i = 1; i <= 100; i++)
        d.add(double(i));
    EXPECT_EQ(d.count(), 100u);
    EXPECT_DOUBLE_EQ(d.min(), 1.0);
    EXPECT_DOUBLE_EQ(d.max(), 100.0);
    EXPECT_DOUBLE_EQ(d.mean(), 50.5);
    EXPECT_NEAR(d.quantile(0.5), 50.5, 0.01);
    EXPECT_NEAR(d.quantile(0.99), 99.01, 0.01);
}

TEST(DistributionTest, ResetClears)
{
    Distribution d;
    d.add(1);
    d.reset();
    EXPECT_EQ(d.count(), 0u);
    EXPECT_EQ(d.sum(), 0.0);
}

TEST(WeightedCdfTest, CumulativeFractionMonotone)
{
    WeightedCdf cdf;
    cdf.add(4, 10);
    cdf.add(64, 30);
    cdf.add(4096, 60);
    EXPECT_DOUBLE_EQ(cdf.totalWeight(), 100.0);
    EXPECT_DOUBLE_EQ(cdf.cumulativeAt(3), 0.0);
    EXPECT_DOUBLE_EQ(cdf.cumulativeAt(4), 0.1);
    EXPECT_DOUBLE_EQ(cdf.cumulativeAt(64), 0.4);
    EXPECT_DOUBLE_EQ(cdf.cumulativeAt(1 << 20), 1.0);
}

TEST(CounterTest, IncrementAndReset)
{
    Counter c;
    c.inc();
    c.inc(5);
    EXPECT_EQ(c.value(), 6u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

} // namespace
} // namespace xpc
