/**
 * @file
 * Tests for the service layer: AES against FIPS/NIST vectors, the
 * xv6 file system (including crash-consistency properties), the TCP
 * stack, and the block/FS/net/web servers over the IPC transports.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <numeric>
#include <vector>

#include "core/system.hh"
#include "services/block_device.hh"
#include "services/crypto/aes.hh"
#include "services/fs/xv6fs.hh"
#include "services/fs_server.hh"
#include "services/net/tcp.hh"
#include "services/net_server.hh"
#include "services/proto.hh"
#include "services/web.hh"
#include "sim/random.hh"

namespace xpc::services {
namespace {

// --------------------------------------------------------------------
// AES-128
// --------------------------------------------------------------------

TEST(AesTest, Fips197AppendixBVector)
{
    const uint8_t key[16] = {0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2,
                             0xa6, 0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf,
                             0x4f, 0x3c};
    const uint8_t plain[16] = {0x32, 0x43, 0xf6, 0xa8, 0x88, 0x5a,
                               0x30, 0x8d, 0x31, 0x31, 0x98, 0xa2,
                               0xe0, 0x37, 0x07, 0x34};
    const uint8_t expect[16] = {0x39, 0x25, 0x84, 0x1d, 0x02, 0xdc,
                                0x09, 0xfb, 0xdc, 0x11, 0x85, 0x97,
                                0x19, 0x6a, 0x0b, 0x32};
    crypto::Aes128 aes(key);
    uint8_t out[16];
    aes.encryptBlock(plain, out);
    EXPECT_EQ(std::memcmp(out, expect, 16), 0);
    uint8_t back[16];
    aes.decryptBlock(out, back);
    EXPECT_EQ(std::memcmp(back, plain, 16), 0);
}

TEST(AesTest, Nist38aCbcVector)
{
    // NIST SP 800-38A F.2.1 CBC-AES128.Encrypt, first two blocks.
    const uint8_t key[16] = {0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2,
                             0xa6, 0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf,
                             0x4f, 0x3c};
    const uint8_t iv[16] = {0x00, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06,
                            0x07, 0x08, 0x09, 0x0a, 0x0b, 0x0c, 0x0d,
                            0x0e, 0x0f};
    uint8_t data[32] = {0x6b, 0xc1, 0xbe, 0xe2, 0x2e, 0x40, 0x9f,
                        0x96, 0xe9, 0x3d, 0x7e, 0x11, 0x73, 0x93,
                        0x17, 0x2a, 0xae, 0x2d, 0x8a, 0x57, 0x1e,
                        0x03, 0xac, 0x9c, 0x9e, 0xb7, 0x6f, 0xac,
                        0x45, 0xaf, 0x8e, 0x51};
    const uint8_t expect[32] = {
        0x76, 0x49, 0xab, 0xac, 0x81, 0x19, 0xb2, 0x46, 0xce, 0xe9,
        0x8e, 0x9b, 0x12, 0xe9, 0x19, 0x7d, 0x50, 0x86, 0xcb, 0x9b,
        0x50, 0x72, 0x19, 0xee, 0x95, 0xdb, 0x11, 0x3a, 0x91, 0x76,
        0x78, 0xb2};
    crypto::Aes128 aes(key);
    aes.encryptCbc(data, sizeof(data), iv);
    EXPECT_EQ(std::memcmp(data, expect, 32), 0);
    aes.decryptCbc(data, sizeof(data), iv);
    EXPECT_EQ(data[0], 0x6b);
    EXPECT_EQ(data[31], 0x51);
}

TEST(AesTest, CbcRoundTripsRandomData)
{
    Rng rng(4);
    uint8_t key[16];
    for (auto &k : key)
        k = uint8_t(rng.next());
    crypto::Aes128 aes(key);
    std::vector<uint8_t> data(4096), orig;
    for (auto &b : data)
        b = uint8_t(rng.next());
    orig = data;
    uint8_t iv[16] = {};
    aes.encryptCbc(data.data(), data.size(), iv);
    EXPECT_NE(data, orig);
    aes.decryptCbc(data.data(), data.size(), iv);
    EXPECT_EQ(data, orig);
}

// --------------------------------------------------------------------
// TCP
// --------------------------------------------------------------------

TEST(TcpTest, ChecksumMatchesRfc1071Example)
{
    // Classic example: checksum of {0x0001, 0xf203, 0xf4f5, 0xf6f7}.
    const uint8_t data[] = {0x00, 0x01, 0xf2, 0x03,
                            0xf4, 0xf5, 0xf6, 0xf7};
    EXPECT_EQ(net::inetChecksum(data, sizeof(data)), 0x220d);
}

class TcpLoop : public ::testing::Test
{
  protected:
    TcpLoop()
    {
        xmit = [this](std::vector<uint8_t> &frame) {
            stack.deliver(frame.data(), frame.size());
        };
        srv = stack.socket();
        stack.listen(srv, 80);
        cli = stack.socket();
        stack.connect(cli, 80, xmit);
    }

    net::TcpStack stack;
    std::function<void(std::vector<uint8_t> &)> xmit;
    int64_t srv = 0, cli = 0;
};

TEST_F(TcpLoop, DataFlowsClientToServer)
{
    std::vector<uint8_t> msg(5000);
    std::iota(msg.begin(), msg.end(), 0);
    EXPECT_EQ(stack.send(cli, msg.data(), msg.size(), xmit),
              int64_t(msg.size()));
    // 5000 bytes = 4 segments at MSS 1460.
    EXPECT_EQ(stack.segmentsSent.value(), 4u);
    std::vector<uint8_t> got(msg.size());
    EXPECT_EQ(stack.recv(srv, got.data(), got.size()),
              int64_t(msg.size()));
    EXPECT_EQ(got, msg);
    EXPECT_EQ(stack.checksumFailures.value(), 0u);
}

TEST_F(TcpLoop, CorruptSegmentIsDropped)
{
    std::vector<uint8_t> msg(100, 0x42);
    auto corrupting = [this](std::vector<uint8_t> &frame) {
        frame[sizeof(net::TcpHeader) + 10] ^= 0xff;
        stack.deliver(frame.data(), frame.size());
    };
    stack.send(cli, msg.data(), msg.size(), corrupting);
    EXPECT_EQ(stack.checksumFailures.value(), 1u);
    std::vector<uint8_t> got(msg.size());
    EXPECT_EQ(stack.recv(srv, got.data(), got.size()), 0);
}

TEST_F(TcpLoop, SequenceNumbersAdvance)
{
    std::vector<uint8_t> msg(2000, 1);
    stack.send(cli, msg.data(), msg.size(), xmit);
    const net::TcpSocket *c = stack.find(cli);
    const net::TcpSocket *s = stack.find(srv);
    ASSERT_NE(c, nullptr);
    ASSERT_NE(s, nullptr);
    EXPECT_EQ(c->sndNxt, 1u + 2000u); // SYN consumed one
    EXPECT_EQ(s->rcvNxt, c->sndNxt);
}

// --------------------------------------------------------------------
// xv6fs over an in-memory disk
// --------------------------------------------------------------------

/** Host-memory BlockIo with optional fault injection. */
class MemDisk : public fs::BlockIo
{
  public:
    explicit MemDisk(uint32_t nblocks)
        : blocks(nblocks,
                 std::vector<uint8_t>(fs::fsBlockBytes, 0))
    {}

    void
    read(uint32_t block_no, void *dst) override
    {
        std::memcpy(dst, blocks.at(block_no).data(), fs::fsBlockBytes);
    }

    void
    write(uint32_t block_no, const void *src) override
    {
        if (writesUntilCrash >= 0) {
            if (writesUntilCrash == 0)
                throw CrashNow{};
            writesUntilCrash--;
        }
        std::memcpy(blocks.at(block_no).data(), src, fs::fsBlockBytes);
        totalWrites++;
    }

    struct CrashNow
    {
    };

    std::vector<std::vector<uint8_t>> blocks;
    int64_t writesUntilCrash = -1;
    uint64_t totalWrites = 0;
};

class Xv6FsTest : public ::testing::Test
{
  protected:
    Xv6FsTest() : disk(2048)
    {
        fs::Xv6Fs::mkfs(disk, 2048);
        EXPECT_EQ(filesystem.mount(disk), fs::fsOk);
    }

    MemDisk disk;
    fs::Xv6Fs filesystem;
};

TEST_F(Xv6FsTest, CreateWriteReadBack)
{
    int64_t fd = filesystem.open("/hello.txt", true);
    ASSERT_GE(fd, 0);
    const char msg[] = "hello, file system";
    EXPECT_EQ(filesystem.pwrite(fd, 0, msg, sizeof(msg)),
              int64_t(sizeof(msg)));
    char out[sizeof(msg)] = {};
    EXPECT_EQ(filesystem.pread(fd, 0, out, sizeof(out)),
              int64_t(sizeof(out)));
    EXPECT_STREQ(out, msg);
    EXPECT_EQ(filesystem.fileSize(fd), int64_t(sizeof(msg)));
    EXPECT_EQ(filesystem.close(fd), fs::fsOk);
}

TEST_F(Xv6FsTest, OpenMissingFails)
{
    EXPECT_EQ(filesystem.open("/nope", false), fs::fsErrNotFound);
}

TEST_F(Xv6FsTest, PersistsAcrossRemount)
{
    int64_t fd = filesystem.open("/persist", true);
    filesystem.pwrite(fd, 0, "data", 4);
    filesystem.close(fd);
    filesystem.sync();

    fs::Xv6Fs again;
    ASSERT_EQ(again.mount(disk), fs::fsOk);
    int64_t fd2 = again.open("/persist", false);
    ASSERT_GE(fd2, 0);
    char out[4];
    EXPECT_EQ(again.pread(fd2, 0, out, 4), 4);
    EXPECT_EQ(std::memcmp(out, "data", 4), 0);
}

TEST_F(Xv6FsTest, LargeFileThroughIndirectBlocks)
{
    // > 12 direct blocks (48 KiB) forces the indirect path.
    int64_t fd = filesystem.open("/big", true);
    ASSERT_GE(fd, 0);
    std::vector<uint8_t> data(200 * 1024);
    Rng rng(5);
    for (auto &b : data)
        b = uint8_t(rng.next());
    EXPECT_EQ(filesystem.pwrite(fd, 0, data.data(), data.size()),
              int64_t(data.size()));
    std::vector<uint8_t> out(data.size());
    EXPECT_EQ(filesystem.pread(fd, 0, out.data(), out.size()),
              int64_t(out.size()));
    EXPECT_EQ(out, data);
}

TEST_F(Xv6FsTest, SparseReadsReturnZeros)
{
    int64_t fd = filesystem.open("/sparse", true);
    filesystem.pwrite(fd, 100000, "x", 1);
    char c = 1;
    EXPECT_EQ(filesystem.pread(fd, 50000, &c, 1), 1);
    EXPECT_EQ(c, 0);
}

TEST_F(Xv6FsTest, UnlinkFreesSpace)
{
    int64_t fd = filesystem.open("/temp", true);
    std::vector<uint8_t> data(64 * 1024, 7);
    filesystem.pwrite(fd, 0, data.data(), data.size());
    filesystem.close(fd);
    EXPECT_EQ(filesystem.unlink("/temp"), fs::fsOk);
    EXPECT_EQ(filesystem.open("/temp", false), fs::fsErrNotFound);

    // The freed blocks are reusable: write another large file.
    int64_t fd2 = filesystem.open("/temp2", true);
    EXPECT_EQ(filesystem.pwrite(fd2, 0, data.data(), data.size()),
              int64_t(data.size()));
}

TEST_F(Xv6FsTest, DirectoriesNest)
{
    EXPECT_EQ(filesystem.mkdir("/a"), fs::fsOk);
    EXPECT_EQ(filesystem.mkdir("/a/b"), fs::fsOk);
    int64_t fd = filesystem.open("/a/b/file", true);
    ASSERT_GE(fd, 0);
    filesystem.pwrite(fd, 0, "nested", 6);
    char out[6];
    int64_t fd2 = filesystem.open("/a/b/file", false);
    EXPECT_EQ(filesystem.pread(fd2, 0, out, 6), 6);
    EXPECT_EQ(std::memcmp(out, "nested", 6), 0);
    // A non-empty directory cannot be unlinked.
    EXPECT_EQ(filesystem.unlink("/a"), fs::fsErrNotEmpty);
}

TEST_F(Xv6FsTest, ManyFilesInRoot)
{
    for (int i = 0; i < 100; i++) {
        std::string path = "/f" + std::to_string(i);
        int64_t fd = filesystem.open(path, true);
        ASSERT_GE(fd, 0) << path;
        uint32_t tag = uint32_t(i * 31);
        filesystem.pwrite(fd, 0, &tag, sizeof(tag));
        filesystem.close(fd);
    }
    for (int i = 0; i < 100; i++) {
        std::string path = "/f" + std::to_string(i);
        int64_t fd = filesystem.open(path, false);
        ASSERT_GE(fd, 0) << path;
        uint32_t tag = 0;
        filesystem.pread(fd, 0, &tag, sizeof(tag));
        EXPECT_EQ(tag, uint32_t(i * 31));
        filesystem.close(fd);
    }
}

/**
 * Crash-consistency property: crash the disk after every possible
 * prefix of writes during an update transaction; after recovery the
 * file must hold either the old or the new content, never a mix.
 */
TEST(Xv6FsCrashTest, PropertyTransactionIsAtomicUnderCrash)
{
    // First, count the writes a reference run performs.
    std::vector<uint8_t> old_content(8192, 0xaa);
    std::vector<uint8_t> new_content(8192, 0xbb);

    auto setup = [&](MemDisk &disk) {
        fs::Xv6Fs::mkfs(disk, 1024);
        fs::Xv6Fs f;
        EXPECT_EQ(f.mount(disk), fs::fsOk);
        int64_t fd = f.open("/victim", true);
        f.pwrite(fd, 0, old_content.data(), old_content.size());
        f.close(fd);
        f.sync();
    };

    MemDisk ref(1024);
    setup(ref);
    uint64_t before = ref.totalWrites;
    {
        fs::Xv6Fs f;
        f.mount(ref);
        int64_t fd = f.open("/victim", false);
        f.pwrite(fd, 0, new_content.data(), new_content.size());
    }
    uint64_t tx_writes = ref.totalWrites - before;
    ASSERT_GT(tx_writes, 4u);

    int old_seen = 0, new_seen = 0;
    for (uint64_t crash_at = 0; crash_at <= tx_writes; crash_at++) {
        MemDisk disk(1024);
        setup(disk);
        disk.writesUntilCrash = int64_t(crash_at);
        try {
            fs::Xv6Fs f;
            f.mount(disk);
            int64_t fd = f.open("/victim", false);
            f.pwrite(fd, 0, new_content.data(), new_content.size());
        } catch (const MemDisk::CrashNow &) {
            // Power failure at this write boundary.
        }
        disk.writesUntilCrash = -1;

        fs::Xv6Fs recovered;
        ASSERT_EQ(recovered.mount(disk), fs::fsOk);
        int64_t fd = recovered.open("/victim", false);
        ASSERT_GE(fd, 0) << "crash at write " << crash_at;
        std::vector<uint8_t> got(old_content.size());
        ASSERT_EQ(recovered.pread(fd, 0, got.data(), got.size()),
                  int64_t(got.size()));
        bool is_old = got == old_content;
        bool is_new = got == new_content;
        EXPECT_TRUE(is_old || is_new)
            << "mixed content after crash at write " << crash_at;
        old_seen += is_old;
        new_seen += is_new;
    }
    // Both outcomes must actually occur across the sweep.
    EXPECT_GT(old_seen, 0);
    EXPECT_GT(new_seen, 0);
}

// --------------------------------------------------------------------
// Services over IPC transports
// --------------------------------------------------------------------

class ServiceStack : public ::testing::TestWithParam<core::SystemFlavor>
{
  protected:
    ServiceStack()
    {
        core::SystemOptions opts;
        opts.flavor = GetParam();
        sys = std::make_unique<core::System>(opts);
    }

    std::unique_ptr<core::System> sys;
};

TEST_P(ServiceStack, BlockDeviceRoundTrips)
{
    core::Transport &tr = sys->transport();
    kernel::Thread &dev_t = sys->spawn("blockdev");
    kernel::Thread &client = sys->spawn("client");
    BlockDeviceServer dev(tr, dev_t, 64);
    tr.connect(client, dev.id());
    tr.prepareScratch(sys->core(0), client,
                      proto::blockDataOffset +
                          BlockDeviceServer::blockBytes);

    std::vector<uint8_t> block(BlockDeviceServer::blockBytes);
    Rng rng(9);
    for (auto &b : block)
        b = uint8_t(rng.next());

    std::vector<uint8_t> req(proto::blockDataOffset + block.size());
    proto::packInto(req.data(), proto::BlockReq{7, 1});
    std::memcpy(req.data() + proto::blockDataOffset, block.data(),
                block.size());
    tr.scratchCall(sys->core(0), client, false, dev.id(),
                   uint64_t(proto::BlockOp::Write), req.data(),
                   req.size(), nullptr, 0);

    std::vector<uint8_t> got(block.size());
    uint8_t hdr[16];
    proto::packInto(hdr, proto::BlockReq{7, 1});
    uint64_t n = tr.scratchCall(sys->core(0), client, false, dev.id(),
                                uint64_t(proto::BlockOp::Read), hdr,
                                sizeof(hdr), got.data(), got.size());
    EXPECT_EQ(n, got.size());
    EXPECT_EQ(got, block);
    EXPECT_EQ(dev.reads.value(), 1u);
    EXPECT_EQ(dev.writes.value(), 1u);
}

TEST_P(ServiceStack, FileSystemOverIpc)
{
    core::Transport &tr = sys->transport();
    kernel::Thread &dev_t = sys->spawn("blockdev");
    kernel::Thread &fs_t = sys->spawn("fs");
    kernel::Thread &client = sys->spawn("client");

    BlockDeviceServer dev(tr, dev_t, 2048);
    tr.connect(fs_t, dev.id());
    FsServer fsrv(tr, fs_t, dev.id(), 2048);
    tr.connect(client, fsrv.id());

    hw::Core &core = sys->core(0);
    int64_t fd = FsServer::clientOpen(tr, core, client, fsrv.id(),
                                      "/data.bin", true);
    ASSERT_GE(fd, 0);

    std::vector<uint8_t> data(10000);
    Rng rng(11);
    for (auto &b : data)
        b = uint8_t(rng.next());
    EXPECT_EQ(FsServer::clientWrite(tr, core, client, fsrv.id(), fd, 0,
                                    data.data(), data.size()),
              int64_t(data.size()));

    std::vector<uint8_t> got(data.size());
    EXPECT_EQ(FsServer::clientRead(tr, core, client, fsrv.id(), fd, 0,
                                   got.data(), got.size()),
              int64_t(got.size()));
    EXPECT_EQ(got, data);
    EXPECT_GT(dev.writes.value(), 0u);
    EXPECT_EQ(FsServer::clientClose(tr, core, client, fsrv.id(), fd),
              0);
}

TEST_P(ServiceStack, TcpThroughNetstackAndLoopback)
{
    core::Transport &tr = sys->transport();
    kernel::Thread &dev_t = sys->spawn("loopdev");
    kernel::Thread &net_t = sys->spawn("netstack");
    kernel::Thread &client = sys->spawn("client");

    LoopbackDeviceServer loop(tr, dev_t);
    tr.connect(net_t, loop.id());
    NetStackServer net(tr, net_t, loop.id());
    tr.connect(client, net.id());

    hw::Core &core = sys->core(0);
    int64_t srv = NetStackServer::clientSocket(tr, core, client,
                                               net.id());
    int64_t cli = NetStackServer::clientSocket(tr, core, client,
                                               net.id());
    ASSERT_GT(srv, 0);
    ASSERT_GT(cli, 0);
    EXPECT_EQ(NetStackServer::clientListen(tr, core, client, net.id(),
                                           srv, 8080),
              0);
    EXPECT_EQ(NetStackServer::clientConnect(tr, core, client, net.id(),
                                            cli, 8080),
              0);

    std::vector<uint8_t> msg(4000);
    Rng rng(13);
    for (auto &b : msg)
        b = uint8_t(rng.next());
    EXPECT_EQ(NetStackServer::clientSend(tr, core, client, net.id(),
                                         cli, msg.data(), msg.size()),
              int64_t(msg.size()));
    std::vector<uint8_t> got(msg.size());
    EXPECT_EQ(NetStackServer::clientRecv(tr, core, client, net.id(),
                                         srv, got.data(), got.size()),
              int64_t(got.size()));
    EXPECT_EQ(got, msg);
    EXPECT_GT(loop.framesReflected.value(), 0u);
}

TEST_P(ServiceStack, HttpChainServesAndEncrypts)
{
    core::Transport &tr = sys->transport();
    kernel::Thread &cache_t = sys->spawn("cache");
    kernel::Thread &crypto_t = sys->spawn("crypto");
    kernel::Thread &http_t = sys->spawn("http");
    kernel::Thread &client = sys->spawn("client");

    FileCacheServer cache(tr, cache_t);
    uint8_t key[16] = {1, 2, 3, 4, 5, 6, 7, 8,
                       9, 10, 11, 12, 13, 14, 15, 16};
    CryptoServer cryp(tr, crypto_t, key);

    std::vector<uint8_t> page(1500);
    for (size_t i = 0; i < page.size(); i++)
        page[i] = uint8_t('A' + (i % 26));
    cache.preload("/index.html", page);

    for (bool encrypt : {false, true}) {
        HttpServer http(tr, http_t, cache.id(), cryp.id(), encrypt,
                        4096);
        tr.connect(client, http.id());
        tr.connect(http_t, cache.id());
        tr.connect(http_t, cryp.id());

        hw::Core &core = sys->core(0);
        std::vector<uint8_t> response;
        int64_t n = HttpServer::clientGet(tr, core, client, http.id(),
                                          "/index.html", &response,
                                          4096);
        ASSERT_GT(n, 0);
        std::string text(response.begin(), response.end());
        EXPECT_NE(text.find("HTTP/1.1 200 OK"), std::string::npos);

        size_t body_at = text.find("\r\n\r\n") + 4;
        std::vector<uint8_t> body(response.begin() + body_at,
                                  response.end());
        if (!encrypt) {
            EXPECT_EQ(body, page);
        } else {
            ASSERT_EQ(body.size() % 16, 0u);
            EXPECT_NE(std::memcmp(body.data(), page.data(),
                                  std::min(body.size(), page.size())),
                      0);
            // Decrypting recovers the page.
            crypto::Aes128 aes(key);
            uint8_t iv[16] = {};
            aes.decryptCbc(body.data(), body.size(), iv);
            EXPECT_EQ(std::memcmp(body.data(), page.data(),
                                  page.size()),
                      0);
        }

        // Missing files 404.
        int64_t m = HttpServer::clientGet(tr, core, client, http.id(),
                                          "/missing", &response, 4096);
        ASSERT_GT(m, 0);
        std::string miss(response.begin(), response.end());
        EXPECT_NE(miss.find("404"), std::string::npos);
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllFlavors, ServiceStack,
    ::testing::Values(core::SystemFlavor::Sel4TwoCopy,
                      core::SystemFlavor::Sel4OneCopy,
                      core::SystemFlavor::Sel4Xpc,
                      core::SystemFlavor::Zircon,
                      core::SystemFlavor::ZirconXpc),
    [](const ::testing::TestParamInfo<core::SystemFlavor> &info) {
        std::string n = core::systemFlavorName(info.param);
        for (auto &c : n)
            if (!isalnum(static_cast<unsigned char>(c)))
                c = '_';
        return n;
    });

} // namespace
} // namespace xpc::services
