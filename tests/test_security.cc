/**
 * @file
 * Security-property tests: the paper's section 6.1 analysis, run
 * against the implementation. Authentication, TOCTTOU defence,
 * fault isolation across terminating chain members, capability
 * revocation and the DoS guard.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "core/system.hh"
#include "sim/logging.hh"

namespace xpc::core {
namespace {

class SecurityTest : public ::testing::Test
{
  protected:
    SecurityTest()
    {
        SystemOptions opts;
        opts.flavor = SystemFlavor::Sel4Xpc;
        sys = std::make_unique<System>(opts);
    }

    std::unique_ptr<System> sys;
};

TEST_F(SecurityTest, XcallWithoutCapabilityIsRejected)
{
    kernel::Thread &server = sys->spawn("server");
    kernel::Thread &attacker = sys->spawn("attacker");
    XpcRuntime &rt = sys->runtime();
    uint64_t id = rt.registerEntry(server, server,
                                   [](XpcServerCall &) {}, 2);
    // No grant for the attacker.
    hw::Core &core = sys->core(0);
    rt.allocRelayMem(core, attacker, 4096);
    auto out = rt.call(core, attacker, id, 0, 0);
    EXPECT_FALSE(out.ok);
    EXPECT_EQ(out.exc, engine::XpcException::InvalidXcallCap);
}

TEST_F(SecurityTest, RevokedCapabilityStopsWorking)
{
    kernel::Thread &server = sys->spawn("server");
    kernel::Thread &client = sys->spawn("client");
    XpcRuntime &rt = sys->runtime();
    uint64_t id = rt.registerEntry(server, server,
                                   [](XpcServerCall &) {}, 2);
    sys->manager().grantXcallCap(server, client, id);
    hw::Core &core = sys->core(0);
    rt.allocRelayMem(core, client, 4096);
    EXPECT_TRUE(rt.call(core, client, id, 0, 0).ok);

    sys->manager().revokeXcallCap(client, id);
    auto out = rt.call(core, client, id, 0, 0);
    EXPECT_FALSE(out.ok);
    EXPECT_EQ(out.exc, engine::XpcException::InvalidXcallCap);
}

TEST_F(SecurityTest, CalleeIdentifiesCallerByCapRegister)
{
    kernel::Thread &server = sys->spawn("server");
    kernel::Thread &alice = sys->spawn("alice");
    kernel::Thread &bob = sys->spawn("bob");
    XpcRuntime &rt = sys->runtime();

    PAddr seen = 0;
    uint64_t id = rt.registerEntry(
        server, server,
        [&](XpcServerCall &call) { seen = call.callerCap(); }, 2);
    sys->manager().grantXcallCap(server, alice, id);
    sys->manager().grantXcallCap(server, bob, id);

    hw::Core &core = sys->core(0);
    rt.allocRelayMem(core, alice, 4096);
    rt.call(core, alice, id, 0, 0);
    PAddr alice_cap = seen;
    rt.allocRelayMem(core, bob, 4096);
    rt.call(core, bob, id, 0, 0);
    PAddr bob_cap = seen;

    EXPECT_NE(alice_cap, 0u);
    EXPECT_NE(bob_cap, 0u);
    // Distinct callers are distinguishable and unforgeable.
    EXPECT_NE(alice_cap, bob_cap);
    EXPECT_EQ(alice_cap, alice.runtime.capBitmap);
    EXPECT_EQ(bob_cap, bob.runtime.capBitmap);
}

TEST_F(SecurityTest, TocttouSingleOwnerWindow)
{
    // While the callee runs, the active window belongs to it; the
    // caller's view is saved in the linkage record, and any byte the
    // callee validated cannot be changed behind its back because
    // there is exactly one seg-reg per core.
    kernel::Thread &server = sys->spawn("server");
    kernel::Thread &client = sys->spawn("client");
    XpcRuntime &rt = sys->runtime();

    bool validated_twice_same = false;
    uint64_t id = rt.registerEntry(
        server, server,
        [&](XpcServerCall &call) {
            uint8_t first[16], second[16];
            call.readMsg(0, first, sizeof(first));
            // ... time passes; on shared-memory designs the client
            // could now race and flip the bytes ...
            call.readMsg(0, second, sizeof(second));
            validated_twice_same =
                std::memcmp(first, second, sizeof(first)) == 0;
        },
        2);
    sys->manager().grantXcallCap(server, client, id);

    hw::Core &core = sys->core(0);
    rt.allocRelayMem(core, client, 4096);
    uint8_t payload[16] = {1, 2, 3, 4};
    rt.segWrite(core, 0, payload, sizeof(payload));
    EXPECT_TRUE(rt.call(core, client, id, 0, sizeof(payload)).ok);
    EXPECT_TRUE(validated_twice_same);
}

TEST_F(SecurityTest, RelaySegNeverOverlapsPageTables)
{
    // Invariant 2: for every live segment, no page-table mapping of
    // the owning process covers the segment's VA range, so no TLB
    // shootdown is ever needed (paper 3.1).
    kernel::Thread &client = sys->spawn("client");
    XpcRuntime &rt = sys->runtime();
    hw::Core &core = sys->core(0);
    for (int i = 0; i < 8; i++) {
        client.process()->alloc(16 * pageSize); // grow the heap
        auto seg = sys->manager().allocRelaySeg(
            &core, *client.process(), 8 * pageSize, uint64_t(i));
        EXPECT_FALSE(client.process()->space().pageTable().anyMappingIn(
            seg.va, seg.len));
    }
    (void)rt;
}

TEST_F(SecurityTest, DeadCallerMakesXretFault)
{
    // A -> B; A dies while B runs; B's xret must fault instead of
    // resuming into a corpse (paper 4.2).
    kernel::Thread &server = sys->spawn("server");
    kernel::Thread &client = sys->spawn("client");
    XpcRuntime &rt = sys->runtime();
    hw::Core &core = sys->core(0);

    engine::XretResult ret_result;
    uint64_t id = rt.registerEntry(
        server, server,
        [&](XpcServerCall &call) {
            // The kernel kills the caller mid-handler.
            sys->manager().onProcessExit(*client.process());
            // When the library later issues xret it must fault; probe
            // the engine directly (and undo the probe by... nothing -
            // the fault leaves state for the kernel).
            ret_result = sys->engine().xret(call.core());
        },
        2);
    sys->manager().grantXcallCap(server, client, id);
    rt.allocRelayMem(core, client, 4096);

    auto out = rt.call(core, client, id, 0, 0);
    EXPECT_EQ(ret_result.exc, engine::XpcException::InvalidLinkage);
    // The runtime's own xret then also faulted and reported it.
    EXPECT_FALSE(out.ok);
    EXPECT_EQ(out.exc, engine::XpcException::InvalidLinkage);
}

TEST_F(SecurityTest, MidChainDeathInvalidatesOnlyItsRecords)
{
    // A -> B -> C; B dies; C's return to B faults, but A's records
    // stay valid.
    kernel::Thread &a = sys->spawn("A");
    kernel::Thread &b = sys->spawn("B");
    kernel::Thread &c = sys->spawn("C");
    XpcRuntime &rt = sys->runtime();
    hw::Core &core = sys->core(0);

    engine::XretResult c_ret;
    uint64_t c_id = rt.registerEntry(
        c, c,
        [&](XpcServerCall &call) {
            sys->manager().onProcessExit(*b.process());
            c_ret = sys->engine().xret(call.core());
        },
        2);
    uint64_t b_id = rt.registerEntry(
        b, b,
        [&](XpcServerCall &call) {
            auto out = call.callNested(c_id, 0, 0, 16);
            (void)out;
        },
        2);
    sys->manager().grantXcallCap(b, a, b_id);
    sys->manager().grantXcallCap(c, b, c_id);

    rt.allocRelayMem(core, a, 4096);
    auto out = rt.call(core, a, b_id, 0, 64);
    // C's xret faulted because B's record was invalidated.
    EXPECT_EQ(c_ret.exc, engine::XpcException::InvalidLinkage);
    (void)out;
}

TEST_F(SecurityTest, SegRevocationReturnsMemoryOnExit)
{
    kernel::Thread &victim = sys->spawn("victim");
    hw::Core &core = sys->core(0);
    uint64_t before = sys->machine().allocator().freeBytes();
    for (int i = 0; i < 4; i++) {
        sys->manager().allocRelaySeg(&core, *victim.process(),
                                     64 * 1024, uint64_t(i));
    }
    EXPECT_LT(sys->machine().allocator().freeBytes(), before);
    sys->manager().onProcessExit(*victim.process());
    EXPECT_EQ(sys->machine().allocator().freeBytes(), before);
}

TEST_F(SecurityTest, ContextExhaustionIsBounded)
{
    // DoS guard: a caller cannot occupy more than maxContexts
    // simultaneous invocations (paper 4.2).
    kernel::Thread &server = sys->spawn("server");
    kernel::Thread &client = sys->spawn("client");
    XpcRuntime &rt = sys->runtime();

    int depth = 0, rejected = 0;
    uint64_t id = 0;
    id = rt.registerEntry(
        server, server,
        [&](XpcServerCall &call) {
            depth++;
            if (depth < 6) {
                auto out = call.callNested(id, 0, 0, 16);
                if (!out.ok && out.exc == engine::XpcException::None)
                    rejected++;
            }
        },
        3);
    sys->manager().grantXcallCap(server, client, id);
    sys->manager().grantXcallCap(server, server, id);

    hw::Core &core = sys->core(0);
    rt.allocRelayMem(core, client, 4096);
    EXPECT_TRUE(rt.call(core, client, id, 0, 64).ok);
    EXPECT_EQ(depth, 3);
    EXPECT_EQ(rejected, 1);
    EXPECT_EQ(rt.contextExhausted.value(), 1u);
}

TEST_F(SecurityTest, EngineCacheIsTaggedPerThread)
{
    // Paper 6.1 "Timing Attacks": each engine-cache entry is tagged
    // with the thread's capability pointer, so one thread's prefetch
    // can never produce a hit (and thus a timing signal) for another.
    core::SystemOptions opts;
    opts.flavor = core::SystemFlavor::Sel4Xpc;
    opts.engineOpts.engineCache = true;
    core::System local(opts);
    kernel::Thread &server = local.spawn("server");
    kernel::Thread &alice = local.spawn("alice");
    kernel::Thread &bob = local.spawn("bob");
    core::XpcRuntime &rt = local.runtime();
    uint64_t id = rt.registerEntry(server, server,
                                   [](core::XpcServerCall &) {}, 2);
    local.manager().grantXcallCap(server, alice, id);
    local.manager().grantXcallCap(server, bob, id);
    hw::Core &core = local.core(0);

    rt.allocRelayMem(core, alice, 4096);
    local.engine().prefetch(core, id); // fills with alice's tag
    uint64_t hits0 = local.engine().engineCacheHits.value();
    rt.call(core, alice, id, 0, 0);
    EXPECT_EQ(local.engine().engineCacheHits.value(), hits0 + 1);

    // Bob runs next; alice's cached entry must not hit for him.
    rt.allocRelayMem(core, bob, 4096);
    uint64_t hits1 = local.engine().engineCacheHits.value();
    rt.call(core, bob, id, 0, 0);
    EXPECT_EQ(local.engine().engineCacheHits.value(), hits1);
}

TEST_F(SecurityTest, GrantCapForwardingIsExplicit)
{
    // Holding an xcall-cap does not imply the right to grant it on.
    kernel::Thread &server = sys->spawn("server");
    kernel::Thread &middle = sys->spawn("middle");
    kernel::Thread &outsider = sys->spawn("outsider");
    XpcRuntime &rt = sys->runtime();
    uint64_t id = rt.registerEntry(server, server,
                                   [](XpcServerCall &) {}, 2);
    sys->manager().grantXcallCap(server, middle, id);
    EXPECT_TRUE(sys->manager().hasXcallCap(middle, id));
    EXPECT_FALSE(sys->manager().hasGrantCap(middle, id));
    EXPECT_DEATH(sys->manager().grantXcallCap(middle, outsider, id),
                 "grant-cap");
}

TEST_F(SecurityTest, TimeoutUnwindsAHungCallee)
{
    // Paper 6.1 fault isolation: if the callee hangs, a timeout can
    // force control back to the caller.
    core::SystemOptions opts;
    opts.flavor = core::SystemFlavor::Sel4Xpc;
    opts.runtimeOpts.timeoutCycles = Cycles(10000);
    core::System local(opts);
    kernel::Thread &server = local.spawn("hang-server");
    kernel::Thread &client = local.spawn("client");
    core::XpcRuntime &rt = local.runtime();
    uint64_t id = rt.registerEntry(
        server, server,
        [](core::XpcServerCall &call) {
            if (call.opcode() == 1)
                call.hang(Cycles(50000)); // well past the budget
            else
                call.setReplyLen(0);
        },
        2);
    local.manager().grantXcallCap(server, client, id);

    hw::Core &core = local.core(0);
    core::RelaySegHandle seg = rt.allocRelayMem(core, client, 4096);

    auto out = rt.call(core, client, id, 1, 0);
    EXPECT_FALSE(out.ok);
    EXPECT_TRUE(out.timedOut);
    // The kernel restored the caller completely.
    EXPECT_EQ(core.csrs.linkTop, 0u);
    EXPECT_EQ(core.csrs.segId, seg.segId);
    EXPECT_EQ(core.csrs.pageTableRoot,
              client.process()->space().root());

    // The entry is still usable afterwards (well-behaved call).
    auto ok = rt.call(core, client, id, 0, 0);
    EXPECT_TRUE(ok.ok);
    EXPECT_FALSE(ok.timedOut);
}

TEST_F(SecurityTest, FastCalleeNeverTriggersTheWatchdog)
{
    core::SystemOptions opts;
    opts.flavor = core::SystemFlavor::Sel4Xpc;
    opts.runtimeOpts.timeoutCycles = Cycles(1000000);
    core::System local(opts);
    kernel::Thread &server = local.spawn("server");
    kernel::Thread &client = local.spawn("client");
    core::XpcRuntime &rt = local.runtime();
    uint64_t id = rt.registerEntry(server, server,
                                   [](core::XpcServerCall &) {}, 2);
    local.manager().grantXcallCap(server, client, id);
    hw::Core &core = local.core(0);
    rt.allocRelayMem(core, client, 4096);
    auto out = rt.call(core, client, id, 0, 0);
    EXPECT_TRUE(out.ok);
    EXPECT_FALSE(out.timedOut);
}

TEST_F(SecurityTest, NestedTimeoutUnwindsOnlyTheInnermostCall)
{
    // A -> B -> C with C hung: the watchdog unwinds C's record only;
    // B observes the timeout, degrades gracefully and still answers
    // A. One hung leaf must not take the whole chain down.
    core::SystemOptions opts;
    opts.flavor = core::SystemFlavor::Sel4Xpc;
    opts.runtimeOpts.timeoutCycles = Cycles(10000);
    core::System local(opts);
    kernel::Thread &a = local.spawn("A");
    kernel::Thread &b = local.spawn("B");
    kernel::Thread &c = local.spawn("C");
    core::XpcRuntime &rt = local.runtime();
    hw::Core &core = local.core(0);

    uint64_t c_id = rt.registerEntry(
        c, c, [](core::XpcServerCall &call) { call.hang(Cycles(50000)); },
        2);
    core::XpcCallOutcome b_saw;
    PAddr b_root_after_timeout = 0;
    uint64_t b_link_top_after_timeout = ~uint64_t(0);
    uint64_t b_id = rt.registerEntry(
        b, b,
        [&](core::XpcServerCall &call) {
            b_saw = call.callNested(c_id, 0, 0, 16);
            // After the unwind, B is fully restored: its own root is
            // active again and only the A->B record remains.
            b_root_after_timeout = call.core().csrs.pageTableRoot;
            b_link_top_after_timeout = call.core().csrs.linkTop;
            call.setReplyLen(0);
        },
        2);
    local.manager().grantXcallCap(b, a, b_id);
    local.manager().grantXcallCap(c, b, c_id);
    core::RelaySegHandle seg = rt.allocRelayMem(core, a, 4096);

    auto out = rt.call(core, a, b_id, 0, 64);
    EXPECT_FALSE(b_saw.ok);
    EXPECT_TRUE(b_saw.timedOut);
    EXPECT_EQ(b_saw.status, kernel::CallStatus::Timeout);
    EXPECT_EQ(b_root_after_timeout, b.process()->space().root());
    EXPECT_EQ(b_link_top_after_timeout, 1u);
    // The outer call was untouched by the inner timeout.
    EXPECT_TRUE(out.ok);
    EXPECT_EQ(core.csrs.linkTop, 0u);
    EXPECT_EQ(core.csrs.segId, seg.segId);
    EXPECT_EQ(core.csrs.pageTableRoot, a.process()->space().root());
}

TEST_F(SecurityTest, ForceUnwindPopsNestedChainRecordsInOrder)
{
    // Drive XpcManager::forceUnwind directly against a live A->B->C
    // chain: each pop must restore exactly one caller frame, in LIFO
    // order, and the runtime must survive the resulting empty link
    // stack with clean errors instead of panics.
    kernel::Thread &a = sys->spawn("A");
    kernel::Thread &b = sys->spawn("B");
    kernel::Thread &c = sys->spawn("C");
    XpcRuntime &rt = sys->runtime();
    hw::Core &core = sys->core(0);

    PAddr root_after_first = 0, root_after_second = 0;
    uint64_t top_after_first = 0, top_after_second = 0;
    bool third_pop = true;
    uint64_t c_id = rt.registerEntry(
        c, c,
        [&](XpcServerCall &call) {
            hw::Core &cc = call.core();
            EXPECT_EQ(cc.csrs.linkTop, 2u);
            // Pop B->C: B's frame comes back.
            ASSERT_TRUE(sys->manager().forceUnwind(cc));
            root_after_first = cc.csrs.pageTableRoot;
            top_after_first = cc.csrs.linkTop;
            // Pop A->B: A's frame comes back.
            ASSERT_TRUE(sys->manager().forceUnwind(cc));
            root_after_second = cc.csrs.pageTableRoot;
            top_after_second = cc.csrs.linkTop;
            // Nothing left to pop.
            third_pop = sys->manager().forceUnwind(cc);
        },
        2);
    XpcCallOutcome b_saw;
    uint64_t b_id = rt.registerEntry(
        b, b,
        [&](XpcServerCall &call) {
            b_saw = call.callNested(c_id, 0, 0, 16);
        },
        2);
    sys->manager().grantXcallCap(b, a, b_id);
    sys->manager().grantXcallCap(c, b, c_id);
    rt.allocRelayMem(core, a, 4096);

    auto out = rt.call(core, a, b_id, 0, 64);
    EXPECT_EQ(root_after_first, b.process()->space().root());
    EXPECT_EQ(top_after_first, 1u);
    EXPECT_EQ(root_after_second, a.process()->space().root());
    EXPECT_EQ(top_after_second, 0u);
    EXPECT_FALSE(third_pop);
    // C's and B's xrets both found an empty link stack; each leg
    // reported a linkage error instead of crashing.
    EXPECT_FALSE(b_saw.ok);
    EXPECT_EQ(b_saw.exc, engine::XpcException::InvalidLinkage);
    EXPECT_FALSE(out.ok);
    EXPECT_EQ(out.status, kernel::CallStatus::LinkageCorrupt);
    EXPECT_EQ(core.csrs.linkTop, 0u);
    EXPECT_EQ(core.csrs.pageTableRoot, a.process()->space().root());
}

TEST_F(SecurityTest, ProcessExitMidCallLeavesNoOwnedResources)
{
    // Property: whatever a process owned (relay segments, relay page
    // tables) and whenever it dies - even mid-call, with a caller
    // pending on it - onProcessExit leaves no live resource owned by
    // the dead process, and the pending caller observes an
    // InvalidLinkage-class error, not a hang or a panic.
    XpcRuntime &rt = sys->runtime();
    hw::Core &core = sys->core(0);

    for (int round = 0; round < 6; round++) {
        kernel::Thread &client = sys->spawn("client");
        kernel::Thread &server = sys->spawn("server");
        kernel::Process &victim =
            (round % 2 == 0) ? *client.process() : *server.process();

        uint64_t id = rt.registerEntry(
            server, server,
            [&](XpcServerCall &) {
                sys->manager().onProcessExit(victim);
            },
            2);
        sys->manager().grantXcallCap(server, client, id);

        // Everything allocated from here on is owned by one of the
        // two processes and must come back when they die.
        uint64_t free0 = sys->machine().allocator().freeBytes();
        rt.allocRelayMem(core, client, 4096);
        // Vary the resource mix per round.
        for (int s = 1; s <= 1 + round % 3; s++)
            sys->manager().allocRelaySeg(&core, victim,
                                         uint64_t(s) * 8192,
                                         8 + uint64_t(s));
        for (int p = 0; p < round % 2 + 1; p++)
            sys->manager().allocRelayPt(nullptr, victim, 4 * pageSize);
        ASSERT_FALSE(
            sys->manager().segsOwnedBy(victim.id()).empty());
        ASSERT_FALSE(
            sys->manager().relayPtsOwnedBy(victim.id()).empty());

        auto out = rt.call(core, client, id, 0, 0);
        // No resource survives its owner.
        EXPECT_TRUE(sys->manager().segsOwnedBy(victim.id()).empty());
        EXPECT_TRUE(
            sys->manager().relayPtsOwnedBy(victim.id()).empty());
        if (&victim == client.process()) {
            // The dead caller's record was invalidated: the pending
            // return faults and is reported as a linkage error.
            EXPECT_FALSE(out.ok);
            EXPECT_EQ(out.exc, engine::XpcException::InvalidLinkage);
            EXPECT_EQ(out.status, kernel::CallStatus::LinkageCorrupt);
        }
        // Either way the core is never left mid-chain.
        EXPECT_EQ(core.csrs.linkTop, 0u);
        // The client's own call segment dies with whichever side
        // owned resources; nothing keeps accumulating.
        kernel::Process &other =
            (&victim == client.process()) ? *server.process()
                                          : *client.process();
        sys->manager().onProcessExit(other);
        // Every frame allocated this round came back.
        EXPECT_EQ(sys->machine().allocator().freeBytes(), free0);
    }
    EXPECT_EQ(sys->manager().liveSegCount(), 0u);
    EXPECT_EQ(sys->manager().liveRelayPtCount(), 0u);
}

TEST_F(SecurityTest, MaskCannotGrowTheWindow)
{
    kernel::Thread &client = sys->spawn("client");
    XpcRuntime &rt = sys->runtime();
    hw::Core &core = sys->core(0);
    rt.allocRelayMem(core, client, 4096);
    EXPECT_EQ(sys->engine().setSegMask(core, 0, 8192),
              engine::XpcException::InvalidSegMask);
    EXPECT_EQ(sys->engine().setSegMask(core, 4000, 200),
              engine::XpcException::InvalidSegMask);
    // A nested mask can only shrink further.
    ASSERT_EQ(sys->engine().setSegMask(core, 1024, 1024),
              engine::XpcException::None);
    mem::SegWindow w = engine::XpcEngine::effectiveSeg(core.csrs);
    EXPECT_EQ(w.len, 1024u);
}

} // namespace
} // namespace xpc::core
