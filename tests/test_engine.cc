/**
 * @file
 * Unit tests for the XPC engine: the xcall/xret/swapseg instructions,
 * capability checking, linkage records, relay segments and masks, and
 * the engine-cache/non-blocking-stack optimizations.
 */

#include <gtest/gtest.h>

#include "hw/machine.hh"
#include "xpc/engine.hh"

namespace xpc::engine {
namespace {

class EngineTest : public ::testing::Test
{
  protected:
    EngineTest() { rebuild({}); }

    void
    rebuild(const XpcEngineOptions &opts)
    {
        machine = std::make_unique<hw::Machine>(hw::rocketU500(),
                                                64 << 20);
        eng = std::make_unique<XpcEngine>(*machine, opts);
        auto &alloc = machine->allocator();
        table = alloc.allocFrames(16);
        bitmap = alloc.allocFrames(1);
        linkStack = alloc.allocFrames(2);
        segList = alloc.allocFrames(1);
        machine->phys().clear(table, 16 * pageSize);
        machine->phys().clear(bitmap, pageSize);
        machine->phys().clear(linkStack, 2 * pageSize);
        machine->phys().clear(segList, pageSize);

        hw::Core &c = core();
        c.csrs = hw::XpcCsrs{};
        c.csrs.pageTableRoot = 0xaaaa000;
        c.csrs.xEntryTable = table;
        c.csrs.xEntryTableSize = 64;
        c.csrs.xcallCap = bitmap;
        c.csrs.linkReg = linkStack;
        c.csrs.segList = segList;
    }

    hw::Core &core() { return machine->core(0); }

    void
    installEntry(uint64_t id, PAddr root = 0xbbbb000)
    {
        XEntry e;
        e.valid = true;
        e.pageTableRoot = root;
        e.entryAddr = 0x1000 + id;
        e.capPtr = 0xcc000 + id * 0x1000;
        e.segList = 0xdd000;
        XpcEngine::writeXEntry(machine->phys(), table, id, e);
    }

    void
    grantCap(uint64_t id)
    {
        PAddr word = bitmap + (id / 64) * 8;
        uint64_t bits = machine->phys().read64(word);
        machine->phys().write64(word, bits | (uint64_t(1) << (id % 64)));
    }

    std::unique_ptr<hw::Machine> machine;
    std::unique_ptr<XpcEngine> eng;
    PAddr table = 0, bitmap = 0, linkStack = 0, segList = 0;
};

TEST_F(EngineTest, XcallSwitchesToCallee)
{
    installEntry(3);
    grantCap(3);
    PAddr caller_cap = core().csrs.xcallCap;
    XcallResult r = eng->xcall(core(), 3, 42);
    ASSERT_EQ(r.exc, XpcException::None);
    EXPECT_EQ(r.callerCapPtr, caller_cap);
    EXPECT_EQ(core().csrs.pageTableRoot, 0xbbbb000u);
    EXPECT_EQ(core().csrs.xcallCap, 0xcc000u + 3 * 0x1000);
    EXPECT_EQ(core().csrs.segList, 0xdd000u);
    EXPECT_EQ(core().csrs.linkTop, 1u);
}

TEST_F(EngineTest, XcallWithoutCapFaults)
{
    installEntry(3);
    XcallResult r = eng->xcall(core(), 3, 0);
    EXPECT_EQ(r.exc, XpcException::InvalidXcallCap);
    EXPECT_EQ(core().csrs.linkTop, 0u);
}

TEST_F(EngineTest, XcallToInvalidEntryFaults)
{
    grantCap(5);
    XcallResult r = eng->xcall(core(), 5, 0);
    EXPECT_EQ(r.exc, XpcException::InvalidXEntry);
}

TEST_F(EngineTest, XcallBeyondTableSizeFaults)
{
    XcallResult r = eng->xcall(core(), 64, 0);
    EXPECT_EQ(r.exc, XpcException::InvalidXEntry);
}

TEST_F(EngineTest, XretRestoresCaller)
{
    installEntry(3);
    grantCap(3);
    eng->xcall(core(), 3, 77);
    XretResult r = eng->xret(core());
    ASSERT_EQ(r.exc, XpcException::None);
    EXPECT_EQ(r.record.returnToken, 77u);
    EXPECT_EQ(core().csrs.pageTableRoot, 0xaaaa000u);
    EXPECT_EQ(core().csrs.xcallCap, bitmap);
    EXPECT_EQ(core().csrs.linkTop, 0u);
}

TEST_F(EngineTest, XretOnEmptyStackFaults)
{
    XretResult r = eng->xret(core());
    EXPECT_EQ(r.exc, XpcException::InvalidLinkage);
}

TEST_F(EngineTest, XretOnInvalidatedRecordFaults)
{
    installEntry(3);
    grantCap(3);
    eng->xcall(core(), 3, 0);
    // The kernel invalidates the record (e.g. caller was killed).
    auto rec = XpcEngine::readLinkageRecord(machine->phys(), linkStack,
                                            0);
    rec.valid = false;
    XpcEngine::writeLinkageRecord(machine->phys(), linkStack, 0, rec);
    XretResult r = eng->xret(core());
    EXPECT_EQ(r.exc, XpcException::InvalidLinkage);
}

TEST_F(EngineTest, NestedCallsAreLifo)
{
    for (uint64_t id = 1; id <= 3; id++) {
        installEntry(id, 0xbbbb000 + id * 0x1000);
        grantCap(id);
    }
    // Each callee can call the next because the cap bitmap pointer
    // changes; grant through the per-entry bitmaps.
    eng->xcall(core(), 1, 101);
    // Simulate callee granting: write bits into the callee bitmaps.
    for (uint64_t id = 2; id <= 3; id++) {
        PAddr bm = core().csrs.xcallCap;
        uint64_t bits = machine->phys().read64(bm);
        machine->phys().write64(bm, bits | (uint64_t(1) << id));
        eng->xcall(core(), id, 100 + id);
    }
    EXPECT_EQ(core().csrs.linkTop, 3u);
    EXPECT_EQ(eng->xret(core()).record.returnToken, 103u);
    EXPECT_EQ(eng->xret(core()).record.returnToken, 102u);
    EXPECT_EQ(eng->xret(core()).record.returnToken, 101u);
    EXPECT_EQ(core().csrs.pageTableRoot, 0xaaaa000u);
}

TEST_F(EngineTest, LinkStackOverflowFaults)
{
    installEntry(1, 0xaaaa000); // same root: no TLB churn needed
    grantCap(1);
    // Entry 1's capPtr must also allow calling entry 1 for reentry.
    machine->phys().write64(0xcc000 + 0x1000, 0x2);
    for (uint64_t i = 0; i < linkStackCapacity; i++) {
        ASSERT_EQ(eng->xcall(core(), 1, i).exc, XpcException::None);
    }
    EXPECT_EQ(eng->xcall(core(), 1, 999).exc,
              XpcException::InvalidLinkage);
}

TEST_F(EngineTest, SegHandoverAndReturn)
{
    installEntry(3);
    grantCap(3);
    mem::SegWindow seg{true, uint64_t(0x30) << 32, 0x100000, 8192,
                       true, true};
    core().csrs.segReg = seg;
    core().csrs.segId = 9;

    eng->xcall(core(), 3, 0);
    // Callee sees the whole segment (no mask was set).
    EXPECT_TRUE(core().csrs.segReg.valid);
    EXPECT_EQ(core().csrs.segReg.len, 8192u);
    ASSERT_EQ(eng->xret(core()).exc, XpcException::None);
    EXPECT_EQ(core().csrs.segReg.paBase, 0x100000u);
    EXPECT_EQ(core().csrs.segId, 9u);
}

TEST_F(EngineTest, SegMaskShrinksCalleeView)
{
    installEntry(3);
    grantCap(3);
    mem::SegWindow seg{true, uint64_t(0x30) << 32, 0x100000, 8192,
                       true, true};
    core().csrs.segReg = seg;
    ASSERT_EQ(eng->setSegMask(core(), 4096, 1024), XpcException::None);

    eng->xcall(core(), 3, 0);
    EXPECT_EQ(core().csrs.segReg.vaBase, (uint64_t(0x30) << 32) + 4096);
    EXPECT_EQ(core().csrs.segReg.paBase, 0x100000u + 4096);
    EXPECT_EQ(core().csrs.segReg.len, 1024u);
    // Callee's own mask starts clear.
    EXPECT_EQ(core().csrs.segMaskLen, 0u);

    ASSERT_EQ(eng->xret(core()).exc, XpcException::None);
    // Caller gets its full segment and its mask back.
    EXPECT_EQ(core().csrs.segReg.len, 8192u);
    EXPECT_EQ(core().csrs.segMaskOffset, 4096u);
    EXPECT_EQ(core().csrs.segMaskLen, 1024u);
}

TEST_F(EngineTest, MaskOutsideSegmentFaults)
{
    mem::SegWindow seg{true, uint64_t(0x30) << 32, 0x100000, 4096,
                       true, true};
    core().csrs.segReg = seg;
    EXPECT_EQ(eng->setSegMask(core(), 4000, 200),
              XpcException::InvalidSegMask);
    EXPECT_EQ(eng->setSegMask(core(), 0, 8192),
              XpcException::InvalidSegMask);
    EXPECT_EQ(eng->setSegMask(core(), 0, 4096), XpcException::None);
}

TEST_F(EngineTest, MaliciousCalleeCannotReturnDifferentSeg)
{
    installEntry(3);
    grantCap(3);
    mem::SegWindow seg{true, uint64_t(0x30) << 32, 0x100000, 8192,
                       true, true};
    core().csrs.segReg = seg;
    eng->xcall(core(), 3, 0);
    // Callee swaps in a different segment and "forgets" to restore.
    core().csrs.segReg.paBase = 0x200000;
    XretResult r = eng->xret(core());
    EXPECT_EQ(r.exc, XpcException::InvalidSegMask);
}

TEST_F(EngineTest, SwapsegExchangesWithList)
{
    RelaySegEntry slot;
    slot.valid = true;
    slot.window = mem::SegWindow{true, uint64_t(0x31) << 32, 0x200000,
                                 4096, true, true};
    slot.segId = 5;
    XpcEngine::writeSegListEntry(machine->phys(), segList, 2, slot);

    mem::SegWindow old{true, uint64_t(0x30) << 32, 0x100000, 8192,
                       true, true};
    core().csrs.segReg = old;
    core().csrs.segId = 9;

    ASSERT_EQ(eng->swapseg(core(), 2), XpcException::None);
    EXPECT_EQ(core().csrs.segReg.paBase, 0x200000u);
    EXPECT_EQ(core().csrs.segId, 5u);

    // The old segment landed in the slot.
    auto e = XpcEngine::readSegListEntry(machine->phys(), segList, 2);
    EXPECT_TRUE(e.valid);
    EXPECT_EQ(e.window.paBase, 0x100000u);
    EXPECT_EQ(e.segId, 9u);
}

TEST_F(EngineTest, SwapsegWithEmptySlotInvalidatesSegReg)
{
    mem::SegWindow old{true, uint64_t(0x30) << 32, 0x100000, 8192,
                       true, true};
    core().csrs.segReg = old;
    ASSERT_EQ(eng->swapseg(core(), 0), XpcException::None);
    EXPECT_FALSE(core().csrs.segReg.valid);
}

TEST_F(EngineTest, SwapsegOutOfRangeFaults)
{
    EXPECT_EQ(eng->swapseg(core(), segListCapacity),
              XpcException::SwapsegError);
}

TEST_F(EngineTest, NonblockingLinkStackIsFaster)
{
    installEntry(3);
    grantCap(3);
    Cycles t0 = core().now();
    eng->xcall(core(), 3, 0);
    Cycles nonblocking = core().now() - t0;

    rebuild(XpcEngineOptions{.nonblockingLinkStack = false});
    installEntry(3);
    grantCap(3);
    t0 = core().now();
    eng->xcall(core(), 3, 0);
    Cycles blocking = core().now() - t0;
    EXPECT_GT(blocking, nonblocking);
}

TEST_F(EngineTest, EngineCachePrefetchAccelerates)
{
    rebuild(XpcEngineOptions{.engineCache = true});
    installEntry(3);
    grantCap(3);
    // Warm call without prefetch.
    eng->xcall(core(), 3, 0);
    eng->xret(core());
    Cycles t0 = core().now();
    eng->xcall(core(), 3, 0);
    Cycles uncached = core().now() - t0;
    eng->xret(core());

    eng->prefetch(core(), 3);
    t0 = core().now();
    eng->xcall(core(), 3, 0);
    Cycles cached = core().now() - t0;
    EXPECT_LT(cached, uncached);
    EXPECT_GE(eng->engineCacheHits.value(), 1u);
}

TEST_F(EngineTest, PackedStructuresRoundTrip)
{
    LinkageRecord r;
    r.valid = true;
    r.callerPageTable = 0x123000;
    r.callerCapPtr = 0x456000;
    r.callerSegList = 0x789000;
    r.callerSeg = mem::SegWindow{true, 0xaaaa, 0xbbbb, 0xcccc, true,
                                 false};
    r.callerSegId = 17;
    r.callerMaskOffset = 128;
    r.callerMaskLen = 256;
    r.returnToken = 0xfeed;
    XpcEngine::writeLinkageRecord(machine->phys(), linkStack, 5, r);
    auto got = XpcEngine::readLinkageRecord(machine->phys(), linkStack,
                                            5);
    EXPECT_TRUE(got.valid);
    EXPECT_EQ(got.callerPageTable, r.callerPageTable);
    EXPECT_EQ(got.callerCapPtr, r.callerCapPtr);
    EXPECT_EQ(got.callerSegList, r.callerSegList);
    EXPECT_EQ(got.callerSeg.vaBase, r.callerSeg.vaBase);
    EXPECT_EQ(got.callerSeg.paBase, r.callerSeg.paBase);
    EXPECT_EQ(got.callerSeg.len, r.callerSeg.len);
    EXPECT_TRUE(got.callerSeg.read);
    EXPECT_FALSE(got.callerSeg.write);
    EXPECT_EQ(got.callerSegId, 17u);
    EXPECT_EQ(got.callerMaskOffset, 128u);
    EXPECT_EQ(got.callerMaskLen, 256u);
    EXPECT_EQ(got.returnToken, 0xfeedu);
}

TEST_F(EngineTest, XcallLatencyInPaperBallpark)
{
    // Warm path, non-blocking link stack: the paper's Table 3 reports
    // 18 cycles for xcall and 23 for xret. Allow a generous band.
    installEntry(3, 0xaaaa000); // same root avoids the TLB flush
    grantCap(3);
    machine->phys().write64(0xcc000 + 3 * 0x1000, 0x8);
    for (int i = 0; i < 4; i++) {
        eng->xcall(core(), 3, 0);
        eng->xret(core());
    }
    Cycles t0 = core().now();
    eng->xcall(core(), 3, 0);
    Cycles xcall_cost = core().now() - t0;
    t0 = core().now();
    eng->xret(core());
    Cycles xret_cost = core().now() - t0;
    EXPECT_GE(xcall_cost.value(), 8u);
    EXPECT_LE(xcall_cost.value(), 40u);
    EXPECT_GE(xret_cost.value(), 10u);
    EXPECT_LE(xret_cost.value(), 45u);
}

} // namespace
} // namespace xpc::engine
